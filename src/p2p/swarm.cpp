#include "p2p/swarm.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::p2p {

namespace {

double mb_to_mbit(double mb) { return mb * 8.0; }

void check(const SwarmConfig& c) {
  if (c.file_mb <= 0.0 || c.seed_up_mbps <= 0.0 || c.peer.down_mbps <= 0.0 ||
      c.peer.up_mbps <= 0.0) {
    throw std::invalid_argument("SwarmConfig: non-positive parameter");
  }
}

}  // namespace

double granted_rate_mbps(const SwarmConfig& config) {
  check(config);
  return std::min(config.peer.down_mbps,
                  config.reciprocity * config.peer.up_mbps +
                      config.altruism_mbps);
}

double solo_download_seconds(const SwarmConfig& config) {
  check(config);
  return mb_to_mbit(config.file_mb) / granted_rate_mbps(config);
}

double collaborative_download_seconds(const SwarmConfig& config,
                                      std::size_t helpers) {
  check(config);
  const double granted = granted_rate_mbps(config);
  // Collector's own tit-for-tat grant plus each helper's relayed pieces
  // (a helper can relay no faster than its uplink allows).
  double inflow = granted;
  for (std::size_t h = 0; h < helpers; ++h) {
    inflow += std::min(granted, config.peer.up_mbps);
  }
  inflow = std::min(inflow, config.peer.down_mbps);
  return mb_to_mbit(config.file_mb) / inflow;
}

SwarmRun swarm_download(const SwarmConfig& config, std::size_t leechers,
                        double step_seconds) {
  check(config);
  if (leechers == 0 || step_seconds <= 0.0) {
    throw std::invalid_argument("swarm_download: bad parameters");
  }
  // Symmetric fluid model: all leechers progress at the same rate; the
  // aggregate upload is the seed plus what leechers can re-serve (a
  // leecher can only upload data it already has, approximated by scaling
  // its upload by its completion fraction).
  SwarmRun run;
  const double file_mbit = mb_to_mbit(config.file_mb);
  double progress_mbit = 0.0;
  double t = 0.0;
  const auto n = static_cast<double>(leechers);
  while (progress_mbit < file_mbit) {
    const double fraction = progress_mbit / file_mbit;
    const double aggregate_up =
        config.seed_up_mbps + n * config.peer.up_mbps * fraction;
    run.aggregate_upload_peak_mbps =
        std::max(run.aggregate_upload_peak_mbps, aggregate_up);
    const double per_leecher =
        std::min(config.peer.down_mbps, aggregate_up / n);
    progress_mbit += per_leecher * step_seconds;
    t += step_seconds;
    if (t > 1e7) break;  // safety net
  }
  run.mean_seconds = t;
  run.last_seconds = t;
  return run;
}

}  // namespace mcs::p2p
