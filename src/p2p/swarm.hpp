// Peer-to-peer download substrate for challenge C5 (socially-aware
// systems), reproducing the 2fast collaborative-download result [106].
//
// Flow-level (fluid) bandwidth models:
//  - solo: one leecher against the seeds.
//  - swarm: N concurrent leechers sharing seed capacity and exchanging
//    pieces tit-for-tat style (aggregate-upload fluid model).
//  - 2fast: a collector plus k *helpers* from its social group; helpers
//    spend their own download slots on distinct pieces and relay them,
//    adding their upload capacity to the collector's inflow. Published
//    shape: download time falls ~linearly with helpers until the
//    collector's downlink saturates.
#pragma once

#include <cstddef>
#include <vector>

namespace mcs::p2p {

struct PeerBandwidth {
  double down_mbps = 8.0;
  double up_mbps = 1.0;
};

struct SwarmConfig {
  double file_mb = 500.0;
  double seed_up_mbps = 4.0;
  PeerBandwidth peer;  ///< leechers / collector / helpers alike
  /// Tit-for-tat: the swarm grants a peer download bandwidth roughly
  /// proportional to what the peer uploads (BitTorrent reciprocity), plus
  /// a small altruistic share from optimistic unchokes/seeds.
  double reciprocity = 1.0;
  double altruism_mbps = 0.2;
};

/// Bandwidth the swarm grants one peer under tit-for-tat:
/// min(peer.down, reciprocity * peer.up + altruism). This is the
/// asymmetric-link (ADSL) regime where 2fast shines: a solo peer's low
/// uplink throttles its download.
[[nodiscard]] double granted_rate_mbps(const SwarmConfig& config);

/// Solo leecher: file / granted rate.
[[nodiscard]] double solo_download_seconds(const SwarmConfig& config);

/// 2fast: collector + `helpers` group members. Every member earns its own
/// tit-for-tat grant on *distinct* pieces; helpers relay what they fetch
/// to the collector, bounded by their uplink; the collector's inflow is
/// capped by its downlink. Published shape: ~linear speedup in helpers
/// until the collector's downlink saturates.
[[nodiscard]] double collaborative_download_seconds(const SwarmConfig& config,
                                                    std::size_t helpers);

/// Fluid simulation of a flash crowd of `leechers` starting together:
/// aggregate upload = seed + finished-so-far stay for `linger_seconds`.
/// Returns per-leecher completion times (all equal in the symmetric fluid
/// model, reported per wave as peers leave).
struct SwarmRun {
  double mean_seconds = 0.0;
  double last_seconds = 0.0;
  double aggregate_upload_peak_mbps = 0.0;
};

[[nodiscard]] SwarmRun swarm_download(const SwarmConfig& config,
                                      std::size_t leechers,
                                      double step_seconds = 1.0);

}  // namespace mcs::p2p
