// Deterministic SLO engine: declarative latency objectives evaluated over
// sim-time sliding windows.
//
// The paper's maturity model (§3.3, C13) asks for *continuous, comparable*
// measurement of user-facing behavior — not throughput counters but "did
// the ecosystem meet its promise, and for how many minutes did it not".
// An SloSpec declares the promise per workload class (latency threshold +
// target fraction); SloTracker evaluates it over a sliding sim-time window
// as observations arrive from ordinary sim events (job completions), so
// the whole evaluation is a pure function of the scenario seed and digests
// stay bit-identical across MCS_THREADS=1 vs 8.
//
// State lives in the caller's obs::Registry as ordinary counters
// (slo.<class>.samples/good/violation_us/burn_crossings), so SLO results
// ride the existing flat-grid-order merge, print under --metrics, fold
// into fuzz seed digests, and need no new serialization. Threshold
// crossings (violation begin/end, burn-rate alerts) are stamped into the
// trace ring as instant events — the flight recorder shows *when* the SLO
// started burning, not just the final tally.
//
// Hot-path contract (DESIGN.md §11): observe() touches only fixed-size
// window slots and cached counter pointers — no allocation, legal from
// `// mcs-lint: hot` call chains. All window bookkeeping is integer
// arithmetic on microsecond sim time; no floating-point state accumulates
// across observations except through the registry counters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"

namespace mcs::obs {

/// One declarative latency objective: "fraction `target` of class `klass`
/// jobs finish within `threshold_seconds`, judged over a sliding window".
struct SloSpec {
  /// Workload class the objective applies to ("bot", "workflow", or "all"
  /// for every class). The engine maps classes to spec indices at attach.
  std::string klass = "all";
  /// Latency threshold in seconds; a sample is "good" iff latency <= this.
  double threshold_seconds = 60.0;
  /// Target good fraction in (0, 1]; attainment below this is a violation.
  double target = 0.95;
  /// Sliding evaluation window in sim time.
  sim::SimTime window = 5 * sim::kMinute;
  /// Burn-rate alert threshold: the error budget consumed per window,
  /// relative to the budget the target allows (1.0 = exactly on budget).
  /// An upward crossing emits a trace instant + bumps the crossing counter.
  double burn_threshold = 2.0;
};

/// Renders a spec back to the parse format below (diagnostics, reports).
[[nodiscard]] std::string to_string(const SloSpec& spec);

/// Parses a ';'-separated list of specs, each
///   CLASS:THRESHOLD_S:TARGET[:WINDOW_S[:BURN]]
/// e.g. "bot:60:0.95:300;workflow:600:0.9". Duplicate classes are
/// rejected (their registry instruments would alias). Throws
/// std::invalid_argument on malformed input; empty text -> empty list.
[[nodiscard]] std::vector<SloSpec> parse_slo_specs(std::string_view text);

/// Evaluates a set of SloSpecs over sliding sim-time windows.
///
/// Construction registers four counters per spec in `registry` and
/// interns trace names in `tracer` (both may be kept by the caller;
/// tracer may be null). observe() is allocation-free; finalize() closes
/// any open violation interval at the end of the run (call it once, with
/// the final sim time, before capturing the registry).
class SloTracker {
 public:
  SloTracker(std::vector<SloSpec> specs, Registry& registry, Tracer* tracer);

  SloTracker(const SloTracker&) = delete;
  SloTracker& operator=(const SloTracker&) = delete;

  [[nodiscard]] const std::vector<SloSpec>& specs() const { return specs_; }
  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  /// Feeds one latency sample (seconds; +infinity for abandoned jobs —
  /// never good) to spec `slo` at sim time `at`. Observation times must be
  /// nondecreasing (sim time is). Allocation-free.
  // mcs-lint: hot
  void observe(std::size_t slo, sim::SimTime at, double latency_seconds) {
    State& st = states_[slo];
    advance_window(st, at);
    const bool good = latency_seconds <= specs_[slo].threshold_seconds;
    const std::size_t slot =
        static_cast<std::size_t>(st.head_slot) % kWindowSlots;
    ++st.total[slot];
    st.window_total += 1;
    if (good) {
      ++st.good[slot];
      st.window_good += 1;
      st.ctr_good->add();
    }
    st.ctr_samples->add();
    evaluate(st, specs_[slo], at);
  }

  /// Closes open violation intervals at sim time `at` (end of run). The
  /// violation_us counters are only complete after this call.
  void finalize(sim::SimTime at);

  /// True while spec `slo`'s window attainment is below target.
  [[nodiscard]] bool violating(std::size_t slo) const {
    return states_[slo].violating;
  }
  /// Good/total over the current window (1.0 when the window is empty).
  [[nodiscard]] double window_attainment(std::size_t slo) const;

 private:
  static constexpr std::size_t kWindowSlots = 64;

  /// Per-spec sliding window + cached instruments. All record-path state
  /// is fixed-size; the struct is built once at construction.
  struct State {
    std::uint64_t good[kWindowSlots] = {};
    std::uint64_t total[kWindowSlots] = {};
    std::uint64_t window_good = 0;   ///< sum of live good[] slots
    std::uint64_t window_total = 0;  ///< sum of live total[] slots
    std::int64_t head_slot = 0;      ///< absolute index of the newest slot
    sim::SimTime slot_width = 1;     ///< window / kWindowSlots, >= 1
    bool violating = false;
    bool burning = false;
    sim::SimTime violation_begin = 0;
    Counter* ctr_samples = nullptr;
    Counter* ctr_good = nullptr;
    Counter* ctr_violation_us = nullptr;
    Counter* ctr_crossings = nullptr;
    NameId tn_begin = 0;
    NameId tn_end = 0;
    NameId tn_burn = 0;
  };

  /// Rotates the window forward to cover `at`, evicting expired slots.
  // mcs-lint: hot
  void advance_window(State& st, sim::SimTime at) {
    const std::int64_t target_slot = at / st.slot_width;
    if (target_slot <= st.head_slot) return;
    std::int64_t steps = target_slot - st.head_slot;
    if (steps > static_cast<std::int64_t>(kWindowSlots)) {
      steps = static_cast<std::int64_t>(kWindowSlots);
    }
    for (std::int64_t i = 0; i < steps; ++i) {
      const std::size_t slot = static_cast<std::size_t>(
          (st.head_slot + 1 + i) % static_cast<std::int64_t>(kWindowSlots));
      st.window_good -= st.good[slot];
      st.window_total -= st.total[slot];
      st.good[slot] = 0;
      st.total[slot] = 0;
    }
    st.head_slot = target_slot;
  }

  /// Re-judges attainment + burn rate after a sample; stamps transitions.
  // mcs-lint: hot
  void evaluate(State& st, const SloSpec& spec, sim::SimTime at);

  std::vector<SloSpec> specs_;
  std::vector<State> states_;
  Tracer* tracer_ = nullptr;
};

}  // namespace mcs::obs
