#include "obs/trace.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "obs/export.hpp"

namespace mcs::obs {

const char* to_string(Phase p) {
  switch (p) {
    case Phase::kInstant: return "instant";
    case Phase::kComplete: return "complete";
    case Phase::kCounter: return "counter";
  }
  return "?";
}

Tracer::Tracer(std::size_t capacity) {
  if (capacity == 0) {
    throw std::invalid_argument("Tracer: capacity must be positive");
  }
  ring_.resize(capacity);
}

NameId Tracer::intern(std::string_view name) {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<NameId>(i);
  }
  if (names_.size() > static_cast<std::size_t>(
                          std::numeric_limits<NameId>::max())) {
    throw std::length_error("Tracer: name table full");
  }
  names_.emplace_back(name);
  return static_cast<NameId>(names_.size() - 1);
}

void Tracer::snapshot(std::vector<TraceEvent>& out) const {
  out.clear();
  const std::size_t n = size();
  out.reserve(n);
  // The ring holds the last `n` records; oldest first is seq order, which
  // we recover by copying from the wrap point.
  const std::size_t cap = ring_.size();
  const std::size_t head = static_cast<std::size_t>(total_ % cap);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t idx = n < cap ? i : (head + i) % cap;
    out.push_back(ring_[idx]);
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.at != y.at) return x.at < y.at;
              return x.seq < y.seq;
            });
}

std::uint64_t Tracer::digest() const {
  // One digest implementation for live tracers and parsed dump files.
  // (Qualified call: the free-function snapshot, not the member.)
  return trace_digest(::mcs::obs::snapshot(*this));
}

}  // namespace mcs::obs
