#include "obs/export.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "metrics/stats.hpp"

namespace mcs::obs {

TraceDump snapshot(const Tracer& tracer) {
  TraceDump dump;
  dump.names = tracer.names();
  tracer.snapshot(dump.events);
  dump.dropped = tracer.dropped();
  dump.total = tracer.total();
  return dump;
}

void write_dump(std::ostream& out, const TraceDump& dump) {
  out << "mcs-trace v1\n";
  out << "names " << dump.names.size() << "\n";
  for (std::size_t i = 0; i < dump.names.size(); ++i) {
    out << i << " " << dump.names[i] << "\n";
  }
  out << "events " << dump.events.size() << " dropped " << dump.dropped
      << " total " << dump.total << "\n";
  for (const TraceEvent& e : dump.events) {
    out << e.at << " " << e.seq << " " << static_cast<int>(e.phase) << " "
        << e.name << " " << e.track << " " << e.dur << " " << e.a << " "
        << e.b << "\n";
  }
}

std::string dump_to_string(const Tracer& tracer) {
  std::ostringstream out;
  write_dump(out, snapshot(tracer));
  return out.str();
}

namespace {
[[noreturn]] void malformed(std::size_t line_no, const std::string& what) {
  throw std::invalid_argument("trace dump line " + std::to_string(line_no) +
                              ": " + what);
}
}  // namespace

TraceDump read_dump(std::istream& in) {
  TraceDump dump;
  std::string line;
  std::size_t line_no = 0;
  // Header (skipping comments and blank lines).
  for (;;) {
    if (!std::getline(in, line)) malformed(line_no, "missing header");
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    if (line != "mcs-trace v1") malformed(line_no, "bad header '" + line + "'");
    break;
  }
  std::size_t name_count = 0;
  {
    if (!std::getline(in, line)) malformed(line_no, "missing names header");
    ++line_no;
    std::istringstream ls(line);
    std::string tag;
    if (!(ls >> tag >> name_count) || tag != "names") {
      malformed(line_no, "expected 'names <N>'");
    }
  }
  dump.names.resize(name_count);
  for (std::size_t i = 0; i < name_count; ++i) {
    if (!std::getline(in, line)) malformed(line_no, "truncated name table");
    ++line_no;
    std::istringstream ls(line);
    std::size_t id = 0;
    std::string name;
    if (!(ls >> id >> name) || id >= name_count) {
      malformed(line_no, "bad name entry '" + line + "'");
    }
    dump.names[id] = name;
  }
  std::size_t event_count = 0;
  {
    if (!std::getline(in, line)) malformed(line_no, "missing events header");
    ++line_no;
    std::istringstream ls(line);
    std::string tag, dtag, ttag;
    if (!(ls >> tag >> event_count >> dtag >> dump.dropped >> ttag >>
          dump.total) ||
        tag != "events" || dtag != "dropped" || ttag != "total") {
      malformed(line_no, "expected 'events <M> dropped <D> total <T>'");
    }
  }
  dump.events.reserve(event_count);
  for (std::size_t i = 0; i < event_count; ++i) {
    if (!std::getline(in, line)) malformed(line_no, "truncated event list");
    ++line_no;
    std::istringstream ls(line);
    TraceEvent e;
    int phase = 0;
    unsigned name = 0;
    if (!(ls >> e.at >> e.seq >> phase >> name >> e.track >> e.dur >> e.a >>
          e.b) ||
        phase < 0 || phase > 2 || name >= dump.names.size()) {
      malformed(line_no, "bad event '" + line + "'");
    }
    e.phase = static_cast<Phase>(phase);
    e.name = static_cast<NameId>(name);
    dump.events.push_back(e);
  }
  return dump;
}

namespace {

void write_json_string(std::ostream& out, const std::string& s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default: out << c;
    }
  }
  out << '"';
}

}  // namespace

void write_chrome_trace(std::ostream& out, const TraceDump& dump) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : dump.events) {
    if (!first) out << ",";
    first = false;
    out << "\n{\"name\":";
    write_json_string(out, dump.names[e.name]);
    out << ",\"pid\":0,\"tid\":" << e.track << ",\"ts\":" << e.at;
    switch (e.phase) {
      case Phase::kComplete:
        out << ",\"ph\":\"X\",\"dur\":" << e.dur;
        break;
      case Phase::kCounter:
        out << ",\"ph\":\"C\"";
        break;
      case Phase::kInstant:
        out << ",\"ph\":\"i\",\"s\":\"t\"";
        break;
    }
    if (e.phase == Phase::kCounter) {
      out << ",\"args\":{\"value\":" << e.a << "}";
    } else {
      out << ",\"args\":{\"a\":" << e.a << ",\"b\":" << e.b
          << ",\"seq\":" << e.seq << "}";
    }
    out << "}";
  }
  out << "\n]}\n";
}

void write_timeline(std::ostream& out, const TraceDump& dump) {
  for (const TraceEvent& e : dump.events) {
    out << e.at << "us ";
    switch (e.phase) {
      case Phase::kComplete:
        out << "[span " << e.dur << "us] ";
        break;
      case Phase::kCounter:
        out << "[counter] ";
        break;
      case Phase::kInstant:
        out << "[instant] ";
        break;
    }
    out << dump.names[e.name] << " track=" << e.track;
    if (e.phase == Phase::kCounter) {
      out << " value=" << e.a;
    } else {
      out << " a=" << e.a << " b=" << e.b;
    }
    out << " seq=" << e.seq << "\n";
  }
  if (dump.dropped > 0) {
    out << "(" << dump.dropped << " older events dropped; ring total "
        << dump.total << ")\n";
  }
}

std::uint64_t trace_digest(const TraceDump& dump) {
  metrics::Digest d;
  for (const std::string& n : dump.names) d.add_bytes(n.data(), n.size());
  d.add_u64(dump.total);
  for (const TraceEvent& e : dump.events) {
    d.add_u64(static_cast<std::uint64_t>(e.at));
    d.add_u64(e.seq);
    d.add_u64(static_cast<std::uint64_t>(e.dur));
    d.add_u64(static_cast<std::uint64_t>(e.a));
    d.add_u64(static_cast<std::uint64_t>(e.b));
    d.add_u64((static_cast<std::uint64_t>(e.track) << 32) |
              (static_cast<std::uint64_t>(e.name) << 8) |
              static_cast<std::uint64_t>(e.phase));
  }
  return d.value();
}

}  // namespace mcs::obs
