// Sweep-scale telemetry reports: fold merged registries + SLO state +
// trace cost attribution into percentile tables and a stable-key JSON
// document.
//
// The paper's observation pillar (§3.3) asks for comparable, repeatable
// measurement across experiments; this module is the single rendering
// path from the deterministic in-memory state (obs::Registry merged in
// flat grid order, SloTracker counters, a TraceDump exemplar) to the two
// consumer formats:
//
//   * write_report_text — human tables: per-histogram p50/p95/p99/p99.9
//     with honest bucket-resolution error bounds, SLO attainment +
//     violation minutes, per-event-type cost attribution.
//   * write_report_json — "mcs-report-v1": keys in a fixed order, arrays
//     in registration/name-table order, doubles at max round-trip
//     precision — byte-identical across runs and thread counts, so CI
//     diffs two reports with `cmp` and `tools/mcs_report --diff` explains
//     *what* moved between PRs.
//
// Quantiles come from metrics::Histogram's log2 bins, so every estimate
// carries the bucket's [lo, hi) bounds: the true quantile provably lies
// inside, and reports never pretend to more resolution than the bins hold.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "metrics/stats.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/slo.hpp"

namespace mcs::obs {

/// A bucket-resolution quantile: `value` is the geometric-midpoint point
/// estimate (what Histogram::quantile returns); the true quantile lies in
/// [lo, hi] — the holding bucket's bounds clamped to the recorded
/// min/max. All zero for an empty histogram.
struct QuantileEstimate {
  double value = 0.0;
  double lo = 0.0;
  double hi = 0.0;
};

/// Quantile with error bounds from the log2 bins, q in [0,1].
[[nodiscard]] QuantileEstimate histogram_quantile(const metrics::Histogram& h,
                                                  double q);

/// Per-event-name cost attribution folded from a trace dump: how many
/// ring events each name produced and how much simulated time its
/// complete spans covered. This is the one fold both `mcs_trace --stats`
/// and the report's cost table use.
struct CostRow {
  std::string name;
  std::uint64_t events = 0;
  std::uint64_t span_us = 0;  ///< summed kComplete durations
};

/// Rows in name-table order; names with zero retained events are omitted.
[[nodiscard]] std::vector<CostRow> fold_costs(const TraceDump& dump);

/// One SLO objective's outcome, read back from the registry counters a
/// SloTracker maintained (slo.<class>.samples/good/violation_us/
/// burn_crossings).
struct SloRow {
  std::string klass;
  double threshold_seconds = 0.0;
  double target = 0.0;
  std::uint64_t samples = 0;
  std::uint64_t good = 0;
  double attainment = 1.0;  ///< good/samples over the whole run; 1 if empty
  double violation_minutes = 0.0;
  std::uint64_t burn_crossings = 0;
  bool met = true;  ///< attainment >= target
};

/// One row per spec, in spec order. Specs whose counters are absent from
/// the registry (SLO engine never attached) report zero samples.
[[nodiscard]] std::vector<SloRow> slo_rows(const std::vector<SloSpec>& specs,
                                           const Registry& registry);

/// Everything a report renders. All pointers are borrowed and may be
/// null/empty: a report without SLO specs has no slo section, one without
/// a trace exemplar has no cost table.
struct ReportInputs {
  const Registry* registry = nullptr;
  const std::vector<SloSpec>* slo = nullptr;
  const TraceDump* exemplar = nullptr;  ///< cost-attribution source
  std::uint64_t trace_digest = 0;
  bool has_trace_digest = false;
  std::uint64_t cells = 0;  ///< sweep cells folded into `registry`
};

/// Stable-key JSON ("mcs-report-v1"): fixed key order, arrays in
/// registration/name-table order, doubles at round-trip precision —
/// byte-identical for identical inputs.
void write_report_json(std::ostream& out, const ReportInputs& in);

/// Human-readable tables (the `mcs_report FILE` rendering).
void write_report_text(std::ostream& out, const ReportInputs& in);

}  // namespace mcs::obs
