#include "obs/registry.hpp"

#include <ostream>
#include <stdexcept>

namespace mcs::obs {

const char* to_string(InstrumentKind k) {
  switch (k) {
    case InstrumentKind::kCounter: return "counter";
    case InstrumentKind::kGauge: return "gauge";
    case InstrumentKind::kHistogram: return "histogram";
  }
  return "?";
}

const Registry::Slot* Registry::find(std::string_view name) const {
  for (const Slot& s : order_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

namespace {
[[noreturn]] void kind_mismatch(std::string_view name, InstrumentKind want,
                                InstrumentKind have) {
  throw std::logic_error("Registry: instrument '" + std::string(name) +
                         "' is a " + std::string(to_string(have)) +
                         ", requested as " + std::string(to_string(want)));
}
}  // namespace

Counter& Registry::counter(std::string_view name) {
  if (const Slot* s = find(name)) {
    if (s->kind != InstrumentKind::kCounter) {
      kind_mismatch(name, InstrumentKind::kCounter, s->kind);
    }
    return counters_[s->index];
  }
  order_.push_back(
      Slot{std::string(name), InstrumentKind::kCounter, counters_.size()});
  return counters_.emplace_back();
}

Gauge& Registry::gauge(std::string_view name) {
  if (const Slot* s = find(name)) {
    if (s->kind != InstrumentKind::kGauge) {
      kind_mismatch(name, InstrumentKind::kGauge, s->kind);
    }
    return gauges_[s->index];
  }
  order_.push_back(
      Slot{std::string(name), InstrumentKind::kGauge, gauges_.size()});
  return gauges_.emplace_back();
}

metrics::Histogram& Registry::histogram(std::string_view name) {
  if (const Slot* s = find(name)) {
    if (s->kind != InstrumentKind::kHistogram) {
      kind_mismatch(name, InstrumentKind::kHistogram, s->kind);
    }
    return histograms_[s->index];
  }
  order_.push_back(
      Slot{std::string(name), InstrumentKind::kHistogram, histograms_.size()});
  return histograms_.emplace_back();
}

const Counter* Registry::find_counter(std::string_view name) const {
  const Slot* s = find(name);
  return s != nullptr && s->kind == InstrumentKind::kCounter
             ? &counters_[s->index]
             : nullptr;
}

const Gauge* Registry::find_gauge(std::string_view name) const {
  const Slot* s = find(name);
  return s != nullptr && s->kind == InstrumentKind::kGauge ? &gauges_[s->index]
                                                           : nullptr;
}

const metrics::Histogram* Registry::find_histogram(
    std::string_view name) const {
  const Slot* s = find(name);
  return s != nullptr && s->kind == InstrumentKind::kHistogram
             ? &histograms_[s->index]
             : nullptr;
}

Registry::InstrumentView Registry::view(std::size_t i) const {
  const Slot& s = order_[i];
  InstrumentView v;
  v.name = s.name;
  v.kind = s.kind;
  switch (s.kind) {
    case InstrumentKind::kCounter: v.counter = &counters_[s.index]; break;
    case InstrumentKind::kGauge: v.gauge = &gauges_[s.index]; break;
    case InstrumentKind::kHistogram:
      v.histogram = &histograms_[s.index];
      break;
  }
  return v;
}

void Registry::merge(const Registry& other) {
  for (const Slot& s : other.order_) {
    switch (s.kind) {
      case InstrumentKind::kCounter:
        counter(s.name).merge(other.counters_[s.index]);
        break;
      case InstrumentKind::kGauge:
        gauge(s.name).merge(other.gauges_[s.index]);
        break;
      case InstrumentKind::kHistogram:
        histogram(s.name).merge(other.histograms_[s.index]);
        break;
    }
  }
}

void Registry::fold_digest(metrics::Digest& d) const {
  d.add_u64(order_.size());
  for (const Slot& s : order_) {
    d.add_bytes(s.name.data(), s.name.size());
    d.add_u64(static_cast<std::uint64_t>(s.kind));
    switch (s.kind) {
      case InstrumentKind::kCounter:
        d.add_u64(counters_[s.index].value());
        break;
      case InstrumentKind::kGauge: {
        const Gauge& g = gauges_[s.index];
        d.add_u64(g.seen() ? 1 : 0);
        d.add_double(g.value());
        d.add_double(g.max());
        break;
      }
      case InstrumentKind::kHistogram: {
        const metrics::Histogram& h = histograms_[s.index];
        d.add_u64(h.count());
        d.add_double(h.sum());
        for (std::size_t b = 0; b < metrics::Histogram::kBuckets; ++b) {
          d.add_u64(h.bin(b));
        }
        break;
      }
    }
  }
}

void Registry::print(std::ostream& out) const {
  for (const Slot& s : order_) {
    switch (s.kind) {
      case InstrumentKind::kCounter:
        out << s.name << " = " << counters_[s.index].value() << "\n";
        break;
      case InstrumentKind::kGauge: {
        const Gauge& g = gauges_[s.index];
        out << s.name << " = " << g.value() << " (max " << g.max() << ")\n";
        break;
      }
      case InstrumentKind::kHistogram: {
        const metrics::Histogram& h = histograms_[s.index];
        out << s.name << " = count " << h.count() << ", mean " << h.mean()
            << ", p50 " << h.quantile(0.5) << ", p99 " << h.quantile(0.99)
            << ", max " << h.max() << "\n";
        break;
      }
    }
  }
}

}  // namespace mcs::obs
