// Trace export: ring-dump round-trip, Chrome trace_event JSON, and a text
// timeline.
//
// A TraceDump is the serializable snapshot of a Tracer: name table +
// events sorted by (at, seq) + drop accounting. The flight recorder
// (check/fuzz.cpp, mcs_check) writes dumps next to shrunken repros in the
// versioned text format below; `tools/mcs_trace` converts dumps to Chrome
// trace_event JSON (load in chrome://tracing or Perfetto) or a terminal
// timeline. The exp_* harness writes Chrome JSON directly via --trace.
//
// Dump format (line-oriented, '#' comments allowed before the header):
//   mcs-trace v1
//   names <N>
//   <id> <name>            ... N lines
//   events <M> dropped <D> total <T>
//   <at> <seq> <phase> <name-id> <track> <dur> <a> <b>   ... M lines
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace mcs::obs {

struct TraceDump {
  std::vector<std::string> names;
  std::vector<TraceEvent> events;  ///< sorted by (at, seq)
  std::uint64_t dropped = 0;
  std::uint64_t total = 0;
};

/// Snapshots a tracer into the serializable form.
[[nodiscard]] TraceDump snapshot(const Tracer& tracer);

/// Writes / parses the versioned dump format above. read_dump throws
/// std::invalid_argument on malformed input.
void write_dump(std::ostream& out, const TraceDump& dump);
[[nodiscard]] TraceDump read_dump(std::istream& in);
[[nodiscard]] std::string dump_to_string(const Tracer& tracer);

/// Chrome trace_event JSON (the {"traceEvents": [...]} object form).
/// Complete spans become "X" events (ts/dur in µs), instants "i", counter
/// samples "C"; the track is the tid, so machines get their own lanes.
void write_chrome_trace(std::ostream& out, const TraceDump& dump);

/// Plain-text timeline, one event per line, sim-time ordered.
void write_timeline(std::ostream& out, const TraceDump& dump);

/// Same digest Tracer::digest() computes, but from a parsed dump — so a
/// dump file can be re-verified after the fact.
[[nodiscard]] std::uint64_t trace_digest(const TraceDump& dump);

}  // namespace mcs::obs
