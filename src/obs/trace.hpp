// Deterministic simulated-time tracing (the "Operate & Observe" layer of
// the Fig. 3 reference architecture).
//
// obs::Tracer records spans and instant events into a fixed-capacity ring
// buffer keyed by (sim_time, record_seq). All timestamps are simulated
// microseconds taken from the caller's sim::Simulator clock — never the
// wall clock (mcs_lint rule D1 applies to this directory) — so a trace is
// a pure function of the scenario seed: re-running the same cell yields a
// bit-identical ring, and sweeps that merge per-cell trace digests in flat
// grid order are bit-identical at MCS_THREADS=1 and 8.
//
// Hot-path contract (DESIGN.md §11): the ring is sized once at
// construction and record() paths write into it without allocating —
// names are interned to dense NameIds during setup (intern() is the only
// allocating call), so emitting from `// mcs-lint: hot` functions is legal
// under rule H2. When the ring is full the oldest events are overwritten
// (flight-recorder semantics): `dropped()` reports how many.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/simulator.hpp"

namespace mcs::obs {

/// Dense id for an interned event name (Tracer::intern).
using NameId = std::uint16_t;

/// Chrome trace_event phases this layer emits: an instant marker, a
/// complete span (start + duration), or a counter sample.
enum class Phase : std::uint8_t {
  kInstant = 0,
  kComplete = 1,
  kCounter = 2,
};

[[nodiscard]] const char* to_string(Phase p);

/// One ring entry. `at` is the event's simulated time (span start for
/// kComplete); `seq` is the global record sequence number, which breaks
/// ties among same-instant events with the total order they were applied
/// in — sorting by (at, seq) reconstructs a deterministic timeline.
struct TraceEvent {
  sim::SimTime at = 0;
  std::uint64_t seq = 0;
  std::int64_t dur = 0;  ///< span duration in µs (kComplete only)
  std::int64_t a = 0;    ///< payload: job id / counter value / kill count
  std::int64_t b = 0;    ///< payload: task index / extra detail
  std::uint32_t track = 0;  ///< timeline lane (machine id, or 0)
  NameId name = 0;
  Phase phase = Phase::kInstant;

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

class Tracer {
 public:
  /// Ring capacity is fixed at construction; all record-path storage is
  /// allocated here.
  explicit Tracer(std::size_t capacity = 4096);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Interns a name to a dense id (returns the existing id on repeat).
  /// Setup path only — allocates; call before the simulation runs.
  NameId intern(std::string_view name);

  /// Records an instant event. Allocation-free.
  // mcs-lint: hot
  void instant(sim::SimTime at, NameId name, std::uint32_t track = 0,
               std::int64_t a = 0, std::int64_t b = 0) {
    TraceEvent& e = next_slot();
    e.at = at;
    e.dur = 0;
    e.a = a;
    e.b = b;
    e.track = track;
    e.name = name;
    e.phase = Phase::kInstant;
  }

  /// Records a complete span [start, start+dur). Allocation-free.
  // mcs-lint: hot
  void complete(sim::SimTime start, sim::SimTime dur, NameId name,
                std::uint32_t track = 0, std::int64_t a = 0,
                std::int64_t b = 0) {
    TraceEvent& e = next_slot();
    e.at = start;
    e.dur = dur;
    e.a = a;
    e.b = b;
    e.track = track;
    e.name = name;
    e.phase = Phase::kComplete;
  }

  /// Records a counter sample (value `v` at time `at`). Allocation-free.
  // mcs-lint: hot
  void counter(sim::SimTime at, NameId name, std::int64_t v) {
    TraceEvent& e = next_slot();
    e.at = at;
    e.dur = 0;
    e.a = v;
    e.b = 0;
    e.track = 0;
    e.name = name;
    e.phase = Phase::kCounter;
  }

  [[nodiscard]] std::size_t capacity() const { return ring_.size(); }
  /// Events recorded over the tracer's lifetime (including overwritten).
  [[nodiscard]] std::uint64_t total() const { return total_; }
  /// Events lost to ring wrap-around (flight-recorder overwrite).
  [[nodiscard]] std::uint64_t dropped() const {
    return total_ > ring_.size() ? total_ - ring_.size() : 0;
  }
  /// Events currently retained in the ring.
  [[nodiscard]] std::size_t size() const {
    return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                                 : ring_.size();
  }

  [[nodiscard]] const std::string& name(NameId id) const { return names_[id]; }
  [[nodiscard]] const std::vector<std::string>& names() const { return names_; }

  /// Copies the retained events into `out` sorted by (at, seq) — the
  /// deterministic timeline order. Export path; allocates freely.
  void snapshot(std::vector<TraceEvent>& out) const;

  /// Order-sensitive digest of the sorted timeline plus the name table
  /// (the value trace-determinism gates compare across thread counts).
  [[nodiscard]] std::uint64_t digest() const;

  /// Forgets all recorded events (capacity and interned names survive).
  void clear() { total_ = 0; }

 private:
  // mcs-lint: hot
  TraceEvent& next_slot() {
    TraceEvent& e = ring_[static_cast<std::size_t>(total_ % ring_.size())];
    e.seq = total_++;
    return e;
  }

  std::vector<TraceEvent> ring_;
  std::vector<std::string> names_;
  std::uint64_t total_ = 0;
};

}  // namespace mcs::obs
