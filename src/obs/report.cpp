#include "obs/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <ostream>

namespace mcs::obs {

QuantileEstimate histogram_quantile(const metrics::Histogram& h, double q) {
  QuantileEstimate est;
  const std::size_t b = h.quantile_bucket(q);
  if (b == metrics::Histogram::kBuckets) return est;  // empty
  est.value = h.quantile(q);
  const double lo = metrics::Histogram::bucket_floor(b);
  const double hi = b + 1 < metrics::Histogram::kBuckets
                        ? metrics::Histogram::bucket_floor(b + 1)
                        : h.max();
  // The true quantile is inside the bucket *and* inside [min, max].
  est.lo = std::max(lo, h.min());
  est.hi = std::min(hi, h.max());
  if (est.hi < est.lo) est.hi = est.lo;
  return est;
}

std::vector<CostRow> fold_costs(const TraceDump& dump) {
  std::vector<std::uint64_t> events(dump.names.size(), 0);
  std::vector<std::uint64_t> span_us(dump.names.size(), 0);
  for (const TraceEvent& e : dump.events) {
    if (e.name >= dump.names.size()) continue;  // defensive: foreign dump
    ++events[e.name];
    if (e.phase == Phase::kComplete && e.dur > 0) {
      span_us[e.name] += static_cast<std::uint64_t>(e.dur);
    }
  }
  std::vector<CostRow> rows;
  for (std::size_t i = 0; i < dump.names.size(); ++i) {
    if (events[i] == 0) continue;
    rows.push_back(CostRow{dump.names[i], events[i], span_us[i]});
  }
  return rows;
}

std::vector<SloRow> slo_rows(const std::vector<SloSpec>& specs,
                             const Registry& registry) {
  std::vector<SloRow> rows;
  rows.reserve(specs.size());
  for (const SloSpec& spec : specs) {
    SloRow row;
    row.klass = spec.klass;
    row.threshold_seconds = spec.threshold_seconds;
    row.target = spec.target;
    const std::string prefix = "slo." + spec.klass + ".";
    if (const Counter* c = registry.find_counter(prefix + "samples")) {
      row.samples = c->value();
    }
    if (const Counter* c = registry.find_counter(prefix + "good")) {
      row.good = c->value();
    }
    if (const Counter* c = registry.find_counter(prefix + "violation_us")) {
      row.violation_minutes =
          static_cast<double>(c->value()) / (60.0 * 1'000'000.0);
    }
    if (const Counter* c = registry.find_counter(prefix + "burn_crossings")) {
      row.burn_crossings = c->value();
    }
    row.attainment = row.samples == 0 ? 1.0
                                      : static_cast<double>(row.good) /
                                            static_cast<double>(row.samples);
    row.met = row.attainment >= row.target;
    rows.push_back(std::move(row));
  }
  return rows;
}

namespace {

/// Round-trip-precision double; non-finite values become null (JSON has
/// no inf/nan literal).
void json_double(std::ostream& out, double v) {
  if (!std::isfinite(v)) {
    out << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out << buf;
}

void json_string(std::ostream& out, std::string_view s) {
  out << '"';
  for (char c : s) {
    switch (c) {
      case '"': out << "\\\""; break;
      case '\\': out << "\\\\"; break;
      case '\n': out << "\\n"; break;
      case '\t': out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out << buf;
        } else {
          out << c;
        }
    }
  }
  out << '"';
}

void json_quantile(std::ostream& out, const char* key,
                   const QuantileEstimate& est) {
  out << '"' << key << "\":{\"value\":";
  json_double(out, est.value);
  out << ",\"lo\":";
  json_double(out, est.lo);
  out << ",\"hi\":";
  json_double(out, est.hi);
  out << '}';
}

constexpr double kQuantiles[] = {0.5, 0.95, 0.99, 0.999};
constexpr const char* kQuantileKeys[] = {"p50", "p95", "p99", "p999"};
constexpr const char* kQuantileLabels[] = {"p50", "p95", "p99", "p99.9"};

}  // namespace

void write_report_json(std::ostream& out, const ReportInputs& in) {
  out << "{\"schema\":\"mcs-report-v1\"";
  out << ",\"cells\":" << in.cells;
  out << ",\"instruments\":[";
  if (in.registry != nullptr) {
    for (std::size_t i = 0; i < in.registry->size(); ++i) {
      const Registry::InstrumentView v = in.registry->view(i);
      if (i != 0) out << ',';
      out << "{\"name\":";
      json_string(out, v.name);
      out << ",\"kind\":\"" << to_string(v.kind) << '"';
      switch (v.kind) {
        case InstrumentKind::kCounter:
          out << ",\"value\":" << v.counter->value();
          break;
        case InstrumentKind::kGauge:
          out << ",\"value\":";
          json_double(out, v.gauge->value());
          out << ",\"max\":";
          json_double(out, v.gauge->max());
          break;
        case InstrumentKind::kHistogram: {
          const metrics::Histogram& h = *v.histogram;
          out << ",\"count\":" << h.count();
          out << ",\"mean\":";
          json_double(out, h.mean());
          out << ",\"min\":";
          json_double(out, h.min());
          out << ",\"max\":";
          json_double(out, h.max());
          for (std::size_t qi = 0; qi < 4; ++qi) {
            out << ',';
            json_quantile(out, kQuantileKeys[qi],
                          histogram_quantile(h, kQuantiles[qi]));
          }
          break;
        }
      }
      out << '}';
    }
  }
  out << ']';
  if (in.slo != nullptr && !in.slo->empty() && in.registry != nullptr) {
    const std::vector<SloRow> rows = slo_rows(*in.slo, *in.registry);
    out << ",\"slo\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const SloRow& r = rows[i];
      if (i != 0) out << ',';
      out << "{\"class\":";
      json_string(out, r.klass);
      out << ",\"threshold_s\":";
      json_double(out, r.threshold_seconds);
      out << ",\"target\":";
      json_double(out, r.target);
      out << ",\"samples\":" << r.samples;
      out << ",\"good\":" << r.good;
      out << ",\"attainment\":";
      json_double(out, r.attainment);
      out << ",\"violation_minutes\":";
      json_double(out, r.violation_minutes);
      out << ",\"burn_crossings\":" << r.burn_crossings;
      out << ",\"met\":" << (r.met ? "true" : "false");
      out << '}';
    }
    out << ']';
  }
  if (in.exemplar != nullptr) {
    const std::vector<CostRow> rows = fold_costs(*in.exemplar);
    out << ",\"costs\":[";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const CostRow& r = rows[i];
      if (i != 0) out << ',';
      out << "{\"name\":";
      json_string(out, r.name);
      out << ",\"events\":" << r.events;
      out << ",\"span_us\":" << r.span_us;
      out << '}';
    }
    out << "],\"trace_dropped\":" << in.exemplar->dropped
        << ",\"trace_total\":" << in.exemplar->total;
  }
  if (in.has_trace_digest) {
    out << ",\"trace_digest\":\"" << metrics::hex16(in.trace_digest) << '"';
  }
  out << "}\n";
}

void write_report_text(std::ostream& out, const ReportInputs& in) {
  out << "mcs report (mcs-report-v1), cells " << in.cells << "\n";
  if (in.registry != nullptr) {
    bool header = false;
    for (std::size_t i = 0; i < in.registry->size(); ++i) {
      const Registry::InstrumentView v = in.registry->view(i);
      if (v.kind != InstrumentKind::kHistogram) continue;
      if (!header) {
        out << "\nhistograms (quantiles as estimate [lo, hi] bucket bounds)\n";
        header = true;
      }
      const metrics::Histogram& h = *v.histogram;
      out << "  " << v.name << ": count " << h.count() << ", mean "
          << h.mean() << ", min " << h.min() << ", max " << h.max() << "\n";
      for (std::size_t qi = 0; qi < 4; ++qi) {
        const QuantileEstimate est = histogram_quantile(h, kQuantiles[qi]);
        out << "    " << kQuantileLabels[qi] << " " << est.value << " ["
            << est.lo << ", " << est.hi << "]\n";
      }
    }
    header = false;
    for (std::size_t i = 0; i < in.registry->size(); ++i) {
      const Registry::InstrumentView v = in.registry->view(i);
      if (v.kind == InstrumentKind::kHistogram) continue;
      if (!header) {
        out << "\ncounters & gauges\n";
        header = true;
      }
      if (v.kind == InstrumentKind::kCounter) {
        out << "  " << v.name << " = " << v.counter->value() << "\n";
      } else {
        out << "  " << v.name << " = " << v.gauge->value() << " (max "
            << v.gauge->max() << ")\n";
      }
    }
  }
  if (in.slo != nullptr && !in.slo->empty() && in.registry != nullptr) {
    out << "\nslo attainment\n";
    for (const SloRow& r : slo_rows(*in.slo, *in.registry)) {
      out << "  " << r.klass << " (<= " << r.threshold_seconds << " s, target "
          << r.target << "): " << (r.met ? "MET" : "MISSED") << ", attainment "
          << r.attainment << " (" << r.good << "/" << r.samples
          << "), violation " << r.violation_minutes << " min, burn crossings "
          << r.burn_crossings << "\n";
    }
  }
  if (in.exemplar != nullptr) {
    out << "\ntrace cost attribution (exemplar cell; " << in.exemplar->dropped
        << " of " << in.exemplar->total << " events dropped)\n";
    for (const CostRow& r : fold_costs(*in.exemplar)) {
      out << "  " << r.name << ": events " << r.events << ", span "
          << r.span_us << " us\n";
    }
  }
  if (in.has_trace_digest) {
    out << "\ntrace digest " << metrics::hex16(in.trace_digest) << "\n";
  }
}

}  // namespace mcs::obs
