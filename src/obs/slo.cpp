#include "obs/slo.hpp"

#include <sstream>
#include <stdexcept>

namespace mcs::obs {

namespace {

/// Splits "a:b:c" fields; throws with a position-bearing message.
std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    const std::size_t end = text.find(sep, start);
    if (end == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      break;
    }
    out.emplace_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

double parse_double(const std::string& field, const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(field, &used);
    if (used != field.size()) throw std::invalid_argument(field);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument(std::string("SLO spec: malformed ") + what +
                                " '" + field + "'");
  }
}

}  // namespace

std::string to_string(const SloSpec& spec) {
  std::ostringstream out;
  out << spec.klass << ":" << spec.threshold_seconds << ":" << spec.target
      << ":" << sim::to_seconds(spec.window) << ":" << spec.burn_threshold;
  return out.str();
}

std::vector<SloSpec> parse_slo_specs(std::string_view text) {
  std::vector<SloSpec> specs;
  if (text.empty()) return specs;
  for (const std::string& item : split(text, ';')) {
    if (item.empty()) continue;
    const auto fields = split(item, ':');
    if (fields.size() < 3 || fields.size() > 5) {
      throw std::invalid_argument(
          "SLO spec: expected CLASS:THRESHOLD_S:TARGET[:WINDOW_S[:BURN]], "
          "got '" + item + "'");
    }
    SloSpec spec;
    spec.klass = fields[0];
    if (spec.klass.empty()) {
      throw std::invalid_argument("SLO spec: empty class in '" + item + "'");
    }
    spec.threshold_seconds = parse_double(fields[1], "threshold");
    if (!(spec.threshold_seconds > 0.0)) {
      throw std::invalid_argument("SLO spec: threshold must be > 0 in '" +
                                  item + "'");
    }
    spec.target = parse_double(fields[2], "target");
    if (!(spec.target > 0.0) || spec.target > 1.0) {
      throw std::invalid_argument("SLO spec: target must be in (0, 1] in '" +
                                  item + "'");
    }
    if (fields.size() >= 4) {
      const double w = parse_double(fields[3], "window");
      if (!(w > 0.0)) {
        throw std::invalid_argument("SLO spec: window must be > 0 in '" +
                                    item + "'");
      }
      spec.window = sim::from_seconds(w);
    }
    if (fields.size() == 5) {
      spec.burn_threshold = parse_double(fields[4], "burn threshold");
      if (!(spec.burn_threshold > 0.0)) {
        throw std::invalid_argument(
            "SLO spec: burn threshold must be > 0 in '" + item + "'");
      }
    }
    for (const SloSpec& existing : specs) {
      if (existing.klass == spec.klass) {
        throw std::invalid_argument(
            "SLO spec: duplicate class '" + spec.klass +
            "' (its registry instruments would alias)");
      }
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

SloTracker::SloTracker(std::vector<SloSpec> specs, Registry& registry,
                       Tracer* tracer)
    : specs_(std::move(specs)), tracer_(tracer) {
  states_.resize(specs_.size());
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    const SloSpec& spec = specs_[i];
    State& st = states_[i];
    st.slot_width = spec.window / static_cast<sim::SimTime>(kWindowSlots);
    if (st.slot_width < 1) st.slot_width = 1;
    const std::string prefix = "slo." + spec.klass + ".";
    st.ctr_samples = &registry.counter(prefix + "samples");
    st.ctr_good = &registry.counter(prefix + "good");
    st.ctr_violation_us = &registry.counter(prefix + "violation_us");
    st.ctr_crossings = &registry.counter(prefix + "burn_crossings");
    if (tracer_ != nullptr) {
      st.tn_begin = tracer_->intern(prefix + "violation.begin");
      st.tn_end = tracer_->intern(prefix + "violation.end");
      st.tn_burn = tracer_->intern(prefix + "burn");
    }
  }
}

// mcs-lint: hot
void SloTracker::evaluate(State& st, const SloSpec& spec, sim::SimTime at) {
  // Attainment over the live window; an empty window never violates.
  const bool met =
      st.window_total == 0 ||
      static_cast<double>(st.window_good) >=
          spec.target * static_cast<double>(st.window_total);
  if (!met && !st.violating) {
    st.violating = true;
    st.violation_begin = at;
    if (tracer_ != nullptr) {
      tracer_->instant(at, st.tn_begin, 0,
                       static_cast<std::int64_t>(st.window_good),
                       static_cast<std::int64_t>(st.window_total));
    }
  } else if (met && st.violating) {
    st.violating = false;
    st.ctr_violation_us->add(
        static_cast<std::uint64_t>(at - st.violation_begin));
    if (tracer_ != nullptr) {
      tracer_->instant(at, st.tn_end, 0,
                       static_cast<std::int64_t>(at - st.violation_begin));
    }
  }
  // Burn rate: error-budget consumption relative to what the target
  // allows. bad/total vs (1-target), compared in cross-multiplied integer-
  // free form to avoid dividing by an empty budget.
  const double bad = static_cast<double>(st.window_total - st.window_good);
  const double budget =
      (1.0 - spec.target) * static_cast<double>(st.window_total);
  const bool burning =
      st.window_total > 0 && bad > spec.burn_threshold * budget;
  if (burning && !st.burning) {
    st.ctr_crossings->add();
    if (tracer_ != nullptr) {
      tracer_->instant(at, st.tn_burn, 0, static_cast<std::int64_t>(bad),
                       static_cast<std::int64_t>(st.window_total));
    }
  }
  st.burning = burning;
}

void SloTracker::finalize(sim::SimTime at) {
  for (std::size_t i = 0; i < states_.size(); ++i) {
    State& st = states_[i];
    if (st.violating) {
      st.violating = false;
      const sim::SimTime begin = st.violation_begin;
      st.ctr_violation_us->add(
          static_cast<std::uint64_t>(at > begin ? at - begin : 0));
      if (tracer_ != nullptr) {
        tracer_->instant(at, st.tn_end, 0,
                         static_cast<std::int64_t>(at - begin));
      }
    }
  }
}

double SloTracker::window_attainment(std::size_t slo) const {
  const State& st = states_[slo];
  if (st.window_total == 0) return 1.0;
  return static_cast<double>(st.window_good) /
         static_cast<double>(st.window_total);
}

}  // namespace mcs::obs
