// Metric instruments: counters, gauges, and log-bucketed histograms.
//
// obs::Registry replaces the ad-hoc tallies that used to live as raw
// member variables in sched/engine.cpp, autoscale/, and failures/: a
// component registers named instruments during setup (allocating), keeps
// the returned references, and records through them on the hot path —
// Counter::add and metrics::Histogram::record are branch-free integer
// updates with no heap traffic, legal inside `// mcs-lint: hot` functions.
//
// Determinism contract: instruments iterate in registration order (stable
// across runs because registration happens in deterministic setup code),
// merge() folds another registry in *its* registration order, and
// fold_digest() hashes names and values in registration order — so
// per-cell registries merged in flat grid order digest bit-identically at
// any thread count, same as metrics::Accumulator/Digest (DESIGN.md §11).
//
// Histogram binning is NOT duplicated here: the histogram instrument *is*
// metrics::Histogram, the repository's single binning implementation.
#pragma once

#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/stats.hpp"

namespace mcs::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  /// Allocation-free.
  // mcs-lint: hot
  void add(std::uint64_t delta = 1) { v_ += delta; }
  [[nodiscard]] std::uint64_t value() const { return v_; }
  /// Merging counters sums them.
  void merge(const Counter& other) { v_ += other.v_; }

 private:
  std::uint64_t v_ = 0;
};

/// Last-written level (queue depth, target pool size, ...).
class Gauge {
 public:
  /// Allocation-free.
  // mcs-lint: hot
  void set(double v) {
    v_ = v;
    if (!set_ || v > max_) max_ = v;
    set_ = true;
  }
  [[nodiscard]] double value() const { return v_; }
  [[nodiscard]] double max() const { return max_; }
  [[nodiscard]] bool seen() const { return set_; }
  /// Merging gauges keeps the last value of `other` when it was ever set
  /// (the merged-in registry is the later/child one) and the max of maxes
  /// — deterministic regardless of merge nesting.
  void merge(const Gauge& other) {
    if (other.set_) {
      v_ = other.v_;
      if (!set_ || other.max_ > max_) max_ = other.max_;
      set_ = true;
    }
  }

 private:
  double v_ = 0.0;
  double max_ = 0.0;
  bool set_ = false;
};

/// Instrument kinds a registry can hold. The histogram instrument is
/// metrics::Histogram itself (single binning implementation).
enum class InstrumentKind : std::uint8_t { kCounter, kGauge, kHistogram };

[[nodiscard]] const char* to_string(InstrumentKind k);

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create by name; the returned reference is stable for the
  /// registry's lifetime (deque storage). Setup path — may allocate.
  /// Throws std::logic_error if the name exists with a different kind.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  metrics::Histogram& histogram(std::string_view name);

  [[nodiscard]] std::size_t size() const { return order_.size(); }

  /// Read-only view of one registered instrument (export/report path).
  /// Exactly one of the three pointers is non-null, matching `kind`.
  struct InstrumentView {
    std::string_view name;
    InstrumentKind kind = InstrumentKind::kCounter;
    const Counter* counter = nullptr;
    const Gauge* gauge = nullptr;
    const metrics::Histogram* histogram = nullptr;
  };
  /// The i-th instrument in registration order (i < size()).
  [[nodiscard]] InstrumentView view(std::size_t i) const;

  /// Looks up an instrument without creating it; nullptr when absent or
  /// of a different kind.
  [[nodiscard]] const Counter* find_counter(std::string_view name) const;
  [[nodiscard]] const Gauge* find_gauge(std::string_view name) const;
  [[nodiscard]] const metrics::Histogram* find_histogram(
      std::string_view name) const;

  /// Folds `other` into this registry in other's registration order:
  /// counters add, gauges take other's last value, histograms merge bins.
  /// Missing instruments are created, so merging per-cell registries in
  /// flat grid order yields one deterministic aggregate.
  void merge(const Registry& other);

  /// Hashes names + values in registration order into `d`.
  void fold_digest(metrics::Digest& d) const;

  /// Human-readable listing in registration order (the `--metrics` output
  /// of the exp_* harness): one line per instrument, histograms with
  /// count/mean/p50/p99/max.
  void print(std::ostream& out) const;

 private:
  struct Slot {
    std::string name;
    InstrumentKind kind;
    std::size_t index;  ///< into the kind's deque
  };

  [[nodiscard]] const Slot* find(std::string_view name) const;

  std::vector<Slot> order_;  ///< registration order; also the name lookup
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<metrics::Histogram> histograms_;
};

}  // namespace mcs::obs
