#include "check/shrink.hpp"

#include <utility>

namespace mcs::check {

namespace {

/// Shrink session state threaded through the passes.
struct Session {
  ScenarioSpec best;
  SeedRunResult best_result;
  std::size_t attempts = 0;
  std::size_t accepted = 0;

  /// Runs a candidate; adopts it as the new best if it still fails.
  bool try_adopt(const ScenarioSpec& candidate) {
    ++attempts;
    SeedRunResult r = run_spec(candidate);
    if (r.ok) return false;
    best = candidate;
    best_result = std::move(r);
    ++accepted;
    return true;
  }
};

/// Finds the smallest value of a size_t field in (0, hi] that still fails,
/// assuming (heuristically) that failing is monotone in the field. `set`
/// writes the candidate value into a copy of the current best spec.
template <typename Set>
void bisect_down(Session& s, std::size_t hi, Set set) {
  // First make the current bound concrete: if the field is effectively
  // unlimited, clamp it to hi (a no-op run-wise only if hi >= actual size,
  // so verify by running).
  {
    ScenarioSpec candidate = s.best;
    set(candidate, hi);
    if (!s.try_adopt(candidate)) return;  // clamping changed the outcome
  }
  std::size_t lo = 0;  // lo is not known to fail; hi does
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ScenarioSpec candidate = s.best;
    set(candidate, mid);
    if (s.try_adopt(candidate)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
}

}  // namespace

ShrinkResult shrink(const ScenarioSpec& spec, const ShrinkOptions& opt) {
  Session s;
  s.best = spec;
  s.best_result = run_spec(spec);
  ++s.attempts;

  ShrinkResult out;
  if (s.best_result.ok) {
    out.spec = s.best;
    out.result = s.best_result;
    out.attempts = s.attempts;
    return out;  // nothing to shrink
  }
  out.failing = true;

  for (std::size_t round = 0; round < opt.max_rounds; ++round) {
    const std::size_t accepted_before = s.accepted;

    // 1. Fewer jobs: smallest failing earliest-arrival prefix of the trace.
    bisect_down(s, s.best.trace.job_count,
                [](ScenarioSpec& c, std::size_t v) { c.job_limit = v; });

    // 2. Fewer failure events (prefix of the failure trace).
    if (s.best.failures_enabled) {
      bisect_down(s, opt.failure_probe_cap,
                  [](ScenarioSpec& c, std::size_t v) { c.failure_limit = v; });
    }

    // 3. Fewer drain/power flaps.
    if (s.best.flap_count > 0) {
      bisect_down(s, s.best.flap_count,
                  [](ScenarioSpec& c, std::size_t v) { c.flap_count = v; });
    }

    // 4. Toggles and simplifications: keep any that still reproduce.
    {
      ScenarioSpec c = s.best;
      if (c.failures_enabled) {
        c.failures_enabled = false;
        s.try_adopt(c);
      }
    }
    {
      ScenarioSpec c = s.best;
      if (c.impossible_job) {
        c.impossible_job = false;
        s.try_adopt(c);
      }
    }
    {
      ScenarioSpec c = s.best;
      if (c.scavenging) {
        c.scavenging = false;
        s.try_adopt(c);
      }
    }
    {
      ScenarioSpec c = s.best;
      if (c.heterogeneous || c.accel_fraction > 0.0) {
        c.heterogeneous = false;
        c.accel_fraction = 0.0;
        s.try_adopt(c);
      }
    }
    {
      ScenarioSpec c = s.best;
      if (c.policy != "fcfs") {
        c.policy = "fcfs";
        s.try_adopt(c);
      }
    }
    // Het-profile knobs: try dropping each placement/vector dimension
    // independently, then the scoring pass.
    {
      ScenarioSpec c = s.best;
      if (c.zone_count > 0) {
        c.zone_count = 0;
        c.zone_job_fraction = 0.0;
        s.try_adopt(c);
      }
    }
    {
      ScenarioSpec c = s.best;
      if (c.spread_fraction > 0.0 || c.spread_limit > 0) {
        c.spread_fraction = 0.0;
        c.spread_limit = 0;
        s.try_adopt(c);
      }
    }
    {
      ScenarioSpec c = s.best;
      if (c.net_capacity > 0.0 || c.net_demand_fraction > 0.0) {
        c.net_capacity = 0.0;
        c.net_demand_fraction = 0.0;
        s.try_adopt(c);
      }
    }
    {
      ScenarioSpec c = s.best;
      if (!c.score_policy.empty()) {
        c.score_policy.clear();
        c.score_salt = 0;
        s.try_adopt(c);
      }
    }
    {
      ScenarioSpec c = s.best;
      if (c.retry) {
        c.retry = false;
        s.try_adopt(c);
      }
    }

    // 5. Smaller floor: drop racks, then machines per rack.
    while (s.best.racks > 1) {
      ScenarioSpec c = s.best;
      c.racks -= 1;
      if (!s.try_adopt(c)) break;
    }
    while (s.best.per_rack > 1) {
      ScenarioSpec c = s.best;
      c.per_rack -= 1;
      if (!s.try_adopt(c)) break;
    }

    // 6. Shorter horizon (fewer flap/failure windows).
    while (s.best.horizon > sim::kMinute) {
      ScenarioSpec c = s.best;
      c.horizon = c.horizon / 2;
      if (!s.try_adopt(c)) break;
    }

    if (s.accepted == accepted_before) break;  // fixed point
  }

  out.spec = s.best;
  out.result = s.best_result;
  out.attempts = s.attempts;
  out.accepted = s.accepted;
  return out;
}

}  // namespace mcs::check
