// Deterministic scenario fuzzing for the scheduling stack (mcs_check).
//
// FoundationDB-style simulation testing, scoped to this repository: a seed
// fully determines a scenario — job DAG shapes, arrival bursts, a
// heterogeneous machine floor, mid-run machine crash/restart through
// failures::FailureModel, and autoscaler-style drain/power flapping — and
// each scenario runs in its own fresh Simulator under the invariant oracle
// (check/oracle.hpp). A batch of seeds fans across parallel::ThreadPool
// with SplitMix64 substreams (exp::run_sweep), and per-seed digests merge
// in flat grid order, so the batch summary is bit-identical at any
// MCS_THREADS and any single seed replays to the exact same trace.
//
// The seed is expanded in two stages: seed -> ScenarioSpec (a concrete,
// serializable parameter record) -> materialized scenario. The shrinker
// (check/shrink.hpp) operates on the spec, and every sub-model draws from
// its own substream of the spec seed, so shrinking one dimension (fewer
// jobs, fewer failure events) never perturbs the others.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "failures/failure_model.hpp"
#include "obs/registry.hpp"
#include "parallel/thread_pool.hpp"
#include "workload/trace.hpp"

namespace mcs::check {

/// Everything a scenario run depends on, as plain serializable data.
/// `make_spec` randomizes these from a seed; the shrinker mutates them;
/// `to_text`/`from_text` round-trip them losslessly for repro files.
struct ScenarioSpec {
  std::uint64_t seed = 1;  ///< master seed; sub-models use substreams of it

  // Machine floor.
  std::size_t racks = 2;
  std::size_t per_rack = 4;
  bool heterogeneous = false;   ///< per-rack speed/capacity spread
  double accel_fraction = 0.0;  ///< fraction of machines with accelerators

  // Workload (trace substream). job_limit truncates the generated trace so
  // the shrinker can drop jobs without changing the survivors.
  workload::TraceConfig trace;
  std::size_t job_limit = static_cast<std::size_t>(-1);
  bool impossible_job = false;  ///< append a job no machine can ever fit

  // Engine.
  std::string policy = "fcfs";
  bool retry = true;
  std::size_t max_retries = 4;
  bool scavenging = false;

  // Failures (failure substream); failure_limit truncates the trace.
  bool failures_enabled = false;
  failures::FailureModelConfig failure;
  std::size_t failure_limit = static_cast<std::size_t>(-1);

  // Autoscaler-style flapping (flap substream): pairs of drain+undrain or
  // power-off+restore events at random times on random machines.
  std::size_t flap_count = 0;

  sim::SimTime horizon = 2 * sim::kHour;

  // SLO engine (obs/slo.hpp parse format; empty = off). A non-empty spec
  // switches the engine to lifecycle_spans mode, so the per-class span
  // histograms and SLO counters fold into the seed digest — scenarios
  // without it reproduce the legacy digests bit-identically.
  std::string slo;

  // Vector/placement heterogeneity profile (het + placement substreams).
  // Every knob defaults to inactive, so legacy seeds reproduce
  // bit-identically; `mcs_check --het` opts a batch into drawing these.
  std::string score_policy;          ///< "" = scalar pick_machine fast path
  std::uint64_t score_salt = 0;      ///< random-hash tie-break salt
  double net_capacity = 0.0;         ///< 4th-dim capacity scale; 0 = off
  double net_demand_fraction = 0.0;  ///< fraction of tasks demanding net
  std::size_t zone_count = 0;        ///< zones striped across racks; 0 = off
  double zone_job_fraction = 0.0;    ///< fraction of jobs zone-constrained
  double spread_fraction = 0.0;      ///< fraction of jobs with spread limit
  std::uint32_t spread_limit = 0;    ///< per-machine concurrent-task cap
};

/// Expands a seed into a randomized scenario spec (pure function). With
/// `het` the vector/placement knobs above are drawn from their own
/// substream on top of the legacy draws, which stay untouched.
[[nodiscard]] ScenarioSpec make_spec(std::uint64_t seed, bool het);
[[nodiscard]] ScenarioSpec make_spec(std::uint64_t seed);

/// Lossless text round-trip (key=value lines; doubles at full precision).
[[nodiscard]] std::string to_text(const ScenarioSpec& spec);
/// Parses `to_text` output (unknown keys ignored, '#' comments skipped).
/// Throws std::invalid_argument on malformed input.
[[nodiscard]] ScenarioSpec from_text(const std::string& text);

/// Outcome of one scenario run under the oracle.
struct SeedRunResult {
  std::uint64_t seed = 0;
  bool ok = true;
  std::string violation;  ///< oracle message when !ok
  /// Flight-recorder dump (obs::write_dump text) of the last events before
  /// the violation; empty when ok. mcs_check writes it next to the repro.
  std::string trace_dump;
  std::uint64_t events = 0;
  std::uint64_t transitions = 0;  ///< engine transitions observed
  std::uint64_t checks = 0;       ///< oracle sweeps performed
  std::size_t jobs_submitted = 0;
  std::size_t jobs_completed = 0;  ///< finished normally
  std::size_t jobs_abandoned = 0;
  std::size_t tasks_killed = 0;
  std::uint64_t digest = 0;  ///< order-sensitive hash of the run's trace
  /// Snapshot of the engine registry (spans, SLO counters, ...); only
  /// populated when the run asked for registry capture (--report path).
  std::shared_ptr<obs::Registry> registry;
};

/// Runs one materialized scenario to quiescence under the oracle. Never
/// throws for oracle violations — they are reported in the result.
/// `capture_registry` snapshots the engine registry into the result.
[[nodiscard]] SeedRunResult run_spec(const ScenarioSpec& spec,
                                     bool capture_registry);
[[nodiscard]] SeedRunResult run_spec(const ScenarioSpec& spec);

/// make_spec + run_spec for a raw seed value.
[[nodiscard]] SeedRunResult run_seed(std::uint64_t seed, bool het);
[[nodiscard]] SeedRunResult run_seed(std::uint64_t seed);

/// The substream seed for seed index `i` of a batch (exp::substream_seed
/// of the base; `mcs_check --seed I` replays exactly batch index I).
[[nodiscard]] std::uint64_t seed_for_index(std::uint64_t base_seed,
                                           std::size_t index);

struct FuzzOptions {
  std::size_t seeds = 100;
  std::uint64_t base_seed = 1;
  /// Draw the vector/placement heterogeneity knobs for every scenario.
  bool het = false;
  /// SLO spec applied to every scenario (obs/slo.hpp format; empty = off).
  std::string slo;
  /// Merge every seed's registry into FuzzReport::registry (flat order).
  bool capture_registry = false;
  /// Pool to fan out on; parallel::default_pool() when null.
  parallel::ThreadPool* pool = nullptr;
};

struct FuzzReport {
  std::size_t seeds_run = 0;
  std::vector<std::size_t> failing_indices;  ///< batch indices that violated
  std::vector<SeedRunResult> failures;       ///< same order as indices
  std::uint64_t summary_digest = 0;  ///< per-seed digests merged in order
  std::uint64_t total_events = 0;
  std::uint64_t total_transitions = 0;
  std::uint64_t total_checks = 0;
  std::size_t total_completed = 0;
  std::size_t total_abandoned = 0;
  std::size_t total_tasks_killed = 0;
  /// All seeds' registries merged in flat batch order; null unless
  /// FuzzOptions::capture_registry (the mcs_check --report input).
  std::shared_ptr<obs::Registry> registry;
};

/// Fans `opt.seeds` scenarios across the pool; deterministic at any thread
/// count (one Simulator per seed, digests merged in flat order).
[[nodiscard]] FuzzReport run_fuzz(const FuzzOptions& opt);

}  // namespace mcs::check
