#include "check/oracle.hpp"

#include <cmath>
#include <sstream>

#include "core/resources.hpp"

namespace mcs::check {

namespace {

/// True when the comma-separated zone list names `zone`. Mirrors the
/// parsing in LabelFilterCache::mask_for but stays independent of it: the
/// oracle re-derives placement legality from the job's declared zones.
bool zone_list_contains(const std::string& zones, const std::string& zone) {
  std::size_t start = 0;
  while (start <= zones.size()) {
    std::size_t end = zones.find(',', start);
    if (end == std::string::npos) end = zones.size();
    if (zones.compare(start, end - start, zone) == 0) return true;
    start = end + 1;
  }
  return false;
}

}  // namespace

InvariantChecker::InvariantChecker(sim::Simulator& sim,
                                   const infra::Datacenter& dc,
                                   Options options)
    : sim_(sim), dc_(dc), options_(options) {}

InvariantChecker::~InvariantChecker() { detach(); }

void InvariantChecker::attach(sched::ExecutionEngine& engine) {
  engine_ = &engine;
  engine.set_observer(this);
  sim_.set_hook(this);
  last_event_at_ = sim_.now();
  shadow_drain_.assign(dc_.machine_count(), 0);
  for (infra::MachineId id = 0; id < dc_.machine_count(); ++id) {
    shadow_drain_[id] = engine.is_draining(id) ? 1 : 0;
  }
}

void InvariantChecker::detach() {
  if (engine_ != nullptr) {
    if (engine_->observer() == this) engine_->set_observer(nullptr);
    engine_ = nullptr;
  }
  if (sim_.hook() == this) sim_.set_hook(nullptr);
}

void InvariantChecker::fail(const char* invariant, const char* where,
                            const std::string& detail) const {
  std::ostringstream msg;
  msg << "ORACLE VIOLATION [" << invariant << "] after '" << where
      << "' at t=" << sim_.now() << "us: " << detail;
  throw OracleViolation(msg.str());
}

void InvariantChecker::on_event(sim::SimTime at, std::uint64_t executed) {
  // I7: the kernel's clock never runs backwards.
  if (at < last_event_at_) {
    std::ostringstream msg;
    msg << "ORACLE VIOLATION [I7 monotonicity] event " << executed
        << " executes at t=" << at << "us after t=" << last_event_at_
        << "us";
    throw OracleViolation(msg.str());
  }
  last_event_at_ = at;
}

void InvariantChecker::on_event_end(sim::SimTime, std::uint64_t) {
  if (engine_ != nullptr) verify(*engine_, "event-end");
}

void InvariantChecker::on_transition(const sched::ExecutionEngine& engine,
                                     sched::EngineTransition t,
                                     infra::MachineId machine) {
  ++transitions_;
  const char* where = sched::to_string(t);
  switch (t) {
    case sched::EngineTransition::kDrained:
      if (machine < shadow_drain_.size()) shadow_drain_[machine] = 1;
      break;
    case sched::EngineTransition::kUndrained:
      if (machine < shadow_drain_.size()) shadow_drain_[machine] = 0;
      break;
    case sched::EngineTransition::kTaskStarted:
      // I5: new placements never target draining or unusable machines.
      // Valid even mid-event: the *target* of a fresh placement must be
      // healthy regardless of what else the event is still unwinding.
      if (engine.is_draining(machine)) {
        fail("I5 placement", where,
             "task started on draining machine " + std::to_string(machine));
      }
      if (!dc_.machine(machine).usable()) {
        fail("I5 placement", where,
             "task started on unusable machine " + std::to_string(machine));
      }
      break;
    default:
      break;
  }
}

void InvariantChecker::verify(const sched::ExecutionEngine& e,
                              const char* where) {
  ++checks_;

  // I1: job conservation. completed_ holds finished *and* abandoned jobs.
  if (e.jobs_submitted() != e.completed_.size() + e.jobs_.live_count()) {
    fail("I1 conservation", where,
         "submitted=" + std::to_string(e.jobs_submitted()) +
             " != completed=" + std::to_string(e.completed_.size()) +
             " + live=" + std::to_string(e.jobs_.live_count()));
  }

  // Flatten per-job task-state marks: offsets over all slots (dead slots
  // get zero width), one byte per task. Bit 0 = ready, bit 1 = running.
  const std::uint32_t job_slots = e.jobs_.size();
  task_offsets_.assign(job_slots + 1, 0);
  for (std::uint32_t j = 0; j < job_slots; ++j) {
    const std::uint32_t width =
        e.jobs_.live(j)
            ? static_cast<std::uint32_t>(e.jobs_[j].job.tasks.size())
            : 0;
    task_offsets_[j + 1] = task_offsets_[j] + width;
  }
  task_marks_.assign(task_offsets_[job_slots], 0);

  // I1/I3 per live job: remaining and dependency recounts.
  e.jobs_.for_each([&](std::uint32_t, const auto& jr) {
    const std::size_t n = jr.job.tasks.size();
    std::size_t done_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (jr.done[i] != 0) ++done_count;
    }
    if (jr.remaining != n - done_count) {
      fail("I1 conservation", where,
           "job " + std::to_string(jr.job.id) + ": remaining=" +
               std::to_string(jr.remaining) + " but tasks-done=" +
               std::to_string(n - done_count));
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (jr.done[i] != 0) continue;
      std::uint32_t undone_deps = 0;
      for (std::size_t d : jr.job.tasks[i].deps) {
        if (jr.done[d] == 0) ++undone_deps;
      }
      if (jr.missing_deps[i] != undone_deps) {
        fail("I3 dependencies", where,
             "job " + std::to_string(jr.job.id) + " task " +
                 std::to_string(i) + ": missing_deps=" +
                 std::to_string(jr.missing_deps[i]) + " but recount=" +
                 std::to_string(undone_deps));
      }
    }
  });

  // I2: ready entries reference live jobs, runnable tasks, and no task is
  // ready twice.
  for (const sched::ReadyTask& rt : e.ready_) {
    if (rt.job_slot >= job_slots || !e.jobs_.live(rt.job_slot)) {
      fail("I2 task-partition", where,
           "ready entry references dead job slot " +
               std::to_string(rt.job_slot));
    }
    const auto& jr = e.jobs_[rt.job_slot];
    if (rt.task_index >= jr.job.tasks.size()) {
      fail("I2 task-partition", where, "ready task index out of range");
    }
    if (jr.done[rt.task_index] != 0) {
      fail("I2 task-partition", where,
           "job " + std::to_string(jr.job.id) + " task " +
               std::to_string(rt.task_index) + " is ready but done");
    }
    if (jr.missing_deps[rt.task_index] != 0) {
      fail("I2 task-partition", where,
           "job " + std::to_string(jr.job.id) + " task " +
               std::to_string(rt.task_index) +
               " is ready with unmet dependencies");
    }
    std::uint8_t& mark = task_marks_[task_offsets_[rt.job_slot] +
                                     static_cast<std::uint32_t>(rt.task_index)];
    if ((mark & 1u) != 0) {
      fail("I2 task-partition", where,
           "job " + std::to_string(jr.job.id) + " task " +
               std::to_string(rt.task_index) + " is ready twice");
    }
    mark |= 1u;
  }

  // I2/I5: running slots reference live jobs and usable machines; no task
  // runs twice or is both ready and running.
  held_dims_.assign(dc_.machine_count() * core::kResourceDims, 0.0);
  held_count_.assign(dc_.machine_count(), 0);
  e.running_.for_each([&](std::uint32_t, const auto& rt) {
    if (rt.job_slot >= job_slots || !e.jobs_.live(rt.job_slot)) {
      fail("I2 task-partition", where,
           "running slot references dead job slot " +
               std::to_string(rt.job_slot));
    }
    const auto& jr = e.jobs_[rt.job_slot];
    if (rt.task_index >= jr.job.tasks.size()) {
      fail("I2 task-partition", where, "running task index out of range");
    }
    if (jr.done[rt.task_index] != 0) {
      fail("I2 task-partition", where,
           "job " + std::to_string(jr.job.id) + " task " +
               std::to_string(rt.task_index) + " is running but done");
    }
    if (rt.machine >= dc_.machine_count()) {
      fail("I5 placement", where, "running task on unknown machine");
    }
    if (!dc_.machine(rt.machine).usable()) {
      fail("I5 placement", where,
           "job " + std::to_string(jr.job.id) + " task " +
               std::to_string(rt.task_index) + " runs on unusable machine " +
               std::to_string(rt.machine));
    }
    if (rt.expected_end < rt.start) {
      fail("I7 monotonicity", where, "running task ends before it starts");
    }
    std::uint8_t& mark = task_marks_[task_offsets_[rt.job_slot] +
                                     rt.task_index];
    if ((mark & 2u) != 0) {
      fail("I2 task-partition", where,
           "job " + std::to_string(jr.job.id) + " task " +
               std::to_string(rt.task_index) + " is running twice");
    }
    if ((mark & 1u) != 0) {
      fail("I2 task-partition", where,
           "job " + std::to_string(jr.job.id) + " task " +
               std::to_string(rt.task_index) + " is both ready and running");
    }
    mark |= 2u;
    // I5: zone-constrained jobs only ever run inside their zone set, and
    // no machine exceeds the job's anti-affinity spread limit. Recomputed
    // from the job's declared placement, not the engine's cached masks.
    if (!jr.job.placement.zones.empty() &&
        !zone_list_contains(jr.job.placement.zones,
                            dc_.zone_of(rt.machine))) {
      fail("I5 placement", where,
           "job " + std::to_string(jr.job.id) + " task " +
               std::to_string(rt.task_index) + " runs on machine " +
               std::to_string(rt.machine) + " in zone '" +
               dc_.zone_of(rt.machine) + "' outside its allowed zones '" +
               jr.job.placement.zones + "'");
    }
    if (jr.job.placement.spread_limit > 0) {
      std::uint32_t same_machine = 0;
      e.running_.for_each([&](std::uint32_t, const auto& other) {
        if (other.job_slot == rt.job_slot && other.machine == rt.machine) {
          ++same_machine;
        }
      });
      if (same_machine > jr.job.placement.spread_limit) {
        fail("I5 placement", where,
             "job " + std::to_string(jr.job.id) + " runs " +
                 std::to_string(same_machine) + " tasks on machine " +
                 std::to_string(rt.machine) + " but its spread limit is " +
                 std::to_string(jr.job.placement.spread_limit));
      }
    }
    for (std::size_t d = 0; d < core::kResourceDims; ++d) {
      held_dims_[rt.machine * core::kResourceDims + d] += rt.held[d];
    }
    ++held_count_[rt.machine];
  });

  // I4: per-machine capacity sanity (and exclusive-allocation accounting),
  // checked in every resource dimension of the vector.
  const double eps = options_.epsilon;
  for (infra::MachineId id = 0; id < dc_.machine_count(); ++id) {
    const infra::Machine& m = dc_.machine(id);
    const infra::ResourceVector& used = m.used();
    const infra::ResourceVector& cap = m.capacity();
    for (std::size_t d = 0; d < core::kResourceDims; ++d) {
      const char* dim = core::to_string(static_cast<core::ResourceDim>(d));
      if (used[d] < -eps) {
        fail("I4 capacity", where,
             "machine " + std::to_string(id) + " has negative used " + dim);
      }
      if (used[d] > cap[d] + eps) {
        fail("I4 capacity", where,
             "machine " + std::to_string(id) + " used " + dim +
                 " exceeds capacity (" + std::to_string(used[d]) + " > " +
                 std::to_string(cap[d]) + ")");
      }
    }
    if (options_.exclusive_allocation && m.usable()) {
      for (std::size_t d = 0; d < core::kResourceDims; ++d) {
        const double held = held_dims_[id * core::kResourceDims + d];
        if (std::abs(used[d] - held) > eps) {
          fail("I4 capacity", where,
               "machine " + std::to_string(id) + ": used " +
                   core::to_string(static_cast<core::ResourceDim>(d)) +
                   " does not match the engine's held resources (" +
                   std::to_string(used[d]) + " vs " + std::to_string(held) +
                   ")");
        }
      }
      if (m.live_allocations() != held_count_[id]) {
        fail("I4 capacity", where,
             "machine " + std::to_string(id) + ": " +
                 std::to_string(m.live_allocations()) +
                 " live allocations but the engine holds " +
                 std::to_string(held_count_[id]) + " running tasks");
      }
      // Exactly zero, not within eps, in every dimension: fractional
      // demands must not leave floating-point residue behind once a
      // machine is idle — 1e-16 leftover cores starve
      // exactly-full-machine demands forever (the full_machine_fp_residue
      // repro).
      if (held_count_[id] == 0) {
        for (std::size_t d = 0; d < core::kResourceDims; ++d) {
          if (used[d] != 0.0) {
            fail("I4 capacity", where,
                 "machine " + std::to_string(id) +
                     " is idle but used is not exactly zero (" +
                     core::to_string(static_cast<core::ResourceDim>(d)) +
                     " residue " + std::to_string(used[d]) + ")");
          }
        }
      }
    }
    // I6: only drain()/undrain() move the drain set — crashes and repairs
    // must never flip a bit.
    const bool draining = e.is_draining(id);
    if (draining != (shadow_drain_[id] != 0)) {
      fail("I6 drain-shadow", where,
           "machine " + std::to_string(id) + " drain bit is " +
               (draining ? "set" : "clear") + " but the oracle's shadow is " +
               (shadow_drain_[id] != 0 ? "set" : "clear"));
    }
  }
}

std::string InvariantChecker::quiescence_report(
    const sched::ExecutionEngine& e) const {
  std::ostringstream out;
  out << e.ready_.size() << " ready, " << e.running_.live_count()
      << " running, " << (e.jobs_submitted() - e.completed_.size())
      << " jobs open;";
  std::size_t shown = 0;
  for (const sched::ReadyTask& rt : e.ready_) {
    if (shown++ == 4) {
      out << " ...";
      break;
    }
    const auto& jr = e.jobs_[rt.job_slot];
    const infra::ResourceVector& d = jr.job.tasks[rt.task_index].demand;
    out << " [job " << jr.job.id << " task " << rt.task_index << " demand {"
        << d.cpu() << "c " << d.mem() << "g " << d.gpu()
        << "a}]";
  }
  out << " machines:";
  for (infra::MachineId id = 0; id < dc_.machine_count(); ++id) {
    const infra::Machine& m = dc_.machine(id);
    const char* state = m.usable() ? "up" : "down";
    out << " " << id << "=" << state
        << (e.is_draining(id) ? "/draining" : "") << "{"
        << m.available().cpu() << "c " << m.available().mem() << "g "
        << m.available().gpu() << "a}";
  }
  return out.str();
}

}  // namespace mcs::check
