// Invariant oracle for deterministic simulation fuzzing (mcs_check).
//
// The paper's trust agenda (C6: guaranteeable NFRs, C10: ecosystems we can
// rely on) needs the engine's fast paths to stay *correct* under
// adversarial schedules, not just fast. This oracle is the judge: it hooks
// the execution engine's transition observer (sched::EngineObserver) and
// the event kernel's hook (sim::SimHook), and after every state transition
// re-verifies the full invariant set below, throwing OracleViolation with
// a precise description on the first breach. The fuzzer (check/fuzz.hpp)
// runs thousands of seeded scenarios under this oracle; unit tests attach
// it to hand-built scenarios.
//
// Atomicity granularity: a single simulator event may apply several nested
// transitions (a machine failure kills many tasks and may abandon jobs
// midway), so the full invariant sweep runs at each event *end* — the
// quiescent point — while per-transition hooks do targeted checks (new
// placements, drain bookkeeping) that are valid even mid-event.
//
// Invariants checked at every event boundary (and on explicit verify()):
//  I1 CONSERVATION   jobs submitted == jobs live + jobs completed (the
//                    completed list includes abandoned jobs), and per live
//                    job: remaining == tasks - #done.
//  I2 TASK PARTITION every task of a live job is in at most one runtime
//                    state — ready or running, never both, never twice —
//                    and only when all its dependencies are done.
//  I3 DEPENDENCIES   a not-done task's missing_deps count equals a fresh
//                    recount of its not-done dependencies (CSR unlock
//                    bookkeeping never drifts).
//  I4 CAPACITY       every machine's used vector is componentwise within
//                    [0, capacity] across all core::kResourceDims
//                    dimensions (so planned free capacity = available() is
//                    non-negative); in exclusive mode, used equals the
//                    per-dimension sum of resources held by this engine's
//                    running tasks, the machine's live-allocation count
//                    matches the number of running tasks placed on it, and
//                    an idle machine's used vector is *exactly* zero in
//                    every dimension (no FP residue).
//  I5 PLACEMENT      every running task sits on a usable machine, a
//                    kTaskStarted transition never targets a draining or
//                    failed machine, every running task of a zone-
//                    constrained job sits inside the job's zone set, and no
//                    machine runs more tasks of one job than the job's
//                    anti-affinity spread limit allows.
//  I6 DRAIN SHADOW   the engine's drain bitset matches the oracle's shadow
//                    copy, which only drain()/undrain() transitions may
//                    move — a machine crash or repair must never flip it.
//  I7 MONOTONICITY   event execution times never decrease (the kernel's
//                    clock cannot run backwards), per the sim hook.
//
// Hook cost model: both hooks are compiled into every build and cost one
// predicted-null branch per event/transition when no oracle is installed
// (measured in BENCH_micro.json pr4_before/pr4_after: BM_EngineThroughput
// unchanged within noise). With an oracle attached, each transition pays a
// full O(jobs + tasks + ready + running + machines) sweep — test-harness
// territory, never production.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "infra/topology.hpp"
#include "sched/engine.hpp"
#include "sim/simulator.hpp"

namespace mcs::check {

/// Thrown on the first invariant breach; the message carries the invariant
/// id, the transition that exposed it, the virtual time, and the details.
class OracleViolation : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class InvariantChecker final : public sched::EngineObserver,
                               public sim::SimHook {
 public:
  struct Options {
    /// When true, the engine under check is the only component allocating
    /// on the datacenter, so I4 additionally requires used == sum of held
    /// resources of the engine's running tasks per usable machine.
    bool exclusive_allocation = false;
    /// Floating-point slack for capacity comparisons.
    double epsilon = 1e-6;
  };

  InvariantChecker(sim::Simulator& sim, const infra::Datacenter& dc)
      : InvariantChecker(sim, dc, Options{}) {}
  InvariantChecker(sim::Simulator& sim, const infra::Datacenter& dc,
                   Options options);
  ~InvariantChecker() override;

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  /// Installs this oracle as the engine's observer and the simulator's
  /// hook, and seeds the drain shadow from the engine's current state.
  void attach(sched::ExecutionEngine& engine);
  /// Clears both hooks (also done by the destructor).
  void detach();

  /// Runs the full invariant sweep immediately (e.g. as an end-of-run
  /// check); throws OracleViolation on the first breach.
  void verify(const sched::ExecutionEngine& engine, const char* where);

  /// Describes why a quiesced run is not done: stuck ready tasks (job,
  /// index, demand) and the state of every machine. Used by the fuzzer's
  /// end-of-run quiescence oracle to make violations actionable.
  [[nodiscard]] std::string quiescence_report(
      const sched::ExecutionEngine& engine) const;

  /// Invariant sweeps performed so far.
  [[nodiscard]] std::uint64_t checks() const { return checks_; }
  /// Engine transitions observed so far.
  [[nodiscard]] std::uint64_t transitions() const { return transitions_; }

  // EngineObserver: targeted mid-event checks + drain shadow bookkeeping.
  void on_transition(const sched::ExecutionEngine& engine,
                     sched::EngineTransition t,
                     infra::MachineId machine) override;
  // SimHook: event-time monotonicity (I7) before the callback ...
  void on_event(sim::SimTime at, std::uint64_t executed) override;
  // ... and the full invariant sweep at the post-event quiescent point.
  void on_event_end(sim::SimTime at, std::uint64_t executed) override;

 private:
  [[noreturn]] void fail(const char* invariant, const char* where,
                         const std::string& detail) const;

  sim::Simulator& sim_;
  const infra::Datacenter& dc_;
  Options options_;
  sched::ExecutionEngine* engine_ = nullptr;
  sim::SimTime last_event_at_ = 0;
  std::uint64_t checks_ = 0;
  std::uint64_t transitions_ = 0;
  /// Oracle-side copy of the drain set, moved only by kDrained/kUndrained.
  std::vector<std::uint8_t> shadow_drain_;

  // Scratch reused across sweeps (task-state partition bookkeeping).
  std::vector<std::uint32_t> task_offsets_;
  std::vector<std::uint8_t> task_marks_;
  /// Per-machine held resources, one flat array per resource dimension
  /// (indexed machine * kResourceDims + dim) so I4 accounting covers every
  /// dimension of the vector, not just the three historically named ones.
  std::vector<double> held_dims_;
  std::vector<std::uint32_t> held_count_;
};

}  // namespace mcs::check
