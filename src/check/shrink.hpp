// Seed shrinking: reduce a failing fuzz scenario to a minimal reproducer.
//
// Works on the ScenarioSpec (check/fuzz.hpp), not the raw seed: every
// sub-model draws from its own substream of the spec seed, so truncating
// one dimension (fewer jobs, fewer failure events, fewer flaps) leaves the
// surviving draws bit-identical. The shrinker greedily bisects the list
// dimensions and then tries to switch off toggles (impossible job,
// scavenging, failures, heterogeneity) and simplify knobs (policy -> fcfs,
// shorter horizon), re-running the scenario under the oracle after each
// candidate and keeping any strictly-smaller spec that still fails. The
// result serializes via to_text into a ctest-able repro file
// (`mcs_check --replay FILE`).
#pragma once

#include <cstddef>

#include "check/fuzz.hpp"

namespace mcs::check {

struct ShrinkOptions {
  /// Full passes over all shrink dimensions; stops early at a fixed point.
  std::size_t max_rounds = 6;
  /// Upper bound for bisecting failure_limit when the trace size is
  /// unknown (limits beyond the trace length are no-ops).
  std::size_t failure_probe_cap = 4096;
};

struct ShrinkResult {
  ScenarioSpec spec;     ///< smallest failing spec found
  SeedRunResult result;  ///< the run of that spec (holds the violation)
  std::size_t attempts = 0;   ///< candidate runs executed
  std::size_t accepted = 0;   ///< candidates that still failed (kept)
  bool failing = false;  ///< false if the input spec did not fail at all
};

/// Shrinks a failing spec. If `spec` does not fail when run, returns
/// immediately with failing=false and the passing result.
[[nodiscard]] ShrinkResult shrink(const ScenarioSpec& spec,
                                  const ShrinkOptions& opt = {});

}  // namespace mcs::check
