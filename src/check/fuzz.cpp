#include "check/fuzz.hpp"

#include <algorithm>
#include <iomanip>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "check/oracle.hpp"
#include "exp/sweep.hpp"
#include "metrics/stats.hpp"
#include "obs/export.hpp"
#include "obs/slo.hpp"
#include "sched/engine.hpp"
#include "sim/random.hpp"

namespace mcs::check {

namespace {

// Fixed substream tags: every sub-model of a scenario draws from its own
// stream of the spec seed, so shrinking one dimension (fewer jobs, fewer
// flaps) never perturbs what the others generate.
constexpr std::uint64_t kParamStream = 0;
constexpr std::uint64_t kDcStream = 1;
constexpr std::uint64_t kTraceStream = 2;
constexpr std::uint64_t kFailureStream = 3;
constexpr std::uint64_t kFlapStream = 4;
// New substreams for the --het profile; legacy streams never see these
// draws, so scalar scenarios stay bit-identical.
constexpr std::uint64_t kHetStream = 5;
constexpr std::uint64_t kPlacementStream = 6;

/// Job id for the optional never-placeable job — far above trace ids.
constexpr workload::JobId kImpossibleJobId = 1'000'000;

infra::Datacenter materialize_dc(const ScenarioSpec& spec) {
  infra::Datacenter dc("fuzz-dc", "sim");
  sim::Rng rng(exp::substream_seed(spec.seed, kDcStream));
  for (std::size_t r = 0; r < spec.racks; ++r) {
    const double speed = spec.heterogeneous ? rng.uniform(0.6, 2.0) : 1.0;
    const double cores =
        spec.heterogeneous
            ? static_cast<double>(4 << rng.uniform_int(0, 2))  // 4/8/16
            : 8.0;
    for (std::size_t m = 0; m < spec.per_rack; ++m) {
      const double accel = rng.uniform() < spec.accel_fraction ? 2.0 : 0.0;
      // The 4th (net) dimension draws only when the knob is active, so
      // legacy specs consume the exact same kDcStream sequence.
      const double net = spec.net_capacity > 0.0
                             ? spec.net_capacity * rng.uniform(0.5, 1.0)
                             : 0.0;
      infra::Machine& machine = dc.add_machine(
          "m-" + std::to_string(r) + "-" + std::to_string(m),
          infra::ResourceVector{cores, cores * 4.0, accel, net}, speed, r);
      if (spec.zone_count > 0) {
        dc.set_zone(machine.id(),
                    "z" + std::to_string(r % spec.zone_count));
      }
    }
  }
  return dc;
}

std::vector<workload::Job> materialize_jobs(const ScenarioSpec& spec) {
  sim::Rng rng(exp::substream_seed(spec.seed, kTraceStream));
  auto jobs = workload::generate_trace(spec.trace, rng);
  if (spec.job_limit < jobs.size()) jobs.resize(spec.job_limit);
  // Placement/vector-demand decoration (placement substream). Runs after
  // job_limit truncation and draws per surviving job in order, so the
  // shrinker's job-prefix bisection keeps survivors stable.
  if (spec.zone_count > 0 || spec.spread_fraction > 0.0 ||
      spec.net_demand_fraction > 0.0) {
    sim::Rng prng(exp::substream_seed(spec.seed, kPlacementStream));
    for (workload::Job& job : jobs) {
      if (spec.zone_count > 0 && prng.chance(spec.zone_job_fraction)) {
        const std::size_t z = static_cast<std::size_t>(prng.uniform_int(
            0, static_cast<std::int64_t>(spec.zone_count) - 1));
        job.placement.zones = "z" + std::to_string(z);
        if (spec.zone_count > 1 && prng.chance(0.3)) {
          job.placement.zones +=
              ",z" + std::to_string((z + 1) % spec.zone_count);
        }
      }
      if (spec.spread_fraction > 0.0 && prng.chance(spec.spread_fraction)) {
        job.placement.spread_limit = spec.spread_limit;
      }
      if (spec.net_demand_fraction > 0.0) {
        for (workload::Task& task : job.tasks) {
          if (prng.chance(spec.net_demand_fraction)) {
            // Up to 1.25x the fleet's net scale: some tasks are only
            // satisfiable on the best-provisioned machines, a few on none
            // (exercising zone-aware abandonment).
            task.demand.net() = prng.uniform(0.5, spec.net_capacity * 1.25);
          }
        }
      }
    }
  }
  if (spec.impossible_job) {
    workload::Job job;
    job.id = kImpossibleJobId;
    job.user = "fuzz-impossible";
    job.submit_time = spec.horizon / 2;
    workload::Task task;
    task.work_seconds = 1.0;
    task.demand = infra::ResourceVector{1e6, 1e6, 0.0};
    job.tasks.push_back(task);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

/// One drain/undrain or power-off/restore pair, fully precomputed so the
/// list is a pure function of the flap substream (and prefix-stable under
/// flap_count shrinking).
struct Flap {
  sim::SimTime at = 0;
  sim::SimTime duration = 0;
  infra::MachineId machine = 0;
  bool power = false;  ///< power flap (off/restore) vs drain flap
};

std::vector<Flap> materialize_flaps(const ScenarioSpec& spec,
                                    std::size_t machine_count) {
  std::vector<Flap> flaps;
  if (machine_count == 0) return flaps;
  sim::Rng rng(exp::substream_seed(spec.seed, kFlapStream));
  flaps.reserve(spec.flap_count);
  for (std::size_t i = 0; i < spec.flap_count; ++i) {
    Flap f;
    f.at = sim::from_seconds(
        rng.uniform(0.0, sim::to_seconds(spec.horizon)));
    f.duration = sim::from_seconds(rng.uniform(1.0, 600.0));
    f.machine = static_cast<infra::MachineId>(
        rng.uniform_int(0, static_cast<std::int64_t>(machine_count) - 1));
    f.power = rng.chance(0.5);
    flaps.push_back(f);
  }
  return flaps;
}

}  // namespace

ScenarioSpec make_spec(std::uint64_t seed) { return make_spec(seed, false); }

ScenarioSpec make_spec(std::uint64_t seed, bool het) {
  ScenarioSpec spec;
  spec.seed = seed;
  sim::Rng rng(exp::substream_seed(seed, kParamStream));

  spec.racks = static_cast<std::size_t>(rng.uniform_int(1, 4));
  spec.per_rack = static_cast<std::size_t>(rng.uniform_int(2, 8));
  spec.heterogeneous = rng.chance(0.5);
  spec.accel_fraction = rng.chance(0.4) ? 0.25 : 0.0;

  spec.trace.job_count = static_cast<std::size_t>(rng.uniform_int(5, 50));
  spec.trace.arrivals = static_cast<workload::ArrivalKind>(
      rng.uniform_int(0, 2));
  spec.trace.arrival_rate_per_hour = rng.uniform(200.0, 3000.0);
  spec.trace.workflow_fraction =
      rng.chance(0.5) ? rng.uniform(0.2, 1.0) : 0.0;
  spec.trace.workflow_width =
      static_cast<std::size_t>(rng.uniform_int(2, 16));
  spec.trace.mean_tasks_per_job = rng.uniform(2.0, 12.0);
  spec.trace.mean_task_seconds = rng.uniform(10.0, 120.0);
  spec.trace.cv_task_seconds = rng.uniform(0.3, 3.0);
  spec.trace.mean_cores_per_task = rng.uniform(1.0, 4.0);
  spec.trace.memory_per_core_gib = rng.uniform(1.0, 4.0);
  spec.trace.accelerated_fraction =
      spec.accel_fraction > 0.0 ? rng.uniform(0.0, 0.3) : 0.0;
  spec.trace.user_count = static_cast<std::size_t>(rng.uniform_int(1, 5));
  spec.impossible_job = rng.chance(0.2);

  const auto policies = sched::all_policy_names();
  spec.policy = policies[static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(policies.size()) - 1))];
  spec.retry = rng.chance(0.8);
  spec.max_retries = static_cast<std::size_t>(rng.uniform_int(0, 8));
  spec.scavenging = rng.chance(0.3);

  spec.failures_enabled = rng.chance(0.75);
  spec.failure.mode = static_cast<failures::CorrelationMode>(
      rng.uniform_int(0, 3));
  spec.failure.failures_per_machine_day = rng.uniform(0.5, 20.0);
  spec.failure.mean_repair_seconds = rng.uniform(30.0, 900.0);
  spec.failure.cv_repair = rng.uniform(0.5, 2.0);
  spec.failure.mean_burst_size = rng.uniform(2.0, 6.0);
  spec.failure.weibull_shape = rng.uniform(0.4, 0.9);

  spec.flap_count = static_cast<std::size_t>(rng.uniform_int(0, 6));
  spec.horizon = sim::from_seconds(rng.uniform(3600.0, 3.0 * 3600.0));

  if (het) {
    // All het knobs draw from their own substream *after* the legacy
    // draws, so a het spec's machine floor / trace / failures match the
    // scalar spec of the same seed except where a knob explicitly applies.
    sim::Rng h(exp::substream_seed(seed, kHetStream));
    static constexpr const char* kScoreNames[] = {
        "", "random-hash", "free-share-variance", "squared-min-delta"};
    spec.score_policy = kScoreNames[h.uniform_int(0, 3)];
    spec.score_salt = static_cast<std::uint64_t>(h.uniform_int(0, 1 << 20));
    if (h.chance(0.5)) {
      spec.net_capacity = h.uniform(4.0, 16.0);
      spec.net_demand_fraction = h.uniform(0.1, 0.5);
    }
    if (h.chance(0.6)) {
      spec.zone_count = static_cast<std::size_t>(h.uniform_int(2, 4));
      spec.zone_job_fraction = h.uniform(0.2, 0.8);
    }
    if (h.chance(0.5)) {
      spec.spread_fraction = h.uniform(0.2, 0.6);
      spec.spread_limit = static_cast<std::uint32_t>(h.uniform_int(1, 3));
    }
    if (h.chance(0.5)) {
      // GPU-sparse fleet: few accelerator machines, real gpu demand.
      spec.accel_fraction = h.uniform(0.05, 0.3);
      spec.trace.accelerated_fraction = h.uniform(0.05, 0.3);
    }
  }
  return spec;
}

SeedRunResult run_spec(const ScenarioSpec& spec) {
  return run_spec(spec, /*capture_registry=*/false);
}

SeedRunResult run_spec(const ScenarioSpec& spec, bool capture_registry) {
  SeedRunResult result;
  result.seed = spec.seed;

  sim::Simulator sim;
  infra::Datacenter dc = materialize_dc(spec);

  sched::EngineConfig config;
  config.record_series = false;
  config.retry_failed_tasks = spec.retry;
  config.max_retries = spec.max_retries;
  config.scavenging.enabled = spec.scavenging;
  config.placement.score = sched::score_policy_from_string(spec.score_policy);
  config.placement.salt = spec.score_salt;
  // An SLO spec opts the scenario into lifecycle spans; without one the
  // instrument set and trace events — and therefore the digest — match
  // the legacy goldens exactly.
  config.lifecycle_spans = !spec.slo.empty();

  sched::ExecutionEngine engine(sim, dc, sched::make_policy(spec.policy),
                                config);

  InvariantChecker::Options oracle_options;
  oracle_options.exclusive_allocation = true;
  InvariantChecker oracle(sim, dc, oracle_options);
  oracle.attach(engine);

  // Flight recorder (DESIGN.md §11): a small ring of the most recent
  // lifecycle events rides along on every fuzz run. On a violation its
  // dump lands next to the shrunken repro; its digest is folded into the
  // per-seed digest either way, so the thread-count-invariance gate also
  // covers the tracing layer.
  obs::Tracer recorder(/*capacity=*/512);
  engine.set_tracer(&recorder);

  // SLO engine: its counters land in engine.registry() and its threshold
  // crossings in the recorder ring, so SLO state folds into the seed
  // digest below with no extra plumbing.
  std::unique_ptr<obs::SloTracker> slo;
  if (!spec.slo.empty()) {
    slo = std::make_unique<obs::SloTracker>(obs::parse_slo_specs(spec.slo),
                                            engine.registry(), &recorder);
    engine.set_slo(slo.get());
  }

  // The injector outlives run_until (its events capture `this`).
  std::vector<failures::FailureEvent> failure_trace;
  if (spec.failures_enabled) {
    sim::Rng rng(exp::substream_seed(spec.seed, kFailureStream));
    failure_trace =
        failures::generate_failure_trace(dc, spec.failure, spec.horizon, rng);
    if (spec.failure_limit < failure_trace.size()) {
      failure_trace.resize(spec.failure_limit);
    }
  }
  failures::FailureInjector injector(sim, dc, failure_trace);
  injector.attach_observability(&recorder, &engine.registry());

  try {
    engine.submit_all(materialize_jobs(spec));
    injector.arm(
        [&engine](infra::MachineId id) { engine.on_machine_failed(id); },
        [&engine](infra::MachineId) { engine.kick(); });

    for (const Flap& f : materialize_flaps(spec, dc.machine_count())) {
      const infra::MachineId m = f.machine;
      if (f.power) {
        // Autoscaler-style elasticity: power an *idle* machine down and
        // restore it later (a real provisioner drains before power-off).
        sim.schedule_at(f.at, [&engine, &dc, m] {
          infra::Machine& machine = dc.machine(m);
          if (machine.state() == infra::MachineState::kOperational &&
              engine.idle(m)) {
            machine.set_state(infra::MachineState::kOff);
          }
        });
        sim.schedule_at(f.at + f.duration, [&engine, &dc, m] {
          infra::Machine& machine = dc.machine(m);
          if (machine.state() == infra::MachineState::kOff) {
            machine.set_state(infra::MachineState::kOperational);
            engine.kick();
          }
        });
      } else {
        sim.schedule_at(f.at, [&engine, m] { engine.drain(m); });
        sim.schedule_at(f.at + f.duration,
                        [&engine, m] { engine.undrain(m); });
      }
    }

    // Scenarios are finite by construction (every failure gets a repair,
    // every flap a restore, no recurring monitors), so the queue drains.
    sim.run_until();
    oracle.verify(engine, "end-of-run");
    if (!engine.all_done()) {
      throw OracleViolation(
          "ORACLE VIOLATION [quiescence] scenario did not drain: " +
          oracle.quiescence_report(engine));
    }
  } catch (const OracleViolation& violation) {
    result.ok = false;
    result.violation = violation.what();
  } catch (const std::exception& ex) {
    // Engine/machine logic errors (double release, over-allocation) are
    // state-machine bugs too — report them like oracle findings.
    result.ok = false;
    result.violation = std::string("EXCEPTION: ") + ex.what();
  }
  // Close open SLO violation intervals before any digesting/dumping so
  // the violation-minute counters are complete (and deterministic).
  if (slo != nullptr) slo->finalize(sim.now());
  if (!result.ok) result.trace_dump = obs::dump_to_string(recorder);

  result.events = sim.executed();
  result.transitions = oracle.transitions();
  result.checks = oracle.checks();
  result.jobs_submitted = engine.jobs_submitted();
  result.tasks_killed = engine.tasks_killed();
  for (const sched::JobStats& j : engine.completed()) {
    if (j.abandoned) {
      ++result.jobs_abandoned;
    } else {
      ++result.jobs_completed;
    }
  }

  // Order-sensitive trace digest: replaying the same spec must reproduce
  // this exactly (and it feeds the batch summary digest in flat order).
  metrics::Digest digest;
  digest.add_u64(result.events);
  digest.add_u64(result.transitions);
  digest.add_u64(static_cast<std::uint64_t>(result.jobs_submitted));
  digest.add_u64(static_cast<std::uint64_t>(result.tasks_killed));
  digest.add_u64(result.ok ? 1 : 0);
  for (const sched::JobStats& j : engine.completed()) {
    digest.add_u64(j.id);
    digest.add_u64(j.abandoned ? 1 : 0);
    digest.add_u64(static_cast<std::uint64_t>(j.submit));
    digest.add_u64(static_cast<std::uint64_t>(j.finish));
    digest.add_u64(static_cast<std::uint64_t>(j.task_failures));
    digest.add_double(j.slowdown);
  }
  // The observability layer is part of the determinism contract: fold the
  // flight-recorder ring digest and the instrument registry too, so any
  // thread-count-dependent tracing/metrics bug fails the fuzz gates.
  digest.add_u64(recorder.digest());
  engine.registry().fold_digest(digest);
  result.digest = digest.value();
  if (capture_registry) {
    result.registry = std::make_shared<obs::Registry>();
    result.registry->merge(engine.registry());
  }
  return result;
}

SeedRunResult run_seed(std::uint64_t seed, bool het) {
  return run_spec(make_spec(seed, het));
}

SeedRunResult run_seed(std::uint64_t seed) { return run_seed(seed, false); }

std::uint64_t seed_for_index(std::uint64_t base_seed, std::size_t index) {
  // Matches exp::run_sweep's cell seeding for (scenario=index, rep=0).
  return exp::substream_seed(exp::substream_seed(base_seed, index), 0);
}

FuzzReport run_fuzz(const FuzzOptions& opt) {
  exp::SweepOptions sweep;
  sweep.reps = 1;
  sweep.base_seed = opt.base_seed;
  sweep.pool = opt.pool;

  const bool het = opt.het;
  const std::string slo = opt.slo;
  const bool capture = opt.capture_registry;
  const auto results = exp::run_sweep<SeedRunResult>(
      opt.seeds, sweep, [het, slo, capture](const exp::SweepPoint& p) {
        ScenarioSpec spec = make_spec(p.seed, het);
        spec.slo = slo;
        return run_spec(spec, capture);
      });

  FuzzReport report;
  report.seeds_run = results.size();
  if (capture) report.registry = std::make_shared<obs::Registry>();
  metrics::Digest summary;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SeedRunResult& r = results[i];
    summary.add_u64(r.seed);
    summary.add_u64(r.digest);
    if (capture && r.registry != nullptr) {
      report.registry->merge(*r.registry);
    }
    report.total_events += r.events;
    report.total_transitions += r.transitions;
    report.total_checks += r.checks;
    report.total_completed += r.jobs_completed;
    report.total_abandoned += r.jobs_abandoned;
    report.total_tasks_killed += r.tasks_killed;
    if (!r.ok) {
      report.failing_indices.push_back(i);
      report.failures.push_back(r);
    }
  }
  report.summary_digest = summary.value();
  return report;
}

std::string to_text(const ScenarioSpec& spec) {
  std::ostringstream out;
  out << std::setprecision(17);
  out << "seed=" << spec.seed << "\n";
  out << "racks=" << spec.racks << "\n";
  out << "per_rack=" << spec.per_rack << "\n";
  out << "heterogeneous=" << (spec.heterogeneous ? 1 : 0) << "\n";
  out << "accel_fraction=" << spec.accel_fraction << "\n";
  out << "trace.job_count=" << spec.trace.job_count << "\n";
  out << "trace.arrivals=" << static_cast<int>(spec.trace.arrivals) << "\n";
  out << "trace.arrival_rate_per_hour=" << spec.trace.arrival_rate_per_hour
      << "\n";
  out << "trace.workflow_fraction=" << spec.trace.workflow_fraction << "\n";
  out << "trace.workflow_width=" << spec.trace.workflow_width << "\n";
  out << "trace.mean_tasks_per_job=" << spec.trace.mean_tasks_per_job << "\n";
  out << "trace.mean_task_seconds=" << spec.trace.mean_task_seconds << "\n";
  out << "trace.cv_task_seconds=" << spec.trace.cv_task_seconds << "\n";
  out << "trace.mean_cores_per_task=" << spec.trace.mean_cores_per_task
      << "\n";
  out << "trace.memory_per_core_gib=" << spec.trace.memory_per_core_gib
      << "\n";
  out << "trace.accelerated_fraction=" << spec.trace.accelerated_fraction
      << "\n";
  out << "trace.user_count=" << spec.trace.user_count << "\n";
  out << "trace.fragmentation_factor=" << spec.trace.fragmentation_factor
      << "\n";
  out << "job_limit=" << spec.job_limit << "\n";
  out << "impossible_job=" << (spec.impossible_job ? 1 : 0) << "\n";
  out << "policy=" << spec.policy << "\n";
  out << "retry=" << (spec.retry ? 1 : 0) << "\n";
  out << "max_retries=" << spec.max_retries << "\n";
  out << "scavenging=" << (spec.scavenging ? 1 : 0) << "\n";
  out << "failures_enabled=" << (spec.failures_enabled ? 1 : 0) << "\n";
  out << "failure.mode=" << static_cast<int>(spec.failure.mode) << "\n";
  out << "failure.failures_per_machine_day="
      << spec.failure.failures_per_machine_day << "\n";
  out << "failure.mean_repair_seconds=" << spec.failure.mean_repair_seconds
      << "\n";
  out << "failure.cv_repair=" << spec.failure.cv_repair << "\n";
  out << "failure.mean_burst_size=" << spec.failure.mean_burst_size << "\n";
  out << "failure.weibull_shape=" << spec.failure.weibull_shape << "\n";
  out << "failure_limit=" << spec.failure_limit << "\n";
  out << "flap_count=" << spec.flap_count << "\n";
  out << "horizon=" << spec.horizon << "\n";
  out << "slo=" << spec.slo << "\n";
  out << "score_policy=" << spec.score_policy << "\n";
  out << "score_salt=" << spec.score_salt << "\n";
  out << "net_capacity=" << spec.net_capacity << "\n";
  out << "net_demand_fraction=" << spec.net_demand_fraction << "\n";
  out << "zone_count=" << spec.zone_count << "\n";
  out << "zone_job_fraction=" << spec.zone_job_fraction << "\n";
  out << "spread_fraction=" << spec.spread_fraction << "\n";
  out << "spread_limit=" << spec.spread_limit << "\n";
  return out.str();
}

ScenarioSpec from_text(const std::string& text) {
  ScenarioSpec spec;
  std::istringstream in(text);
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t start = line.find_first_not_of(" \t");
    if (start == std::string::npos || line[start] == '#') continue;
    const std::size_t eq = line.find('=', start);
    if (eq == std::string::npos) {
      throw std::invalid_argument("repro line " + std::to_string(line_no) +
                                  ": expected key=value, got '" + line + "'");
    }
    const std::string key = line.substr(start, eq - start);
    const std::string value = line.substr(eq + 1);
    try {
      if (key == "seed") spec.seed = std::stoull(value);
      else if (key == "racks") spec.racks = std::stoull(value);
      else if (key == "per_rack") spec.per_rack = std::stoull(value);
      else if (key == "heterogeneous") spec.heterogeneous = std::stoi(value) != 0;
      else if (key == "accel_fraction") spec.accel_fraction = std::stod(value);
      else if (key == "trace.job_count") spec.trace.job_count = std::stoull(value);
      else if (key == "trace.arrivals")
        spec.trace.arrivals = static_cast<workload::ArrivalKind>(std::stoi(value));
      else if (key == "trace.arrival_rate_per_hour")
        spec.trace.arrival_rate_per_hour = std::stod(value);
      else if (key == "trace.workflow_fraction")
        spec.trace.workflow_fraction = std::stod(value);
      else if (key == "trace.workflow_width")
        spec.trace.workflow_width = std::stoull(value);
      else if (key == "trace.mean_tasks_per_job")
        spec.trace.mean_tasks_per_job = std::stod(value);
      else if (key == "trace.mean_task_seconds")
        spec.trace.mean_task_seconds = std::stod(value);
      else if (key == "trace.cv_task_seconds")
        spec.trace.cv_task_seconds = std::stod(value);
      else if (key == "trace.mean_cores_per_task")
        spec.trace.mean_cores_per_task = std::stod(value);
      else if (key == "trace.memory_per_core_gib")
        spec.trace.memory_per_core_gib = std::stod(value);
      else if (key == "trace.accelerated_fraction")
        spec.trace.accelerated_fraction = std::stod(value);
      else if (key == "trace.user_count")
        spec.trace.user_count = std::stoull(value);
      else if (key == "trace.fragmentation_factor")
        spec.trace.fragmentation_factor = std::stod(value);
      else if (key == "job_limit") spec.job_limit = std::stoull(value);
      else if (key == "impossible_job") spec.impossible_job = std::stoi(value) != 0;
      else if (key == "policy") spec.policy = value;
      else if (key == "retry") spec.retry = std::stoi(value) != 0;
      else if (key == "max_retries") spec.max_retries = std::stoull(value);
      else if (key == "scavenging") spec.scavenging = std::stoi(value) != 0;
      else if (key == "failures_enabled")
        spec.failures_enabled = std::stoi(value) != 0;
      else if (key == "failure.mode")
        spec.failure.mode = static_cast<failures::CorrelationMode>(std::stoi(value));
      else if (key == "failure.failures_per_machine_day")
        spec.failure.failures_per_machine_day = std::stod(value);
      else if (key == "failure.mean_repair_seconds")
        spec.failure.mean_repair_seconds = std::stod(value);
      else if (key == "failure.cv_repair")
        spec.failure.cv_repair = std::stod(value);
      else if (key == "failure.mean_burst_size")
        spec.failure.mean_burst_size = std::stod(value);
      else if (key == "failure.weibull_shape")
        spec.failure.weibull_shape = std::stod(value);
      else if (key == "failure_limit") spec.failure_limit = std::stoull(value);
      else if (key == "flap_count") spec.flap_count = std::stoull(value);
      else if (key == "horizon") spec.horizon = std::stoll(value);
      else if (key == "slo") spec.slo = value;
      else if (key == "score_policy") spec.score_policy = value;
      else if (key == "score_salt") spec.score_salt = std::stoull(value);
      else if (key == "net_capacity") spec.net_capacity = std::stod(value);
      else if (key == "net_demand_fraction")
        spec.net_demand_fraction = std::stod(value);
      else if (key == "zone_count") spec.zone_count = std::stoull(value);
      else if (key == "zone_job_fraction")
        spec.zone_job_fraction = std::stod(value);
      else if (key == "spread_fraction")
        spec.spread_fraction = std::stod(value);
      else if (key == "spread_limit")
        spec.spread_limit = static_cast<std::uint32_t>(std::stoul(value));
      // Unknown keys are ignored for forward compatibility.
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("repro line " + std::to_string(line_no) +
                                  ": malformed value for '" + key + "'");
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("repro line " + std::to_string(line_no) +
                                  ": value out of range for '" + key + "'");
    }
  }
  return spec;
}

}  // namespace mcs::check
