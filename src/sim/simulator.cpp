#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace mcs::sim {

SimTime from_seconds(double seconds) {
  if (seconds <= 0.0) return 0;
  const double us = seconds * static_cast<double>(kSecond);
  if (us >= static_cast<double>(kTimeInfinity)) return kTimeInfinity;
  return static_cast<SimTime>(std::llround(us));
}

double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

void Simulator::throw_time_in_past() {
  throw std::invalid_argument("Simulator::schedule_at: time in the past");
}

void Simulator::grow_slots() {
  // mcs-lint: allow(H3) — the deliberate amortized slow path: one block
  // allocation per kSlotBlockSize slot reuses; slots themselves recycle.
  slot_blocks_.push_back(std::make_unique<Slot[]>(kSlotBlockSize));
  slot_capacity_ += static_cast<std::uint32_t>(kSlotBlockSize);
}

EventHandle Simulator::schedule_at(SimTime at, Callback fn) {
  if (at < now_) throw_time_in_past();
  const std::uint32_t slot = acquire_slot();
  slot_ref(slot).fn = std::move(fn);
  return arm(at, slot);
}

EventHandle Simulator::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::reserve_events(std::size_t extra) {
  heap_.reserve(heap_.size() + extra);
  tail_.reserve(tail_.size() - tail_head_ + extra);
  // The wheel's bucket headers are a fixed member array; only the intrusive
  // node pool grows with load. reserve() is a no-op when the free list
  // already covers `extra`, so repeated reservations stay idempotent.
  wheel_nodes_.reserve(wheel_count_ + extra);
  while (static_cast<std::size_t>(slot_capacity_) <
         static_cast<std::size_t>(slot_count_) + extra) {
    grow_slots();
  }
}

// mcs-lint: hot
bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.slot_ >= slot_count_) return false;
  Slot& s = slot_ref(h.slot_);
  if (s.gen != h.gen_) return false;  // already ran or already cancelled
  ++s.gen;
  s.fn.reset();  // release captures promptly
  s.next_free = free_head_;
  free_head_ = h.slot_;
  return true;
}

// mcs-lint: hot
void Simulator::sift_up(std::size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

// mcs-lint: hot
void Simulator::pop_entry() {
  // Bottom-up deletion: walk the hole from the root to a leaf along the
  // min-child chain (no comparison against the displaced element), then
  // bubble the former last element up from the leaf. Since the last element
  // of a heap is almost always near-maximal, the upward pass usually stops
  // immediately — saving one comparison per level over top-down sifting.
  const Entry e = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      // Conditional-move selection: with branchless earlier() this loop
      // carries no data-dependent branches.
      best = earlier(heap_[c], heap_[best]) ? c : best;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

// --- hierarchical timing wheel (DESIGN.md §12) ------------------------------
//
// Correctness rests on two invariants, both consequences of the digit rule
// (an entry lives at the level of the highest 6-bit time digit in which it
// differs from the cursor) plus the guarantee that wheel_advance(t) is only
// ever called with t <= every pending wheel entry's time:
//
//  1. *Single-bucket cascade.* When the cursor moves C -> t and L is their
//     highest differing digit, no entry can live at any level below L
//     (its digits above its level would match C's, forcing its time below
//     t — but t is a lower bound), and at level L only the bucket indexed
//     by t's digit can hold entries that are <= any future time digit-
//     compatible with t. So advancing drains exactly one bucket, re-linking
//     its nodes relative to t; everything else stays put. O(1) amortized.
//
//  2. *FIFO is seq order.* Direct inserts carry globally increasing seq, so
//     appends keep a bucket seq-sorted; a cascade only ever fills buckets
//     that were empty (by invariant 1 applied one level down) and preserves
//     the seq-sorted source order. Hence a level-0 bucket — which holds a
//     single timestamp — pops its head in exact (at, seq) execution order,
//     and the head after cascading the candidate's bucket to level 0 *is*
//     the candidate that won selection.

// Not H2-hot: the node-pool growth below is the deliberate amortized slow
// path (same idiom as arm()'s tail/heap growth); steady state recycles
// nodes through the free list and never allocates.
bool Simulator::wheel_insert(const Entry& e) {
  // Resync the cursor first: run_until() may have advanced now_ past the
  // cursor without executing an event. Advancing to now_ is safe — every
  // pending wheel entry's time is >= now_.
  if (wheel_cursor_ != now_) wheel_advance(now_);
  if (wheel_level(e.at, wheel_cursor_) >= kWheelLevels) return false;
  std::uint32_t n;
  if (wheel_free_ != kNoSlot) {
    n = wheel_free_;
    wheel_free_ = wheel_nodes_[n].next;
  } else {
    n = static_cast<std::uint32_t>(wheel_nodes_.size());
    // mcs-lint: allow(H3) — amortized node-pool growth; nodes recycle via
    // the free list, so steady state allocates nothing (reserve_events
    // pre-sizes the pool for bulk setup).
    wheel_nodes_.push_back(WheelNode{});
  }
  wheel_nodes_[n].e = e;
  wheel_link(n);
  ++wheel_count_;
  return true;
}

// mcs-lint: hot
void Simulator::wheel_link(std::uint32_t n) {
  const Entry& e = wheel_nodes_[n].e;
  const int l = wheel_level(e.at, wheel_cursor_);
  const std::size_t idx =
      (static_cast<std::uint64_t>(e.at) >> (kWheelBits * l)) &
      (kWheelBuckets - 1);
  WheelBucket& b = wheel_bucket(l, idx);
  wheel_nodes_[n].next = kNoSlot;
  if (b.head == kNoSlot) {
    b.head = n;
    b.tail = n;
    b.min_at = e.at;
    b.min_seq = e.seq;
    wheel_occ_[l] |= std::uint64_t{1} << idx;
  } else {
    wheel_nodes_[b.tail].next = n;
    b.tail = n;
    // Track the lexicographic (at, seq) minimum: an append can carry an
    // earlier time than the current minimum (seq is FIFO order, time is
    // not), and peek must surface the true bucket minimum.
    if (e.at < b.min_at || (e.at == b.min_at && e.seq < b.min_seq)) {
      b.min_at = e.at;
      b.min_seq = e.seq;
    }
  }
}

// mcs-lint: hot
void Simulator::wheel_advance(SimTime t) {
  if (t == wheel_cursor_) return;
  const SimTime prev = wheel_cursor_;
  wheel_cursor_ = t;  // set first: wheel_link levels relative to the new cursor
  if (wheel_count_ == 0) return;
  const int level = wheel_level(t, prev);
  // level == 0: only the lowest digit changed, so no entry's level or
  // bucket can change (level-0 buckets hold a single timestamp).
  // level >= kWheelLevels: the advance crossed the wheel window, which is
  // only reachable when every pending entry already overflowed to the heap.
  if (level == 0 || level >= kWheelLevels) return;
  const std::size_t idx =
      (static_cast<std::uint64_t>(t) >> (kWheelBits * level)) &
      (kWheelBuckets - 1);
  WheelBucket& b = wheel_bucket(level, idx);
  std::uint32_t n = b.head;
  if (n == kNoSlot) return;
  b.head = kNoSlot;
  b.tail = kNoSlot;
  wheel_occ_[level] &= ~(std::uint64_t{1} << idx);
  // Re-link the drained chain in FIFO order: demoted entries land at
  // strictly lower levels, into buckets that invariant 1 guarantees are
  // empty of older entries — so bucket FIFOs stay seq-sorted.
  while (n != kNoSlot) {
    const std::uint32_t next = wheel_nodes_[n].next;
    wheel_link(n);
    n = next;
  }
}

// mcs-lint: hot
bool Simulator::wheel_peek(SimTime& at, std::uint64_t& seq) const {
  if (wheel_count_ == 0) return false;
  // Levels are strictly time-ordered (a level-l entry precedes every
  // level-(l+1) entry) and buckets within a level are time-ordered by
  // index, so the first occupied bucket of the first occupied level holds
  // the wheel's global (at, seq) minimum — possibly a cancelled tombstone,
  // which the selection loop discards after cascading it to level 0.
  for (int l = 0; l < kWheelLevels; ++l) {
    const std::uint64_t occ = wheel_occ_[l];
    if (occ == 0) continue;
    const auto idx = static_cast<std::size_t>(std::countr_zero(occ));
    const WheelBucket& b =
        wheel_[static_cast<std::size_t>(l) * kWheelBuckets + idx];
    at = b.min_at;
    seq = b.min_seq;
    return true;
  }
  return false;
}

// mcs-lint: hot
Simulator::Entry Simulator::wheel_pop_front() {
  // Precondition: wheel_advance(candidate.at) just ran, so the candidate
  // sits at the head of the level-0 bucket for its timestamp.
  const std::size_t idx =
      static_cast<std::uint64_t>(wheel_cursor_) & (kWheelBuckets - 1);
  WheelBucket& b = wheel_bucket(0, idx);
  const std::uint32_t n = b.head;
  WheelNode& node = wheel_nodes_[n];
  b.head = node.next;
  if (b.head == kNoSlot) {
    b.tail = kNoSlot;
    wheel_occ_[0] &= ~(std::uint64_t{1} << idx);
  } else {
    // A level-0 bucket holds one timestamp in seq order, so the new head
    // is the new minimum.
    b.min_at = wheel_nodes_[b.head].e.at;
    b.min_seq = wheel_nodes_[b.head].e.seq;
  }
  const Entry e = node.e;
  node.next = wheel_free_;
  wheel_free_ = n;
  --wheel_count_;
  return e;
}

bool Simulator::step() { return run_one(kTimeInfinity); }

std::size_t Simulator::run_until(SimTime until) {
  std::size_t ran = 0;
  while (run_one(until)) ++ran;
  if (now_ < until && until != kTimeInfinity) now_ = until;
  return ran;
}

}  // namespace mcs::sim
