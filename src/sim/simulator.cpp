#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace mcs::sim {

SimTime from_seconds(double seconds) {
  if (seconds <= 0.0) return 0;
  const double us = seconds * static_cast<double>(kSecond);
  if (us >= static_cast<double>(kTimeInfinity)) return kTimeInfinity;
  return static_cast<SimTime>(std::llround(us));
}

double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

void Simulator::throw_time_in_past() {
  throw std::invalid_argument("Simulator::schedule_at: time in the past");
}

void Simulator::grow_slots() {
  // mcs-lint: allow(H3) — the deliberate amortized slow path: one block
  // allocation per kSlotBlockSize slot reuses; slots themselves recycle.
  slot_blocks_.push_back(std::make_unique<Slot[]>(kSlotBlockSize));
  slot_capacity_ += static_cast<std::uint32_t>(kSlotBlockSize);
}

EventHandle Simulator::schedule_at(SimTime at, Callback fn) {
  if (at < now_) throw_time_in_past();
  const std::uint32_t slot = acquire_slot();
  slot_ref(slot).fn = std::move(fn);
  return arm(at, slot);
}

EventHandle Simulator::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

void Simulator::reserve_events(std::size_t extra) {
  heap_.reserve(heap_.size() + extra);
  tail_.reserve(tail_.size() - tail_head_ + extra);
  while (static_cast<std::size_t>(slot_capacity_) <
         static_cast<std::size_t>(slot_count_) + extra) {
    grow_slots();
  }
}

// mcs-lint: hot
bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.slot_ >= slot_count_) return false;
  Slot& s = slot_ref(h.slot_);
  if (s.gen != h.gen_) return false;  // already ran or already cancelled
  ++s.gen;
  s.fn.reset();  // release captures promptly
  s.next_free = free_head_;
  free_head_ = h.slot_;
  return true;
}

// mcs-lint: hot
void Simulator::sift_up(std::size_t i) {
  Entry e = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

// mcs-lint: hot
void Simulator::pop_entry() {
  // Bottom-up deletion: walk the hole from the root to a leaf along the
  // min-child chain (no comparison against the displaced element), then
  // bubble the former last element up from the leaf. Since the last element
  // of a heap is almost always near-maximal, the upward pass usually stops
  // immediately — saving one comparison per level over top-down sifting.
  const Entry e = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return;
  std::size_t hole = 0;
  for (;;) {
    const std::size_t first = 4 * hole + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + 4, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      // Conditional-move selection: with branchless earlier() this loop
      // carries no data-dependent branches.
      best = earlier(heap_[c], heap_[best]) ? c : best;
    }
    heap_[hole] = heap_[best];
    hole = best;
  }
  while (hole > 0) {
    const std::size_t parent = (hole - 1) / 4;
    if (!earlier(e, heap_[parent])) break;
    heap_[hole] = heap_[parent];
    hole = parent;
  }
  heap_[hole] = e;
}

bool Simulator::step() { return run_one(kTimeInfinity); }

std::size_t Simulator::run_until(SimTime until) {
  std::size_t ran = 0;
  while (run_one(until)) ++ran;
  if (now_ < until && until != kTimeInfinity) now_ = until;
  return ran;
}

}  // namespace mcs::sim
