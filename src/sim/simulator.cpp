#include "sim/simulator.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace mcs::sim {

SimTime from_seconds(double seconds) {
  if (seconds <= 0.0) return 0;
  const double us = seconds * static_cast<double>(kSecond);
  if (us >= static_cast<double>(kTimeInfinity)) return kTimeInfinity;
  return static_cast<SimTime>(std::llround(us));
}

double to_seconds(SimTime t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

EventHandle Simulator::schedule_at(SimTime at, Callback fn) {
  if (at < now_) {
    throw std::invalid_argument("Simulator::schedule_at: time in the past");
  }
  const std::uint64_t id = next_id_++;
  queue_.push(Entry{at, next_seq_++, id, std::move(fn)});
  return EventHandle{id};
}

EventHandle Simulator::schedule_after(SimTime delay, Callback fn) {
  if (delay < 0) delay = 0;
  return schedule_at(now_ + delay, std::move(fn));
}

bool Simulator::cancel(EventHandle h) {
  if (!h.valid() || h.id_ >= next_id_) return false;
  return cancelled_.insert(h.id_).second;
}

void Simulator::purge_cancelled_top() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    queue_.pop();
  }
}

bool Simulator::step() {
  purge_cancelled_top();
  if (queue_.empty()) return false;
  Entry e = queue_.top();
  queue_.pop();
  now_ = e.at;
  ++executed_;
  e.fn();
  return true;
}

std::size_t Simulator::run_until(SimTime until) {
  std::size_t ran = 0;
  for (;;) {
    purge_cancelled_top();
    if (queue_.empty() || queue_.top().at > until) break;
    if (!step()) break;
    ++ran;
  }
  if (now_ < until && until != kTimeInfinity) now_ = until;
  return ran;
}

}  // namespace mcs::sim
