// Deterministic discrete-event simulation kernel.
//
// The paper (C15, §3.3 "Experimentation and simulation") argues that
// simulation is the primary community instrument for studying computer
// ecosystems; every subsystem in this repository runs on this kernel.
//
// Design choices:
//  - Virtual time is an integer count of microseconds (SimTime). Integer time
//    keeps event ordering exact and runs reproducible across platforms.
//  - Ties are broken by (priority, insertion sequence), so a simulation is a
//    pure function of its inputs and RNG seed.
//  - Single-threaded by design: determinism and debuggability outrank kernel
//    speed for this scale of model (see bench/micro_sim for throughput).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

namespace mcs::sim {

/// Virtual time in microseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1'000;
constexpr SimTime kSecond = 1'000'000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;
constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::max();

/// Converts a duration in (floating point) seconds to SimTime, rounding to
/// the nearest microsecond. Negative durations clamp to zero.
SimTime from_seconds(double seconds);

/// Converts SimTime to floating point seconds (for reporting only).
double to_seconds(SimTime t);

/// Opaque handle used to cancel a scheduled event.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return id_ != 0; }

 private:
  friend class Simulator;
  explicit EventHandle(std::uint64_t id) : id_(id) {}
  std::uint64_t id_ = 0;
};

/// The discrete-event engine. Owns the virtual clock and the event queue.
class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (>= now()).
  /// Events at equal times run in scheduling order.
  EventHandle schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` after now().
  EventHandle schedule_after(SimTime delay, Callback fn);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled. Cancelling is O(1): the event is tombstoned in place.
  bool cancel(EventHandle h);

  /// Runs events until the queue drains or `until` is passed. Returns the
  /// number of events executed. The clock never exceeds `until`.
  std::size_t run_until(SimTime until = kTimeInfinity);

  /// Runs exactly one event if available; returns whether one ran.
  bool step();

  /// Number of events waiting (including tombstoned ones).
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

 private:
  void purge_cancelled_top();

  struct Entry {
    SimTime at;
    std::uint64_t seq;  // insertion order; breaks ties deterministically
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;  // tombstoned event ids
};

}  // namespace mcs::sim
