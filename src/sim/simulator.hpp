// Deterministic discrete-event simulation kernel.
//
// The paper (C15, §3.3 "Experimentation and simulation") argues that
// simulation is the primary community instrument for studying computer
// ecosystems; every subsystem in this repository runs on this kernel, so
// its per-event cost is the floor under every experiment (E1–E12) and the
// ceiling on ecosystem scale (ROADMAP item 3: 1M machines / 10M jobs).
//
// Design choices:
//  - Virtual time is an integer count of microseconds (SimTime). Integer time
//    keeps event ordering exact and runs reproducible across platforms.
//  - Ties are broken by (priority, insertion sequence), so a simulation is a
//    pure function of its inputs and RNG seed.
//  - Single-threaded by design: determinism and debuggability outrank kernel
//    speed for this scale of model (see bench/micro_sim for throughput).
//  - The hot path is allocation-free: callbacks use sim::Callback (inline
//    storage for typical capturing lambdas, heap only as a fallback), and
//    queue entries are 24-byte PODs whose callbacks live in a slot table —
//    no queue operation ever moves a closure.
//  - The event queue is a three-band structure ordered by the same global
//    (at, seq) key (DESIGN.md §12):
//      1. a sorted-run *tail buffer*: discrete-event workloads
//         overwhelmingly schedule in nondecreasing time order, so monotone
//         schedules append in O(1) and pop in O(1);
//      2. a *hierarchical timing wheel* (6 levels × 64 power-of-two
//         buckets over sim-time deltas) for the dominant near-future
//         out-of-order band — insert, cascade, and pop are O(1);
//      3. a 4-ary implicit *heap* kept only for far-future overflow
//         (events beyond the wheel's ~19-hour window).
//    Execution order is bit-identical whichever band an event lands in.
//  - Cancellation is O(1) lazy deletion: a handle carries (slot, generation)
//    and cancelling bumps the slot generation; stale entries are discarded
//    with one array load when they surface, no hash lookups.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace mcs::sim {

/// Virtual time in microseconds since simulation start.
using SimTime = std::int64_t;

constexpr SimTime kMicrosecond = 1;
constexpr SimTime kMillisecond = 1'000;
constexpr SimTime kSecond = 1'000'000;
constexpr SimTime kMinute = 60 * kSecond;
constexpr SimTime kHour = 60 * kMinute;
constexpr SimTime kDay = 24 * kHour;
constexpr SimTime kTimeInfinity = std::numeric_limits<SimTime>::max();

/// Converts a duration in (floating point) seconds to SimTime, rounding to
/// the nearest microsecond. Negative durations clamp to zero.
SimTime from_seconds(double seconds);

/// Converts SimTime to floating point seconds (for reporting only).
double to_seconds(SimTime t);

/// Small-buffer-optimized move-only callable<void()>. Closures up to
/// kInlineSize bytes (the common case: a few captured pointers/values) are
/// stored inline; larger ones fall back to a single heap allocation. Unlike
/// std::function it also accepts move-only closures (e.g. capturing a
/// std::unique_ptr).
class Callback {
 public:
  static constexpr std::size_t kInlineSize = 48;

  Callback() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_v<D&>>>
  Callback(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    construct<D>(std::forward<F>(fn));
  }

  /// Destroys the current callable (if any) and constructs `fn` directly in
  /// this object's storage — the kernel uses this to build a closure in its
  /// slot without an intermediate Callback and relocation.
  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, Callback> &&
                                        std::is_invocable_v<D&>>>
  void emplace(F&& fn) {
    reset();
    construct<D>(std::forward<F>(fn));
  }

  Callback(Callback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      relocate_from(other);
    }
  }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        relocate_from(other);
      }
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { reset(); }

  /// Destroys the held callable (releasing its captures immediately).
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Whether the callable is stored inline (no heap allocation was made).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  void operator()() {
    ops_->invoke(storage_);
  }

 private:
  // relocate/destroy may be null: a null relocate means "memcpy the whole
  // buffer" (valid for trivially copyable closures and for the heap case,
  // where the buffer just holds a pointer); a null destroy means "nothing
  // to do". Both fast paths skip an indirect call on the kernel's hot path.
  struct Ops {
    void (*invoke)(void* storage);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename D, typename F>
  void construct(F&& fn) {
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      // mcs-lint: allow(H3) — small-buffer fallback: closures that fit
      // kInlineSize (all in-tree callbacks) never reach this branch.
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &heap_ops<D>;
    }
  }

  void relocate_from(Callback& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, kInlineSize);
    }
    other.ops_ = nullptr;
  }

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              D* from = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* s) noexcept {
              std::launder(reinterpret_cast<D*>(s))->~D();
            },
      true};

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      nullptr,  // the buffer holds one pointer; memcpy relocates it
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
      false};

  alignas(std::max_align_t) unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

/// Opaque handle used to cancel a scheduled event. Internally a
/// (slot, generation) pair: generations make handles single-use even when
/// the kernel recycles the slot for a later event.
class EventHandle {
 public:
  EventHandle() = default;
  [[nodiscard]] bool valid() const { return gen_ != 0; }

 private:
  friend class Simulator;
  EventHandle(std::uint32_t slot, std::uint32_t gen)
      : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = 0;
  std::uint32_t gen_ = 0;
};

/// Observation hook for correctness harnesses (src/check): notified after
/// the kernel commits to an event (clock advanced, stale entries skipped)
/// and before its callback runs. The default null hook costs one predicted
/// branch per event on the kernel's hot path — cheap enough to stay
/// compiled into every build (the check layer's ratchet relies on that).
class SimHook {
 public:
  virtual ~SimHook() = default;
  /// `at` is the event's (committed) execution time == now(); `executed`
  /// counts this event. Fires before the event callback runs.
  /// Implementations must not mutate the simulator.
  virtual void on_event(SimTime at, std::uint64_t executed) = 0;
  /// Fires after the event callback returns — the quiescent point where
  /// model state must be fully consistent again (a single event may apply
  /// several nested transitions; invariants hold at its end, not midway).
  /// Not called if the callback throws.
  virtual void on_event_end(SimTime at, std::uint64_t executed) = 0;
};

/// The discrete-event engine. Owns the virtual clock and the event queue.
class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current virtual time.
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute virtual time `at` (>= now()).
  /// Events at equal times run in scheduling order. The callable is
  /// constructed directly in its kernel slot (no intermediate Callback).
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventHandle schedule_at(SimTime at, F&& fn) {
    if (at < now_) throw_time_in_past();
    // Exception safety by ordering, not by try/catch: the slot is only
    // committed (freelist popped / counter bumped) after the callable's
    // constructor has succeeded, so a throwing copy leaves no trace.
    std::uint32_t slot;
    if (free_head_ != kNoSlot) {
      slot = free_head_;
      slot_ref(slot).fn.emplace(std::forward<F>(fn));
      free_head_ = slot_ref(slot).next_free;
    } else {
      if (slot_count_ == slot_capacity_) grow_slots();
      slot = slot_count_;
      slot_ref(slot).fn.emplace(std::forward<F>(fn));
      ++slot_count_;
    }
    return arm(at, slot);
  }
  EventHandle schedule_at(SimTime at, Callback fn);

  /// Schedules `fn` to run `delay` after now().
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, Callback> &&
                std::is_invocable_v<std::decay_t<F>&>>>
  EventHandle schedule_after(SimTime delay, F&& fn) {
    if (delay < 0) delay = 0;
    return schedule_at(now_ + delay, std::forward<F>(fn));
  }
  EventHandle schedule_after(SimTime delay, Callback fn);

  /// Bulk reservation: pre-sizes the heap, the tail buffer, the wheel's
  /// node pool, and the callback slot table for `extra` additional pending
  /// events, so a burst of schedule_at calls performs no reallocation.
  void reserve_events(std::size_t extra);

  /// Cancels a pending event; returns false if it already ran or was
  /// cancelled. Cancelling is O(1): the slot generation is bumped and the
  /// callback destroyed in place; the queue entry is discarded lazily.
  bool cancel(EventHandle h);

  /// Runs events until the queue drains or `until` is passed. Returns the
  /// number of events executed. The clock never exceeds `until`.
  std::size_t run_until(SimTime until = kTimeInfinity);

  /// Runs exactly one event if available; returns whether one ran.
  bool step();

  /// Number of events waiting (including tombstoned ones).
  [[nodiscard]] std::size_t pending() const {
    return heap_.size() + (tail_.size() - tail_head_) + wheel_count_;
  }

  /// Total events executed since construction.
  [[nodiscard]] std::uint64_t executed() const { return executed_; }

  /// Installs (or clears, with nullptr) the observation hook. The hook must
  /// outlive the simulator or be cleared before it is destroyed.
  void set_hook(SimHook* hook) { hook_ = hook; }
  [[nodiscard]] SimHook* hook() const { return hook_; }

 private:
  // Queue entries are small PODs; the (heavy) callback stays put in its
  // slot so no queue operation — sift, wheel cascade, tail compaction —
  // ever moves a closure.
  struct Entry {
    SimTime at;
    std::uint64_t seq;  // insertion order; breaks ties deterministically
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Slot {
    Callback fn;
    std::uint32_t gen = 1;  // bumped on execute/cancel; 0 is never stored
    std::uint32_t next_free = kNoSlot;
  };
  static constexpr std::uint32_t kNoSlot =
      std::numeric_limits<std::uint32_t>::max();
  // Slots live in fixed-size blocks, so growing the table never moves a
  // Slot. Address stability is load-bearing twice over: growth performs no
  // per-callback relocation, and the kernel can invoke a callback in place
  // while user code inside it schedules new events.
  static constexpr std::size_t kSlotBlockBits = 9;
  static constexpr std::size_t kSlotBlockSize = std::size_t{1}
                                                << kSlotBlockBits;

  // --- hierarchical timing wheel geometry (DESIGN.md §12) -------------------
  // kWheelLevels levels of kWheelBuckets buckets. Level l buckets span
  // 2^(6l) µs each; an event lives at the lowest level whose bucket span
  // still separates it from the cursor — precisely: at level l such that
  // `at` and the cursor agree on all time digits above bit 6(l+1). Events
  // whose top digit differs (more than ~19 hours of 2^36-aligned window)
  // overflow to the 4-ary heap.
  static constexpr int kWheelBits = 6;
  static constexpr std::size_t kWheelBuckets = std::size_t{1} << kWheelBits;
  static constexpr int kWheelLevels = 6;
  // Consumed tail-buffer prefixes are compacted once they pass half the
  // buffer (and this floor), so long monotone runs stop holding dead
  // entries for the whole simulation; each entry moves at most once per
  // compaction generation, O(1) amortized per pop.
  static constexpr std::size_t kTailCompactMin = 64;

  /// Intrusive FIFO node for wheel buckets: entries chain through a pooled
  /// node array, so cascading a bucket re-links nodes without allocating
  /// and pops recycle nodes through a free list.
  struct WheelNode {
    Entry e;
    std::uint32_t next;
  };
  /// One wheel bucket: an intrusive FIFO (append at tail, pop at head)
  /// plus the (at, seq) minimum over its entries. FIFO order within a
  /// bucket is always seq order (inserts are seq-monotone and cascades
  /// only ever fill empty buckets, preserving source order), so a level-0
  /// bucket pops in exact execution order with no sorting.
  struct WheelBucket {
    std::uint32_t head = kNoSlot;
    std::uint32_t tail = kNoSlot;
    SimTime min_at = 0;
    std::uint64_t min_seq = 0;
  };

  /// True when a precedes b in execution order. Compares the (at, seq)
  /// pair as one 128-bit key: `at` is never negative (schedule_at enforces
  /// at >= now() >= 0), so the unsigned reinterpretation preserves order,
  /// and the compiler lowers this to a branchless cmp/sbb pair — heap sift
  /// comparisons on random keys would otherwise mispredict constantly.
  static bool earlier(const Entry& a, const Entry& b) {
    const auto ka =
        (static_cast<unsigned __int128>(static_cast<std::uint64_t>(a.at))
         << 64) |
        a.seq;
    const auto kb =
        (static_cast<unsigned __int128>(static_cast<std::uint64_t>(b.at))
         << 64) |
        b.seq;
    return ka < kb;
  }

  [[noreturn]] static void throw_time_in_past();

  [[nodiscard]] std::uint32_t acquire_slot() {
    if (free_head_ != kNoSlot) {
      const std::uint32_t slot = free_head_;
      free_head_ = slot_ref(slot).next_free;
      return slot;
    }
    if (slot_count_ == slot_capacity_) grow_slots();
    return slot_count_++;
  }

  /// Wheel level for `at` relative to `cursor`: the index of the highest
  /// 6-bit time digit in which they differ (0 when equal). Levels >=
  /// kWheelLevels mean the event is beyond the wheel window (heap band).
  static int wheel_level(SimTime at, SimTime cursor) {
    const std::uint64_t x = static_cast<std::uint64_t>(at) ^
                            static_cast<std::uint64_t>(cursor);
    if (x == 0) return 0;
    return (63 - std::countl_zero(x)) / kWheelBits;
  }

  [[nodiscard]] WheelBucket& wheel_bucket(int level, std::size_t idx) {
    return wheel_[static_cast<std::size_t>(level) * kWheelBuckets + idx];
  }

  /// Enqueues the entry for an armed slot and returns its handle. Entries
  /// that continue the current monotone run go to the sorted tail buffer
  /// (O(1)); out-of-order entries within the wheel window go to the wheel
  /// (O(1)); only far-future overflow pays the O(log n) heap. Not H2-hot
  /// itself (growth is amortized, see the allow(H3) sites), but reachable
  /// from hot callers, so everything else here stays allocation-free.
  EventHandle arm(SimTime at, std::uint32_t slot) {
    const std::uint32_t gen = slot_ref(slot).gen;
    const Entry e{at, next_seq_++, slot, gen};
    if (tail_head_ == tail_.size() || !earlier(e, tail_.back())) {
      if (tail_head_ != 0 && tail_head_ == tail_.size()) {
        tail_.clear();
        tail_head_ = 0;
      }
      // mcs-lint: allow(H3) — the event queue cannot be pre-sized (event
      // count is workload-dependent); growth is amortized doubling and
      // steady-state runs at high-water capacity.
      tail_.push_back(e);
    } else if (!wheel_insert(e)) {
      // mcs-lint: allow(H3) — same amortized-growth argument as tail_.
      heap_.push_back(e);
      sift_up(heap_.size() - 1);
    }
    return EventHandle{slot, gen};
  }

  [[nodiscard]] Slot& slot_ref(std::uint32_t i) {
    return slot_blocks_[i >> kSlotBlockBits][i & (kSlotBlockSize - 1)];
  }
  [[nodiscard]] const Slot& slot_ref(std::uint32_t i) const {
    return slot_blocks_[i >> kSlotBlockBits][i & (kSlotBlockSize - 1)];
  }

  void grow_slots();
  void sift_up(std::size_t i);
  void pop_entry();
  bool wheel_insert(const Entry& e);
  void wheel_link(std::uint32_t node);
  void wheel_advance(SimTime t);
  bool wheel_peek(SimTime& at, std::uint64_t& seq) const;
  Entry wheel_pop_front();

  /// Compacts the consumed prefix of the tail buffer once it passes half
  /// the buffer, so long monotone runs release dead entries instead of
  /// holding them for the whole simulation.
  // mcs-lint: hot
  void maybe_compact_tail() {
    if (tail_head_ >= kTailCompactMin && tail_head_ * 2 >= tail_.size()) {
      tail_.erase(tail_.begin(),
                  tail_.begin() + static_cast<std::ptrdiff_t>(tail_head_));
      tail_head_ = 0;
    }
  }

  /// Pops and executes the next live event in (at, seq) order; returns
  /// false if the queues are exhausted or its time exceeds `until`. Stale
  /// entries met on the way are discarded. Defined inline: this is the
  /// kernel's innermost loop body and benefits from cross-inlining into
  /// run_until/step at every call site. Marked hot: tools/mcs_lint rejects
  /// any heap allocation introduced here (rule H2).
  // mcs-lint: hot
  bool run_one(SimTime until) {
    for (;;) {
      // Discard stale (cancelled) entries at the tail and heap fronts,
      // then take the earliest of the three live band fronts. The wheel
      // candidate may itself be stale — that is only discovered once its
      // bucket cascades to level 0, whereupon we discard and reselect.
      while (tail_head_ < tail_.size() && !entry_live(tail_[tail_head_])) {
        ++tail_head_;
      }
      maybe_compact_tail();
      while (!heap_.empty() && !entry_live(heap_.front())) pop_entry();
      enum class Src : std::uint8_t { kNone, kTail, kHeap, kWheel };
      Src src = Src::kNone;
      Entry e{0, 0, 0, 0};
      if (tail_head_ < tail_.size()) {
        e = tail_[tail_head_];
        src = Src::kTail;
      }
      if (!heap_.empty() &&
          (src == Src::kNone || earlier(heap_.front(), e))) {
        e = heap_.front();
        src = Src::kHeap;
      }
      SimTime wheel_at = 0;
      std::uint64_t wheel_seq = 0;
      if (wheel_count_ != 0 && wheel_peek(wheel_at, wheel_seq)) {
        const Entry w{wheel_at, wheel_seq, 0, 0};
        if (src == Src::kNone || earlier(w, e)) {
          e = w;
          src = Src::kWheel;
        }
      }
      if (src == Src::kNone) return false;
      if (e.at > until) return false;
      if (src == Src::kWheel) {
        // Bring the candidate's bucket down to level 0 and pop its head —
        // the head is the bucket minimum (FIFO is seq order), so it *is*
        // the candidate. A stale (cancelled) head is discarded and the
        // selection rerun: remaining minima only move later.
        wheel_advance(e.at);
        e = wheel_pop_front();
        if (!entry_live(e)) continue;
      } else {
        if (src == Src::kTail) {
          ++tail_head_;  // compaction is checked at the next selection pass
        } else {
          pop_entry();
        }
        // The cursor only needs to track execution time while the wheel
        // holds entries; when empty, the next wheel_insert resyncs it from
        // now_ before leveling — skipping an out-of-line call per event.
        if (wheel_count_ != 0) wheel_advance(e.at);
      }
      Slot& s = slot_ref(e.slot);
      ++s.gen;  // invalidate outstanding handles before user code runs
      now_ = e.at;
      ++executed_;
      if (hook_ != nullptr) hook_->on_event(e.at, executed_);
      // Invoke in place: slot storage is address-stable, so user code inside
      // the callback can schedule freely without moving the running closure.
      // The slot is not on the free list yet, so it cannot be re-armed until
      // the guard releases it — which happens even if the callback throws.
      struct FreeGuard {
        Simulator* sim;
        Slot* slot;
        std::uint32_t index;
        ~FreeGuard() {
          slot->fn.reset();
          slot->next_free = sim->free_head_;
          sim->free_head_ = index;
        }
      } guard{this, &s, e.slot};
      s.fn();
      if (hook_ != nullptr) hook_->on_event_end(e.at, executed_);
      return true;
    }
  }
  [[nodiscard]] bool entry_live(const Entry& e) const {
    return slot_ref(e.slot).gen == e.gen;
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::vector<Entry> heap_;  // 4-ary implicit heap; far-future overflow band
  std::vector<Entry> tail_;  // sorted monotone run, consumed from tail_head_
  std::size_t tail_head_ = 0;
  // Timing wheel state: pooled intrusive nodes, kWheelLevels × kWheelBuckets
  // bucket headers, one occupancy bit per bucket (ctz finds the next
  // occupied bucket in O(1)), and the cursor the level digits are relative
  // to. The cursor trails now_ only inside run_one's selection loop; arm()
  // resyncs it before any insert.
  std::vector<WheelNode> wheel_nodes_;
  std::uint32_t wheel_free_ = kNoSlot;
  // Fixed 6×64 bucket-header array (~9 KiB): always present, so the wheel
  // needs no lazy sizing inside hot inserts.
  WheelBucket wheel_[static_cast<std::size_t>(kWheelLevels) * kWheelBuckets] =
      {};
  std::uint64_t wheel_occ_[static_cast<std::size_t>(kWheelLevels)] = {};
  SimTime wheel_cursor_ = 0;
  std::size_t wheel_count_ = 0;  // entries in the wheel, incl. tombstones
  // Callback storage, recycled via free list; see kSlotBlockBits above.
  std::vector<std::unique_ptr<Slot[]>> slot_blocks_;
  std::uint32_t slot_count_ = 0;     // slots ever handed out
  std::uint32_t slot_capacity_ = 0;  // slots constructed across blocks
  std::uint32_t free_head_ = kNoSlot;
  SimHook* hook_ = nullptr;
};

}  // namespace mcs::sim
