#include "sim/arrival.hpp"

#include <cmath>
#include <stdexcept>

namespace mcs::sim {

PoissonProcess::PoissonProcess(double rate_per_second) {
  if (rate_per_second <= 0.0) {
    throw std::invalid_argument("PoissonProcess: rate <= 0");
  }
  mean_gap_seconds_ = 1.0 / rate_per_second;
}

SimTime PoissonProcess::next_gap(Rng& rng) {
  return from_seconds(rng.exponential(mean_gap_seconds_));
}

MmppProcess::MmppProcess(double calm_rate, double burst_rate,
                         double mean_calm_seconds, double mean_burst_seconds)
    : calm_rate_(calm_rate),
      burst_rate_(burst_rate),
      mean_calm_s_(mean_calm_seconds),
      mean_burst_s_(mean_burst_seconds) {
  if (calm_rate <= 0.0 || burst_rate <= 0.0 || mean_calm_seconds <= 0.0 ||
      mean_burst_seconds <= 0.0) {
    throw std::invalid_argument("MmppProcess: non-positive parameter");
  }
}

SimTime MmppProcess::next_gap(Rng& rng) {
  double gap_s = 0.0;
  for (;;) {
    if (state_left_s_ <= 0.0) {
      // Enter a fresh state.
      state_left_s_ = rng.exponential(in_burst_ ? mean_burst_s_ : mean_calm_s_);
    }
    const double rate = in_burst_ ? burst_rate_ : calm_rate_;
    const double candidate = rng.exponential(1.0 / rate);
    if (candidate <= state_left_s_) {
      state_left_s_ -= candidate;
      gap_s += candidate;
      return from_seconds(gap_s);
    }
    // No arrival before the state expires: advance to the switch and retry.
    gap_s += state_left_s_;
    state_left_s_ = 0.0;
    in_burst_ = !in_burst_;
  }
}

DiurnalProcess::DiurnalProcess(double base_rate, double amplitude,
                               SimTime period)
    : base_rate_(base_rate), amplitude_(amplitude), period_(period) {
  if (base_rate <= 0.0 || period <= 0) {
    throw std::invalid_argument("DiurnalProcess: bad parameters");
  }
  if (amplitude < 0.0 || amplitude > 1.0) {
    throw std::invalid_argument("DiurnalProcess: amplitude outside [0,1]");
  }
}

SimTime DiurnalProcess::next_gap(Rng& rng) {
  // Thinning against the max rate base*(1+amplitude).
  const double max_rate = base_rate_ * (1.0 + amplitude_);
  const SimTime start = virtual_now_;
  for (;;) {
    virtual_now_ += from_seconds(rng.exponential(1.0 / max_rate));
    const double phase = 2.0 * M_PI *
                         static_cast<double>(virtual_now_ % period_) /
                         static_cast<double>(period_);
    const double rate = base_rate_ * (1.0 + amplitude_ * std::sin(phase));
    if (rng.uniform() * max_rate <= rate) {
      return virtual_now_ - start;
    }
  }
}

}  // namespace mcs::sim
