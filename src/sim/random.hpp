// Seeded random variates for workload, failure, and behaviour models.
//
// The paper's methodology section (§3.3 "Quantitative results") calls for
// statistically sound workload and failure modelling; the distributions here
// are the ones the cited characterization studies use: exponential/Poisson
// arrivals, lognormal task sizes [39], Weibull inter-failure times [26][27],
// Pareto heavy tails, and Zipf popularity.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace mcs::sim {

/// Deterministic pseudo-random source. Every stochastic component takes an
/// Rng (or a seed used to derive one); experiments print their seeds so runs
/// are reproducible (paper P8: reproducibility as essential service).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Derives an independent child stream; used to decouple subsystems so
  /// adding draws in one does not perturb another.
  [[nodiscard]] Rng fork();

  /// Uniform in [0, 1).
  double uniform();
  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Bernoulli trial.
  bool chance(double p);

  /// Exponential with given mean (mean > 0).
  double exponential(double mean);
  /// Normal with mean/stddev.
  double normal(double mean, double stddev);
  /// Lognormal parameterized by the *underlying* normal's mu/sigma.
  double lognormal(double mu, double sigma);
  /// Lognormal parameterized by its own mean and coefficient of variation.
  double lognormal_mean_cv(double mean, double cv);
  /// Weibull with shape k and scale lambda.
  double weibull(double shape, double scale);
  /// Pareto with minimum xm and tail index alpha (> 0).
  double pareto(double xm, double alpha);
  /// Bounded Pareto on [lo, hi] with tail index alpha.
  double bounded_pareto(double lo, double hi, double alpha);
  /// Gamma with shape k, scale theta.
  double gamma(double shape, double scale);
  /// Poisson-distributed count with given mean.
  std::int64_t poisson(double mean);

  /// Zipf-distributed rank in [0, n). O(1) per draw after O(n) setup is not
  /// kept; uses rejection-inversion (Hörmann) so it is allocation free.
  std::size_t zipf(std::size_t n, double exponent);

  /// Picks an index in [0, weights.size()) with probability proportional to
  /// weights[i]. Weights must be non-negative with positive sum.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mcs::sim
