// Arrival processes for workload generation.
//
// Grid and cloud workloads exhibit short-term burstiness (§5.1 C7, citing
// [113]) that a plain Poisson process cannot express; the Markov-modulated
// Poisson process (MMPP) here produces the bursty regime switches the
// characterization literature reports, and the diurnal process models the
// day/night cycles that drive autoscaling (C3, [43]).
#pragma once

#include <memory>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mcs::sim {

/// Produces successive inter-arrival gaps; stateful and seeded.
class ArrivalProcess {
 public:
  virtual ~ArrivalProcess() = default;
  /// Next inter-arrival gap (virtual time units, > 0 unless batch arrival).
  virtual SimTime next_gap(Rng& rng) = 0;
};

/// Homogeneous Poisson process with the given mean rate (arrivals/second).
class PoissonProcess final : public ArrivalProcess {
 public:
  explicit PoissonProcess(double rate_per_second);
  SimTime next_gap(Rng& rng) override;

 private:
  double mean_gap_seconds_;
};

/// Two-state Markov-modulated Poisson process: a "calm" state with low rate
/// and a "burst" state with high rate; state sojourn times are exponential.
class MmppProcess final : public ArrivalProcess {
 public:
  MmppProcess(double calm_rate, double burst_rate, double mean_calm_seconds,
              double mean_burst_seconds);
  SimTime next_gap(Rng& rng) override;

  [[nodiscard]] bool in_burst() const { return in_burst_; }

 private:
  double calm_rate_, burst_rate_;
  double mean_calm_s_, mean_burst_s_;
  bool in_burst_ = false;
  double state_left_s_ = 0.0;
};

/// Poisson process whose rate follows a sinusoidal diurnal pattern:
/// rate(t) = base * (1 + amplitude * sin(2*pi*t/period)). Sampled by
/// thinning, so it is an exact non-homogeneous Poisson process.
class DiurnalProcess final : public ArrivalProcess {
 public:
  DiurnalProcess(double base_rate, double amplitude, SimTime period);
  SimTime next_gap(Rng& rng) override;

 private:
  double base_rate_;
  double amplitude_;
  SimTime period_;
  SimTime virtual_now_ = 0;
};

}  // namespace mcs::sim
