#include "sim/random.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace mcs::sim {

Rng Rng::fork() {
  // Mix two draws so sibling forks are decorrelated.
  const std::uint64_t a = engine_();
  const std::uint64_t b = engine_();
  return Rng(a ^ (b * 0x9E3779B97F4A7C15ULL));
}

double Rng::uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform: hi < lo");
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (hi < lo) throw std::invalid_argument("Rng::uniform_int: hi < lo");
  return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) throw std::invalid_argument("Rng::exponential: mean <= 0");
  return std::exponential_distribution<double>(1.0 / mean)(engine_);
}

double Rng::normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double Rng::lognormal(double mu, double sigma) {
  return std::lognormal_distribution<double>(mu, sigma)(engine_);
}

double Rng::lognormal_mean_cv(double mean, double cv) {
  if (mean <= 0.0) throw std::invalid_argument("lognormal_mean_cv: mean <= 0");
  if (cv <= 0.0) return mean;
  const double sigma2 = std::log(1.0 + cv * cv);
  const double mu = std::log(mean) - 0.5 * sigma2;
  return lognormal(mu, std::sqrt(sigma2));
}

double Rng::weibull(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("Rng::weibull: non-positive parameter");
  }
  return std::weibull_distribution<double>(shape, scale)(engine_);
}

double Rng::pareto(double xm, double alpha) {
  if (xm <= 0.0 || alpha <= 0.0) {
    throw std::invalid_argument("Rng::pareto: non-positive parameter");
  }
  const double u = 1.0 - uniform();  // in (0, 1]
  return xm / std::pow(u, 1.0 / alpha);
}

double Rng::bounded_pareto(double lo, double hi, double alpha) {
  if (lo <= 0.0 || hi <= lo || alpha <= 0.0) {
    throw std::invalid_argument("Rng::bounded_pareto: bad parameters");
  }
  const double u = uniform();
  const double la = std::pow(lo, alpha);
  const double ha = std::pow(hi, alpha);
  return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
}

double Rng::gamma(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("Rng::gamma: non-positive parameter");
  }
  return std::gamma_distribution<double>(shape, scale)(engine_);
}

std::int64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("Rng::poisson: mean < 0");
  if (mean == 0.0) return 0;
  return std::poisson_distribution<std::int64_t>(mean)(engine_);
}

std::size_t Rng::zipf(std::size_t n, double exponent) {
  if (n == 0) throw std::invalid_argument("Rng::zipf: n == 0");
  if (n == 1) return 0;
  // Rejection-inversion sampling (Hörmann & Derflinger 1996) for ranks
  // 1..n with P(k) proportional to k^-exponent; returns rank-1 (0-based).
  const double s = exponent;
  auto h = [s](double x) {
    return s == 1.0 ? std::log(x) : (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    return s == 1.0 ? std::exp(y) : std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double nd = static_cast<double>(n);
  const double hx0 = h(0.5) - 1.0;  // shifted so acceptance works for k=1
  const double hn = h(nd + 0.5);
  for (;;) {
    const double u = hx0 + uniform() * (hn - hx0);
    const double x = h_inv(u);
    const double k = std::floor(x + 0.5);
    if (k < 1.0) continue;
    if (k > nd) continue;
    if (u >= h(k + 0.5) - std::pow(k, -s)) {
      return static_cast<std::size_t>(k) - 1;
    }
  }
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_index: negative weight");
    total += w;
  }
  if (total <= 0.0) throw std::invalid_argument("weighted_index: zero total");
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace mcs::sim
