// Function Composition Layer of Fig. 5: workflows of functions.
//
// The paper: "the Function Composition Layer is responsible for the
// meta-scheduling, that is, creating workflows of functions and submitting
// the individual tasks to the management layer." Compositions are trees of
// Invoke / Sequence / Parallel nodes; running one walks the tree through
// the management layer, charging a meta-scheduling delay per submission —
// the source of the composition overhead exp_faas_overhead measures.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "faas/platform.hpp"

namespace mcs::faas {

class Composition {
 public:
  enum class Kind { kInvoke, kSequence, kParallel };

  [[nodiscard]] static Composition invoke(std::string function);
  [[nodiscard]] static Composition sequence(std::vector<Composition> steps);
  [[nodiscard]] static Composition parallel(std::vector<Composition> branches);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] const std::string& function() const { return function_; }
  [[nodiscard]] const std::vector<Composition>& children() const {
    return children_;
  }
  /// Number of function invocations one run performs.
  [[nodiscard]] std::size_t invocation_count() const;
  /// Depth of the longest sequential chain (min hops on the critical path).
  [[nodiscard]] std::size_t sequential_depth() const;

 private:
  Kind kind_ = Kind::kInvoke;
  std::string function_;
  std::vector<Composition> children_;
};

struct WorkflowResult {
  double latency_seconds = 0.0;      ///< end-to-end, as the client sees it
  std::size_t invocations = 0;
  std::size_t cold_starts = 0;
};

class CompositionEngine {
 public:
  struct Config {
    /// Meta-scheduling delay charged per submission to the management
    /// layer (state persistence, trigger dispatch).
    double meta_schedule_ms = 5.0;
  };

  CompositionEngine(sim::Simulator& sim, FaasPlatform& platform,
                    Config config);
  CompositionEngine(sim::Simulator& sim, FaasPlatform& platform)
      : CompositionEngine(sim, platform, Config{}) {}

  using Callback = std::function<void(const WorkflowResult&)>;

  /// Runs a composition; `done` fires when the whole workflow finishes.
  void run(const Composition& composition, Callback done);

  [[nodiscard]] std::uint64_t workflows_run() const { return runs_; }

 private:
  void run_node(const Composition& node,
                std::shared_ptr<WorkflowResult> acc,
                std::function<void()> done);

  sim::Simulator& sim_;
  FaasPlatform& platform_;
  Config config_;
  std::uint64_t runs_ = 0;
};

}  // namespace mcs::faas
