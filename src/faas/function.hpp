// Cloud-function abstraction for the Fig. 5 FaaS reference architecture
// (§6.5): the business-logic unit that the Function Management Layer
// instantiates and routes to, and the Function Composition Layer chains.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mcs::faas {

struct FunctionSpec {
  std::string name;
  double memory_mb = 256.0;
  /// Execution time distribution (lognormal around the mean).
  double mean_exec_seconds = 0.1;
  double cv_exec = 0.3;
  /// Cold-start penalty: runtime + dependency initialization.
  double cold_start_seconds = 1.0;
};

/// Registry of deployable functions (the platform's deployment catalog).
class FunctionRegistry {
 public:
  /// Registers a spec; throws on duplicate names or bad parameters.
  void deploy(FunctionSpec spec);

  [[nodiscard]] std::optional<FunctionSpec> find(const std::string& name) const;
  [[nodiscard]] const std::vector<FunctionSpec>& functions() const {
    return functions_;
  }

 private:
  std::vector<FunctionSpec> functions_;
};

}  // namespace mcs::faas
