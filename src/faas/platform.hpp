// The executable Fig. 5 FaaS stack, bottom three layers:
//
//   Resource Layer              — the datacenter's machines (infra::).
//   Resource Orchestration      — kubernetes-style placement of function
//                                 instances onto machines by memory.
//   Function Management         — instance lifecycle (cold start, warm
//                                 pool, keep-alive expiry), request
//                                 routing, per-function queueing, and
//                                 autoscaling one-instance-per-concurrent-
//                                 request up to a cap.
//
// The Function Composition layer lives in faas/composition.hpp. The bench
// for Figure 5 drives the image-pipeline business logic through all four.
#pragma once

#include <deque>
#include <map>

#include "core/callback.hpp"
#include "faas/function.hpp"
#include "infra/topology.hpp"
#include "metrics/stats.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mcs::faas {

struct InvocationResult {
  std::string function;
  double latency_seconds = 0.0;  ///< queue + routing + (cold start) + exec
  bool cold_start = false;
  sim::SimTime finished_at = 0;
};

struct FunctionStats {
  std::uint64_t invocations = 0;
  std::uint64_t cold_starts = 0;
  std::uint64_t queued = 0;       ///< invocations that had to wait
  metrics::Accumulator latency;   ///< seconds
};

class FaasPlatform {
 public:
  struct Config {
    sim::SimTime keep_alive = 10 * sim::kMinute;
    std::size_t max_instances_per_function = 200;
    /// Management-layer routing overhead per request.
    double routing_ms = 0.5;
    /// Orchestration-layer placement overhead per new instance.
    double orchestration_ms = 2.0;
  };

  FaasPlatform(sim::Simulator& sim, infra::Datacenter& dc, Config config,
               sim::Rng rng);

  /// Deploys a function (Function Management registry).
  void deploy(FunctionSpec spec);

  /// Completion callback: an owning SBO callable (move-only). Queued
  /// requests (Pending) carry it without a heap allocation for typical
  /// captures; std::function guaranteed one per queued invocation.
  using Callback = core::UniqueFunction<void(const InvocationResult&)>;

  /// Invokes a function now; `done` fires at completion. Requests that find
  /// no warm instance trigger a cold start (when capacity allows) or queue.
  void invoke(const std::string& name, Callback done);

  // --- observability (C13) ----------------------------------------------------

  [[nodiscard]] const FunctionStats& stats(const std::string& name) const;
  [[nodiscard]] std::size_t warm_instances(const std::string& name) const;
  [[nodiscard]] std::size_t total_instances() const;
  [[nodiscard]] double memory_in_use_mb() const;
  [[nodiscard]] std::uint64_t instances_reaped() const { return reaped_; }

 private:
  struct Instance {
    std::uint64_t id;
    std::string function;
    infra::MachineId machine;
    bool busy = false;
    sim::SimTime last_idle = 0;
  };

  struct Pending {
    sim::SimTime enqueued;
    Callback done;
  };

  void start_execution(Instance& inst, const FunctionSpec& spec,
                       sim::SimTime queued_since, bool cold, Callback done);
  Instance* find_warm(const std::string& name);
  Instance* create_instance(const FunctionSpec& spec);
  void on_instance_idle(std::uint64_t instance_id);
  void reap_if_expired(std::uint64_t instance_id);

  sim::Simulator& sim_;
  infra::Datacenter& dc_;
  Config config_;
  sim::Rng rng_;
  FunctionRegistry registry_;
  std::map<std::uint64_t, Instance> instances_;
  std::uint64_t next_instance_ = 0;
  std::map<std::string, std::deque<Pending>> queues_;
  std::map<std::string, FunctionStats> stats_;
  std::uint64_t reaped_ = 0;
};

}  // namespace mcs::faas
