#include <functional>
#include "faas/composition.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::faas {

Composition Composition::invoke(std::string function) {
  Composition c;
  c.kind_ = Kind::kInvoke;
  c.function_ = std::move(function);
  return c;
}

Composition Composition::sequence(std::vector<Composition> steps) {
  if (steps.empty()) throw std::invalid_argument("sequence: empty");
  Composition c;
  c.kind_ = Kind::kSequence;
  c.children_ = std::move(steps);
  return c;
}

Composition Composition::parallel(std::vector<Composition> branches) {
  if (branches.empty()) throw std::invalid_argument("parallel: empty");
  Composition c;
  c.kind_ = Kind::kParallel;
  c.children_ = std::move(branches);
  return c;
}

std::size_t Composition::invocation_count() const {
  if (kind_ == Kind::kInvoke) return 1;
  std::size_t total = 0;
  for (const Composition& child : children_) total += child.invocation_count();
  return total;
}

std::size_t Composition::sequential_depth() const {
  switch (kind_) {
    case Kind::kInvoke:
      return 1;
    case Kind::kSequence: {
      std::size_t total = 0;
      for (const Composition& c : children_) total += c.sequential_depth();
      return total;
    }
    case Kind::kParallel: {
      std::size_t best = 0;
      for (const Composition& c : children_) {
        best = std::max(best, c.sequential_depth());
      }
      return best;
    }
  }
  return 0;
}

CompositionEngine::CompositionEngine(sim::Simulator& sim,
                                     FaasPlatform& platform, Config config)
    : sim_(sim), platform_(platform), config_(config) {}

void CompositionEngine::run(const Composition& composition, Callback done) {
  ++runs_;
  auto acc = std::make_shared<WorkflowResult>();
  const sim::SimTime start = sim_.now();
  run_node(composition, acc, [this, acc, start, done = std::move(done)] {
    acc->latency_seconds = sim::to_seconds(sim_.now() - start);
    if (done) done(*acc);
  });
}

void CompositionEngine::run_node(const Composition& node,
                                 std::shared_ptr<WorkflowResult> acc,
                                 std::function<void()> done) {
  switch (node.kind()) {
    case Composition::Kind::kInvoke: {
      // Meta-scheduling delay, then submit to the management layer.
      sim_.schedule_after(
          sim::from_seconds(config_.meta_schedule_ms / 1000.0),
          [this, name = node.function(), acc, done = std::move(done)] {
            platform_.invoke(name,
                             [acc, done](const InvocationResult& r) {
                               ++acc->invocations;
                               if (r.cold_start) ++acc->cold_starts;
                               done();
                             });
          });
      break;
    }
    case Composition::Kind::kSequence: {
      // Chain children through shared state (children() outlives the
      // callbacks because compositions are passed by caller reference).
      auto advance = std::make_shared<std::function<void(std::size_t)>>();
      const Composition* node_ptr = &node;
      *advance = [this, node_ptr, acc, done = std::move(done),
                  advance](std::size_t i) {
        if (i >= node_ptr->children().size()) {
          done();
          return;
        }
        run_node(node_ptr->children()[i], acc,
                 [advance, i] { (*advance)(i + 1); });
      };
      (*advance)(0);
      break;
    }
    case Composition::Kind::kParallel: {
      auto remaining = std::make_shared<std::size_t>(node.children().size());
      auto shared_done =
          std::make_shared<std::function<void()>>(std::move(done));
      for (const Composition& child : node.children()) {
        run_node(child, acc, [remaining, shared_done] {
          if (--*remaining == 0) (*shared_done)();
        });
      }
      break;
    }
  }
}

}  // namespace mcs::faas
