#include "faas/platform.hpp"

#include <stdexcept>

namespace mcs::faas {

namespace {

infra::ResourceVector memory_only(double mb) {
  return infra::ResourceVector{0.0, mb / 1024.0, 0.0};
}

}  // namespace

FaasPlatform::FaasPlatform(sim::Simulator& sim, infra::Datacenter& dc,
                           Config config, sim::Rng rng)
    : sim_(sim), dc_(dc), config_(config), rng_(rng) {
  if (dc_.machine_count() == 0) {
    throw std::invalid_argument("FaasPlatform: empty datacenter");
  }
}

void FaasPlatform::deploy(FunctionSpec spec) {
  stats_[spec.name];  // create the stats row
  registry_.deploy(std::move(spec));
}

FaasPlatform::Instance* FaasPlatform::find_warm(const std::string& name) {
  for (auto& [id, inst] : instances_) {
    if (inst.function == name && !inst.busy) return &inst;
  }
  return nullptr;
}

FaasPlatform::Instance* FaasPlatform::create_instance(
    const FunctionSpec& spec) {
  std::size_t existing = 0;
  for (const auto& [id, inst] : instances_) {
    if (inst.function == spec.name) ++existing;
  }
  if (existing >= config_.max_instances_per_function) return nullptr;

  // Resource Orchestration: first machine with enough free memory.
  for (infra::Machine* m : dc_.machines()) {
    if (m->can_fit(memory_only(spec.memory_mb))) {
      m->allocate(memory_only(spec.memory_mb));
      const std::uint64_t id = next_instance_++;
      Instance inst;
      inst.id = id;
      inst.function = spec.name;
      inst.machine = m->id();
      auto [it, inserted] = instances_.emplace(id, std::move(inst));
      return &it->second;
    }
  }
  return nullptr;  // cluster out of memory
}

void FaasPlatform::invoke(const std::string& name, Callback done) {
  const auto spec = registry_.find(name);
  if (!spec) throw std::invalid_argument("FaasPlatform::invoke: unknown " + name);
  FunctionStats& st = stats_.at(name);
  ++st.invocations;

  if (Instance* warm = find_warm(name)) {
    start_execution(*warm, *spec, sim_.now(), /*cold=*/false, std::move(done));
    return;
  }
  if (Instance* fresh = create_instance(*spec)) {
    ++st.cold_starts;
    start_execution(*fresh, *spec, sim_.now(), /*cold=*/true, std::move(done));
    return;
  }
  // No capacity: queue until an instance frees up.
  ++st.queued;
  queues_[name].push_back(Pending{sim_.now(), std::move(done)});
}

void FaasPlatform::start_execution(Instance& inst, const FunctionSpec& spec,
                                   sim::SimTime queued_since, bool cold,
                                   Callback done) {
  inst.busy = true;
  const double queue_wait = sim::to_seconds(sim_.now() - queued_since);
  double latency = queue_wait + config_.routing_ms / 1000.0;
  if (cold) {
    latency += config_.orchestration_ms / 1000.0 + spec.cold_start_seconds;
  }
  latency += rng_.lognormal_mean_cv(spec.mean_exec_seconds, spec.cv_exec);

  const std::uint64_t id = inst.id;
  const std::string fname = spec.name;
  sim_.schedule_after(
      sim::from_seconds(latency - queue_wait),
      [this, id, fname, latency, cold, done = std::move(done)] {
        FunctionStats& st = stats_.at(fname);
        st.latency.add(latency);
        if (done) {
          InvocationResult result;
          result.function = fname;
          result.latency_seconds = latency;
          result.cold_start = cold;
          result.finished_at = sim_.now();
          done(result);
        }
        on_instance_idle(id);
      });
}

void FaasPlatform::on_instance_idle(std::uint64_t instance_id) {
  auto it = instances_.find(instance_id);
  if (it == instances_.end()) return;
  Instance& inst = it->second;
  inst.busy = false;
  inst.last_idle = sim_.now();

  // Serve the queue first (warm reuse).
  auto qit = queues_.find(inst.function);
  if (qit != queues_.end() && !qit->second.empty()) {
    Pending next = std::move(qit->second.front());
    qit->second.pop_front();
    const auto spec = registry_.find(inst.function);
    start_execution(inst, *spec, next.enqueued, /*cold=*/false,
                    std::move(next.done));
    return;
  }
  // Otherwise arm the keep-alive timer.
  sim_.schedule_after(config_.keep_alive,
                      [this, instance_id] { reap_if_expired(instance_id); });
}

void FaasPlatform::reap_if_expired(std::uint64_t instance_id) {
  auto it = instances_.find(instance_id);
  if (it == instances_.end()) return;
  const Instance& inst = it->second;
  if (inst.busy) return;
  if (sim_.now() - inst.last_idle < config_.keep_alive) return;  // reused since
  const auto spec = registry_.find(inst.function);
  infra::Machine& m = dc_.machine(inst.machine);
  if (m.usable()) m.release(memory_only(spec->memory_mb));
  instances_.erase(it);
  ++reaped_;
}

const FunctionStats& FaasPlatform::stats(const std::string& name) const {
  auto it = stats_.find(name);
  if (it == stats_.end()) {
    throw std::out_of_range("FaasPlatform::stats: unknown " + name);
  }
  return it->second;
}

std::size_t FaasPlatform::warm_instances(const std::string& name) const {
  std::size_t n = 0;
  for (const auto& [id, inst] : instances_) {
    if (inst.function == name && !inst.busy) ++n;
  }
  return n;
}

std::size_t FaasPlatform::total_instances() const { return instances_.size(); }

double FaasPlatform::memory_in_use_mb() const {
  double mb = 0.0;
  for (const auto& [id, inst] : instances_) {
    mb += registry_.find(inst.function)->memory_mb;
  }
  return mb;
}

}  // namespace mcs::faas
