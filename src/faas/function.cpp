#include "faas/function.hpp"

#include <stdexcept>

namespace mcs::faas {

void FunctionRegistry::deploy(FunctionSpec spec) {
  if (spec.name.empty() || spec.memory_mb <= 0.0 ||
      spec.mean_exec_seconds <= 0.0 || spec.cold_start_seconds < 0.0) {
    throw std::invalid_argument("FunctionRegistry::deploy: bad spec");
  }
  for (const FunctionSpec& f : functions_) {
    if (f.name == spec.name) {
      throw std::invalid_argument("FunctionRegistry::deploy: duplicate " +
                                  spec.name);
    }
  }
  functions_.push_back(std::move(spec));
}

std::optional<FunctionSpec> FunctionRegistry::find(
    const std::string& name) const {
  for (const FunctionSpec& f : functions_) {
    if (f.name == name) return f;
  }
  return std::nullopt;
}

}  // namespace mcs::faas
