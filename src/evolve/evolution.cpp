#include "evolve/evolution.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace mcs::evolve {

std::string to_string(Lane lane) {
  switch (lane) {
    case Lane::kDistributedSystems: return "Distributed Systems";
    case Lane::kSoftwareEngineering: return "Software Engineering";
    case Lane::kPerformanceEngineering: return "Performance Engineering";
  }
  return "?";
}

const std::vector<TechMilestone>& fig2_timeline() {
  using L = Lane;
  static const std::vector<TechMilestone> kTimeline = {
      // 1960s
      {"time-sharing systems", 1960, L::kDistributedSystems, {}},
      {"structured programming", 1960, L::kSoftwareEngineering, {}},
      {"queueing theory for computers", 1960, L::kPerformanceEngineering, {}},
      // 1970s
      {"computer networks", 1970, L::kDistributedSystems,
       {"time-sharing systems"}},
      {"software engineering discipline", 1970, L::kSoftwareEngineering,
       {"structured programming"}},
      {"performance measurement", 1970, L::kPerformanceEngineering,
       {"queueing theory for computers"}},
      // 1980s
      {"distributed operating systems", 1980, L::kDistributedSystems,
       {"computer networks"}},
      {"client-server computing", 1980, L::kDistributedSystems,
       {"computer networks"}},
      {"object-oriented development", 1980, L::kSoftwareEngineering,
       {"software engineering discipline"}},
      {"benchmarking suites", 1980, L::kPerformanceEngineering,
       {"performance measurement"}},
      // 1990s
      {"clusters", 1990, L::kDistributedSystems,
       {"distributed operating systems"}},
      {"the Web", 1990, L::kDistributedSystems, {"client-server computing"}},
      {"metacomputing", 1990, L::kDistributedSystems, {"clusters"}},
      {"software patterns", 1990, L::kSoftwareEngineering,
       {"object-oriented development"}},
      {"workload modeling", 1990, L::kPerformanceEngineering,
       {"benchmarking suites"}},
      // 2000s
      {"grid computing", 2000, L::kDistributedSystems,
       {"metacomputing", "clusters"}},
      {"peer-to-peer systems", 2000, L::kDistributedSystems, {"the Web"}},
      {"utility computing", 2000, L::kDistributedSystems, {"grid computing"}},
      {"agile processes", 2000, L::kSoftwareEngineering,
       {"software patterns"}},
      {"model-driven performance", 2000, L::kPerformanceEngineering,
       {"workload modeling"}},
      // 2010s
      {"cloud computing", 2010, L::kDistributedSystems,
       {"utility computing", "the Web"}},
      {"big data processing", 2010, L::kDistributedSystems,
       {"cloud computing", "grid computing"}},
      {"edge-centric computing", 2010, L::kDistributedSystems,
       {"cloud computing", "peer-to-peer systems"}},
      {"serverless / FaaS", 2010, L::kDistributedSystems,
       {"cloud computing"}},
      {"devops", 2010, L::kSoftwareEngineering,
       {"agile processes"}},
      {"cloud benchmarking & elasticity metrics", 2010,
       L::kPerformanceEngineering,
       {"model-driven performance", "cloud computing"}},
      // late 2010s: the synthesis this paper proposes.
      {"Massivizing Computer Systems", 2018, L::kDistributedSystems,
       {"big data processing", "edge-centric computing", "serverless / FaaS",
        "devops", "cloud benchmarking & elasticity metrics"}},
  };
  return kTimeline;
}

TimelineValidation validate_timeline() {
  TimelineValidation v;
  auto fail = [&](std::string msg) {
    v.ok = false;
    v.errors.push_back(std::move(msg));
  };
  const auto& tl = fig2_timeline();
  std::map<std::string, int> decade_of;
  std::map<std::string, std::size_t> index_of;
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const TechMilestone& t = tl[i];
    if (decade_of.count(t.name) != 0) fail("duplicate milestone " + t.name);
    decade_of[t.name] = t.decade;
    index_of[t.name] = i;
  }
  // Derivations must point backwards: to an earlier decade, or within the
  // same decade to a milestone listed earlier (registry order encodes
  // within-decade precedence), keeping the genealogy acyclic.
  for (std::size_t i = 0; i < tl.size(); ++i) {
    const TechMilestone& t = tl[i];
    for (const std::string& parent : t.derived_from) {
      auto it = decade_of.find(parent);
      if (it == decade_of.end()) {
        fail(t.name + " derives from unknown '" + parent + "'");
      } else if (it->second > t.decade ||
                 (it->second == t.decade && index_of[parent] >= i)) {
        fail(t.name + " derives from non-earlier '" + parent + "'");
      }
    }
  }
  // MCS must be present and reachable from a 1960s root.
  if (decade_of.count("Massivizing Computer Systems") == 0) {
    fail("timeline is missing the MCS milestone");
    return v;
  }
  // Reverse reachability: walk ancestors of MCS.
  std::set<std::string> frontier = {"Massivizing Computer Systems"};
  std::set<std::string> seen = frontier;
  bool touches_sixties = false;
  while (!frontier.empty()) {
    std::set<std::string> next;
    for (const std::string& name : frontier) {
      for (const TechMilestone& t : tl) {
        if (t.name != name) continue;
        if (t.decade == 1960) touches_sixties = true;
        for (const std::string& parent : t.derived_from) {
          if (seen.insert(parent).second) next.insert(parent);
        }
      }
    }
    frontier.swap(next);
  }
  for (const std::string& name : seen) {
    auto it = decade_of.find(name);
    if (it != decade_of.end() && it->second == 1960) touches_sixties = true;
  }
  if (!touches_sixties) fail("MCS is not rooted in the 1960s milestones");
  return v;
}

EvolutionModel::EvolutionModel(EvolutionConfig config, sim::Rng rng)
    : config_(config), rng_(rng) {
  if (config_.max_population < 4 || config_.steps == 0) {
    throw std::invalid_argument("EvolutionModel: bad config");
  }
  // Primordial technologies.
  for (int i = 0; i < 4; ++i) {
    Technology t;
    t.id = next_id_++;
    t.fitness = 1.0;
    t.components = 1.0;
    population_.push_back(t);
  }
}

double EvolutionModel::total_complexity() const {
  double total = 0.0;
  for (const Technology& t : population_) total += t.components;
  return total;
}

std::size_t EvolutionModel::fitness_proportional_pick() {
  std::vector<double> weights;
  weights.reserve(population_.size());
  for (const Technology& t : population_) weights.push_back(t.fitness);
  return rng_.weighted_index(weights);
}

void EvolutionModel::darwinian_step(EvolutionStats& stats) {
  // Incremental variation of a fit parent (Arthur: "selecting and varying
  // closely related components of pre-existing technology").
  const Technology& parent = population_[fitness_proportional_pick()];
  Technology child;
  child.id = next_id_++;
  child.generation = parent.generation + 1;
  child.fitness = std::max(0.1, parent.fitness * rng_.normal(1.05, 0.1));
  child.components = parent.components + rng_.uniform(0.5, 2.0);
  population_.push_back(child);
  ++stats.darwinian_events;
}

void EvolutionModel::non_darwinian_step(EvolutionStats& stats) {
  // Radical combination of two (possibly unrelated) technologies.
  const Technology& a = population_[fitness_proportional_pick()];
  const std::size_t bi = static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(population_.size()) - 1));
  const Technology& b = population_[bi];
  Technology child;
  child.id = next_id_++;
  child.generation = std::max(a.generation, b.generation) + 1;
  // Jumps can be large wins or flops ("seemingly random events").
  child.fitness = std::max(0.1, (a.fitness + b.fitness) * rng_.uniform(0.3, 1.6));
  child.components = a.components + b.components;
  child.radical = true;
  population_.push_back(child);
  ++stats.non_darwinian_events;
}

void EvolutionModel::maybe_crisis(EvolutionStats& stats) {
  // Selection pressure: cap the population, dropping the least fit.
  if (population_.size() > config_.max_population) {
    std::sort(population_.begin(), population_.end(),
              [](const Technology& x, const Technology& y) {
                return x.fitness > y.fitness;
              });
    population_.resize(config_.max_population);
  }
  // Crisis: complexity outgrew what the field can maintain; consolidation
  // prunes aggressively (the 1960s software crisis / 2010s ecosystems
  // crisis dynamic).
  if (total_complexity() > config_.crisis_threshold) {
    ++stats.crises;
    std::sort(population_.begin(), population_.end(),
              [](const Technology& x, const Technology& y) {
                // Keep the most efficient: fitness per component.
                return x.fitness / x.components > y.fitness / y.components;
              });
    const auto keep = static_cast<std::size_t>(
        static_cast<double>(population_.size()) *
        (1.0 - config_.crisis_prune_fraction));
    population_.resize(std::max<std::size_t>(keep, 4));
  }
}

EvolutionStats EvolutionModel::run() {
  EvolutionStats stats;
  for (std::size_t step = 0; step < config_.steps; ++step) {
    if (rng_.chance(config_.darwinian_probability)) {
      darwinian_step(stats);
    } else {
      non_darwinian_step(stats);
    }
    maybe_crisis(stats);
    stats.complexity_series.push_back(total_complexity());
  }
  double fitness = 0.0, components = 0.0;
  for (const Technology& t : population_) {
    fitness += t.fitness;
    components += t.components;
  }
  stats.final_population = population_.size();
  if (!population_.empty()) {
    stats.final_mean_fitness = fitness / static_cast<double>(population_.size());
    stats.final_mean_components =
        components / static_cast<double>(population_.size());
  }
  return stats;
}

}  // namespace mcs::evolve
