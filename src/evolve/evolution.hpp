// Ecosystem evolution (§3.2) and the Figure 2 technology genealogy.
//
// Two halves:
//  1. A curated, machine-checkable registry of the Fig. 2 timeline — the
//     main technologies leading to MCS across the three lanes the paper
//     synthesizes (Distributed Systems, Software Engineering, Performance
//     Engineering), with derivation edges. bench/fig2_evolution prints it
//     and validates that every derivation points backwards in time.
//  2. A generative model of technology evolution after Arthur [11] as the
//     paper adopts it: Darwinian steps (incremental variation of existing
//     technology, fitness-proportional adoption) interleaved with
//     non-Darwinian jumps (radical combination of unrelated technology),
//     with complexity accumulating until a *crisis* forces consolidation —
//     the software crisis of the 1960s and the ecosystems crisis of the
//     late 2010s are the paper's two instances of this dynamic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/random.hpp"

namespace mcs::evolve {

// ---- 1. the curated Fig. 2 registry -----------------------------------------

enum class Lane { kDistributedSystems, kSoftwareEngineering, kPerformanceEngineering };

[[nodiscard]] std::string to_string(Lane lane);

struct TechMilestone {
  std::string name;
  int decade = 1960;          ///< e.g. 1990 for "the 1990s"
  Lane lane = Lane::kDistributedSystems;
  std::vector<std::string> derived_from;  ///< names of earlier milestones
};

[[nodiscard]] const std::vector<TechMilestone>& fig2_timeline();

/// Validates the registry: unique names, derivations resolve and point to
/// strictly earlier decades, and the MCS milestone is reachable from the
/// 1960s roots.
struct TimelineValidation {
  bool ok = true;
  std::vector<std::string> errors;
};
[[nodiscard]] TimelineValidation validate_timeline();

// ---- 2. the generative model ---------------------------------------------------

struct EvolutionConfig {
  std::size_t steps = 400;
  std::size_t max_population = 120;
  double darwinian_probability = 0.9;  ///< else: non-Darwinian combination
  /// Complexity (total component count) that triggers a crisis.
  double crisis_threshold = 1500.0;
  /// Fraction of the population pruned by a crisis (consolidation).
  double crisis_prune_fraction = 0.5;
};

struct Technology {
  std::uint64_t id = 0;
  std::uint64_t generation = 0;
  double fitness = 1.0;
  double components = 1.0;   ///< structural complexity (Arthur: assemblies)
  bool radical = false;      ///< born from a non-Darwinian jump
};

struct EvolutionStats {
  std::size_t darwinian_events = 0;
  std::size_t non_darwinian_events = 0;
  std::size_t crises = 0;
  std::vector<double> complexity_series;  ///< per step
  double final_mean_fitness = 0.0;
  double final_mean_components = 0.0;
  std::size_t final_population = 0;
};

class EvolutionModel {
 public:
  EvolutionModel(EvolutionConfig config, sim::Rng rng);

  /// Runs the configured number of steps and returns the statistics.
  [[nodiscard]] EvolutionStats run();

  [[nodiscard]] const std::vector<Technology>& population() const {
    return population_;
  }

 private:
  void darwinian_step(EvolutionStats& stats);
  void non_darwinian_step(EvolutionStats& stats);
  void maybe_crisis(EvolutionStats& stats);
  [[nodiscard]] double total_complexity() const;
  [[nodiscard]] std::size_t fitness_proportional_pick();

  EvolutionConfig config_;
  sim::Rng rng_;
  std::vector<Technology> population_;
  std::uint64_t next_id_ = 0;
};

}  // namespace mcs::evolve
