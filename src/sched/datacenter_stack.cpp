#include "sched/datacenter_stack.hpp"

namespace mcs::sched {

/// Shared state of one sampling loop. The probe lives here exactly once;
/// each scheduled tick captures only a shared_ptr to this block (two
/// words, always inline in sim::Callback) instead of copying the closure.
struct OperationsService::MonitorLoop {
  std::string gauge;
  core::UniqueFunction<double()> probe;
  sim::SimTime interval = 0;
  sim::SimTime until = 0;
};

void OperationsService::monitor(const std::string& gauge,
                                core::UniqueFunction<double()> probe,
                                sim::SimTime interval, sim::SimTime until) {
  if (interval <= 0) throw std::invalid_argument("monitor: interval <= 0");
  series_[gauge];  // create the series up front
  auto loop = std::make_shared<MonitorLoop>();
  loop->gauge = gauge;
  loop->probe = std::move(probe);
  loop->interval = interval;
  loop->until = until;
  sim_.schedule_after(0, [this, loop] { monitor_tick(loop); });
}

void OperationsService::monitor_tick(const std::shared_ptr<MonitorLoop>& loop) {
  auto it = series_.find(loop->gauge);
  if (it == series_.end()) return;
  it->second.append(sim_.now(), loop->probe());
  ++samples_;
  if (sim_.now() + loop->interval <= loop->until) {
    sim_.schedule_after(loop->interval, [this, loop] { monitor_tick(loop); });
  }
}

void OperationsService::log(const std::string& line) {
  (void)line;  // content is not retained; volume is what the bench reports
  ++log_count_;
}

const metrics::StepSeries* OperationsService::series(
    const std::string& gauge) const {
  auto it = series_.find(gauge);
  return it == series_.end() ? nullptr : &it->second;
}

DatacenterStack::DatacenterStack(sim::Simulator& sim, infra::Datacenter& dc,
                                 std::unique_ptr<AllocationPolicy> policy,
                                 Config config)
    : sim_(sim), dc_(dc) {
  ops_ = std::make_unique<OperationsService>(sim_);
  engine_ = std::make_unique<ExecutionEngine>(sim_, dc_, std::move(policy),
                                              config.engine);
  pool_ = std::make_unique<ProvisionedPool>(sim_, dc_, *engine_,
                                            config.provisioning);
  pool_->start_with(config.initial_machines);
  monitor_interval_ = config.monitor_interval;
}

void DatacenterStack::submit(workload::Job job) {
  ++frontend_ops_;
  ops_->log("frontend: accepted job " + std::to_string(job.id));
  engine_->submit(std::move(job));
}

void DatacenterStack::resize_pool(std::size_t machines) {
  ++resources_ops_;
  ops_->log("resources: target set to " + std::to_string(machines));
  pool_->set_target(machines);
}

void DatacenterStack::start_monitoring(sim::SimTime until) {
  ++devops_ops_;
  ops_->monitor("utilization",
                [this] {
                  const double supply = engine_->supply_cores();
                  return supply <= 0.0 ? 0.0
                                       : engine_->demand_cores() / supply;
                },
                monitor_interval_, until);
  ops_->monitor("power_watts", [this] { return dc_.power_watts(); },
                monitor_interval_, until);
}

std::vector<LayerActivity> DatacenterStack::activity() const {
  return {
      {"Front-end", "application-level functionality", frontend_ops_},
      {"Back-end", "task/resource management for the application",
       engine_->jobs_completed()},
      {"Resources", "task/resource management for the operator",
       resources_ops_},
      {"Operations Service", "distributed-OS basic services",
       ops_->samples_taken()},
      {"Infrastructure", "physical and virtual resources",
       static_cast<std::uint64_t>(dc_.machine_count())},
      {"DevOps", "monitoring, logging, benchmarking",
       ops_->log_lines()},
  };
}

}  // namespace mcs::sched
