#include "sched/scavenging.hpp"

namespace mcs::sched {

namespace {

ScavengingOutcome run_once(const std::vector<workload::Job>& jobs,
                           std::size_t machines, double cores_each,
                           double memory_each, const ScavengingConfig& scav) {
  infra::Datacenter dc("scavenge-dc", "local");
  dc.add_uniform_racks(1, machines,
                       infra::ResourceVector{cores_each, memory_each, 0.0},
                       1.0);
  sim::Simulator sim;
  EngineConfig config;
  config.scavenging = scav;
  ExecutionEngine engine(sim, dc, make_fcfs(), config);
  engine.submit_all(jobs);
  sim.run_until();

  const RunResult result = summarize_run(engine, dc);
  ScavengingOutcome out;
  out.scavenging = scav.enabled;
  out.mean_slowdown = result.mean_slowdown;
  out.makespan_seconds = result.makespan_seconds;
  out.tasks_scavenged = engine.tasks_scavenged();
  // completed() includes abandoned jobs (they carry stats too); report
  // them as abandoned, not completed.
  out.jobs_completed = result.jobs.size() - result.abandoned;
  out.jobs_abandoned =
      result.abandoned + (engine.jobs_submitted() - engine.jobs_completed());
  out.utilization = result.utilization;
  return out;
}

}  // namespace

ScavengingComparison compare_scavenging(std::vector<workload::Job> jobs,
                                        std::size_t machines,
                                        double cores_each, double memory_each,
                                        const ScavengingConfig& config) {
  ScavengingComparison cmp;
  ScavengingConfig off = config;
  off.enabled = false;
  ScavengingConfig on = config;
  on.enabled = true;
  cmp.off = run_once(jobs, machines, cores_each, memory_each, off);
  cmp.on = run_once(std::move(jobs), machines, cores_each, memory_each, on);
  return cmp;
}

}  // namespace mcs::sched
