// The Ecosystem Navigation challenge (C9): "solving problems of
// comparison, selection, composition, replacement, and adaptation of
// components (and assemblies) on behalf of the user."
//
// The Navigator answers the paper's §5.1 motivating question — "which of
// the tens of machine instances provided by Amazon EC2 should a researcher
// start to use?" — for the restricted, well-specified-API case the paper
// marks as tractable (C9 challenge (i)):
//   input:  a workload (jobs), an instance catalog, and the user's
//           objectives (deadline and/or budget);
//   output: an instance type, a machine count, and an allocation policy,
//           each chosen by explicit comparison, with the alternatives and
//           their predicted outcomes reported (C13: explainability).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "infra/instance_catalog.hpp"
#include "sched/engine.hpp"
#include "workload/trace.hpp"

namespace mcs::sched {

struct NavigationRequest {
  std::vector<workload::Job> workload;
  /// Finish the whole workload within this many seconds (0 = no deadline).
  double deadline_seconds = 0.0;
  /// Spend at most this much (0 = no budget cap).
  double budget = 0.0;
  /// Hard cap on machines the user may rent.
  std::size_t max_machines = 64;
};

/// One evaluated alternative (reported so the user can audit the choice).
struct NavigationAlternative {
  std::string instance_type;
  std::size_t machines = 0;
  std::string policy;
  double predicted_makespan_seconds = 0.0;
  double predicted_cost = 0.0;
  bool meets_deadline = true;
  bool meets_budget = true;
};

struct NavigationPlan {
  bool feasible = false;
  NavigationAlternative chosen;
  std::vector<NavigationAlternative> alternatives;  ///< everything evaluated
  std::string rationale;
};

/// Compares catalog instance types x machine counts x allocation policies
/// with the greedy list-scheduling surrogate (no events), and picks the
/// cheapest alternative satisfying the objectives; ties break toward the
/// lower makespan. Infeasible requests return feasible=false with the
/// best-effort alternative in `chosen`.
[[nodiscard]] NavigationPlan navigate(const NavigationRequest& request,
                                      const infra::InstanceCatalog& catalog);

/// Surrogate used by navigate(): predicted makespan (seconds) of `jobs` on
/// `machines` instances of the given type under a policy ordering,
/// ignoring arrival gaps (batch assumption — conservative for deadlines).
[[nodiscard]] double predict_makespan(const std::vector<workload::Job>& jobs,
                                      const infra::InstanceType& type,
                                      std::size_t machines,
                                      const std::string& policy);

}  // namespace mcs::sched
