// Memory-scavenging experiment harness (C7; Uta et al. [118]).
//
// The engine implements the mechanism (ScavengingConfig); this helper runs
// the canonical comparison: a memory-hungry workload on a machine pool that
// is memory-constrained, with scavenging off vs on, reporting the published
// trade-off shape — "a relatively small performance overhead can be traded
// for significant gains in resource consumption".
#pragma once

#include "sched/engine.hpp"
#include "workload/trace.hpp"

namespace mcs::sched {

struct ScavengingOutcome {
  bool scavenging = false;
  double mean_slowdown = 0.0;
  double makespan_seconds = 0.0;
  std::size_t tasks_scavenged = 0;
  std::size_t jobs_completed = 0;
  std::size_t jobs_abandoned = 0;  ///< could not place (insufficient memory)
  double utilization = 0.0;
};

/// Runs the given jobs on `machines` machines of `cores_each` cores and
/// `memory_each` GiB, with/without scavenging, and returns both outcomes.
struct ScavengingComparison {
  ScavengingOutcome off;
  ScavengingOutcome on;
};

[[nodiscard]] ScavengingComparison compare_scavenging(
    std::vector<workload::Job> jobs, std::size_t machines, double cores_each,
    double memory_each, const ScavengingConfig& config);

}  // namespace mcs::sched
