#include "sched/provisioning.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::sched {

ProvisionedPool::ProvisionedPool(sim::Simulator& sim, infra::Datacenter& dc,
                                 ExecutionEngine& engine,
                                 ProvisioningConfig config)
    : sim_(sim), dc_(dc), engine_(engine), config_(config) {
  if (config_.min_machines == 0) config_.min_machines = 1;
  // All machines start powered off; start_with() turns the first ones on.
  for (infra::Machine* m : dc_.machines()) {
    m->set_state(infra::MachineState::kOff);
  }
}

void ProvisionedPool::start_with(std::size_t n) {
  n = std::min(n, dc_.machine_count());
  n = std::max(n, config_.min_machines);
  for (infra::MachineId id = 0; id < n; ++id) {
    dc_.machine(id).set_state(infra::MachineState::kOperational);
    on_.insert(id);
  }
  target_ = n;
  record_supply();
}

void ProvisionedPool::set_target(std::size_t target) {
  target = std::clamp(target, config_.min_machines, dc_.machine_count());
  target_ = target;

  const std::size_t current = on_.size() + booting_.size();
  if (target > current) {
    // Grow: boot powered-off machines (reusing draining ones first — they
    // are already warm).
    std::size_t need = target - current;
    // Cancel drains first.
    while (need > 0 && !draining_.empty()) {
      const infra::MachineId id = *draining_.begin();
      draining_.erase(draining_.begin());
      engine_.undrain(id);
      on_.insert(id);
      --need;
    }
    for (infra::Machine* m : dc_.machines()) {
      if (need == 0) break;
      const infra::MachineId id = m->id();
      if (m->state() == infra::MachineState::kOff &&
          booting_.count(id) == 0) {
        booting_.insert(id);
        sim_.schedule_after(config_.boot_delay, [this, id] { power_on(id); });
        --need;
      }
    }
  } else if (target < current) {
    // Shrink: drain the highest-id active machines (booting ones cannot be
    // recalled; they will be reconciled at the next set_target call).
    std::size_t excess = current - target;
    std::vector<infra::MachineId> candidates(on_.begin(), on_.end());
    std::sort(candidates.rbegin(), candidates.rend());
    for (infra::MachineId id : candidates) {
      if (excess == 0) break;
      begin_drain(id);
      --excess;
    }
  }
  reap_drained();
  record_supply();
}

void ProvisionedPool::power_on(infra::MachineId id) {
  booting_.erase(id);
  infra::Machine& m = dc_.machine(id);
  if (m.state() == infra::MachineState::kOff) {
    m.set_state(infra::MachineState::kOperational);
  }
  on_.insert(id);
  record_supply();
  engine_.kick();
}

void ProvisionedPool::begin_drain(infra::MachineId id) {
  if (on_.count(id) == 0) return;
  on_.erase(id);
  draining_.insert(id);
  engine_.drain(id);
}

void ProvisionedPool::finish_drain(infra::MachineId id) {
  draining_.erase(id);
  engine_.undrain(id);  // clear the engine-side mark before power-off
  dc_.machine(id).set_state(infra::MachineState::kOff);
  record_supply();
}

void ProvisionedPool::reap_drained() {
  bill_until_now();
  std::vector<infra::MachineId> done;
  for (infra::MachineId id : draining_) {
    if (engine_.idle(id)) done.push_back(id);
  }
  for (infra::MachineId id : done) finish_drain(id);
}

std::size_t ProvisionedPool::active() const { return on_.size(); }

std::size_t ProvisionedPool::powered() const {
  return on_.size() + draining_.size();
}

void ProvisionedPool::bill_until_now() const {
  const sim::SimTime now = sim_.now();
  if (now <= billed_until_) return;
  const double hours = sim::to_seconds(now - billed_until_) / 3600.0;
  billed_cost_ += hours * static_cast<double>(powered()) *
                  config_.price_per_machine_hour;
  billed_until_ = now;
}

double ProvisionedPool::cost() const {
  bill_until_now();
  return billed_cost_;
}

void ProvisionedPool::record_supply() {
  bill_until_now();
  supply_.append(sim_.now(), static_cast<double>(on_.size()));
}

}  // namespace mcs::sched
