// The execution engine: event-driven job/task lifecycle on a datacenter.
//
// This is the Back-end layer of the Fig. 3 reference architecture (task and
// resource management on behalf of the application). It owns the ready
// queue, invokes the pluggable AllocationPolicy, runs tasks on machines
// (runtime = work / machine speed), tracks dependencies, survives machine
// failures by re-queueing killed tasks, supports draining for elastic
// provisioning, and records the demand/supply series the SPEC elasticity
// metrics and autoscalers consume.
//
// Storage discipline (DESIGN.md §9): jobs and running tasks live in
// core::SlotPool arenas addressed by dense uint32 slot indices, draining is
// a machine-id bitset, and user names are interned to dense ids at submit.
// Together with scratch buffers reused across scheduling rounds, the
// steady-state submit -> allocate -> run -> complete loop performs zero
// heap allocation once warmed up (enforced by mcs_lint rule H2 via the
// `// mcs-lint: hot` annotations in engine.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/slot_pool.hpp"
#include "infra/topology.hpp"
#include "metrics/elasticity.hpp"
#include "obs/registry.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"
#include "sched/allocation.hpp"
#include "sched/scoring.hpp"
#include "sim/simulator.hpp"
#include "workload/task.hpp"

namespace mcs::check {
class InvariantChecker;  // friend: the oracle reads engine internals
}

namespace mcs::sched {

class ExecutionEngine;

/// State transitions reported to an installed EngineObserver. Every kind is
/// reported *after* the transition's state changes are fully applied, so an
/// observer sees only consistent states.
enum class EngineTransition : std::uint8_t {
  kJobSubmitted,   ///< submit() accepted a job (arrival event armed)
  kJobArrived,     ///< arrival processed: ranks stamped, roots made ready
  kJobCompleted,   ///< last task finished; stats recorded
  kJobAbandoned,   ///< retry budget exceeded or demand unsatisfiable
  kTaskStarted,    ///< a ready task was placed on a machine
  kTaskFinished,   ///< a running task completed; successors unlocked
  kTasksKilled,    ///< a machine failure killed its running tasks
  kDrained,        ///< drain(machine)
  kUndrained,      ///< undrain(machine)
};

[[nodiscard]] const char* to_string(EngineTransition t);

/// Observation hook for correctness harnesses (the invariant oracle in
/// src/check/oracle.hpp derives from this). The default null observer
/// costs one predicted branch per transition, cheap enough to stay
/// compiled into every build — release binaries included.
class EngineObserver {
 public:
  virtual ~EngineObserver() = default;
  /// `machine` identifies the machine involved (kTaskStarted, kTasksKilled,
  /// kDrained, kUndrained); kNoMachine otherwise.
  virtual void on_transition(const ExecutionEngine& engine,
                             EngineTransition t, infra::MachineId machine) = 0;
};

/// Sentinel for transitions with no associated machine.
inline constexpr infra::MachineId kNoMachine =
    static_cast<infra::MachineId>(-1);

/// Memory-scavenging option (Uta et al. [118], challenge C7): a task whose
/// memory does not fit locally may borrow remote memory for a runtime
/// penalty proportional to the borrowed fraction.
struct ScavengingConfig {
  bool enabled = false;
  /// At most this fraction of a task's memory may be remote.
  double max_borrow_fraction = 0.5;
  /// Runtime multiplier is 1 + penalty * borrowed_fraction.
  double penalty = 0.6;
};

struct EngineConfig {
  bool record_series = true;      ///< keep demand/supply StepSeries
  bool retry_failed_tasks = true; ///< resubmit tasks killed by failures
  std::size_t max_retries = 16;   ///< per task, before the job is abandoned
  ScavengingConfig scavenging;
  /// Node-scoring configuration for the placement pass (sched/scoring.hpp).
  /// The default (kNone) reproduces the legacy Fit-heuristic engine
  /// bit-identically — the digest goldens pin it.
  PlacementContext placement;
  /// Job-lifecycle spans: per-workload-class latency-decomposition
  /// histograms (span.<class>.queueing/placement/service/response/
  /// slowdown/abandon_seconds) plus task.queue / job.place trace spans.
  /// Off by default — the registry/trace digests of a default-config
  /// engine are pinned by the scalar goldens, so the extra instruments
  /// and events only exist when a harness opts in.
  bool lifecycle_spans = false;
};

/// Workload classes the lifecycle spans and SLO engine distinguish:
/// single-task bots vs multi-task workflows (workload::Job::is_workflow).
inline constexpr std::size_t kWorkloadClasses = 2;
/// Class index -> name ("bot", "workflow"), the span/SLO instrument infix.
[[nodiscard]] const char* workload_class_name(std::size_t klass);

/// Final accounting for one completed (or abandoned) job.
struct JobStats {
  workload::JobId id = 0;
  std::string user;
  sim::SimTime submit = 0;
  sim::SimTime first_start = 0;
  sim::SimTime finish = 0;
  double wait_seconds = 0.0;       ///< first task start - submit
  double response_seconds = 0.0;   ///< finish - submit
  double slowdown = 1.0;           ///< response / critical path (>= 1 ideal)
  double critical_path_seconds = 0.0;
  std::size_t tasks = 0;
  std::size_t task_failures = 0;   ///< tasks killed by machine failures
  bool abandoned = false;          ///< exceeded retry budget
};

class ExecutionEngine {
 public:
  ExecutionEngine(sim::Simulator& sim, infra::Datacenter& dc,
                  std::unique_ptr<AllocationPolicy> policy,
                  EngineConfig config = {});

  /// Submits a job; its arrival event fires at job.submit_time (which must
  /// be >= now).
  void submit(workload::Job job);
  void submit_all(std::vector<workload::Job> jobs);

  /// Swaps the allocation policy (portfolio scheduling, C9/C7).
  void set_policy(std::unique_ptr<AllocationPolicy> policy);
  [[nodiscard]] std::string policy_name() const { return policy_->name(); }

  // --- elasticity / provisioning hooks -------------------------------------

  /// Marks a machine as draining: no new placements; running work finishes.
  void drain(infra::MachineId id);
  void undrain(infra::MachineId id);
  [[nodiscard]] bool is_draining(infra::MachineId id) const;
  /// True when the machine executes no task of this engine.
  [[nodiscard]] bool idle(infra::MachineId id) const;

  /// Failure hook (wire to FailureInjector): kills tasks running on the
  /// machine; they are re-queued when retries remain.
  void on_machine_failed(infra::MachineId id);

  /// Re-evaluates the schedule (call after repairing/booting machines).
  void kick();

  /// Installs (or clears, with nullptr) the transition observer — the
  /// invariant-oracle hook. The observer must outlive the engine or be
  /// cleared before the engine is destroyed.
  void set_observer(EngineObserver* observer) { observer_ = observer; }
  [[nodiscard]] EngineObserver* observer() const { return observer_; }

  /// Installs (or clears, with nullptr) a flight-recorder tracer: the
  /// engine emits job/task lifecycle, kill, and drain events into it in
  /// simulated time (DESIGN.md §11). Independent of the observer slot so
  /// the invariant oracle and a tracer can ride the same run. The tracer
  /// must outlive the engine or be cleared first; event names are interned
  /// at install time so the emit paths stay allocation-free.
  void set_tracer(obs::Tracer* tracer);
  [[nodiscard]] obs::Tracer* tracer() const { return tracer_; }

  /// Installs (or clears, with nullptr) the SLO engine: on every job
  /// completion/abandonment the engine feeds the response latency to the
  /// specs whose class matches the job ("bot"/"workflow"/"all" — matching
  /// is resolved to dense index lists here, so the completion path does no
  /// string work). The tracker must outlive the engine or be cleared
  /// first; the caller owns finalize() at end of run.
  void set_slo(obs::SloTracker* slo);
  [[nodiscard]] obs::SloTracker* slo() const { return slo_; }

  // --- state & metrics -------------------------------------------------------

  [[nodiscard]] bool all_done() const;
  [[nodiscard]] std::size_t jobs_submitted() const {
    return static_cast<std::size_t>(ctr_submitted_->value());
  }
  [[nodiscard]] std::size_t jobs_completed() const { return completed_.size(); }
  [[nodiscard]] const std::vector<JobStats>& completed() const { return completed_; }
  [[nodiscard]] std::size_t ready_count() const { return ready_.size(); }
  [[nodiscard]] std::size_t running_count() const {
    return running_.live_count();
  }
  [[nodiscard]] std::size_t tasks_killed() const {
    return static_cast<std::size_t>(ctr_tasks_killed_->value());
  }
  [[nodiscard]] std::size_t tasks_scavenged() const {
    return static_cast<std::size_t>(ctr_tasks_scavenged_->value());
  }

  /// The engine's metric instruments (jobs.submitted/completed/abandoned,
  /// tasks.started/finished/killed/scavenged counters; job wait/response/
  /// slowdown and task runtime histograms). Always present — the old
  /// ad-hoc tally members are these counters now — and mergeable across
  /// engines via obs::Registry::merge in flat sweep order.
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }
  [[nodiscard]] obs::Registry& registry() { return registry_; }

  /// Demand (cores wanted by ready+running tasks) and supply (cores of
  /// usable, non-draining machines) step series for elasticity metrics.
  [[nodiscard]] const metrics::StepSeries& demand_series() const { return demand_; }
  [[nodiscard]] const metrics::StepSeries& supply_series() const { return supply_; }

  /// Instantaneous demand in cores.
  [[nodiscard]] double demand_cores() const;
  /// Instantaneous supply in cores.
  [[nodiscard]] double supply_cores() const;
  /// Pending work (ready + unstarted dependents + remaining running), in
  /// reference core-seconds — the Plan autoscaler's input.
  [[nodiscard]] double pending_work_core_seconds() const;
  /// Tasks that are ready now plus tasks expected to become ready within
  /// `window` (successors of tasks finishing in the window whose other
  /// deps are done) — the Token autoscaler's level-of-parallelism input.
  [[nodiscard]] std::size_t eligible_within(sim::SimTime window) const;

  /// Consumed core-seconds per user, materialized by name (reporting; the
  /// hot path accounts into the dense per-id vector below).
  [[nodiscard]] std::map<std::string, double> user_usage() const;
  /// Consumed core-seconds indexed by interned user id.
  [[nodiscard]] const std::vector<double>& user_usage_by_id() const {
    return user_usage_;
  }
  [[nodiscard]] const std::string& user_name(std::uint32_t user_id) const {
    return user_names_[user_id];
  }

  /// Builds the same view a policy would receive (for surrogate evaluation
  /// by the portfolio scheduler). `running_storage` must outlive the view.
  [[nodiscard]] SchedulerView snapshot_view(
      std::vector<RunningView>& running_storage) const;

  /// Integrated busy core-seconds (for utilization reporting).
  [[nodiscard]] double busy_core_seconds() const { return busy_core_seconds_; }

 private:
  friend class mcs::check::InvariantChecker;

  /// Per-job state, recycled through the slot pool: the vectors keep their
  /// capacity across job churn, so re-initializing them with assign() in
  /// submit() allocates nothing once warmed up.
  struct JobSlot {
    workload::Job job;
    std::vector<std::uint32_t> missing_deps;  ///< per task
    std::vector<std::uint32_t> retries;       ///< per task
    std::vector<std::uint8_t> done;           ///< per task
    /// CSR successor lists (built once at submit; drives both the HEFT
    /// upward-rank sweep and O(out-degree) successor unlock on finish).
    std::vector<std::uint32_t> succ_offsets;  ///< size tasks+1
    std::vector<std::uint32_t> succ_targets;
    std::size_t remaining = 0;
    std::size_t failures = 0;
    sim::SimTime first_start = 0;
    bool started = false;
    std::uint8_t klass = 0;  ///< workload class (0 bot, 1 workflow)
    std::uint32_t user_id = 0;
    /// Zone label filter resolved at submit through the LabelFilterCache
    /// (map-node-stable reference); null = unconstrained.
    const std::vector<std::uint64_t>* zone_mask = nullptr;
  };

  struct RunningSlot {
    std::uint32_t job_slot = 0;
    std::uint32_t task_index = 0;
    infra::MachineId machine = 0;
    sim::SimTime start = 0;
    sim::SimTime expected_end = 0;
    infra::ResourceVector held;   ///< resources actually held on machine
    double work_seconds = 0.0;    ///< for usage accounting
    sim::EventHandle completion;
  };

  void arrive(std::uint32_t job_slot);
  /// True when some machine's *total* capacity covers `demand` (granting
  /// maximal memory scavenging), restricted to `zone_mask` when non-null.
  [[nodiscard]] bool demand_satisfiable(
      const infra::ResourceVector& demand,
      const std::vector<std::uint64_t>* zone_mask) const;
  /// Zone + anti-affinity re-validation against *live* running state (the
  /// exact check backing the policies' advisory table).
  [[nodiscard]] bool placement_allows_start(const ReadyTask& rt,
                                            infra::MachineId machine) const;
  /// Rebuilds the (job_slot, machine) -> running-count table policies
  /// consult for spread constraints.
  void build_aa_table();
  void enqueue_ready(JobSlot& jr, std::uint32_t job_slot,
                     std::size_t task_index, double rank);
  void try_schedule();
  bool start_task(std::size_t ready_index, infra::MachineId machine);
  void finish_task(std::uint32_t key, std::uint32_t gen);
  void complete_job(std::uint32_t job_slot, bool abandoned);
  [[nodiscard]] std::uint32_t intern_user(const std::string& name);
  void record_series_point();
  /// Reports a fully-applied transition to the installed observer (if any).
  // mcs-lint: hot
  void notify(EngineTransition t, infra::MachineId machine = kNoMachine) {
    if (observer_ != nullptr) observer_->on_transition(*this, t, machine);
  }

  sim::Simulator& sim_;
  infra::Datacenter& dc_;
  std::unique_ptr<AllocationPolicy> policy_;
  EngineConfig config_;

  core::SlotPool<JobSlot> jobs_;
  /// JobId -> slot, touched only at submit (duplicate detection) and job
  /// completion — never in the per-task loop.
  std::map<workload::JobId, std::uint32_t> id_to_slot_;
  std::vector<ReadyTask> ready_;
  core::SlotPool<RunningSlot> running_;
  /// Draining machines as a bitset over dense machine ids.
  std::vector<std::uint64_t> draining_bits_;

  /// User interning: name -> dense id at submit; per-id accounting after.
  std::map<std::string, std::uint32_t> user_ids_;
  std::vector<std::string> user_names_;
  std::vector<double> user_usage_;  ///< core-seconds, indexed by user id

  std::vector<JobStats> completed_;
  double busy_core_seconds_ = 0.0;
  metrics::StepSeries demand_;
  metrics::StepSeries supply_;
  bool schedule_pending_ = false;
  EngineObserver* observer_ = nullptr;

  /// Instruments (registered in the constructor; recorded through cached
  /// pointers on the hot path — no name lookups after setup).
  obs::Registry registry_;
  obs::Counter* ctr_submitted_ = nullptr;
  obs::Counter* ctr_completed_ = nullptr;
  obs::Counter* ctr_abandoned_ = nullptr;
  obs::Counter* ctr_tasks_started_ = nullptr;
  obs::Counter* ctr_tasks_finished_ = nullptr;
  obs::Counter* ctr_tasks_killed_ = nullptr;
  obs::Counter* ctr_tasks_scavenged_ = nullptr;
  metrics::Histogram* h_job_wait_s_ = nullptr;
  metrics::Histogram* h_job_response_s_ = nullptr;
  metrics::Histogram* h_job_slowdown_ = nullptr;
  metrics::Histogram* h_task_runtime_s_ = nullptr;

  /// Per-workload-class latency-decomposition histograms; the pointers are
  /// null unless config.lifecycle_spans registered them in the ctor.
  struct SpanInstruments {
    metrics::Histogram* queueing = nullptr;   ///< ready -> start, per attempt
    metrics::Histogram* placement = nullptr;  ///< submit -> first start
    metrics::Histogram* service = nullptr;    ///< task start -> finish
    metrics::Histogram* response = nullptr;   ///< submit -> finish
    metrics::Histogram* slowdown = nullptr;   ///< response / critical path
    metrics::Histogram* abandon = nullptr;    ///< submit -> abandonment
  };
  SpanInstruments spans_[kWorkloadClasses];

  /// SLO engine attach (set_slo): per-class applicable spec indices, so
  /// the job-completion path feeds observations without string matching.
  obs::SloTracker* slo_ = nullptr;
  std::vector<std::size_t> slo_by_class_[kWorkloadClasses];

  /// Flight recorder (optional) + names interned at set_tracer time.
  obs::Tracer* tracer_ = nullptr;
  struct TraceNames {
    obs::NameId job_arrived{}, job{}, job_abandoned{}, task_start{}, task{},
        tasks_killed{}, drain{}, undrain{}, task_queue{}, job_place{};
  };
  TraceNames tn_;

  /// Zone expression -> machine bitset cache (submit-time resolution only).
  LabelFilterCache zone_cache_;
  /// Live jobs carrying a spread limit; the anti-affinity table is only
  /// built while this is non-zero, so unconstrained workloads pay nothing.
  std::size_t spread_jobs_live_ = 0;

  // Scratch buffers reused across scheduling rounds (capacity persists, so
  // rebuilding the per-round view allocates nothing once warmed up).
  std::vector<const infra::Machine*> machines_scratch_;
  std::vector<RunningView> running_scratch_;
  std::vector<Assignment> sorted_scratch_;
  std::vector<AaCount> aa_scratch_;
  std::vector<double> rank_scratch_;
  std::vector<std::uint32_t> succ_cursor_;
};

/// Convenience driver: builds an engine, submits the trace, runs to
/// completion (with an optional horizon), and returns per-job stats.
struct RunResult {
  std::vector<JobStats> jobs;
  double mean_slowdown = 0.0;
  double p95_slowdown = 0.0;
  double mean_wait_seconds = 0.0;
  double makespan_seconds = 0.0;  ///< last finish - first submit
  double utilization = 0.0;       ///< busy core-seconds / (supply * makespan)
  std::size_t abandoned = 0;
};

[[nodiscard]] RunResult run_workload(infra::Datacenter& dc,
                                     std::vector<workload::Job> jobs,
                                     std::unique_ptr<AllocationPolicy> policy,
                                     EngineConfig config = {});

/// Aggregates stats from a finished engine.
[[nodiscard]] RunResult summarize_run(const ExecutionEngine& engine,
                                      const infra::Datacenter& dc);

}  // namespace mcs::sched
