// Provisioning: the other half of the paper's dual scheduling problem (C7).
//
// A ProvisionedPool decides *how many* machines of a datacenter are powered
// and offered to the execution engine; allocation policies then place tasks
// on them. Booting takes time (cloud instances are not instant), draining
// waits for running work, and every powered machine-second is billed —
// giving autoscalers (src/autoscale) a real cost/performance trade-off.
#pragma once

#include <set>

#include "infra/topology.hpp"
#include "sched/engine.hpp"
#include "sim/simulator.hpp"

namespace mcs::sched {

struct ProvisioningConfig {
  /// Machines kept on no matter what.
  std::size_t min_machines = 1;
  /// Boot latency for a powered-off machine.
  sim::SimTime boot_delay = 60 * sim::kSecond;
  /// Price billed per machine-hour powered on.
  double price_per_machine_hour = 0.20;
};

/// Elastic machine pool over one datacenter, cooperating with an engine.
class ProvisionedPool {
 public:
  ProvisionedPool(sim::Simulator& sim, infra::Datacenter& dc,
                  ExecutionEngine& engine, ProvisioningConfig config = {});

  /// Powers the first `n` machines on initially (instantaneous).
  void start_with(std::size_t n);

  /// Requests the pool to converge to `target` powered machines. Booting is
  /// delayed by boot_delay; shrinking drains machines and powers them off
  /// as they go idle.
  void set_target(std::size_t target);

  /// Machines currently powered and usable by the engine (excludes booting
  /// and draining ones).
  [[nodiscard]] std::size_t active() const;
  /// Powered machines including booting and draining (what is billed).
  [[nodiscard]] std::size_t powered() const;
  [[nodiscard]] std::size_t target() const { return target_; }

  /// Accumulated cost so far (bills up to now()).
  [[nodiscard]] double cost() const;

  /// Supply series in machine counts (for elasticity metrics on the
  /// machine axis rather than the core axis).
  [[nodiscard]] const metrics::StepSeries& supply_series() const {
    return supply_;
  }

  /// Must be called periodically (autoscaler interval works): completes
  /// drains whose machines went idle.
  void reap_drained();

 private:
  void power_on(infra::MachineId id);
  void begin_drain(infra::MachineId id);
  void finish_drain(infra::MachineId id);
  void bill_until_now() const;
  void record_supply();

  sim::Simulator& sim_;
  infra::Datacenter& dc_;
  ExecutionEngine& engine_;
  ProvisioningConfig config_;
  std::size_t target_ = 0;

  std::set<infra::MachineId> on_;        ///< powered and usable
  std::set<infra::MachineId> booting_;   ///< boot event in flight
  std::set<infra::MachineId> draining_;  ///< powered, being drained
  mutable double billed_cost_ = 0.0;
  mutable sim::SimTime billed_until_ = 0;
  metrics::StepSeries supply_;
};

}  // namespace mcs::sched
