#include "sched/scoring.hpp"

#include <algorithm>

namespace mcs::sched {

const char* to_string(NodeScorePolicy p) {
  switch (p) {
    case NodeScorePolicy::kNone: return "none";
    case NodeScorePolicy::kRandomHash: return "random-hash";
    case NodeScorePolicy::kFreeShareVariance: return "free-share-variance";
    case NodeScorePolicy::kSquaredMinDelta: return "squared-min-delta";
  }
  return "?";
}

NodeScorePolicy score_policy_from_string(const std::string& s) {
  if (s == "random-hash") return NodeScorePolicy::kRandomHash;
  if (s == "free-share-variance") return NodeScorePolicy::kFreeShareVariance;
  if (s == "squared-min-delta") return NodeScorePolicy::kSquaredMinDelta;
  return NodeScorePolicy::kNone;
}

std::vector<NodeScorePolicy> all_score_policies() {
  return {NodeScorePolicy::kNone, NodeScorePolicy::kRandomHash,
          NodeScorePolicy::kFreeShareVariance,
          NodeScorePolicy::kSquaredMinDelta};
}

namespace {

/// SplitMix64 finalizer: the same mixer the sim RNG seeds substreams with —
/// a pure function of its input, so scores are reproducible across runs,
/// platforms, and thread counts.
// mcs-lint: hot
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Post-placement free share of one dimension (free capacity after taking
/// `demand`, as a fraction of total capacity; 0 on zero-capacity dims).
// mcs-lint: hot
[[nodiscard]] double free_share_after(const infra::ResourceVector& free,
                                      const infra::ResourceVector& cap,
                                      const infra::ResourceVector& demand,
                                      std::size_t d) {
  return cap[d] <= 0.0 ? 0.0 : (free[d] - demand[d]) / cap[d];
}

}  // namespace

// mcs-lint: hot
std::uint32_t aa_count(const std::vector<AaCount>& table,
                       std::uint32_t job_slot, infra::MachineId machine) {
  const auto it = std::lower_bound(
      table.begin(), table.end(), std::pair{job_slot, machine},
      [](const AaCount& row, const std::pair<std::uint32_t, infra::MachineId>& key) {
        if (row.job_slot != key.first) return row.job_slot < key.first;
        return row.machine < key.second;
      });
  if (it == table.end() || it->job_slot != job_slot || it->machine != machine) {
    return 0;
  }
  return it->count;
}

// mcs-lint: hot
bool placement_allows(const SchedulerView& view, const ReadyTask& t,
                      infra::MachineId id) {
  if (!machine_in_zone(t, id)) return false;
  if (t.spread_limit > 0 && view.aa != nullptr &&
      aa_count(*view.aa, t.job_slot, id) >= t.spread_limit) {
    return false;
  }
  return true;
}

// mcs-lint: hot
double score_machine(NodeScorePolicy policy, std::uint64_t salt,
                     workload::JobId job, const PlannedCapacity& planned,
                     infra::MachineId id,
                     const infra::ResourceVector& demand) {
  switch (policy) {
    case NodeScorePolicy::kNone:
      return 0.0;
    case NodeScorePolicy::kRandomHash:
      // 53 mixed bits as a double: deterministic per (salt, job, machine),
      // uncorrelated across machines — the YT NodeRandomHash spread.
      return static_cast<double>(
          mix64(salt ^ (job * 0xD1342543DE82EF95ull) ^ id) >> 11);
    case NodeScorePolicy::kFreeShareVariance: {
      // Variance of the two post-placement free shares {cpu, mem}:
      // ((a - b) / 2)^2. Minimal when the machine stays dimension-balanced
      // — the anti-fragmentation score.
      const infra::ResourceVector& free = planned.free_on(id);
      const infra::ResourceVector& cap = planned.capacity_on(id);
      const double a = free_share_after(free, cap, demand, 0);
      const double b = free_share_after(free, cap, demand, 1);
      const double half_delta = (a - b) * 0.5;
      return half_delta * half_delta;
    }
    case NodeScorePolicy::kSquaredMinDelta: {
      // Squared minimum of the post-placement free shares: minimal when the
      // tighter of cpu/mem is driven toward zero — the bin-packing score.
      const infra::ResourceVector& free = planned.free_on(id);
      const infra::ResourceVector& cap = planned.capacity_on(id);
      const double a = free_share_after(free, cap, demand, 0);
      const double b = free_share_after(free, cap, demand, 1);
      const double s = a < b ? a : b;
      return s * s;
    }
  }
  return 0.0;
}

std::optional<infra::MachineId> pick_machine(
    const std::vector<const infra::Machine*>& machines,
    const PlannedCapacity& planned, const infra::ResourceVector& demand,
    Fit fit) {
  if (!planned.may_fit_anywhere(demand)) return std::nullopt;
  std::optional<infra::MachineId> best;
  double best_score = 0.0;
  for (const infra::Machine* m : machines) {
    if (!planned.fits(m->id(), demand)) continue;
    double score = 0.0;
    switch (fit) {
      case Fit::kFirst:
        return m->id();
      case Fit::kBest:
        score = -(planned.free_on(m->id()).cpu() - demand.cpu());
        break;
      case Fit::kWorst:
        score = planned.free_on(m->id()).cpu() - demand.cpu();
        break;
      case Fit::kFastest:
        score = m->speed_factor();
        break;
    }
    if (!best || score > best_score) {
      best = m->id();
      best_score = score;
    }
  }
  return best;
}

std::optional<infra::MachineId> pick_machine(
    const std::vector<const infra::Machine*>& machines,
    const PlannedCapacity& planned, const ReadyTask& t, Fit fit,
    const SchedulerView& view) {
  const NodeScorePolicy sp =
      view.placement != nullptr ? view.placement->score : NodeScorePolicy::kNone;
  const bool constrained = t.zone_mask != nullptr || t.spread_limit > 0;
  if (sp == NodeScorePolicy::kNone && !constrained) {
    // Fast path, bit-identical to the pre-scoring engine (digest-pinned).
    return pick_machine(machines, planned, t.demand, fit);
  }
  if (!planned.may_fit_anywhere(t.demand)) return std::nullopt;
  if (sp == NodeScorePolicy::kNone) {
    // Constraints only: the legacy Fit loop over admissible machines.
    std::optional<infra::MachineId> best;
    double best_score = 0.0;
    for (const infra::Machine* m : machines) {
      if (!planned.fits(m->id(), t.demand)) continue;
      if (!placement_allows(view, t, m->id())) continue;
      double score = 0.0;
      switch (fit) {
        case Fit::kFirst:
          return m->id();
        case Fit::kBest:
          score = -(planned.free_on(m->id()).cpu() - t.demand.cpu());
          break;
        case Fit::kWorst:
          score = planned.free_on(m->id()).cpu() - t.demand.cpu();
          break;
        case Fit::kFastest:
          score = m->speed_factor();
          break;
      }
      if (!best || score > best_score) {
        best = m->id();
        best_score = score;
      }
    }
    return best;
  }
  // Scoring pass: minimum score wins; machines arrive in ascending id order,
  // and only a strictly smaller score displaces the incumbent, so ties break
  // to the lowest machine id — deterministic under any thread count.
  const std::uint64_t salt = view.placement->salt;
  std::optional<infra::MachineId> best;
  double best_score = 0.0;
  for (const infra::Machine* m : machines) {
    if (!planned.fits(m->id(), t.demand)) continue;
    if (!placement_allows(view, t, m->id())) continue;
    const double score =
        score_machine(sp, salt, t.job, planned, m->id(), t.demand);
    if (!best || score < best_score) {
      best = m->id();
      best_score = score;
    }
  }
  return best;
}

const std::vector<std::uint64_t>& LabelFilterCache::mask_for(
    const std::string& zones, const infra::Datacenter& dc) {
  const std::size_t machine_count = dc.machine_count();
  auto [it, inserted] = cache_.try_emplace(zones);
  Entry& e = it->second;
  if (!inserted && e.machine_count == machine_count) {
    ++hits_;
    return e.mask;
  }
  ++misses_;
  e.machine_count = machine_count;
  e.mask.assign((machine_count + 63) / 64, 0);
  // Parse the comma-separated zone list and mark every machine whose zone
  // matches. Expressions are tiny (a handful of zone names); the linear
  // name scan per machine is submit-time only.
  for (infra::MachineId id = 0; id < machine_count; ++id) {
    const std::string& z = dc.zone_of(id);
    std::size_t start = 0;
    bool match = false;
    while (start <= zones.size()) {
      std::size_t end = zones.find(',', start);
      if (end == std::string::npos) end = zones.size();
      if (end - start == z.size() &&
          zones.compare(start, end - start, z) == 0) {
        match = true;
        break;
      }
      start = end + 1;
    }
    if (match) e.mask[id >> 6] |= std::uint64_t{1} << (id & 63);
  }
  return e.mask;
}

}  // namespace mcs::sched
