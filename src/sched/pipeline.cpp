#include "sched/pipeline.hpp"

#include <algorithm>

#include "core/callback.hpp"

namespace mcs::sched {

namespace {

class LambdaStage final : public PipelineStage {
 public:
  using Fn = core::UniqueFunction<void(CandidateSet&, const SchedulerView&)>;
  LambdaStage(std::string name, Fn fn)
      : name_(std::move(name)), fn_(std::move(fn)) {}
  [[nodiscard]] std::string name() const override { return name_; }
  void apply(CandidateSet& c, const SchedulerView& view) override {
    fn_(c, view);
  }

 private:
  std::string name_;
  Fn fn_;
};

std::unique_ptr<PipelineStage> stage(std::string name, LambdaStage::Fn fn) {
  return std::make_unique<LambdaStage>(std::move(name), std::move(fn));
}

class PipelinePolicy final : public AllocationPolicy {
 public:
  PipelinePolicy(std::string name, TaskOrder order,
                 std::vector<std::unique_ptr<PipelineStage>> stages)
      : name_(std::move(name)),
        order_(std::move(order)),
        stages_(std::move(stages)) {}

  [[nodiscard]] std::string name() const override { return name_; }

  std::vector<Assignment> decide(const SchedulerView& view) override {
    std::vector<std::size_t> order(view.ready->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return order_((*view.ready)[a], (*view.ready)[b]);
                     });

    std::map<infra::MachineId, infra::ResourceVector> planned_free;
    for (const infra::Machine* m : view.machines) {
      planned_free[m->id()] = m->available();
    }

    std::vector<Assignment> out;
    out.reserve(view.ready->size());
    for (std::size_t idx : order) {
      CandidateSet c;
      c.task = &(*view.ready)[idx];
      c.machines = view.machines;
      c.planned_free = &planned_free;
      for (const infra::Machine* m : c.machines) c.score[m->id()] = 0.0;

      for (const auto& s : stages_) {
        s->apply(c, view);
        if (c.machines.empty()) break;
      }
      if (c.machines.empty()) continue;

      const infra::Machine* best = *std::max_element(
          c.machines.begin(), c.machines.end(),
          [&](const infra::Machine* a, const infra::Machine* b) {
            return c.score.at(a->id()) < c.score.at(b->id());
          });
      planned_free[best->id()] -= c.task->demand;
      out.push_back(Assignment{idx, best->id()});
    }
    return out;
  }

 private:
  std::string name_;
  TaskOrder order_;
  std::vector<std::unique_ptr<PipelineStage>> stages_;
};

void filter(CandidateSet& c,
            core::FunctionRef<bool(const infra::Machine*)> keep) {
  c.machines.erase(
      std::remove_if(c.machines.begin(), c.machines.end(),
                     [&](const infra::Machine* m) { return !keep(m); }),
      c.machines.end());
}

}  // namespace

std::unique_ptr<PipelineStage> stage_filter_capable() {
  return stage("filter-capable", [](CandidateSet& c, const SchedulerView&) {
    filter(c, [&](const infra::Machine* m) {
      return c.task->demand.fits_within(m->capacity());
    });
  });
}

std::unique_ptr<PipelineStage> stage_filter_available() {
  return stage("filter-available", [](CandidateSet& c, const SchedulerView&) {
    filter(c, [&](const infra::Machine* m) {
      auto it = c.planned_free->find(m->id());
      return it != c.planned_free->end() &&
             c.task->demand.fits_within(it->second);
    });
  });
}

std::unique_ptr<PipelineStage> stage_score_speed(double weight) {
  return stage("score-speed", [weight](CandidateSet& c, const SchedulerView&) {
    for (const infra::Machine* m : c.machines) {
      c.score[m->id()] += weight * m->speed_factor();
    }
  });
}

std::unique_ptr<PipelineStage> stage_score_spread(double weight) {
  return stage("score-spread", [weight](CandidateSet& c, const SchedulerView&) {
    for (const infra::Machine* m : c.machines) {
      const double free_fraction =
          m->capacity().cpu() == 0.0
              ? 0.0
              : c.planned_free->at(m->id()).cpu() / m->capacity().cpu();
      c.score[m->id()] += weight * free_fraction;
    }
  });
}

std::unique_ptr<PipelineStage> stage_score_pack(double weight) {
  return stage("score-pack", [weight](CandidateSet& c, const SchedulerView&) {
    for (const infra::Machine* m : c.machines) {
      const double used_fraction =
          m->capacity().cpu() == 0.0
              ? 0.0
              : 1.0 - c.planned_free->at(m->id()).cpu() / m->capacity().cpu();
      c.score[m->id()] += weight * used_fraction;
    }
  });
}

std::unique_ptr<PipelineStage> stage_prefer_draining_soon(
    sim::SimTime patience) {
  return stage("prefer-draining-soon",
               [patience](CandidateSet& c, const SchedulerView& view) {
                 filter(c, [&](const infra::Machine* m) {
                   sim::SimTime earliest = sim::kTimeInfinity;
                   bool any = false;
                   for (const RunningView& r : *view.running) {
                     if (r.machine == m->id()) {
                       any = true;
                       earliest = std::min(earliest, r.expected_end);
                     }
                   }
                   // Idle machines always pass; busy ones must free
                   // something within `patience`.
                   return !any || earliest <= view.now + patience;
                 });
               });
}

TaskOrder order_fcfs() {
  return [](const ReadyTask& a, const ReadyTask& b) {
    if (a.job_submit != b.job_submit) return a.job_submit < b.job_submit;
    if (a.job != b.job) return a.job < b.job;
    return a.task_index < b.task_index;
  };
}

TaskOrder order_sjf() {
  return [](const ReadyTask& a, const ReadyTask& b) {
    return a.work_seconds < b.work_seconds;
  };
}

TaskOrder order_rank() {
  return [](const ReadyTask& a, const ReadyTask& b) { return a.rank > b.rank; };
}

std::unique_ptr<AllocationPolicy> make_pipeline_policy(
    std::string name, TaskOrder order,
    std::vector<std::unique_ptr<PipelineStage>> stages) {
  return std::make_unique<PipelinePolicy>(std::move(name), std::move(order),
                                          std::move(stages));
}

std::unique_ptr<AllocationPolicy> pipeline_fcfs_firstfit() {
  std::vector<std::unique_ptr<PipelineStage>> stages;
  stages.push_back(stage_filter_capable());
  stages.push_back(stage_filter_available());
  return make_pipeline_policy("pipe-fcfs", order_fcfs(), std::move(stages));
}

std::unique_ptr<AllocationPolicy> pipeline_sjf_fastest() {
  std::vector<std::unique_ptr<PipelineStage>> stages;
  stages.push_back(stage_filter_capable());
  stages.push_back(stage_filter_available());
  stages.push_back(stage_score_speed());
  return make_pipeline_policy("pipe-sjf-fastest", order_sjf(),
                              std::move(stages));
}

std::unique_ptr<AllocationPolicy> pipeline_consolidating() {
  std::vector<std::unique_ptr<PipelineStage>> stages;
  stages.push_back(stage_filter_capable());
  stages.push_back(stage_filter_available());
  stages.push_back(stage_score_pack(2.0));
  stages.push_back(stage_score_speed(0.5));
  return make_pipeline_policy("pipe-consolidate", order_fcfs(),
                              std::move(stages));
}

}  // namespace mcs::sched
