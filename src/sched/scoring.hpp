// The placement pass shared by every allocation policy: planned-capacity
// tracking with an O(1) can't-fit-anywhere reject, pluggable node scoring,
// zone label filters, and anti-affinity spread constraints (C4).
//
// Scoring follows the YT/YP scheduler's EPodNodeScoreType lineage (see
// SNIPPETS.md): a score is computed per candidate machine from planned free
// capacity — pure arithmetic, allocation-free, lint-hot — and the minimum
// score wins (ties break to the lowest machine id, keeping decisions
// deterministic and thread-count invariant). `NodeScorePolicy::kNone`
// reproduces the legacy Fit-heuristic behavior bit-identically; the pre-PR
// digest goldens (tests/goldens/) pin that equivalence.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/resources.hpp"
#include "infra/topology.hpp"
#include "sched/allocation.hpp"

namespace mcs::sched {

// NodeScorePolicy / PlacementContext / AaCount live in sched/allocation.hpp
// (they are part of the SchedulerView contract every policy sees); this
// header owns the machinery that consumes them.

[[nodiscard]] const char* to_string(NodeScorePolicy p);
/// Parses the to_string name; returns kNone for unknown input (forward
/// compatibility for spec text files).
[[nodiscard]] NodeScorePolicy score_policy_from_string(const std::string& s);
/// All scoring policies including kNone (for sweeps/benches).
[[nodiscard]] std::vector<NodeScorePolicy> all_score_policies();

/// Tracks capacity planned within one decide() round so batches stay
/// feasible. Dense vectors indexed by machine id (machine ids are dense
/// per datacenter), plus a componentwise free-capacity upper bound that
/// lets pick_machine reject can't-fit-anywhere demands in O(1) — the
/// difference between O(placements * machines) and O(queue * machines)
/// per round on a saturated floor. Generalized over all K=4 resource
/// dimensions; the incremental dominant-component bound survives the move
/// to vectors (DESIGN.md §13).
class PlannedCapacity {
 public:
  explicit PlannedCapacity(const std::vector<const infra::Machine*>& machines) {
    infra::MachineId max_id = 0;
    for (const infra::Machine* m : machines) max_id = std::max(max_id, m->id());
    free_.assign(max_id + 1, infra::ResourceVector{});
    cap_.assign(max_id + 1, infra::ResourceVector{});
    speed_.assign(max_id + 1, 1.0);
    present_.assign(max_id + 1, 0);
    for (const infra::Machine* m : machines) {
      free_[m->id()] = m->available();
      cap_[m->id()] = m->capacity();
      speed_[m->id()] = m->speed_factor();
      present_[m->id()] = 1;
    }
    stale_ = kAllStale;  // first may_fit_anywhere() computes the real bound
  }

  [[nodiscard]] bool fits(infra::MachineId id,
                          const infra::ResourceVector& r) const {
    return id < present_.size() && present_[id] != 0 &&
           r.fits_within(free_[id]);
  }

  /// Incremental headroom update: O(K) per call. `max_free_` stays an exact
  /// componentwise maximum as long as at least one machine still sits at it
  /// (`argmax_n_` counts them — crucial on uniform fleets, where first-fit
  /// opens a fresh argmax machine per placement and a naive "argmax shrank →
  /// re-scan" rule would trigger an O(machines) pass each time). Only when
  /// the *last* machine at the bound shrinks does the component go stale and
  /// get lazily re-scanned on the next may_fit_anywhere(). Allocation-free:
  /// reachable from the engine's hot scheduling loop (H3).
  // mcs-lint: hot
  void take(infra::MachineId id, const infra::ResourceVector& r) {
    infra::ResourceVector& f = free_[id];
    for (std::size_t d = 0; d < core::kResourceDims; ++d) {
      take_component(f[d], r[d], max_free_[d], argmax_n_[d], 1u << d);
    }
  }

  [[nodiscard]] double speed(infra::MachineId id) const { return speed_[id]; }

  [[nodiscard]] const infra::ResourceVector& free_on(
      infra::MachineId id) const {
    return free_[id];
  }
  [[nodiscard]] const infra::ResourceVector& capacity_on(
      infra::MachineId id) const {
    return cap_[id];
  }

  /// Necessary condition for `r` to fit on *some* machine: each component
  /// must fit within the componentwise max of free capacity. O(1) reject
  /// unless an argmax machine shrank since the last call (see take()).
  // mcs-lint: hot
  [[nodiscard]] bool may_fit_anywhere(const infra::ResourceVector& r) const {
    if (stale_ != 0) refresh_bound();
    return r.fits_within(max_free_);
  }

 private:
  static constexpr unsigned kAllStale = (1u << core::kResourceDims) - 1;

  // The bound is *exact* at every read: while `count > 0` some machine's
  // free capacity equals it (and none exceeds it), and when the count hits
  // zero the component is re-scanned before the next read. Decisions are
  // therefore bit-identical to an eager per-take recompute.
  // mcs-lint: hot
  void take_component(double& free, double delta, double& bound,
                      std::size_t& count, unsigned stale_bit) {
    if (delta == 0.0) return;
    const double old = free;
    free -= delta;
    if (free > bound) {
      bound = free;  // raised past the bound: this machine is the sole argmax
      count = 1;
    } else if (free == bound) {
      ++count;  // released back to exactly the bound: joins the argmax set
    } else if (old == bound) {
      if (--count == 0) stale_ |= stale_bit;  // last argmax shrank; re-scan
    }
  }

  /// Re-scans only the stale components (each an O(machines) pass finding
  /// the max *and* its multiplicity). Called from const may_fit_anywhere(),
  /// hence the mutable bound state.
  void refresh_bound() const {
    for (std::size_t d = 0; d < core::kResourceDims; ++d) {
      if ((stale_ & (1u << d)) != 0) refresh_component(d);
    }
    stale_ = 0;
  }

  void refresh_component(std::size_t d) const {
    double v = 0.0;
    std::size_t n = 0;
    for (infra::MachineId id = 0; id < present_.size(); ++id) {
      if (present_[id] == 0) continue;
      const double f = free_[id][d];
      if (f > v) {
        v = f;
        n = 1;
      } else if (f == v) {
        ++n;
      }
    }
    max_free_[d] = v;
    argmax_n_[d] = n;
  }

  std::vector<infra::ResourceVector> free_;
  std::vector<infra::ResourceVector> cap_;
  std::vector<double> speed_;
  std::vector<std::uint8_t> present_;
  mutable infra::ResourceVector max_free_;
  mutable std::size_t argmax_n_[core::kResourceDims] = {0, 0, 0, 0};
  mutable unsigned stale_ = kAllStale;
};

/// True when `t`'s zone label filter (if any) admits machine `id`. Machines
/// beyond the mask (added after the mask was built) are conservatively
/// excluded.
// mcs-lint: hot
[[nodiscard]] inline bool machine_in_zone(const ReadyTask& t,
                                          infra::MachineId id) {
  if (t.zone_mask == nullptr) return true;
  const std::size_t word = id >> 6;
  return word < t.zone_words &&
         (t.zone_mask[word] >> (id & 63) & 1) != 0;
}

/// Running-task count of (job_slot, machine) in the engine-built table
/// (sorted by job_slot then machine); 0 when absent or no table.
// mcs-lint: hot
[[nodiscard]] std::uint32_t aa_count(const std::vector<AaCount>& table,
                                     std::uint32_t job_slot,
                                     infra::MachineId machine);

/// Zone + anti-affinity admission for one (task, machine) pair. Resource
/// fit is PlannedCapacity's job; this is everything else.
// mcs-lint: hot
[[nodiscard]] bool placement_allows(const SchedulerView& view,
                                    const ReadyTask& t, infra::MachineId id);

/// Score of placing `demand` on machine `id` under planned free capacity
/// (lower is better). Pure arithmetic over planned state — the lint-hot,
/// allocation-free kernel of the scoring pass.
// mcs-lint: hot
[[nodiscard]] double score_machine(NodeScorePolicy policy, std::uint64_t salt,
                                   workload::JobId job,
                                   const PlannedCapacity& planned,
                                   infra::MachineId id,
                                   const infra::ResourceVector& demand);

/// Legacy fit-heuristic machine choice (no constraints, no scoring); kept
/// verbatim — the digest goldens pin its decisions.
[[nodiscard]] std::optional<infra::MachineId> pick_machine(
    const std::vector<const infra::Machine*>& machines,
    const PlannedCapacity& planned, const infra::ResourceVector& demand,
    Fit fit);

/// Placement-aware machine choice: applies zone/anti-affinity admission and,
/// when the view carries a scoring policy, replaces the Fit heuristic with
/// the score minimum (ties to the lowest machine id). Reduces bit-identically
/// to the legacy overload for unconstrained tasks with scoring off.
[[nodiscard]] std::optional<infra::MachineId> pick_machine(
    const std::vector<const infra::Machine*>& machines,
    const PlannedCapacity& planned, const ReadyTask& t, Fit fit,
    const SchedulerView& view);

/// Zone label-filter cache: comma-separated zone expressions resolved to
/// machine-id bitsets, memoized per expression (submit-time only — masks
/// are rebuilt when the fleet grows, never on the scheduling hot path).
class LabelFilterCache {
 public:
  /// Bitset over machine ids whose zone is in the comma-separated list.
  /// The returned reference is stable for the cache's lifetime.
  const std::vector<std::uint64_t>& mask_for(const std::string& zones,
                                             const infra::Datacenter& dc);

  [[nodiscard]] std::size_t size() const { return cache_.size(); }
  [[nodiscard]] std::size_t hits() const { return hits_; }
  [[nodiscard]] std::size_t misses() const { return misses_; }

 private:
  struct Entry {
    std::vector<std::uint64_t> mask;
    std::size_t machine_count = 0;  ///< fleet size the mask was built for
  };
  std::map<std::string, Entry> cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace mcs::sched
