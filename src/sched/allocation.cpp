#include "sched/allocation.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <optional>
#include <stdexcept>

#include "sched/scoring.hpp"
#include "sim/random.hpp"

namespace mcs::sched {

namespace {

// PlannedCapacity and pick_machine migrated to sched/scoring.hpp: the
// placement pass (K=4 planned capacity, node scoring, zone/anti-affinity
// admission) is shared with the engine, the fuzzer, and the benches.

/// Shared skeleton: order the ready queue by a comparator, then greedily
/// place under a fit heuristic.
template <typename Compare>
class OrderedPolicy final : public AllocationPolicy {
 public:
  OrderedPolicy(std::string name, Compare cmp, Fit fit)
      : name_(std::move(name)), cmp_(std::move(cmp)), fit_(fit) {}

  [[nodiscard]] std::string name() const override { return name_; }

  std::vector<Assignment> decide(const SchedulerView& view) override {
    std::vector<std::size_t> order(view.ready->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return cmp_((*view.ready)[a], (*view.ready)[b], view);
                     });
    PlannedCapacity planned(view.machines);
    std::vector<Assignment> out;
    out.reserve(view.ready->size());
    for (std::size_t idx : order) {
      const ReadyTask& t = (*view.ready)[idx];
      if (auto m = pick_machine(view.machines, planned, t, fit_, view)) {
        planned.take(*m, t.demand);
        out.push_back(Assignment{idx, *m});
      }
    }
    return out;
  }

 private:
  std::string name_;
  Compare cmp_;
  Fit fit_;
};

template <typename Compare>
std::unique_ptr<AllocationPolicy> ordered(std::string name, Compare cmp,
                                          Fit fit) {
  return std::make_unique<OrderedPolicy<Compare>>(std::move(name),
                                                  std::move(cmp), fit);
}

std::string fit_suffix(Fit fit) {
  switch (fit) {
    case Fit::kFirst: return "";
    case Fit::kBest: return "-bestfit";
    case Fit::kWorst: return "-worstfit";
    case Fit::kFastest: return "-fastest";
  }
  return "";
}

// ---- EASY backfilling --------------------------------------------------------

class EasyBackfilling final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "easy-backfill"; }

  std::vector<Assignment> decide(const SchedulerView& view) override {
    if (view.ready->empty()) return {};
    // FCFS order.
    std::vector<std::size_t> order(view.ready->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const ReadyTask& ta = (*view.ready)[a];
                       const ReadyTask& tb = (*view.ready)[b];
                       if (ta.job_submit != tb.job_submit)
                         return ta.job_submit < tb.job_submit;
                       if (ta.job != tb.job) return ta.job < tb.job;
                       return ta.task_index < tb.task_index;
                     });

    PlannedCapacity planned(view.machines);
    std::vector<Assignment> out;
    out.reserve(view.ready->size());
    std::size_t head_pos = 0;

    // Greedily start the FCFS prefix.
    while (head_pos < order.size()) {
      const ReadyTask& t = (*view.ready)[order[head_pos]];
      auto m = pick_machine(view.machines, planned, t, Fit::kFirst, view);
      if (!m) break;
      planned.take(*m, t.demand);
      out.push_back(Assignment{order[head_pos], *m});
      ++head_pos;
    }
    if (head_pos >= order.size()) return out;

    // The head task cannot start: compute its reservation (shadow time) —
    // the earliest expected_end at which some machine could fit it,
    // assuming running tasks release their resources then.
    const ReadyTask& head = (*view.ready)[order[head_pos]];
    const auto [shadow, reserved_machine] = reservation_for(head, view);

    // Backfill: later tasks may start now iff they fit AND
    // (a) their estimated completion is before the shadow time, or
    // (b) they avoid the reserved machine.
    for (std::size_t p = head_pos + 1; p < order.size(); ++p) {
      const ReadyTask& t = (*view.ready)[order[p]];
      auto m = pick_machine(view.machines, planned, t, Fit::kFirst, view);
      if (!m) continue;
      const double speed = planned.speed(*m);
      const sim::SimTime est_end =
          view.now + sim::from_seconds(t.work_seconds / speed);
      const bool harmless = est_end <= shadow || *m != reserved_machine;
      if (harmless) {
        planned.take(*m, t.demand);
        out.push_back(Assignment{order[p], *m});
      }
    }
    return out;
  }

 private:
  /// Earliest time at which `t` is expected to fit on some machine, and
  /// that machine's id, under the current running set.
  static std::pair<sim::SimTime, infra::MachineId> reservation_for(
      const ReadyTask& t, const SchedulerView& view) {
    sim::SimTime best_time = sim::kTimeInfinity;
    infra::MachineId best_machine = 0;
    for (const infra::Machine* m : view.machines) {
      if (!t.demand.fits_within(m->capacity())) continue;
      if (!machine_in_zone(t, m->id())) continue;
      // Sort this machine's running tasks by end time and release them
      // in order until the task fits.
      std::vector<const RunningView*> on_machine;
      on_machine.reserve(view.running->size());
      for (const RunningView& r : *view.running) {
        if (r.machine == m->id()) on_machine.push_back(&r);
      }
      std::sort(on_machine.begin(), on_machine.end(),
                [](const RunningView* a, const RunningView* b) {
                  return a->expected_end < b->expected_end;
                });
      infra::ResourceVector free = m->available();
      sim::SimTime when = view.now;
      bool fits = t.demand.fits_within(free);
      for (const RunningView* r : on_machine) {
        if (fits) break;
        free += r->demand;
        when = r->expected_end;
        fits = t.demand.fits_within(free);
      }
      if (fits && when < best_time) {
        best_time = when;
        best_machine = m->id();
      }
    }
    return {best_time, best_machine};
  }
};


// ---- conservative backfilling ---------------------------------------------------

class ConservativeBackfilling final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string name() const override {
    return "conservative-backfill";
  }

  std::vector<Assignment> decide(const SchedulerView& view) override {
    if (view.ready->empty()) return {};
    std::vector<std::size_t> order(view.ready->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       const ReadyTask& ta = (*view.ready)[a];
                       const ReadyTask& tb = (*view.ready)[b];
                       if (ta.job_submit != tb.job_submit)
                         return ta.job_submit < tb.job_submit;
                       if (ta.job != tb.job) return ta.job < tb.job;
                       return ta.task_index < tb.task_index;
                     });

    PlannedCapacity planned(view.machines);
    // Earliest reservation start per machine among queued-but-unstarted
    // tasks; a backfill must complete before it.
    std::map<infra::MachineId, sim::SimTime> reservation_at;
    std::vector<Assignment> out;
    out.reserve(view.ready->size());

    for (std::size_t idx : order) {
      const ReadyTask& t = (*view.ready)[idx];
      auto m = pick_machine(view.machines, planned, t, Fit::kFirst, view);
      if (m) {
        // Starting now must not run past an existing reservation on this
        // machine (conservative guarantee: nobody already promised space
        // here is delayed).
        const sim::SimTime est_end =
            view.now + sim::from_seconds(t.work_seconds / planned.speed(*m));
        auto rit = reservation_at.find(*m);
        if (rit == reservation_at.end() || est_end <= rit->second) {
          planned.take(*m, t.demand);
          out.push_back(Assignment{idx, *m});
          continue;
        }
      }
      // Cannot start: record this task's reservation so later (smaller)
      // tasks cannot delay it.
      const auto [when, machine] = reservation_for(t, view);
      if (when == sim::kTimeInfinity) continue;  // can never fit anywhere
      auto rit = reservation_at.find(machine);
      if (rit == reservation_at.end() || when < rit->second) {
        reservation_at[machine] = when;
      }
    }
    return out;
  }

 private:
  static std::pair<sim::SimTime, infra::MachineId> reservation_for(
      const ReadyTask& t, const SchedulerView& view) {
    sim::SimTime best_time = sim::kTimeInfinity;
    infra::MachineId best_machine = 0;
    for (const infra::Machine* m : view.machines) {
      if (!t.demand.fits_within(m->capacity())) continue;
      if (!machine_in_zone(t, m->id())) continue;
      std::vector<const RunningView*> on_machine;
      on_machine.reserve(view.running->size());
      for (const RunningView& r : *view.running) {
        if (r.machine == m->id()) on_machine.push_back(&r);
      }
      std::sort(on_machine.begin(), on_machine.end(),
                [](const RunningView* a, const RunningView* b) {
                  return a->expected_end < b->expected_end;
                });
      infra::ResourceVector free = m->available();
      sim::SimTime when = view.now;
      bool fits = t.demand.fits_within(free);
      for (const RunningView* r : on_machine) {
        if (fits) break;
        free += r->demand;
        when = r->expected_end;
        fits = t.demand.fits_within(free);
      }
      if (fits && when < best_time) {
        best_time = when;
        best_machine = m->id();
      }
    }
    return {best_time, best_machine};
  }
};

// ---- HEFT ---------------------------------------------------------------------


class Heft final : public AllocationPolicy {
 public:
  [[nodiscard]] std::string name() const override { return "heft"; }

  std::vector<Assignment> decide(const SchedulerView& view) override {
    std::vector<std::size_t> order(view.ready->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    // Highest upward rank first; FCFS tiebreak.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return (*view.ready)[a].rank > (*view.ready)[b].rank;
                     });
    PlannedCapacity planned(view.machines);
    std::vector<Assignment> out;
    out.reserve(view.ready->size());
    for (std::size_t idx : order) {
      const ReadyTask& t = (*view.ready)[idx];
      if (!planned.may_fit_anywhere(t.demand)) continue;
      // Earliest-finish-time machine among those with room now.
      std::optional<infra::MachineId> best;
      double best_finish = std::numeric_limits<double>::max();
      for (const infra::Machine* m : view.machines) {
        if (!planned.fits(m->id(), t.demand)) continue;
        if (!placement_allows(view, t, m->id())) continue;
        const double finish = t.work_seconds / m->speed_factor();
        if (finish < best_finish) {
          best_finish = finish;
          best = m->id();
        }
      }
      if (best) {
        planned.take(*best, t.demand);
        out.push_back(Assignment{idx, *best});
      }
    }
    return out;
  }
};

// ---- min-min / max-min -----------------------------------------------------------

class MinMin final : public AllocationPolicy {
 public:
  explicit MinMin(bool max_first)
      : max_first_(max_first) {}

  [[nodiscard]] std::string name() const override {
    return max_first_ ? "max-min" : "min-min";
  }

  std::vector<Assignment> decide(const SchedulerView& view) override {
    PlannedCapacity planned(view.machines);
    std::vector<bool> taken(view.ready->size(), false);
    std::vector<Assignment> out;
    out.reserve(view.ready->size());
    for (;;) {
      // For each unassigned task, its minimum completion time and argmin
      // machine under planned capacity.
      std::optional<std::size_t> chosen;
      infra::MachineId chosen_machine = 0;
      double chosen_mct = 0.0;
      for (std::size_t i = 0; i < view.ready->size(); ++i) {
        if (taken[i]) continue;
        const ReadyTask& t = (*view.ready)[i];
        if (!planned.may_fit_anywhere(t.demand)) continue;
        double mct = std::numeric_limits<double>::max();
        std::optional<infra::MachineId> arg;
        for (const infra::Machine* m : view.machines) {
          if (!planned.fits(m->id(), t.demand)) continue;
        if (!placement_allows(view, t, m->id())) continue;
          const double c = t.work_seconds / m->speed_factor();
          if (c < mct) {
            mct = c;
            arg = m->id();
          }
        }
        if (!arg) continue;
        const bool better =
            !chosen || (max_first_ ? mct > chosen_mct : mct < chosen_mct);
        if (better) {
          chosen = i;
          chosen_machine = *arg;
          chosen_mct = mct;
        }
      }
      if (!chosen) break;
      taken[*chosen] = true;
      planned.take(chosen_machine, (*view.ready)[*chosen].demand);
      out.push_back(Assignment{*chosen, chosen_machine});
    }
    return out;
  }

 private:
  bool max_first_;
};

// ---- random ------------------------------------------------------------------------

class RandomPolicy final : public AllocationPolicy {
 public:
  explicit RandomPolicy(std::uint64_t seed) : rng_(seed) {}

  [[nodiscard]] std::string name() const override { return "random"; }

  std::vector<Assignment> decide(const SchedulerView& view) override {
    PlannedCapacity planned(view.machines);
    std::vector<std::size_t> order(view.ready->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng_.shuffle(order);
    std::vector<Assignment> out;
    out.reserve(view.ready->size());
    for (std::size_t idx : order) {
      const ReadyTask& t = (*view.ready)[idx];
      if (!planned.may_fit_anywhere(t.demand)) continue;
      // Collect fitting machines, pick one uniformly.
      std::vector<infra::MachineId> options;
      options.reserve(view.machines.size());
      for (const infra::Machine* m : view.machines) {
        if (planned.fits(m->id(), t.demand) &&
            placement_allows(view, t, m->id())) {
          options.push_back(m->id());
        }
      }
      if (options.empty()) continue;
      const auto pick = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(options.size()) - 1));
      planned.take(options[pick], t.demand);
      out.push_back(Assignment{idx, options[pick]});
    }
    return out;
  }

 private:
  sim::Rng rng_;
};

// Comparators for the ordered policies.
struct FcfsCmp {
  bool operator()(const ReadyTask& a, const ReadyTask& b,
                  const SchedulerView&) const {
    if (a.job_submit != b.job_submit) return a.job_submit < b.job_submit;
    if (a.job != b.job) return a.job < b.job;
    return a.task_index < b.task_index;
  }
};
struct SjfCmp {
  bool operator()(const ReadyTask& a, const ReadyTask& b,
                  const SchedulerView&) const {
    return a.work_seconds < b.work_seconds;
  }
};
struct LjfCmp {
  bool operator()(const ReadyTask& a, const ReadyTask& b,
                  const SchedulerView&) const {
    return a.work_seconds > b.work_seconds;
  }
};
struct FairShareCmp {
  bool operator()(const ReadyTask& a, const ReadyTask& b,
                  const SchedulerView& view) const {
    double ua = 0.0, ub = 0.0;
    if (view.user_usage != nullptr) {
      const std::vector<double>& usage = *view.user_usage;
      if (a.user_id < usage.size()) ua = usage[a.user_id];
      if (b.user_id < usage.size()) ub = usage[b.user_id];
    }
    if (ua != ub) return ua < ub;  // least-served user first
    return FcfsCmp{}(a, b, view);
  }
};
struct EdfCmp {
  bool operator()(const ReadyTask& a, const ReadyTask& b,
                  const SchedulerView& view) const {
    if (a.deadline != b.deadline) return a.deadline < b.deadline;
    return FcfsCmp{}(a, b, view);
  }
};

}  // namespace

std::unique_ptr<AllocationPolicy> make_fcfs(Fit fit) {
  return ordered("fcfs" + fit_suffix(fit), FcfsCmp{}, fit);
}
std::unique_ptr<AllocationPolicy> make_sjf(Fit fit) {
  return ordered("sjf" + fit_suffix(fit), SjfCmp{}, fit);
}
std::unique_ptr<AllocationPolicy> make_ljf(Fit fit) {
  return ordered("ljf" + fit_suffix(fit), LjfCmp{}, fit);
}
std::unique_ptr<AllocationPolicy> make_fair_share(Fit fit) {
  return ordered("fair-share" + fit_suffix(fit), FairShareCmp{}, fit);
}
std::unique_ptr<AllocationPolicy> make_edf(Fit fit) {
  return ordered("edf" + fit_suffix(fit), EdfCmp{}, fit);
}
std::unique_ptr<AllocationPolicy> make_easy_backfilling() {
  return std::make_unique<EasyBackfilling>();
}
std::unique_ptr<AllocationPolicy> make_conservative_backfilling() {
  return std::make_unique<ConservativeBackfilling>();
}
std::unique_ptr<AllocationPolicy> make_heft() {
  return std::make_unique<Heft>();
}
std::unique_ptr<AllocationPolicy> make_min_min() {
  return std::make_unique<MinMin>(false);
}
std::unique_ptr<AllocationPolicy> make_max_min() {
  return std::make_unique<MinMin>(true);
}
std::unique_ptr<AllocationPolicy> make_random(std::uint64_t seed) {
  return std::make_unique<RandomPolicy>(seed);
}

std::vector<std::string> all_policy_names() {
  return {"fcfs",   "fcfs-bestfit", "sjf",     "ljf",    "fair-share",
          "edf",    "easy-backfill", "conservative-backfill", "heft",
          "min-min", "max-min", "random"};
}

std::unique_ptr<AllocationPolicy> make_policy(const std::string& name) {
  if (name == "fcfs") return make_fcfs();
  if (name == "fcfs-bestfit") return make_fcfs(Fit::kBest);
  if (name == "sjf") return make_sjf();
  if (name == "ljf") return make_ljf();
  if (name == "fair-share") return make_fair_share();
  if (name == "edf") return make_edf();
  if (name == "easy-backfill") return make_easy_backfilling();
  if (name == "conservative-backfill") return make_conservative_backfilling();
  if (name == "heft") return make_heft();
  if (name == "min-min") return make_min_min();
  if (name == "max-min") return make_max_min();
  if (name == "random") return make_random(42);
  throw std::invalid_argument("make_policy: unknown policy " + name);
}

}  // namespace mcs::sched
