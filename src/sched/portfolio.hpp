// Portfolio scheduling (C7/C9; Ghit et al. [22], van Beek et al. [112]).
//
// No single allocation policy dominates across workload regimes; a
// portfolio scheduler keeps a set of candidate policies, periodically
// scores each against the current queue state with a fast surrogate
// simulation (greedy list-scheduling makespan estimate), and switches the
// live engine to the winner. exp_scheduling reproduces the published
// shape: the portfolio tracks whichever fixed policy is best per regime.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "sched/engine.hpp"
#include "sched/pipeline.hpp"

namespace mcs::sched {

/// Estimates the makespan (seconds from now) of running the current ready
/// queue to completion under a task ordering, using greedy list scheduling
/// onto the machines' free capacity. Pure function: no events, no state.
[[nodiscard]] double estimate_queue_makespan(const SchedulerView& view,
                                             const TaskOrder& order);

/// Builds candidate orderings by name ("fcfs", "sjf", "ljf").
struct PortfolioCandidate {
  std::string policy_name;  ///< passed to make_policy() when chosen
  TaskOrder order;          ///< move-only, like the pipeline's orderings
};

[[nodiscard]] std::vector<PortfolioCandidate> default_portfolio();

/// Periodically re-selects the engine's allocation policy.
class PortfolioScheduler {
 public:
  PortfolioScheduler(sim::Simulator& sim, infra::Datacenter& dc,
                     ExecutionEngine& engine,
                     std::vector<PortfolioCandidate> candidates,
                     sim::SimTime interval);

  /// Starts the periodic selection loop; stops automatically once the
  /// engine reports all_done().
  void start();

  [[nodiscard]] std::size_t switches() const { return switches_; }
  [[nodiscard]] const std::string& current() const { return current_; }
  /// How often each candidate was selected (diagnostics).
  [[nodiscard]] const std::vector<std::size_t>& selections() const {
    return selections_;
  }

 private:
  void tick();

  sim::Simulator& sim_;
  infra::Datacenter& dc_;
  ExecutionEngine& engine_;
  std::vector<PortfolioCandidate> candidates_;
  sim::SimTime interval_;
  std::string current_;
  std::size_t switches_ = 0;
  std::vector<std::size_t> selections_;
};

}  // namespace mcs::sched
