#include "sched/navigator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mcs::sched {

namespace {

/// Flattens jobs into (work, cores) units, with the workflow critical path
/// kept as a lower bound on any schedule.
struct FlatWorkload {
  std::vector<std::pair<double, double>> tasks;  ///< (work_s, cores)
  double max_critical_path_seconds = 0.0;
  double max_task_cores = 0.0;
  double max_task_memory = 0.0;
};

FlatWorkload flatten(const std::vector<workload::Job>& jobs) {
  FlatWorkload flat;
  for (const workload::Job& j : jobs) {
    flat.max_critical_path_seconds =
        std::max(flat.max_critical_path_seconds, j.critical_path_seconds());
    for (const workload::Task& t : j.tasks) {
      flat.tasks.emplace_back(t.work_seconds, t.demand.cpu());
      flat.max_task_cores = std::max(flat.max_task_cores, t.demand.cpu());
      flat.max_task_memory = std::max(flat.max_task_memory, t.demand.mem());
    }
  }
  return flat;
}

}  // namespace

double predict_makespan(const std::vector<workload::Job>& jobs,
                        const infra::InstanceType& type, std::size_t machines,
                        const std::string& policy) {
  if (machines == 0) return std::numeric_limits<double>::infinity();
  FlatWorkload flat = flatten(jobs);
  if (flat.max_task_cores > type.resources.cpu() ||
      flat.max_task_memory > type.resources.mem()) {
    return std::numeric_limits<double>::infinity();  // tasks cannot fit
  }

  // Policy ordering over the flattened tasks.
  if (policy == "sjf") {
    std::sort(flat.tasks.begin(), flat.tasks.end());
  } else if (policy == "ljf") {
    std::sort(flat.tasks.rbegin(), flat.tasks.rend());
  }  // fcfs: submission order

  // Greedy core-level list scheduling: each machine is a pool of cores
  // approximated by a free-at clock per machine plus packing by cores.
  std::vector<double> free_at(machines, 0.0);
  double makespan = 0.0;
  for (const auto& [work, cores] : flat.tasks) {
    auto it = std::min_element(free_at.begin(), free_at.end());
    // Fractional-core approximation: a task occupies its share of the
    // machine for its runtime.
    const double runtime = work / type.speed_factor;
    const double occupancy = runtime * cores / type.resources.cpu();
    *it += occupancy;
    makespan = std::max(makespan, *it + runtime * (1.0 - cores /
                                                   type.resources.cpu()));
  }
  return std::max(makespan,
                  flat.max_critical_path_seconds / type.speed_factor);
}

NavigationPlan navigate(const NavigationRequest& request,
                        const infra::InstanceCatalog& catalog) {
  NavigationPlan plan;
  const FlatWorkload flat = flatten(request.workload);
  const infra::ResourceVector per_task{flat.max_task_cores,
                                       flat.max_task_memory, 0.0};

  // Candidate machine counts: powers of two up to the cap, plus the cap.
  std::vector<std::size_t> counts;
  for (std::size_t n = 1; n <= request.max_machines; n *= 2) {
    counts.push_back(n);
  }
  if (counts.empty() || counts.back() != request.max_machines) {
    counts.push_back(request.max_machines);
  }
  const std::vector<std::string> policies = {"fcfs", "sjf"};

  const NavigationAlternative* best = nullptr;
  const NavigationAlternative* best_effort = nullptr;

  for (const infra::InstanceType& type : catalog.feasible(per_task)) {
    for (std::size_t machines : counts) {
      for (const std::string& policy : policies) {
        NavigationAlternative alt;
        alt.instance_type = type.name;
        alt.machines = machines;
        alt.policy = policy;
        alt.predicted_makespan_seconds =
            predict_makespan(request.workload, type, machines, policy);
        if (std::isinf(alt.predicted_makespan_seconds)) continue;
        alt.predicted_cost = static_cast<double>(machines) *
                             type.price_per_hour *
                             alt.predicted_makespan_seconds / 3600.0;
        alt.meets_deadline =
            request.deadline_seconds <= 0.0 ||
            alt.predicted_makespan_seconds <= request.deadline_seconds;
        alt.meets_budget = request.budget <= 0.0 ||
                           alt.predicted_cost <= request.budget;
        plan.alternatives.push_back(std::move(alt));
      }
    }
  }

  for (const NavigationAlternative& alt : plan.alternatives) {
    // Best-effort fallback: fastest overall.
    if (best_effort == nullptr ||
        alt.predicted_makespan_seconds <
            best_effort->predicted_makespan_seconds) {
      best_effort = &alt;
    }
    if (!alt.meets_deadline || !alt.meets_budget) continue;
    if (best == nullptr || alt.predicted_cost < best->predicted_cost ||
        (alt.predicted_cost == best->predicted_cost &&
         alt.predicted_makespan_seconds <
             best->predicted_makespan_seconds)) {
      best = &alt;
    }
  }

  if (best != nullptr) {
    plan.feasible = true;
    plan.chosen = *best;
    plan.rationale =
        "cheapest alternative meeting all objectives (" +
        std::to_string(plan.alternatives.size()) + " evaluated)";
  } else if (best_effort != nullptr) {
    plan.feasible = false;
    plan.chosen = *best_effort;
    plan.rationale =
        "no alternative meets the objectives; returning the fastest "
        "best-effort configuration";
  } else {
    plan.feasible = false;
    plan.rationale = "no catalog instance can host the workload's tasks";
  }
  return plan;
}

}  // namespace mcs::sched
