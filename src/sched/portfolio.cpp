#include "sched/portfolio.hpp"

#include <algorithm>
#include <limits>

namespace mcs::sched {

double estimate_queue_makespan(const SchedulerView& view,
                               const TaskOrder& order) {
  if (view.ready->empty()) return 0.0;
  // Machine model: per machine, the time (seconds from now) when each of
  // its cores frees up, approximated at whole-machine granularity by a
  // "free-at" clock plus a free-core count. Greedy: tasks in policy order,
  // each placed on the machine with the earliest feasible start.
  struct M {
    double free_at = 0.0;  ///< earliest time the queued-ahead work drains
    double cores = 0.0;
    double speed = 1.0;
  };
  std::vector<M> machines;
  for (const infra::Machine* m : view.machines) {
    M mm;
    mm.cores = m->capacity().cpu();
    mm.speed = m->speed_factor();
    // Current running tasks delay availability: approximate with the
    // latest expected end among tasks on this machine.
    for (const RunningView& r : *view.running) {
      if (r.machine == m->id()) {
        mm.free_at = std::max(
            mm.free_at, sim::to_seconds(r.expected_end - view.now));
      }
    }
    machines.push_back(mm);
  }
  if (machines.empty()) return std::numeric_limits<double>::max();

  std::vector<const ReadyTask*> tasks;
  tasks.reserve(view.ready->size());
  for (const ReadyTask& t : *view.ready) tasks.push_back(&t);
  std::stable_sort(tasks.begin(), tasks.end(),
                   [&](const ReadyTask* a, const ReadyTask* b) {
                     return order(*a, *b);
                   });

  double makespan = 0.0;
  for (const ReadyTask* t : tasks) {
    // Earliest-finish machine.
    std::size_t best = machines.size();
    double best_finish = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < machines.size(); ++i) {
      if (t->demand.cpu() > machines[i].cores) continue;
      const double finish =
          machines[i].free_at + t->work_seconds / machines[i].speed;
      if (finish < best_finish) {
        best_finish = finish;
        best = i;
      }
    }
    if (best == machines.size()) continue;  // task cannot run anywhere
    machines[best].free_at = best_finish;
    makespan = std::max(makespan, best_finish);
  }
  return makespan;
}

std::vector<PortfolioCandidate> default_portfolio() {
  std::vector<PortfolioCandidate> out;
  out.push_back({"fcfs", [](const ReadyTask& a, const ReadyTask& b) {
                   if (a.job_submit != b.job_submit)
                     return a.job_submit < b.job_submit;
                   if (a.job != b.job) return a.job < b.job;
                   return a.task_index < b.task_index;
                 }});
  out.push_back({"sjf", [](const ReadyTask& a, const ReadyTask& b) {
                   return a.work_seconds < b.work_seconds;
                 }});
  out.push_back({"ljf", [](const ReadyTask& a, const ReadyTask& b) {
                   return a.work_seconds > b.work_seconds;
                 }});
  return out;
}

PortfolioScheduler::PortfolioScheduler(sim::Simulator& sim,
                                       infra::Datacenter& dc,
                                       ExecutionEngine& engine,
                                       std::vector<PortfolioCandidate> candidates,
                                       sim::SimTime interval)
    : sim_(sim),
      dc_(dc),
      engine_(engine),
      candidates_(std::move(candidates)),
      interval_(interval),
      selections_(candidates_.size(), 0) {
  if (candidates_.empty()) {
    throw std::invalid_argument("PortfolioScheduler: no candidates");
  }
  current_ = engine_.policy_name();
}

void PortfolioScheduler::start() {
  sim_.schedule_after(interval_, [this] { tick(); });
}

void PortfolioScheduler::tick() {
  if (engine_.all_done()) return;

  // Score every candidate against the engine's live queue snapshot with the
  // greedy surrogate, and switch to the winner.
  std::vector<RunningView> running_storage;
  const SchedulerView snapshot = engine_.snapshot_view(running_storage);
  if (snapshot.ready != nullptr && !snapshot.ready->empty() &&
      !snapshot.machines.empty()) {
    double best_makespan = std::numeric_limits<double>::max();
    std::size_t best = 0;
    for (std::size_t i = 0; i < candidates_.size(); ++i) {
      const double est = estimate_queue_makespan(snapshot, candidates_[i].order);
      if (est < best_makespan) {
        best_makespan = est;
        best = i;
      }
    }
    ++selections_[best];
    if (candidates_[best].policy_name != current_) {
      current_ = candidates_[best].policy_name;
      engine_.set_policy(make_policy(current_));
      ++switches_;
    }
  }
  sim_.schedule_after(interval_, [this] { tick(); });
}

}  // namespace mcs::sched
