#include "sched/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/stats.hpp"

namespace mcs::sched {

namespace {

/// Upward ranks for HEFT: critical-path distance from each task to the
/// job's exit, in reference seconds.
std::vector<double> upward_ranks(const workload::Job& job) {
  std::vector<double> rank(job.tasks.size(), 0.0);
  // Build successor lists.
  std::vector<std::vector<std::size_t>> succ(job.tasks.size());
  for (std::size_t i = 0; i < job.tasks.size(); ++i) {
    for (std::size_t d : job.tasks[i].deps) succ[d].push_back(i);
  }
  // Tasks are topologically ordered; sweep backwards.
  for (std::size_t i = job.tasks.size(); i-- > 0;) {
    double best = 0.0;
    for (std::size_t s : succ[i]) best = std::max(best, rank[s]);
    rank[i] = job.tasks[i].work_seconds + best;
  }
  return rank;
}

}  // namespace

ExecutionEngine::ExecutionEngine(sim::Simulator& sim, infra::Datacenter& dc,
                                 std::unique_ptr<AllocationPolicy> policy,
                                 EngineConfig config)
    : sim_(sim), dc_(dc), policy_(std::move(policy)), config_(config) {
  if (!policy_) throw std::invalid_argument("ExecutionEngine: null policy");
}

void ExecutionEngine::submit(workload::Job job) {
  if (!job.valid()) throw std::invalid_argument("ExecutionEngine: invalid job");
  if (job.tasks.empty()) return;
  if (job.submit_time < sim_.now()) job.submit_time = sim_.now();
  const workload::JobId id = job.id;
  if (jobs_.count(id) != 0) {
    throw std::invalid_argument("ExecutionEngine: duplicate job id");
  }

  JobRuntime jr;
  jr.missing_deps.resize(job.tasks.size());
  jr.retries.assign(job.tasks.size(), 0);
  jr.done.assign(job.tasks.size(), false);
  jr.remaining = job.tasks.size();
  for (std::size_t i = 0; i < job.tasks.size(); ++i) {
    jr.missing_deps[i] = job.tasks[i].deps.size();
  }
  const sim::SimTime at = job.submit_time;
  jr.job = std::move(job);
  jobs_.emplace(id, std::move(jr));
  ++submitted_;
  sim_.schedule_at(at, [this, id] { arrive(id); });
}

void ExecutionEngine::submit_all(std::vector<workload::Job> jobs) {
  for (auto& j : jobs) submit(std::move(j));
}

void ExecutionEngine::set_policy(std::unique_ptr<AllocationPolicy> policy) {
  if (!policy) throw std::invalid_argument("set_policy: null");
  policy_ = std::move(policy);
  kick();
}

void ExecutionEngine::arrive(workload::JobId id) {
  JobRuntime& jr = jobs_.at(id);
  const auto ranks = upward_ranks(jr.job);
  for (std::size_t i = 0; i < jr.job.tasks.size(); ++i) {
    if (jr.missing_deps[i] == 0) enqueue_ready(jr, i);
  }
  // Stash ranks into the enqueued entries (and reuse later re-queues).
  for (ReadyTask& rt : ready_) {
    if (rt.job == id) rt.rank = ranks[rt.task_index];
  }
  record_series_point();
  kick();
}

void ExecutionEngine::enqueue_ready(JobRuntime& jr, std::size_t task_index) {
  ReadyTask rt;
  rt.job = jr.job.id;
  rt.task_index = task_index;
  rt.work_seconds = jr.job.tasks[task_index].work_seconds;
  rt.demand = jr.job.tasks[task_index].demand;
  rt.job_submit = jr.job.submit_time;
  rt.became_ready = sim_.now();
  rt.user = jr.job.user;
  // C3: the job's latency SLO becomes an absolute deadline the EDF policy
  // can schedule against.
  if (const auto slo = jr.job.sla.objective(core::NfrDimension::kLatency)) {
    rt.deadline = jr.job.submit_time + sim::from_seconds(slo->target);
  }
  ready_.push_back(std::move(rt));
}

void ExecutionEngine::drain(infra::MachineId id) { draining_.insert(id); }
void ExecutionEngine::undrain(infra::MachineId id) {
  draining_.erase(id);
  kick();
}
bool ExecutionEngine::is_draining(infra::MachineId id) const {
  return draining_.count(id) != 0;
}

bool ExecutionEngine::idle(infra::MachineId id) const {
  return std::none_of(running_.begin(), running_.end(), [&](const auto& kv) {
    return kv.second.machine == id;
  });
}

void ExecutionEngine::kick() {
  if (schedule_pending_) return;
  schedule_pending_ = true;
  sim_.schedule_after(0, [this] {
    schedule_pending_ = false;
    try_schedule();
  });
}

void ExecutionEngine::try_schedule() {
  if (ready_.empty()) return;
  bool progress = true;
  while (progress && !ready_.empty()) {
    progress = false;

    SchedulerView view;
    view.now = sim_.now();
    view.ready = &ready_;
    for (infra::Machine* m : dc_.machines()) {
      if (m->usable() && draining_.count(m->id()) == 0) {
        view.machines.push_back(m);
      }
    }
    if (view.machines.empty()) return;
    std::vector<RunningView> running_view;
    running_view.reserve(running_.size());
    for (const auto& [key, rt] : running_) {
      running_view.push_back(RunningView{rt.machine, rt.expected_end, rt.held});
    }
    view.running = &running_view;
    view.user_usage = &user_usage_;

    const auto assignments = policy_->decide(view);
    // Apply in descending ready-index order so indices stay valid while
    // erasing; re-validate each against live machine state.
    std::vector<Assignment> sorted = assignments;
    std::sort(sorted.begin(), sorted.end(),
              [](const Assignment& a, const Assignment& b) {
                return a.ready_index > b.ready_index;
              });
    std::size_t last = ready_.size();  // guard against duplicate indices
    for (const Assignment& a : sorted) {
      if (a.ready_index >= last) continue;
      last = a.ready_index;
      if (start_task(a.ready_index, a.machine)) progress = true;
    }

    // Scavenging fallback (C7, [118]): policies only propose placements
    // that fit whole; when nothing fits and scavenging is on, try each
    // ready task directly — start_task itself knows how to borrow memory.
    if (!progress && config_.scavenging.enabled) {
      for (std::size_t i = ready_.size(); i-- > 0 && !progress;) {
        for (const infra::Machine* m : view.machines) {
          if (start_task(i, m->id())) {
            progress = true;
            break;
          }
        }
      }
    }
  }
  record_series_point();
}

bool ExecutionEngine::start_task(std::size_t ready_index,
                                 infra::MachineId machine_id) {
  if (ready_index >= ready_.size()) return false;
  const ReadyTask rt = ready_[ready_index];
  infra::Machine& m = dc_.machine(machine_id);
  if (!m.usable() || draining_.count(machine_id) != 0) return false;

  infra::ResourceVector held = rt.demand;
  double runtime_multiplier = 1.0;

  if (!m.can_fit(held)) {
    // Memory scavenging (C7, [118]): run with partial local memory when
    // enabled and only memory is short.
    const auto avail = m.available();
    const bool cores_ok = held.cores <= avail.cores &&
                          held.accelerators <= avail.accelerators;
    if (config_.scavenging.enabled && cores_ok &&
        held.memory_gib > avail.memory_gib) {
      const double local = std::max(avail.memory_gib, 0.0);
      const double borrowed_fraction =
          held.memory_gib <= 0.0
              ? 0.0
              : (held.memory_gib - local) / held.memory_gib;
      if (borrowed_fraction <= config_.scavenging.max_borrow_fraction) {
        held.memory_gib = local;
        runtime_multiplier = 1.0 + config_.scavenging.penalty * borrowed_fraction;
        ++tasks_scavenged_;
      } else {
        return false;
      }
    } else {
      return false;
    }
  }

  m.allocate(held);
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(ready_index));

  JobRuntime& jr = jobs_.at(rt.job);
  if (!jr.first_start) jr.first_start = sim_.now();

  const double runtime_s =
      rt.work_seconds * runtime_multiplier / m.speed_factor();
  const sim::SimTime end =
      sim_.now() + std::max<sim::SimTime>(sim::from_seconds(runtime_s), 1);

  const std::size_t key = next_running_key_++;
  RunningTask task;
  task.job = rt.job;
  task.task_index = rt.task_index;
  task.machine = machine_id;
  task.start = sim_.now();
  task.expected_end = end;
  task.held = held;
  task.work_seconds = rt.work_seconds;
  task.completion = sim_.schedule_at(end, [this, key] { finish_task(key); });
  running_.emplace(key, std::move(task));
  return true;
}

void ExecutionEngine::finish_task(std::size_t running_key) {
  auto it = running_.find(running_key);
  if (it == running_.end()) return;
  RunningTask rt = it->second;
  running_.erase(it);

  infra::Machine& m = dc_.machine(rt.machine);
  if (m.usable()) m.release(rt.held);

  const double core_seconds =
      rt.held.cores * sim::to_seconds(sim_.now() - rt.start);
  busy_core_seconds_ += core_seconds;

  JobRuntime& jr = jobs_.at(rt.job);
  user_usage_[jr.job.user] += core_seconds;
  jr.done[rt.task_index] = true;
  --jr.remaining;

  // Unlock successors.
  for (std::size_t i = rt.task_index + 1; i < jr.job.tasks.size(); ++i) {
    if (jr.done[i]) continue;
    const auto& deps = jr.job.tasks[i].deps;
    if (std::find(deps.begin(), deps.end(), rt.task_index) != deps.end()) {
      if (--jr.missing_deps[i] == 0) {
        enqueue_ready(jr, i);
        // Keep the HEFT rank usable after requeue.
        ready_.back().rank = 0.0;
      }
    }
  }
  if (jr.remaining == 0) {
    complete_job(jr, /*abandoned=*/false);
  }
  record_series_point();
  kick();
}

void ExecutionEngine::on_machine_failed(infra::MachineId id) {
  // Collect tasks running there (the machine has already dropped its
  // allocations via Machine::fail()).
  std::vector<std::size_t> keys;
  for (const auto& [key, rt] : running_) {
    if (rt.machine == id) keys.push_back(key);
  }
  for (std::size_t key : keys) {
    auto rit = running_.find(key);
    if (rit == running_.end()) continue;  // removed by a job abandonment
    RunningTask rt = rit->second;
    running_.erase(rit);
    sim_.cancel(rt.completion);
    ++tasks_killed_;

    auto jit = jobs_.find(rt.job);
    if (jit == jobs_.end()) continue;  // job already completed/abandoned
    JobRuntime& jr = jit->second;
    ++jr.failures;
    if (config_.retry_failed_tasks &&
        jr.retries[rt.task_index] < config_.max_retries) {
      ++jr.retries[rt.task_index];
      enqueue_ready(jr, rt.task_index);
    } else {
      // Abandon the whole job: it can never finish.
      complete_job(jr, /*abandoned=*/true);
    }
  }
  record_series_point();
  kick();
}

void ExecutionEngine::complete_job(JobRuntime& jr, bool abandoned) {
  JobStats stats;
  stats.id = jr.job.id;
  stats.user = jr.job.user;
  stats.submit = jr.job.submit_time;
  stats.first_start = jr.first_start.value_or(sim_.now());
  stats.finish = sim_.now();
  stats.wait_seconds = sim::to_seconds(stats.first_start - stats.submit);
  stats.response_seconds = sim::to_seconds(stats.finish - stats.submit);
  stats.critical_path_seconds = jr.job.critical_path_seconds();
  stats.slowdown = stats.response_seconds /
                   std::max(stats.critical_path_seconds, 1e-6);
  stats.tasks = jr.job.tasks.size();
  stats.task_failures = jr.failures;
  stats.abandoned = abandoned;
  completed_.push_back(std::move(stats));

  if (abandoned) {
    // Drop any still-queued/running work of this job.
    const workload::JobId id = jr.job.id;
    ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                                [&](const ReadyTask& t) { return t.job == id; }),
                 ready_.end());
    std::vector<std::size_t> keys;
    for (const auto& [key, rt] : running_) {
      if (rt.job == id) keys.push_back(key);
    }
    for (std::size_t key : keys) {
      RunningTask rt = running_.at(key);
      sim_.cancel(rt.completion);
      infra::Machine& m = dc_.machine(rt.machine);
      if (m.usable()) m.release(rt.held);
      running_.erase(key);
    }
    jr.remaining = 0;
  }
  jobs_.erase(jr.job.id);
}

bool ExecutionEngine::all_done() const {
  return jobs_.empty() && ready_.empty() && running_.empty();
}

double ExecutionEngine::demand_cores() const {
  double cores = 0.0;
  for (const ReadyTask& t : ready_) cores += t.demand.cores;
  for (const auto& [key, rt] : running_) cores += rt.held.cores;
  return cores;
}

double ExecutionEngine::supply_cores() const {
  double cores = 0.0;
  const infra::Datacenter& dc = dc_;
  for (const infra::Machine* m : dc.machines()) {
    if (m->usable() && draining_.count(m->id()) == 0) {
      cores += m->capacity().cores;
    }
  }
  return cores;
}

double ExecutionEngine::pending_work_core_seconds() const {
  double work = 0.0;
  for (const auto& [id, jr] : jobs_) {
    for (std::size_t i = 0; i < jr.job.tasks.size(); ++i) {
      if (!jr.done[i]) {
        work += jr.job.tasks[i].work_seconds * jr.job.tasks[i].demand.cores;
      }
    }
  }
  // Running tasks are already counted as not-done above; subtract the part
  // already executed (approximate by elapsed fraction).
  for (const auto& [key, rt] : running_) {
    const double elapsed = sim::to_seconds(sim_.now() - rt.start);
    work -= std::min(elapsed, rt.work_seconds) * rt.held.cores;
  }
  return std::max(work, 0.0);
}

std::size_t ExecutionEngine::eligible_within(sim::SimTime window) const {
  std::size_t eligible = ready_.size();
  const sim::SimTime horizon = sim_.now() + window;
  // Successors of tasks that finish within the window, whose remaining
  // dependency count would drop to zero.
  for (const auto& [id, jr] : jobs_) {
    // Count, per task, how many of its missing deps finish inside the window.
    for (std::size_t i = 0; i < jr.job.tasks.size(); ++i) {
      if (jr.done[i] || jr.missing_deps[i] == 0) continue;
      std::size_t resolving = 0;
      for (std::size_t d : jr.job.tasks[i].deps) {
        if (jr.done[d]) continue;
        for (const auto& [key, rt] : running_) {
          if (rt.job == id && rt.task_index == d &&
              rt.expected_end <= horizon) {
            ++resolving;
            break;
          }
        }
      }
      if (resolving >= jr.missing_deps[i]) ++eligible;
    }
  }
  return eligible;
}

SchedulerView ExecutionEngine::snapshot_view(
    std::vector<RunningView>& running_storage) const {
  SchedulerView view;
  view.now = sim_.now();
  view.ready = &ready_;
  const infra::Datacenter& dc = dc_;
  for (const infra::Machine* m : dc.machines()) {
    if (m->usable() && draining_.count(m->id()) == 0) {
      view.machines.push_back(m);
    }
  }
  running_storage.clear();
  running_storage.reserve(running_.size());
  for (const auto& [key, rt] : running_) {
    running_storage.push_back(RunningView{rt.machine, rt.expected_end, rt.held});
  }
  view.running = &running_storage;
  view.user_usage = &user_usage_;
  return view;
}

void ExecutionEngine::record_series_point() {
  if (!config_.record_series) return;
  demand_.append(sim_.now(), demand_cores());
  supply_.append(sim_.now(), supply_cores());
}

RunResult summarize_run(const ExecutionEngine& engine,
                        const infra::Datacenter& dc) {
  RunResult result;
  result.jobs = engine.completed();
  if (result.jobs.empty()) return result;

  metrics::Accumulator slowdown, wait;
  sim::SimTime first_submit = sim::kTimeInfinity;
  sim::SimTime last_finish = 0;
  for (const JobStats& j : result.jobs) {
    if (j.abandoned) {
      ++result.abandoned;
      continue;
    }
    slowdown.add(j.slowdown);
    wait.add(j.wait_seconds);
    first_submit = std::min(first_submit, j.submit);
    last_finish = std::max(last_finish, j.finish);
  }
  result.mean_slowdown = slowdown.mean();
  result.p95_slowdown = slowdown.count() > 0 ? slowdown.quantile(0.95) : 0.0;
  result.mean_wait_seconds = wait.mean();
  if (last_finish > first_submit) {
    result.makespan_seconds = sim::to_seconds(last_finish - first_submit);
    const double capacity_cores = dc.total_capacity().cores;
    if (capacity_cores > 0.0 && result.makespan_seconds > 0.0) {
      result.utilization = engine.busy_core_seconds() /
                           (capacity_cores * result.makespan_seconds);
    }
  }
  return result;
}

RunResult run_workload(infra::Datacenter& dc, std::vector<workload::Job> jobs,
                       std::unique_ptr<AllocationPolicy> policy,
                       EngineConfig config) {
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, std::move(policy), config);
  engine.submit_all(std::move(jobs));
  sim.run_until();
  return summarize_run(engine, dc);
}

}  // namespace mcs::sched
