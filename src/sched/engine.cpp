#include "sched/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "metrics/stats.hpp"

namespace mcs::sched {

const char* to_string(EngineTransition t) {
  switch (t) {
    case EngineTransition::kJobSubmitted: return "job-submitted";
    case EngineTransition::kJobArrived: return "job-arrived";
    case EngineTransition::kJobCompleted: return "job-completed";
    case EngineTransition::kJobAbandoned: return "job-abandoned";
    case EngineTransition::kTaskStarted: return "task-started";
    case EngineTransition::kTaskFinished: return "task-finished";
    case EngineTransition::kTasksKilled: return "tasks-killed";
    case EngineTransition::kDrained: return "drained";
    case EngineTransition::kUndrained: return "undrained";
  }
  return "?";
}

const char* workload_class_name(std::size_t klass) {
  return klass == 0 ? "bot" : "workflow";
}

ExecutionEngine::ExecutionEngine(sim::Simulator& sim, infra::Datacenter& dc,
                                 std::unique_ptr<AllocationPolicy> policy,
                                 EngineConfig config)
    : sim_(sim), dc_(dc), policy_(std::move(policy)), config_(config) {
  if (!policy_) throw std::invalid_argument("ExecutionEngine: null policy");
  // Register the engine's instruments once; hot paths record through the
  // cached pointers (an instrument update is a single integer add, the
  // same cost as the raw tally members these replaced).
  ctr_submitted_ = &registry_.counter("jobs.submitted");
  ctr_completed_ = &registry_.counter("jobs.completed");
  ctr_abandoned_ = &registry_.counter("jobs.abandoned");
  ctr_tasks_started_ = &registry_.counter("tasks.started");
  ctr_tasks_finished_ = &registry_.counter("tasks.finished");
  ctr_tasks_killed_ = &registry_.counter("tasks.killed");
  ctr_tasks_scavenged_ = &registry_.counter("tasks.scavenged");
  h_job_wait_s_ = &registry_.histogram("job.wait_seconds");
  h_job_response_s_ = &registry_.histogram("job.response_seconds");
  h_job_slowdown_ = &registry_.histogram("job.slowdown");
  h_task_runtime_s_ = &registry_.histogram("task.runtime_seconds");
  // Lifecycle spans are opt-in: the instrument set of a default-config
  // engine is pinned by the scalar-digest goldens (fold_digest hashes
  // names), so the per-class decomposition only registers when asked for.
  if (config_.lifecycle_spans) {
    for (std::size_t c = 0; c < kWorkloadClasses; ++c) {
      const std::string prefix =
          std::string("span.") + workload_class_name(c) + ".";
      spans_[c].queueing = &registry_.histogram(prefix + "queueing_seconds");
      spans_[c].placement = &registry_.histogram(prefix + "placement_seconds");
      spans_[c].service = &registry_.histogram(prefix + "service_seconds");
      spans_[c].response = &registry_.histogram(prefix + "response_seconds");
      spans_[c].slowdown = &registry_.histogram(prefix + "slowdown");
      spans_[c].abandon = &registry_.histogram(prefix + "abandon_seconds");
    }
  }
}

void ExecutionEngine::set_tracer(obs::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer_ == nullptr) return;
  tn_.job_arrived = tracer_->intern("job.arrived");
  tn_.job = tracer_->intern("job");
  tn_.job_abandoned = tracer_->intern("job.abandoned");
  tn_.task_start = tracer_->intern("task.start");
  tn_.task = tracer_->intern("task");
  tn_.tasks_killed = tracer_->intern("tasks.killed");
  tn_.drain = tracer_->intern("drain");
  tn_.undrain = tracer_->intern("undrain");
  // The span names only exist when spans can be emitted: the trace digest
  // hashes the name table, and default-config digests are golden-pinned.
  if (config_.lifecycle_spans) {
    tn_.task_queue = tracer_->intern("task.queue");
    tn_.job_place = tracer_->intern("job.place");
  }
}

void ExecutionEngine::set_slo(obs::SloTracker* slo) {
  slo_ = slo;
  for (auto& list : slo_by_class_) list.clear();
  if (slo_ == nullptr) return;
  for (std::size_t i = 0; i < slo_->specs().size(); ++i) {
    const std::string& k = slo_->specs()[i].klass;
    for (std::size_t c = 0; c < kWorkloadClasses; ++c) {
      if (k == "all" || k == workload_class_name(c)) {
        slo_by_class_[c].push_back(i);
      }
    }
  }
}

std::uint32_t ExecutionEngine::intern_user(const std::string& name) {
  const auto [it, inserted] = user_ids_.try_emplace(
      name, static_cast<std::uint32_t>(user_names_.size()));
  if (inserted) {
    user_names_.push_back(name);
    user_usage_.push_back(0.0);
  }
  return it->second;
}

void ExecutionEngine::submit(workload::Job job) {
  if (!job.valid()) throw std::invalid_argument("ExecutionEngine: invalid job");
  if (job.tasks.empty()) return;
  if (job.submit_time < sim_.now()) job.submit_time = sim_.now();
  const workload::JobId id = job.id;
  if (id_to_slot_.count(id) != 0) {
    throw std::invalid_argument("ExecutionEngine: duplicate job id");
  }

  const std::uint32_t slot = jobs_.acquire();
  JobSlot& jr = jobs_[slot];
  jr.job = std::move(job);
  const std::size_t n = jr.job.tasks.size();
  jr.missing_deps.assign(n, 0);
  jr.retries.assign(n, 0);
  jr.done.assign(n, 0);
  jr.remaining = n;
  jr.failures = 0;
  jr.first_start = 0;
  jr.started = false;
  jr.klass = jr.job.is_workflow() ? 1 : 0;
  jr.user_id = intern_user(jr.job.user);
  // Placement constraints (C4): resolve the zone expression once through
  // the label-filter cache (the returned reference is map-node stable) and
  // count spread-limited jobs so unconstrained rounds skip AA bookkeeping.
  jr.zone_mask = jr.job.placement.zones.empty()
                     ? nullptr
                     : &zone_cache_.mask_for(jr.job.placement.zones, dc_);
  if (jr.job.placement.spread_limit > 0) ++spread_jobs_live_;

  // Successor CSR: counts, prefix sum, fill (targets of each task end up in
  // ascending order because tasks are topologically ordered).
  jr.succ_offsets.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& deps = jr.job.tasks[i].deps;
    jr.missing_deps[i] = static_cast<std::uint32_t>(deps.size());
    for (std::size_t d : deps) ++jr.succ_offsets[d + 1];
  }
  for (std::size_t t = 0; t < n; ++t) {
    jr.succ_offsets[t + 1] += jr.succ_offsets[t];
  }
  jr.succ_targets.assign(jr.succ_offsets[n], 0);
  succ_cursor_.assign(jr.succ_offsets.begin(), jr.succ_offsets.end());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d : jr.job.tasks[i].deps) {
      jr.succ_targets[succ_cursor_[d]++] = static_cast<std::uint32_t>(i);
    }
  }

  const sim::SimTime at = jr.job.submit_time;
  id_to_slot_.emplace(id, slot);
  ctr_submitted_->add();
  sim_.schedule_at(at, [this, slot] { arrive(slot); });
  notify(EngineTransition::kJobSubmitted);
}

void ExecutionEngine::submit_all(std::vector<workload::Job> jobs) {
  for (auto& j : jobs) submit(std::move(j));
}

void ExecutionEngine::set_policy(std::unique_ptr<AllocationPolicy> policy) {
  if (!policy) throw std::invalid_argument("set_policy: null");
  policy_ = std::move(policy);
  kick();
}

bool ExecutionEngine::demand_satisfiable(
    const infra::ResourceVector& demand,
    const std::vector<std::uint64_t>* zone_mask) const {
  // Memory can be partially borrowed when scavenging is on; cores and
  // accelerators cannot.
  const double needed_memory =
      config_.scavenging.enabled
          ? demand.mem() * (1.0 - config_.scavenging.max_borrow_fraction)
          : demand.mem();
  const std::size_t machine_count = dc_.machine_count();
  for (std::uint32_t id = 0; id < machine_count; ++id) {
    if (zone_mask != nullptr) {
      const std::size_t word = id >> 6;
      if (word >= zone_mask->size() ||
          ((*zone_mask)[word] >> (id & 63) & 1) == 0) {
        continue;
      }
    }
    const infra::ResourceVector& cap = dc_.machine(id).capacity();
    if (demand.cpu() <= cap.cpu() && needed_memory <= cap.mem() &&
        demand.gpu() <= cap.gpu() && demand.net() <= cap.net()) {
      return true;
    }
  }
  return false;
}

// mcs-lint: hot
bool ExecutionEngine::placement_allows_start(const ReadyTask& rt,
                                             infra::MachineId machine) const {
  if (rt.zone_mask != nullptr) {
    const std::size_t word = machine >> 6;
    if (word >= rt.zone_words ||
        (rt.zone_mask[word] >> (machine & 63) & 1) == 0) {
      return false;
    }
  }
  if (rt.spread_limit > 0) {
    // Exact anti-affinity: count this job's tasks live on the machine.
    // O(R) over running slots, but only paid by spread-limited tasks.
    std::uint32_t live = 0;
    for (std::uint32_t key = 0; key < running_.size(); ++key) {
      if (!running_.live(key)) continue;
      const RunningSlot& rs = running_[key];
      if (rs.machine == machine && rs.job_slot == rt.job_slot &&
          ++live >= rt.spread_limit) {
        return false;
      }
    }
  }
  return true;
}

// mcs-lint: hot
void ExecutionEngine::build_aa_table() {
  // Sorted (job_slot, machine) -> live-count table for policies to consult
  // via aa_count(). Rebuilt each scheduling round; merge-dedup in place so
  // steady state allocates nothing once capacity is warm.
  aa_scratch_.clear();
  if (aa_scratch_.capacity() < running_.size()) {
    aa_scratch_.reserve(running_.size());
  }
  for (std::uint32_t key = 0; key < running_.size(); ++key) {
    if (!running_.live(key)) continue;
    const RunningSlot& rs = running_[key];
    aa_scratch_.push_back(AaCount{rs.job_slot, rs.machine, 1});
  }
  std::sort(aa_scratch_.begin(), aa_scratch_.end(),
            [](const AaCount& a, const AaCount& b) {
              return a.job_slot != b.job_slot ? a.job_slot < b.job_slot
                                              : a.machine < b.machine;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < aa_scratch_.size(); ++i) {
    if (out > 0 && aa_scratch_[out - 1].job_slot == aa_scratch_[i].job_slot &&
        aa_scratch_[out - 1].machine == aa_scratch_[i].machine) {
      aa_scratch_[out - 1].count += aa_scratch_[i].count;
    } else {
      aa_scratch_[out++] = aa_scratch_[i];
    }
  }
  aa_scratch_.resize(out);
}

void ExecutionEngine::arrive(std::uint32_t job_slot) {
  JobSlot& jr = jobs_[job_slot];
  const std::size_t n = jr.job.tasks.size();
  // A task whose demand exceeds every machine's *total* capacity — even
  // machines that are currently down or powered off, and even granting
  // maximal memory scavenging — can never be placed by any future
  // schedule. Abandon the job at arrival instead of parking it forever:
  // a forever-pending job keeps all_done() false, which spins monitor
  // loops (autoscalers, portfolio) without end.
  for (std::size_t i = 0; i < n; ++i) {
    if (!demand_satisfiable(jr.job.tasks[i].demand, jr.zone_mask)) {
      complete_job(job_slot, /*abandoned=*/true);
      return;
    }
  }
  // Upward ranks for HEFT via the CSR successor lists: critical-path
  // distance to the job's exit in reference seconds. Tasks are
  // topologically ordered; sweep backwards.
  rank_scratch_.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double best = 0.0;
    for (std::uint32_t k = jr.succ_offsets[i]; k < jr.succ_offsets[i + 1];
         ++k) {
      best = std::max(best, rank_scratch_[jr.succ_targets[k]]);
    }
    rank_scratch_[i] = jr.job.tasks[i].work_seconds + best;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (jr.missing_deps[i] == 0) {
      enqueue_ready(jr, job_slot, i, rank_scratch_[i]);
    }
  }
  record_series_point();
  kick();
  if (tracer_ != nullptr) {
    tracer_->instant(sim_.now(), tn_.job_arrived, 0,
                     static_cast<std::int64_t>(jr.job.id),
                     static_cast<std::int64_t>(n));
  }
  notify(EngineTransition::kJobArrived);
}

// mcs-lint: hot
void ExecutionEngine::enqueue_ready(JobSlot& jr, std::uint32_t job_slot,
                                    std::size_t task_index, double rank) {
  if (ready_.size() == ready_.capacity()) {
    ready_.reserve(ready_.empty() ? 16 : ready_.size() * 2);
  }
  ready_.push_back(ReadyTask{});
  ReadyTask& rt = ready_.back();
  rt.job = jr.job.id;
  rt.task_index = task_index;
  rt.work_seconds = jr.job.tasks[task_index].work_seconds;
  rt.demand = jr.job.tasks[task_index].demand;
  rt.job_submit = jr.job.submit_time;
  rt.became_ready = sim_.now();
  rt.user_id = jr.user_id;
  rt.job_slot = job_slot;
  rt.rank = rank;
  if (jr.zone_mask != nullptr) {
    rt.zone_mask = jr.zone_mask->data();
    rt.zone_words = jr.zone_mask->size();
  }
  rt.spread_limit = jr.job.placement.spread_limit;
  // C3: the job's latency SLO becomes an absolute deadline the EDF policy
  // can schedule against.
  if (const auto slo = jr.job.sla.objective(core::NfrDimension::kLatency)) {
    rt.deadline = jr.job.submit_time + sim::from_seconds(slo->target);
  }
}

void ExecutionEngine::drain(infra::MachineId id) {
  const std::size_t word = id >> 6;
  if (word >= draining_bits_.size()) draining_bits_.resize(word + 1, 0);
  draining_bits_[word] |= std::uint64_t{1} << (id & 63);
  if (tracer_ != nullptr) tracer_->instant(sim_.now(), tn_.drain, id);
  notify(EngineTransition::kDrained, id);
}
void ExecutionEngine::undrain(infra::MachineId id) {
  const std::size_t word = id >> 6;
  if (word < draining_bits_.size()) {
    draining_bits_[word] &= ~(std::uint64_t{1} << (id & 63));
  }
  kick();
  if (tracer_ != nullptr) tracer_->instant(sim_.now(), tn_.undrain, id);
  notify(EngineTransition::kUndrained, id);
}
bool ExecutionEngine::is_draining(infra::MachineId id) const {
  const std::size_t word = id >> 6;
  return word < draining_bits_.size() &&
         (draining_bits_[word] >> (id & 63) & 1) != 0;
}

bool ExecutionEngine::idle(infra::MachineId id) const {
  for (std::uint32_t key = 0; key < running_.size(); ++key) {
    if (running_.live(key) && running_[key].machine == id) return false;
  }
  return true;
}

void ExecutionEngine::kick() {
  if (schedule_pending_) return;
  schedule_pending_ = true;
  sim_.schedule_after(0, [this] {
    schedule_pending_ = false;
    try_schedule();
  });
}

// mcs-lint: hot
void ExecutionEngine::try_schedule() {
  if (ready_.empty()) return;
  bool progress = true;
  while (progress && !ready_.empty()) {
    progress = false;

    SchedulerView view;
    view.now = sim_.now();
    view.ready = &ready_;
    // Move the machine list's storage in and out of the view so its
    // capacity survives across rounds.
    view.machines = std::move(machines_scratch_);
    view.machines.clear();
    const std::size_t machine_count = dc_.machine_count();
    view.machines.reserve(machine_count);
    for (std::uint32_t id = 0; id < machine_count; ++id) {
      infra::Machine& m = dc_.machine(id);
      if (m.usable() && !is_draining(id)) view.machines.push_back(&m);
    }
    if (view.machines.empty()) {
      machines_scratch_ = std::move(view.machines);
      break;
    }
    running_scratch_.clear();
    running_scratch_.reserve(running_.size());
    for (std::uint32_t key = 0; key < running_.size(); ++key) {
      if (!running_.live(key)) continue;
      const RunningSlot& rt = running_[key];
      running_scratch_.push_back(
          RunningView{rt.machine, rt.expected_end, rt.held});
    }
    view.running = &running_scratch_;
    view.user_usage = &user_usage_;
    view.placement = &config_.placement;
    // Anti-affinity is advisory at proposal time: a sorted per-round count
    // table steers policies away from saturated machines; start_task makes
    // the exact final call. Skipped entirely when no live job spreads.
    if (spread_jobs_live_ > 0) {
      build_aa_table();
      view.aa = &aa_scratch_;
    }

    const auto assignments = policy_->decide(view);
    machines_scratch_ = std::move(view.machines);

    // Apply in descending ready-index order so indices stay valid while
    // erasing; re-validate each against live machine state.
    sorted_scratch_.assign(assignments.begin(), assignments.end());
    std::sort(sorted_scratch_.begin(), sorted_scratch_.end(),
              [](const Assignment& a, const Assignment& b) {
                return a.ready_index > b.ready_index;
              });
    std::size_t last = ready_.size();  // guard against duplicate indices
    for (const Assignment& a : sorted_scratch_) {
      if (a.ready_index >= last) continue;
      last = a.ready_index;
      if (start_task(a.ready_index, a.machine)) progress = true;
    }

    // Scavenging fallback (C7, [118]): policies only propose placements
    // that fit whole; when nothing fits and scavenging is on, try each
    // ready task directly — start_task itself knows how to borrow memory.
    if (!progress && config_.scavenging.enabled) {
      for (std::size_t i = ready_.size(); i-- > 0 && !progress;) {
        for (const infra::Machine* m : machines_scratch_) {
          if (start_task(i, m->id())) {
            progress = true;
            break;
          }
        }
      }
    }
  }
  record_series_point();
}

// mcs-lint: hot
bool ExecutionEngine::start_task(std::size_t ready_index,
                                 infra::MachineId machine_id) {
  if (ready_index >= ready_.size()) return false;
  const ReadyTask rt = ready_[ready_index];
  infra::Machine& m = dc_.machine(machine_id);
  if (!m.usable() || is_draining(machine_id)) return false;
  if (!placement_allows_start(rt, machine_id)) return false;

  infra::ResourceVector held = rt.demand;
  double runtime_multiplier = 1.0;

  if (!m.can_fit(held)) {
    // Memory scavenging (C7, [118]): run with partial local memory when
    // enabled and only memory is short.
    const auto avail = m.available();
    const bool cores_ok = held.cpu() <= avail.cpu() &&
                          held.gpu() <= avail.gpu();
    if (config_.scavenging.enabled && cores_ok &&
        held.mem() > avail.mem()) {
      const double local = std::max(avail.mem(), 0.0);
      const double borrowed_fraction =
          held.mem() <= 0.0
              ? 0.0
              : (held.mem() - local) / held.mem();
      if (borrowed_fraction <= config_.scavenging.max_borrow_fraction) {
        held.mem() = local;
        runtime_multiplier = 1.0 + config_.scavenging.penalty * borrowed_fraction;
        ctr_tasks_scavenged_->add();
      } else {
        return false;
      }
    } else {
      return false;
    }
  }

  m.allocate(held);
  ready_.erase(ready_.begin() + static_cast<std::ptrdiff_t>(ready_index));

  JobSlot& jr = jobs_[rt.job_slot];
  if (!jr.started) {
    jr.started = true;
    jr.first_start = sim_.now();
    if (config_.lifecycle_spans) {
      // Placement latency: submit -> first task start, once per job.
      spans_[jr.klass].placement->record(
          sim::to_seconds(sim_.now() - rt.job_submit));
      if (tracer_ != nullptr) {
        tracer_->complete(rt.job_submit, sim_.now() - rt.job_submit,
                          tn_.job_place, 0,
                          static_cast<std::int64_t>(rt.job));
      }
    }
  }
  if (config_.lifecycle_spans) {
    // Queueing delay: became_ready -> start, stamped per attempt — a task
    // re-queued after a machine crash contributes a fresh sample, so the
    // per-class queueing histogram attributes retry waits to the retry.
    spans_[jr.klass].queueing->record(
        sim::to_seconds(sim_.now() - rt.became_ready));
    if (tracer_ != nullptr) {
      tracer_->complete(rt.became_ready, sim_.now() - rt.became_ready,
                        tn_.task_queue, machine_id,
                        static_cast<std::int64_t>(rt.job),
                        static_cast<std::int64_t>(rt.task_index));
    }
  }

  const double runtime_s =
      rt.work_seconds * runtime_multiplier / m.speed_factor();
  const sim::SimTime end =
      sim_.now() + std::max<sim::SimTime>(sim::from_seconds(runtime_s), 1);

  const std::uint32_t key = running_.acquire();
  RunningSlot& task = running_[key];
  task.job_slot = rt.job_slot;
  task.task_index = static_cast<std::uint32_t>(rt.task_index);
  task.machine = machine_id;
  task.start = sim_.now();
  task.expected_end = end;
  task.held = held;
  task.work_seconds = rt.work_seconds;
  const std::uint32_t gen = running_.gen(key);
  task.completion = sim_.schedule_at(end, [this, key, gen] {
    finish_task(key, gen);
  });
  ctr_tasks_started_->add();
  if (tracer_ != nullptr) {
    tracer_->instant(sim_.now(), tn_.task_start, machine_id,
                     static_cast<std::int64_t>(rt.job),
                     static_cast<std::int64_t>(rt.task_index));
  }
  notify(EngineTransition::kTaskStarted, machine_id);
  return true;
}

// mcs-lint: hot
void ExecutionEngine::finish_task(std::uint32_t key, std::uint32_t gen) {
  // Generation guard: the slot may have been recycled after a failure
  // kill or job abandonment cancelled this completion's run.
  if (!running_.live(key) || running_.gen(key) != gen) return;
  const RunningSlot rt = running_[key];
  running_.release(key);

  infra::Machine& m = dc_.machine(rt.machine);
  if (m.usable()) m.release(rt.held);

  const double core_seconds =
      rt.held.cpu() * sim::to_seconds(sim_.now() - rt.start);
  busy_core_seconds_ += core_seconds;
  ctr_tasks_finished_->add();
  h_task_runtime_s_->record(sim::to_seconds(sim_.now() - rt.start));

  JobSlot& jr = jobs_[rt.job_slot];
  if (config_.lifecycle_spans) {
    // Service time: start -> finish (only tasks that actually finished —
    // killed tasks never reach here, so crashes can't pollute service).
    spans_[jr.klass].service->record(sim::to_seconds(sim_.now() - rt.start));
  }
  user_usage_[jr.user_id] += core_seconds;
  jr.done[rt.task_index] = 1;
  --jr.remaining;
  if (tracer_ != nullptr) {
    tracer_->complete(rt.start, sim_.now() - rt.start, tn_.task, rt.machine,
                      static_cast<std::int64_t>(jr.job.id),
                      static_cast<std::int64_t>(rt.task_index));
  }

  // Unlock successors via the CSR list (O(out-degree)).
  for (std::uint32_t k = jr.succ_offsets[rt.task_index];
       k < jr.succ_offsets[rt.task_index + 1]; ++k) {
    const std::uint32_t i = jr.succ_targets[k];
    if (jr.done[i] != 0) continue;
    if (--jr.missing_deps[i] == 0) {
      // Rank 0 on requeue (matches pre-CSR behavior: HEFT ranks are
      // stamped at arrival only).
      enqueue_ready(jr, rt.job_slot, i, 0.0);
    }
  }
  if (jr.remaining == 0) {
    complete_job(rt.job_slot, /*abandoned=*/false);
  }
  record_series_point();
  kick();
  notify(EngineTransition::kTaskFinished, rt.machine);
}

void ExecutionEngine::on_machine_failed(infra::MachineId id) {
  // The machine has already dropped its allocations via Machine::fail().
  // Index-order scan is safe against removals: complete_job(abandoned)
  // only marks other running slots dead, which the live() check skips.
  std::int64_t killed_here = 0;
  for (std::uint32_t key = 0; key < running_.size(); ++key) {
    if (!running_.live(key) || running_[key].machine != id) continue;
    const RunningSlot rt = running_[key];
    running_.release(key);
    sim_.cancel(rt.completion);
    ctr_tasks_killed_->add();
    ++killed_here;

    if (!jobs_.live(rt.job_slot)) continue;  // job already completed/abandoned
    JobSlot& jr = jobs_[rt.job_slot];
    ++jr.failures;
    if (config_.retry_failed_tasks &&
        jr.retries[rt.task_index] < config_.max_retries) {
      ++jr.retries[rt.task_index];
      enqueue_ready(jr, rt.job_slot, rt.task_index, 0.0);
    } else {
      // Abandon the whole job: it can never finish.
      complete_job(rt.job_slot, /*abandoned=*/true);
    }
  }
  record_series_point();
  kick();
  if (tracer_ != nullptr) {
    tracer_->instant(sim_.now(), tn_.tasks_killed, id, killed_here);
  }
  notify(EngineTransition::kTasksKilled, id);
}

void ExecutionEngine::complete_job(std::uint32_t job_slot, bool abandoned) {
  JobSlot& jr = jobs_[job_slot];
  JobStats stats;
  stats.id = jr.job.id;
  stats.user = jr.job.user;
  stats.submit = jr.job.submit_time;
  stats.first_start = jr.started ? jr.first_start : sim_.now();
  stats.finish = sim_.now();
  stats.wait_seconds = sim::to_seconds(stats.first_start - stats.submit);
  stats.response_seconds = sim::to_seconds(stats.finish - stats.submit);
  stats.critical_path_seconds = jr.job.critical_path_seconds();
  stats.slowdown = stats.response_seconds /
                   std::max(stats.critical_path_seconds, 1e-6);
  stats.tasks = jr.job.tasks.size();
  stats.task_failures = jr.failures;
  stats.abandoned = abandoned;
  if (abandoned) {
    ctr_abandoned_->add();
  } else {
    ctr_completed_->add();
    h_job_wait_s_->record(stats.wait_seconds);
    h_job_response_s_->record(stats.response_seconds);
    h_job_slowdown_->record(stats.slowdown);
  }
  if (config_.lifecycle_spans) {
    // Per-class decomposition: an abandoned job records only how long it
    // occupied the system before abandonment — never to response/slowdown
    // (those histograms hold completed jobs only, like the legacy ones).
    SpanInstruments& sp = spans_[jr.klass];
    if (abandoned) {
      sp.abandon->record(stats.response_seconds);
    } else {
      sp.response->record(stats.response_seconds);
      sp.slowdown->record(stats.slowdown);
    }
  }
  if (slo_ != nullptr) {
    // An abandoned job is an infinitely-late sample: it counts against
    // every applicable objective and can never be "good".
    const double latency = abandoned
                               ? std::numeric_limits<double>::infinity()
                               : stats.response_seconds;
    for (std::size_t i : slo_by_class_[jr.klass]) {
      slo_->observe(i, stats.finish, latency);
    }
  }
  if (tracer_ != nullptr) {
    tracer_->complete(stats.submit, stats.finish - stats.submit,
                      abandoned ? tn_.job_abandoned : tn_.job, 0,
                      static_cast<std::int64_t>(stats.id),
                      static_cast<std::int64_t>(stats.tasks));
  }
  // mcs-lint: allow(H3) — one append per completed *job* (not per task);
  // job count is unknown under open arrivals, growth is amortized.
  completed_.push_back(std::move(stats));

  if (abandoned) {
    // Drop any still-queued/running work of this job.
    ready_.erase(std::remove_if(ready_.begin(), ready_.end(),
                                [&](const ReadyTask& t) {
                                  return t.job_slot == job_slot;
                                }),
                 ready_.end());
    for (std::uint32_t key = 0; key < running_.size(); ++key) {
      if (!running_.live(key) || running_[key].job_slot != job_slot) continue;
      const RunningSlot rt = running_[key];
      sim_.cancel(rt.completion);
      infra::Machine& m = dc_.machine(rt.machine);
      if (m.usable()) m.release(rt.held);
      running_.release(key);
    }
    jr.remaining = 0;
  }
  if (jr.job.placement.spread_limit > 0) --spread_jobs_live_;
  jr.zone_mask = nullptr;
  id_to_slot_.erase(jr.job.id);
  jobs_.release(job_slot);
  notify(abandoned ? EngineTransition::kJobAbandoned
                   : EngineTransition::kJobCompleted);
}

bool ExecutionEngine::all_done() const {
  return jobs_.empty() && ready_.empty() && running_.empty();
}

double ExecutionEngine::demand_cores() const {
  double cores = 0.0;
  for (const ReadyTask& t : ready_) cores += t.demand.cpu();
  running_.for_each([&](std::uint32_t, const RunningSlot& rt) {
    cores += rt.held.cpu();
  });
  return cores;
}

double ExecutionEngine::supply_cores() const {
  double cores = 0.0;
  const std::size_t machine_count = dc_.machine_count();
  const infra::Datacenter& dc = dc_;
  for (std::uint32_t id = 0; id < machine_count; ++id) {
    const infra::Machine& m = dc.machine(id);
    if (m.usable() && !is_draining(id)) cores += m.capacity().cpu();
  }
  return cores;
}

double ExecutionEngine::pending_work_core_seconds() const {
  double work = 0.0;
  jobs_.for_each([&](std::uint32_t, const JobSlot& jr) {
    for (std::size_t i = 0; i < jr.job.tasks.size(); ++i) {
      if (jr.done[i] == 0) {
        work += jr.job.tasks[i].work_seconds * jr.job.tasks[i].demand.cpu();
      }
    }
  });
  // Running tasks are already counted as not-done above; subtract the part
  // already executed (approximate by elapsed fraction).
  running_.for_each([&](std::uint32_t, const RunningSlot& rt) {
    const double elapsed = sim::to_seconds(sim_.now() - rt.start);
    work -= std::min(elapsed, rt.work_seconds) * rt.held.cpu();
  });
  return std::max(work, 0.0);
}

std::size_t ExecutionEngine::eligible_within(sim::SimTime window) const {
  std::size_t eligible = ready_.size();
  const sim::SimTime horizon = sim_.now() + window;
  // Successors of tasks that finish within the window, whose remaining
  // dependency count would drop to zero.
  jobs_.for_each([&](std::uint32_t job_slot, const JobSlot& jr) {
    // Count, per task, how many of its missing deps finish inside the window.
    for (std::size_t i = 0; i < jr.job.tasks.size(); ++i) {
      if (jr.done[i] != 0 || jr.missing_deps[i] == 0) continue;
      std::size_t resolving = 0;
      for (std::size_t d : jr.job.tasks[i].deps) {
        if (jr.done[d] != 0) continue;
        for (std::uint32_t key = 0; key < running_.size(); ++key) {
          if (!running_.live(key)) continue;
          const RunningSlot& rt = running_[key];
          if (rt.job_slot == job_slot && rt.task_index == d &&
              rt.expected_end <= horizon) {
            ++resolving;
            break;
          }
        }
      }
      if (resolving >= jr.missing_deps[i]) ++eligible;
    }
  });
  return eligible;
}

std::map<std::string, double> ExecutionEngine::user_usage() const {
  std::map<std::string, double> out;
  for (const auto& [name, uid] : user_ids_) out.emplace(name, user_usage_[uid]);
  return out;
}

SchedulerView ExecutionEngine::snapshot_view(
    std::vector<RunningView>& running_storage) const {
  SchedulerView view;
  view.now = sim_.now();
  view.ready = &ready_;
  const std::size_t machine_count = dc_.machine_count();
  const infra::Datacenter& dc = dc_;
  view.machines.reserve(machine_count);
  for (std::uint32_t id = 0; id < machine_count; ++id) {
    const infra::Machine& m = dc.machine(id);
    if (m.usable() && !is_draining(id)) view.machines.push_back(&m);
  }
  running_storage.clear();
  running_storage.reserve(running_.size());
  running_.for_each([&](std::uint32_t, const RunningSlot& rt) {
    running_storage.push_back(RunningView{rt.machine, rt.expected_end, rt.held});
  });
  view.running = &running_storage;
  view.user_usage = &user_usage_;
  view.placement = &config_.placement;
  return view;
}

void ExecutionEngine::record_series_point() {
  if (!config_.record_series) return;
  demand_.append(sim_.now(), demand_cores());
  supply_.append(sim_.now(), supply_cores());
}

RunResult summarize_run(const ExecutionEngine& engine,
                        const infra::Datacenter& dc) {
  RunResult result;
  result.jobs = engine.completed();
  if (result.jobs.empty()) return result;

  metrics::Accumulator slowdown, wait;
  sim::SimTime first_submit = sim::kTimeInfinity;
  sim::SimTime last_finish = 0;
  for (const JobStats& j : result.jobs) {
    if (j.abandoned) {
      ++result.abandoned;
      continue;
    }
    slowdown.add(j.slowdown);
    wait.add(j.wait_seconds);
    first_submit = std::min(first_submit, j.submit);
    last_finish = std::max(last_finish, j.finish);
  }
  result.mean_slowdown = slowdown.mean();
  result.p95_slowdown = slowdown.count() > 0 ? slowdown.quantile(0.95) : 0.0;
  result.mean_wait_seconds = wait.mean();
  if (last_finish > first_submit) {
    result.makespan_seconds = sim::to_seconds(last_finish - first_submit);
    const double capacity_cores = dc.total_capacity().cpu();
    if (capacity_cores > 0.0 && result.makespan_seconds > 0.0) {
      result.utilization = engine.busy_core_seconds() /
                           (capacity_cores * result.makespan_seconds);
    }
  }
  return result;
}

RunResult run_workload(infra::Datacenter& dc, std::vector<workload::Job> jobs,
                       std::unique_ptr<AllocationPolicy> policy,
                       EngineConfig config) {
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, std::move(policy), config);
  engine.submit_all(std::move(jobs));
  sim.run_until();
  return summarize_run(engine, dc);
}

}  // namespace mcs::sched
