// A multi-stage scheduling pipeline: the paper's envisioned "reference
// architecture for scheduling in datacenters" (§6.1, after Schopf's
// 11-step grid-scheduling abstraction [155]).
//
// Scheduling is decomposed into named, swappable stages; a complete
// scheduler is a pipeline of stages wrapped as an AllocationPolicy. The
// paper's conjecture — "this focus on specific stages ... facilitates new
// and competitive designs, and enables newcomers to understand the common
// structure of schedulers" — is realized by building the classic policies
// out of shared stages (see make_pipeline_policy and bench/exp_scheduling).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/callback.hpp"
#include "sched/allocation.hpp"

namespace mcs::sched {

/// Mutable per-task candidate set flowing through the pipeline: the
/// machines still in play and their accumulated scores.
struct CandidateSet {
  const ReadyTask* task = nullptr;
  std::vector<const infra::Machine*> machines;
  std::map<infra::MachineId, double> score;
  /// Free capacity per machine under this round's planned assignments.
  const std::map<infra::MachineId, infra::ResourceVector>* planned_free = nullptr;
};

/// One stage: filters candidates and/or adjusts scores.
class PipelineStage {
 public:
  virtual ~PipelineStage() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  virtual void apply(CandidateSet& c, const SchedulerView& view) = 0;
};

// ---- the stage library (Schopf steps in parentheses) -------------------------

/// (Step 2: resource filtering) Keeps machines whose *total* capacity can
/// ever host the task — static feasibility, incl. accelerators.
[[nodiscard]] std::unique_ptr<PipelineStage> stage_filter_capable();

/// (Step 3: availability) Keeps machines with room under planned free
/// capacity right now.
[[nodiscard]] std::unique_ptr<PipelineStage> stage_filter_available();

/// (Step 4: scoring) Adds speed_factor * weight to each machine's score
/// (heterogeneity-aware selection).
[[nodiscard]] std::unique_ptr<PipelineStage> stage_score_speed(double weight = 1.0);

/// (Step 4) Adds weight * free-core fraction — spreads load.
[[nodiscard]] std::unique_ptr<PipelineStage> stage_score_spread(double weight = 1.0);

/// (Step 4) Adds weight * used-core fraction — packs load for
/// consolidation / power (opposite of spread).
[[nodiscard]] std::unique_ptr<PipelineStage> stage_score_pack(double weight = 1.0);

/// (Step 5: advance reservation stub) Drops machines whose running tasks
/// all end later than `patience` — prefer machines freeing up soon.
[[nodiscard]] std::unique_ptr<PipelineStage> stage_prefer_draining_soon(
    sim::SimTime patience);

/// Task-ordering function used by the pipeline before placement (Schopf
/// step 1 lives at the queue level). An owning SBO callable (move-only):
/// the stock orderings are captureless and every stored one stays inline.
using TaskOrder = core::UniqueFunction<bool(const ReadyTask&, const ReadyTask&)>;
[[nodiscard]] TaskOrder order_fcfs();
[[nodiscard]] TaskOrder order_sjf();
[[nodiscard]] TaskOrder order_rank();  ///< HEFT upward rank, descending

/// A full scheduler assembled from stages. For each ready task (in `order`)
/// the stages run left to right; the surviving machine with the highest
/// score wins (Schopf steps 6-7: selection and submission).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_pipeline_policy(
    std::string name, TaskOrder order,
    std::vector<std::unique_ptr<PipelineStage>> stages);

/// The stock pipelines used by the benches (each mirrors a classic policy,
/// demonstrating the decomposition claim).
[[nodiscard]] std::unique_ptr<AllocationPolicy> pipeline_fcfs_firstfit();
[[nodiscard]] std::unique_ptr<AllocationPolicy> pipeline_sjf_fastest();
[[nodiscard]] std::unique_ptr<AllocationPolicy> pipeline_consolidating();

}  // namespace mcs::sched
