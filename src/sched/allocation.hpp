// Allocation policies: which ready task goes to which machine (C7).
//
// The paper frames datacenter scheduling as a *dual problem*: provisioning
// (src/sched/provisioning.hpp) acquires resources on the user's behalf,
// allocation (this file) places tasks on provisioned resources. The policy
// set spans the classic families the paper's C7 cites "hundreds of
// approaches" from: queue-ordering (FCFS/SJF), backfilling (EASY),
// fairness (fair-share), heterogeneity-aware list scheduling (HEFT), and
// BoT heuristics (min-min / max-min).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "infra/machine.hpp"
#include "sim/simulator.hpp"
#include "workload/task.hpp"

namespace mcs::sched {

/// Node-scoring policy for the placement pass (lowest score wins; ties
/// break to the lowest machine id). The YT/YP EPodNodeScoreType lineage —
/// see sched/scoring.hpp for the scoring machinery and DESIGN.md §13 for
/// the math.
enum class NodeScorePolicy : std::uint8_t {
  kNone = 0,           ///< legacy Fit heuristic only
  kRandomHash,         ///< salted hash of (job, machine): deterministic spread
  kFreeShareVariance,  ///< balance post-placement free cpu/mem shares
  kSquaredMinDelta,    ///< pack: minimize squared min free cpu/mem share
};

/// Placement configuration handed to policies through the SchedulerView
/// (and to the engine through EngineConfig).
struct PlacementContext {
  NodeScorePolicy score = NodeScorePolicy::kNone;
  /// Hash salt for kRandomHash (varies the spread pattern per experiment).
  std::uint64_t salt = 0;
};

/// One row of the engine-built anti-affinity table: how many tasks of the
/// job in `job_slot` currently run on `machine`. Sorted by (job_slot,
/// machine); only jobs with a spread limit appear.
struct AaCount {
  std::uint32_t job_slot = 0;
  std::uint32_t machine = 0;
  std::uint32_t count = 0;
};

/// A task eligible to run now (dependencies satisfied).
struct ReadyTask {
  workload::JobId job = 0;
  std::size_t task_index = 0;
  double work_seconds = 1.0;
  infra::ResourceVector demand;
  sim::SimTime job_submit = 0;
  sim::SimTime became_ready = 0;
  /// Interned submitter id (dense index into SchedulerView::user_usage);
  /// the engine resolves the user string once at submit, never per round.
  std::uint32_t user_id = 0;
  /// Engine-internal job slot (stable for the job's lifetime; policies
  /// should treat it as opaque).
  std::uint32_t job_slot = 0;
  /// HEFT upward rank (critical-path distance to the job's exit, in
  /// reference seconds); 0 for bag tasks.
  double rank = 0.0;
  /// Absolute deadline derived from the job's latency SLO (C3: NFRs reach
  /// the scheduler); kTimeInfinity when the job has none.
  sim::SimTime deadline = sim::kTimeInfinity;
  /// Zone label filter: bitset over machine ids this task may run on
  /// (borrowed from the engine's LabelFilterCache; valid for the round).
  /// Null = unconstrained.
  const std::uint64_t* zone_mask = nullptr;
  std::size_t zone_words = 0;
  /// Anti-affinity: max concurrently-running tasks of this job per machine;
  /// 0 = unlimited.
  std::uint32_t spread_limit = 0;
};

/// A task currently executing (exposed so backfilling policies can reason
/// about when capacity frees up).
struct RunningView {
  infra::MachineId machine = 0;
  sim::SimTime expected_end = 0;
  infra::ResourceVector demand;
};

/// Read-only snapshot handed to allocation policies each scheduling round.
struct SchedulerView {
  sim::SimTime now = 0;
  const std::vector<ReadyTask>* ready = nullptr;
  std::vector<const infra::Machine*> machines;  ///< usable, non-draining
  const std::vector<RunningView>* running = nullptr;
  /// Consumed core-seconds per user, indexed by ReadyTask::user_id
  /// (fair-share input).
  const std::vector<double>* user_usage = nullptr;
  /// Scoring configuration; null or score == kNone means the legacy Fit
  /// heuristic (bit-identical to the pre-scoring engine).
  const PlacementContext* placement = nullptr;
  /// Anti-affinity running counts, sorted by (job_slot, machine); null when
  /// no live job carries a spread limit (the common case — building the
  /// table costs nothing then).
  const std::vector<AaCount>* aa = nullptr;
};

/// One placement decision: ready-queue index -> machine.
struct Assignment {
  std::size_t ready_index = 0;
  infra::MachineId machine = 0;
};

/// Strategy interface. `decide` proposes a batch of assignments; the engine
/// applies the feasible prefix of each one (re-validating against live
/// state) and calls again while progress is made, so policies may be
/// stateless and straightforward.
class AllocationPolicy {
 public:
  virtual ~AllocationPolicy() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual std::vector<Assignment> decide(const SchedulerView& view) = 0;
};

/// Machine-choice heuristic shared by the ordering policies.
enum class Fit {
  kFirst,    ///< first machine with room
  kBest,     ///< least leftover cores (packs tightly)
  kWorst,    ///< most leftover cores (spreads)
  kFastest,  ///< highest speed factor with room
};

/// FCFS: tasks in job-arrival order (then task index).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_fcfs(Fit fit = Fit::kFirst);

/// SJF: shortest task first (work_seconds ascending).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_sjf(Fit fit = Fit::kFirst);

/// LJF: longest task first.
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_ljf(Fit fit = Fit::kFirst);

/// Fair-share: tasks of the least-served user first (by consumed
/// core-seconds), FCFS within a user.
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_fair_share(
    Fit fit = Fit::kFirst);

/// EDF: earliest job deadline first (jobs without a latency SLO sort
/// last); the deadline-aware policy of the paper's fine-grained-NFR vision
/// (C3 — "expressing detailed NFRs for each unit of work").
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_edf(Fit fit = Fit::kFirst);

/// EASY backfilling: FCFS head gets a reservation at the earliest time
/// enough capacity frees up; later tasks may jump the queue iff their
/// estimated completion does not push past the reservation (or they avoid
/// the reserved machine).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_easy_backfilling();

/// Conservative backfilling: *every* queued task that cannot start gets a
/// reservation (not just the head); a later task backfills only when its
/// estimated completion precedes every reservation on its machine — no
/// queued task is ever delayed. Trades throughput for predictability
/// (the classic EASY/conservative pair of the backfilling literature).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_conservative_backfilling();

/// HEFT-style list scheduling: highest upward-rank first, placed on the
/// machine with the earliest estimated finish time (speed-aware — the
/// heterogeneity-honouring policy).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_heft();

/// Min-min: repeatedly assign the task with the smallest minimum estimated
/// completion time (favours short tasks; classic BoT heuristic).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_min_min();

/// Max-min: like min-min but schedules the task with the *largest* minimum
/// completion time first (gets big rocks in early).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_max_min();

/// Random placement (the baseline of last resort).
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_random(std::uint64_t seed);

/// All policy factory names (for sweeps); `make_policy` builds by name.
[[nodiscard]] std::vector<std::string> all_policy_names();
[[nodiscard]] std::unique_ptr<AllocationPolicy> make_policy(
    const std::string& name);

}  // namespace mcs::sched
