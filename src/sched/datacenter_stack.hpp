// The Fig. 3 reference architecture for datacenters, made executable.
//
// Paper §6.1: five core layers — Front-end (application-level
// functionality), Back-end (task/resource/service management on behalf of
// the application), Resources (management on behalf of the operator),
// Operations Service (distributed-OS-style basic services), Infrastructure
// (physical and virtual resources) — plus a sixth, DevOps (monitoring,
// logging, benchmarking), orthogonal to the customer-facing service.
//
// Each layer is a real object with its own responsibilities and activity
// counters; bench/fig3_datacenter drives a workload through the stack and
// prints per-layer accounting, so the figure is regenerated from behaviour
// rather than redrawn.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/callback.hpp"
#include "metrics/elasticity.hpp"
#include "sched/engine.hpp"
#include "sched/provisioning.hpp"

namespace mcs::sched {

/// Operations Service layer: monitoring and logging primitives that the
/// other layers call into (the "distributed operating system" services).
class OperationsService {
 public:
  explicit OperationsService(sim::Simulator& sim) : sim_(sim) {}

  /// Periodically samples a gauge into a named series. The probe is a
  /// move-only core::UniqueFunction: it is stored once in the sampling
  /// loop's shared state instead of being copied into every event.
  void monitor(const std::string& gauge, core::UniqueFunction<double()> probe,
               sim::SimTime interval, sim::SimTime until);

  void log(const std::string& line);

  [[nodiscard]] const metrics::StepSeries* series(const std::string& gauge) const;
  [[nodiscard]] std::size_t log_lines() const { return log_count_; }
  [[nodiscard]] std::size_t samples_taken() const { return samples_; }

 private:
  struct MonitorLoop;
  void monitor_tick(const std::shared_ptr<MonitorLoop>& loop);

  sim::Simulator& sim_;
  std::map<std::string, metrics::StepSeries> series_;
  std::size_t log_count_ = 0;
  std::size_t samples_ = 0;
};

/// Activity counters reported per layer by the Fig. 3 bench.
struct LayerActivity {
  std::string layer;
  std::string role;
  std::uint64_t operations = 0;
};

/// The executable stack. Construction wires the layers bottom-up; submit()
/// enters at the Front-end and flows down.
class DatacenterStack {
 public:
  struct Config {
    std::size_t initial_machines = 8;
    ProvisioningConfig provisioning;
    EngineConfig engine;
    sim::SimTime monitor_interval = 30 * sim::kSecond;
  };

  DatacenterStack(sim::Simulator& sim, infra::Datacenter& dc,
                  std::unique_ptr<AllocationPolicy> policy, Config config);
  DatacenterStack(sim::Simulator& sim, infra::Datacenter& dc,
                  std::unique_ptr<AllocationPolicy> policy)
      : DatacenterStack(sim, dc, std::move(policy), Config{}) {}

  /// Front-end entry point: accepts an application job. Counts as one
  /// front-end operation; hands to the back-end.
  void submit(workload::Job job);

  /// Resources-layer entry point: the operator (or an autoscaler) resizes
  /// the machine pool.
  void resize_pool(std::size_t machines);

  /// DevOps: starts periodic monitoring of utilization/demand gauges.
  void start_monitoring(sim::SimTime until);

  [[nodiscard]] ExecutionEngine& backend() { return *engine_; }
  [[nodiscard]] ProvisionedPool& resources() { return *pool_; }
  [[nodiscard]] OperationsService& operations() { return *ops_; }

  /// Per-layer activity accounting (Fig. 3 regeneration).
  [[nodiscard]] std::vector<LayerActivity> activity() const;

 private:
  sim::Simulator& sim_;
  infra::Datacenter& dc_;
  std::unique_ptr<OperationsService> ops_;     // layer 2: operations service
  std::unique_ptr<ExecutionEngine> engine_;    // layer 4: back-end
  std::unique_ptr<ProvisionedPool> pool_;      // layer 3: resources
  std::uint64_t frontend_ops_ = 0;             // layer 5: front-end
  std::uint64_t resources_ops_ = 0;
  std::uint64_t devops_ops_ = 0;               // layer 6: devops
  sim::SimTime monitor_interval_ = 30 * sim::kSecond;
};

}  // namespace mcs::sched
