#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::graph {

Graph::Graph(VertexId vertex_count, const std::vector<Edge>& edges,
             bool undirected)
    : n_(vertex_count), undirected_(undirected) {
  std::vector<std::size_t> degree(n_ + 1, 0);
  for (const Edge& e : edges) {
    if (e.src >= n_ || e.dst >= n_) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    ++degree[e.src + 1];
    if (undirected_) ++degree[e.dst + 1];
  }
  offsets_.resize(n_ + 1, 0);
  for (VertexId v = 0; v < n_; ++v) offsets_[v + 1] = offsets_[v] + degree[v + 1];

  adjacency_.resize(offsets_[n_]);
  edge_weights_.resize(offsets_[n_]);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : edges) {
    adjacency_[cursor[e.src]] = e.dst;
    edge_weights_[cursor[e.src]] = e.weight;
    ++cursor[e.src];
    if (undirected_) {
      adjacency_[cursor[e.dst]] = e.src;
      edge_weights_[cursor[e.dst]] = e.weight;
      ++cursor[e.dst];
    }
  }
}

std::span<const VertexId> Graph::neighbors(VertexId v) const {
  if (v >= n_) throw std::out_of_range("Graph::neighbors");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::span<const double> Graph::weights(VertexId v) const {
  if (v >= n_) throw std::out_of_range("Graph::weights");
  return {edge_weights_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t Graph::out_degree(VertexId v) const {
  if (v >= n_) throw std::out_of_range("Graph::out_degree");
  return offsets_[v + 1] - offsets_[v];
}

double Graph::mean_degree() const {
  return n_ == 0 ? 0.0
                 : static_cast<double>(adjacency_.size()) /
                       static_cast<double>(n_);
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (VertexId v = 0; v < n_; ++v) best = std::max(best, out_degree(v));
  return best;
}

}  // namespace mcs::graph
