#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::graph {

Graph::Graph(VertexId vertex_count, const std::vector<Edge>& edges,
             bool undirected)
    : n_(vertex_count), undirected_(undirected) {
  // Counting sort with no scratch arrays: degrees are counted directly into
  // offsets_, the fill phase advances offsets_ in place (acting as the
  // cursor array), and one backward shift restores the CSR invariant.
  offsets_.assign(n_ + 1, 0);
  for (const Edge& e : edges) {
    if (e.src >= n_ || e.dst >= n_) {
      throw std::invalid_argument("Graph: edge endpoint out of range");
    }
    ++offsets_[e.src + 1];
    if (undirected_) ++offsets_[e.dst + 1];
  }
  for (VertexId v = 0; v < n_; ++v) offsets_[v + 1] += offsets_[v];

  adjacency_.resize(offsets_[n_]);
  edge_weights_.resize(offsets_[n_]);
  auto place = [this](VertexId from, VertexId to, double w) {
    const std::size_t at = offsets_[from]++;
    adjacency_[at] = to;
    edge_weights_[at] = w;
  };
  for (const Edge& e : edges) {
    place(e.src, e.dst, e.weight);
    if (undirected_) place(e.dst, e.src, e.weight);
  }
  // offsets_[v] now holds the END of v's range; shift right to restore
  // offsets_[v] = start of v's range.
  for (VertexId v = n_; v > 0; --v) offsets_[v] = offsets_[v - 1];
  offsets_[0] = 0;
}

std::span<const VertexId> Graph::neighbors(VertexId v) const {
  if (v >= n_) throw std::out_of_range("Graph::neighbors");
  return {adjacency_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::span<const double> Graph::weights(VertexId v) const {
  if (v >= n_) throw std::out_of_range("Graph::weights");
  return {edge_weights_.data() + offsets_[v], offsets_[v + 1] - offsets_[v]};
}

std::size_t Graph::out_degree(VertexId v) const {
  if (v >= n_) throw std::out_of_range("Graph::out_degree");
  return offsets_[v + 1] - offsets_[v];
}

double Graph::mean_degree() const {
  return n_ == 0 ? 0.0
                 : static_cast<double>(adjacency_.size()) /
                       static_cast<double>(n_);
}

std::size_t Graph::max_degree() const {
  std::size_t best = 0;
  for (VertexId v = 0; v < n_; ++v) best = std::max(best, out_degree(v));
  return best;
}

}  // namespace mcs::graph
