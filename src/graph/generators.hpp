// Synthetic graph generators — the dataset substitute for Graphalytics
// (DESIGN.md §5): Erdős–Rényi (uniform), Barabási–Albert (preferential
// attachment, heavy-tailed degrees like social networks), R-MAT/Kronecker
// (the Graph500/LDBC-Datagen family), and 2D grids (meshes / road-like).
#pragma once

#include "graph/graph.hpp"
#include "sim/random.hpp"

namespace mcs::graph {

/// G(n, m): `edge_count` uniformly random edges (no self loops).
[[nodiscard]] Graph erdos_renyi(VertexId n, std::size_t edge_count,
                                sim::Rng& rng, bool undirected = true);

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `attach` existing vertices with probability proportional to degree.
[[nodiscard]] Graph barabasi_albert(VertexId n, std::size_t attach,
                                    sim::Rng& rng);

/// R-MAT with 2^scale vertices and edge_factor * 2^scale edges; default
/// partition probabilities are the Graph500 values (0.57/0.19/0.19/0.05).
struct RmatConfig {
  double a = 0.57, b = 0.19, c = 0.19, d = 0.05;
  bool undirected = true;
};
[[nodiscard]] Graph rmat(unsigned scale, std::size_t edge_factor,
                         sim::Rng& rng, RmatConfig config = {});

/// rows x cols 4-neighbour grid (undirected).
[[nodiscard]] Graph grid2d(VertexId rows, VertexId cols);

/// Uniform random edge weights in [lo, hi) applied to a fresh edge list
/// before building (convenience used by SSSP benches).
[[nodiscard]] std::vector<Edge> random_weights(std::vector<Edge> edges,
                                               double lo, double hi,
                                               sim::Rng& rng);

}  // namespace mcs::graph
