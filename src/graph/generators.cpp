#include "graph/generators.hpp"

#include <stdexcept>

namespace mcs::graph {

Graph erdos_renyi(VertexId n, std::size_t edge_count, sim::Rng& rng,
                  bool undirected) {
  if (n < 2) throw std::invalid_argument("erdos_renyi: n < 2");
  std::vector<Edge> edges;
  edges.reserve(edge_count);
  for (std::size_t i = 0; i < edge_count; ++i) {
    VertexId u = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    VertexId v = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    while (v == u) v = static_cast<VertexId>(rng.uniform_int(0, n - 1));
    edges.push_back(Edge{u, v, 1.0});
  }
  return Graph(n, edges, undirected);
}

Graph barabasi_albert(VertexId n, std::size_t attach, sim::Rng& rng) {
  if (n < 2 || attach == 0) {
    throw std::invalid_argument("barabasi_albert: bad parameters");
  }
  // Repeated-endpoint trick: sampling a uniform position in the endpoint
  // log is sampling proportional to degree.
  std::vector<VertexId> endpoint_log;
  std::vector<Edge> edges;
  // Seed: a small clique over min(attach+1, n) vertices.
  const VertexId seed = static_cast<VertexId>(
      std::min<std::size_t>(attach + 1, n));
  for (VertexId u = 0; u < seed; ++u) {
    for (VertexId v = u + 1; v < seed; ++v) {
      edges.push_back(Edge{u, v, 1.0});
      endpoint_log.push_back(u);
      endpoint_log.push_back(v);
    }
  }
  for (VertexId v = seed; v < n; ++v) {
    for (std::size_t k = 0; k < attach; ++k) {
      const std::size_t pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(endpoint_log.size()) - 1));
      const VertexId target = endpoint_log[pick];
      edges.push_back(Edge{v, target, 1.0});
      endpoint_log.push_back(v);
      endpoint_log.push_back(target);
    }
  }
  return Graph(n, edges, /*undirected=*/true);
}

Graph rmat(unsigned scale, std::size_t edge_factor, sim::Rng& rng,
           RmatConfig config) {
  if (scale == 0 || scale > 28) throw std::invalid_argument("rmat: scale");
  const double sum = config.a + config.b + config.c + config.d;
  if (sum <= 0.99 || sum >= 1.01) {
    throw std::invalid_argument("rmat: probabilities must sum to 1");
  }
  const VertexId n = static_cast<VertexId>(1u << scale);
  const std::size_t m = edge_factor << scale;
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    VertexId u = 0, v = 0;
    for (unsigned bit = 0; bit < scale; ++bit) {
      const double r = rng.uniform();
      unsigned qu = 0, qv = 0;
      if (r < config.a) {
        // top-left
      } else if (r < config.a + config.b) {
        qv = 1;
      } else if (r < config.a + config.b + config.c) {
        qu = 1;
      } else {
        qu = 1;
        qv = 1;
      }
      u = (u << 1) | qu;
      v = (v << 1) | qv;
    }
    edges.push_back(Edge{u, v, 1.0});
  }
  return Graph(n, edges, config.undirected);
}

Graph grid2d(VertexId rows, VertexId cols) {
  if (rows == 0 || cols == 0) throw std::invalid_argument("grid2d: empty");
  const VertexId n = rows * cols;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(2) * n);
  auto at = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) edges.push_back(Edge{at(r, c), at(r, c + 1), 1.0});
      if (r + 1 < rows) edges.push_back(Edge{at(r, c), at(r + 1, c), 1.0});
    }
  }
  return Graph(n, edges, /*undirected=*/true);
}

std::vector<Edge> random_weights(std::vector<Edge> edges, double lo, double hi,
                                 sim::Rng& rng) {
  for (Edge& e : edges) e.weight = rng.uniform(lo, hi);
  return edges;
}

}  // namespace mcs::graph
