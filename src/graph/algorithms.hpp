// The six LDBC Graphalytics kernels [42] — sequential reference
// implementations. bigdata/pregel.hpp runs four of them as BSP programs on
// the simulated cluster; tests cross-check the two against each other.
//
//   BFS  — breadth-first search depth per vertex
//   PR   — PageRank
//   WCC  — weakly connected components
//   CDLP — community detection by label propagation
//   LCC  — local clustering coefficient
//   SSSP — single-source shortest paths (weighted, Dijkstra)
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace mcs::graph {

constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();
constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// BFS depth from `source` (kUnreachable when not reached).
[[nodiscard]] std::vector<std::uint32_t> bfs(const Graph& g, VertexId source);

/// PageRank with uniform teleport; dangling mass is redistributed
/// uniformly (Graphalytics semantics). Returns per-vertex rank summing ~1.
[[nodiscard]] std::vector<double> pagerank(const Graph& g,
                                           std::size_t iterations = 20,
                                           double damping = 0.85);

/// Weakly connected components: smallest reachable vertex id as label.
/// Directed graphs are treated as undirected (hence "weakly").
[[nodiscard]] std::vector<VertexId> wcc(const Graph& g);

/// Community detection by label propagation (synchronous, Graphalytics
/// rules: adopt the smallest label among the most frequent).
[[nodiscard]] std::vector<VertexId> cdlp(const Graph& g,
                                         std::size_t iterations = 10);

/// Local clustering coefficient per vertex.
[[nodiscard]] std::vector<double> lcc(const Graph& g);

/// Dijkstra single-source shortest paths over edge weights.
[[nodiscard]] std::vector<double> sssp(const Graph& g, VertexId source);

/// Names of the six kernels in canonical order.
[[nodiscard]] std::vector<std::string> graphalytics_kernels();

}  // namespace mcs::graph
