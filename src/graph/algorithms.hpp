// The six LDBC Graphalytics kernels [42] — sequential reference
// implementations. bigdata/pregel.hpp runs four of them as BSP programs on
// the simulated cluster; tests cross-check the two against each other.
//
//   BFS  — breadth-first search depth per vertex
//   PR   — PageRank
//   WCC  — weakly connected components
//   CDLP — community detection by label propagation
//   LCC  — local clustering coefficient
//   SSSP — single-source shortest paths (weighted, Dijkstra)
//
// The *_parallel / *_batch variants run on a parallel::ThreadPool and are
// BIT-IDENTICAL to the sequential reference at any thread count: chunk
// boundaries are a pure function of the graph, reductions replay the
// sequential floating-point association order (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/thread_pool.hpp"

namespace mcs::graph {

constexpr std::uint32_t kUnreachable = std::numeric_limits<std::uint32_t>::max();
constexpr double kInfDistance = std::numeric_limits<double>::infinity();

/// BFS depth from `source` (kUnreachable when not reached).
[[nodiscard]] std::vector<std::uint32_t> bfs(const Graph& g, VertexId source);

/// PageRank with uniform teleport; dangling mass is redistributed
/// uniformly (Graphalytics semantics). Returns per-vertex rank summing ~1.
[[nodiscard]] std::vector<double> pagerank(const Graph& g,
                                           std::size_t iterations = 20,
                                           double damping = 0.85);

/// Weakly connected components: smallest reachable vertex id as label.
/// Directed graphs are treated as undirected (hence "weakly").
[[nodiscard]] std::vector<VertexId> wcc(const Graph& g);

/// Community detection by label propagation (synchronous, Graphalytics
/// rules: adopt the smallest label among the most frequent).
[[nodiscard]] std::vector<VertexId> cdlp(const Graph& g,
                                         std::size_t iterations = 10);

/// Local clustering coefficient per vertex.
[[nodiscard]] std::vector<double> lcc(const Graph& g);

/// Dijkstra single-source shortest paths over edge weights.
[[nodiscard]] std::vector<double> sssp(const Graph& g, VertexId source);

// ---- deterministic parallel kernels -----------------------------------------
// Each returns exactly the bytes the sequential kernel above returns, for
// every pool size (asserted by graph_test at 1, 2, and 8 threads).

/// Parallel PageRank: pull-based over the in-neighbor CSR (built once,
/// stable order), which replays the sequential push's accumulation order
/// per vertex; the dangling-mass sum is folded sequentially in vertex
/// order. Bit-identical to pagerank().
[[nodiscard]] std::vector<double> pagerank_parallel(
    const Graph& g, parallel::ThreadPool& pool, std::size_t iterations = 20,
    double damping = 0.85);

/// Parallel WCC: deterministic min-label propagation with pointer jumping
/// (integer lattice — no rounding concerns). Converges to the canonical
/// smallest-member label, i.e. exactly wcc()'s output.
[[nodiscard]] std::vector<VertexId> wcc_parallel(const Graph& g,
                                                 parallel::ThreadPool& pool);

/// Parallel LCC: per-vertex coefficients are independent; each is computed
/// by the same arithmetic as lcc().
[[nodiscard]] std::vector<double> lcc_parallel(const Graph& g,
                                               parallel::ThreadPool& pool);

/// Batched per-source BFS: one sequential bfs() per source, sources
/// distributed over the pool. results[i] == bfs(g, sources[i]).
[[nodiscard]] std::vector<std::vector<std::uint32_t>> bfs_batch(
    const Graph& g, const std::vector<VertexId>& sources,
    parallel::ThreadPool& pool);

/// Batched per-source Dijkstra. results[i] == sssp(g, sources[i]).
[[nodiscard]] std::vector<std::vector<double>> sssp_batch(
    const Graph& g, const std::vector<VertexId>& sources,
    parallel::ThreadPool& pool);

/// Names of the six kernels in canonical order.
[[nodiscard]] std::vector<std::string> graphalytics_kernels();

}  // namespace mcs::graph
