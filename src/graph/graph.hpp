// Graph substrate for §6.6 "Generalized Graph Processing" and the
// Graphalytics reproduction (C16, [42]).
//
// Storage is CSR (compressed sparse row): cache-friendly, and the layout
// every distributed graph engine partition ultimately uses. Graphs may be
// directed or undirected (undirected stores both arcs); weights are
// optional and parallel to the adjacency array.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace mcs::graph {

using VertexId = std::uint32_t;

struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;
};

class Graph {
 public:
  /// Builds a CSR graph from an edge list. Self-loops are kept; duplicate
  /// edges are kept (multi-graph semantics, as R-MAT generators produce).
  /// When `undirected`, each edge is inserted in both directions.
  Graph(VertexId vertex_count, const std::vector<Edge>& edges,
        bool undirected = false);

  [[nodiscard]] VertexId vertex_count() const { return n_; }
  /// Number of stored arcs (2x input edges for undirected graphs).
  [[nodiscard]] std::size_t arc_count() const { return adjacency_.size(); }
  [[nodiscard]] bool undirected() const { return undirected_; }

  [[nodiscard]] std::span<const VertexId> neighbors(VertexId v) const;
  [[nodiscard]] std::span<const double> weights(VertexId v) const;
  [[nodiscard]] std::size_t out_degree(VertexId v) const;

  /// Degree statistics (on stored arcs).
  [[nodiscard]] double mean_degree() const;
  [[nodiscard]] std::size_t max_degree() const;

  /// CSR internals (exposed for the Pregel partitioner).
  [[nodiscard]] const std::vector<std::size_t>& offsets() const { return offsets_; }
  [[nodiscard]] const std::vector<VertexId>& adjacency() const { return adjacency_; }

 private:
  VertexId n_;
  bool undirected_;
  std::vector<std::size_t> offsets_;   // n+1
  std::vector<VertexId> adjacency_;
  std::vector<double> edge_weights_;   // parallel to adjacency_
};

}  // namespace mcs::graph
