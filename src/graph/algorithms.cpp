#include "graph/algorithms.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <string>

namespace mcs::graph {

std::vector<std::uint32_t> bfs(const Graph& g, VertexId source) {
  std::vector<std::uint32_t> depth(g.vertex_count(), kUnreachable);
  if (source >= g.vertex_count()) return depth;
  std::queue<VertexId> frontier;
  depth[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (VertexId w : g.neighbors(v)) {
      if (depth[w] == kUnreachable) {
        depth[w] = depth[v] + 1;
        frontier.push(w);
      }
    }
  }
  return depth;
}

std::vector<double> pagerank(const Graph& g, std::size_t iterations,
                             double damping) {
  const auto n = static_cast<double>(g.vertex_count());
  if (g.vertex_count() == 0) return {};
  std::vector<double> rank(g.vertex_count(), 1.0 / n);
  std::vector<double> next(g.vertex_count(), 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      const auto deg = g.out_degree(v);
      if (deg == 0) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(deg);
      for (VertexId w : g.neighbors(v)) next[w] += share;
    }
    const double base = (1.0 - damping) / n + damping * dangling / n;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      next[v] = base + damping * next[v];
    }
    // Note the dangling redistribution is folded into base (damped).
    rank.swap(next);
  }
  return rank;
}

std::vector<VertexId> wcc(const Graph& g) {
  // Union-find with path halving; directed arcs treated symmetrically.
  std::vector<VertexId> parent(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) parent[v] = v;
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      VertexId a = find(v), b = find(w);
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      parent[b] = a;  // smaller id wins -> canonical labels
    }
  }
  std::vector<VertexId> label(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) label[v] = find(v);
  return label;
}

std::vector<VertexId> cdlp(const Graph& g, std::size_t iterations) {
  std::vector<VertexId> label(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) label[v] = v;
  std::vector<VertexId> next(g.vertex_count());
  std::map<VertexId, std::size_t> freq;
  for (std::size_t it = 0; it < iterations; ++it) {
    bool changed = false;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) {
        next[v] = label[v];
        continue;
      }
      freq.clear();
      for (VertexId w : nbrs) ++freq[label[w]];
      // Most frequent label; ties -> smallest label (Graphalytics rule).
      VertexId best = label[v];
      std::size_t best_count = 0;
      for (const auto& [lab, count] : freq) {
        if (count > best_count) {  // map iterates ascending: first max wins
          best = lab;
          best_count = count;
        }
      }
      next[v] = best;
      changed = changed || next[v] != label[v];
    }
    label.swap(next);
    if (!changed) break;
  }
  return label;
}

std::vector<double> lcc(const Graph& g) {
  std::vector<double> coeff(g.vertex_count(), 0.0);
  // Simple-graph semantics even on multigraphs (R-MAT/BA generators emit
  // duplicate edges): every neighbourhood is deduplicated and self loops
  // are dropped before counting.
  auto unique_neighbors = [&](VertexId u) {
    const auto nbrs = g.neighbors(u);
    std::vector<VertexId> set(nbrs.begin(), nbrs.end());
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    set.erase(std::remove(set.begin(), set.end(), u), set.end());
    return set;
  };
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    const std::vector<VertexId> set = unique_neighbors(v);
    const std::size_t d = set.size();
    if (d < 2) continue;
    std::size_t links = 0;
    for (VertexId w : set) {
      for (VertexId x : unique_neighbors(w)) {
        if (x == v) continue;
        if (std::binary_search(set.begin(), set.end(), x)) ++links;
      }
    }
    // For undirected storage each triangle edge is seen twice (w->x and
    // x->w); normalize by the full ordered-pair count d*(d-1).
    coeff[v] = static_cast<double>(links) /
               (static_cast<double>(d) * static_cast<double>(d - 1));
  }
  return coeff;
}

std::vector<double> sssp(const Graph& g, VertexId source) {
  std::vector<double> dist(g.vertex_count(), kInfDistance);
  if (source >= g.vertex_count()) return dist;
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double nd = d + ws[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        heap.emplace(nd, nbrs[i]);
      }
    }
  }
  return dist;
}

std::vector<std::string> graphalytics_kernels() {
  return {"BFS", "PR", "WCC", "CDLP", "LCC", "SSSP"};
}

}  // namespace mcs::graph
