#include "graph/algorithms.hpp"

#include <algorithm>
#include <map>
#include <queue>
#include <string>

namespace mcs::graph {

std::vector<std::uint32_t> bfs(const Graph& g, VertexId source) {
  std::vector<std::uint32_t> depth(g.vertex_count(), kUnreachable);
  if (source >= g.vertex_count()) return depth;
  std::queue<VertexId> frontier;
  depth[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const VertexId v = frontier.front();
    frontier.pop();
    for (VertexId w : g.neighbors(v)) {
      if (depth[w] == kUnreachable) {
        depth[w] = depth[v] + 1;
        frontier.push(w);
      }
    }
  }
  return depth;
}

std::vector<double> pagerank(const Graph& g, std::size_t iterations,
                             double damping) {
  const auto n = static_cast<double>(g.vertex_count());
  if (g.vertex_count() == 0) return {};
  std::vector<double> rank(g.vertex_count(), 1.0 / n);
  std::vector<double> next(g.vertex_count(), 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    std::fill(next.begin(), next.end(), 0.0);
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      const auto deg = g.out_degree(v);
      if (deg == 0) {
        dangling += rank[v];
        continue;
      }
      const double share = rank[v] / static_cast<double>(deg);
      for (VertexId w : g.neighbors(v)) next[w] += share;
    }
    const double base = (1.0 - damping) / n + damping * dangling / n;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      next[v] = base + damping * next[v];
    }
    // Note the dangling redistribution is folded into base (damped).
    rank.swap(next);
  }
  return rank;
}

std::vector<VertexId> wcc(const Graph& g) {
  // Union-find with path halving; directed arcs treated symmetrically.
  std::vector<VertexId> parent(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) parent[v] = v;
  auto find = [&](VertexId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    for (VertexId w : g.neighbors(v)) {
      VertexId a = find(v), b = find(w);
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      parent[b] = a;  // smaller id wins -> canonical labels
    }
  }
  std::vector<VertexId> label(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) label[v] = find(v);
  return label;
}

std::vector<VertexId> cdlp(const Graph& g, std::size_t iterations) {
  std::vector<VertexId> label(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) label[v] = v;
  std::vector<VertexId> next(g.vertex_count());
  std::map<VertexId, std::size_t> freq;
  for (std::size_t it = 0; it < iterations; ++it) {
    bool changed = false;
    for (VertexId v = 0; v < g.vertex_count(); ++v) {
      const auto nbrs = g.neighbors(v);
      if (nbrs.empty()) {
        next[v] = label[v];
        continue;
      }
      freq.clear();
      for (VertexId w : nbrs) ++freq[label[w]];
      // Most frequent label; ties -> smallest label (Graphalytics rule).
      VertexId best = label[v];
      std::size_t best_count = 0;
      for (const auto& [lab, count] : freq) {
        if (count > best_count) {  // map iterates ascending: first max wins
          best = lab;
          best_count = count;
        }
      }
      next[v] = best;
      changed = changed || next[v] != label[v];
    }
    label.swap(next);
    if (!changed) break;
  }
  return label;
}

namespace {

// Simple-graph semantics even on multigraphs (R-MAT/BA generators emit
// duplicate edges): every neighbourhood is deduplicated and self loops
// are dropped before counting. Shared by lcc() and lcc_parallel() so the
// two provably run the same arithmetic.
std::vector<VertexId> unique_neighbors(const Graph& g, VertexId u) {
  const auto nbrs = g.neighbors(u);
  std::vector<VertexId> set(nbrs.begin(), nbrs.end());
  std::sort(set.begin(), set.end());
  set.erase(std::unique(set.begin(), set.end()), set.end());
  set.erase(std::remove(set.begin(), set.end(), u), set.end());
  return set;
}

double lcc_of_vertex(const Graph& g, VertexId v) {
  const std::vector<VertexId> set = unique_neighbors(g, v);
  const std::size_t d = set.size();
  if (d < 2) return 0.0;
  std::size_t links = 0;
  for (VertexId w : set) {
    for (VertexId x : unique_neighbors(g, w)) {
      if (x == v) continue;
      if (std::binary_search(set.begin(), set.end(), x)) ++links;
    }
  }
  // For undirected storage each triangle edge is seen twice (w->x and
  // x->w); normalize by the full ordered-pair count d*(d-1).
  return static_cast<double>(links) /
         (static_cast<double>(d) * static_cast<double>(d - 1));
}

}  // namespace

std::vector<double> lcc(const Graph& g) {
  std::vector<double> coeff(g.vertex_count(), 0.0);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    coeff[v] = lcc_of_vertex(g, v);
  }
  return coeff;
}

std::vector<double> sssp(const Graph& g, VertexId source) {
  std::vector<double> dist(g.vertex_count(), kInfDistance);
  if (source >= g.vertex_count()) return dist;
  using Entry = std::pair<double, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;
    const auto nbrs = g.neighbors(v);
    const auto ws = g.weights(v);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      const double nd = d + ws[i];
      if (nd < dist[nbrs[i]]) {
        dist[nbrs[i]] = nd;
        heap.emplace(nd, nbrs[i]);
      }
    }
  }
  return dist;
}

// ---- deterministic parallel kernels -----------------------------------------

namespace {

// In-neighbor CSR ("transpose"): in_src lists, for each target vertex, the
// sources of its incoming arcs in ascending source order (counting sort is
// stable). That order is exactly the order in which the sequential push
// kernel accumulates into each target, which is what makes the parallel
// pull bit-identical.
struct Transpose {
  std::vector<std::size_t> offsets;  // n+1
  std::vector<VertexId> src;
};

Transpose build_transpose(const Graph& g) {
  const VertexId n = g.vertex_count();
  Transpose t;
  t.offsets.assign(n + 1, 0);
  for (VertexId w : g.adjacency()) ++t.offsets[w + 1];
  for (VertexId v = 0; v < n; ++v) t.offsets[v + 1] += t.offsets[v];
  // mcs-lint: allow(H3) — building the transpose allocates its O(m) output
  // by definition; one allocation per algorithm call, not per edge.
  t.src.resize(g.arc_count());
  std::vector<std::size_t> cursor(t.offsets.begin(), t.offsets.end() - 1);
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId w : g.neighbors(v)) t.src[cursor[w]++] = v;
  }
  return t;
}

}  // namespace

std::vector<double> pagerank_parallel(const Graph& g,
                                      parallel::ThreadPool& pool,
                                      std::size_t iterations, double damping) {
  const auto n = static_cast<double>(g.vertex_count());
  if (g.vertex_count() == 0) return {};
  const Transpose t = build_transpose(g);
  // Dangling vertices in ascending order: the per-iteration mass fold runs
  // sequentially over this list, replaying the reference association order.
  std::vector<VertexId> dangling_vertices;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (g.out_degree(v) == 0) dangling_vertices.push_back(v);
  }
  std::vector<double> rank(g.vertex_count(), 1.0 / n);
  std::vector<double> next(g.vertex_count(), 0.0);
  for (std::size_t it = 0; it < iterations; ++it) {
    double dangling = 0.0;
    for (VertexId v : dangling_vertices) dangling += rank[v];
    const double base = (1.0 - damping) / n + damping * dangling / n;
    parallel::parallel_for(
        pool, 0, g.vertex_count(),
        // mcs-lint: hot
        [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
          for (std::size_t v = lo; v < hi; ++v) {
            double sum = 0.0;
            for (std::size_t a = t.offsets[v]; a < t.offsets[v + 1]; ++a) {
              const VertexId u = t.src[a];
              // Same division the sequential kernel performs for its
              // `share`; IEEE-754 makes it bitwise reproducible.
              sum += rank[u] / static_cast<double>(g.out_degree(u));
            }
            next[v] = base + damping * sum;
          }
        });
    rank.swap(next);
  }
  return rank;
}

std::vector<VertexId> wcc_parallel(const Graph& g,
                                   parallel::ThreadPool& pool) {
  const VertexId n = g.vertex_count();
  std::vector<VertexId> cur(n);
  for (VertexId v = 0; v < n; ++v) cur[v] = v;
  if (n == 0) return cur;

  // Directed arcs must propagate labels both ways ("weakly" connected);
  // pulling from the transpose avoids scatter races entirely.
  const bool need_reverse = !g.undirected();
  Transpose rev;
  if (need_reverse) rev = build_transpose(g);

  std::vector<VertexId> next(n);
  const std::size_t chunks = parallel::default_chunk_count(n);
  std::vector<std::uint8_t> chunk_changed(chunks, 0);
  auto run_round = [&](auto&& update) {
    std::fill(chunk_changed.begin(), chunk_changed.end(), 0);
    parallel::parallel_for(
        pool, 0, n,
        [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
          bool changed = false;
          for (std::size_t v = lo; v < hi; ++v) {
            const VertexId m = update(static_cast<VertexId>(v));
            changed = changed || m != cur[v];
            next[v] = m;
          }
          chunk_changed[chunk] = changed ? 1 : 0;
        },
        chunks);
    cur.swap(next);
    bool any = false;
    for (std::uint8_t c : chunk_changed) any = any || c != 0;
    return any;
  };

  for (;;) {
    // Hook: adopt the smallest label in the closed neighbourhood.
    bool changed = run_round([&](VertexId v) {
      VertexId m = cur[v];
      for (VertexId w : g.neighbors(v)) m = std::min(m, cur[w]);
      if (need_reverse) {
        for (std::size_t a = rev.offsets[v]; a < rev.offsets[v + 1]; ++a) {
          m = std::min(m, cur[rev.src[a]]);
        }
      }
      return m;
    });
    // Shortcut: pointer-jump label chains until stable (labels are vertex
    // ids of the same component, so cur[cur[v]] is always defined).
    while (run_round([&](VertexId v) { return cur[cur[v]]; })) {
      changed = true;
    }
    if (!changed) break;
  }
  return cur;
}

std::vector<double> lcc_parallel(const Graph& g, parallel::ThreadPool& pool) {
  std::vector<double> coeff(g.vertex_count(), 0.0);
  parallel::parallel_for(
      pool, 0, g.vertex_count(),
      [&](std::size_t lo, std::size_t hi, std::size_t /*chunk*/) {
        for (std::size_t v = lo; v < hi; ++v) {
          coeff[v] = lcc_of_vertex(g, static_cast<VertexId>(v));
        }
      });
  return coeff;
}

std::vector<std::vector<std::uint32_t>> bfs_batch(
    const Graph& g, const std::vector<VertexId>& sources,
    parallel::ThreadPool& pool) {
  std::vector<std::vector<std::uint32_t>> results(sources.size());
  pool.run_tasks(sources.size(),
                 [&](std::size_t i) { results[i] = bfs(g, sources[i]); });
  return results;
}

std::vector<std::vector<double>> sssp_batch(const Graph& g,
                                            const std::vector<VertexId>& sources,
                                            parallel::ThreadPool& pool) {
  std::vector<std::vector<double>> results(sources.size());
  pool.run_tasks(sources.size(),
                 [&](std::size_t i) { results[i] = sssp(g, sources[i]); });
  return results;
}

std::vector<std::string> graphalytics_kernels() {
  return {"BFS", "PR", "WCC", "CDLP", "LCC", "SSSP"};
}

}  // namespace mcs::graph
