// Procedural Content Generation function of Fig. 4, POGGI-style [166]:
// generate-and-test puzzle instances with a guaranteed difficulty band.
//
// The concrete content is the 3x3 sliding puzzle (8-puzzle). Instances are
// produced by scrambling the solved board with random moves, then *solved
// optimally* with BFS to measure true difficulty (optimal move count);
// only instances inside the requested difficulty band are kept — the same
// generate-and-test-with-guarantees loop POGGI runs on grids.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/random.hpp"

namespace mcs::gaming {

/// A 3x3 sliding-puzzle board; value 0 is the blank. Index = row*3+col.
using Board = std::array<std::uint8_t, 9>;

[[nodiscard]] Board solved_board();

/// Legal successor boards (blank swapped with an orthogonal neighbour).
[[nodiscard]] std::vector<Board> successors(const Board& b);

/// Optimal solution length via BFS; nullopt when unsolvable (wrong parity).
[[nodiscard]] std::optional<std::size_t> optimal_moves(const Board& b);

/// Scrambles the solved board with `moves` random legal moves (avoiding
/// immediate backtracking) — always solvable by construction.
[[nodiscard]] Board scramble(std::size_t moves, sim::Rng& rng);

struct PuzzleInstance {
  Board board;
  std::size_t difficulty = 0;  ///< optimal move count (BFS-verified)
};

struct PcgStats {
  std::size_t generated = 0;  ///< candidates produced
  std::size_t accepted = 0;   ///< inside the difficulty band
  [[nodiscard]] double yield() const {
    return generated == 0
               ? 0.0
               : static_cast<double>(accepted) / static_cast<double>(generated);
  }
};

/// Generates `count` instances with difficulty in [min_moves, max_moves].
/// Every returned instance carries its verified optimal difficulty.
struct PcgResult {
  std::vector<PuzzleInstance> instances;
  PcgStats stats;
};

[[nodiscard]] PcgResult generate_puzzles(std::size_t count,
                                         std::size_t min_moves,
                                         std::size_t max_moves, sim::Rng& rng,
                                         std::size_t max_attempts = 10000);

}  // namespace mcs::gaming
