#include "gaming/pcg.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace mcs::gaming {

namespace {

std::uint32_t encode(const Board& b) {
  // 9 cells x 4 bits fits in 36 bits; values 0..8 fit in 4 bits but we can
  // pack base-9 into 32 bits: 9^9 = 387e6 < 2^32.
  std::uint32_t code = 0;
  for (std::uint8_t cell : b) code = code * 9 + cell;
  return code;
}

// Lehmer rank of the board seen as a permutation of {0..8}: a perfect,
// order-preserving index into [0, 9!). Lets BFS keep its visited/depth
// table in a direct-indexed array instead of a hash map — no bucket order
// anywhere near the search (determinism rule D2, tools/mcs_lint), and
// O(1) lookups without hashing.
constexpr std::size_t kStateCount = 362880;  // 9!

std::uint32_t lehmer_rank(const Board& b) {
  std::uint32_t rank = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    std::uint32_t smaller_right = 0;
    for (std::size_t j = i + 1; j < 9; ++j) {
      if (b[j] < b[i]) ++smaller_right;
    }
    rank = rank * static_cast<std::uint32_t>(9 - i) + smaller_right;
  }
  return rank;
}

std::size_t blank_index(const Board& b) {
  for (std::size_t i = 0; i < 9; ++i) {
    if (b[i] == 0) return i;
  }
  throw std::logic_error("Board without blank");
}

}  // namespace

Board solved_board() { return Board{1, 2, 3, 4, 5, 6, 7, 8, 0}; }

std::vector<Board> successors(const Board& b) {
  const std::size_t blank = blank_index(b);
  const std::size_t r = blank / 3, c = blank % 3;
  std::vector<Board> out;
  auto push = [&](std::size_t nr, std::size_t nc) {
    Board next = b;
    std::swap(next[blank], next[nr * 3 + nc]);
    out.push_back(next);
  };
  if (r > 0) push(r - 1, c);
  if (r < 2) push(r + 1, c);
  if (c > 0) push(r, c - 1);
  if (c < 2) push(r, c + 1);
  return out;
}

std::optional<std::size_t> optimal_moves(const Board& b) {
  // Parity check: the 8-puzzle is solvable iff the permutation (ignoring
  // the blank) has even inversion count.
  std::size_t inversions = 0;
  for (std::size_t i = 0; i < 9; ++i) {
    for (std::size_t j = i + 1; j < 9; ++j) {
      if (b[i] != 0 && b[j] != 0 && b[i] > b[j]) ++inversions;
    }
  }
  if (inversions % 2 != 0) return std::nullopt;

  const Board goal = solved_board();
  if (b == goal) return 0;
  // Direct-indexed depth table over all 9! states (one byte each; the
  // 8-puzzle diameter is 31, and 0xFF marks "unvisited").
  constexpr std::uint8_t kUnvisited = 0xFF;
  std::vector<std::uint8_t> depth(kStateCount, kUnvisited);
  std::queue<Board> frontier;
  depth[lehmer_rank(b)] = 0;
  frontier.push(b);
  while (!frontier.empty()) {
    const Board current = frontier.front();
    frontier.pop();
    const std::uint8_t d = depth[lehmer_rank(current)];
    for (const Board& next : successors(current)) {
      const std::uint32_t rank = lehmer_rank(next);
      if (depth[rank] != kUnvisited) continue;
      if (next == goal) return d + 1u;
      depth[rank] = static_cast<std::uint8_t>(d + 1);
      frontier.push(next);
    }
  }
  return std::nullopt;  // unreachable for solvable boards
}

Board scramble(std::size_t moves, sim::Rng& rng) {
  Board b = solved_board();
  std::uint32_t previous = encode(b);
  for (std::size_t i = 0; i < moves; ++i) {
    auto options = successors(b);
    // Avoid immediately undoing the previous move.
    options.erase(std::remove_if(options.begin(), options.end(),
                                 [&](const Board& o) {
                                   return encode(o) == previous;
                                 }),
                  options.end());
    previous = encode(b);
    b = options[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(options.size()) - 1))];
  }
  return b;
}

PcgResult generate_puzzles(std::size_t count, std::size_t min_moves,
                           std::size_t max_moves, sim::Rng& rng,
                           std::size_t max_attempts) {
  if (min_moves > max_moves) {
    throw std::invalid_argument("generate_puzzles: empty difficulty band");
  }
  PcgResult result;
  // Scramble length ~ target difficulty (random walks backtrack, so the
  // optimal solution is usually shorter than the scramble).
  const std::size_t scramble_len = max_moves + max_moves / 2 + 2;
  while (result.instances.size() < count &&
         result.stats.generated < max_attempts) {
    ++result.stats.generated;
    const Board candidate = scramble(scramble_len, rng);
    const auto difficulty = optimal_moves(candidate);
    if (!difficulty) continue;  // cannot happen for scrambles; guard anyway
    if (*difficulty < min_moves || *difficulty > max_moves) continue;
    ++result.stats.accepted;
    result.instances.push_back(PuzzleInstance{candidate, *difficulty});
  }
  return result;
}

}  // namespace mcs::gaming
