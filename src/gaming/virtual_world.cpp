#include "gaming/virtual_world.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::gaming {

VirtualWorld::VirtualWorld(sim::Simulator& sim, WorldConfig config,
                           sim::Rng rng)
    : sim_(sim), config_(config), rng_(rng) {
  if (config_.zone_rows == 0 || config_.zone_cols == 0 ||
      config_.server_capacity <= 0.0 || config_.tick_interval <= 0) {
    throw std::invalid_argument("VirtualWorld: bad config");
  }
  zone_pop_.assign(config_.zone_rows * config_.zone_cols, 0);
}

void VirtualWorld::start(sim::SimTime until) {
  sim_.schedule_after(config_.tick_interval, [this, until] { tick(until); });
}

void VirtualWorld::join(std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const auto zone = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(zone_pop_.size()) - 1));
    ++zone_pop_[zone];
  }
}

void VirtualWorld::leave(std::size_t count) {
  for (std::size_t i = 0; i < count && population() > 0; ++i) {
    // Remove from a population-weighted random zone.
    std::vector<double> weights(zone_pop_.size());
    for (std::size_t z = 0; z < zone_pop_.size(); ++z) {
      weights[z] = static_cast<double>(zone_pop_[z]);
    }
    const std::size_t zone = rng_.weighted_index(weights);
    if (zone_pop_[zone] > 0) --zone_pop_[zone];
  }
}

std::size_t VirtualWorld::population() const {
  std::size_t total = 0;
  for (std::size_t p : zone_pop_) total += p;
  return total;
}

std::size_t VirtualWorld::zone_count() const { return zone_pop_.size(); }

std::size_t VirtualWorld::zone_population(std::size_t zone) const {
  if (zone >= zone_pop_.size()) throw std::out_of_range("zone_population");
  return zone_pop_[zone];
}

double VirtualWorld::zone_load(std::size_t zone) const {
  if (zone >= zone_pop_.size()) throw std::out_of_range("zone_load");
  const auto n = static_cast<double>(zone_pop_[zone]);
  return config_.load_per_player * n +
         config_.load_per_pair * n * (n - 1.0) / 2.0;
}

std::size_t VirtualWorld::servers_needed() const {
  // Greedy first-fit-decreasing consolidation of zone loads onto servers.
  std::vector<double> loads;
  for (std::size_t z = 0; z < zone_pop_.size(); ++z) {
    if (zone_pop_[z] > 0) loads.push_back(zone_load(z));
  }
  std::sort(loads.rbegin(), loads.rend());
  std::vector<double> servers;
  for (double load : loads) {
    // A zone hotter than one server still needs a dedicated (overloaded)
    // server — the seamless-world limit the paper describes.
    bool placed = false;
    for (double& s : servers) {
      if (s + load <= config_.server_capacity) {
        s += load;
        placed = true;
        break;
      }
    }
    if (!placed) servers.push_back(load);
  }
  return servers.size();
}

void VirtualWorld::move_players() {
  const std::size_t rows = config_.zone_rows;
  const std::size_t cols = config_.zone_cols;
  std::vector<std::size_t> moves_out(zone_pop_.size(), 0);
  std::vector<std::size_t> moves_in(zone_pop_.size(), 0);
  for (std::size_t z = 0; z < zone_pop_.size(); ++z) {
    const std::size_t r = z / cols;
    const std::size_t c = z % cols;
    for (std::size_t p = 0; p < zone_pop_[z]; ++p) {
      if (!rng_.chance(config_.move_probability)) continue;
      // Pick an adjacent zone uniformly.
      std::vector<std::size_t> adjacent;
      if (r > 0) adjacent.push_back(z - cols);
      if (r + 1 < rows) adjacent.push_back(z + cols);
      if (c > 0) adjacent.push_back(z - 1);
      if (c + 1 < cols) adjacent.push_back(z + 1);
      if (adjacent.empty()) continue;
      const std::size_t target = adjacent[static_cast<std::size_t>(
          rng_.uniform_int(0, static_cast<std::int64_t>(adjacent.size()) - 1))];
      ++moves_out[z];
      ++moves_in[target];
    }
  }
  for (std::size_t z = 0; z < zone_pop_.size(); ++z) {
    zone_pop_[z] = zone_pop_[z] - moves_out[z] + moves_in[z];
  }
}

void VirtualWorld::tick(sim::SimTime until) {
  move_players();
  ++stats_.ticks;
  stats_.population.add(static_cast<double>(population()));
  const std::size_t servers = servers_needed();
  stats_.servers_used.add(static_cast<double>(servers));
  std::size_t max_pop = 0;
  bool overloaded = false;
  for (std::size_t z = 0; z < zone_pop_.size(); ++z) {
    max_pop = std::max(max_pop, zone_pop_[z]);
    if (zone_load(z) > config_.server_capacity) overloaded = true;
  }
  stats_.max_zone_population.add(static_cast<double>(max_pop));
  if (overloaded) ++stats_.overloaded_ticks;

  if (sim_.now() + config_.tick_interval <= until) {
    sim_.schedule_after(config_.tick_interval, [this, until] { tick(until); });
  }
}

}  // namespace mcs::gaming
