// Gaming Analytics function of Fig. 4: a windowed event pipeline over the
// big-data stack (§6.3 names Twitch/Blizzard/Riot outsourcing exactly this
// processing to data ecosystems — here the dataflow layer of Fig. 1 is the
// service, closing the loop between the two reference architectures).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bigdata/dataflow.hpp"
#include "sim/simulator.hpp"

namespace mcs::gaming {

struct GameEvent {
  sim::SimTime at = 0;
  std::uint32_t player = 0;
  std::string action;  ///< "kill", "trade", "chat", ...
};

struct WindowReport {
  sim::SimTime window_start = 0;
  sim::SimTime window_end = 0;
  std::size_t events = 0;
  std::size_t distinct_players = 0;
  std::string top_action;
  double events_per_second = 0.0;
  /// Per-action counts (dataflow group_sum output).
  std::vector<bigdata::Record> action_counts;
};

/// Buffers events and aggregates them per fixed window through a dataflow
/// plan (map -> group_sum) — one analytics "job" per window.
class AnalyticsPipeline {
 public:
  explicit AnalyticsPipeline(sim::SimTime window) : window_(window) {}

  void ingest(GameEvent event);

  /// Flushes all complete windows up to `now` and returns their reports.
  [[nodiscard]] std::vector<WindowReport> flush(sim::SimTime now);

  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  [[nodiscard]] std::size_t windows_processed() const { return windows_; }
  [[nodiscard]] std::size_t events_processed() const { return processed_; }

 private:
  [[nodiscard]] WindowReport aggregate(sim::SimTime start, sim::SimTime end,
                                       const std::vector<GameEvent>& events) const;

  sim::SimTime window_;
  std::vector<GameEvent> buffer_;
  sim::SimTime next_window_start_ = 0;
  std::size_t windows_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace mcs::gaming
