// Social Meta-Gaming function of Fig. 4 (and challenge C5): implicit
// social relationships mined from co-play.
//
// The paper's lineage ([48], [82]): players who repeatedly appear in the
// same match form strong ties; the resulting interaction graph carries
// exploitable structure (communities) that improves matchmaking and
// predicts engagement. Sessions -> weighted co-play graph -> CDLP
// communities -> matchmaking/assortativity metrics.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "sim/random.hpp"

namespace mcs::gaming {

/// One match/session: the players who played together.
struct PlaySession {
  std::vector<std::uint32_t> players;
};

/// Builds the undirected co-play graph: one edge per pair per session,
/// weight = number of shared sessions (ties [48]).
[[nodiscard]] graph::Graph interaction_graph(
    const std::vector<PlaySession>& sessions, std::uint32_t player_count);

struct SocialStats {
  std::size_t communities = 0;
  std::size_t largest_community = 0;
  double mean_tie_strength = 0.0;   ///< mean edge weight (repeat co-play)
  /// Fraction of session pairs that fall within one community (social
  /// assortativity of matches).
  double intra_community_fraction = 0.0;
};

[[nodiscard]] SocialStats analyze_social_structure(
    const graph::Graph& g, const std::vector<PlaySession>& sessions);

/// Generates synthetic sessions with planted social groups: players
/// belong to `groups` cliques; with probability `mixing` a session draws
/// players uniformly instead of from one group. Ground truth for tests.
[[nodiscard]] std::vector<PlaySession> synthetic_sessions(
    std::uint32_t player_count, std::size_t groups, std::size_t sessions,
    std::size_t players_per_session, double mixing, sim::Rng& rng);

// ---- matchmaking (C5: "leveraging the models and predictors to improve
// ---- performance and service-experience") -----------------------------------

/// Quality of a proposed set of matches against an existing interaction
/// graph: how socially coherent the matches are.
struct MatchQuality {
  /// Fraction of in-match player pairs that already share a community.
  double community_cohesion = 0.0;
  /// Mean existing tie strength over in-match pairs (0 = strangers).
  double mean_pair_tie = 0.0;
};

[[nodiscard]] MatchQuality evaluate_matches(
    const graph::Graph& g, const std::vector<PlaySession>& matches);

/// Baseline matchmaker: uniformly random groups of `match_size`.
[[nodiscard]] std::vector<PlaySession> matchmake_random(
    std::uint32_t player_count, std::size_t match_size, std::size_t matches,
    sim::Rng& rng);

/// Socially-aware matchmaker: mines communities from the co-play graph
/// (CDLP) and fills each match from a single community, spilling to the
/// global pool only when a community is exhausted — the 2fast/[48]-style
/// exploitation of implicit social ties.
[[nodiscard]] std::vector<PlaySession> matchmake_social(
    const graph::Graph& g, std::size_t match_size, std::size_t matches,
    sim::Rng& rng);

}  // namespace mcs::gaming
