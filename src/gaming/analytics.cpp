#include "gaming/analytics.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace mcs::gaming {

void AnalyticsPipeline::ingest(GameEvent event) {
  if (!buffer_.empty() && event.at < buffer_.back().at) {
    throw std::invalid_argument("AnalyticsPipeline: out-of-order event");
  }
  buffer_.push_back(std::move(event));
}

WindowReport AnalyticsPipeline::aggregate(
    sim::SimTime start, sim::SimTime end,
    const std::vector<GameEvent>& events) const {
  WindowReport report;
  report.window_start = start;
  report.window_end = end;
  report.events = events.size();

  std::set<std::uint32_t> players;
  std::vector<bigdata::Record> records;
  records.reserve(events.size());
  for (const GameEvent& e : events) {
    players.insert(e.player);
    records.push_back(bigdata::Record{e.action, 1.0});
  }
  report.distinct_players = players.size();

  // The analytics job itself: a dataflow plan on the big-data stack.
  report.action_counts =
      bigdata::Dataflow::from(std::move(records)).group_sum().collect();
  double best = 0.0;
  for (const bigdata::Record& r : report.action_counts) {
    if (r.value > best) {
      best = r.value;
      report.top_action = r.key;
    }
  }
  const double seconds = sim::to_seconds(end - start);
  report.events_per_second =
      seconds <= 0.0 ? 0.0 : static_cast<double>(events.size()) / seconds;
  return report;
}

std::vector<WindowReport> AnalyticsPipeline::flush(sim::SimTime now) {
  std::vector<WindowReport> reports;
  while (next_window_start_ + window_ <= now) {
    const sim::SimTime start = next_window_start_;
    const sim::SimTime end = start + window_;
    // Collect events in [start, end).
    std::vector<GameEvent> in_window;
    auto it = buffer_.begin();
    while (it != buffer_.end() && it->at < end) {
      if (it->at >= start) in_window.push_back(*it);
      ++it;
    }
    buffer_.erase(buffer_.begin(), it);
    reports.push_back(aggregate(start, end, in_window));
    processed_ += in_window.size();
    ++windows_;
    next_window_start_ = end;
  }
  return reports;
}

}  // namespace mcs::gaming
