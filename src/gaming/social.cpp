#include "gaming/social.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace mcs::gaming {

graph::Graph interaction_graph(const std::vector<PlaySession>& sessions,
                               std::uint32_t player_count) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> weights;
  for (const PlaySession& s : sessions) {
    for (std::size_t i = 0; i < s.players.size(); ++i) {
      for (std::size_t j = i + 1; j < s.players.size(); ++j) {
        auto a = s.players[i];
        auto b = s.players[j];
        if (a == b) continue;
        if (a >= player_count || b >= player_count) {
          throw std::invalid_argument("interaction_graph: player id range");
        }
        if (a > b) std::swap(a, b);
        weights[{a, b}] += 1.0;
      }
    }
  }
  std::vector<graph::Edge> edges;
  edges.reserve(weights.size());
  for (const auto& [pair, w] : weights) {
    edges.push_back(graph::Edge{pair.first, pair.second, w});
  }
  return graph::Graph(player_count, edges, /*undirected=*/true);
}

SocialStats analyze_social_structure(const graph::Graph& g,
                                     const std::vector<PlaySession>& sessions) {
  SocialStats stats;

  // Tie strength: mean weight over stored arcs.
  double weight_sum = 0.0;
  std::size_t arcs = 0;
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    for (double w : g.weights(v)) {
      weight_sum += w;
      ++arcs;
    }
  }
  stats.mean_tie_strength = arcs == 0 ? 0.0 : weight_sum / static_cast<double>(arcs);

  // Communities via label propagation.
  const auto labels = graph::cdlp(g, 20);
  std::map<graph::VertexId, std::size_t> sizes;
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    if (g.out_degree(v) == 0) continue;  // isolated players are not a community
    ++sizes[labels[v]];
  }
  stats.communities = sizes.size();
  for (const auto& [label, size] : sizes) {
    stats.largest_community = std::max(stats.largest_community, size);
  }

  // Assortativity of sessions: fraction of in-session player pairs that
  // share a community.
  std::size_t pairs = 0, intra = 0;
  for (const PlaySession& s : sessions) {
    for (std::size_t i = 0; i < s.players.size(); ++i) {
      for (std::size_t j = i + 1; j < s.players.size(); ++j) {
        ++pairs;
        if (labels[s.players[i]] == labels[s.players[j]]) ++intra;
      }
    }
  }
  stats.intra_community_fraction =
      pairs == 0 ? 0.0 : static_cast<double>(intra) / static_cast<double>(pairs);
  return stats;
}

std::vector<PlaySession> synthetic_sessions(std::uint32_t player_count,
                                            std::size_t groups,
                                            std::size_t sessions,
                                            std::size_t players_per_session,
                                            double mixing, sim::Rng& rng) {
  if (groups == 0 || player_count < groups || players_per_session < 2) {
    throw std::invalid_argument("synthetic_sessions: bad parameters");
  }
  std::vector<PlaySession> out;
  out.reserve(sessions);
  const std::uint32_t per_group = player_count / static_cast<std::uint32_t>(groups);
  for (std::size_t s = 0; s < sessions; ++s) {
    PlaySession session;
    const bool mixed = rng.chance(mixing);
    const auto group = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(groups) - 1));
    std::set<std::uint32_t> chosen;
    while (chosen.size() < players_per_session) {
      std::uint32_t p;
      if (mixed) {
        p = static_cast<std::uint32_t>(rng.uniform_int(0, player_count - 1));
      } else {
        const std::uint32_t lo = group * per_group;
        const std::uint32_t hi =
            group + 1 == groups ? player_count - 1 : lo + per_group - 1;
        p = static_cast<std::uint32_t>(rng.uniform_int(lo, hi));
      }
      chosen.insert(p);
    }
    session.players.assign(chosen.begin(), chosen.end());
    out.push_back(std::move(session));
  }
  return out;
}

MatchQuality evaluate_matches(const graph::Graph& g,
                              const std::vector<PlaySession>& matches) {
  MatchQuality q;
  const auto labels = graph::cdlp(g, 20);
  // Tie-strength lookup via adjacency scan (graphs here are small).
  auto tie = [&](std::uint32_t a, std::uint32_t b) {
    const auto nbrs = g.neighbors(a);
    const auto ws = g.weights(a);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      if (nbrs[i] == b) return ws[i];
    }
    return 0.0;
  };
  std::size_t pairs = 0, cohesive = 0;
  double tie_sum = 0.0;
  for (const PlaySession& m : matches) {
    for (std::size_t i = 0; i < m.players.size(); ++i) {
      for (std::size_t j = i + 1; j < m.players.size(); ++j) {
        ++pairs;
        if (labels[m.players[i]] == labels[m.players[j]]) ++cohesive;
        tie_sum += tie(m.players[i], m.players[j]);
      }
    }
  }
  if (pairs > 0) {
    q.community_cohesion =
        static_cast<double>(cohesive) / static_cast<double>(pairs);
    q.mean_pair_tie = tie_sum / static_cast<double>(pairs);
  }
  return q;
}

std::vector<PlaySession> matchmake_random(std::uint32_t player_count,
                                          std::size_t match_size,
                                          std::size_t matches, sim::Rng& rng) {
  if (match_size < 2 || player_count < match_size) {
    throw std::invalid_argument("matchmake_random: bad parameters");
  }
  std::vector<PlaySession> out;
  out.reserve(matches);
  for (std::size_t m = 0; m < matches; ++m) {
    std::set<std::uint32_t> chosen;
    while (chosen.size() < match_size) {
      chosen.insert(
          static_cast<std::uint32_t>(rng.uniform_int(0, player_count - 1)));
    }
    PlaySession s;
    s.players.assign(chosen.begin(), chosen.end());
    out.push_back(std::move(s));
  }
  return out;
}

std::vector<PlaySession> matchmake_social(const graph::Graph& g,
                                          std::size_t match_size,
                                          std::size_t matches, sim::Rng& rng) {
  if (match_size < 2 || g.vertex_count() < match_size) {
    throw std::invalid_argument("matchmake_social: bad parameters");
  }
  const auto labels = graph::cdlp(g, 20);
  std::map<graph::VertexId, std::vector<std::uint32_t>> communities;
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    communities[labels[v]].push_back(v);
  }
  // Communities large enough to host a whole match, weighted by size.
  std::vector<const std::vector<std::uint32_t>*> pools;
  std::vector<double> weights;
  for (const auto& [label, members] : communities) {
    if (members.size() >= match_size) {
      pools.push_back(&members);
      weights.push_back(static_cast<double>(members.size()));
    }
  }
  std::vector<PlaySession> out;
  out.reserve(matches);
  for (std::size_t m = 0; m < matches; ++m) {
    PlaySession s;
    if (!pools.empty()) {
      const auto& pool = *pools[rng.weighted_index(weights)];
      std::set<std::uint32_t> chosen;
      while (chosen.size() < match_size) {
        chosen.insert(pool[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(pool.size()) - 1))]);
      }
      s.players.assign(chosen.begin(), chosen.end());
    } else {
      // No community can host a full match: global fallback.
      std::set<std::uint32_t> chosen;
      while (chosen.size() < match_size) {
        chosen.insert(static_cast<std::uint32_t>(
            rng.uniform_int(0, g.vertex_count() - 1)));
      }
      s.players.assign(chosen.begin(), chosen.end());
    }
    out.push_back(std::move(s));
  }
  return out;
}

}  // namespace mcs::gaming
