// Virtual World function of the Fig. 4 online-gaming architecture (§6.3).
//
// A zoned virtual world: players inhabit zones of a grid map and roam
// between adjacent zones; a zone's server load grows superlinearly with
// its population (pairwise interactions), which is exactly why "virtual
// worlds ... cannot host more than a few thousands of players in the same
// contiguous virtual-space". Zone servers are provisioned elastically and
// zones are consolidated onto servers greedily; ticks that exceed server
// capacity degrade quality of service.
#pragma once

#include <vector>

#include "metrics/elasticity.hpp"
#include "metrics/stats.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mcs::gaming {

struct WorldConfig {
  std::size_t zone_rows = 4;
  std::size_t zone_cols = 4;
  /// Load units: per player plus per interacting pair within a zone.
  double load_per_player = 1.0;
  double load_per_pair = 0.02;
  /// One server sustains this much load per tick at full QoS.
  double server_capacity = 400.0;
  sim::SimTime tick_interval = 5 * sim::kSecond;
  /// Probability a player moves to an adjacent zone each tick.
  double move_probability = 0.1;
};

struct WorldStats {
  std::size_t ticks = 0;
  metrics::Accumulator population;
  metrics::Accumulator servers_used;
  metrics::Accumulator max_zone_population;
  std::size_t overloaded_ticks = 0;  ///< ticks where some server exceeded capacity
  /// Fraction of ticks at full QoS.
  [[nodiscard]] double qos() const {
    return ticks == 0 ? 1.0
                      : 1.0 - static_cast<double>(overloaded_ticks) /
                                  static_cast<double>(ticks);
  }
};

class VirtualWorld {
 public:
  VirtualWorld(sim::Simulator& sim, WorldConfig config, sim::Rng rng);

  /// Starts ticking until `until`.
  void start(sim::SimTime until);

  /// Player lifecycle (players spawn in a random zone).
  void join(std::size_t count = 1);
  void leave(std::size_t count = 1);

  [[nodiscard]] std::size_t population() const;
  [[nodiscard]] std::size_t zone_count() const;
  [[nodiscard]] std::size_t zone_population(std::size_t zone) const;
  /// Servers needed right now (greedy consolidation of zone loads).
  [[nodiscard]] std::size_t servers_needed() const;
  [[nodiscard]] double zone_load(std::size_t zone) const;

  [[nodiscard]] const WorldStats& stats() const { return stats_; }

 private:
  void tick(sim::SimTime until);
  void move_players();

  sim::Simulator& sim_;
  WorldConfig config_;
  sim::Rng rng_;
  std::vector<std::size_t> zone_pop_;
  WorldStats stats_;
};

}  // namespace mcs::gaming
