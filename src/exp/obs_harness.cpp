#include "exp/obs_harness.hpp"

#include <fstream>
#include <ostream>

namespace mcs::exp {

CellObs::CellObs(const SweepCli& cli, std::size_t ring) {
  if (cli.trace() || cli.metrics) tracer_.emplace(ring);
}

ObsCapture CellObs::capture(const obs::Registry* registry, bool exemplar) {
  ObsCapture c;
  if (!tracer_.has_value()) return c;
  c.trace_digest = tracer_->digest();
  if (registry != nullptr) {
    c.registry = std::make_shared<obs::Registry>();
    c.registry->merge(*registry);
  }
  if (exemplar) {
    c.exemplar = std::make_shared<obs::TraceDump>(obs::snapshot(*tracer_));
  }
  return c;
}

void ObsAggregate::fold(const ObsCapture& capture) {
  digest_.add_u64(capture.trace_digest);
  if (capture.registry != nullptr) merged_.merge(*capture.registry);
  if (capture.exemplar != nullptr && exemplar_ == nullptr) {
    exemplar_ = capture.exemplar;
  }
}

bool ObsAggregate::report(const SweepCli& cli, std::ostream& out) const {
  if (!cli.trace() && !cli.metrics) return true;
  bool ok = true;
  if (cli.trace()) {
    if (exemplar_ != nullptr) {
      std::ofstream file(cli.trace_path);
      if (file) {
        obs::write_chrome_trace(file, *exemplar_);
        out << "trace written to " << cli.trace_path << " ("
            << exemplar_->events.size() << " events";
        if (exemplar_->dropped > 0) {
          out << ", " << exemplar_->dropped << " dropped";
        }
        out << ")\n";
      } else {
        out << "trace: cannot write " << cli.trace_path << "\n";
        ok = false;
      }
    }
    out << "trace digest " << metrics::hex16(trace_digest()) << "\n";
  }
  if (cli.metrics) {
    out << "-- metrics (all cells merged) --\n";
    merged_.print(out);
  }
  return ok;
}

}  // namespace mcs::exp
