#include "exp/obs_harness.hpp"

#include <fstream>
#include <ostream>

#include "obs/report.hpp"

namespace mcs::exp {

CellObs::CellObs(const SweepCli& cli, std::size_t ring) {
  if (cli.trace() || cli.metrics || cli.report() || cli.slo()) {
    tracer_.emplace(ring);
  }
  if (cli.slo()) slo_specs_ = obs::parse_slo_specs(cli.slo_spec);
}

obs::SloTracker* CellObs::make_slo(obs::Registry& registry) {
  if (slo_specs_.empty()) return nullptr;
  slo_ = std::make_unique<obs::SloTracker>(slo_specs_, registry, tracer());
  return slo_.get();
}

void CellObs::finalize(sim::SimTime at) {
  if (slo_ != nullptr) slo_->finalize(at);
}

ObsCapture CellObs::capture(const obs::Registry* registry, bool exemplar) {
  ObsCapture c;
  if (!tracer_.has_value()) return c;
  c.trace_digest = tracer_->digest();
  if (registry != nullptr) {
    c.registry = std::make_shared<obs::Registry>();
    c.registry->merge(*registry);
  }
  if (exemplar) {
    c.exemplar = std::make_shared<obs::TraceDump>(obs::snapshot(*tracer_));
  }
  return c;
}

void ObsAggregate::fold(const ObsCapture& capture) {
  ++cells_;
  digest_.add_u64(capture.trace_digest);
  if (capture.registry != nullptr) merged_.merge(*capture.registry);
  if (capture.exemplar != nullptr && exemplar_ == nullptr) {
    exemplar_ = capture.exemplar;
  }
}

bool ObsAggregate::report(const SweepCli& cli, std::ostream& out) const {
  if (!cli.trace() && !cli.metrics && !cli.report()) return true;
  bool ok = true;
  if (cli.trace()) {
    if (exemplar_ != nullptr) {
      std::ofstream file(cli.trace_path);
      if (file) {
        obs::write_chrome_trace(file, *exemplar_);
        out << "trace written to " << cli.trace_path << " ("
            << exemplar_->events.size() << " events";
        if (exemplar_->dropped > 0) {
          out << ", " << exemplar_->dropped << " dropped";
        }
        out << ")\n";
      } else {
        out << "trace: cannot write " << cli.trace_path << "\n";
        ok = false;
      }
    }
    out << "trace digest " << metrics::hex16(trace_digest()) << "\n";
  }
  if (cli.metrics) {
    out << "-- metrics (all cells merged) --\n";
    merged_.print(out);
  }
  if (cli.report()) {
    const std::vector<obs::SloSpec> specs =
        cli.slo() ? obs::parse_slo_specs(cli.slo_spec)
                  : std::vector<obs::SloSpec>{};
    obs::ReportInputs inputs;
    inputs.registry = &merged_;
    inputs.slo = &specs;
    inputs.exemplar = exemplar_.get();
    inputs.trace_digest = trace_digest();
    inputs.has_trace_digest = true;
    inputs.cells = cells_;
    std::ofstream file(cli.report_path);
    if (file) {
      obs::write_report_json(file, inputs);
      out << "report written to " << cli.report_path << " (" << cells_
          << " cells)\n";
    } else {
      out << "report: cannot write " << cli.report_path << "\n";
      ok = false;
    }
  }
  return ok;
}

}  // namespace mcs::exp
