#include "exp/sweep.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string>

#include "obs/slo.hpp"

namespace mcs::exp {

std::uint64_t substream_seed(std::uint64_t base, std::uint64_t index) {
  // SplitMix64 finalizer over the combined state: statistically
  // independent outputs for adjacent indices, and a pure function of
  // (base, index) only.
  std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z == 0 ? 0x9e3779b97f4a7c15ull : z;
}

SweepCli parse_sweep_cli(int argc, const char* const* argv) {
  SweepCli cli;
  auto parse_count = [](const std::string& flag,
                        const char* value) -> std::size_t {
    if (value == nullptr) {
      throw std::invalid_argument(flag + ": missing value");
    }
    char* end = nullptr;
    const unsigned long long n = std::strtoull(value, &end, 10);
    if (end == value || *end != '\0') {
      throw std::invalid_argument(flag + ": not a number: " + value);
    }
    return static_cast<std::size_t>(n);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--digest") {
      cli.digest = true;
    } else if (arg == "--reps") {
      cli.reps = parse_count(arg, i + 1 < argc ? argv[++i] : nullptr);
    } else if (arg.rfind("--reps=", 0) == 0) {
      cli.reps = parse_count("--reps", arg.c_str() + 7);
    } else if (arg == "--threads") {
      cli.threads = parse_count(arg, i + 1 < argc ? argv[++i] : nullptr);
    } else if (arg.rfind("--threads=", 0) == 0) {
      cli.threads = parse_count("--threads", arg.c_str() + 10);
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        throw std::invalid_argument("--trace: missing file path");
      }
      cli.trace_path = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      cli.trace_path = arg.substr(8);
      if (cli.trace_path.empty()) {
        throw std::invalid_argument("--trace: missing file path");
      }
    } else if (arg == "--metrics") {
      cli.metrics = true;
    } else if (arg == "--report") {
      if (i + 1 >= argc) {
        throw std::invalid_argument("--report: missing file path");
      }
      cli.report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      cli.report_path = arg.substr(9);
      if (cli.report_path.empty()) {
        throw std::invalid_argument("--report: missing file path");
      }
    } else if (arg == "--slo") {
      if (i + 1 >= argc) {
        throw std::invalid_argument("--slo: missing spec");
      }
      cli.slo_spec = argv[++i];
    } else if (arg.rfind("--slo=", 0) == 0) {
      cli.slo_spec = arg.substr(6);
      if (cli.slo_spec.empty()) {
        throw std::invalid_argument("--slo: missing spec");
      }
    }
  }
  if (cli.reps == 0) cli.reps = 1;
  // Fail fast on a malformed SLO spec — before any cell runs.
  if (cli.slo()) (void)obs::parse_slo_specs(cli.slo_spec);
  return cli;
}

}  // namespace mcs::exp
