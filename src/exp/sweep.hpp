// Scale-out experiment sweeps: a deterministic scenario × replication grid
// fanned across the shared thread pool.
//
// The paper's methodology (§3.3) wants distributions over many repetitions,
// and the reference-architecture line of work (arXiv 1808.04224) gets its
// figures from exactly such multi-replication sweeps. This runner makes
// them scale out without giving up the repository's reproducibility
// contract (DESIGN.md §4):
//
//  - SUBSTREAM SEEDING. Every grid cell (scenario s, replication r) gets
//    its own sim::Rng seed derived as
//    substream_seed(substream_seed(base_seed, s), r) — a SplitMix64-style
//    mix, so streams are statistically independent and a cell's seed never
//    depends on which thread ran it or on how many cells exist.
//  - ONE SIMULATOR PER CELL. The cell function builds its own Simulator /
//    Datacenter / engine from its seed; cells share nothing mutable.
//  - ORDERED MERGE. Results come back in flat grid order (scenario-major),
//    and callers fold them through mergeable accumulators
//    (metrics::Accumulator::merge / metrics::Digest::merge) sequentially in
//    that order. Work distribution is scheduling noise; the fold is not.
//    Aggregate output is therefore bit-identical at MCS_THREADS=1 and 8
//    (enforced by the bench.determinism ctest).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace mcs::exp {

/// SplitMix64-style mix of (base seed, stream index) into an independent
/// substream seed. Pure function; never returns 0 (some PRNGs dislike it).
[[nodiscard]] std::uint64_t substream_seed(std::uint64_t base,
                                           std::uint64_t index);

/// One cell of the scenario × replication grid.
struct SweepPoint {
  std::size_t scenario = 0;  ///< index into the caller's scenario list
  std::size_t rep = 0;       ///< replication index within the scenario
  std::uint64_t seed = 0;    ///< substream seed for this cell's Rng
};

struct SweepOptions {
  std::size_t reps = 1;
  std::uint64_t base_seed = 1;
  /// Pool to fan out on; parallel::default_pool() when null.
  parallel::ThreadPool* pool = nullptr;
};

/// Runs fn(SweepPoint) -> R for every cell of the scenarios × reps grid on
/// the thread pool and returns the results in flat grid order
/// (scenario-major: cell i is {i / reps, i % reps}), independent of thread
/// count. One cell per chunk, so replications load-balance freely; if any
/// cell throws, the exception from the lowest flat index is rethrown.
template <typename R, typename Fn>
std::vector<R> run_sweep(std::size_t scenarios, const SweepOptions& opt,
                         Fn&& fn) {
  const std::size_t reps = opt.reps == 0 ? 1 : opt.reps;
  const std::size_t cells = scenarios * reps;
  std::vector<R> results(cells);
  if (cells == 0) return results;
  parallel::ThreadPool& pool =
      opt.pool != nullptr ? *opt.pool : parallel::default_pool();
  parallel::parallel_for(
      pool, 0, cells,
      [&](std::size_t lo, std::size_t hi, std::size_t) {
        for (std::size_t i = lo; i < hi; ++i) {
          SweepPoint p;
          p.scenario = i / reps;
          p.rep = i % reps;
          p.seed = substream_seed(substream_seed(opt.base_seed, p.scenario),
                                  p.rep);
          results[i] = fn(p);
        }
      },
      /*chunks=*/cells);
  return results;
}

/// Shared command-line vocabulary of the exp_* sweep binaries:
/// `--reps N` (replications per scenario), `--digest` (print only a
/// 16-hex-digit digest line for determinism checks), `--threads N`
/// (override pool size; 0 = MCS_THREADS/hardware), `--trace FILE`
/// (write a Chrome trace_event JSON of the exemplar cell to FILE, plus a
/// `trace digest <16-hex>` line over *all* cells), `--metrics` (print the
/// merged instrument registry after the tables), `--report FILE` (write
/// the stable-key mcs-report-v1 JSON over all cells, see obs/report.hpp),
/// `--slo SPEC` (attach the SLO engine; obs/slo.hpp parse format,
/// validated at parse time).
struct SweepCli {
  std::size_t reps = 1;
  bool digest = false;
  std::size_t threads = 0;
  std::string trace_path;   ///< empty = tracing off
  bool metrics = false;
  std::string report_path;  ///< empty = no report file
  std::string slo_spec;     ///< empty = SLO engine off
  [[nodiscard]] bool trace() const { return !trace_path.empty(); }
  [[nodiscard]] bool report() const { return !report_path.empty(); }
  [[nodiscard]] bool slo() const { return !slo_spec.empty(); }
};

/// Parses the flags above; unknown arguments are ignored so binaries can
/// layer their own. Throws std::invalid_argument on a malformed value.
[[nodiscard]] SweepCli parse_sweep_cli(int argc, const char* const* argv);

}  // namespace mcs::exp
