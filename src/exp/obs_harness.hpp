// Shared observability rider for the exp_*/fig* bench harness.
//
// Gives every sweep binary the same `--trace FILE` / `--metrics` behavior
// with three pieces:
//
//   CellObs   — constructed inside the cell function; owns the per-cell
//               obs::Tracer (per-cell rings are this codebase's "per
//               thread" rings: each sweep cell is a single-threaded
//               Simulator, so the ring is race-free and a pure function
//               of the cell seed). Attach via engine.set_tracer(
//               cellobs.tracer()) — nullptr when observability is off.
//   ObsCapture— the cell's serializable observation result: the cell's
//               trace digest, a registry snapshot, and (exemplar cell
//               only) the full trace dump.
//   ObsAggregate — folds captures **in flat grid order** (same contract
//               as metrics::Accumulator / Digest merging), then report()
//               writes the exemplar's Chrome trace_event JSON to
//               `--trace FILE`, prints `trace digest <16-hex>` over all
//               cells (the line scripts/check_trace_determinism.sh diffs
//               across MCS_THREADS=1 vs 8), and prints the merged
//               instrument registry under `--metrics`.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <vector>

#include "exp/sweep.hpp"
#include "obs/export.hpp"
#include "obs/registry.hpp"
#include "obs/slo.hpp"
#include "obs/trace.hpp"

namespace mcs::exp {

/// Per-cell observability state. Alive for the duration of one cell run.
class CellObs {
 public:
  /// Tracing/metrics/reporting/SLO activate when the CLI asked for any of
  /// them; `ring` bounds the per-cell event ring (flight-recorder
  /// overwrite beyond).
  explicit CellObs(const SweepCli& cli, std::size_t ring = 1 << 16);

  /// The cell tracer, or nullptr when observability is off — pass
  /// straight to ExecutionEngine::set_tracer / attach_observability.
  [[nodiscard]] obs::Tracer* tracer() {
    return tracer_.has_value() ? &*tracer_ : nullptr;
  }
  [[nodiscard]] bool enabled() const { return tracer_.has_value(); }

  /// Builds the cell's SLO tracker over `registry` (its counters land
  /// there) when the CLI carried `--slo`; nullptr otherwise. Pass the
  /// result to ExecutionEngine::set_slo. Owned by this CellObs.
  [[nodiscard]] obs::SloTracker* make_slo(obs::Registry& registry);

  /// Closes open SLO violation intervals at sim time `at` — call once,
  /// with the cell's final sim time, before capture(). No-op without SLO.
  void finalize(sim::SimTime at);

  /// Captures the cell's observation result. `registry` is typically
  /// &engine.registry(); may be nullptr. `exemplar` cells (flat index 0:
  /// scenario 0, rep 0) keep the full dump for the --trace file.
  struct ObsCapture capture(const obs::Registry* registry, bool exemplar);

 private:
  std::optional<obs::Tracer> tracer_;
  std::vector<obs::SloSpec> slo_specs_;
  std::unique_ptr<obs::SloTracker> slo_;
};

/// Serializable per-cell observation result (cheap to move through
/// run_sweep's result vector; empty/null when observability is off).
struct ObsCapture {
  std::uint64_t trace_digest = 0;
  std::shared_ptr<obs::Registry> registry;   ///< merged cell instruments
  std::shared_ptr<obs::TraceDump> exemplar;  ///< flat-index-0 cell only
};

/// Flat-grid-order fold + end-of-run reporting.
class ObsAggregate {
 public:
  /// Fold captures in flat grid order (cell 0, 1, 2, ...).
  void fold(const ObsCapture& capture);

  /// Writes the exemplar Chrome trace to cli.trace_path (when tracing),
  /// prints `trace digest <16-hex>` to `out`, prints the merged registry
  /// when cli.metrics, and writes the mcs-report-v1 JSON to
  /// cli.report_path when reporting. No-op when observability is off.
  /// Returns false if an output file could not be written.
  bool report(const SweepCli& cli, std::ostream& out) const;

  /// Digest over all cells' trace digests (flat order).
  [[nodiscard]] std::uint64_t trace_digest() const {
    return digest_.value();
  }
  [[nodiscard]] const obs::Registry& registry() const { return merged_; }
  [[nodiscard]] std::uint64_t cells() const { return cells_; }

 private:
  metrics::Digest digest_;
  obs::Registry merged_;
  std::shared_ptr<obs::TraceDump> exemplar_;
  std::uint64_t cells_ = 0;
};

}  // namespace mcs::exp
