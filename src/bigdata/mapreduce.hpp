// The MapReduce sub-ecosystem of Fig. 1: Programming Model + Execution
// Engine layers.
//
// Two cooperating pieces:
//  1. FunctionalMapReduce — real map/shuffle/reduce over in-memory records
//     (the Programming Model; used by the dataflow language and the gaming
//     analytics pipeline, and for correctness tests such as wordcount).
//  2. MapReduceSimulation — the Execution Engine timing model on a
//     simulated cluster: slot scheduling, locality-aware map placement
//     against the StorageEngine, straggler noise, optional speculative
//     execution, a shuffle phase, and reduce tasks.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bigdata/storage.hpp"
#include "sim/simulator.hpp"

namespace mcs::bigdata {

// ---- 1. the programming model (functional) ------------------------------------

/// Classic (key, value) MapReduce over in-memory data.
template <typename In, typename K, typename V>
class FunctionalMapReduce {
 public:
  using MapFn = std::function<std::vector<std::pair<K, V>>(const In&)>;
  using ReduceFn = std::function<V(const K&, const std::vector<V>&)>;

  FunctionalMapReduce(MapFn map, ReduceFn reduce)
      : map_(std::move(map)), reduce_(std::move(reduce)) {}

  [[nodiscard]] std::map<K, V> run(const std::vector<In>& records) const {
    // Map.
    std::map<K, std::vector<V>> groups;  // shuffle: group by key
    for (const In& r : records) {
      for (auto& [k, v] : map_(r)) {
        groups[k].push_back(std::move(v));
      }
    }
    // Reduce.
    std::map<K, V> out;
    for (const auto& [k, vs] : groups) {
      out.emplace(k, reduce_(k, vs));
    }
    return out;
  }

 private:
  MapFn map_;
  ReduceFn reduce_;
};

/// Wordcount — the canonical correctness probe.
[[nodiscard]] std::map<std::string, std::uint64_t> word_count(
    const std::vector<std::string>& lines);

// ---- 2. the execution engine (simulated) -----------------------------------------

struct MapReduceJobConfig {
  DatasetId dataset = 0;
  /// CPU seconds per block at reference speed (map function cost).
  double map_seconds_per_block = 10.0;
  /// Straggler spread: map runtimes are multiplied by lognormal(1, cv).
  double straggler_cv = 0.3;
  /// Launch a backup copy for tasks running > straggler_threshold x the
  /// median of completed tasks (speculative execution).
  bool speculative_execution = false;
  double straggler_threshold = 1.5;
  /// Shuffle volume per input MB (selectivity) and reduce phase shape.
  double shuffle_mb_per_input_mb = 0.2;
  std::size_t reducers = 8;
  double reduce_seconds_each = 5.0;
  /// Map slots per machine (Hadoop-style slot model).
  std::size_t slots_per_machine = 2;
};

struct MapReduceStats {
  double makespan_seconds = 0.0;
  double map_phase_seconds = 0.0;
  double shuffle_seconds = 0.0;
  double reduce_phase_seconds = 0.0;
  std::size_t map_tasks = 0;
  std::size_t speculative_copies = 0;
  std::size_t local_reads = 0;
  std::size_t rack_reads = 0;
  std::size_t remote_reads = 0;
  [[nodiscard]] double locality_fraction() const {
    const double total =
        static_cast<double>(local_reads + rack_reads + remote_reads);
    return total == 0.0 ? 0.0 : static_cast<double>(local_reads) / total;
  }
};

class MapReduceSimulation {
 public:
  MapReduceSimulation(infra::Datacenter& dc, StorageEngine& storage,
                      sim::Rng rng)
      : dc_(dc), storage_(storage), rng_(rng) {}

  /// Runs one job to completion on a private simulator; placement prefers
  /// replica-holding machines (delay scheduling, one heartbeat).
  [[nodiscard]] MapReduceStats run(const MapReduceJobConfig& config);

 private:
  infra::Datacenter& dc_;
  StorageEngine& storage_;
  sim::Rng rng_;
};

}  // namespace mcs::bigdata
