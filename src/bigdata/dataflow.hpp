// The High-Level Language layer of Fig. 1 (Pig/Hive-style): a small lazy
// dataflow over (key, value) records that compiles to stages executed on
// the MapReduce programming model — narrow ops (map/filter) fuse into one
// stage; a wide op (group_sum) forces a shuffle boundary and a new stage,
// exactly the stage-planning rule of real dataflow compilers.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace mcs::bigdata {

struct Record {
  std::string key;
  double value = 0.0;
  friend bool operator==(const Record& a, const Record& b) {
    return a.key == b.key && a.value == b.value;
  }
};

class Dataflow {
 public:
  [[nodiscard]] static Dataflow from(std::vector<Record> records);

  /// Narrow transformation (fuses into the current stage).
  [[nodiscard]] Dataflow map(std::function<Record(const Record&)> fn) const;
  [[nodiscard]] Dataflow filter(std::function<bool(const Record&)> fn) const;

  /// Wide transformation: groups by key and sums values; closes the
  /// current stage (a shuffle happens here).
  [[nodiscard]] Dataflow group_sum() const;

  /// Executes the plan and returns the records (sorted by key for
  /// determinism after wide stages).
  [[nodiscard]] std::vector<Record> collect() const;

  /// Number of MapReduce stages the plan compiles to (>= 1).
  [[nodiscard]] std::size_t stage_count() const;

  /// Human-readable plan, one line per stage (C13: explainability).
  [[nodiscard]] std::vector<std::string> explain() const;

 private:
  struct Op {
    enum class Kind { kMap, kFilter, kGroupSum } kind;
    std::function<Record(const Record&)> map_fn;
    std::function<bool(const Record&)> filter_fn;
  };

  std::shared_ptr<const std::vector<Record>> source_;
  std::vector<Op> ops_;
};

}  // namespace mcs::bigdata
