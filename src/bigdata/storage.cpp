#include "bigdata/storage.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcs::bigdata {

std::string to_string(Locality l) {
  switch (l) {
    case Locality::kLocal: return "local";
    case Locality::kRackLocal: return "rack-local";
    case Locality::kRemote: return "remote";
  }
  return "unknown";
}

StorageEngine::StorageEngine(infra::Datacenter& dc, Config config,
                             sim::Rng rng)
    : dc_(dc), config_(config), rng_(rng) {
  if (dc_.machine_count() == 0) {
    throw std::invalid_argument("StorageEngine: empty datacenter");
  }
  if (config_.replication == 0 || config_.block_mb <= 0.0) {
    throw std::invalid_argument("StorageEngine: bad config");
  }
}

DatasetId StorageEngine::store(const std::string& name, double size_mb) {
  (void)name;
  if (size_mb <= 0.0) throw std::invalid_argument("store: size <= 0");
  const auto n_machines = static_cast<std::int64_t>(dc_.machine_count());
  const auto n_blocks = static_cast<std::size_t>(
      std::ceil(size_mb / config_.block_mb));
  std::vector<Block> blocks;
  blocks.reserve(n_blocks);
  double remaining = size_mb;
  for (std::size_t b = 0; b < n_blocks; ++b) {
    Block block;
    block.id = next_block_++;
    block.size_mb = std::min(config_.block_mb, remaining);
    remaining -= block.size_mb;

    // Replica 1: random machine.
    const auto first =
        static_cast<infra::MachineId>(rng_.uniform_int(0, n_machines - 1));
    block.replicas.push_back(first);
    // Replica 2: same rack, different machine (if possible).
    if (config_.replication >= 2) {
      const auto rack = dc_.rack_members(dc_.rack_of(first));
      for (std::size_t attempt = 0; attempt < 8 && block.replicas.size() < 2;
           ++attempt) {
        const auto pick = rack[static_cast<std::size_t>(rng_.uniform_int(
            0, static_cast<std::int64_t>(rack.size()) - 1))];
        if (pick != first) block.replicas.push_back(pick);
      }
      if (block.replicas.size() < 2 && rack.size() == 1) {
        // Single-machine rack: fall back to any other machine.
        const auto pick = static_cast<infra::MachineId>(
            rng_.uniform_int(0, n_machines - 1));
        if (pick != first) block.replicas.push_back(pick);
      }
    }
    // Replicas 3+: other racks.
    while (block.replicas.size() < config_.replication &&
           block.replicas.size() < dc_.machine_count()) {
      const auto pick =
          static_cast<infra::MachineId>(rng_.uniform_int(0, n_machines - 1));
      const bool duplicate = std::find(block.replicas.begin(),
                                       block.replicas.end(),
                                       pick) != block.replicas.end();
      const bool same_rack = dc_.rack_of(pick) == dc_.rack_of(first);
      if (!duplicate && (!same_rack || dc_.rack_count() <= 1)) {
        block.replicas.push_back(pick);
      }
    }
    blocks.push_back(std::move(block));
  }
  datasets_.push_back(std::move(blocks));
  return static_cast<DatasetId>(datasets_.size() - 1);
}

const std::vector<Block>& StorageEngine::blocks(DatasetId id) const {
  if (id >= datasets_.size()) throw std::out_of_range("StorageEngine::blocks");
  return datasets_[id];
}

Locality StorageEngine::locality(const Block& block,
                                 infra::MachineId machine) const {
  for (infra::MachineId r : block.replicas) {
    if (r == machine) return Locality::kLocal;
  }
  for (infra::MachineId r : block.replicas) {
    if (dc_.rack_of(r) == dc_.rack_of(machine)) return Locality::kRackLocal;
  }
  return Locality::kRemote;
}

double StorageEngine::read_seconds(const Block& block,
                                   infra::MachineId machine) const {
  switch (locality(block, machine)) {
    case Locality::kLocal:
      return block.size_mb / config_.disk_mbps;
    case Locality::kRackLocal:
      return block.size_mb / config_.rack_mbps;
    case Locality::kRemote:
      return block.size_mb / config_.remote_mbps;
  }
  return 0.0;
}

}  // namespace mcs::bigdata
