#include <functional>
#include "bigdata/dataflow.hpp"

#include <algorithm>
#include <map>

namespace mcs::bigdata {

Dataflow Dataflow::from(std::vector<Record> records) {
  Dataflow df;
  df.source_ = std::make_shared<const std::vector<Record>>(std::move(records));
  return df;
}

Dataflow Dataflow::map(std::function<Record(const Record&)> fn) const {
  Dataflow next = *this;
  Op op;
  op.kind = Op::Kind::kMap;
  op.map_fn = std::move(fn);
  next.ops_.push_back(std::move(op));
  return next;
}

Dataflow Dataflow::filter(std::function<bool(const Record&)> fn) const {
  Dataflow next = *this;
  Op op;
  op.kind = Op::Kind::kFilter;
  op.filter_fn = std::move(fn);
  next.ops_.push_back(std::move(op));
  return next;
}

Dataflow Dataflow::group_sum() const {
  Dataflow next = *this;
  Op op;
  op.kind = Op::Kind::kGroupSum;
  next.ops_.push_back(std::move(op));
  return next;
}

std::vector<Record> Dataflow::collect() const {
  std::vector<Record> data = source_ ? *source_ : std::vector<Record>{};
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kMap: {
        for (Record& r : data) r = op.map_fn(r);
        break;
      }
      case Op::Kind::kFilter: {
        data.erase(std::remove_if(data.begin(), data.end(),
                                  [&](const Record& r) {
                                    return !op.filter_fn(r);
                                  }),
                   data.end());
        break;
      }
      case Op::Kind::kGroupSum: {
        std::map<std::string, double> groups;
        for (const Record& r : data) groups[r.key] += r.value;
        data.clear();
        for (const auto& [k, v] : groups) data.push_back(Record{k, v});
        break;  // std::map iteration leaves output key-sorted
      }
    }
  }
  return data;
}

std::size_t Dataflow::stage_count() const {
  std::size_t stages = 1;
  for (const Op& op : ops_) {
    if (op.kind == Op::Kind::kGroupSum) ++stages;
  }
  return stages;
}

std::vector<std::string> Dataflow::explain() const {
  std::vector<std::string> lines;
  std::string current = "stage 1: scan";
  std::size_t stage = 1;
  for (const Op& op : ops_) {
    switch (op.kind) {
      case Op::Kind::kMap:
        current += " -> map";
        break;
      case Op::Kind::kFilter:
        current += " -> filter";
        break;
      case Op::Kind::kGroupSum:
        current += " -> shuffle";
        lines.push_back(current);
        ++stage;
        current = "stage " + std::to_string(stage) + ": group_sum";
        break;
    }
  }
  lines.push_back(current);
  return lines;
}

}  // namespace mcs::bigdata
