#include "bigdata/mapreduce.hpp"

#include <cctype>
#include <numeric>
#include <queue>
#include <sstream>
#include <stdexcept>

namespace mcs::bigdata {

std::map<std::string, std::uint64_t> word_count(
    const std::vector<std::string>& lines) {
  FunctionalMapReduce<std::string, std::string, std::uint64_t> job(
      [](const std::string& line) {
        std::vector<std::pair<std::string, std::uint64_t>> out;
        std::string word;
        std::istringstream is(line);
        while (is >> word) {
          std::string clean;
          for (char c : word) {
            if (std::isalnum(static_cast<unsigned char>(c))) {
              clean.push_back(static_cast<char>(
                  std::tolower(static_cast<unsigned char>(c))));
            }
          }
          if (!clean.empty()) out.emplace_back(std::move(clean), 1);
        }
        return out;
      },
      [](const std::string&, const std::vector<std::uint64_t>& vs) {
        return std::accumulate(vs.begin(), vs.end(), std::uint64_t{0});
      });
  return job.run(lines);
}

MapReduceStats MapReduceSimulation::run(const MapReduceJobConfig& config) {
  const auto& blocks = storage_.blocks(config.dataset);
  MapReduceStats stats;
  stats.map_tasks = blocks.size();
  if (blocks.empty()) return stats;

  // Collect usable machines and their slots.
  struct Slot {
    infra::MachineId machine;
    double speed;
    double free_at = 0.0;
  };
  std::vector<Slot> slots;
  const infra::Datacenter& dc = dc_;
  for (const infra::Machine* m : dc.machines()) {
    if (!m->usable()) continue;
    for (std::size_t s = 0; s < config.slots_per_machine; ++s) {
      slots.push_back(Slot{m->id(), m->speed_factor(), 0.0});
    }
  }
  if (slots.empty()) {
    throw std::runtime_error("MapReduceSimulation: no usable machines");
  }

  // ---- map phase: list scheduling with locality preference ----------------
  std::vector<const Block*> pending;
  pending.reserve(blocks.size());
  for (const Block& b : blocks) pending.push_back(&b);

  struct TaskRun {
    double start = 0.0;
    double runtime = 0.0;
    double finish = 0.0;
  };
  std::vector<TaskRun> runs;
  runs.reserve(blocks.size());
  double total_input_mb = 0.0;

  while (!pending.empty()) {
    // Earliest-free slot.
    std::size_t s = 0;
    for (std::size_t i = 1; i < slots.size(); ++i) {
      if (slots[i].free_at < slots[s].free_at) s = i;
    }
    // Delay scheduling: prefer a block local to that slot's machine, then
    // rack-local, then any.
    std::size_t pick = pending.size();
    for (Locality want : {Locality::kLocal, Locality::kRackLocal}) {
      for (std::size_t i = 0; i < pending.size() && pick == pending.size();
           ++i) {
        if (storage_.locality(*pending[i], slots[s].machine) == want) pick = i;
      }
      if (pick != pending.size()) break;
    }
    if (pick == pending.size()) pick = 0;

    const Block& block = *pending[pick];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick));
    total_input_mb += block.size_mb;

    switch (storage_.locality(block, slots[s].machine)) {
      case Locality::kLocal: ++stats.local_reads; break;
      case Locality::kRackLocal: ++stats.rack_reads; break;
      case Locality::kRemote: ++stats.remote_reads; break;
    }

    const double noise =
        config.straggler_cv <= 0.0
            ? 1.0
            : rng_.lognormal_mean_cv(1.0, config.straggler_cv);
    const double runtime = (storage_.read_seconds(block, slots[s].machine) +
                            config.map_seconds_per_block * noise) /
                           slots[s].speed;
    TaskRun run;
    run.start = slots[s].free_at;
    run.runtime = runtime;
    run.finish = run.start + runtime;
    slots[s].free_at = run.finish;
    runs.push_back(run);
  }

  // ---- speculative execution ------------------------------------------------
  if (config.speculative_execution && runs.size() >= 4) {
    std::vector<double> runtimes;
    for (const TaskRun& r : runs) runtimes.push_back(r.runtime);
    std::nth_element(runtimes.begin(),
                     runtimes.begin() + static_cast<std::ptrdiff_t>(
                                            runtimes.size() / 2),
                     runtimes.end());
    const double median = runtimes[runtimes.size() / 2];
    for (TaskRun& r : runs) {
      if (r.runtime > config.straggler_threshold * median) {
        // Backup launched once the straggler is detected; fresh draw
        // without straggler noise (it usually lands on a healthy node).
        const double backup_start =
            r.start + config.straggler_threshold * median;
        const double backup_finish =
            backup_start + config.map_seconds_per_block;
        if (backup_finish < r.finish) {
          r.finish = backup_finish;
          ++stats.speculative_copies;
        }
      }
    }
  }

  for (const TaskRun& r : runs) {
    stats.map_phase_seconds = std::max(stats.map_phase_seconds, r.finish);
  }

  // ---- shuffle: all-to-all over the oversubscribed core --------------------
  const double shuffle_mb = total_input_mb * config.shuffle_mb_per_input_mb;
  const double cross_section_mbps =
      storage_.config().remote_mbps *
      std::max(1.0, static_cast<double>(dc.machine_count()) / 2.0);
  stats.shuffle_seconds = shuffle_mb / cross_section_mbps;

  // ---- reduce phase: waves of reducers over the slots -----------------------
  double mean_speed = 0.0;
  for (const Slot& s : slots) mean_speed += s.speed;
  mean_speed /= static_cast<double>(slots.size());
  const std::size_t waves =
      (config.reducers + slots.size() - 1) / slots.size();
  stats.reduce_phase_seconds =
      static_cast<double>(waves) * config.reduce_seconds_each / mean_speed;

  stats.makespan_seconds = stats.map_phase_seconds + stats.shuffle_seconds +
                           stats.reduce_phase_seconds;
  return stats;
}

}  // namespace mcs::bigdata
