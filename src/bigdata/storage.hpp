// Storage Engine layer of the Fig. 1 big-data reference architecture.
//
// A HDFS-like block store over the datacenter: datasets split into fixed
// blocks, each replicated rack-aware (first replica on a random machine,
// second in the same rack, third in another rack). The MapReduce engine
// asks it for placement and locality, which drives the paper's point that
// lower layers "must perform well to offer good non-functional properties".
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "infra/topology.hpp"
#include "sim/random.hpp"

namespace mcs::bigdata {

using DatasetId = std::uint32_t;

struct Block {
  std::uint64_t id = 0;
  double size_mb = 0.0;
  std::vector<infra::MachineId> replicas;
};

enum class Locality { kLocal, kRackLocal, kRemote };

[[nodiscard]] std::string to_string(Locality l);

class StorageEngine {
 public:
  struct Config {
    std::size_t replication = 3;
    double block_mb = 128.0;
    double disk_mbps = 200.0;       ///< local read bandwidth
    double rack_mbps = 120.0;       ///< rack-local read bandwidth
    double remote_mbps = 40.0;      ///< cross-rack (oversubscribed core)
  };

  StorageEngine(infra::Datacenter& dc, Config config, sim::Rng rng);

  /// Splits `size_mb` into blocks and places replicas rack-aware.
  DatasetId store(const std::string& name, double size_mb);

  [[nodiscard]] const std::vector<Block>& blocks(DatasetId id) const;
  [[nodiscard]] std::size_t dataset_count() const { return datasets_.size(); }

  /// Locality class of reading `block` from `machine`.
  [[nodiscard]] Locality locality(const Block& block,
                                  infra::MachineId machine) const;

  /// Seconds to read the block from the given machine (best replica).
  [[nodiscard]] double read_seconds(const Block& block,
                                    infra::MachineId machine) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  infra::Datacenter& dc_;
  Config config_;
  sim::Rng rng_;
  std::uint64_t next_block_ = 0;
  std::vector<std::vector<Block>> datasets_;
};

}  // namespace mcs::bigdata
