// The Pregel sub-ecosystem of Fig. 1: a BSP ("think like a vertex")
// execution engine over hash-partitioned graph data, with a timing model
// for the simulated cluster (compute per active vertex, message volume,
// cross-partition traffic over the oversubscribed core, barrier latency).
//
// Semantics follow Pregel/Valiant BSP (the paper lists "computational
// models including CSP and Valiant's BSP" among the imports from
// Distributed Systems, §3.5): messages sent in superstep S are delivered
// in S+1; a vertex halts by returning false and is reactivated by incoming
// messages. Values and messages are doubles — sufficient for the four
// Graphalytics kernels run this way (PR, BFS, WCC, SSSP).
// The superstep compute loop fans out over parallel::ThreadPool in fixed
// contiguous vertex chunks; per-chunk send buffers are replayed in chunk
// order, so message delivery order, values, and the modelled timing stats
// are all bit-identical to the sequential engine at any thread count.
// Compute functions may read shared state but must only write their own
// vertex's value (all four built-in kernels do).
#pragma once

#include <functional>
#include <vector>

#include "graph/graph.hpp"
#include "parallel/thread_pool.hpp"

namespace mcs::bigdata {

struct PregelConfig {
  std::size_t workers = 4;
  double seconds_per_vertex = 2e-6;    ///< compute cost per active vertex
  double seconds_per_message = 5e-7;   ///< cost to process one message
  double message_bytes = 16.0;
  double cross_mbps = 1000.0;          ///< aggregate cross-worker bandwidth
  double barrier_seconds = 0.001;      ///< per-superstep sync cost
};

struct PregelStats {
  std::size_t supersteps = 0;
  double wall_seconds = 0.0;           ///< modelled cluster time
  std::uint64_t total_messages = 0;
  std::uint64_t cross_messages = 0;    ///< crossed a partition boundary
  std::vector<std::size_t> active_per_superstep;
};

class PregelEngine {
 public:
  using SendFn = std::function<void(graph::VertexId, double)>;
  /// compute(v, value, incoming, send, superstep) -> stay active?
  using ComputeFn = std::function<bool(
      graph::VertexId, double&, const std::vector<double>&, const SendFn&,
      std::size_t)>;

  /// `pool` runs the superstep compute loop; defaults to the process-wide
  /// parallel::default_pool(). Results do not depend on the pool size.
  PregelEngine(const graph::Graph& g, PregelConfig config,
               parallel::ThreadPool* pool = nullptr);

  /// Runs until no vertex is active and no messages are in flight, or
  /// until max_supersteps. `values` must have one entry per vertex.
  PregelStats run(std::vector<double>& values, const ComputeFn& compute,
                  std::size_t max_supersteps);

  [[nodiscard]] std::size_t worker_of(graph::VertexId v) const {
    return v % config_.workers;
  }

 private:
  const graph::Graph& g_;
  PregelConfig config_;
  parallel::ThreadPool* pool_;
};

// ---- the four kernels as vertex programs (cross-checked against
// ---- graph/algorithms.hpp by the test suite) ----------------------------------

struct PregelRun {
  std::vector<double> values;
  PregelStats stats;
};

[[nodiscard]] PregelRun pregel_pagerank(const graph::Graph& g,
                                        std::size_t iterations,
                                        PregelConfig config = {});
[[nodiscard]] PregelRun pregel_bfs(const graph::Graph& g,
                                   graph::VertexId source,
                                   PregelConfig config = {});
[[nodiscard]] PregelRun pregel_wcc(const graph::Graph& g,
                                   PregelConfig config = {});
[[nodiscard]] PregelRun pregel_sssp(const graph::Graph& g,
                                    graph::VertexId source,
                                    PregelConfig config = {});

}  // namespace mcs::bigdata
