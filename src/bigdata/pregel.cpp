#include "bigdata/pregel.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/algorithms.hpp"

namespace mcs::bigdata {

PregelEngine::PregelEngine(const graph::Graph& g, PregelConfig config,
                           parallel::ThreadPool* pool)
    : g_(g), config_(config),
      pool_(pool != nullptr ? pool : &parallel::default_pool()) {
  if (config_.workers == 0) {
    throw std::invalid_argument("PregelEngine: zero workers");
  }
}

PregelStats PregelEngine::run(std::vector<double>& values,
                              const ComputeFn& compute,
                              std::size_t max_supersteps) {
  if (values.size() != g_.vertex_count()) {
    throw std::invalid_argument("PregelEngine::run: values size mismatch");
  }
  const graph::VertexId n = g_.vertex_count();
  PregelStats stats;

  // The compute loop fans out over fixed contiguous vertex chunks (a pure
  // function of n — never of the pool size). Each chunk records its sends
  // in a private buffer; delivery replays the buffers in chunk order,
  // which is ascending sender order — exactly the order the sequential
  // loop filled each mailbox in. Modelled per-worker compute cost is a
  // floating-point fold, so it is re-accumulated sequentially in vertex
  // order from the recorded message counts: stats stay bitwise identical
  // to the sequential engine.
  struct SendRec {
    graph::VertexId target;
    double msg;
  };
  const std::size_t chunks = parallel::default_chunk_count(n);
  std::vector<std::vector<SendRec>> chunk_sends(chunks);
  std::vector<std::uint64_t> chunk_sent(chunks), chunk_cross(chunks);

  std::vector<std::vector<double>> inbox(n);
  // Plain bytes, not vector<bool>: chunks write entries concurrently.
  std::vector<std::uint8_t> active(n, 1), processed(n, 0);
  std::vector<std::size_t> messages_in(n, 0);
  std::vector<double> worker_compute(config_.workers);

  for (std::size_t step = 0; step < max_supersteps; ++step) {
    parallel::parallel_for(
        *pool_, 0, n,
        [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
          auto& sends = chunk_sends[chunk];
          sends.clear();
          std::uint64_t sent = 0, cross = 0;
          for (std::size_t i = lo; i < hi; ++i) {
            const auto v = static_cast<graph::VertexId>(i);
            if (active[v] == 0 && inbox[v].empty()) {
              processed[v] = 0;
              continue;
            }
            processed[v] = 1;
            messages_in[v] = inbox[v].size();
            const std::size_t w = worker_of(v);
            SendFn send = [&](graph::VertexId target, double msg) {
              if (target >= n) {
                throw std::out_of_range("Pregel send: bad target");
              }
              sends.push_back(SendRec{target, msg});
              ++sent;
              if (worker_of(target) != w) ++cross;
            };
            active[v] = compute(v, values[v], inbox[v], send, step) ? 1 : 0;
            inbox[v].clear();
          }
          chunk_sent[chunk] = sent;
          chunk_cross[chunk] = cross;
        },
        chunks);

    // Sequential epilogue: cost fold in vertex order (bitwise-stable sum).
    std::size_t active_count = 0;
    std::fill(worker_compute.begin(), worker_compute.end(), 0.0);
    for (graph::VertexId v = 0; v < n; ++v) {
      if (processed[v] == 0) continue;
      ++active_count;
      worker_compute[worker_of(v)] +=
          config_.seconds_per_vertex +
          config_.seconds_per_message * static_cast<double>(messages_in[v]);
    }
    if (active_count == 0) break;

    std::uint64_t sent = 0, cross = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      sent += chunk_sent[c];
      cross += chunk_cross[c];
    }
    ++stats.supersteps;
    stats.active_per_superstep.push_back(active_count);
    stats.total_messages += sent;
    stats.cross_messages += cross;

    // Superstep wall time: slowest worker + cross traffic + barrier.
    const double slowest =
        *std::max_element(worker_compute.begin(), worker_compute.end());
    const double comm = static_cast<double>(cross) * config_.message_bytes /
                        (config_.cross_mbps * 1e6);
    stats.wall_seconds += slowest + comm + config_.barrier_seconds;

    // Deliver: chunk order == ascending sender order.
    bool any_message = false;
    for (std::size_t c = 0; c < chunks; ++c) {
      for (const SendRec& rec : chunk_sends[c]) {
        inbox[rec.target].push_back(rec.msg);
        any_message = true;
      }
    }
    const bool any_active =
        std::any_of(active.begin(), active.end(),
                    [](std::uint8_t a) { return a != 0; });
    if (!any_message && !any_active) break;
  }
  return stats;
}

PregelRun pregel_pagerank(const graph::Graph& g, std::size_t iterations,
                          PregelConfig config) {
  PregelEngine engine(g, config);
  PregelRun run;
  const double n = static_cast<double>(g.vertex_count());
  run.values.assign(g.vertex_count(), 1.0 / n);
  constexpr double kDamping = 0.85;

  // Dangling mass is approximated as teleport-only (matching the
  // sequential implementation requires a global aggregate; the test suite
  // compares on graphs without dangling vertices).
  run.stats = engine.run(
      run.values,
      [&g, n](graph::VertexId v, double& value,
              const std::vector<double>& msgs,
              const PregelEngine::SendFn& send, std::size_t step) {
        if (step > 0) {
          double sum = 0.0;
          for (double m : msgs) sum += m;
          value = (1.0 - kDamping) / n + kDamping * sum;
        }
        const auto deg = g.out_degree(v);
        if (deg > 0) {
          const double share = value / static_cast<double>(deg);
          for (graph::VertexId w : g.neighbors(v)) send(w, share);
        }
        return true;  // fixed-iteration program; engine stops at the cap
      },
      iterations + 1);
  return run;
}

PregelRun pregel_bfs(const graph::Graph& g, graph::VertexId source,
                     PregelConfig config) {
  PregelEngine engine(g, config);
  PregelRun run;
  run.values.assign(g.vertex_count(),
                    static_cast<double>(graph::kUnreachable));
  if (source < g.vertex_count()) run.values[source] = 0.0;

  run.stats = engine.run(
      run.values,
      [&g, source](graph::VertexId v, double& value,
                   const std::vector<double>& msgs,
                   const PregelEngine::SendFn& send, std::size_t step) {
        bool improved = false;
        if (step == 0) {
          improved = v == source;
        } else {
          for (double m : msgs) {
            if (m < value) {
              value = m;
              improved = true;
            }
          }
        }
        if (improved) {
          for (graph::VertexId w : g.neighbors(v)) send(w, value + 1.0);
        }
        return false;  // halt; messages reactivate
      },
      g.vertex_count() + 2);
  return run;
}

PregelRun pregel_wcc(const graph::Graph& g, PregelConfig config) {
  PregelEngine engine(g, config);
  PregelRun run;
  run.values.resize(g.vertex_count());
  for (graph::VertexId v = 0; v < g.vertex_count(); ++v) {
    run.values[v] = static_cast<double>(v);
  }
  run.stats = engine.run(
      run.values,
      [&g](graph::VertexId v, double& value, const std::vector<double>& msgs,
           const PregelEngine::SendFn& send, std::size_t step) {
        bool improved = step == 0;  // everyone broadcasts initially
        for (double m : msgs) {
          if (m < value) {
            value = m;
            improved = true;
          }
        }
        if (improved) {
          for (graph::VertexId w : g.neighbors(v)) send(w, value);
        }
        return false;
      },
      g.vertex_count() + 2);
  return run;
}

PregelRun pregel_sssp(const graph::Graph& g, graph::VertexId source,
                      PregelConfig config) {
  PregelEngine engine(g, config);
  PregelRun run;
  run.values.assign(g.vertex_count(), graph::kInfDistance);
  if (source < g.vertex_count()) run.values[source] = 0.0;
  run.stats = engine.run(
      run.values,
      [&g, source](graph::VertexId v, double& value,
                   const std::vector<double>& msgs,
                   const PregelEngine::SendFn& send, std::size_t step) {
        bool improved = step == 0 && v == source;
        for (double m : msgs) {
          if (m < value) {
            value = m;
            improved = true;
          }
        }
        if (improved) {
          const auto nbrs = g.neighbors(v);
          const auto ws = g.weights(v);
          for (std::size_t i = 0; i < nbrs.size(); ++i) {
            send(nbrs[i], value + ws[i]);
          }
        }
        return false;
      },
      4 * g.vertex_count() + 2);
  return run;
}

}  // namespace mcs::bigdata
