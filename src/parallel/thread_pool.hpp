// Shared parallelism substrate: a fixed-size thread pool and a
// deterministic parallel_for.
//
// Everything in this repository that goes multi-core routes through this
// layer (graph kernels, the Pregel superstep loop; later: sharded
// schedulers, concurrent autoscaler sweeps). The contract that makes that
// safe for a reproducibility-first codebase:
//
//   DETERMINISM. Work is split into chunks whose boundaries are a pure
//   function of the range size — never of the thread count or of timing.
//   Which thread runs which chunk is scheduling noise; callers that reduce
//   across chunks merge per-chunk partials in chunk-index order. Under
//   those rules a parallel kernel is bit-identical at any thread count,
//   including 1 (see DESIGN.md §4 "Determinism").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/callback.hpp"

namespace mcs::parallel {

/// Fixed-size worker pool. Threads are started once and parked on a
/// condition variable between batches; each run_tasks call fans a batch of
/// indexed tasks over them and blocks until every task finished.
class ThreadPool {
 public:
  /// `threads == 0` resolves to the MCS_THREADS environment variable if
  /// set, else std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const { return workers_.size(); }

  /// Runs fn(i) for every i in [0, tasks), distributing indices over the
  /// workers, and blocks until all complete. If any task throws, the
  /// exception from the lowest task index is rethrown in the caller
  /// (deterministic error reporting). Not reentrant: tasks must not call
  /// run_tasks on the same pool. `fn` is borrowed only for the duration of
  /// the call (run_tasks blocks until the batch drains), so a FunctionRef
  /// is safe and keeps the fan-out allocation-free.
  void run_tasks(std::size_t tasks, core::FunctionRef<void(std::size_t)> fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;   // signalled when a batch starts / stop
  std::condition_variable done_cv_;   // signalled when a batch completes
  core::FunctionRef<void(std::size_t)> batch_fn_;
  std::size_t batch_size_ = 0;
  std::size_t next_task_ = 0;
  std::size_t in_flight_ = 0;
  std::uint64_t batch_id_ = 0;
  std::vector<std::pair<std::size_t, std::exception_ptr>> errors_;
  bool stop_ = false;
};

/// Number of chunks parallel_for splits a range into when the caller does
/// not say otherwise. A pure function of the range (never the pool), so
/// chunk boundaries — and therefore any ordered chunk reduction — are
/// identical at every thread count. 64 chunks keeps every pool size up to
/// 64 busy while bounding per-chunk merge state.
[[nodiscard]] constexpr std::size_t default_chunk_count(std::size_t range) {
  constexpr std::size_t kMaxChunks = 64;
  return range < kMaxChunks ? range : kMaxChunks;
}

/// Splits [begin, end) into `chunks` near-equal contiguous chunks (first
/// `range % chunks` chunks get one extra element) and runs
/// body(chunk_begin, chunk_end, chunk_index) for each on the pool.
/// Boundaries depend only on the range and `chunks`; with `chunks == 0`
/// the default_chunk_count(range) split is used.
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  Body&& body, std::size_t chunks = 0) {
  if (end <= begin) return;
  const std::size_t range = end - begin;
  if (chunks == 0) chunks = default_chunk_count(range);
  if (chunks > range) chunks = range;
  const std::size_t base = range / chunks;
  const std::size_t extra = range % chunks;
  auto chunk_bounds = [=](std::size_t c) {
    const std::size_t lo =
        begin + c * base + (c < extra ? c : extra);
    const std::size_t hi = lo + base + (c < extra ? 1 : 0);
    return std::pair<std::size_t, std::size_t>{lo, hi};
  };
  if (chunks == 1) {  // avoid pool round-trip for tiny ranges
    body(begin, end, std::size_t{0});
    return;
  }
  pool.run_tasks(chunks, [&](std::size_t c) {
    const auto [lo, hi] = chunk_bounds(c);
    body(lo, hi, c);
  });
}

/// The process-wide pool used by subsystems that do not thread a pool
/// through their API (e.g. the Pregel engine). Sized by MCS_THREADS or
/// hardware concurrency; constructed on first use.
ThreadPool& default_pool();

}  // namespace mcs::parallel
