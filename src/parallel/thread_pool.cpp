#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>

namespace mcs::parallel {

namespace {

std::size_t resolve_thread_count(std::size_t requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("MCS_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed > 0) return static_cast<std::size_t>(parsed);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  const std::size_t n = resolve_thread_count(threads);
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  std::uint64_t seen_batch = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stop_ || (batch_id_ != seen_batch && next_task_ < batch_size_);
    });
    if (stop_) return;
    const std::uint64_t batch = batch_id_;
    while (batch_id_ == batch && next_task_ < batch_size_) {
      const std::size_t task = next_task_++;
      ++in_flight_;
      lock.unlock();
      std::exception_ptr error;
      try {
        batch_fn_(task);
      } catch (...) {
        error = std::current_exception();
      }
      lock.lock();
      // mcs-lint: allow(H3) — exception path only: one entry per *failed*
      // task; the success path never touches errors_.
      if (error) errors_.emplace_back(task, error);
      --in_flight_;
      if (next_task_ >= batch_size_ && in_flight_ == 0) {
        done_cv_.notify_all();
      }
    }
    seen_batch = batch;
  }
}

void ThreadPool::run_tasks(std::size_t tasks,
                           core::FunctionRef<void(std::size_t)> fn) {
  if (tasks == 0) return;
  std::unique_lock<std::mutex> lock(mu_);
  batch_fn_ = fn;
  batch_size_ = tasks;
  next_task_ = 0;
  errors_.clear();
  ++batch_id_;
  work_cv_.notify_all();
  // The caller participates too: with a 1-thread pool this still overlaps
  // compute with the worker, and it never deadlocks a small pool.
  while (next_task_ < batch_size_) {
    const std::size_t task = next_task_++;
    ++in_flight_;
    lock.unlock();
    std::exception_ptr error;
    try {
      fn(task);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    // mcs-lint: allow(H3) — exception path only: one entry per *failed*
    // task; the success path never touches errors_.
    if (error) errors_.emplace_back(task, error);
    --in_flight_;
  }
  done_cv_.wait(lock, [&] { return in_flight_ == 0; });
  batch_size_ = 0;
  batch_fn_ = {};
  if (!errors_.empty()) {
    // Deterministic error reporting: rethrow the lowest task index.
    auto first = std::min_element(
        errors_.begin(), errors_.end(),
        [](const auto& a, const auto& b) { return a.first < b.first; });
    std::exception_ptr error = first->second;
    errors_.clear();
    lock.unlock();
    std::rethrow_exception(error);
  }
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mcs::parallel
