#include "infra/machine.hpp"

#include <algorithm>

namespace mcs::infra {

std::string to_string(MachineState s) {
  switch (s) {
    case MachineState::kOperational: return "operational";
    case MachineState::kFailed: return "failed";
    case MachineState::kOff: return "off";
  }
  return "unknown";
}

Machine::Machine(MachineId id, std::string name, ResourceVector capacity,
                 double speed_factor, PowerModel power)
    : id_(id),
      name_(std::move(name)),
      capacity_(capacity),
      speed_factor_(speed_factor),
      power_(power) {
  if (!capacity.nonnegative() || capacity.cpu() <= 0.0) {
    throw std::invalid_argument("Machine: capacity must have positive cores");
  }
  if (speed_factor <= 0.0) {
    throw std::invalid_argument("Machine: speed factor must be positive");
  }
}

bool Machine::can_fit(const ResourceVector& r) const {
  return usable() && (used_ + r).fits_within(capacity_);
}

void Machine::allocate(const ResourceVector& r) {
  if (!r.nonnegative()) throw std::logic_error("Machine::allocate: negative");
  if (!can_fit(r)) {
    throw std::logic_error("Machine::allocate: does not fit on " + name_);
  }
  used_ += r;
  ++live_allocations_;
}

void Machine::release(const ResourceVector& r) {
  if (live_allocations_ == 0) {
    throw std::logic_error("Machine::release: over-release on " + name_);
  }
  ResourceVector next = used_ - r;
  // Allow tiny residue from floating point accumulation in either
  // direction: clamp negatives to zero and snap near-zero positives to
  // zero, per dimension. Positive residue is the dangerous kind — 1e-16
  // leftover cores make an exactly-full-machine demand unschedulable
  // forever.
  constexpr double kEps = 1e-9;
  for (std::size_t d = 0; d < core::kResourceDims; ++d) {
    if (next[d] < -kEps) {
      throw std::logic_error("Machine::release: over-release on " + name_);
    }
  }
  for (std::size_t d = 0; d < core::kResourceDims; ++d) {
    next[d] = next[d] < kEps ? 0.0 : next[d];
  }
  --live_allocations_;
  // The last holder left: whatever remains is pure accumulation error.
  if (live_allocations_ == 0) next = ResourceVector{};
  used_ = next;
}

double Machine::utilization() const {
  return capacity_.cpu() == 0.0 ? 0.0 : used_.cpu() / capacity_.cpu();
}

double Machine::power_watts() const {
  switch (state_) {
    case MachineState::kOff:
      return 0.0;
    case MachineState::kFailed:
      return power_.idle_watts;
    case MachineState::kOperational:
      return power_.idle_watts +
             (power_.max_watts - power_.idle_watts) * utilization();
  }
  return 0.0;
}

void Machine::set_state(MachineState s) { state_ = s; }

void Machine::fail() {
  state_ = MachineState::kFailed;
  used_ = ResourceVector{};
  live_allocations_ = 0;
}

void Machine::repair() {
  state_ = MachineState::kOperational;
  used_ = ResourceVector{};
  live_allocations_ = 0;
}

}  // namespace mcs::infra
