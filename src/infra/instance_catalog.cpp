#include "infra/instance_catalog.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::infra {

std::string to_string(InstanceFamily f) {
  switch (f) {
    case InstanceFamily::kGeneral: return "general";
    case InstanceFamily::kCompute: return "compute";
    case InstanceFamily::kMemory: return "memory";
    case InstanceFamily::kAccelerated: return "accelerated";
    case InstanceFamily::kFpga: return "fpga";
    case InstanceFamily::kBurstable: return "burstable";
  }
  return "unknown";
}

void InstanceCatalog::add(InstanceType type) {
  if (type.price_per_hour < 0.0 || type.speed_factor <= 0.0) {
    throw std::invalid_argument("InstanceCatalog::add: bad type parameters");
  }
  // mcs-lint: allow(H3) — catalog construction is setup-time; the name
  // `add` collides with hot-path metric recording in the call graph.
  types_.push_back(std::move(type));
}

InstanceCatalog InstanceCatalog::representative() {
  InstanceCatalog c;
  auto t = [](std::string name, InstanceFamily fam, double cores, double mem,
              double acc, double speed, double price) {
    return InstanceType{std::move(name), fam,
                        ResourceVector{cores, mem, acc}, speed, price};
  };
  // Burstable: cheap, slow.
  c.add(t("t3.small", InstanceFamily::kBurstable, 2, 2, 0, 0.6, 0.02));
  c.add(t("t3.large", InstanceFamily::kBurstable, 2, 8, 0, 0.7, 0.08));
  // General purpose.
  c.add(t("m5.large", InstanceFamily::kGeneral, 2, 8, 0, 1.0, 0.10));
  c.add(t("m5.2xlarge", InstanceFamily::kGeneral, 8, 32, 0, 1.0, 0.38));
  c.add(t("m5.8xlarge", InstanceFamily::kGeneral, 32, 128, 0, 1.0, 1.54));
  // Compute optimized: faster cores, less memory per core.
  c.add(t("c5.xlarge", InstanceFamily::kCompute, 4, 8, 0, 1.4, 0.17));
  c.add(t("c5.4xlarge", InstanceFamily::kCompute, 16, 32, 0, 1.4, 0.68));
  c.add(t("c5.9xlarge", InstanceFamily::kCompute, 36, 72, 0, 1.4, 1.53));
  // Memory optimized.
  c.add(t("r5.xlarge", InstanceFamily::kMemory, 4, 32, 0, 1.0, 0.25));
  c.add(t("r5.4xlarge", InstanceFamily::kMemory, 16, 128, 0, 1.0, 1.01));
  // Accelerated.
  c.add(t("g4dn.xlarge", InstanceFamily::kAccelerated, 4, 16, 1, 1.1, 0.53));
  c.add(t("p3.2xlarge", InstanceFamily::kAccelerated, 8, 61, 1, 1.2, 3.06));
  c.add(t("p3.8xlarge", InstanceFamily::kAccelerated, 32, 244, 4, 1.2, 12.24));
  // FPGA.
  c.add(t("f1.2xlarge", InstanceFamily::kFpga, 8, 122, 1, 1.0, 1.65));
  return c;
}

std::optional<InstanceType> InstanceCatalog::find(
    const std::string& name) const {
  for (const auto& t : types_) {
    if (t.name == name) return t;
  }
  return std::nullopt;
}

std::vector<InstanceType> InstanceCatalog::feasible(
    const ResourceVector& demand) const {
  std::vector<InstanceType> out;
  for (const auto& t : types_) {
    if (demand.fits_within(t.resources)) out.push_back(t);
  }
  return out;
}

std::optional<InstanceType> InstanceCatalog::select(
    const ResourceVector& demand, SelectionObjective objective) const {
  const auto options = feasible(demand);
  if (options.empty()) return std::nullopt;
  auto score = [objective](const InstanceType& t) {
    switch (objective) {
      case SelectionObjective::kCheapest:
        return -t.price_per_hour;
      case SelectionObjective::kFastest:
        return t.speed_factor;
      case SelectionObjective::kBestPricePerf:
        return t.price_per_hour == 0.0
                   ? t.resources.cpu() * t.speed_factor
                   : t.resources.cpu() * t.speed_factor / t.price_per_hour;
    }
    return 0.0;
  };
  return *std::max_element(options.begin(), options.end(),
                           [&](const InstanceType& a, const InstanceType& b) {
                             return score(a) < score(b);
                           });
}

}  // namespace mcs::infra
