#include "infra/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::infra {

Datacenter::Datacenter(std::string name, std::string region,
                       NetworkModel network)
    : name_(std::move(name)), region_(std::move(region)), network_(network) {}

Machine& Datacenter::add_machine(std::string name, ResourceVector capacity,
                                 double speed_factor, std::size_t rack,
                                 PowerModel power) {
  const auto id = static_cast<MachineId>(machines_.size());
  machines_.push_back(std::make_unique<Machine>(id, std::move(name), capacity,
                                                speed_factor, power));
  rack_of_.push_back(rack);
  zone_id_of_.push_back(0);
  return *machines_.back();
}

void Datacenter::set_zone(MachineId id, const std::string& zone) {
  if (id >= zone_id_of_.size()) throw std::out_of_range("Datacenter::set_zone");
  const auto [it, inserted] = zone_ids_.try_emplace(
      zone, static_cast<std::uint32_t>(zone_names_.size()));
  if (inserted) zone_names_.push_back(zone);
  zone_id_of_[id] = it->second;
}

const std::string& Datacenter::zone_of(MachineId id) const {
  if (id >= zone_id_of_.size()) throw std::out_of_range("Datacenter::zone_of");
  return zone_names_[zone_id_of_[id]];
}

std::vector<MachineId> Datacenter::zone_members(const std::string& zone) const {
  std::vector<MachineId> out;
  const auto it = zone_ids_.find(zone);
  if (it == zone_ids_.end()) return out;
  for (MachineId id = 0; id < zone_id_of_.size(); ++id) {
    if (zone_id_of_[id] == it->second) out.push_back(id);
  }
  return out;
}

void Datacenter::add_uniform_racks(std::size_t racks, std::size_t per_rack,
                                   ResourceVector capacity,
                                   double speed_factor, PowerModel power) {
  for (std::size_t r = 0; r < racks; ++r) {
    for (std::size_t m = 0; m < per_rack; ++m) {
      add_machine(name_ + "-r" + std::to_string(r) + "-m" + std::to_string(m),
                  capacity, speed_factor, r, power);
    }
  }
}

std::size_t Datacenter::rack_count() const {
  if (rack_of_.empty()) return 0;
  return *std::max_element(rack_of_.begin(), rack_of_.end()) + 1;
}

Machine& Datacenter::machine(MachineId id) {
  if (id >= machines_.size()) throw std::out_of_range("Datacenter::machine");
  return *machines_[id];
}

const Machine& Datacenter::machine(MachineId id) const {
  if (id >= machines_.size()) throw std::out_of_range("Datacenter::machine");
  return *machines_[id];
}

std::vector<Machine*> Datacenter::machines() {
  std::vector<Machine*> out;
  out.reserve(machines_.size());
  for (auto& m : machines_) out.push_back(m.get());
  return out;
}

std::vector<const Machine*> Datacenter::machines() const {
  std::vector<const Machine*> out;
  out.reserve(machines_.size());
  for (const auto& m : machines_) out.push_back(m.get());
  return out;
}

std::vector<MachineId> Datacenter::rack_members(std::size_t rack) const {
  std::vector<MachineId> out;
  for (MachineId id = 0; id < machines_.size(); ++id) {
    if (rack_of_[id] == rack) out.push_back(id);
  }
  return out;
}

std::size_t Datacenter::rack_of(MachineId id) const {
  if (id >= rack_of_.size()) throw std::out_of_range("Datacenter::rack_of");
  return rack_of_[id];
}

ResourceVector Datacenter::total_capacity() const {
  ResourceVector total;
  for (const auto& m : machines_) {
    if (m->usable()) total += m->capacity();
  }
  return total;
}

ResourceVector Datacenter::total_used() const {
  ResourceVector total;
  for (const auto& m : machines_) {
    if (m->usable()) total += m->used();
  }
  return total;
}

double Datacenter::availability() const {
  if (machines_.empty()) return 1.0;
  std::size_t up = 0;
  for (const auto& m : machines_) {
    if (m->usable()) ++up;
  }
  return static_cast<double>(up) / static_cast<double>(machines_.size());
}

double Datacenter::power_watts() const {
  double total = 0.0;
  for (const auto& m : machines_) total += m->power_watts();
  return total;
}

sim::SimTime Datacenter::latency_between(MachineId a, MachineId b) const {
  if (a == b) return 0;
  return rack_of(a) == rack_of(b) ? network_.intra_rack_latency
                                  : network_.intra_dc_latency;
}

Datacenter& Federation::add_datacenter(std::string name, std::string region,
                                       NetworkModel network) {
  datacenters_.push_back(
      std::make_unique<Datacenter>(std::move(name), std::move(region), network));
  return *datacenters_.back();
}

void Federation::set_latency(const std::string& dc_a, const std::string& dc_b,
                             sim::SimTime rtt) {
  latencies_[{std::min(dc_a, dc_b), std::max(dc_a, dc_b)}] = rtt;
}

sim::SimTime Federation::latency(const std::string& dc_a,
                                 const std::string& dc_b) const {
  if (dc_a == dc_b) return 0;
  auto it = latencies_.find({std::min(dc_a, dc_b), std::max(dc_a, dc_b)});
  if (it == latencies_.end()) {
    throw std::out_of_range("Federation::latency: unknown pair " + dc_a + "/" +
                            dc_b);
  }
  return it->second;
}

std::vector<Datacenter*> Federation::datacenters() {
  std::vector<Datacenter*> out;
  out.reserve(datacenters_.size());
  for (auto& d : datacenters_) out.push_back(d.get());
  return out;
}

Datacenter& Federation::datacenter(const std::string& name) {
  for (auto& d : datacenters_) {
    if (d->name() == name) return *d;
  }
  throw std::out_of_range("Federation::datacenter: unknown " + name);
}

std::size_t Federation::machine_count() const {
  std::size_t n = 0;
  for (const auto& d : datacenters_) n += d->machine_count();
  return n;
}

}  // namespace mcs::infra
