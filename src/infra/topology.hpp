// Datacenter topology: racks, datacenters, geo-distributed federations.
//
// The rack grouping is load-bearing: space-correlated failures [26] strike
// rack-sized machine groups, and locality-aware placement (bigdata) prefers
// rack-local block replicas. Federation (C10) is a set of datacenters with
// an inter-site latency matrix, used by the geo-distributed experiments.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "infra/machine.hpp"
#include "sim/simulator.hpp"

namespace mcs::infra {

/// Flow-level network model inside one datacenter.
struct NetworkModel {
  sim::SimTime intra_rack_latency = 50;         // 50 us
  sim::SimTime intra_dc_latency = 250;          // 250 us across racks
  double intra_rack_gbps = 40.0;
  double intra_dc_gbps = 10.0;  ///< oversubscribed core
};

/// A datacenter: machines organized into racks.
class Datacenter {
 public:
  Datacenter(std::string name, std::string region,
             NetworkModel network = {});

  const std::string& name() const { return name_; }
  const std::string& region() const { return region_; }
  const NetworkModel& network() const { return network_; }

  /// Adds a machine to the given rack (racks are created on demand).
  Machine& add_machine(std::string name, ResourceVector capacity,
                       double speed_factor, std::size_t rack,
                       PowerModel power = {});
  /// Declared-shape convenience (whole-unit capacities, C4 fleet profiles).
  Machine& add_machine(std::string name, core::ResourceCapacities capacity,
                       double speed_factor, std::size_t rack,
                       PowerModel power = {}) {
    return add_machine(std::move(name), core::to_quantities(capacity),
                       speed_factor, rack, power);
  }

  /// Convenience: builds `racks x per_rack` homogeneous machines.
  void add_uniform_racks(std::size_t racks, std::size_t per_rack,
                         ResourceVector capacity, double speed_factor,
                         PowerModel power = {});

  [[nodiscard]] std::size_t machine_count() const { return machines_.size(); }
  [[nodiscard]] std::size_t rack_count() const;

  [[nodiscard]] Machine& machine(MachineId id);
  [[nodiscard]] const Machine& machine(MachineId id) const;
  [[nodiscard]] std::vector<Machine*> machines();
  [[nodiscard]] std::vector<const Machine*> machines() const;

  /// Machines in one rack (for correlated-failure injection).
  [[nodiscard]] std::vector<MachineId> rack_members(std::size_t rack) const;
  [[nodiscard]] std::size_t rack_of(MachineId id) const;

  // --- topology zones (C4): named machine groups the scheduler's label
  // filters select over (failure domains, accelerator pools, tiers). Every
  // machine starts in the anonymous default zone "".
  void set_zone(MachineId id, const std::string& zone);
  [[nodiscard]] const std::string& zone_of(MachineId id) const;
  /// Distinct zone names seen so far (including "" once machines exist).
  [[nodiscard]] std::size_t zone_count() const { return zone_names_.size(); }
  [[nodiscard]] std::vector<MachineId> zone_members(
      const std::string& zone) const;

  /// Aggregate capacity over operational machines.
  [[nodiscard]] ResourceVector total_capacity() const;
  /// Aggregate currently-used resources.
  [[nodiscard]] ResourceVector total_used() const;
  /// Fraction of operational machines, in [0, 1].
  [[nodiscard]] double availability() const;
  /// Instantaneous power draw across the floor (watts).
  [[nodiscard]] double power_watts() const;

  /// Network latency between two machines under the flow model.
  [[nodiscard]] sim::SimTime latency_between(MachineId a, MachineId b) const;

 private:
  std::string name_;
  std::string region_;
  NetworkModel network_;
  std::vector<std::unique_ptr<Machine>> machines_;
  std::vector<std::size_t> rack_of_;  // indexed by MachineId
  /// Zone names interned to dense ids; zone_id_of_ indexed by MachineId
  /// (0 = the default zone "").
  std::vector<std::uint32_t> zone_id_of_;
  std::vector<std::string> zone_names_{""};
  std::map<std::string, std::uint32_t> zone_ids_{{"", 0}};
};

/// A federation of datacenters with inter-site latencies (C10:
/// "geo-distributed, federated, multi-DC operation").
class Federation {
 public:
  explicit Federation(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  Datacenter& add_datacenter(std::string name, std::string region,
                             NetworkModel network = {});

  void set_latency(const std::string& dc_a, const std::string& dc_b,
                   sim::SimTime rtt);

  [[nodiscard]] sim::SimTime latency(const std::string& dc_a,
                                     const std::string& dc_b) const;

  [[nodiscard]] std::vector<Datacenter*> datacenters();
  [[nodiscard]] Datacenter& datacenter(const std::string& name);
  [[nodiscard]] std::size_t size() const { return datacenters_.size(); }

  /// Total machines across all sites.
  [[nodiscard]] std::size_t machine_count() const;

 private:
  std::string name_;
  std::vector<std::unique_ptr<Datacenter>> datacenters_;
  std::map<std::pair<std::string, std::string>, sim::SimTime> latencies_;
};

}  // namespace mcs::infra
