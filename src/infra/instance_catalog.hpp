// Cloud instance-type catalog (C4, C9).
//
// The paper: "AWS alone has over 70 types of compute instances", raising the
// Ecosystem Navigation problem of *selection* on the user's behalf. The
// catalog carries a representative heterogeneous set of families and
// supports requirement-driven selection with pluggable objectives.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "infra/machine.hpp"

namespace mcs::infra {

enum class InstanceFamily {
  kGeneral,        ///< balanced cpu:memory (m-class)
  kCompute,        ///< high clock, low memory (c-class)
  kMemory,         ///< high memory (r-class)
  kAccelerated,    ///< GPUs (p/g-class)
  kFpga,           ///< FPGA (f-class)
  kBurstable,      ///< cheap, low sustained speed (t-class)
};

[[nodiscard]] std::string to_string(InstanceFamily f);

struct InstanceType {
  std::string name;
  InstanceFamily family = InstanceFamily::kGeneral;
  ResourceVector resources;       ///< what the instance provides
  double speed_factor = 1.0;      ///< relative per-core speed
  double price_per_hour = 0.0;    ///< on-demand price (currency units)
};

/// Selection objective for `select` (the Ecosystem Navigation policy knob).
enum class SelectionObjective {
  kCheapest,          ///< min price among fitting types
  kFastest,           ///< max speed among fitting types
  kBestPricePerf,     ///< max (cores*speed)/price
};

class InstanceCatalog {
 public:
  /// Empty catalog; use add() to populate.
  InstanceCatalog() = default;

  void add(InstanceType type);

  /// A representative 14-type catalog across all six families, with
  /// price/performance spreads mirroring public cloud offerings.
  [[nodiscard]] static InstanceCatalog representative();

  [[nodiscard]] const std::vector<InstanceType>& types() const { return types_; }
  [[nodiscard]] std::optional<InstanceType> find(const std::string& name) const;

  /// Picks the best instance type able to host `demand`, under the given
  /// objective; nullopt when nothing fits.
  [[nodiscard]] std::optional<InstanceType> select(
      const ResourceVector& demand, SelectionObjective objective) const;

  /// All types able to host `demand`.
  [[nodiscard]] std::vector<InstanceType> feasible(
      const ResourceVector& demand) const;

 private:
  std::vector<InstanceType> types_;
};

}  // namespace mcs::infra
