// Physical machine model: heterogeneous capacity, speed, power, state.
//
// Challenge C4 ("extreme heterogeneity"): infrastructure mixes CPU
// generations, accelerators (GPU/FPGA/TPU-class), and memory sizes. Machines
// here carry a resource vector plus a speed factor and optional accelerator
// capability, which the scheduler and the heterogeneity experiments use.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace mcs::infra {

using MachineId = std::uint32_t;

/// Multi-dimensional capacity. Units: cores (count), memory (GiB),
/// accelerators (count).
struct ResourceVector {
  double cores = 0.0;
  double memory_gib = 0.0;
  double accelerators = 0.0;

  [[nodiscard]] bool fits_within(const ResourceVector& cap) const {
    return cores <= cap.cores && memory_gib <= cap.memory_gib &&
           accelerators <= cap.accelerators;
  }
  [[nodiscard]] bool nonnegative() const {
    return cores >= 0.0 && memory_gib >= 0.0 && accelerators >= 0.0;
  }

  ResourceVector& operator+=(const ResourceVector& o) {
    cores += o.cores;
    memory_gib += o.memory_gib;
    accelerators += o.accelerators;
    return *this;
  }
  ResourceVector& operator-=(const ResourceVector& o) {
    cores -= o.cores;
    memory_gib -= o.memory_gib;
    accelerators -= o.accelerators;
    return *this;
  }
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) {
    return a += b;
  }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) {
    return a -= b;
  }
};

/// Linear power model: idle draw plus utilization-proportional dynamic part
/// (the standard datacenter-simulation model, e.g. CloudSim/OpenDC).
struct PowerModel {
  double idle_watts = 100.0;
  double max_watts = 250.0;
};

enum class MachineState { kOperational, kFailed, kOff };

[[nodiscard]] std::string to_string(MachineState s);

/// One physical machine. Allocation is capacity bookkeeping; execution
/// timing is the scheduler's job (runtime = work / speed_factor).
class Machine {
 public:
  Machine(MachineId id, std::string name, ResourceVector capacity,
          double speed_factor, PowerModel power = {});

  [[nodiscard]] MachineId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ResourceVector& capacity() const { return capacity_; }
  [[nodiscard]] const ResourceVector& used() const { return used_; }
  [[nodiscard]] ResourceVector available() const { return capacity_ - used_; }
  [[nodiscard]] double speed_factor() const { return speed_factor_; }
  [[nodiscard]] MachineState state() const { return state_; }
  [[nodiscard]] bool usable() const { return state_ == MachineState::kOperational; }

  /// True when `r` fits in the remaining capacity of an operational machine.
  [[nodiscard]] bool can_fit(const ResourceVector& r) const;

  /// Claims resources; throws std::logic_error when they do not fit.
  void allocate(const ResourceVector& r);

  /// Returns resources; throws std::logic_error on over-release. When the
  /// last live allocation is released, `used()` snaps back to exactly zero
  /// — fractional demands leave floating-point residue under repeated
  /// allocate/release, and a residue of 1e-16 cores is enough to starve a
  /// full-machine task forever (found by mcs_check, seed shrunk into
  /// tests/repros/full_machine_fp_residue.repro).
  void release(const ResourceVector& r);

  /// Allocations currently held (allocate() minus release(); reset by
  /// fail()/repair()). Zero implies used() is exactly zero.
  [[nodiscard]] std::uint32_t live_allocations() const {
    return live_allocations_;
  }

  /// Core utilization in [0, 1].
  [[nodiscard]] double utilization() const;

  /// Instantaneous power draw under the linear model; 0 when off, idle
  /// draw when failed (a failed machine typically still draws power until
  /// powered down).
  [[nodiscard]] double power_watts() const;

  void set_state(MachineState s);

  /// Fails the machine and forgets all allocations (tasks die with it).
  void fail();
  /// Repairs a failed machine back to operational, empty.
  void repair();

 private:
  MachineId id_;
  std::string name_;
  ResourceVector capacity_;
  ResourceVector used_;
  std::uint32_t live_allocations_ = 0;
  double speed_factor_;
  PowerModel power_;
  MachineState state_ = MachineState::kOperational;
};

}  // namespace mcs::infra
