// Physical machine model: heterogeneous capacity, speed, power, state.
//
// Challenge C4 ("extreme heterogeneity"): infrastructure mixes CPU
// generations, accelerators (GPU/FPGA/TPU-class), memory sizes, and NIC
// speeds. Machines carry a K=4 resource vector (core::ResourceQuantities:
// cpu/mem/gpu/net) plus a speed factor, which the scheduler's scoring pass
// and the heterogeneity experiments use.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/resources.hpp"

namespace mcs::infra {

using MachineId = std::uint32_t;

/// Multi-dimensional runtime capacity/demand. Units: cpu (cores), mem
/// (GiB), gpu (accelerator count), net (Gbps). Array-backed with named
/// accessors — see core/resources.hpp.
using ResourceVector = core::ResourceQuantities;

/// Linear power model: idle draw plus utilization-proportional dynamic part
/// (the standard datacenter-simulation model, e.g. CloudSim/OpenDC).
struct PowerModel {
  double idle_watts = 100.0;
  double max_watts = 250.0;
};

enum class MachineState { kOperational, kFailed, kOff };

[[nodiscard]] std::string to_string(MachineState s);

/// One physical machine. Allocation is capacity bookkeeping; execution
/// timing is the scheduler's job (runtime = work / speed_factor).
class Machine {
 public:
  Machine(MachineId id, std::string name, ResourceVector capacity,
          double speed_factor, PowerModel power = {});
  /// Declared-shape convenience: whole-unit capacities from a fleet profile.
  Machine(MachineId id, std::string name, core::ResourceCapacities capacity,
          double speed_factor, PowerModel power = {})
      : Machine(id, std::move(name), core::to_quantities(capacity),
                speed_factor, power) {}

  [[nodiscard]] MachineId id() const { return id_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const ResourceVector& capacity() const { return capacity_; }
  [[nodiscard]] const ResourceVector& used() const { return used_; }
  [[nodiscard]] ResourceVector available() const { return capacity_ - used_; }
  [[nodiscard]] double speed_factor() const { return speed_factor_; }
  [[nodiscard]] MachineState state() const { return state_; }
  [[nodiscard]] bool usable() const { return state_ == MachineState::kOperational; }

  /// True when `r` fits in the remaining capacity of an operational machine.
  [[nodiscard]] bool can_fit(const ResourceVector& r) const;

  /// Claims resources; throws std::logic_error when they do not fit.
  void allocate(const ResourceVector& r);

  /// Returns resources; throws std::logic_error on over-release. When the
  /// last live allocation is released, `used()` snaps back to exactly zero
  /// — fractional demands leave floating-point residue under repeated
  /// allocate/release, and a residue of 1e-16 cores is enough to starve a
  /// full-machine task forever (found by mcs_check, seed shrunk into
  /// tests/repros/full_machine_fp_residue.repro). The clamp/snap applies
  /// per dimension.
  void release(const ResourceVector& r);

  /// Allocations currently held (allocate() minus release(); reset by
  /// fail()/repair()). Zero implies used() is exactly zero.
  [[nodiscard]] std::uint32_t live_allocations() const {
    return live_allocations_;
  }

  /// Core utilization in [0, 1].
  [[nodiscard]] double utilization() const;

  /// Instantaneous power draw under the linear model; 0 when off, idle
  /// draw when failed (a failed machine typically still draws power until
  /// powered down).
  [[nodiscard]] double power_watts() const;

  void set_state(MachineState s);

  /// Fails the machine and forgets all allocations (tasks die with it).
  void fail();
  /// Repairs a failed machine back to operational, empty.
  void repair();

 private:
  MachineId id_;
  std::string name_;
  ResourceVector capacity_;
  ResourceVector used_;
  std::uint32_t live_allocations_ = 0;
  double speed_factor_;
  PowerModel power_;
  MachineState state_ = MachineState::kOperational;
};

}  // namespace mcs::infra
