#include "workload/task.hpp"

#include <algorithm>

namespace mcs::workload {

bool Job::is_workflow() const {
  return std::any_of(tasks.begin(), tasks.end(),
                     [](const Task& t) { return !t.deps.empty(); });
}

double Job::total_work_seconds() const {
  double total = 0.0;
  for (const Task& t : tasks) total += t.work_seconds;
  return total;
}

double Job::critical_path_seconds() const {
  // tasks are topologically ordered by construction (deps point backwards),
  // so one forward pass suffices.
  std::vector<double> finish(tasks.size(), 0.0);
  double best = 0.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    double start = 0.0;
    for (std::size_t d : tasks[i].deps) start = std::max(start, finish[d]);
    finish[i] = start + tasks[i].work_seconds;
    best = std::max(best, finish[i]);
  }
  return best;
}

std::vector<std::size_t> Job::level_of_tasks() const {
  std::vector<std::size_t> level(tasks.size(), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t d : tasks[i].deps) {
      level[i] = std::max(level[i], level[d] + 1);
    }
  }
  return level;
}

std::size_t Job::max_parallelism() const {
  if (tasks.empty()) return 0;
  const auto levels = level_of_tasks();
  const std::size_t max_level =
      *std::max_element(levels.begin(), levels.end());
  std::vector<std::size_t> width(max_level + 1, 0);
  for (std::size_t l : levels) ++width[l];
  return *std::max_element(width.begin(), width.end());
}

bool Job::valid() const {
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t d : tasks[i].deps) {
      if (d >= i) return false;  // must point strictly backwards
    }
    if (tasks[i].work_seconds < 0.0 || !tasks[i].demand.nonnegative()) {
      return false;
    }
  }
  return true;
}

Job make_bag_of_tasks(JobId id, std::size_t n, double work_seconds_each,
                      infra::ResourceVector demand) {
  Job job;
  job.id = id;
  job.tasks.resize(n);
  for (Task& t : job.tasks) {
    t.work_seconds = work_seconds_each;
    t.demand = demand;
  }
  return job;
}

}  // namespace mcs::workload
