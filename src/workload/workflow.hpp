// Workflow (DAG) generators following the shapes of the scientific
// workloads the paper names in §6.2 (citing Bharathi et al. [114]):
// Montage (computational astrophysics mosaics), Epigenomics
// (bioinformatics pipelines), and LIGO Inspiral (gravitational-wave
// analysis), plus generic chains, fork-joins, and random DAGs.
//
// Shapes are structural approximations of the published characterizations:
//  - Montage: wide fan-out -> pairwise overlap stage -> deep reduction ->
//    wide back-projection (diamond with heavy middle);
//  - Epigenomics: several independent parallel pipelines that merge;
//  - LIGO: repeated fan-out/fan-in template-bank stages.
#pragma once

#include "sim/random.hpp"
#include "workload/task.hpp"

namespace mcs::workload {

/// `stages` sequential tasks, each depending on the previous one.
[[nodiscard]] Job make_chain(JobId id, std::size_t stages, double work_each);

/// A fork-join: one source, `width` parallel tasks, one sink; repeated
/// `stages` times.
[[nodiscard]] Job make_fork_join(JobId id, std::size_t width,
                                 std::size_t stages, double work_each);

struct WorkflowSizing {
  double mean_task_seconds = 30.0;
  double cv_task_seconds = 0.8;  ///< lognormal spread of task sizes
  infra::ResourceVector demand{1.0, 1.0, 0.0};
};

/// Montage-like: fan-out of `width` projection tasks, ~2*width overlap
/// tasks with pairwise deps, a fan-in concat, and a final fan-out of width
/// background-correction tasks.
[[nodiscard]] Job make_montage_like(JobId id, std::size_t width,
                                    const WorkflowSizing& sizing,
                                    sim::Rng& rng);

/// Epigenomics-like: `lanes` independent 4-stage pipelines merging into a
/// 2-stage tail.
[[nodiscard]] Job make_epigenomics_like(JobId id, std::size_t lanes,
                                        const WorkflowSizing& sizing,
                                        sim::Rng& rng);

/// LIGO-like: `banks` repetitions of (fan-out width, fan-in) template-bank
/// analysis blocks chained sequentially.
[[nodiscard]] Job make_ligo_like(JobId id, std::size_t banks,
                                 std::size_t width,
                                 const WorkflowSizing& sizing, sim::Rng& rng);

/// A random layered DAG: `n` tasks in `levels` levels; each task depends on
/// 1..3 uniformly chosen tasks of earlier levels.
[[nodiscard]] Job make_random_dag(JobId id, std::size_t n, std::size_t levels,
                                  const WorkflowSizing& sizing, sim::Rng& rng);

}  // namespace mcs::workload
