// Workload archive I/O — the Grid Workload Archive gesture ([139], C16:
// "tools and instruments to gather valuable ... operational traces, and to
// provide them alongside software artifacts").
//
// A minimal line-oriented text format (MWF, "mcs workload format"),
// versioned and self-describing, so generated traces can be saved, shared,
// and replayed bit-identically across runs and machines:
//
//   # comments / header
//   job <id> <submit_us> <user>
//   task <work_seconds> <cores> <memory_gib> <accelerators> <ndeps> [deps...]
//
// Tasks belong to the most recent job line; deps are in-job task indices.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "workload/task.hpp"

namespace mcs::workload {

/// Serializes jobs to the MWF text format.
void write_archive(std::ostream& os, const std::vector<Job>& jobs);

/// Parses an MWF stream; throws std::runtime_error with a line number on
/// malformed input. SLAs are not serialized (archives carry workload
/// structure, not agreements).
[[nodiscard]] std::vector<Job> read_archive(std::istream& is);

/// Convenience: full round trip through a string (used by tests and by
/// callers that embed archives).
[[nodiscard]] std::string to_archive_string(const std::vector<Job>& jobs);
[[nodiscard]] std::vector<Job> from_archive_string(const std::string& text);

}  // namespace mcs::workload
