// Workload trace generation (the Grid Workloads Archive substitute).
//
// The paper relies on its workload-characterization lineage ([39], [107],
// [113]): lognormal task sizes, bursty MMPP arrivals, multiple users with
// Zipf activity, a tunable workflow fraction, and the long-term
// *fragmentation* trend (jobs splitting into ever more, ever smaller
// tasks — §6.5: "since 2011, starting with grid computing workloads, ...
// splitting projects into ever-smaller ... components"). DESIGN.md §5
// documents this generator as the substitution for production traces.
#pragma once

#include <vector>

#include "sim/arrival.hpp"
#include "sim/random.hpp"
#include "workload/workflow.hpp"

namespace mcs::workload {

enum class ArrivalKind { kPoisson, kBursty, kDiurnal };

struct TraceConfig {
  std::size_t job_count = 100;
  ArrivalKind arrivals = ArrivalKind::kPoisson;
  double arrival_rate_per_hour = 60.0;

  // Job shape mix: fraction of jobs that are workflows (rest are bags).
  double workflow_fraction = 0.0;

  // Bag-of-tasks sizing.
  double mean_tasks_per_job = 8.0;       ///< geometric-ish via lognormal
  double mean_task_seconds = 60.0;
  double cv_task_seconds = 1.0;
  double mean_cores_per_task = 1.0;      ///< 1 => all single-core
  double memory_per_core_gib = 2.0;
  double accelerated_fraction = 0.0;     ///< tasks needing an accelerator

  // Workflow sizing (when workflow_fraction > 0).
  std::size_t workflow_width = 8;

  // User population: activity is Zipf(1.1)-distributed over users.
  std::size_t user_count = 5;

  // Long-term fragmentation [39]: by the end of the trace, jobs have
  // `fragmentation_factor` times more tasks, each proportionally smaller
  // (total work per job preserved). 1.0 disables the trend.
  double fragmentation_factor = 1.0;
};

/// Generates a full trace: jobs sorted by submit time, ids consecutive
/// starting at `first_id`.
[[nodiscard]] std::vector<Job> generate_trace(const TraceConfig& config,
                                              sim::Rng& rng,
                                              JobId first_id = 0);

/// Summary statistics of a trace, used by tests and reporting.
struct TraceSummary {
  std::size_t jobs = 0;
  std::size_t tasks = 0;
  double total_work_seconds = 0.0;
  double mean_tasks_per_job = 0.0;
  double mean_task_seconds = 0.0;
  sim::SimTime span = 0;  ///< last submit - first submit
  std::size_t workflow_jobs = 0;
};

[[nodiscard]] TraceSummary summarize(const std::vector<Job>& jobs);

}  // namespace mcs::workload
