#include "workload/workflow.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcs::workload {

namespace {

Task sized_task(const WorkflowSizing& sizing, sim::Rng& rng) {
  Task t;
  t.work_seconds =
      rng.lognormal_mean_cv(sizing.mean_task_seconds, sizing.cv_task_seconds);
  t.demand = sizing.demand;
  return t;
}

}  // namespace

Job make_chain(JobId id, std::size_t stages, double work_each) {
  if (stages == 0) throw std::invalid_argument("make_chain: zero stages");
  Job job;
  job.id = id;
  for (std::size_t i = 0; i < stages; ++i) {
    Task t;
    t.work_seconds = work_each;
    if (i > 0) t.deps.push_back(i - 1);
    job.tasks.push_back(std::move(t));
  }
  return job;
}

Job make_fork_join(JobId id, std::size_t width, std::size_t stages,
                   double work_each) {
  if (width == 0 || stages == 0) {
    throw std::invalid_argument("make_fork_join: zero width/stages");
  }
  Job job;
  job.id = id;
  std::size_t prev_sink = 0;
  for (std::size_t s = 0; s < stages; ++s) {
    // Source.
    Task src;
    src.work_seconds = work_each;
    if (s > 0) src.deps.push_back(prev_sink);
    job.tasks.push_back(std::move(src));
    const std::size_t src_idx = job.tasks.size() - 1;
    // Parallel body.
    std::vector<std::size_t> body;
    for (std::size_t w = 0; w < width; ++w) {
      Task t;
      t.work_seconds = work_each;
      t.deps.push_back(src_idx);
      job.tasks.push_back(std::move(t));
      body.push_back(job.tasks.size() - 1);
    }
    // Sink.
    Task sink;
    sink.work_seconds = work_each;
    sink.deps = body;
    job.tasks.push_back(std::move(sink));
    prev_sink = job.tasks.size() - 1;
  }
  return job;
}

Job make_montage_like(JobId id, std::size_t width,
                      const WorkflowSizing& sizing, sim::Rng& rng) {
  if (width < 2) throw std::invalid_argument("make_montage_like: width < 2");
  Job job;
  job.id = id;
  // Stage 1: mProject fan-out.
  std::vector<std::size_t> project;
  for (std::size_t i = 0; i < width; ++i) {
    job.tasks.push_back(sized_task(sizing, rng));
    project.push_back(job.tasks.size() - 1);
  }
  // Stage 2: mDiff on neighbouring pairs (width-1 overlap tasks).
  std::vector<std::size_t> diffs;
  for (std::size_t i = 0; i + 1 < width; ++i) {
    Task t = sized_task(sizing, rng);
    t.work_seconds *= 0.5;  // overlaps are lighter than projections
    t.deps = {project[i], project[i + 1]};
    job.tasks.push_back(std::move(t));
    diffs.push_back(job.tasks.size() - 1);
  }
  // Stage 3: mConcatFit fan-in (single aggregation).
  Task fit = sized_task(sizing, rng);
  fit.deps = diffs;
  job.tasks.push_back(std::move(fit));
  const std::size_t fit_idx = job.tasks.size() - 1;
  // Stage 4: mBackground fan-out, one per projection.
  std::vector<std::size_t> backgrounds;
  for (std::size_t i = 0; i < width; ++i) {
    Task t = sized_task(sizing, rng);
    t.deps = {fit_idx, project[i]};
    job.tasks.push_back(std::move(t));
    backgrounds.push_back(job.tasks.size() - 1);
  }
  // Stage 5: mAdd final mosaic.
  Task add = sized_task(sizing, rng);
  add.work_seconds *= 2.0;  // the heavy reduction
  add.deps = backgrounds;
  job.tasks.push_back(std::move(add));
  return job;
}

Job make_epigenomics_like(JobId id, std::size_t lanes,
                          const WorkflowSizing& sizing, sim::Rng& rng) {
  if (lanes == 0) throw std::invalid_argument("make_epigenomics_like: lanes=0");
  Job job;
  job.id = id;
  std::vector<std::size_t> lane_tails;
  for (std::size_t l = 0; l < lanes; ++l) {
    std::size_t prev = 0;
    for (int stage = 0; stage < 4; ++stage) {  // filter, align, sort, count
      Task t = sized_task(sizing, rng);
      if (stage > 0) t.deps.push_back(prev);
      job.tasks.push_back(std::move(t));
      prev = job.tasks.size() - 1;
    }
    lane_tails.push_back(prev);
  }
  // Merge and global analysis tail.
  Task merge = sized_task(sizing, rng);
  merge.deps = lane_tails;
  job.tasks.push_back(std::move(merge));
  Task analyze = sized_task(sizing, rng);
  analyze.deps = {job.tasks.size() - 1};
  job.tasks.push_back(std::move(analyze));
  return job;
}

Job make_ligo_like(JobId id, std::size_t banks, std::size_t width,
                   const WorkflowSizing& sizing, sim::Rng& rng) {
  if (banks == 0 || width == 0) {
    throw std::invalid_argument("make_ligo_like: zero banks/width");
  }
  Job job;
  job.id = id;
  bool have_prev = false;
  std::size_t prev_sink = 0;
  for (std::size_t b = 0; b < banks; ++b) {
    // TmpltBank fan-out.
    std::vector<std::size_t> inspirals;
    for (std::size_t w = 0; w < width; ++w) {
      Task t = sized_task(sizing, rng);
      if (have_prev) t.deps.push_back(prev_sink);
      job.tasks.push_back(std::move(t));
      inspirals.push_back(job.tasks.size() - 1);
    }
    // Thinca fan-in.
    Task thinca = sized_task(sizing, rng);
    thinca.deps = inspirals;
    job.tasks.push_back(std::move(thinca));
    prev_sink = job.tasks.size() - 1;
    have_prev = true;
  }
  return job;
}

Job make_random_dag(JobId id, std::size_t n, std::size_t levels,
                    const WorkflowSizing& sizing, sim::Rng& rng) {
  if (n == 0 || levels == 0 || levels > n) {
    throw std::invalid_argument("make_random_dag: bad n/levels");
  }
  Job job;
  job.id = id;
  // Assign each task a level; level boundaries are index ranges so deps
  // always point backwards.
  std::vector<std::size_t> level_start(levels + 1, 0);
  for (std::size_t l = 1; l <= levels; ++l) {
    level_start[l] = l * n / levels;
  }
  for (std::size_t i = 0; i < n; ++i) {
    // Find this task's level.
    std::size_t level = 0;
    while (level + 1 < levels && i >= level_start[level + 1]) ++level;
    Task t = sized_task(sizing, rng);
    if (level > 0) {
      const std::size_t lo = 0;
      const std::size_t hi = level_start[level] - 1;
      const std::size_t ndeps =
          static_cast<std::size_t>(rng.uniform_int(1, 3));
      for (std::size_t d = 0; d < ndeps; ++d) {
        t.deps.push_back(static_cast<std::size_t>(
            rng.uniform_int(static_cast<std::int64_t>(lo),
                            static_cast<std::int64_t>(hi))));
      }
      std::sort(t.deps.begin(), t.deps.end());
      t.deps.erase(std::unique(t.deps.begin(), t.deps.end()), t.deps.end());
    }
    job.tasks.push_back(std::move(t));
  }
  return job;
}

}  // namespace mcs::workload
