#include "workload/archive.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mcs::workload {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw std::runtime_error("MWF parse error at line " + std::to_string(line) +
                           ": " + what);
}

}  // namespace

void write_archive(std::ostream& os, const std::vector<Job>& jobs) {
  os << "# MWF 1 (mcs workload format)\n";
  os << "# jobs " << jobs.size() << "\n";
  os.precision(17);
  for (const Job& j : jobs) {
    os << "job " << j.id << ' ' << j.submit_time << ' '
       << (j.user.empty() ? "-" : j.user) << '\n';
    for (const Task& t : j.tasks) {
      os << "task " << t.work_seconds << ' ' << t.demand.cpu() << ' '
         << t.demand.mem() << ' ' << t.demand.gpu() << ' '
         << t.deps.size();
      for (std::size_t d : t.deps) os << ' ' << d;
      os << '\n';
    }
  }
}

std::vector<Job> read_archive(std::istream& is) {
  std::vector<Job> jobs;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "job") {
      Job j;
      std::string user;
      if (!(fields >> j.id >> j.submit_time >> user)) {
        fail(line_no, "malformed job line");
      }
      if (j.submit_time < 0) fail(line_no, "negative submit time");
      j.user = user == "-" ? std::string{} : user;
      jobs.push_back(std::move(j));
    } else if (kind == "task") {
      if (jobs.empty()) fail(line_no, "task before any job");
      Task t;
      std::size_t ndeps = 0;
      if (!(fields >> t.work_seconds >> t.demand.cpu() >>
            t.demand.mem() >> t.demand.gpu() >> ndeps)) {
        fail(line_no, "malformed task line");
      }
      for (std::size_t i = 0; i < ndeps; ++i) {
        std::size_t dep = 0;
        if (!(fields >> dep)) fail(line_no, "missing dependency index");
        t.deps.push_back(dep);
      }
      jobs.back().tasks.push_back(std::move(t));
      if (!jobs.back().valid()) fail(line_no, "invalid task (range/order)");
    } else {
      fail(line_no, "unknown record kind '" + kind + "'");
    }
  }
  return jobs;
}

std::string to_archive_string(const std::vector<Job>& jobs) {
  std::ostringstream os;
  write_archive(os, jobs);
  return os.str();
}

std::vector<Job> from_archive_string(const std::string& text) {
  std::istringstream is(text);
  return read_archive(is);
}

}  // namespace mcs::workload
