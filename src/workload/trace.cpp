#include "workload/trace.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

namespace mcs::workload {

namespace {

std::unique_ptr<sim::ArrivalProcess> make_arrivals(const TraceConfig& c) {
  const double per_second = c.arrival_rate_per_hour / 3600.0;
  switch (c.arrivals) {
    case ArrivalKind::kPoisson:
      return std::make_unique<sim::PoissonProcess>(per_second);
    case ArrivalKind::kBursty:
      // Bursts at 20x the calm rate; calm 10x longer than bursts, so the
      // long-run rate stays near the configured one.
      return std::make_unique<sim::MmppProcess>(
          per_second * 0.5, per_second * 6.0, 2000.0, 400.0);
    case ArrivalKind::kDiurnal:
      return std::make_unique<sim::DiurnalProcess>(per_second, 0.8, sim::kDay);
  }
  throw std::logic_error("make_arrivals: unknown kind");
}

}  // namespace

std::vector<Job> generate_trace(const TraceConfig& config, sim::Rng& rng,
                                JobId first_id) {
  if (config.job_count == 0) return {};
  if (config.workflow_fraction < 0.0 || config.workflow_fraction > 1.0) {
    throw std::invalid_argument("generate_trace: workflow_fraction");
  }
  if (config.fragmentation_factor < 1.0) {
    throw std::invalid_argument("generate_trace: fragmentation_factor < 1");
  }

  auto arrivals = make_arrivals(config);
  std::vector<Job> jobs;
  jobs.reserve(config.job_count);
  sim::SimTime clock = 0;

  for (std::size_t i = 0; i < config.job_count; ++i) {
    clock += arrivals->next_gap(rng);
    const double progress = config.job_count <= 1
                                ? 0.0
                                : static_cast<double>(i) /
                                      static_cast<double>(config.job_count - 1);
    // Fragmentation trend: more, smaller tasks as the trace ages.
    const double frag = 1.0 + (config.fragmentation_factor - 1.0) * progress;

    Job job;
    const JobId id = first_id + i;
    if (rng.chance(config.workflow_fraction)) {
      WorkflowSizing sizing;
      sizing.mean_task_seconds = config.mean_task_seconds / frag;
      sizing.cv_task_seconds = config.cv_task_seconds;
      sizing.demand = infra::ResourceVector{
          config.mean_cores_per_task,
          config.mean_cores_per_task * config.memory_per_core_gib, 0.0};
      // Rotate among the three scientific shapes.
      switch (i % 3) {
        case 0:
          job = make_montage_like(id, config.workflow_width, sizing, rng);
          break;
        case 1:
          job = make_epigenomics_like(
              id, std::max<std::size_t>(1, config.workflow_width / 4), sizing,
              rng);
          break;
        default:
          job = make_ligo_like(id, 2, config.workflow_width / 2 + 1, sizing,
                               rng);
          break;
      }
    } else {
      const double mean_tasks = config.mean_tasks_per_job * frag;
      const auto n = static_cast<std::size_t>(
          std::max(1.0, std::round(rng.lognormal_mean_cv(mean_tasks, 0.6))));
      job.id = id;
      job.tasks.reserve(n);
      for (std::size_t t = 0; t < n; ++t) {
        Task task;
        task.work_seconds = rng.lognormal_mean_cv(
            config.mean_task_seconds / frag, config.cv_task_seconds);
        const double cores = std::max(
            1.0, std::round(rng.lognormal_mean_cv(
                     std::max(1.0, config.mean_cores_per_task), 0.5)));
        task.demand = infra::ResourceVector{
            cores, cores * config.memory_per_core_gib,
            rng.chance(config.accelerated_fraction) ? 1.0 : 0.0};
        job.tasks.push_back(std::move(task));
      }
    }
    job.submit_time = clock;
    job.user = "user-" + std::to_string(rng.zipf(config.user_count, 1.1));
    jobs.push_back(std::move(job));
  }
  return jobs;
}

TraceSummary summarize(const std::vector<Job>& jobs) {
  TraceSummary s;
  s.jobs = jobs.size();
  if (jobs.empty()) return s;
  double task_seconds_sum = 0.0;
  for (const Job& j : jobs) {
    s.tasks += j.tasks.size();
    s.total_work_seconds += j.total_work_seconds();
    for (const Task& t : j.tasks) task_seconds_sum += t.work_seconds;
    if (j.is_workflow()) ++s.workflow_jobs;
  }
  s.mean_tasks_per_job =
      static_cast<double>(s.tasks) / static_cast<double>(s.jobs);
  s.mean_task_seconds =
      s.tasks == 0 ? 0.0 : task_seconds_sum / static_cast<double>(s.tasks);
  auto [lo, hi] = std::minmax_element(
      jobs.begin(), jobs.end(), [](const Job& a, const Job& b) {
        return a.submit_time < b.submit_time;
      });
  s.span = hi->submit_time - lo->submit_time;
  return s;
}

}  // namespace mcs::workload
