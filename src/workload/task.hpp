// Units of work: tasks, jobs (bags-of-tasks), and their bookkeeping.
//
// The paper's workload models (§3.5: "core workload models such as workflows
// and dataflows"; C7: grid workloads fragmenting into smaller tasks [39])
// center on two shapes: the bag-of-tasks (independent tasks) and the
// workflow (a DAG, src/workload/workflow.hpp). Both are Jobs here; a task's
// `deps` lists the indices of in-job tasks it must wait for.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/nfr.hpp"
#include "infra/machine.hpp"
#include "sim/simulator.hpp"

namespace mcs::workload {

using JobId = std::uint64_t;

struct Task {
  /// Work expressed as seconds on a reference machine (speed factor 1.0).
  double work_seconds = 1.0;
  /// Resources held while running.
  infra::ResourceVector demand{1.0, 1.0, 0.0};
  /// Indices (within the owning job) of tasks that must finish first.
  /// Dependencies always point to lower indices, so DAGs are acyclic by
  /// construction.
  std::vector<std::size_t> deps;

  [[nodiscard]] bool needs_accelerator() const {
    return demand.gpu() > 0.0;
  }
};

/// Per-job placement constraints (C4): a zone label filter plus a simple
/// anti-affinity spread limit. Defaults are unconstrained — legacy jobs
/// schedule exactly as before.
struct Placement {
  /// Comma-separated allowed zone names (Datacenter zones); empty = any
  /// machine. Resolved once at submit through the engine's
  /// LabelFilterCache.
  std::string zones;
  /// Max concurrently-running tasks of this job per machine; 0 = unlimited.
  std::uint32_t spread_limit = 0;

  [[nodiscard]] bool constrained() const {
    return !zones.empty() || spread_limit > 0;
  }
};

struct Job {
  JobId id = 0;
  std::string user;
  sim::SimTime submit_time = 0;
  std::vector<Task> tasks;
  core::Sla sla;
  Placement placement;

  /// A job is a workflow when any task has dependencies.
  [[nodiscard]] bool is_workflow() const;

  /// Sum of all task work (reference-machine seconds).
  [[nodiscard]] double total_work_seconds() const;

  /// Length of the longest dependency chain in reference seconds — the
  /// lower bound on makespan with infinite resources; used as the slowdown
  /// denominator for workflows.
  [[nodiscard]] double critical_path_seconds() const;

  /// Tasks per dependency level (level = longest chain of deps below).
  [[nodiscard]] std::vector<std::size_t> level_of_tasks() const;

  /// Maximum number of tasks eligible to run simultaneously (width of the
  /// widest level) — the workflow-aware autoscalers use this.
  [[nodiscard]] std::size_t max_parallelism() const;

  /// Validates the dependency structure (deps point backwards & in range).
  [[nodiscard]] bool valid() const;
};

/// Builds a bag of `n` independent tasks with the given per-task work and
/// demand.
[[nodiscard]] Job make_bag_of_tasks(JobId id, std::size_t n,
                                    double work_seconds_each,
                                    infra::ResourceVector demand = {1.0, 1.0,
                                                                    0.0});

}  // namespace mcs::workload
