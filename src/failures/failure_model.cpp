#include "failures/failure_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "metrics/stats.hpp"

namespace mcs::failures {

std::vector<FailureEvent> generate_failure_trace(
    const infra::Datacenter& dc, const FailureModelConfig& config,
    sim::SimTime horizon, sim::Rng& rng) {
  if (horizon <= 0) return {};
  if (config.failures_per_machine_day <= 0.0) return {};
  const std::size_t n_machines = dc.machine_count();
  if (n_machines == 0) return {};

  const bool space = config.mode == CorrelationMode::kSpaceCorrelated ||
                     config.mode == CorrelationMode::kSpaceAndTime;
  const bool time = config.mode == CorrelationMode::kTimeCorrelated ||
                    config.mode == CorrelationMode::kSpaceAndTime;

  // Machine-failures per second across the floor.
  const double floor_rate = config.failures_per_machine_day *
                            static_cast<double>(n_machines) / 86400.0;
  // Space-correlated traces bundle failures into bursts; keep the long-run
  // machine-failure volume equal by thinning event arrivals by the mean
  // burst size.
  const double event_rate =
      space ? floor_rate / config.mean_burst_size : floor_rate;
  const double mean_gap_s = 1.0 / event_rate;

  // For time correlation, draw Weibull gaps with the same mean:
  // mean of Weibull(k, lambda) = lambda * Gamma(1 + 1/k).
  const double gamma_term = std::tgamma(1.0 + 1.0 / config.weibull_shape);
  const double weibull_scale = mean_gap_s / gamma_term;

  std::vector<FailureEvent> trace;
  sim::SimTime clock = 0;
  const std::size_t racks = std::max<std::size_t>(dc.rack_count(), 1);

  for (;;) {
    const double gap_s = time ? rng.weibull(config.weibull_shape, weibull_scale)
                              : rng.exponential(mean_gap_s);
    clock += std::max<sim::SimTime>(sim::from_seconds(gap_s), 1);
    if (clock >= horizon) break;

    FailureEvent event;
    event.at = clock;
    event.downtime = sim::from_seconds(std::max(
        1.0, rng.lognormal_mean_cv(config.mean_repair_seconds,
                                   config.cv_repair)));

    if (space) {
      // One rack is struck; the burst size is heavy-tailed (lognormal),
      // clamped to the rack population [26].
      const std::size_t rack =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(racks) - 1));
      auto members = dc.rack_members(rack);
      if (members.empty()) continue;
      std::size_t burst = static_cast<std::size_t>(std::max(
          1.0, std::round(rng.lognormal_mean_cv(config.mean_burst_size, 1.0))));
      burst = std::min(burst, members.size());
      rng.shuffle(members);
      event.machines.assign(members.begin(),
                            members.begin() + static_cast<std::ptrdiff_t>(burst));
    } else {
      event.machines.push_back(static_cast<infra::MachineId>(
          rng.uniform_int(0, static_cast<std::int64_t>(n_machines) - 1)));
    }
    trace.push_back(std::move(event));
  }
  return trace;
}

FailureTraceStats summarize(const std::vector<FailureEvent>& trace) {
  FailureTraceStats s;
  s.events = trace.size();
  if (trace.empty()) return s;
  metrics::Accumulator sizes, gaps;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    sizes.add(static_cast<double>(trace[i].machines.size()));
    s.machine_failures += trace[i].machines.size();
    if (i > 0) {
      gaps.add(sim::to_seconds(trace[i].at - trace[i - 1].at));
    }
  }
  s.mean_event_size = sizes.mean();
  s.max_event_size = sizes.max();
  s.gap_cv = gaps.cv();
  return s;
}

FailureInjector::FailureInjector(sim::Simulator& sim, infra::Datacenter& dc,
                                 std::vector<FailureEvent> trace)
    : sim_(sim), dc_(dc), trace_(std::move(trace)) {}

void FailureInjector::attach_observability(obs::Tracer* tracer,
                                           obs::Registry* registry) {
  tracer_ = tracer;
  if (tracer_ != nullptr) {
    n_fail_ = tracer_->intern("machine.fail");
    n_repair_ = tracer_->intern("machine.repair");
  }
  injected_ = registry != nullptr ? &registry->counter("failures.injected")
                                  : &own_injected_;
}

void FailureInjector::arm(FailureCallback on_failure,
                          FailureCallback on_repair) {
  for (const FailureEvent& event : trace_) {
    if (event.at < sim_.now()) {
      throw std::invalid_argument("FailureInjector: event in the past");
    }
    sim_.schedule_at(event.at, [this, event, on_failure, on_repair] {
      for (infra::MachineId id : event.machines) {
        infra::Machine& m = dc_.machine(id);
        if (m.state() == infra::MachineState::kFailed) continue;  // already down
        m.fail();
        injected_->add();
        if (tracer_ != nullptr) tracer_->instant(sim_.now(), n_fail_, id);
        if (on_failure) on_failure(id);
        sim_.schedule_after(event.downtime, [this, id, on_repair] {
          infra::Machine& mm = dc_.machine(id);
          if (mm.state() == infra::MachineState::kFailed) {
            mm.repair();
            if (tracer_ != nullptr) {
              tracer_->instant(sim_.now(), n_repair_, id);
            }
            if (on_repair) on_repair(id);
          }
        });
      }
    });
  }
}

}  // namespace mcs::failures
