// Failure models for large-scale systems.
//
// §2.2 problem 2 and the paper's lineage [25][26][27]: failures in grids
// and clouds are *correlated* — in space (one event takes down a group of
// machines, e.g. a rack: Gallet et al. [26] model burst sizes as
// heavy-tailed) and in time (failures cluster; inter-arrivals autocorrelate:
// Yigitbasi et al. [27]). Treating failures as iid per-machine events
// underestimates the damage badly; exp_failures reproduces that shape.
#pragma once

#include <functional>
#include <vector>

#include "infra/topology.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace mcs::failures {

/// One failure event: at `at`, the listed machines fail; each is repaired
/// after `downtime`.
struct FailureEvent {
  sim::SimTime at = 0;
  std::vector<infra::MachineId> machines;
  sim::SimTime downtime = 0;
};

enum class CorrelationMode {
  kIid,              ///< independent single-machine failures
  kSpaceCorrelated,  ///< bursts hit rack-sized groups [26]
  kTimeCorrelated,   ///< failure inter-arrivals cluster in time [27]
  kSpaceAndTime,     ///< both effects combined
};

struct FailureModelConfig {
  CorrelationMode mode = CorrelationMode::kIid;
  /// Long-run machine-failure rate: expected individual machine failures
  /// per machine per day (the trace keeps this constant across modes, so
  /// modes are comparable at equal total failure volume).
  double failures_per_machine_day = 0.05;
  /// Mean repair time.
  double mean_repair_seconds = 1800.0;
  /// Repair time spread (lognormal CV).
  double cv_repair = 1.0;
  /// Space correlation: lognormal burst size (number of machines per event),
  /// parameterized by its mean; sampled sizes are clamped to the rack size.
  double mean_burst_size = 8.0;
  /// Time correlation: Weibull shape < 1 gives clustered (bursty)
  /// inter-event gaps with autocorrelated hazard.
  double weibull_shape = 0.45;
};

/// Generates a failure trace for the datacenter over [0, horizon).
/// Machines for space-correlated events are drawn rack-wise, so correlated
/// events respect the physical topology.
[[nodiscard]] std::vector<FailureEvent> generate_failure_trace(
    const infra::Datacenter& dc, const FailureModelConfig& config,
    sim::SimTime horizon, sim::Rng& rng);

/// Summary statistics for a trace (used by tests and exp_failures).
struct FailureTraceStats {
  std::size_t events = 0;
  std::size_t machine_failures = 0;      ///< sum of event sizes
  double mean_event_size = 0.0;
  double max_event_size = 0.0;
  double gap_cv = 0.0;                   ///< CV of inter-event gaps
};

[[nodiscard]] FailureTraceStats summarize(const std::vector<FailureEvent>& trace);

/// Drives a failure trace into a live simulation: schedules fail() and
/// repair() calls on the datacenter machines, invoking `on_failure` for
/// every machine failure so the scheduler can kill/resubmit affected work.
class FailureInjector {
 public:
  using FailureCallback = std::function<void(infra::MachineId)>;

  FailureInjector(sim::Simulator& sim, infra::Datacenter& dc,
                  std::vector<FailureEvent> trace);

  /// Installs all events into the simulator. `on_failure` fires per machine
  /// failure; `on_repair` fires when a machine comes back (schedulers use
  /// it to re-evaluate). Either may be empty.
  void arm(FailureCallback on_failure, FailureCallback on_repair = {});

  /// Hooks the injector into the observability layer (DESIGN.md §11):
  /// `machine.fail` / `machine.repair` instants land in `tracer` and the
  /// injected-failure tally moves to `registry`'s "failures.injected"
  /// counter (so sweep merges aggregate it). Either may be nullptr; call
  /// before arm().
  void attach_observability(obs::Tracer* tracer, obs::Registry* registry);

  [[nodiscard]] std::size_t injected_failures() const {
    return static_cast<std::size_t>(injected_->value());
  }

 private:
  sim::Simulator& sim_;
  infra::Datacenter& dc_;
  std::vector<FailureEvent> trace_;
  /// The tally is an obs::Counter so attach_observability can repoint it
  /// into a shared registry; standalone injectors count into own_injected_.
  obs::Counter own_injected_;
  obs::Counter* injected_ = &own_injected_;
  obs::Tracer* tracer_ = nullptr;
  obs::NameId n_fail_{};
  obs::NameId n_repair_{};
};

}  // namespace mcs::failures
