#include <functional>
#include "autoscale/autoscaler.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <stdexcept>

#include "metrics/stats.hpp"
#include "sched/allocation.hpp"

namespace mcs::autoscale {

namespace {

std::size_t to_machines(double x) {
  if (x <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(x - 1e-9));
}

class NoScaler final : public Autoscaler {
 public:
  [[nodiscard]] std::string name() const override { return "none(max)"; }
  std::size_t decide(const AutoscaleContext& ctx) override {
    return ctx.max_machines;
  }
};

class React final : public Autoscaler {
 public:
  explicit React(double headroom) : headroom_(headroom) {}
  [[nodiscard]] std::string name() const override { return "react"; }
  std::size_t decide(const AutoscaleContext& ctx) override {
    return to_machines(ctx.demand_machines * (1.0 + headroom_));
  }

 private:
  double headroom_;
};

class Adapt final : public Autoscaler {
 public:
  Adapt(double gain, std::size_t max_step) : gain_(gain), max_step_(max_step) {}
  [[nodiscard]] std::string name() const override { return "adapt"; }
  std::size_t decide(const AutoscaleContext& ctx) override {
    const double gap = ctx.demand_machines -
                       static_cast<double>(ctx.supply_machines);
    double step = gain_ * gap;
    step = std::clamp(step, -static_cast<double>(max_step_),
                      static_cast<double>(max_step_));
    const double target = static_cast<double>(ctx.supply_machines) + step;
    return to_machines(std::max(target, 0.0));
  }

 private:
  double gain_;
  std::size_t max_step_;
};

class Hist final : public Autoscaler {
 public:
  explicit Hist(double percentile) : percentile_(percentile) {}
  [[nodiscard]] std::string name() const override { return "hist"; }
  std::size_t decide(const AutoscaleContext& ctx) override {
    const std::size_t bucket = static_cast<std::size_t>(
        (ctx.now / sim::kHour) % 24);
    auto& samples = buckets_[bucket];
    // mcs-lint: allow(H3) — autoscaler ticks are periodic (minutes of sim
    // time), far off the per-task path the `decide` name collides with.
    samples.push_back(ctx.demand_machines);
    if (samples.size() < 3) {
      // Cold bucket: behave like React.
      return to_machines(ctx.demand_machines);
    }
    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());
    const double pos =
        percentile_ * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return to_machines(sorted[lo] * (1.0 - frac) + sorted[hi] * frac);
  }

 private:
  double percentile_;
  std::array<std::vector<double>, 24> buckets_;
};

class Reg final : public Autoscaler {
 public:
  explicit Reg(std::size_t window) : window_(window) {}
  [[nodiscard]] std::string name() const override { return "reg"; }
  std::size_t decide(const AutoscaleContext& ctx) override {
    const auto& hist = *ctx.demand_history;
    if (hist.size() < 3) return to_machines(ctx.demand_machines);
    const std::size_t n = std::min(window_, hist.size());
    std::vector<double> x(n), y(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = static_cast<double>(i);
      y[i] = hist[hist.size() - n + i];
    }
    const auto fit = metrics::least_squares(x, y);
    const double predicted =
        fit.intercept + fit.slope * static_cast<double>(n);  // next tick
    return to_machines(std::max(predicted, 0.0));
  }

 private:
  std::size_t window_;
};

class ConPaas final : public Autoscaler {
 public:
  ConPaas(double alpha, double beta) : alpha_(alpha), beta_(beta) {}
  [[nodiscard]] std::string name() const override { return "conpaas"; }
  std::size_t decide(const AutoscaleContext& ctx) override {
    // Holt double exponential smoothing: level + trend, forecast one ahead.
    if (!initialized_) {
      level_ = ctx.demand_machines;
      trend_ = 0.0;
      initialized_ = true;
      return to_machines(ctx.demand_machines);
    }
    const double prev_level = level_;
    level_ = alpha_ * ctx.demand_machines + (1.0 - alpha_) * (level_ + trend_);
    trend_ = beta_ * (level_ - prev_level) + (1.0 - beta_) * trend_;
    return to_machines(std::max(level_ + trend_, 0.0));
  }

 private:
  double alpha_, beta_;
  double level_ = 0.0, trend_ = 0.0;
  bool initialized_ = false;
};

class Plan final : public Autoscaler {
 public:
  explicit Plan(sim::SimTime drain_horizon) : horizon_(drain_horizon) {}
  [[nodiscard]] std::string name() const override { return "plan"; }
  std::size_t decide(const AutoscaleContext& ctx) override {
    // Machines needed to drain the pending work within the horizon...
    const double horizon_s = sim::to_seconds(horizon_);
    const double drain_need =
        horizon_s <= 0.0 ? 0.0
                         : ctx.pending_work_machine_seconds / horizon_s;
    // ...but never more than the work can use in parallel right now.
    const double lop_cores = static_cast<double>(ctx.eligible_tasks) *
                             ctx.mean_task_cores;
    const double lop_machines =
        ctx.cores_per_machine <= 0.0 ? 0.0 : lop_cores / ctx.cores_per_machine;
    return to_machines(std::min(std::max(drain_need, 1.0), std::max(lop_machines, 1.0)));
  }

 private:
  sim::SimTime horizon_;
};

class Pid final : public Autoscaler {
 public:
  Pid(double kp, double ki, double kd) : kp_(kp), ki_(ki), kd_(kd) {}
  [[nodiscard]] std::string name() const override { return "pid"; }
  std::size_t decide(const AutoscaleContext& ctx) override {
    // Error in machines; dt in controller ticks (the decision interval).
    const double error =
        ctx.demand_machines - static_cast<double>(ctx.supply_machines);
    integral_ += error;
    // Anti-windup: clamp the integral to the actuator range.
    integral_ = std::clamp(integral_, -static_cast<double>(ctx.max_machines),
                           static_cast<double>(ctx.max_machines));
    const double derivative = initialized_ ? error - prev_error_ : 0.0;
    prev_error_ = error;
    initialized_ = true;
    const double output = static_cast<double>(ctx.supply_machines) +
                          kp_ * error + ki_ * integral_ + kd_ * derivative;
    return to_machines(std::max(output, 0.0));
  }

 private:
  double kp_, ki_, kd_;
  double integral_ = 0.0;
  double prev_error_ = 0.0;
  bool initialized_ = false;
};

class Token final : public Autoscaler {
 public:
  [[nodiscard]] std::string name() const override { return "token"; }
  std::size_t decide(const AutoscaleContext& ctx) override {
    const double cores = static_cast<double>(ctx.eligible_tasks) *
                         ctx.mean_task_cores;
    return to_machines(ctx.cores_per_machine <= 0.0
                           ? 0.0
                           : cores / ctx.cores_per_machine);
  }
};

}  // namespace

std::unique_ptr<Autoscaler> make_no_scaler() {
  return std::make_unique<NoScaler>();
}
std::unique_ptr<Autoscaler> make_react(double headroom) {
  return std::make_unique<React>(headroom);
}
std::unique_ptr<Autoscaler> make_adapt(double gain, std::size_t max_step) {
  return std::make_unique<Adapt>(gain, max_step);
}
std::unique_ptr<Autoscaler> make_hist(double percentile) {
  return std::make_unique<Hist>(percentile);
}
std::unique_ptr<Autoscaler> make_reg(std::size_t window) {
  return std::make_unique<Reg>(window);
}
std::unique_ptr<Autoscaler> make_conpaas(double alpha, double beta) {
  return std::make_unique<ConPaas>(alpha, beta);
}
std::unique_ptr<Autoscaler> make_plan(sim::SimTime drain_horizon) {
  return std::make_unique<Plan>(drain_horizon);
}
std::unique_ptr<Autoscaler> make_token() { return std::make_unique<Token>(); }
std::unique_ptr<Autoscaler> make_pid(double kp, double ki, double kd) {
  return std::make_unique<Pid>(kp, ki, kd);
}

std::vector<std::string> all_autoscaler_names() {
  return {"react", "adapt", "hist", "reg", "conpaas", "pid", "plan", "token"};
}

std::unique_ptr<Autoscaler> make_autoscaler(const std::string& name) {
  if (name == "none") return make_no_scaler();
  if (name == "react") return make_react();
  if (name == "adapt") return make_adapt();
  if (name == "hist") return make_hist();
  if (name == "reg") return make_reg();
  if (name == "conpaas") return make_conpaas();
  if (name == "pid") return make_pid();
  if (name == "plan") return make_plan();
  if (name == "token") return make_token();
  throw std::invalid_argument("make_autoscaler: unknown " + name);
}

AutoscaleRunResult run_autoscaled(infra::Datacenter& dc,
                                  std::vector<workload::Job> jobs,
                                  std::unique_ptr<Autoscaler> autoscaler,
                                  const AutoscaleRunConfig& config) {
  if (!autoscaler) throw std::invalid_argument("run_autoscaled: null scaler");
  sim::Simulator sim;
  auto policy = config.allocation_policy.empty()
                    ? sched::make_fcfs()
                    : sched::make_policy(config.allocation_policy);
  sched::ExecutionEngine engine(sim, dc, std::move(policy), config.engine);
  sched::ProvisionedPool pool(sim, dc, engine, config.provisioning);
  pool.start_with(config.min_machines);

  const double cores_per_machine =
      dc.machine_count() == 0 ? 1.0 : dc.machine(0).capacity().cpu();

  // Mean task cores: estimate from the trace.
  double total_cores = 0.0;
  std::size_t total_tasks = 0;
  for (const auto& j : jobs) {
    for (const auto& t : j.tasks) {
      total_cores += t.demand.cpu();
      ++total_tasks;
    }
  }
  const double mean_task_cores =
      total_tasks == 0 ? 1.0 : total_cores / static_cast<double>(total_tasks);

  engine.submit_all(std::move(jobs));

  // Observability: decision instants + demand/supply/target counter
  // samples into the tracer; tick/scale tallies into the registry.
  obs::Tracer* tracer = config.tracer;
  engine.set_tracer(tracer);
  engine.set_slo(config.slo);
  obs::NameId n_decision{}, n_demand{}, n_supply{}, n_target{};
  if (tracer != nullptr) {
    n_decision = tracer->intern("autoscale.decision");
    n_demand = tracer->intern("autoscale.demand_machines");
    n_supply = tracer->intern("autoscale.supply_machines");
    n_target = tracer->intern("autoscale.target_machines");
  }
  obs::Counter* ctr_ticks = nullptr;
  obs::Counter* ctr_ups = nullptr;
  obs::Counter* ctr_downs = nullptr;
  obs::Gauge* g_target = nullptr;
  if (config.registry != nullptr) {
    ctr_ticks = &config.registry->counter("autoscale.ticks");
    ctr_ups = &config.registry->counter("autoscale.scale_ups");
    ctr_downs = &config.registry->counter("autoscale.scale_downs");
    g_target = &config.registry->gauge("autoscale.target_machines");
  }

  AutoscaleRunResult result;
  result.autoscaler = autoscaler->name();
  metrics::StepSeries demand_machines_series;
  std::vector<double> demand_history;

  auto tick_holder = std::make_shared<std::function<void()>>();
  *tick_holder = [&, tick_holder] {
    pool.reap_drained();
    const double demand_m = engine.demand_cores() / cores_per_machine;
    demand_machines_series.append(sim.now(), demand_m);
    demand_history.push_back(demand_m);

    AutoscaleContext ctx;
    ctx.now = sim.now();
    ctx.interval = config.interval;
    ctx.demand_machines = demand_m;
    ctx.demand_history = &demand_history;
    ctx.supply_machines = pool.active();
    ctx.min_machines = config.min_machines;
    ctx.max_machines = config.max_machines;
    ctx.pending_work_machine_seconds =
        engine.pending_work_core_seconds() / cores_per_machine;
    ctx.eligible_tasks = engine.eligible_within(config.interval);
    ctx.cores_per_machine = cores_per_machine;
    ctx.mean_task_cores = mean_task_cores;

    const std::size_t target = std::clamp(autoscaler->decide(ctx),
                                          config.min_machines,
                                          config.max_machines);
    const std::size_t supply_before = pool.active();
    pool.set_target(target);
    if (tracer != nullptr) {
      tracer->instant(sim.now(), n_decision, 0,
                      static_cast<std::int64_t>(target),
                      static_cast<std::int64_t>(supply_before));
      tracer->counter(sim.now(), n_demand,
                      static_cast<std::int64_t>(std::llround(demand_m)));
      tracer->counter(sim.now(), n_supply,
                      static_cast<std::int64_t>(supply_before));
      tracer->counter(sim.now(), n_target,
                      static_cast<std::int64_t>(target));
    }
    if (ctr_ticks != nullptr) {
      ctr_ticks->add();
      if (target > supply_before) ctr_ups->add();
      if (target < supply_before) ctr_downs->add();
      g_target->set(static_cast<double>(target));
    }
    ++result.ticks;
    if (!engine.all_done()) {
      sim.schedule_after(config.interval, *tick_holder);
    }
  };
  sim.schedule_after(0, *tick_holder);

  sim.run_until();

  result.sched = sched::summarize_run(engine, dc);
  const sim::SimTime horizon = sim.now();
  if (horizon > 0) {
    result.elasticity = metrics::elasticity_report(
        demand_machines_series, pool.supply_series(), 0, horizon);
    result.elasticity_score = metrics::elasticity_score(result.elasticity);
    result.avg_machines = pool.supply_series().time_average(0, horizon);
  }
  result.cost = pool.cost();
  if (config.slo != nullptr) config.slo->finalize(sim.now());
  // Hand the engine's lifecycle instruments to the caller's registry so
  // one registry holds the whole run's telemetry.
  if (config.registry != nullptr) config.registry->merge(engine.registry());
  return result;
}

}  // namespace mcs::autoscale
