// Autoscalers (C3/C6/C7), reimplementing the decision rules of the seven
// policies in the comparison the paper invokes (Ilyushkin et al. [43]):
//
//   General-purpose (demand signal only):
//    - React   (Chieu et al.): supply := current demand.
//    - Adapt   (Ali-Eldin et al.): proportional controller with bounded
//              step, smoothing the reaction to demand changes.
//    - Hist    (Urgaonkar et al.): histogram prediction per hour-of-day
//              bucket, provisioning for the bucket's high percentile.
//    - Reg     (Iqbal et al.): linear regression over the recent demand
//              history, provisioning for the predicted next value.
//    - ConPaaS (Fernandez et al.): time-series forecast (Holt double
//              exponential smoothing).
//   Workflow-aware (structure signal from the engine):
//    - Plan:  enough machines to drain the pending work within a target
//             horizon, bounded by the eligible level of parallelism.
//    - Token: supply := tokens, the number of tasks eligible to run within
//             one interval (level-of-parallelism tracking).
//
// The published shape this reproduces (bench/exp_autoscalers): demand-based
// scalers track supply accuracy well; workflow-aware scalers win on job
// slowdown; no autoscaling wastes resources or starves the queue.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "metrics/elasticity.hpp"
#include "sched/engine.hpp"
#include "sched/provisioning.hpp"
#include "sim/simulator.hpp"

namespace mcs::autoscale {

struct AutoscaleContext {
  sim::SimTime now = 0;
  sim::SimTime interval = 30 * sim::kSecond;
  /// Instantaneous demand expressed in machines.
  double demand_machines = 0.0;
  /// Demand history: one sample per past tick (machines).
  const std::vector<double>* demand_history = nullptr;
  std::size_t supply_machines = 0;
  std::size_t min_machines = 1;
  std::size_t max_machines = 1;
  // Workflow-aware signals (engine-provided).
  double pending_work_machine_seconds = 0.0;
  std::size_t eligible_tasks = 0;
  double cores_per_machine = 1.0;
  double mean_task_cores = 1.0;
};

class Autoscaler {
 public:
  virtual ~Autoscaler() = default;
  [[nodiscard]] virtual std::string name() const = 0;
  /// Returns the desired machine count (clamped by the runner).
  [[nodiscard]] virtual std::size_t decide(const AutoscaleContext& ctx) = 0;
};

[[nodiscard]] std::unique_ptr<Autoscaler> make_no_scaler();   ///< pins max
[[nodiscard]] std::unique_ptr<Autoscaler> make_react(double headroom = 0.1);
[[nodiscard]] std::unique_ptr<Autoscaler> make_adapt(double gain = 0.5,
                                                     std::size_t max_step = 4);
[[nodiscard]] std::unique_ptr<Autoscaler> make_hist(double percentile = 0.9);
[[nodiscard]] std::unique_ptr<Autoscaler> make_reg(std::size_t window = 10);
[[nodiscard]] std::unique_ptr<Autoscaler> make_conpaas(double alpha = 0.5,
                                                       double beta = 0.3);
[[nodiscard]] std::unique_ptr<Autoscaler> make_plan(
    sim::SimTime drain_horizon = 5 * sim::kMinute);
[[nodiscard]] std::unique_ptr<Autoscaler> make_token();
/// PID feedback controller on the demand-supply error — the classic
/// "feedback control-based technique" class of the paper's self-awareness
/// survey [95] (C6 approach class (i)).
[[nodiscard]] std::unique_ptr<Autoscaler> make_pid(double kp = 0.8,
                                                   double ki = 0.15,
                                                   double kd = 0.1);

[[nodiscard]] std::vector<std::string> all_autoscaler_names();
[[nodiscard]] std::unique_ptr<Autoscaler> make_autoscaler(
    const std::string& name);

// ---- the runner ---------------------------------------------------------------

struct AutoscaleRunConfig {
  sim::SimTime interval = 30 * sim::kSecond;
  std::size_t min_machines = 1;
  std::size_t max_machines = 64;
  sched::ProvisioningConfig provisioning;
  /// Allocation policy for the engine ("" = FCFS).
  std::string allocation_policy;
  /// Observability (DESIGN.md §11), both optional: the tracer receives the
  /// engine's lifecycle events plus per-tick `autoscale.decision` instants
  /// and demand/supply/target counter samples; the registry receives
  /// autoscale.ticks / scale_ups / scale_downs counters and the
  /// target-machines gauge (merged with the engine's own instruments when
  /// the caller passes `&engine.registry()`-style shared registries).
  obs::Tracer* tracer = nullptr;
  obs::Registry* registry = nullptr;
  /// Engine construction knobs (lifecycle spans, retries, scavenging...).
  sched::EngineConfig engine;
  /// Optional SLO tracker (obs/slo.hpp) fed by the engine's completions.
  /// run_autoscaled finalizes it at the end of the run — the Simulator is
  /// internal, so the caller never sees the final sim time.
  obs::SloTracker* slo = nullptr;
};

struct AutoscaleRunResult {
  std::string autoscaler;
  metrics::ElasticityReport elasticity;  ///< machine-axis supply vs demand
  double elasticity_score = 0.0;
  sched::RunResult sched;
  double cost = 0.0;                     ///< billed machine-hours * price
  double avg_machines = 0.0;
  std::size_t ticks = 0;
};

/// Runs the workload on `dc` under the autoscaler; the pool starts at
/// min_machines. Returns elasticity + scheduling metrics.
[[nodiscard]] AutoscaleRunResult run_autoscaled(
    infra::Datacenter& dc, std::vector<workload::Job> jobs,
    std::unique_ptr<Autoscaler> autoscaler, const AutoscaleRunConfig& config);

}  // namespace mcs::autoscale
