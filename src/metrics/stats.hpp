// Summary statistics used across all experiments.
//
// The paper's methodology (§3.3) demands statistically sound observation:
// experiments report distributions (percentiles, CV, IQR), not just means —
// performance variability [145] is itself one of the reproduced experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcs::metrics {

/// Streaming accumulator: O(1) memory for mean/variance (Welford),
/// plus optional sample retention for quantiles.
class Accumulator {
 public:
  explicit Accumulator(bool keep_samples = true) : keep_samples_(keep_samples) {}

  void add(double x);

  /// Folds another accumulator into this one (Chan et al. pairwise update
  /// for mean/M2; min/max/sum/count combine directly; samples are
  /// concatenated). Deterministic but — like any floating-point fold — not
  /// commutative: callers merging parallel partials must do so in a fixed
  /// order (the sweep runner merges in flat grid order) for bit-identical
  /// results at any thread count. Requires matching keep_samples modes
  /// when both sides hold data.
  void merge(const Accumulator& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Coefficient of variation (stddev/mean); 0 when mean == 0.
  [[nodiscard]] double cv() const;

  /// Linear-interpolated quantile, q in [0,1]. Requires keep_samples.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  /// Interquartile range. Requires keep_samples.
  [[nodiscard]] double iqr() const { return quantile(0.75) - quantile(0.25); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

 private:
  bool keep_samples_;
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Order-sensitive FNV-1a digest over a stream of values, with a merge
/// operation for combining per-replication digests. merge() is
/// deterministic (it folds the child's hash and length into the parent)
/// but not commutative, so parallel sweeps merge per-cell digests in flat
/// grid order — the digest is then bit-identical at any thread count.
class Digest {
 public:
  void add_bytes(const void* data, std::size_t len);
  void add_u64(std::uint64_t v);
  /// Hashes the exact bit pattern (reproducible across runs, not across
  /// float representations — fine for one toolchain).
  void add_double(double v);
  void merge(const Digest& child);

  [[nodiscard]] std::uint64_t value() const { return h_; }
  /// 16 lowercase hex digits (the format check_determinism.sh diffs).
  [[nodiscard]] std::string hex() const;

 private:
  std::uint64_t h_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t fed_ = 0;                     // values fed (length guard)
};

/// Pearson correlation of two equal-length series; 0 if degenerate.
[[nodiscard]] double pearson(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Lag-k autocorrelation of a series; 0 if degenerate.
[[nodiscard]] double autocorrelation(const std::vector<double>& xs,
                                     std::size_t lag);

/// Ordinary least squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
[[nodiscard]] LinearFit least_squares(const std::vector<double>& x,
                                      const std::vector<double>& y);

}  // namespace mcs::metrics
