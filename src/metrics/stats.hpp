// Summary statistics used across all experiments.
//
// The paper's methodology (§3.3) demands statistically sound observation:
// experiments report distributions (percentiles, CV, IQR), not just means —
// performance variability [145] is itself one of the reproduced experiments.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace mcs::metrics {

class Histogram;

/// Streaming accumulator: O(1) memory for mean/variance (Welford),
/// plus optional sample retention for quantiles.
class Accumulator {
 public:
  explicit Accumulator(bool keep_samples = true) : keep_samples_(keep_samples) {}

  void add(double x);

  /// Folds another accumulator into this one (Chan et al. pairwise update
  /// for mean/M2; min/max/sum/count combine directly; samples are
  /// concatenated). Deterministic but — like any floating-point fold — not
  /// commutative: callers merging parallel partials must do so in a fixed
  /// order (the sweep runner merges in flat grid order) for bit-identical
  /// results at any thread count. Requires matching keep_samples modes
  /// when both sides hold data.
  void merge(const Accumulator& other);

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double variance() const;  ///< sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Coefficient of variation (stddev/mean); 0 when mean == 0.
  [[nodiscard]] double cv() const;

  /// Linear-interpolated quantile, q in [0,1]. Requires keep_samples.
  [[nodiscard]] double quantile(double q) const;
  [[nodiscard]] double median() const { return quantile(0.5); }
  /// Interquartile range. Requires keep_samples.
  [[nodiscard]] double iqr() const { return quantile(0.75) - quantile(0.25); }

  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// Bins the retained samples through Histogram::record — the one binning
  /// implementation — so accumulator-derived and instrument-recorded
  /// histograms always agree. Requires keep_samples.
  [[nodiscard]] class Histogram histogram() const;

 private:
  bool keep_samples_;
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bin log-bucketed histogram (HDR-style): 64 power-of-two buckets
/// over the value's binary exponent, plus exact count/sum/min/max. This is
/// the *single* binning implementation in the repository — the obs layer's
/// histogram instruments (src/obs/registry.hpp) wrap this class and
/// Accumulator::histogram() bins retained samples through the same
/// record() path, so bucket boundaries can never drift apart.
///
/// record() is allocation-free (the bins are a fixed array) and therefore
/// legal inside `// mcs-lint: hot` functions. merge() adds bin counts —
/// exactly associative for the integer state (bins, count) and for sums of
/// exactly-representable values.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;
  /// Bucket index for a value: 0 holds v <= 0 and subnormal magnitudes;
  /// otherwise floor(log2(v)) shifted so bucket kZeroExponentBucket holds
  /// [1, 2). Values beyond the range clamp to the first/last bucket.
  static constexpr int kZeroExponentBucket = 32;
  [[nodiscard]] static std::size_t bucket_of(double v);
  /// Inclusive-exclusive value range [lo, hi) covered by bucket b (bucket 0
  /// reports [0, smallest bound); the last bucket's hi is +infinity).
  [[nodiscard]] static double bucket_floor(std::size_t b);

  /// Records one observation. Allocation-free.
  // mcs-lint: hot
  void record(double v) {
    ++bins_[bucket_of(v)];
    ++count_;
    sum_ += v;
    if (count_ == 1) {
      min_ = max_ = v;
    } else {
      if (v < min_) min_ = v;
      if (v > max_) max_ = v;
    }
  }

  /// Adds another histogram's bins/count/sum/min/max into this one.
  /// Associative: (a+b)+c and a+(b+c) hold identical integer state.
  void merge(const Histogram& other);

  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double min() const { return count_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return count_ == 0 ? 0.0 : max_; }
  [[nodiscard]] const std::uint64_t* bins() const { return bins_; }
  [[nodiscard]] std::uint64_t bin(std::size_t b) const { return bins_[b]; }

  /// Bucket-resolution quantile estimate, q in [0,1]: walks the bins and
  /// returns the geometric midpoint of the bucket holding the q-th
  /// observation (clamped to the recorded min/max). The true quantile is
  /// guaranteed to lie inside that bucket's [floor, 2*floor) range — a
  /// relative error of at most 2x, honestly reportable via
  /// quantile_bucket() + bucket_floor().
  [[nodiscard]] double quantile(double q) const;

  /// Index of the bucket holding the q-th observation (nearest-rank,
  /// 0-based) — the bucket whose bounds bracket the true quantile.
  /// Returns kBuckets when the histogram is empty.
  [[nodiscard]] std::size_t quantile_bucket(double q) const;

 private:
  std::uint64_t bins_[kBuckets] = {};
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Order-sensitive FNV-1a digest over a stream of values, with a merge
/// operation for combining per-replication digests. merge() is
/// deterministic (it folds the child's hash and length into the parent)
/// but not commutative, so parallel sweeps merge per-cell digests in flat
/// grid order — the digest is then bit-identical at any thread count.
class Digest {
 public:
  void add_bytes(const void* data, std::size_t len);
  void add_u64(std::uint64_t v);
  /// Hashes the exact bit pattern (reproducible across runs, not across
  /// float representations — fine for one toolchain).
  void add_double(double v);
  void merge(const Digest& child);

  [[nodiscard]] std::uint64_t value() const { return h_; }
  /// 16 lowercase hex digits (the format check_determinism.sh diffs).
  [[nodiscard]] std::string hex() const;

 private:
  std::uint64_t h_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::uint64_t fed_ = 0;                     // values fed (length guard)
};

/// 16 lowercase hex digits of an arbitrary u64 (the digest line format).
[[nodiscard]] std::string hex16(std::uint64_t v);

/// Pearson correlation of two equal-length series; 0 if degenerate.
[[nodiscard]] double pearson(const std::vector<double>& a,
                             const std::vector<double>& b);

/// Lag-k autocorrelation of a series; 0 if degenerate.
[[nodiscard]] double autocorrelation(const std::vector<double>& xs,
                                     std::size_t lag);

/// Ordinary least squares fit y = a + b*x; returns {a, b}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
[[nodiscard]] LinearFit least_squares(const std::vector<double>& x,
                                      const std::vector<double>& y);

}  // namespace mcs::metrics
