#include "metrics/elasticity.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcs::metrics {

StepSeries::StepSeries(std::vector<Sample> samples)
    : samples_(std::move(samples)) {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    if (samples_[i].at < samples_[i - 1].at) {
      throw std::invalid_argument("StepSeries: samples not sorted");
    }
  }
}

void StepSeries::append(sim::SimTime at, double value) {
  if (!samples_.empty() && at < samples_.back().at) {
    throw std::invalid_argument("StepSeries::append: time going backwards");
  }
  if (!samples_.empty() && at == samples_.back().at) {
    samples_.back().value = value;  // same-instant update wins
    return;
  }
  // mcs-lint: allow(H3) — unbounded-by-design time series (one step per
  // supply/demand change); amortized doubling growth.
  samples_.push_back(Sample{at, value});
}

double StepSeries::at(sim::SimTime t) const {
  if (samples_.empty() || t < samples_.front().at) return 0.0;
  auto it = std::upper_bound(
      samples_.begin(), samples_.end(), t,
      [](sim::SimTime lhs, const Sample& s) { return lhs < s.at; });
  return std::prev(it)->value;
}

double StepSeries::time_average(sim::SimTime from, sim::SimTime to) const {
  if (to <= from) return 0.0;
  double area = 0.0;
  sim::SimTime cursor = from;
  double value = at(from);
  for (const Sample& s : samples_) {
    if (s.at <= cursor) continue;
    const sim::SimTime stop = std::min(s.at, to);
    area += value * static_cast<double>(stop - cursor);
    cursor = stop;
    value = s.value;
    if (cursor >= to) break;
  }
  if (cursor < to) area += value * static_cast<double>(to - cursor);
  return area / static_cast<double>(to - from);
}

namespace {

/// Merges the breakpoints of both series inside [from, to).
std::vector<sim::SimTime> breakpoints(const StepSeries& a, const StepSeries& b,
                                      sim::SimTime from, sim::SimTime to) {
  std::vector<sim::SimTime> ts;
  ts.push_back(from);
  for (const Sample& s : a.samples()) {
    if (s.at > from && s.at < to) ts.push_back(s.at);
  }
  for (const Sample& s : b.samples()) {
    if (s.at > from && s.at < to) ts.push_back(s.at);
  }
  ts.push_back(to);
  std::sort(ts.begin(), ts.end());
  ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  return ts;
}

}  // namespace

ElasticityReport elasticity_report(const StepSeries& demand,
                                   const StepSeries& supply, sim::SimTime from,
                                   sim::SimTime to) {
  ElasticityReport r;
  if (to <= from) return r;
  const double horizon = static_cast<double>(to - from);

  const auto ts = breakpoints(demand, supply, from, to);
  double under_area = 0.0, over_area = 0.0;
  double under_time = 0.0, over_time = 0.0;
  double demand_area = 0.0, supply_area = 0.0;

  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    const double dt = static_cast<double>(ts[i + 1] - ts[i]);
    const double d = demand.at(ts[i]);
    const double s = supply.at(ts[i]);
    demand_area += d * dt;
    supply_area += s * dt;
    if (d > s) {
      under_area += (d - s) * dt;
      under_time += dt;
    } else if (s > d) {
      over_area += (s - d) * dt;
      over_time += dt;
    }
  }

  r.accuracy_under = under_area / horizon;
  r.accuracy_over = over_area / horizon;
  r.timeshare_under = under_time / horizon;
  r.timeshare_over = over_time / horizon;
  r.avg_demand = demand_area / horizon;
  r.avg_supply = supply_area / horizon;
  if (r.avg_demand > 0.0) {
    r.accuracy_under_norm = r.accuracy_under / r.avg_demand;
    r.accuracy_over_norm = r.accuracy_over / r.avg_demand;
  }

  // Adaptations & jitter: count supply changes within the horizon.
  std::size_t changes = 0;
  double prev = supply.at(from);
  for (const Sample& s : supply.samples()) {
    if (s.at <= from || s.at >= to) continue;
    if (s.value != prev) {
      ++changes;
      prev = s.value;
    }
  }
  r.adaptations = changes;
  r.jitter_per_hour = static_cast<double>(changes) /
                      (horizon / static_cast<double>(sim::kHour));

  // Instability: fraction of intervals where the two curves move in opposite
  // directions (sign of slope disagrees) — measured across breakpoints.
  std::size_t opposing = 0;
  std::size_t moves = 0;
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    const double dd = demand.at(ts[i + 1]) - demand.at(ts[i]);
    const double ds = supply.at(ts[i + 1]) - supply.at(ts[i]);
    if (dd == 0.0 && ds == 0.0) continue;
    ++moves;
    if ((dd > 0.0 && ds < 0.0) || (dd < 0.0 && ds > 0.0)) ++opposing;
  }
  r.instability =
      moves == 0 ? 0.0 : static_cast<double>(opposing) / static_cast<double>(moves);

  return r;
}

double elasticity_score(const ElasticityReport& r) {
  // Each term in [0, 1]; perfect tracking scores 1.0. An arithmetic mean is
  // used (rather than a product) so that saturating one axis — e.g. being
  // under-provisioned for the whole horizon — still leaves the remaining
  // axes able to rank policies, mirroring the per-metric aggregation of [43].
  const double acc_u = 1.0 / (1.0 + r.accuracy_under_norm);
  const double acc_o = 1.0 / (1.0 + r.accuracy_over_norm);
  const double ts_u = 1.0 - r.timeshare_under;
  const double ts_o = 1.0 - r.timeshare_over;
  return 0.25 * (acc_u + acc_o + ts_u + ts_o);
}

double operational_risk(const ElasticityReport& r) {
  // Frequency x severity: the fraction of time under-provisioned, weighted
  // by the (saturating) depth of the shortfall relative to demand.
  const double severity =
      r.accuracy_under_norm / (1.0 + r.accuracy_under_norm);  // in [0,1)
  const double risk = r.timeshare_under * (0.5 + 0.5 * severity);
  return std::clamp(risk, 0.0, 1.0);
}

}  // namespace mcs::metrics
