#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcs::metrics {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  if (keep_samples_) {
    // mcs-lint: allow(H3) — opt-in raw-sample retention (percentiles);
    // amortized doubling growth, accepted when keep_samples is requested.
    samples_.push_back(x);
    sorted_ = false;
  }
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (keep_samples_) {
    if (!other.keep_samples_) {
      throw std::logic_error(
          "Accumulator::merge: sample-keeping side cannot absorb a "
          "sample-free accumulator");
    }
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }
  if (n_ == 0) {
    n_ = other.n_;
    sum_ = other.sum_;
    mean_ = other.mean_;
    m2_ = other.m2_;
    min_ = other.min_;
    max_ = other.max_;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * (n2 / (n1 + n2));
  m2_ += other.m2_ + delta * delta * (n1 * n2 / (n1 + n2));
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Accumulator::mean() const { return n_ == 0 ? 0.0 : mean_; }

double Accumulator::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::min() const { return n_ == 0 ? 0.0 : min_; }
double Accumulator::max() const { return n_ == 0 ? 0.0 : max_; }

double Accumulator::cv() const {
  const double m = mean();
  return m == 0.0 ? 0.0 : stddev() / std::abs(m);
}

double Accumulator::quantile(double q) const {
  if (!keep_samples_) {
    throw std::logic_error("Accumulator::quantile without sample retention");
  }
  if (samples_.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

Histogram Accumulator::histogram() const {
  if (!keep_samples_) {
    throw std::logic_error("Accumulator::histogram without sample retention");
  }
  Histogram h;
  for (double x : samples_) h.record(x);
  return h;
}

std::size_t Histogram::bucket_of(double v) {
  if (!(v > 0.0)) return 0;  // <= 0, NaN, and -inf all land in bucket 0
  int exp = 0;
  std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
  // [1, 2) has exp == 1 → shift so it maps to kZeroExponentBucket.
  const int b = exp - 1 + kZeroExponentBucket;
  if (b < 1) return 1;  // positive but below range: first finite bucket
  if (b >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(b);
}

double Histogram::bucket_floor(std::size_t b) {
  if (b == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(b) - kZeroExponentBucket);
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < kBuckets; ++i) bins_[i] += other.bins_[i];
  sum_ += other.sum_;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

std::size_t Histogram::quantile_bucket(double q) const {
  if (count_ == 0) return kBuckets;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (0-based, nearest-rank style).
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bins_[b];
    if (seen > rank) return b;
  }
  return kBuckets - 1;
}

double Histogram::quantile(double q) const {
  const std::size_t b = quantile_bucket(q);
  if (b == kBuckets) return 0.0;
  // Geometric midpoint of [floor, 2*floor); bucket 0 reports 0.
  const double lo = bucket_floor(b);
  const double mid = lo == 0.0 ? 0.0 : lo * 1.5;
  return std::min(std::max(mid, min_), max_);
}

void Digest::add_bytes(const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h_ ^= p[i];
    h_ *= 1099511628211ull;  // FNV-1a prime
  }
  ++fed_;
}

void Digest::add_u64(std::uint64_t v) { add_bytes(&v, sizeof(v)); }

void Digest::add_double(double v) { add_bytes(&v, sizeof(v)); }

void Digest::merge(const Digest& child) {
  std::uint64_t v = child.h_;
  add_bytes(&v, sizeof(v));
  v = child.fed_;
  add_bytes(&v, sizeof(v));
}

std::string hex16(std::uint64_t v) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(16, '0');
  for (std::size_t i = 16; i-- > 0;) {
    out[i] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

std::string Digest::hex() const { return hex16(h_); }

double pearson(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size() || a.size() < 2) return 0.0;
  const auto n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double autocorrelation(const std::vector<double>& xs, std::size_t lag) {
  if (xs.size() <= lag + 1) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    den += (xs[i] - mean) * (xs[i] - mean);
    if (i + lag < xs.size()) {
      num += (xs[i] - mean) * (xs[i + lag] - mean);
    }
  }
  if (den <= 0.0) return 0.0;
  return num / den;
}

LinearFit least_squares(const std::vector<double>& x,
                        const std::vector<double>& y) {
  LinearFit fit;
  if (x.size() != y.size() || x.size() < 2) return fit;
  const auto n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double den = n * sxx - sx * sx;
  if (den == 0.0) return fit;
  fit.slope = (n * sxy - sx * sy) / den;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

}  // namespace mcs::metrics
