// SPEC Research Group elasticity metrics (Herbst et al. [32]; C3).
//
// The paper repeatedly invokes "the over ten available metrics" of
// elasticity; these are the accuracy/timeshare/instability family used by
// the autoscaler comparison the paper cites [43]. All metrics operate on a
// pair of step functions: demand(t) and supply(t), each given as
// time-stamped samples (value holds until the next timestamp).
#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace mcs::metrics {

struct Sample {
  sim::SimTime at = 0;
  double value = 0.0;
};

/// A right-continuous step function described by samples sorted by time.
class StepSeries {
 public:
  StepSeries() = default;
  explicit StepSeries(std::vector<Sample> samples);

  /// Appends a sample; timestamps must be non-decreasing.
  void append(sim::SimTime at, double value);

  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  /// Value at time t (value of the last sample with at <= t; 0 before the
  /// first sample).
  [[nodiscard]] double at(sim::SimTime t) const;

  /// Time-weighted average over [from, to).
  [[nodiscard]] double time_average(sim::SimTime from, sim::SimTime to) const;

 private:
  std::vector<Sample> samples_;
};

/// The SPEC elasticity report for one (demand, supply) pair over a horizon.
struct ElasticityReport {
  // Accuracy: time-averaged magnitude of the provisioning gap, in resource
  // units (paper [32]: theta_U underprovisioning, theta_O overprovisioning).
  double accuracy_under = 0.0;  ///< avg (demand - supply)+ : unmet demand
  double accuracy_over = 0.0;   ///< avg (supply - demand)+ : wasted supply
  // Normalized variants (divided by average demand), dimensionless.
  double accuracy_under_norm = 0.0;
  double accuracy_over_norm = 0.0;
  // Timeshare: fraction of the horizon spent under/over-provisioned.
  double timeshare_under = 0.0;
  double timeshare_over = 0.0;
  // Instability: fraction of time supply and demand move in opposite
  // directions (captures oscillation); jitter: net adaptations per hour.
  double instability = 0.0;
  double jitter_per_hour = 0.0;
  // Context.
  double avg_demand = 0.0;
  double avg_supply = 0.0;
  std::size_t adaptations = 0;  ///< count of supply changes
};

/// Computes the full SPEC report over [from, to).
[[nodiscard]] ElasticityReport elasticity_report(const StepSeries& demand,
                                                 const StepSeries& supply,
                                                 sim::SimTime from,
                                                 sim::SimTime to);

/// Scalar "elastic speedup" summary used for ranking autoscalers: the
/// geometric-mean-style aggregate of normalized accuracy and timeshare
/// (higher is better); 1.0 means perfect tracking.
[[nodiscard]] double elasticity_score(const ElasticityReport& r);

/// Operational risk in [0, 1] (SPEC [32] / C13: a stakeholder-facing
/// number for "the possibility of not meeting demand"). Combines how
/// often the system is under-provisioned with how deeply: 0 = demand
/// always met, 1 = starved for the whole horizon.
[[nodiscard]] double operational_risk(const ElasticityReport& r);

}  // namespace mcs::metrics
