#include "metrics/report.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mcs::metrics {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("Table: no headers");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::pct(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto rule = [&] {
    os << '+';
    for (std::size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto line = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << '\n';
  };

  rule();
  line(headers_);
  rule();
  for (const auto& row : rows_) line(row);
  rule();
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

void print_banner(std::ostream& os, const std::string& title) {
  os << '\n' << std::string(72, '=') << '\n'
     << "  " << title << '\n'
     << std::string(72, '=') << '\n';
}

void print_kv(std::ostream& os, const std::string& key,
              const std::string& value) {
  os << "  " << key << ": " << value << '\n';
}

}  // namespace mcs::metrics
