// ASCII table/series reporting used by every bench binary.
//
// Challenge C13 ("showing and explaining the operation of the ecosystem to
// all stakeholders, continuously"): every experiment in this repository
// reports through the same table formatter, so outputs are uniform and
// diff-able across runs.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace mcs::metrics {

/// Fixed-width ASCII table. Columns size to their widest cell.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a row; must match the header arity.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 2);
  /// Formats a ratio as a percentage string.
  static std::string pct(double fraction, int precision = 1);

  void print(std::ostream& os) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a titled section banner (uniform bench output framing).
void print_banner(std::ostream& os, const std::string& title);

/// Prints a `key: value` context line (seeds, parameters) — reproducibility
/// principle P8: every run states its configuration.
void print_kv(std::ostream& os, const std::string& key, const std::string& value);

}  // namespace mcs::metrics
