#include "core/ecosystem.hpp"

#include <algorithm>

namespace mcs::core {

std::string to_string(Layer layer) {
  switch (layer) {
    case Layer::kUnspecified: return "unspecified";
    case Layer::kHighLevelLanguage: return "high-level language";
    case Layer::kProgrammingModel: return "programming model";
    case Layer::kExecutionEngine: return "execution engine";
    case Layer::kStorageEngine: return "storage engine";
    case Layer::kFrontend: return "front-end";
    case Layer::kBackend: return "back-end";
    case Layer::kResources: return "resources";
    case Layer::kOperationsService: return "operations service";
    case Layer::kInfrastructure: return "infrastructure";
    case Layer::kDevOps: return "devops";
  }
  return "unknown";
}

std::string to_string(EvolutionMechanism m) {
  switch (m) {
    case EvolutionMechanism::kAdd: return "add";
    case EvolutionMechanism::kRemove: return "remove";
    case EvolutionMechanism::kReplace: return "replace";
    case EvolutionMechanism::kCombine: return "combine";
    case EvolutionMechanism::kBridge: return "bridge";
  }
  return "unknown";
}

void Ecosystem::record(EvolutionMechanism m, std::string subject,
                       std::string detail) {
  // mcs-lint: allow(H3) — evolution events are rare (topology changes, not
  // per-task work); the log is unbounded by design.
  history_.push_back(
      EvolutionRecord{m, std::move(subject), std::move(detail), step_++});
}

std::size_t Ecosystem::add_system(SystemInfo info) {
  record(EvolutionMechanism::kAdd, info.name, "system added");
  systems_.push_back(std::move(info));
  return systems_.size() - 1;
}

Ecosystem& Ecosystem::add_subecosystem(std::string name) {
  record(EvolutionMechanism::kCombine, name, "sub-ecosystem adopted");
  children_.push_back(std::make_unique<Ecosystem>(std::move(name)));
  return *children_.back();
}

bool Ecosystem::remove_system(const std::string& name) {
  auto it = std::find_if(systems_.begin(), systems_.end(),
                         [&](const SystemInfo& s) { return s.name == name; });
  if (it == systems_.end()) return false;
  record(EvolutionMechanism::kRemove, name, "system removed");
  systems_.erase(it);
  return true;
}

bool Ecosystem::replace_system(const std::string& name, SystemInfo replacement) {
  auto it = std::find_if(systems_.begin(), systems_.end(),
                         [&](const SystemInfo& s) { return s.name == name; });
  if (it == systems_.end()) return false;
  record(EvolutionMechanism::kReplace, name, "replaced by " + replacement.name);
  *it = std::move(replacement);
  return true;
}

void Ecosystem::bridge(const std::string& from, const std::string& to) {
  record(EvolutionMechanism::kBridge, from, "bridged to " + to);
  bridges_.emplace_back(from, to);
}

void Ecosystem::merge(Ecosystem&& other) {
  record(EvolutionMechanism::kCombine, other.name_,
         "merged ecosystem (" + std::to_string(other.total_systems()) +
             " systems)");
  for (SystemInfo& s : other.systems_) {
    systems_.push_back(std::move(s));
  }
  other.systems_.clear();
  for (auto& child : other.children_) {
    children_.push_back(std::move(child));
  }
  other.children_.clear();
  for (auto& b : other.bridges_) {
    bridges_.push_back(std::move(b));
  }
  other.bridges_.clear();
}

Ecosystem Ecosystem::split(const std::string& new_name,
                           const std::vector<std::string>& system_names) {
  Ecosystem carved(new_name);
  for (const std::string& name : system_names) {
    auto it = std::find_if(systems_.begin(), systems_.end(),
                           [&](const SystemInfo& s) { return s.name == name; });
    if (it == systems_.end()) continue;
    record(EvolutionMechanism::kRemove, name, "split into " + new_name);
    carved.add_system(std::move(*it));
    systems_.erase(it);
  }
  // Bridges entirely inside the carved set move with it; bridges crossing
  // the new boundary are severed (the break-up cost).
  auto in_carved = [&](const std::string& name) {
    return carved.find(name).has_value();
  };
  std::vector<std::pair<std::string, std::string>> kept;
  for (auto& b : bridges_) {
    if (in_carved(b.first) && in_carved(b.second)) {
      carved.bridge(b.first, b.second);
    } else if (!in_carved(b.first) && !in_carved(b.second)) {
      kept.push_back(std::move(b));
    }  // crossing bridges are dropped
  }
  bridges_ = std::move(kept);
  return carved;
}

std::size_t Ecosystem::total_systems() const {
  std::size_t n = systems_.size();
  for (const auto& c : children_) n += c->total_systems();
  return n;
}

std::size_t Ecosystem::depth() const {
  std::size_t d = 0;
  for (const auto& c : children_) d = std::max(d, c->depth());
  return d + 1;
}

void Ecosystem::collect_owners(std::map<std::string, int>& owners) const {
  for (const auto& s : systems_) ++owners[s.owner];
  for (const auto& c : children_) c->collect_owners(owners);
}

std::size_t Ecosystem::distinct_owners() const {
  std::map<std::string, int> owners;
  collect_owners(owners);
  return owners.size();
}

bool Ecosystem::is_ecosystem() const {
  const std::size_t total = total_systems();
  if (total < 2) return false;

  // Heterogeneity: more than one layer or more than one owner (recursive).
  std::map<std::string, int> owners;
  collect_owners(owners);
  std::map<Layer, int> layers;
  for (const auto& s : systems_) ++layers[s.layer];
  const bool heterogeneous = owners.size() > 1 || layers.size() > 1 ||
                             !children_.empty();
  if (!heterogeneous) return false;

  // Autonomy: all constituents at this level must be able to act
  // independently (the paper's definitional requirement).
  for (const auto& s : systems_) {
    if (!s.autonomous) return false;
  }

  // Legacy monolith test (§2.1 "when is a system not an ecosystem", (ii)):
  // a legacy majority disqualifies the group.
  std::size_t legacy = 0;
  for (const auto& s : systems_) {
    if (s.legacy) ++legacy;
  }
  if (!systems_.empty() && legacy * 2 > systems_.size()) return false;

  return true;
}

std::optional<SystemInfo> Ecosystem::find(const std::string& name) const {
  for (const auto& s : systems_) {
    if (s.name == name) return s;
  }
  return std::nullopt;
}

}  // namespace mcs::core
