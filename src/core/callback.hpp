// Signature-generic callable vocabulary for non-kernel subsystems.
//
// PR 1 gave the event kernel sim::Callback, a small-buffer-optimized
// move-only callable<void()>. The rest of the tree kept std::function,
// which reintroduces exactly the costs the kernel shed: a guaranteed heap
// allocation for capturing closures on libstdc++, copyability nobody uses,
// and an opaque type the hot-path lint (rule H1, tools/mcs_lint) cannot
// allow back into src/sim, src/graph, or src/parallel.
//
// Two types cover every callback shape in this repository:
//
//   UniqueFunction<R(Args...)> — owning, move-only, SBO. The drop-in for a
//     *stored* std::function (scheduler stages, FaaS completion callbacks,
//     task orderings). Closures up to kInlineSize bytes live inline.
//
//   FunctionRef<R(Args...)> — borrowed, trivially copyable, two words. The
//     drop-in for a `const std::function&` *parameter* that is only
//     invoked during the call (ThreadPool::run_tasks, candidate filters).
//     Never store one beyond the call that received it.
#pragma once

#include <cstddef>
#include <cstring>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mcs::core {

template <typename Signature>
class UniqueFunction;  // primary template; only R(Args...) is defined

template <typename R, typename... Args>
class UniqueFunction<R(Args...)> {
 public:
  static constexpr std::size_t kInlineSize = 48;

  UniqueFunction() noexcept = default;

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<D, UniqueFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  UniqueFunction(F&& fn) {  // NOLINT(google-explicit-constructor): drop-in for std::function
    construct<D>(std::forward<F>(fn));
  }

  UniqueFunction(UniqueFunction&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) relocate_from(other);
  }

  UniqueFunction& operator=(UniqueFunction&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) relocate_from(other);
    }
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  void reset() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// Whether the callable is stored inline (no heap allocation was made).
  [[nodiscard]] bool is_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  /// Shallow-const like std::function: invoking through a const reference
  /// is allowed and may still mutate the closure's captured state.
  R operator()(Args... args) const {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

 private:
  // As in sim::Callback: a null relocate means "memcpy the buffer" (valid
  // for trivially copyable closures and the heap case, whose buffer holds
  // one pointer); a null destroy means "nothing to do".
  struct Ops {
    R (*invoke)(void* storage, Args&&... args);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
    void (*destroy)(void* storage) noexcept;
    bool inline_storage;
  };

  template <typename D, typename F>
  void construct(F&& fn) {
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(fn));
      ops_ = &inline_ops<D>;
    } else {
      // mcs-lint: allow(H3) — small-buffer fallback: closures that fit
      // kInlineSize (all in-tree callbacks) never reach this branch.
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(fn));
      ops_ = &heap_ops<D>;
    }
  }

  void relocate_from(UniqueFunction& other) noexcept {
    if (ops_->relocate != nullptr) {
      ops_->relocate(storage_, other.storage_);
    } else {
      std::memcpy(storage_, other.storage_, kInlineSize);
    }
    other.ops_ = nullptr;
  }

  template <typename D>
  static constexpr Ops inline_ops = {
      [](void* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<D*>(s)))(
            std::forward<Args>(args)...);
      },
      std::is_trivially_copyable_v<D>
          ? nullptr
          : +[](void* dst, void* src) noexcept {
              D* from = std::launder(reinterpret_cast<D*>(src));
              ::new (dst) D(std::move(*from));
              from->~D();
            },
      std::is_trivially_destructible_v<D>
          ? nullptr
          : +[](void* s) noexcept {
              std::launder(reinterpret_cast<D*>(s))->~D();
            },
      true};

  template <typename D>
  static constexpr Ops heap_ops = {
      [](void* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<D**>(s)))(
            std::forward<Args>(args)...);
      },
      nullptr,  // the buffer holds one pointer; memcpy relocates it
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
      false};

  alignas(std::max_align_t) mutable unsigned char storage_[kInlineSize];
  const Ops* ops_ = nullptr;
};

template <typename Signature>
class FunctionRef;  // primary template; only R(Args...) is defined

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  FunctionRef() noexcept = default;

  template <typename F,
            typename D = std::remove_reference_t<F>,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, FunctionRef> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  FunctionRef(F&& fn) noexcept  // NOLINT(google-explicit-constructor): view type
      : target_(const_cast<void*>(
            static_cast<const void*>(std::addressof(fn)))),
        invoke_([](void* target, Args&&... args) -> R {
          return (*static_cast<D*>(target))(std::forward<Args>(args)...);
        }) {}

  [[nodiscard]] explicit operator bool() const noexcept {
    return invoke_ != nullptr;
  }

  R operator()(Args... args) const {
    return invoke_(target_, std::forward<Args>(args)...);
  }

 private:
  void* target_ = nullptr;
  R (*invoke_)(void* target, Args&&... args) = nullptr;
};

}  // namespace mcs::core
