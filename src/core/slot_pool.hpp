// Index-based slot arena with a free list — the storage discipline behind
// the scheduling engine's allocation-free steady state.
//
// A SlotPool<T> hands out dense uint32 slot indices instead of node
// pointers: acquire() pops the free list (or appends a slot), release()
// pushes the slot back and bumps its generation. Two properties are
// load-bearing for the hot paths that sit on top (sched::ExecutionEngine's
// job table and running-task table):
//
//  - RECYCLING, NOT DESTRUCTION. release() leaves the T constructed, so a
//    T that owns buffers (vectors, strings) keeps their capacity across
//    reuse. After warm-up, a steady submit -> run -> complete churn
//    acquires only recycled slots and performs zero heap allocation — the
//    pool is an arena, not an allocator.
//  - GENERATIONS. Each slot carries a generation counter bumped on
//    release, so an (index, gen) pair is a single-use handle: a stale
//    reference to a recycled slot is detectable with one array load (the
//    same scheme the event kernel uses for cancellation handles).
//
// Iteration (for_each / live(i) scans) visits slots in index order, which
// is a deterministic order — free-list recycling is LIFO and replays
// identically for identical input sequences, so simulations stay a pure
// function of their inputs (DESIGN.md §4).
#pragma once

#include <cstdint>
#include <vector>

namespace mcs::core {

template <typename T>
class SlotPool {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  /// Pops a recycled slot (its T keeps whatever buffers it last owned —
  /// callers must reset the fields they use) or appends a fresh one.
  /// Growth is geometric, so a warmed-up pool never reallocates.
  // mcs-lint: hot
  [[nodiscard]] std::uint32_t acquire() {
    if (free_head_ != kNone) {
      const std::uint32_t i = free_head_;
      free_head_ = slots_[i].next_free;
      slots_[i].live = true;
      ++live_;
      return i;
    }
    if (slots_.size() == slots_.capacity()) {
      slots_.reserve(slots_.empty() ? 16 : slots_.size() * 2);
    }
    slots_.push_back(Slot{});
    slots_.back().live = true;
    ++live_;
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }

  /// Returns the slot to the free list and invalidates outstanding
  /// (index, gen) handles. The T is NOT destroyed — its heap buffers stay
  /// for the next acquire().
  void release(std::uint32_t i) {
    Slot& s = slots_[i];
    s.live = false;
    ++s.gen;
    s.next_free = free_head_;
    free_head_ = i;
    --live_;
  }

  [[nodiscard]] T& operator[](std::uint32_t i) { return slots_[i].value; }
  [[nodiscard]] const T& operator[](std::uint32_t i) const {
    return slots_[i].value;
  }

  [[nodiscard]] bool live(std::uint32_t i) const { return slots_[i].live; }
  [[nodiscard]] std::uint32_t gen(std::uint32_t i) const {
    return slots_[i].gen;
  }

  /// Slots ever created (live + free); the index-order scan bound.
  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(slots_.size());
  }
  [[nodiscard]] std::size_t live_count() const { return live_; }
  [[nodiscard]] bool empty() const { return live_ == 0; }

  void reserve(std::size_t n) { slots_.reserve(n); }

  /// fn(index, T&) over live slots in index order (deterministic).
  template <typename Fn>
  void for_each(Fn&& fn) {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live) fn(i, slots_[i].value);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::uint32_t i = 0; i < slots_.size(); ++i) {
      if (slots_[i].live) fn(i, slots_[i].value);
    }
  }

 private:
  struct Slot {
    T value{};
    std::uint32_t gen = 1;  // bumped on release; pairs with index as handle
    std::uint32_t next_free = kNone;
    bool live = false;
  };

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNone;
  std::size_t live_ = 0;
};

}  // namespace mcs::core
