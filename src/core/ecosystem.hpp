// The paper's central object: computer ecosystems (§2.1).
//
// Definition (paper): "a heterogeneous group of computer systems and,
// recursively, of computer ecosystems, collectively constituents.
// Constituents are autonomous, even in competition with each other."
//
// This module gives that definition a machine-checkable form:
//  - Constituent: a system or (recursively) an ecosystem — super-distribution
//    (P5) is the recursion depth being unbounded.
//  - Ownership domains model federation and multi-tenancy.
//  - Evolution mechanisms (§3.2, after Arthur): combine, remove, replace,
//    bridge, add — implemented as mutations with recorded provenance, so an
//    ecosystem carries its own genealogy (used by src/evolve and Fig. 2).
//  - The is_ecosystem() predicate encodes the paper's "when is a system not
//    an ecosystem" tests (§2.1).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/nfr.hpp"

namespace mcs::core {

/// Layers of the big-data reference architecture (Fig. 1) plus the
/// datacenter layers (Fig. 3); constituents declare where they live.
enum class Layer {
  kUnspecified,
  // Fig. 1 (big data):
  kHighLevelLanguage,
  kProgrammingModel,
  kExecutionEngine,
  kStorageEngine,
  // Fig. 3 (datacenter):
  kFrontend,
  kBackend,
  kResources,
  kOperationsService,
  kInfrastructure,
  kDevOps,
};

[[nodiscard]] std::string to_string(Layer layer);

/// A constituent system: the leaf of the recursion.
struct SystemInfo {
  std::string name;
  Layer layer = Layer::kUnspecified;
  std::string owner;        ///< organization operating it (federation)
  bool autonomous = true;   ///< can act independently (paper: required)
  bool legacy = false;      ///< monolithic / tightly coupled (§2.1 (ii))
  Sla sla;                  ///< NFR guarantees this constituent offers
};

/// How a mutation changed the ecosystem (Arthur's mechanisms, §3.2).
enum class EvolutionMechanism {
  kAdd,      ///< new component for a new function/NFR
  kRemove,   ///< redundant or useless component removed
  kReplace,  ///< component swapped for a more advanced one
  kCombine,  ///< components combined into a larger assembly (sub-ecosystem)
  kBridge,   ///< adapter inserted between mismatched components
};

[[nodiscard]] std::string to_string(EvolutionMechanism m);

struct EvolutionRecord {
  EvolutionMechanism mechanism;
  std::string subject;      ///< component affected
  std::string detail;
  std::uint64_t step = 0;   ///< logical time of the mutation
};

/// A recursive ecosystem of systems and sub-ecosystems.
class Ecosystem {
 public:
  explicit Ecosystem(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Adds a leaf system. Returns its index among systems.
  std::size_t add_system(SystemInfo info);

  /// Adds (adopts) a sub-ecosystem; recursion is the paper's
  /// super-distribution (P5).
  Ecosystem& add_subecosystem(std::string name);

  /// Removes a system by name anywhere in this level (not recursive).
  /// Returns true if found.
  bool remove_system(const std::string& name);

  /// Replaces a system by name with a new one; records provenance.
  bool replace_system(const std::string& name, SystemInfo replacement);

  /// Declares an interoperation bridge between two constituents
  /// (meta-middleware in the paper's C2 discussion).
  void bridge(const std::string& from, const std::string& to);

  /// Super-flexibility (P5): "a framework for managing product mergers and
  /// break-ups ... on short-notice and quickly."
  /// merge() absorbs another ecosystem's systems, sub-ecosystems, and
  /// bridges into this one (the merger); the source is left empty.
  void merge(Ecosystem&& other);

  /// split() carves the named systems (and bridges entirely among them)
  /// out into a new ecosystem (the break-up, e.g. under anti-trust law —
  /// the paper's own example). Unknown names are ignored.
  [[nodiscard]] Ecosystem split(const std::string& new_name,
                                const std::vector<std::string>& system_names);

  // --- queries ------------------------------------------------------------

  [[nodiscard]] const std::vector<SystemInfo>& systems() const { return systems_; }
  [[nodiscard]] const std::vector<std::unique_ptr<Ecosystem>>& subecosystems() const {
    return children_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, std::string>>& bridges() const {
    return bridges_;
  }
  [[nodiscard]] const std::vector<EvolutionRecord>& history() const { return history_; }

  /// Total leaf systems, recursively.
  [[nodiscard]] std::size_t total_systems() const;

  /// Maximum nesting depth (a flat group of systems has depth 1).
  [[nodiscard]] std::size_t depth() const;

  /// Distinct owners across all constituents, recursively (federation
  /// breadth; an ecosystem per the paper typically has more than one).
  [[nodiscard]] std::size_t distinct_owners() const;

  /// The paper's §2.1 qualification test. A group qualifies as an ecosystem
  /// when it is heterogeneous (>1 layer or >1 owner), its constituents are
  /// autonomous, and it is not a legacy monolith (no constituent flagged
  /// legacy holding >50% of the systems).
  [[nodiscard]] bool is_ecosystem() const;

  /// Finds a system by name at this level.
  [[nodiscard]] std::optional<SystemInfo> find(const std::string& name) const;

 private:
  void collect_owners(std::map<std::string, int>& owners) const;
  void record(EvolutionMechanism m, std::string subject, std::string detail);

  std::string name_;
  std::vector<SystemInfo> systems_;
  std::vector<std::unique_ptr<Ecosystem>> children_;
  std::vector<std::pair<std::string, std::string>> bridges_;
  std::vector<EvolutionRecord> history_;
  std::uint64_t step_ = 0;
};

}  // namespace mcs::core
