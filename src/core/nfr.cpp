#include "core/nfr.hpp"

#include <algorithm>

namespace mcs::core {

std::string to_string(NfrDimension d) {
  switch (d) {
    case NfrDimension::kLatency: return "latency";
    case NfrDimension::kThroughput: return "throughput";
    case NfrDimension::kAvailability: return "availability";
    case NfrDimension::kReliability: return "reliability";
    case NfrDimension::kCost: return "cost";
    case NfrDimension::kElasticity: return "elasticity";
    case NfrDimension::kSecurity: return "security";
    case NfrDimension::kEnergy: return "energy";
  }
  return "unknown";
}

Slo deadline_slo(double seconds, double weight) {
  return Slo{NfrDimension::kLatency, seconds, /*is_ceiling=*/true, weight};
}

Slo availability_slo(double fraction, double weight) {
  return Slo{NfrDimension::kAvailability, fraction, /*is_ceiling=*/false, weight};
}

Slo cost_slo(double budget, double weight) {
  return Slo{NfrDimension::kCost, budget, /*is_ceiling=*/true, weight};
}

Slo throughput_slo(double per_second, double weight) {
  return Slo{NfrDimension::kThroughput, per_second, /*is_ceiling=*/false, weight};
}

bool Sla::revise(NfrDimension dim, double new_target) {
  for (Slo& s : objectives_) {
    if (s.dimension == dim) {
      s.target = new_target;
      return true;
    }
  }
  // Dimension not present: add with the conventional direction.
  const bool ceiling = dim == NfrDimension::kLatency ||
                       dim == NfrDimension::kCost ||
                       dim == NfrDimension::kEnergy ||
                       dim == NfrDimension::kElasticity;
  objectives_.push_back(Slo{dim, new_target, ceiling, 1.0});
  return false;
}

std::optional<Slo> Sla::objective(NfrDimension dim) const {
  for (const Slo& s : objectives_) {
    if (s.dimension == dim) return s;
  }
  return std::nullopt;
}

std::size_t Sla::violations(const std::vector<Observation>& obs) const {
  std::size_t count = 0;
  for (const Slo& s : objectives_) {
    auto it = std::find_if(obs.begin(), obs.end(), [&](const Observation& o) {
      return o.dimension == s.dimension;
    });
    if (it == obs.end() || !s.attained(it->value)) ++count;
  }
  return count;
}

double Sla::penalty(const std::vector<Observation>& obs,
                    double unit_penalty) const {
  double total = 0.0;
  for (const Slo& s : objectives_) {
    auto it = std::find_if(obs.begin(), obs.end(), [&](const Observation& o) {
      return o.dimension == s.dimension;
    });
    if (it == obs.end() || !s.attained(it->value)) {
      total += unit_penalty * s.weight;
    }
  }
  return total;
}

}  // namespace mcs::core
