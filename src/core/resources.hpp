// Fixed-K resource vectors: the capacity/demand currency of the stack (C4).
//
// Two types, mirroring the YT/YP scheduler split the ROADMAP points at:
//
//  - `ResourceCapacities` — declared machine/pod *shapes* as integral units
//    (`std::array<uint64_t, K>`), the type catalogs and fleet profiles
//    trade in. Exact arithmetic, YT-style free-function operators.
//  - `ResourceQuantities` — runtime *bookkeeping* as doubles, because live
//    demands are fractional (memory per core is a continuous knob, FaaS
//    functions hold fractions of a GiB). `infra::ResourceVector` is an
//    alias of this type; its double arithmetic is bit-identical to the old
//    scalar-struct implementation, which the pre-PR digest goldens pin.
//
// K = 4: cpu (cores), mem (GiB), gpu (accelerator count), net (Gbps).
// Legacy three-resource call sites simply leave net at zero.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace mcs::core {

inline constexpr std::size_t kResourceDims = 4;

enum class ResourceDim : std::uint8_t { kCpu = 0, kMem = 1, kGpu = 2, kNet = 3 };

[[nodiscard]] constexpr const char* to_string(ResourceDim d) {
  switch (d) {
    case ResourceDim::kCpu: return "cpu";
    case ResourceDim::kMem: return "mem";
    case ResourceDim::kGpu: return "gpu";
    case ResourceDim::kNet: return "net";
  }
  return "?";
}

/// Declared integral resource shape (whole cores / GiB / devices / Gbps).
using ResourceCapacities = std::array<std::uint64_t, kResourceDims>;

constexpr ResourceCapacities& operator+=(ResourceCapacities& a,
                                         const ResourceCapacities& b) {
  for (std::size_t d = 0; d < kResourceDims; ++d) a[d] += b[d];
  return a;
}
constexpr ResourceCapacities operator+(ResourceCapacities a,
                                       const ResourceCapacities& b) {
  return a += b;
}
/// Componentwise saturating subtraction (free capacity never goes negative).
constexpr ResourceCapacities& operator-=(ResourceCapacities& a,
                                         const ResourceCapacities& b) {
  for (std::size_t d = 0; d < kResourceDims; ++d) {
    a[d] = a[d] >= b[d] ? a[d] - b[d] : 0;
  }
  return a;
}
constexpr ResourceCapacities operator-(ResourceCapacities a,
                                       const ResourceCapacities& b) {
  return a -= b;
}

/// True when `a` covers `b` in every component (the fit predicate).
[[nodiscard]] constexpr bool dominates(const ResourceCapacities& a,
                                       const ResourceCapacities& b) {
  for (std::size_t d = 0; d < kResourceDims; ++d) {
    if (a[d] < b[d]) return false;
  }
  return true;
}

[[nodiscard]] constexpr ResourceCapacities max_of(const ResourceCapacities& a,
                                                  const ResourceCapacities& b) {
  ResourceCapacities out{};
  for (std::size_t d = 0; d < kResourceDims; ++d) {
    out[d] = a[d] > b[d] ? a[d] : b[d];
  }
  return out;
}

/// Runtime resource amounts. Array-backed so allocators and oracles can loop
/// over dimensions, with named accessors for readable call sites. The
/// comparison/arithmetic semantics (component order, early-out direction)
/// are exactly those of the old scalar struct — digest-pinned.
class ResourceQuantities {
 public:
  constexpr ResourceQuantities() = default;
  constexpr ResourceQuantities(double cpu, double mem = 0.0, double gpu = 0.0,
                               double net = 0.0)
      : v_{cpu, mem, gpu, net} {}

  [[nodiscard]] constexpr double& cpu() { return v_[0]; }
  [[nodiscard]] constexpr double cpu() const { return v_[0]; }
  [[nodiscard]] constexpr double& mem() { return v_[1]; }
  [[nodiscard]] constexpr double mem() const { return v_[1]; }
  [[nodiscard]] constexpr double& gpu() { return v_[2]; }
  [[nodiscard]] constexpr double gpu() const { return v_[2]; }
  [[nodiscard]] constexpr double& net() { return v_[3]; }
  [[nodiscard]] constexpr double net() const { return v_[3]; }

  [[nodiscard]] constexpr double& operator[](std::size_t d) { return v_[d]; }
  [[nodiscard]] constexpr double operator[](std::size_t d) const {
    return v_[d];
  }
  [[nodiscard]] constexpr double& operator[](ResourceDim d) {
    return v_[static_cast<std::size_t>(d)];
  }
  [[nodiscard]] constexpr double operator[](ResourceDim d) const {
    return v_[static_cast<std::size_t>(d)];
  }

  [[nodiscard]] constexpr bool fits_within(const ResourceQuantities& cap) const {
    for (std::size_t d = 0; d < kResourceDims; ++d) {
      if (v_[d] > cap.v_[d]) return false;
    }
    return true;
  }
  [[nodiscard]] constexpr bool nonnegative() const {
    for (std::size_t d = 0; d < kResourceDims; ++d) {
      if (v_[d] < 0.0) return false;
    }
    return true;
  }

  constexpr ResourceQuantities& operator+=(const ResourceQuantities& o) {
    for (std::size_t d = 0; d < kResourceDims; ++d) v_[d] += o.v_[d];
    return *this;
  }
  constexpr ResourceQuantities& operator-=(const ResourceQuantities& o) {
    for (std::size_t d = 0; d < kResourceDims; ++d) v_[d] -= o.v_[d];
    return *this;
  }
  friend constexpr ResourceQuantities operator+(ResourceQuantities a,
                                                const ResourceQuantities& b) {
    return a += b;
  }
  friend constexpr ResourceQuantities operator-(ResourceQuantities a,
                                                const ResourceQuantities& b) {
    return a -= b;
  }
  friend constexpr bool operator==(const ResourceQuantities& a,
                                   const ResourceQuantities& b) {
    for (std::size_t d = 0; d < kResourceDims; ++d) {
      if (a.v_[d] != b.v_[d]) return false;
    }
    return true;
  }

 private:
  std::array<double, kResourceDims> v_{};
};

/// Declared shape -> runtime amounts (whole units become exact doubles; every
/// integer up to 2^53 is representable, far beyond any fleet shape).
[[nodiscard]] constexpr ResourceQuantities to_quantities(
    const ResourceCapacities& c) {
  ResourceQuantities q;
  for (std::size_t d = 0; d < kResourceDims; ++d) {
    q[d] = static_cast<double>(c[d]);
  }
  return q;
}

/// Runtime amounts -> declared shape, rounding up (a shape that *covers* the
/// quantity); negative components clamp to zero.
[[nodiscard]] constexpr ResourceCapacities quantize_ceil(
    const ResourceQuantities& q) {
  ResourceCapacities c{};
  for (std::size_t d = 0; d < kResourceDims; ++d) {
    const double x = q[d];
    if (x <= 0.0) continue;
    auto whole = static_cast<std::uint64_t>(x);
    c[d] = static_cast<double>(whole) < x ? whole + 1 : whole;
  }
  return c;
}

}  // namespace mcs::core
