// Non-functional requirements as first-class objects (Principle P3,
// Challenge C3).
//
// The paper envisions spatially fine-grained NFRs (per unit of work) and
// temporally fine-grained NFRs (targets that change at runtime). An Slo here
// is a single target on one dimension; an Sla is a set of Slos with penalty
// accounting; both can be attached to whole jobs or to individual tasks, and
// targets may be revised mid-run.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace mcs::core {

/// The non-functional dimensions the paper names in P3/C3.
enum class NfrDimension {
  kLatency,       ///< response time / deadline, seconds
  kThroughput,    ///< work units per second, floor
  kAvailability,  ///< fraction of time up, floor in [0,1]
  kReliability,   ///< success probability, floor in [0,1]
  kCost,          ///< monetary budget, ceiling
  kElasticity,    ///< supply/demand tracking error, ceiling
  kSecurity,      ///< required isolation level, floor (ordinal)
  kEnergy,        ///< joules budget, ceiling
};

[[nodiscard]] std::string to_string(NfrDimension d);

/// A single service-level objective: a threshold on one dimension.
/// `is_ceiling` says whether attainment means staying <= target (latency,
/// cost, energy) or >= target (throughput, availability, ...).
struct Slo {
  NfrDimension dimension = NfrDimension::kLatency;
  double target = 0.0;
  bool is_ceiling = true;
  /// Relative importance used when objectives must be traded off
  /// (the paper: "relative importance ... is dynamic").
  double weight = 1.0;

  /// True when `observed` satisfies this objective.
  [[nodiscard]] bool attained(double observed) const {
    return is_ceiling ? observed <= target : observed >= target;
  }
};

/// Conventional constructors for the common objectives.
Slo deadline_slo(double seconds, double weight = 1.0);
Slo availability_slo(double fraction, double weight = 1.0);
Slo cost_slo(double budget, double weight = 1.0);
Slo throughput_slo(double per_second, double weight = 1.0);

/// A service-level agreement: objectives plus the penalty owed per violated
/// objective. Temporal fine-graining: revise() swaps targets at runtime.
class Sla {
 public:
  Sla() = default;
  explicit Sla(std::vector<Slo> objectives) : objectives_(std::move(objectives)) {}

  // mcs-lint: allow(H3) — setup-time API; shares the name `add` with
  // hot-path metric recording, which over-approximate call resolution links.
  void add(Slo slo) { objectives_.push_back(slo); }

  /// Replaces the target for a dimension (adds the objective if missing).
  /// Returns true if an existing objective was revised.
  bool revise(NfrDimension dim, double new_target);

  [[nodiscard]] const std::vector<Slo>& objectives() const { return objectives_; }

  /// Looks up the objective on a dimension, if any.
  [[nodiscard]] std::optional<Slo> objective(NfrDimension dim) const;

  /// Evaluates observations (one per objective, by dimension); returns the
  /// number of violated objectives. Missing observations count as violations.
  struct Observation {
    NfrDimension dimension;
    double value;
  };
  [[nodiscard]] std::size_t violations(const std::vector<Observation>& obs) const;

  /// Penalty units owed for a violated objective (weight-scaled).
  [[nodiscard]] double penalty(const std::vector<Observation>& obs,
                               double unit_penalty) const;

 private:
  std::vector<Slo> objectives_;
};

}  // namespace mcs::core
