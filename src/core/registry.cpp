#include "core/registry.hpp"

#include <algorithm>

namespace mcs::core {

std::string to_string(PrincipleType t) {
  switch (t) {
    case PrincipleType::kSystems: return "Systems";
    case PrincipleType::kPeopleware: return "Peopleware";
    case PrincipleType::kMethodology: return "Methodology";
  }
  return "?";
}

std::string to_string(ChallengeType t) {
  switch (t) {
    case ChallengeType::kSystems: return "Systems";
    case ChallengeType::kPeopleware: return "Peopleware";
    case ChallengeType::kMethodology: return "Methodology";
  }
  return "?";
}

const std::vector<Principle>& principles() {
  static const std::vector<Principle> kPrinciples = {
      {1, PrincipleType::kSystems, "The Age of Ecosystems",
       "This is the Age of Computer Ecosystems."},
      {2, PrincipleType::kSystems, "software-defined everything",
       "Software-defined everything, but humans can still shape and control "
       "the loop."},
      {3, PrincipleType::kSystems, "non-functional requirements",
       "Non-functional properties are first-class concerns, composable and "
       "portable, whose relative importance and target values are dynamic."},
      {4, PrincipleType::kSystems, "RM&S, Self-Awareness",
       "Resource Management and Scheduling, and their combination with other "
       "capabilities to achieve local and global Self-Awareness, are key to "
       "ensure non-functional properties at runtime."},
      {5, PrincipleType::kSystems, "super-distributed",
       "Ecosystems are super-distributed."},
      {6, PrincipleType::kPeopleware, "fundamental rights",
       "People have a fundamental right to learn and to use ICT, and to "
       "understand their own use."},
      {7, PrincipleType::kPeopleware, "professional privilege",
       "Experimenting, creating, and operating ecosystems are professional "
       "privileges, granted through provable professional competence and "
       "integrity."},
      {8, PrincipleType::kMethodology, "science, practice, and culture of MCS",
       "We understand and create together a science, practice, and culture "
       "of computer ecosystems."},
      {9, PrincipleType::kMethodology, "evolution and emergence",
       "We are aware of the evolution and emergent behavior of computer "
       "ecosystems, and control and nurture them."},
      {10, PrincipleType::kMethodology, "ethics and transparency",
       "We consider and help develop the ethics of computer ecosystems, and "
       "inform and educate all stakeholders about them."},
  };
  return kPrinciples;
}

const std::vector<Challenge>& challenges() {
  // The principle_refs column transcribes Table 3 of the paper exactly.
  static const std::vector<Challenge> kChallenges = {
      {1, ChallengeType::kSystems, "Ecosystems, overall", {1},
       "core (Ecosystem), all benches"},
      {2, ChallengeType::kSystems, "Software-defined everything", {2},
       "infra (DatacenterStack), bench/fig3_datacenter"},
      {3, ChallengeType::kSystems, "Non-functional requirements", {3, 5},
       "core (Sla/Slo), bench/exp_elasticity"},
      {4, ChallengeType::kSystems, "Extreme heterogeneity", {4},
       "infra (InstanceCatalog), bench/exp_scheduling"},
      {5, ChallengeType::kSystems, "Socially aware", {4},
       "p2p (2fast), gaming (social), bench/exp_p2p_2fast"},
      {6, ChallengeType::kSystems, "Adaptation, self-awareness", {4},
       "autoscale, bench/exp_autoscalers"},
      {7, ChallengeType::kSystems, "Scheduling, the dual problem", {4, 5},
       "sched (provisioning+allocation), bench/exp_scheduling"},
      {8, ChallengeType::kSystems, "Sophisticated services", {4},
       "faas, bench/fig5_faas"},
      {9, ChallengeType::kSystems, "The Ecosystem Navigation challenge",
       {2, 3, 4, 5}, "sched (Navigator, portfolio), bench/exp_navigation"},
      {10, ChallengeType::kSystems,
       "Interoperability, federation, delegation", {4, 5},
       "infra (Federation), examples/escience_workflows"},
      {11, ChallengeType::kPeopleware, "Community engagement", {6},
       "examples/quickstart (OpenDC-style entry point)"},
      {12, ChallengeType::kPeopleware, "Curriculum, BOKMCS", {6},
       ""},
      {13, ChallengeType::kPeopleware, "Explaining to all stakeholders",
       {4, 6}, "metrics (report), every bench prints operational tables"},
      {14, ChallengeType::kPeopleware, "The Design of Design challenge",
       {6, 7}, ""},
      {15, ChallengeType::kMethodology,
       "Simulation and Real-world experimentation", {7, 8},
       "sim (kernel), the whole platform"},
      {16, ChallengeType::kMethodology, "Reproducibility and benchmarking",
       {7, 8}, "graph+bigdata (Graphalytics), bench/exp_graphalytics"},
      {17, ChallengeType::kMethodology, "Testing, validation, verification",
       {8}, "tests/ (unit+integration+property suites)"},
      {18, ChallengeType::kMethodology, "A Science of MCS", {8, 9},
       "core (registries), bench/table* invariants"},
      {19, ChallengeType::kMethodology, "The New World challenge", {8, 9},
       "workload (trace models), bench/exp_variability"},
      {20, ChallengeType::kMethodology, "The ethics of MCS", {10},
       ""},
  };
  return kChallenges;
}

const std::vector<OverviewRow>& overview() {
  static const std::vector<OverviewRow> kOverview = {
      {"Who?", "Stakeholders",
       "scientists, engineers, designers, industry clients, governance, "
       "individuals at-large"},
      {"What?", "Central Paradigm",
       "properties derived from ecosystem structure, organization, and "
       "dynamics"},
      {"What?", "Focus", "functional and non-functional properties"},
      {"What?", "Concerns", "emergence, evolution"},
      {"How?", "Design", "design methods and processes"},
      {"How?", "Quantitative", "measurement, observation"},
      {"How?", "Exper. & Sim.", "methodology, TRL, benchmarking"},
      {"How?", "Empirical", "correlation, causality iff. possible"},
      {"How?", "Instrumentation", "experiment infrastructure"},
      {"How?", "Formal models", "validated, calibrated, robust"},
      {"Related", "Computer science",
       "Distrib.Sys., Sw.Eng., Perf.Eng."},
      {"Related", "Systems/complexity", "General Systems Theory, etc."},
      {"Related", "Problem solving", "computer-centric, human-centric"},
  };
  return kOverview;
}

const std::vector<FieldComparison>& field_comparisons() {
  static const std::vector<FieldComparison> kFields = {
      {"Modern Ecology", "1990s", "Biodiversity loss", "Ecology and Evolution",
       "DS", "Biosphere", "ADHS", "AC"},
      {"Modern Chem. Process", "1990s", "Process complexity",
       "Chemical Engineering", "DE", "Chemical proc.", "ADHSP", "ACEM"},
      {"Systems Biology", "2000s", "Systems complexity", "Molecular biology",
       "S", "Biological sys.", "AHS", "ACEMTU"},
      {"Modern Mech. Design", "2000s", "Process sustainability",
       "Technical Design", "DE", "Mechanical sys.", "DHSP", "ACEM"},
      {"Modern Optoelectronics", "2010s", "Artificial media",
       "Microwave technology", "S", "Metamaterials", "DHSP", "ACEMTU"},
      {"MCS", "this work", "Systems complexity", "Distributed Systems",
       "DES", "Ecosystems", "ADHSP", "ACES"},
  };
  return kFields;
}

bool field_comparison_codes_valid(const FieldComparison& f) {
  auto all_in = [](const std::string& s, const std::string& legal) {
    return std::all_of(s.begin(), s.end(), [&](char c) {
      return legal.find(c) != std::string::npos;
    });
  };
  // Legends from Ropohl as printed under Table 5.
  return all_in(f.objectives, "DES") && all_in(f.methodology, "ADHISP") &&
         all_in(f.character, "ACEHMSTU");
}

const std::vector<UseCase>& use_cases() {
  static const std::vector<UseCase> kUseCases = {
      {"6.1", true, "Datacenter management", "RM&S, XaaS, ref.archi.",
       "examples/quickstart"},
      {"6.5", true, "Emerging application structures", "serverless MCS",
       "examples/serverless_pipeline"},
      {"6.6", true, "Generalized graph processing", "full MCS challenges",
       "bench/exp_graphalytics"},
      {"6.2", false, "Future science", "e-, democratized science",
       "examples/escience_workflows"},
      {"6.3", false, "Online gaming", "multi-functional MCS",
       "examples/gaming_world"},
      {"6.4", false, "Future banking", "regulated MCS",
       "examples/banking_sla"},
  };
  return kUseCases;
}

RegistryValidation validate_registries() {
  RegistryValidation v;
  auto fail = [&](std::string msg) {
    v.ok = false;
    v.errors.push_back(std::move(msg));
  };

  // Principles: exactly 10, indices 1..10 in order.
  const auto& ps = principles();
  if (ps.size() != 10) fail("expected 10 principles");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    if (ps[i].index != static_cast<int>(i) + 1) fail("principle index gap");
  }

  // Challenges: exactly 20, indices 1..20, every principle ref in range.
  const auto& cs = challenges();
  if (cs.size() != 20) fail("expected 20 challenges");
  std::vector<bool> covered(ps.size() + 1, false);
  for (std::size_t i = 0; i < cs.size(); ++i) {
    const Challenge& c = cs[i];
    if (c.index != static_cast<int>(i) + 1) fail("challenge index gap");
    if (c.principle_refs.empty()) {
      fail("challenge C" + std::to_string(c.index) + " maps to no principle");
    }
    for (int p : c.principle_refs) {
      if (p < 1 || p > static_cast<int>(ps.size())) {
        fail("challenge C" + std::to_string(c.index) +
             " references unknown principle P" + std::to_string(p));
      } else {
        covered[static_cast<std::size_t>(p)] = true;
      }
    }
  }
  for (std::size_t p = 1; p < covered.size(); ++p) {
    if (!covered[p]) {
      fail("principle P" + std::to_string(p) + " exercised by no challenge");
    }
  }

  // Table 5: codes legal, MCS row present.
  bool mcs_row = false;
  for (const auto& f : field_comparisons()) {
    if (!field_comparison_codes_valid(f)) {
      fail("field '" + f.field + "' has illegal Ropohl codes");
    }
    if (f.field == "MCS") mcs_row = true;
  }
  if (!mcs_row) fail("Table 5 is missing the MCS row");

  // Table 4: six use cases, three endogenous + three exogenous.
  const auto& ucs = use_cases();
  if (ucs.size() != 6) fail("expected 6 use-cases");
  const auto endo = std::count_if(ucs.begin(), ucs.end(),
                                  [](const UseCase& u) { return u.endogenous; });
  if (endo != 3) fail("expected 3 endogenous use-cases");

  return v;
}

}  // namespace mcs::core
