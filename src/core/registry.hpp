// Machine-readable registries of the paper's conceptual tables.
//
// Tables 1, 2, 3, and 5 of the paper are taxonomies, not measurements. To
// make them reproducible artifacts rather than prose, this module carries
// them as typed data with cross-reference invariants that the test suite and
// the table benches enforce:
//   - every challenge (Table 3) maps to at least one principle (Table 2),
//     exactly as printed in the paper;
//   - every principle is exercised by at least one challenge;
//   - every challenge names the subsystem of this repository that
//     demonstrates it, so the paper's agenda is traceable to code.
#pragma once

#include <string>
#include <vector>

namespace mcs::core {

// ---- Table 2: the ten principles ------------------------------------------

enum class PrincipleType { kSystems, kPeopleware, kMethodology };

struct Principle {
  int index;                 ///< 1..10
  PrincipleType type;
  std::string key_aspects;   ///< verbatim "key aspects" column
  std::string statement;     ///< the P-statement from §4
};

[[nodiscard]] const std::vector<Principle>& principles();
[[nodiscard]] std::string to_string(PrincipleType t);

// ---- Table 3: the twenty challenges ----------------------------------------

enum class ChallengeType { kSystems, kPeopleware, kMethodology };

struct Challenge {
  int index;                         ///< 1..20
  ChallengeType type;
  std::string key_aspects;           ///< verbatim "key aspects" column
  std::vector<int> principle_refs;   ///< "Princip." column, e.g. C3 -> {3,5}
  std::string demonstrated_by;       ///< module/bench in this repo, "" if
                                     ///< the challenge is non-computational
};

[[nodiscard]] const std::vector<Challenge>& challenges();
[[nodiscard]] std::string to_string(ChallengeType t);

// ---- Table 1: overview of MCS ----------------------------------------------

struct OverviewRow {
  std::string question;  ///< Who? / What? / How? / Related
  std::string aspect;
  std::string content;
};

[[nodiscard]] const std::vector<OverviewRow>& overview();

// ---- Table 5: comparison with emerging fields ------------------------------

struct FieldComparison {
  std::string field;
  std::string decade;
  std::string crisis;
  std::string continues;
  std::string objectives;   ///< subset of "DES"
  std::string object;
  std::string methodology;  ///< subset of "ADHISP"
  std::string character;    ///< subset of "ACEHMSTU"
};

[[nodiscard]] const std::vector<FieldComparison>& field_comparisons();

/// Validates the acronym columns of Table 5 against Ropohl's legend.
[[nodiscard]] bool field_comparison_codes_valid(const FieldComparison& f);

// ---- Table 4: the six use-cases --------------------------------------------

struct UseCase {
  std::string section;       ///< e.g. "6.1"
  bool endogenous;           ///< endogenous vs exogenous application
  std::string description;
  std::string key_aspects;
  std::string example_binary;  ///< examples/ program exercising it
};

[[nodiscard]] const std::vector<UseCase>& use_cases();

// ---- invariants -------------------------------------------------------------

struct RegistryValidation {
  bool ok = true;
  std::vector<std::string> errors;
};

/// Runs all cross-reference checks across the four registries.
[[nodiscard]] RegistryValidation validate_registries();

}  // namespace mcs::core
