#!/usr/bin/env bash
# Golden-digest differential: the scalar (K=1-equivalent) configurations
# must reproduce their pre-vector-refactor digests bit-identically, at
# MCS_THREADS=1 and 8. This is the standing proof that the fixed-K resource
# vector migration (core/resources.hpp) and the scoring/placement pass
# (sched/scoring.hpp) changed *nothing* about legacy scheduling decisions:
# every float op sequence, every tie-break, every merge order is pinned.
#
# The golden values live in tests/goldens/scalar_digests.txt (key=value).
# If a change legitimately alters scheduling behavior, the goldens must be
# re-pinned in the same commit with an explanation — this script failing on
# an "innocent refactor" is the entire point.
#
# Usage: scripts/check_goldens.sh /path/to/exp_scheduling /path/to/mcs_check \
#            tests/goldens/scalar_digests.txt
set -euo pipefail

exp_sched="${1:-}"
mcs_check="${2:-}"
goldens="${3:-}"
if [[ ! -x "${exp_sched}" || ! -x "${mcs_check}" || ! -f "${goldens}" ]]; then
  echo "usage: $0 /path/to/exp_scheduling /path/to/mcs_check goldens.txt" >&2
  exit 2
fi

want_sched="$(sed -n 's/^exp_scheduling_reps8=//p' "${goldens}")"
want_check="$(sed -n 's/^mcs_check_seeds100=//p' "${goldens}")"
if [[ -z "${want_sched}" || -z "${want_check}" ]]; then
  echo "FAIL: ${goldens} is missing golden keys" >&2
  exit 2
fi

fail=0
for threads in 1 8; do
  got="$(MCS_THREADS=${threads} "${exp_sched}" --reps 8 --digest)"
  echo "exp_scheduling --reps 8 MCS_THREADS=${threads}: ${got} (want ${want_sched})"
  if [[ "${got}" != "${want_sched}" ]]; then fail=1; fi

  got="$(MCS_THREADS=${threads} "${mcs_check}" --seeds 100 --digest)"
  echo "mcs_check --seeds 100 MCS_THREADS=${threads}: ${got} (want summary ${want_check})"
  if [[ "${got}" != "summary ${want_check}" ]]; then fail=1; fi
done

if [[ "${fail}" -ne 0 ]]; then
  echo "FAIL: scalar digests drifted from the pre-refactor goldens" >&2
  exit 1
fi
echo "OK: scalar configurations are bit-identical to the pre-vector goldens"
