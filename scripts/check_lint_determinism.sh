#!/usr/bin/env bash
# The linter must obey the determinism rules it enforces: `--jobs 1` and
# `--jobs 8` index files on different thread counts, but the merge is
# path-ordered, so the full report (stdout, exit code, SARIF) must be
# byte-identical. Runs over the same tree the `lint.tree` ctest gates
# (src bench tests tools) from the repository root.
#
# Usage: scripts/check_lint_determinism.sh /path/to/mcs_lint [paths...]
set -uo pipefail

exe="${1:-}"
if [[ -z "${exe}" || ! -x "${exe}" ]]; then
  echo "usage: $0 /path/to/mcs_lint [paths...]" >&2
  exit 2
fi
shift
paths=("$@")
if [[ ${#paths[@]} -eq 0 ]]; then
  paths=(src bench tests tools)
fi

tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

"${exe}" --jobs 1 --sarif "${tmpdir}/j1.sarif" "${paths[@]}" \
  > "${tmpdir}/j1.out"
rc1=$?
"${exe}" --jobs 8 --sarif "${tmpdir}/j8.sarif" "${paths[@]}" \
  > "${tmpdir}/j8.out"
rc8=$?

if [[ ${rc1} -ne ${rc8} ]]; then
  echo "FAIL: exit codes diverge (--jobs 1 -> ${rc1}, --jobs 8 -> ${rc8})" >&2
  exit 1
fi
if ! diff -u "${tmpdir}/j1.out" "${tmpdir}/j8.out"; then
  echo "FAIL: report text diverges between --jobs 1 and --jobs 8" >&2
  exit 1
fi
if ! diff -u "${tmpdir}/j1.sarif" "${tmpdir}/j8.sarif"; then
  echo "FAIL: SARIF diverges between --jobs 1 and --jobs 8" >&2
  exit 1
fi

echo "OK: byte-identical lint output at --jobs 1 and --jobs 8 (exit ${rc1})"
