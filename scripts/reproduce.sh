#!/usr/bin/env bash
# Reproduces everything: build, full test suite, every table/figure/
# experiment bench (P8: reproducibility as essential service).
# Outputs land in test_output.txt and bench_output.txt at the repo root.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build 2>&1 | tee test_output.txt
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  "$b"
done 2>&1 | tee bench_output.txt
echo "done: see test_output.txt and bench_output.txt"
