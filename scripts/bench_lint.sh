#!/usr/bin/env bash
# Times a full mcs_lint run over the tree (src bench tests tools) at
# --jobs 1 and --jobs 8 and records the results under a label in
# BENCH_micro.json, alongside the E10 microbenchmarks. Existing labels are
# preserved — the file accumulates snapshots for comparison:
#
#   scripts/bench_lint.sh pr7_lint
#
# Env: BUILD_DIR (default: build), MCS_LINT_REPS (default: 5).
set -euo pipefail

label="${1:-pr7_lint}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
reps="${MCS_LINT_REPS:-5}"
out_json="${repo_root}/BENCH_micro.json"
exe="${build_dir}/tools/mcs_lint"

if [[ ! -x "${exe}" ]]; then
  echo "error: ${exe} not found — build first (cmake --build ${build_dir} --target mcs_lint)" >&2
  exit 1
fi

cd "${repo_root}"
python3 - "${out_json}" "${label}" "${exe}" "${reps}" <<'PY'
import json
import subprocess
import sys
import time

out_path, label, exe, reps = (
    sys.argv[1], sys.argv[2], sys.argv[3], int(sys.argv[4]))
paths = ["src", "bench", "tests", "tools"]

merged = {}
for jobs in (1, 8):
    best = None
    for _ in range(reps):
        t0 = time.perf_counter()
        proc = subprocess.run(
            [exe, "--jobs", str(jobs), *paths], capture_output=True)
        elapsed = time.perf_counter() - t0
        # Exit 1 (findings) is a legal outcome for a timing run; anything
        # else means the tool itself broke.
        if proc.returncode not in (0, 1):
            sys.stderr.write(proc.stderr.decode())
            sys.exit(proc.returncode)
        best = elapsed if best is None else min(best, elapsed)
    merged[f"LintTree/jobs:{jobs}"] = {
        "real_time_ns": best * 1e9,
        "cpu_time_ns": best * 1e9,
        "iterations": reps,
    }
    print(f"LintTree/jobs:{jobs}  best of {reps}: {best * 1e3:.1f} ms")

try:
    with open(out_path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}
doc.setdefault(label, {}).update(merged)
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {len(merged)} entries under '{label}' to {out_path}")
PY
