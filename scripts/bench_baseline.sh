#!/usr/bin/env bash
# Runs the E10 microbenchmarks (micro_sim, micro_graph) and records their
# results under a label in BENCH_micro.json at the repository root.
# Existing labels are preserved, so the file accumulates a baseline and
# any number of "after" snapshots for comparison:
#
#   scripts/bench_baseline.sh baseline     # before a change
#   scripts/bench_baseline.sh current      # after it
#
# Env: BUILD_DIR (default: build), MCS_BENCH_MIN_TIME (default: 0.2),
#      MCS_BENCH_FILTER (optional --benchmark_filter regex; use it to skip
#      configurations that are infeasible on one side of a comparison, e.g.
#      the full BM_EngineThroughput_1M on pre-wheel builds).
set -euo pipefail

label="${1:-current}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${BUILD_DIR:-${repo_root}/build}"
min_time="${MCS_BENCH_MIN_TIME:-0.2}"
bench_filter="${MCS_BENCH_FILTER:-}"
out_json="${repo_root}/BENCH_micro.json"

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

for bin in micro_sim micro_graph; do
  exe="${build_dir}/bench/${bin}"
  if [[ ! -x "${exe}" ]]; then
    echo "error: ${exe} not found — build first (cmake --build ${build_dir})" >&2
    exit 1
  fi
  echo "== ${bin} =="
  filter_args=()
  if [[ -n "${bench_filter}" ]]; then
    filter_args=(--benchmark_filter="${bench_filter}")
  fi
  "${exe}" --benchmark_format=json \
           --benchmark_min_time="${min_time}" \
           "${filter_args[@]}" \
           > "${tmp_dir}/${bin}.json"
done

python3 - "${out_json}" "${label}" "${tmp_dir}/micro_sim.json" \
    "${tmp_dir}/micro_graph.json" <<'PY'
import json
import sys

out_path, label = sys.argv[1], sys.argv[2]
try:
    with open(out_path) as f:
        doc = json.load(f)
except (FileNotFoundError, json.JSONDecodeError):
    doc = {}

merged = {}
for path in sys.argv[3:]:
    with open(path) as f:
        run = json.load(f)
    for bench in run.get("benchmarks", []):
        merged[bench["name"]] = {
            "real_time_ns": bench["real_time"],
            "cpu_time_ns": bench["cpu_time"],
            "iterations": bench["iterations"],
        }
        if "items_per_second" in bench:
            merged[bench["name"]]["items_per_second"] = (
                bench["items_per_second"])

doc[label] = merged
with open(out_path, "w") as f:
    json.dump(doc, f, indent=2, sort_keys=True)
    f.write("\n")
print(f"wrote {len(merged)} benchmark entries under '{label}' to {out_path}")
PY
