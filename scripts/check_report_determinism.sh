#!/usr/bin/env bash
# Report-digest determinism check (the obs.report-determinism gate).
#
# Runs a sweep binary with `--reps 8 --slo <spec> --report <tmp>` twice at
# MCS_THREADS=1 and twice at MCS_THREADS=8 and requires all four written
# mcs-report-v1 JSON documents to be byte-identical. The report folds the
# merged instrument registry (lifecycle-span histograms, SLO counters),
# the SLO attainment rows, the exemplar cost table, and the trace digest —
# so this is the standing check that the whole telemetry pipeline, from
# engine span stamping through SloTracker windows to %.17g JSON rendering,
# is a pure function of the scenario seeds, independent of thread count.
#
# Usage: scripts/check_report_determinism.sh /path/to/exp_scheduling \
#            [SLO_SPEC] [REPS]
set -euo pipefail

if [[ $# -lt 1 || ! -x "$1" ]]; then
  echo "usage: $0 /path/to/sweep_exp [SLO_SPEC] [REPS]" >&2
  exit 2
fi

exe="$1"
slo="${2:-bot:120:0.9;workflow:900:0.9}"
reps="${3:-8}"
name="$(basename "${exe}")"
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

first=""
for run in 1:a 1:b 8:a 8:b; do
  threads="${run%%:*}"
  tag="${run##*:}"
  report="${tmpdir}/${name}.t${threads}${tag}.json"
  MCS_THREADS=${threads} "${exe}" --reps "${reps}" --slo "${slo}" \
      --report "${report}" > /dev/null
  if [[ ! -s "${report}" ]]; then
    echo "FAIL: ${name} MCS_THREADS=${threads} (${tag}) wrote no report" >&2
    exit 1
  fi
  echo "${name} MCS_THREADS=${threads} (${tag}): $(wc -c < "${report}") bytes"
  if [[ -z "${first}" ]]; then
    first="${report}"
  elif ! cmp -s "${first}" "${report}"; then
    echo "FAIL: ${name} report JSON differs across repeats/thread counts" >&2
    diff "${first}" "${report}" | head -20 >&2 || true
    exit 1
  fi
done

echo "OK: mcs-report-v1 JSON byte-identical across repeats and thread counts"
