#!/usr/bin/env bash
# Trace-digest determinism check (the obs.determinism gate; DESIGN.md §11).
#
# Runs each given sweep binary with `--reps 2 --trace <tmp>` twice at
# MCS_THREADS=1 and twice at MCS_THREADS=8 and requires all four printed
# `trace digest <16-hex>` lines to agree, plus byte-identical exemplar
# Chrome trace files. The trace digest folds every cell's event ring
# (timestamps, seqs, payloads, name tables) and the merged instrument
# registry is derived from the same cells — so this is the standing check
# that the observability layer itself is a pure function of the scenario
# seeds, independent of thread count and wall clock.
#
# Usage: scripts/check_trace_determinism.sh /path/to/exp_scheduling \
#            [/path/to/other_sweep ...] [-- --reps N]
set -euo pipefail

if [[ $# -lt 1 ]]; then
  echo "usage: $0 /path/to/sweep_exp [...]" >&2
  exit 2
fi

reps=2
tmpdir="$(mktemp -d)"
trap 'rm -rf "${tmpdir}"' EXIT

for exe in "$@"; do
  if [[ ! -x "${exe}" ]]; then
    echo "usage: $0 /path/to/sweep_exp [...]" >&2
    exit 2
  fi
  name="$(basename "${exe}")"
  declare -a digests=()
  first_trace=""
  for run in 1:a 1:b 8:a 8:b; do
    threads="${run%%:*}"
    tag="${run##*:}"
    trace="${tmpdir}/${name}.t${threads}${tag}.json"
    out="$(MCS_THREADS=${threads} "${exe}" --reps "${reps}" --trace "${trace}")"
    d="$(printf '%s\n' "${out}" | sed -n 's/^trace digest //p')"
    if [[ -z "${d}" ]]; then
      echo "FAIL: ${name} printed no 'trace digest' line" >&2
      exit 1
    fi
    echo "${name} MCS_THREADS=${threads} (${tag}): ${d}"
    digests+=("${d}")
    if [[ -z "${first_trace}" ]]; then
      first_trace="${trace}"
    elif ! cmp -s "${first_trace}" "${trace}"; then
      echo "FAIL: ${name} exemplar trace files differ byte-wise" >&2
      exit 1
    fi
  done
  for d in "${digests[@]:1}"; do
    if [[ "${d}" != "${digests[0]}" ]]; then
      echo "FAIL: ${name} trace digests diverge across repeats/thread counts" >&2
      exit 1
    fi
  done
  unset digests
done

echo "OK: trace digests and exemplar traces bit-identical across repeats and thread counts"
