#!/usr/bin/env bash
# Double-run determinism check: runs `exp_graphalytics --digest` twice at
# MCS_THREADS=1 and twice at MCS_THREADS=8 and requires all four FNV-1a
# digests to be identical. The digest covers every kernel result (BFS, PR,
# WCC, CDLP, LCC, SSSP over rmat/er/ba) plus the Pregel engine's values and
# message statistics, so this is the standing check behind the repo's
# bit-identical-at-any-thread-count promise (DESIGN.md, "Determinism &
# hot-path rules").
#
# An optional second binary is checked as a *sweep* digest: it is run with
# `--reps 8 --digest` once at MCS_THREADS=1 and once at MCS_THREADS=8,
# covering the exp::run_sweep merge path (one Simulator per replication,
# merged in flat grid order — DESIGN.md, "Experiment sweeps").
#
# Usage: scripts/check_determinism.sh /path/to/exp_graphalytics \
#            [/path/to/exp_scheduling]
set -euo pipefail

exe="${1:-}"
if [[ -z "${exe}" || ! -x "${exe}" ]]; then
  echo "usage: $0 /path/to/exp_graphalytics [/path/to/sweep_exp]" >&2
  exit 2
fi
sweep_exe="${2:-}"
if [[ -n "${sweep_exe}" && ! -x "${sweep_exe}" ]]; then
  echo "usage: $0 /path/to/exp_graphalytics [/path/to/sweep_exp]" >&2
  exit 2
fi

declare -a digests=()
for threads in 1 1 8 8; do
  d="$(MCS_THREADS=${threads} "${exe}" --digest)"
  echo "MCS_THREADS=${threads}: ${d}"
  digests+=("${d}")
done

for d in "${digests[@]:1}"; do
  if [[ "${d}" != "${digests[0]}" ]]; then
    echo "FAIL: digests diverge — results depend on thread count or run order" >&2
    exit 1
  fi
done

if [[ -n "${sweep_exe}" ]]; then
  declare -a sweep_digests=()
  for threads in 1 8; do
    d="$(MCS_THREADS=${threads} "${sweep_exe}" --reps 8 --digest)"
    echo "sweep MCS_THREADS=${threads}: ${d}"
    sweep_digests+=("${d}")
  done
  if [[ "${sweep_digests[1]}" != "${sweep_digests[0]}" ]]; then
    echo "FAIL: sweep digests diverge — merge order depends on thread count" >&2
    exit 1
  fi
fi

echo "OK: bit-identical across repeats and thread counts"
