#!/usr/bin/env bash
# Double-run determinism check: runs `exp_graphalytics --digest` twice at
# MCS_THREADS=1 and twice at MCS_THREADS=8 and requires all four FNV-1a
# digests to be identical. The digest covers every kernel result (BFS, PR,
# WCC, CDLP, LCC, SSSP over rmat/er/ba) plus the Pregel engine's values and
# message statistics, so this is the standing check behind the repo's
# bit-identical-at-any-thread-count promise (DESIGN.md, "Determinism &
# hot-path rules").
#
# Optional further binaries are checked as *sweep* digests: each is run
# with `--reps 8 --digest` once at MCS_THREADS=1 and once at MCS_THREADS=8,
# covering the exp::run_sweep merge path (one Simulator per replication,
# merged in flat grid order — DESIGN.md, "Experiment sweeps"). A binary
# named mcs_check is driven as `--seeds 64 --digest` instead, covering the
# fuzzer's scenario fan-out (one Simulator per seed under the invariant
# oracle — DESIGN.md, "Oracle & fuzzing layer").
#
# Usage: scripts/check_determinism.sh /path/to/exp_graphalytics \
#            [/path/to/sweep_exp ...]
set -euo pipefail

exe="${1:-}"
if [[ -z "${exe}" || ! -x "${exe}" ]]; then
  echo "usage: $0 /path/to/exp_graphalytics [/path/to/sweep_exp ...]" >&2
  exit 2
fi
shift
for sweep_exe in "$@"; do
  if [[ ! -x "${sweep_exe}" ]]; then
    echo "usage: $0 /path/to/exp_graphalytics [/path/to/sweep_exp ...]" >&2
    exit 2
  fi
done

declare -a digests=()
for threads in 1 1 8 8; do
  d="$(MCS_THREADS=${threads} "${exe}" --digest)"
  echo "MCS_THREADS=${threads}: ${d}"
  digests+=("${d}")
done

for d in "${digests[@]:1}"; do
  if [[ "${d}" != "${digests[0]}" ]]; then
    echo "FAIL: digests diverge — results depend on thread count or run order" >&2
    exit 1
  fi
done

for sweep_exe in "$@"; do
  if [[ "$(basename "${sweep_exe}")" == "mcs_check" ]]; then
    sweep_args=(--seeds 64 --digest)
  else
    sweep_args=(--reps 8 --digest)
  fi
  declare -a sweep_digests=()
  for threads in 1 8; do
    d="$(MCS_THREADS=${threads} "${sweep_exe}" "${sweep_args[@]}")"
    echo "$(basename "${sweep_exe}") MCS_THREADS=${threads}: ${d}"
    sweep_digests+=("${d}")
  done
  if [[ "${sweep_digests[1]}" != "${sweep_digests[0]}" ]]; then
    echo "FAIL: $(basename "${sweep_exe}") digests diverge — merge order depends on thread count" >&2
    exit 1
  fi
  unset sweep_digests
done

echo "OK: bit-identical across repeats and thread counts"
