// mcs_lint rule passes.
//
// `run_file_rules` consumes one FileIndex and evaluates everything that
// needs only local evidence: D1 (ambient time/randomness facts), D2/D3
// (order-dependent iteration and pointer-order hazards — token-level loop
// analysis), H1 (std::function in hot-path files), H2 (allocation facts
// of `mcs-lint: hot` functions), S1 (mutable statics). Pure per-file work,
// safe to run from the parallel indexing pass.
//
// `run_repo_rules` consumes the merged index plus the call graph and
// evaluates the interprocedural rules: H3 (hotness propagates through
// calls), D4 (determinism roots — sweep cells and simulator callbacks —
// must not reach ambient time), L1 (the include-layer DAG). Serial, after
// the merge barrier.
#pragma once

#include <vector>

#include "callgraph.hpp"
#include "index.hpp"
#include "lint.hpp"

namespace mcs::lint {

/// Per-file rules over one indexed file. Findings are sorted by line
/// (stable), `allow(...)` markers already applied.
[[nodiscard]] std::vector<Finding> run_file_rules(const FileIndex& idx);

/// Interprocedural rules over the whole repo. `files` must be the vector
/// `graph` was built from (nodes point into it).
[[nodiscard]] std::vector<Finding> run_repo_rules(
    const std::vector<FileIndex>& files, const CallGraph& graph);

}  // namespace mcs::lint
