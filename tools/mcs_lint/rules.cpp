#include "rules.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <set>
#include <string>

namespace mcs::lint {

namespace {

// ---- shared reporting -------------------------------------------------------

/// Applies `allow(...)` markers and computes the baseline fingerprint
/// (file + rule + whitespace-collapsed source line — line-number
/// independent so reformatting doesn't churn the ratchet).
class Reporter {
 public:
  Reporter(const FileIndex& idx, std::vector<Finding>& out)
      : idx_(idx), out_(out) {}

  bool allowed(Rule rule, int line) const {
    for (int l : {line, line - 1}) {
      auto it = idx_.markers.allow.find(l);
      if (it != idx_.markers.allow.end() &&
          it->second.count(rule_name(rule)) != 0) {
        return true;
      }
    }
    return false;
  }

  void report(Rule rule, int line, std::string message) {
    if (allowed(rule, line)) return;
    std::string line_text =
        line >= 1 && line <= static_cast<int>(idx_.lines.size())
            ? idx_.lines[static_cast<std::size_t>(line - 1)]
            : std::string();
    std::string norm;
    for (char c : line_text) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!norm.empty() && norm.back() != ' ') norm.push_back(' ');
      } else {
        norm.push_back(c);
      }
    }
    std::uint64_t fp = fnv1a(idx_.path.data(), idx_.path.size());
    const char* rn = rule_name(rule);
    fp = fnv1a(rn, std::char_traits<char>::length(rn), fp);
    fp = fnv1a(norm.data(), norm.size(), fp);
    out_.push_back({idx_.path, line, rule, std::move(message), fp});
  }

 private:
  const FileIndex& idx_;
  std::vector<Finding>& out_;
};

// ---- D1: ambient time & randomness (from index facts) -----------------------

std::string d1_message(const std::string& what) {
  if (what.rfind("nondeterministic source", 0) == 0) {
    return what +
           " outside src/sim/random.* — route randomness/time through "
           "sim::Rng / Simulator::now()";
  }
  if (what.rfind("wall-clock", 0) == 0) {
    return what + " — use Simulator::now() virtual time";
  }
  return what + " — use sim::Rng";
}

void check_d1(const FileIndex& idx, Reporter& rep) {
  for (const Site& s : idx.toplevel_wallclock) {
    rep.report(Rule::kD1, s.line, d1_message(s.what));
  }
  for (const FunctionInfo& fn : idx.functions) {
    for (const Site& s : fn.wallclock) {
      rep.report(Rule::kD1, s.line, d1_message(s.what));
    }
  }
}

// ---- D2/D3: container-order analysis (token level) --------------------------

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string> kOrderedPtrTypes = {"map", "set", "multimap",
                                                "multiset"};

const std::set<std::string> kMutatingCalls = {
    "push_back", "emplace_back", "emplace", "insert", "erase", "clear"};

const std::set<std::string> kAssignOps = {
    "=",  "+=", "-=", "*=",  "/=",  "%=", "&=",
    "|=", "^=", "<<=", ">>=", "++", "--"};

/// Token-level analysis of container declarations and loops, shared by D2
/// (unordered iteration folds) and D3 (pointer-order hazards).
class ContainerAnalysis {
 public:
  ContainerAnalysis(const FileIndex& idx, Reporter& rep)
      : idx_(idx), toks_(idx.tokens), rep_(rep) {}

  void run(bool in_src) {
    collect_container_vars();
    if (in_src) {
      check_loops();
      check_ptr_keyed_decls();
      check_ptr_sort();
    }
  }

 private:
  const Token& tok(std::size_t i) const { return toks_[i]; }
  bool is(std::size_t i, const char* text) const {
    return i < toks_.size() && toks_[i].text == text;
  }

  std::size_t match_forward(std::size_t i, const char* open,
                            const char* close) const {
    int depth = 0;
    for (std::size_t k = i; k < toks_.size(); ++k) {
      if (toks_[k].text == open) ++depth;
      if (toks_[k].text == close && --depth == 0) return k;
    }
    return toks_.size();
  }

  /// Index just past a balanced `<...>` starting at `i` (must be `<`);
  /// also reports whether the *first* template argument mentions a raw
  /// pointer (`*` before the first top-level comma) — the container-key
  /// position for map/set and their unordered/multi variants.
  std::size_t scan_template_args(std::size_t i, bool& first_arg_ptr) const {
    first_arg_ptr = false;
    int depth = 0;
    bool past_first = false;
    for (std::size_t k = i; k < toks_.size(); ++k) {
      const std::string& s = toks_[k].text;
      if (s == "<") ++depth;
      else if (s == ">") { if (--depth == 0) return k + 1; }
      else if (s == ">>") { depth -= 2; if (depth <= 0) return k + 1; }
      else if (s == "," && depth == 1) past_first = true;
      else if (s == "*" && depth == 1 && !past_first) first_arg_ptr = true;
      else if (s == ";" || s == "{" || s == "}") break;
    }
    return toks_.size();
  }

  /// Discovers declared container variables: unordered containers (D2),
  /// pointer-keyed unordered containers (D3 escalation), pointer-element
  /// vectors (D3 sort check). Registers `using Alias = std::...` aliases.
  void collect_container_vars() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kIdent) continue;
      const std::string& w = toks_[i].text;
      const bool base_unordered = kUnorderedTypes.count(w) != 0;
      const bool alias_unordered = unordered_aliases_.count(w) != 0;
      const bool base_vector = w == "vector";
      if (!base_unordered && !alias_unordered && !base_vector) continue;
      // `using Alias = std::unordered_map<...>` registers the alias: look
      // back for `using X =` within a few tokens.
      bool is_alias_decl = false;
      std::string alias_name;
      if (base_unordered || base_vector) {
        for (std::size_t k = (i > 6 ? i - 6 : 0); k + 2 < i; ++k) {
          if (toks_[k].text == "using" &&
              toks_[k + 1].kind == TokKind::kIdent &&
              toks_[k + 2].text == "=") {
            is_alias_decl = true;
            alias_name = toks_[k + 1].text;
          }
        }
      }
      bool ptr_keyed = alias_unordered && unordered_ptr_aliases_.count(w) != 0;
      std::size_t p = i + 1;
      if (is(p, "<")) {
        bool first_ptr = false;
        p = scan_template_args(p, first_ptr);
        ptr_keyed = ptr_keyed || first_ptr;
      }
      if (is_alias_decl && base_unordered) {
        unordered_aliases_.insert(alias_name);
        if (ptr_keyed) unordered_ptr_aliases_.insert(alias_name);
        continue;
      }
      while (p < toks_.size() &&
             (toks_[p].text == "&" || toks_[p].text == "*" ||
              toks_[p].text == "const")) {
        ++p;
      }
      if (p < toks_.size() && toks_[p].kind == TokKind::kIdent &&
          !is(p + 1, "(")) {  // `(` would make it a function return type
        if (base_unordered || alias_unordered) {
          unordered_vars_.insert(toks_[p].text);
          if (ptr_keyed) unordered_ptr_vars_.insert(toks_[p].text);
        } else if (base_vector && ptr_keyed && !is_alias_decl) {
          ptr_vector_vars_.insert(toks_[p].text);
        }
      }
    }
  }

  bool names_unordered(std::size_t begin, std::size_t end) const {
    for (std::size_t k = begin; k < end; ++k) {
      if (toks_[k].kind != TokKind::kIdent) continue;
      if (kUnorderedTypes.count(toks_[k].text) != 0) return true;
      if (unordered_vars_.count(toks_[k].text) != 0) return true;
      if (unordered_aliases_.count(toks_[k].text) != 0) return true;
    }
    return false;
  }

  bool names_ptr_keyed(std::size_t begin, std::size_t end) const {
    for (std::size_t k = begin; k < end; ++k) {
      if (toks_[k].kind != TokKind::kIdent) continue;
      if (unordered_ptr_vars_.count(toks_[k].text) != 0) return true;
      if (unordered_ptr_aliases_.count(toks_[k].text) != 0) return true;
    }
    return false;
  }

  bool body_mutates(std::size_t begin, std::size_t end) const {
    for (std::size_t k = begin; k < end; ++k) {
      const Token& t = toks_[k];
      if (t.kind == TokKind::kPunct && kAssignOps.count(t.text) != 0) {
        return true;
      }
      if (t.kind == TokKind::kIdent && kMutatingCalls.count(t.text) != 0 &&
          is(k + 1, "(")) {
        return true;
      }
    }
    return false;
  }

  /// D2 / D3c — loops over unordered containers whose body mutates or
  /// accumulates. Pointer-keyed containers escalate to D3: even a
  /// *sorted-later* fold is unfixable because the keys themselves are
  /// addresses.
  void check_loops() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!(toks_[i].kind == TokKind::kIdent && toks_[i].text == "for" &&
            is(i + 1, "("))) {
        continue;
      }
      const std::size_t close = match_forward(i + 1, "(", ")");
      if (close >= toks_.size()) continue;
      // Split the header at a top-level `:` (range-for) if present.
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (toks_[k].text == "(" || toks_[k].text == "[" ||
            toks_[k].text == "<") {
          ++depth;
        } else if (toks_[k].text == ")" || toks_[k].text == "]" ||
                   toks_[k].text == ">") {
          --depth;
        } else if (toks_[k].text == ":" && depth == 1) {
          colon = k;
          break;
        }
      }
      bool unordered = false;
      bool ptr_keyed = false;
      if (colon != 0) {
        unordered = names_unordered(colon + 1, close);
        ptr_keyed = names_ptr_keyed(colon + 1, close);
      } else {
        // Iterator loop: `for (auto it = m.begin(); ...)` — the init
        // section (up to the first `;`) names the container and begin().
        std::size_t semi = close;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (toks_[k].text == ";") { semi = k; break; }
        }
        bool has_begin = false;
        for (std::size_t k = i + 2; k < semi; ++k) {
          if (toks_[k].kind == TokKind::kIdent &&
              (toks_[k].text == "begin" || toks_[k].text == "cbegin")) {
            has_begin = true;
          }
        }
        unordered = has_begin && names_unordered(i + 2, semi);
        ptr_keyed = has_begin && names_ptr_keyed(i + 2, semi);
      }
      if (!unordered) continue;
      // Locate the loop body.
      std::size_t body_begin = close + 1;
      std::size_t body_end;
      if (is(body_begin, "{")) {
        body_end = match_forward(body_begin, "{", "}");
      } else {
        body_end = body_begin;
        while (body_end < toks_.size() && toks_[body_end].text != ";") {
          ++body_end;
        }
      }
      if (!body_mutates(body_begin, body_end)) continue;
      const int line = toks_[i].line;
      if (idx_.markers.ordered_ok.count(line) != 0 ||
          idx_.markers.ordered_ok.count(line - 1) != 0) {
        continue;
      }
      if (ptr_keyed) {
        rep_.report(
            Rule::kD3, line,
            "fold over a pointer-keyed unordered container — bucket order "
            "is a function of the key *addresses* (ASLR-dependent), so no "
            "later sort can recover determinism; key by a stable id "
            "instead");
      } else {
        rep_.report(
            Rule::kD2, line,
            "loop over std::unordered_* mutates/accumulates state — "
            "iteration order is bucket order (non-deterministic across "
            "implementations); use an ordered/insertion-ordered container "
            "or annotate a reviewed site with `// mcs-lint: ordered-ok`");
      }
    }
  }

  /// D3a — ordered containers keyed on raw pointers: std::map<T*, ...>,
  /// std::set<T*>. Their comparison order IS the address order.
  void check_ptr_keyed_decls() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kIdent ||
          kOrderedPtrTypes.count(toks_[i].text) == 0 || !is(i + 1, "<")) {
        continue;
      }
      // Require the std:: qualifier so project types named `map`/`set`
      // don't fire.
      if (!(i >= 2 && toks_[i - 1].text == "::" &&
            toks_[i - 2].text == "std")) {
        continue;
      }
      bool first_ptr = false;
      scan_template_args(i + 1, first_ptr);
      if (!first_ptr) continue;
      rep_.report(
          Rule::kD3, toks_[i].line,
          "ordered container keyed on raw pointer values (`std::" +
              toks_[i].text +
              "<T*, ...>`) — iteration order is address order "
              "(ASLR-dependent); key by a stable id or supply a comparator "
              "over stable fields");
    }
  }

  /// D3b — std::sort over a pointer container without a comparator:
  /// the resulting order is allocation order.
  void check_ptr_sort() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kIdent ||
          !(toks_[i].text == "sort" || toks_[i].text == "stable_sort") ||
          !is(i + 1, "(")) {
        continue;
      }
      const std::size_t close = match_forward(i + 1, "(", ")");
      if (close >= toks_.size()) continue;
      int depth = 0;
      int top_commas = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        const std::string& s = toks_[k].text;
        if (s == "(" || s == "[" || s == "{" || s == "<") ++depth;
        else if (s == ")" || s == "]" || s == "}" || s == ">") --depth;
        else if (s == "," && depth == 1) ++top_commas;
      }
      if (top_commas != 1) continue;  // a third argument is the comparator
      bool over_ptrs = false;
      for (std::size_t k = i + 2; k < close; ++k) {
        if (toks_[k].kind == TokKind::kIdent &&
            ptr_vector_vars_.count(toks_[k].text) != 0) {
          over_ptrs = true;
        }
      }
      if (!over_ptrs) continue;
      rep_.report(
          Rule::kD3, toks_[i].line,
          "`std::" + toks_[i].text +
              "` over raw pointer values without a comparator — the result "
              "is address order (ASLR-dependent); pass a comparator over "
              "stable fields");
    }
  }

  const FileIndex& idx_;
  const std::vector<Token>& toks_;
  Reporter& rep_;
  std::set<std::string> unordered_vars_;
  std::set<std::string> unordered_aliases_;
  std::set<std::string> unordered_ptr_vars_;
  std::set<std::string> unordered_ptr_aliases_;
  std::set<std::string> ptr_vector_vars_;
};

// ---- H1: std::function in hot-path files ------------------------------------

void check_h1(const FileIndex& idx, Reporter& rep) {
  const std::vector<Token>& toks = idx.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "std" && toks[i + 1].text == "::" &&
        toks[i + 2].text == "function") {
      rep.report(Rule::kH1, toks[i].line,
                 "std::function in hot-path file — use sim::Callback, "
                 "core::UniqueFunction (owning) or core::FunctionRef "
                 "(borrowed)");
    }
  }
}

// ---- H2: allocation in hot functions (from index facts) ---------------------

std::string h2_message(const std::string& what) {
  if (what.rfind("heap allocation", 0) == 0) {
    return what + " in function marked `mcs-lint: hot`";
  }
  // push_back/emplace_back/resize-without-reserve facts already read
  // "`push_back` without a prior `x.reserve(...)` in this function".
  return what + " marked `mcs-lint: hot` — growth reallocates on the hot path";
}

void check_h2(const FileIndex& idx, Reporter& rep) {
  for (const FunctionInfo& fn : idx.functions) {
    if (!fn.hot) continue;
    for (const Site& s : fn.allocs) {
      rep.report(Rule::kH2, s.line, h2_message(s.what));
    }
  }
}

// ---- S1: mutable static state (from index facts) ----------------------------

void check_s1(const FileIndex& idx, Reporter& rep) {
  for (const Site& s : idx.statics) {
    rep.report(Rule::kS1, s.line,
               "mutable static state — shared mutable globals make runs "
               "order- and thread-count-dependent; pass state explicitly or "
               "whitelist a reviewed singleton");
  }
}

}  // namespace

std::vector<Finding> run_file_rules(const FileIndex& idx) {
  const PathPolicy policy = classify_path(idx.path);
  std::vector<Finding> findings;
  Reporter rep(idx, findings);
  if (policy.in_src && !policy.d1_exempt) check_d1(idx, rep);
  ContainerAnalysis(idx, rep).run(policy.in_src);
  if (policy.hot_dir) check_h1(idx, rep);
  check_h2(idx, rep);
  if (policy.in_src && !policy.s1_whitelisted) check_s1(idx, rep);
  std::stable_sort(findings.begin(), findings.end(),
                   [](const Finding& a, const Finding& b) {
                     return a.line < b.line;
                   });
  return findings;
}

// ---- repo rules -------------------------------------------------------------

namespace {

/// A node is a propagation stop for `rule` when `allow(RULE)` sits on its
/// definition line (or the line above): the justification covers the
/// subtree the function guards.
std::vector<char> blocked_nodes(const CallGraph& graph, Rule rule) {
  const char* rn = rule_name(rule);
  std::vector<char> blocked(graph.nodes().size(), 0);
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    const CallGraph::Node& node = graph.nodes()[n];
    for (int l : {node.fn->line, node.fn->line - 1}) {
      auto it = node.file->markers.allow.find(l);
      if (it != node.file->markers.allow.end() &&
          it->second.count(rn) != 0) {
        blocked[n] = 1;
      }
    }
  }
  return blocked;
}

/// H3 — hotness is transitive: every function reachable from a
/// `mcs-lint: hot` root inherits the allocation budget. Roots themselves
/// (and lexically-nested hot lambdas) are H2's territory; H3 reports the
/// *helpers* a hot function calls into, with the chain that makes them
/// hot.
void run_h3(const std::vector<FileIndex>& files, const CallGraph& graph,
            std::vector<Finding>& out) {
  (void)files;
  std::vector<int> roots;
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    if (graph.nodes()[n].fn->hot_annotated) {
      roots.push_back(static_cast<int>(n));
    }
  }
  if (roots.empty()) return;
  const std::vector<char> blocked = blocked_nodes(graph, Rule::kH3);
  const std::vector<int> parent = graph.reach(roots, blocked);
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    if (parent[n] < 0) continue;
    const CallGraph::Node& node = graph.nodes()[n];
    if (node.fn->hot) continue;  // H2 already owns annotated/nested-hot code
    const std::string chain = graph.chain(parent, static_cast<int>(n));
    Reporter rep(*node.file, out);
    for (const Site& s : node.fn->allocs) {
      rep.report(Rule::kH3, s.line,
                 s.what + " on a hot path — reachable from `mcs-lint: hot` "
                          "root via " +
                     chain +
                     "; make this helper allocation-free, mark it hot, or "
                     "annotate a reviewed site with `// mcs-lint: "
                     "allow(H3)`");
    }
    for (const Site& s : node.fn->std_function) {
      rep.report(Rule::kH3, s.line,
                 s.what + " on a hot path — reachable from `mcs-lint: hot` "
                          "root via " +
                     chain + "; use sim::Callback / core::FunctionRef");
    }
  }
}

/// D4 — determinism roots (sweep cells handed to exp::run_sweep,
/// callbacks handed to Simulator::schedule_at/_after) must not reach
/// ambient time or randomness. src/ files are D1's territory (and
/// src/sim/random.* + src/parallel/ are the sanctioned implementations);
/// D4 adds the bench/tests/tools cell code D1 does not see.
void run_d4(const std::vector<FileIndex>& files, const CallGraph& graph,
            std::vector<Finding>& out) {
  (void)files;
  std::vector<int> roots;
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    const FunctionInfo& fn = *graph.nodes()[n].fn;
    if (fn.sweep_root || fn.sim_callback_root) {
      roots.push_back(static_cast<int>(n));
    }
  }
  if (roots.empty()) return;
  const std::vector<char> blocked = blocked_nodes(graph, Rule::kD4);
  const std::vector<int> parent = graph.reach(roots, blocked);
  for (std::size_t n = 0; n < graph.nodes().size(); ++n) {
    if (parent[n] < 0) continue;
    const CallGraph::Node& node = graph.nodes()[n];
    if (node.fn->wallclock.empty()) continue;
    const PathPolicy policy = classify_path(node.file->path);
    if (policy.in_src) continue;  // D1 (or its exemptions) covers src/
    int root_id = static_cast<int>(n);
    std::size_t hops = 0;
    while (parent[static_cast<std::size_t>(root_id)] != root_id &&
           hops++ < graph.nodes().size()) {
      root_id = parent[static_cast<std::size_t>(root_id)];
    }
    const FunctionInfo& root =
        *graph.nodes()[static_cast<std::size_t>(root_id)].fn;
    const char* kind =
        root.sweep_root ? "a sweep cell (exp::run_sweep)"
                        : "a simulator callback (schedule_at/schedule_after)";
    const std::string chain = graph.chain(parent, static_cast<int>(n));
    Reporter rep(*node.file, out);
    for (const Site& s : node.fn->wallclock) {
      rep.report(Rule::kD4, s.line,
                 s.what + std::string(" reachable from ") + kind + " via " +
                     chain +
                     " — experiment cells must be pure functions of "
                     "(scenario, seed); use SweepPoint substream seeds / "
                     "Simulator::now()");
    }
  }
}

/// L1 — the include-layer DAG.
void run_l1(const std::vector<FileIndex>& files, std::vector<Finding>& out) {
  for (const LayerViolation& v : check_layers(files)) {
    // Reporter needs the owning FileIndex for markers/fingerprints.
    const FileIndex* idx = nullptr;
    for (const FileIndex& f : files) {
      if (f.path == v.file) { idx = &f; break; }
    }
    if (idx == nullptr) continue;
    Reporter rep(*idx, out);
    rep.report(Rule::kL1, v.line, v.message);
  }
}

}  // namespace

std::vector<Finding> run_repo_rules(const std::vector<FileIndex>& files,
                                    const CallGraph& graph) {
  std::vector<Finding> out;
  run_h3(files, graph, out);
  run_d4(files, graph, out);
  run_l1(files, out);
  return out;
}

}  // namespace mcs::lint
