// mcs-lint — repo-specific determinism & hot-path static analyzer.
//
// The paper's reproducibility stance (§5 "Threats to validity") and PR 1's
// bit-identical parallel kernels are protected here *by construction*: the
// classes of regression that historically rot datacenter simulators become
// lint findings instead of flaky-bench mysteries. No libclang — a small
// purpose-built lexer plus a two-pass index (per-file symbol tables merged
// into a repo-wide call graph and include graph) is enough for the rule
// set, keeps the tool dependency-free, and lints the whole tree in well
// under a second.
//
// Per-file rules (pass 1; see DESIGN.md §8 for rationale):
//   D1  wall-clock / ambient randomness (`std::random_device`, `rand()`,
//       `time(nullptr)`, `system_clock`, `steady_clock`, ...) in src/
//       outside src/sim/random.* and src/parallel/.
//   D2  range-for or iterator loops over std::unordered_{map,set} whose
//       body mutates state or accumulates results (bucket-order hazard).
//       Suppress a reviewed site with `// mcs-lint: ordered-ok`.
//   D3  pointer-order nondeterminism: ordered containers keyed on raw
//       pointers, `std::sort` of a pointer container without a comparator,
//       and unordered containers keyed on pointers whose iteration feeds a
//       fold — all ASLR-dependent, all silently break `--digest` equality.
//   H1  std::function in hot-path files (src/sim/, src/graph/,
//       src/parallel/, src/obs/) — use sim::Callback, core::UniqueFunction,
//       or core::FunctionRef.
//   H2  heap allocation (`new`, `make_unique`/`make_shared`, `push_back`/
//       `emplace_back`/`resize` without a prior `reserve` on the same
//       receiver in the same function) inside functions marked
//       `// mcs-lint: hot`.
//   S1  mutable static / namespace-scope state in src/ outside the
//       explicit whitelist (process-wide singletons must be deliberate).
//
// Interprocedural rules (pass 2, over the merged index):
//   H3  hotness propagates: a function *reachable from* a `mcs-lint: hot`
//       root through the call graph that allocates (or uses std::function)
//       is flagged, with the full call chain in the finding.
//   D4  D1 made transitive: ambient time/randomness reachable from a
//       sweep cell (lambda passed to exp::run_sweep) or a simulator
//       callback (lambda passed to schedule_at/schedule_after) — covers
//       bench/ and tests/ code that D1's src/-only scope does not.
//   L1  the DESIGN.md layer DAG enforced on src-internal #include edges
//       (core <- sim/metrics <- graph/parallel/infra/workload <-
//       sched/failures/obs <- exp/check <- domains), plus module cycles.
//
// Generic per-line suppression: `// mcs-lint: allow(D1)` on the finding's
// line or the line above. For H3/D4, `allow(...)` on a function's
// definition line also stops propagation *through* that function — the
// justification covers the subtree it guards. `--baseline` /
// `--write-baseline` implement the ratchet: existing debt is recorded and
// only *new* findings fail CI. This tree carries zero baseline entries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcs::lint {

enum class Rule { kD1, kD2, kD3, kD4, kH1, kH2, kH3, kS1, kL1 };

[[nodiscard]] const char* rule_name(Rule rule);

/// Long-form rationale + remedy text for `--explain RULE`; nullptr for an
/// unknown rule name. `parse_rule` accepts "D1" ... "L1".
[[nodiscard]] const char* explain(Rule rule);
[[nodiscard]] bool parse_rule(const std::string& name, Rule& out);

struct Finding {
  std::string file;  ///< path tag as given to analyze_file (repo-relative)
  int line = 0;      ///< 1-based
  Rule rule = Rule::kD1;
  std::string message;
  /// Line-number-independent identity used by the baseline ratchet:
  /// FNV-1a over (file, rule, whitespace-collapsed source line).
  std::uint64_t fingerprint = 0;
};

/// 64-bit FNV-1a (also the digest primitive scripts/check_determinism.sh
/// relies on via bench/exp_graphalytics --digest).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t len,
                                  std::uint64_t seed = 1469598103934665603ull);

/// Analyzes one translation unit with the per-file rules only (D1, D2,
/// D3, H1, H2, S1). `path_tag` decides which rules apply (src/ vs bench/
/// vs tests/, hot-path directories, whitelists) and is the `file`
/// reported in findings. Findings are sorted by line.
[[nodiscard]] std::vector<Finding> analyze_file(const std::string& path_tag,
                                                const std::string& content);

// ---- repo-wide analysis -----------------------------------------------------

struct FileInput {
  std::string path;     ///< repo-relative path tag
  std::string content;  ///< full file contents
};

struct RepoOptions {
  /// Files indexed on this many threads; findings are merged in path
  /// order, so output is byte-identical at any job count (the analyzer
  /// obeys its own determinism rules).
  int jobs = 1;
  bool want_callgraph = false;  ///< fill RepoResult::callgraph_dot
};

struct RepoResult {
  /// All findings — per-file rules plus H3/D4/L1 — sorted by
  /// (file, line, rule, message).
  std::vector<Finding> findings;
  std::string callgraph_dot;  ///< Graphviz DOT when requested
};

/// Two-pass repo analysis: pass 1 indexes every file (in parallel when
/// opt.jobs > 1) and runs the per-file rules; pass 2 builds the call
/// graph and include graph and runs H3/D4/L1.
[[nodiscard]] RepoResult analyze_repo(const std::vector<FileInput>& files,
                                      const RepoOptions& opt = {});

/// Formats a finding as `file:line: [RULE] message`.
[[nodiscard]] std::string format_finding(const Finding& f);

/// SARIF 2.1.0 document for CI diff annotation (`--sarif FILE`).
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace mcs::lint
