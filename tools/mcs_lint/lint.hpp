// mcs-lint — repo-specific determinism & hot-path static analyzer.
//
// The paper's reproducibility stance (§5 "Threats to validity") and PR 1's
// bit-identical parallel kernels are protected here *by construction*: the
// classes of regression that historically rot datacenter simulators become
// lint findings instead of flaky-bench mysteries. No libclang — a small
// purpose-built lexer (comments/strings stripped, scopes tracked) is enough
// for the five rules, keeps the tool dependency-free, and lints the whole
// tree in milliseconds.
//
// Rules (see DESIGN.md "Determinism & hot-path rules" for rationale):
//   D1  wall-clock / ambient randomness (`std::random_device`, `rand()`,
//       `time(nullptr)`, `system_clock`, `steady_clock`, ...) in src/
//       outside src/sim/random.* and src/parallel/.
//   D2  range-for or iterator loops over std::unordered_{map,set} whose
//       body mutates state or accumulates results (bucket-order hazard).
//       Suppress a reviewed site with `// mcs-lint: ordered-ok`.
//   H1  std::function in hot-path files (src/sim/, src/graph/,
//       src/parallel/) — use sim::Callback, core::UniqueFunction, or
//       core::FunctionRef.
//   H2  heap allocation (`new`, `make_unique`/`make_shared`, `push_back`/
//       `emplace_back` without a prior `reserve` on the same receiver in
//       the same function) inside functions marked `// mcs-lint: hot`.
//   S1  mutable static / namespace-scope state in src/ outside the
//       explicit whitelist (process-wide singletons must be deliberate).
//
// Generic per-line suppression: `// mcs-lint: allow(D1)` on the finding's
// line or the line above. `--baseline` / `--write-baseline` implement the
// ratchet: existing debt is recorded and only *new* findings fail CI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mcs::lint {

enum class Rule { kD1, kD2, kH1, kH2, kS1 };

[[nodiscard]] const char* rule_name(Rule rule);

struct Finding {
  std::string file;  ///< path tag as given to analyze_file (repo-relative)
  int line = 0;      ///< 1-based
  Rule rule = Rule::kD1;
  std::string message;
  /// Line-number-independent identity used by the baseline ratchet:
  /// FNV-1a over (file, rule, whitespace-collapsed source line).
  std::uint64_t fingerprint = 0;
};

/// 64-bit FNV-1a (also the digest primitive scripts/check_determinism.sh
/// relies on via bench/exp_graphalytics --digest).
[[nodiscard]] std::uint64_t fnv1a(const void* data, std::size_t len,
                                  std::uint64_t seed = 1469598103934665603ull);

/// Analyzes one translation unit. `path_tag` decides which rules apply
/// (src/ vs bench/ vs tests/, hot-path directories, whitelists) and is the
/// `file` reported in findings. Findings are sorted by line.
[[nodiscard]] std::vector<Finding> analyze_file(const std::string& path_tag,
                                                const std::string& content);

/// Formats a finding as `file:line: [RULE] message`.
[[nodiscard]] std::string format_finding(const Finding& f);

}  // namespace mcs::lint
