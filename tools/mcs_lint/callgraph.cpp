#include "callgraph.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <sstream>

namespace mcs::lint {

CallGraph CallGraph::build(const std::vector<FileIndex>& files) {
  CallGraph g;
  // Node table in (file, function) order.
  std::map<std::string, std::vector<int>> by_name;
  std::map<std::pair<const FileIndex*, std::string>, std::vector<int>>
      lambdas_by_file;
  for (const FileIndex& f : files) {
    for (const FunctionInfo& fn : f.functions) {
      const int id = static_cast<int>(g.nodes_.size());
      g.nodes_.push_back({&f, &fn});
      if (fn.is_lambda) {
        lambdas_by_file[{&f, fn.name}].push_back(id);
      } else {
        by_name[fn.name].push_back(id);
      }
    }
  }
  g.out_.assign(g.nodes_.size(), {});
  for (std::size_t n = 0; n < g.nodes_.size(); ++n) {
    const Node& node = g.nodes_[n];
    std::set<int> targets;
    for (const CallSite& c : node.fn->calls) {
      if (c.callee.rfind("<lambda@", 0) == 0) {
        auto it = lambdas_by_file.find({node.file, c.callee});
        if (it != lambdas_by_file.end()) {
          targets.insert(it->second.begin(), it->second.end());
        }
        continue;
      }
      auto it = by_name.find(c.callee);
      if (it == by_name.end()) continue;
      for (int t : it->second) {
        if (t != static_cast<int>(n)) targets.insert(t);
      }
    }
    g.out_[n].assign(targets.begin(), targets.end());
  }
  return g;
}

std::vector<int> CallGraph::reach(const std::vector<int>& roots,
                                  const std::vector<char>& blocked) const {
  std::vector<int> parent(nodes_.size(), -1);
  std::deque<int> queue;
  for (int r : roots) {
    if (r < 0 || static_cast<std::size_t>(r) >= nodes_.size()) continue;
    if (!blocked.empty() && blocked[static_cast<std::size_t>(r)]) continue;
    if (parent[static_cast<std::size_t>(r)] != -1) continue;
    parent[static_cast<std::size_t>(r)] = r;
    queue.push_back(r);
  }
  while (!queue.empty()) {
    const int n = queue.front();
    queue.pop_front();
    for (int t : out_[static_cast<std::size_t>(n)]) {
      if (parent[static_cast<std::size_t>(t)] != -1) continue;
      if (!blocked.empty() && blocked[static_cast<std::size_t>(t)]) continue;
      parent[static_cast<std::size_t>(t)] = n;
      queue.push_back(t);
    }
  }
  return parent;
}

std::string CallGraph::chain(const std::vector<int>& parent, int node) const {
  std::vector<int> path;
  int cur = node;
  while (cur >= 0 && parent[static_cast<std::size_t>(cur)] != cur &&
         path.size() < nodes_.size()) {
    path.push_back(cur);
    cur = parent[static_cast<std::size_t>(cur)];
  }
  if (cur >= 0) path.push_back(cur);
  std::string out;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += nodes_[static_cast<std::size_t>(*it)].fn->qual;
  }
  return out;
}

std::string CallGraph::to_dot() const {
  std::ostringstream dot;
  dot << "digraph mcs_callgraph {\n"
      << "  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    const Node& node = nodes_[n];
    dot << "  n" << n << " [label=\"" << node.fn->qual << "\\n"
        << node.file->path << ":" << node.fn->line << "\"";
    if (node.fn->hot_annotated) {
      dot << ", style=filled, fillcolor=\"#f4b8b8\"";
    } else if (node.fn->sweep_root || node.fn->sim_callback_root) {
      dot << ", style=filled, fillcolor=\"#b8d4f4\"";
    }
    dot << "];\n";
  }
  for (std::size_t n = 0; n < nodes_.size(); ++n) {
    for (int t : out_[n]) {
      dot << "  n" << n << " -> n" << t << ";\n";
    }
  }
  dot << "}\n";
  return dot.str();
}

// ---- layer DAG --------------------------------------------------------------

int layer_rank(const std::string& module) {
  static const std::map<std::string, int> kRanks = {
      {"core", 0},
      {"sim", 1},      {"metrics", 1},
      {"graph", 2},    {"parallel", 2}, {"infra", 2}, {"workload", 2},
      {"sched", 3},    {"failures", 3}, {"obs", 3},
      {"exp", 4},      {"check", 4},
      {"autoscale", 5}, {"bigdata", 5}, {"evolve", 5},
      {"faas", 5},      {"gaming", 5},  {"p2p", 5}};
  auto it = kRanks.find(module);
  return it == kRanks.end() ? -1 : it->second;
}

const char* layer_name(int rank) {
  switch (rank) {
    case 0: return "core";
    case 1: return "kernel (sim/metrics)";
    case 2: return "substrate (graph/parallel/infra/workload)";
    case 3: return "platform (sched/failures/obs)";
    case 4: return "harness (exp/check)";
    case 5: return "domain ecosystems";
  }
  return "?";
}

std::vector<LayerViolation> check_layers(const std::vector<FileIndex>& files) {
  std::vector<LayerViolation> out;
  // Module-level edge set for cycle detection, with a representative
  // (file, line) per edge — the lexicographically first one.
  std::map<std::pair<std::string, std::string>, std::pair<std::string, int>>
      edges;
  for (const FileIndex& f : files) {
    const std::string from = module_of(f.path);
    if (from.empty() || layer_rank(from) < 0) continue;
    for (const IncludeDirective& inc : f.includes) {
      if (inc.angled) continue;
      // Include targets are written module-relative ("sched/engine.hpp")
      // or parent-relative ("../sim/simulator.hpp").
      std::string target = inc.path;
      while (target.rfind("../", 0) == 0) target = target.substr(3);
      const std::size_t slash = target.find('/');
      if (slash == std::string::npos) continue;  // same-directory include
      const std::string to = target.substr(0, slash);
      if (to == from || layer_rank(to) < 0) continue;
      const auto key = std::make_pair(from, to);
      const auto rep = std::make_pair(f.path, inc.line);
      auto it = edges.find(key);
      if (it == edges.end() || rep < it->second) edges[key] = rep;
      if (layer_rank(to) > layer_rank(from)) {
        LayerViolation v;
        v.file = f.path;
        v.line = inc.line;
        v.chain = from + " -> " + to;
        v.message =
            "include edge climbs the layer DAG: `" + from + "` (layer " +
            std::to_string(layer_rank(from)) + ", " +
            layer_name(layer_rank(from)) + ") must not include `" + inc.path +
            "` from `" + to + "` (layer " + std::to_string(layer_rank(to)) +
            ", " + layer_name(layer_rank(to)) +
            ") — DESIGN.md §8 layer DAG: core <- sim/metrics <- "
            "graph/parallel/infra/workload <- sched/failures/obs <- "
            "exp/check <- domains";
        out.push_back(std::move(v));
      }
    }
  }
  // Module-level cycles (A -> B -> A never satisfies any layering, even
  // same-rank modules like sim/metrics which may depend one way only).
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, rep] : edges) adj[key.first].push_back(key.second);
  std::set<std::string> reported;
  for (const auto& [start, unused] : adj) {
    (void)unused;
    // DFS from each module; report a cycle once via its sorted signature.
    std::vector<std::string> path{start};
    std::set<std::string> on_path{start};
    struct Frame {
      std::string mod;
      std::size_t next = 0;
    };
    std::vector<Frame> stack{{start, 0}};
    while (!stack.empty()) {
      Frame& fr = stack.back();
      const auto it = adj.find(fr.mod);
      if (it == adj.end() || fr.next >= it->second.size()) {
        on_path.erase(fr.mod);
        path.pop_back();
        stack.pop_back();
        continue;
      }
      const std::string& next = it->second[fr.next++];
      if (on_path.count(next) != 0) {
        // Found a cycle: next ... back to next.
        std::vector<std::string> cyc;
        for (std::size_t k = 0; k < path.size(); ++k) {
          if (!cyc.empty() || path[k] == next) cyc.push_back(path[k]);
        }
        cyc.push_back(next);
        std::vector<std::string> sig(cyc.begin(), cyc.end() - 1);
        std::sort(sig.begin(), sig.end());
        std::string sig_key;
        for (const std::string& m : sig) sig_key += m + ",";
        if (reported.insert(sig_key).second) {
          std::string chain;
          for (const std::string& m : cyc) {
            if (!chain.empty()) chain += " -> ";
            chain += m;
          }
          const auto rep = edges.at({cyc[cyc.size() - 2], cyc.back()});
          LayerViolation v;
          v.file = rep.first;
          v.line = rep.second;
          v.chain = chain;
          v.message = "module include cycle: " + chain +
                      " — the layer DAG admits no cycles; invert one "
                      "dependency or split the shared piece downward";
          out.push_back(std::move(v));
        }
        continue;
      }
      if (adj.count(next) != 0) {
        path.push_back(next);
        on_path.insert(next);
        stack.push_back({next, 0});
      }
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const LayerViolation& a, const LayerViolation& b) {
                     return a.file != b.file ? a.file < b.file
                                             : a.line < b.line;
                   });
  return out;
}

}  // namespace mcs::lint
