// mcs_lint pass 1 — the per-file index.
//
// `index_file` lexes one translation unit (comments/strings stripped,
// preprocessor lines captured as include edges) and walks its brace
// structure once, producing everything the rule passes need:
//
//  - every function definition (free functions, member functions defined
//    inline or out-of-line, lambdas) with its source span and enclosing
//    class/function context;
//  - the calls each body makes (callee name + line), which pass 2 links
//    into the repo-wide call graph;
//  - per-function *facts*: H2-style allocation sites (new / make_unique /
//    make_shared / push_back / emplace_back / resize without a prior
//    reserve on the same receiver), ambient-time/randomness observations
//    (the D1 token set), and `std::function` uses;
//  - file-level facts: `#include` directives, mutable-static declaration
//    sites, and the suppression/hot markers.
//
// Indexing is pure per-file work — no global state — so `analyze_repo`
// can fan it across threads and merge results in path order, keeping the
// analyzer's own output deterministic (it obeys the rules it enforces).
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace mcs::lint {

// ---- lexer ------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Comment {
  int line;
  std::string text;
};

struct IncludeDirective {
  int line = 0;
  std::string path;    ///< as written between the delimiters
  bool angled = false; ///< <system> vs "local"
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
  std::vector<IncludeDirective> includes;
};

[[nodiscard]] LexResult lex(const std::string& src);

// ---- markers ----------------------------------------------------------------

/// Suppression / annotation markers. A comment is a marker only when its
/// text *starts* with `mcs-lint:` (after whitespace) — prose that merely
/// mentions `mcs-lint: hot` in documentation does not annotate anything,
/// which also lets the linter lint its own sources.
///
/// A marker on a comment-only line also registers on the *last* line of its
/// contiguous comment block, so a multi-line justification still governs the
/// first code line after the block (NOLINTNEXTLINE-style):
///
///     // mcs-lint: allow(H3) — the justification may run long and
///     // wrap onto further comment lines without detaching the marker.
///     samples_.push_back(x);   // still suppressed
struct Markers {
  std::set<int> ordered_ok;                    ///< `mcs-lint: ordered-ok`
  std::set<int> hot;                           ///< `mcs-lint: hot`
  std::map<int, std::set<std::string>> allow;  ///< line -> allowed rules
};

[[nodiscard]] Markers parse_markers(const LexResult& lexed);

// ---- the index --------------------------------------------------------------

struct CallSite {
  std::string callee;  ///< unqualified name (last `::` component)
  int line = 0;
};

/// One fact occurrence (allocation, wall-clock observation, ...).
struct Site {
  int line = 0;
  std::string what;  ///< short description, used in finding messages
};

struct FunctionInfo {
  std::string name;  ///< unqualified name; lambdas get `<lambda@LINE>`
  std::string qual;  ///< display name with class qualifier if known
  int line = 0;      ///< line of the opening brace's declaration
  int parent = -1;   ///< index of enclosing function (lambdas), or -1
  bool hot = false;  ///< annotated `mcs-lint: hot`, or lexically inside a
                     ///< hot function (H2 covers its body either way)
  bool hot_annotated = false;  ///< carries its own annotation
  bool is_lambda = false;
  bool sweep_root = false;  ///< lambda literal passed to exp::run_sweep —
                            ///< a sweep *cell*, a D4 determinism root
  bool sim_callback_root = false;  ///< lambda passed to schedule_at/_after
  std::vector<CallSite> calls;
  std::vector<Site> allocs;        ///< H2-style allocation facts
  std::vector<Site> wallclock;     ///< D1-style ambient time/randomness
  std::vector<Site> std_function;  ///< `std::function` mentions
};

struct FileIndex {
  std::string path;                 ///< repo-relative path tag
  std::vector<std::string> lines;   ///< raw source lines (fingerprints)
  Markers markers;
  std::vector<IncludeDirective> includes;
  std::vector<FunctionInfo> functions;
  std::vector<Site> statics;        ///< mutable static/thread_local decls
  /// Wall-clock/randomness observations at namespace scope (outside any
  /// function body); per-function ones live on FunctionInfo.
  std::vector<Site> toplevel_wallclock;
  /// Tokens are retained for the per-file rule pass (D2/D3 loop analysis)
  /// and may be released with `tokens.clear()` once rules have run.
  std::vector<Token> tokens;
};

/// Pass 1 over one file. Pure function of (path, content).
[[nodiscard]] FileIndex index_file(const std::string& path,
                                   const std::string& content);

// ---- shared path policy -----------------------------------------------------

struct PathPolicy {
  bool in_src = false;
  bool d1_exempt = false;   ///< src/sim/random.* and src/parallel/
  bool hot_dir = false;     ///< src/sim/, src/graph/, src/parallel/, src/obs/
  bool s1_whitelisted = false;
};

[[nodiscard]] PathPolicy classify_path(const std::string& tag);

/// `src/<module>/...` -> `<module>`; empty string when not a src module
/// (bench/, tests/, tools/ files carry no layer obligations).
[[nodiscard]] std::string module_of(const std::string& tag);

}  // namespace mcs::lint
