#include "lint.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <iterator>
#include <sstream>
#include <thread>
#include <utility>

#include "callgraph.hpp"
#include "index.hpp"
#include "rules.hpp"

namespace mcs::lint {

const char* rule_name(Rule rule) {
  switch (rule) {
    case Rule::kD1: return "D1";
    case Rule::kD2: return "D2";
    case Rule::kD3: return "D3";
    case Rule::kD4: return "D4";
    case Rule::kH1: return "H1";
    case Rule::kH2: return "H2";
    case Rule::kH3: return "H3";
    case Rule::kS1: return "S1";
    case Rule::kL1: return "L1";
  }
  return "??";
}

const char* explain(Rule rule) {
  switch (rule) {
    case Rule::kD1:
      return
          "D1 — ambient time & randomness in src/.\n"
          "Simulation results must be pure functions of (scenario, seed).\n"
          "std::random_device, system_clock/steady_clock/high_resolution_\n"
          "clock, rand()/srand() and time(nullptr) read ambient machine\n"
          "state, so two runs of the same experiment disagree and\n"
          "bench.determinism fails. Remedy: draw randomness from sim::Rng\n"
          "(seeded per scenario) and time from Simulator::now() virtual\n"
          "time. src/sim/random.* (the Rng implementation) and\n"
          "src/parallel/ (real-time pool plumbing) are exempt by design.";
    case Rule::kD2:
      return
          "D2 — order-dependent iteration over std::unordered_*.\n"
          "Bucket order is implementation-defined and changes with\n"
          "load factor, libstdc++ version, and insertion history. A loop\n"
          "that folds values, appends to a vector, or mutates state while\n"
          "iterating an unordered container bakes that order into results.\n"
          "Remedy: iterate an ordered or insertion-ordered container, or\n"
          "sort keys first; annotate a reviewed commutative fold with\n"
          "`// mcs-lint: ordered-ok`.";
    case Rule::kD3:
      return
          "D3 — pointer-order nondeterminism.\n"
          "Raw pointer values are ASLR-dependent: std::map/std::set keyed\n"
          "on T*, std::sort over pointers without a comparator, and folds\n"
          "over pointer-keyed unordered containers all produce an order\n"
          "that changes per run even with identical seeds — unlike D2 this\n"
          "cannot be fixed by sorting later, because the *keys themselves*\n"
          "are addresses. Remedy: key by a stable id (task id, node index)\n"
          "or supply a comparator over stable fields.";
    case Rule::kD4:
      return
          "D4 — ambient time/randomness reachable from a deterministic\n"
          "context (D1 made interprocedural). Sweep cells handed to\n"
          "exp::run_sweep and callbacks handed to Simulator::schedule_at/\n"
          "schedule_after must be pure functions of (scenario, seed) — the\n"
          "replication + digest machinery depends on it. D4 chases the\n"
          "call graph from those lambdas and flags any reachable wall-clock\n"
          "or ambient-RNG observation, with the chain that gets there.\n"
          "src/ is already covered by D1; D4 adds bench/, tests/ and\n"
          "tools/ cell code. Remedy: use SweepPoint substream seeds and\n"
          "Simulator::now(); `allow(D4)` on a function definition stops\n"
          "propagation through its subtree.";
    case Rule::kH1:
      return
          "H1 — std::function in hot-path files (src/sim/, src/graph/,\n"
          "src/parallel/, src/obs/). std::function type-erases with a\n"
          "possible heap allocation per assignment and an indirect call\n"
          "per invocation; on event dispatch and graph kernels this is\n"
          "measurable. Remedy: sim::Callback (small-buffer, move-only),\n"
          "core::UniqueFunction (owning) or core::FunctionRef (borrowed).";
    case Rule::kH2:
      return
          "H2 — heap allocation in functions annotated `// mcs-lint: hot`.\n"
          "new / make_unique / make_shared, and push_back / emplace_back /\n"
          "resize without a prior reserve on the same receiver, can\n"
          "allocate on the critical path (event dispatch, per-edge graph\n"
          "kernels, metric record). Remedy: preallocate in setup, reserve\n"
          "before growth loops, or restructure; `allow(H2)` a reviewed\n"
          "cold branch.";
    case Rule::kH3:
      return
          "H3 — hotness is transitive (H2 made interprocedural).\n"
          "A `// mcs-lint: hot` annotation covers everything the function\n"
          "calls, not just its own body: a helper that allocates is on the\n"
          "hot path whether or not it carries the marker. H3 walks the\n"
          "call graph from every hot root and flags reachable allocation\n"
          "or std::function use, reporting the call chain that makes the\n"
          "site hot. Remedy: make the helper allocation-free, annotate it\n"
          "hot (opting into H2 locally), or justify with `allow(H3)` —\n"
          "which also stops propagation through that subtree (e.g. a\n"
          "deliberately amortized growth path).";
    case Rule::kS1:
      return
          "S1 — mutable static / namespace-scope state in src/.\n"
          "Shared mutable globals make runs order- and thread-count-\n"
          "dependent and break experiment replication. Remedy: pass state\n"
          "explicitly (context objects); deliberate process-wide\n"
          "singletons live in the reviewed whitelist\n"
          "(src/parallel/thread_pool.cpp) or carry `allow(S1)`.";
    case Rule::kL1:
      return
          "L1 — the DESIGN.md layer DAG, enforced on #include edges:\n"
          "  core <- sim/metrics <- graph/parallel/infra/workload\n"
          "       <- sched/failures/obs <- exp/check <- domains\n"
          "An include may point only at the same or a lower layer, and\n"
          "module-level include cycles are never legal. Upward includes\n"
          "are how 'the simulator knows about the scheduler' erosion\n"
          "starts; the paper's ecosystem framing depends on the kernel\n"
          "staying domain-agnostic. Remedy: invert the dependency (inject\n"
          "a callback / interface defined lower) or move the shared piece\n"
          "down a layer.";
  }
  return nullptr;
}

bool parse_rule(const std::string& name, Rule& out) {
  static const std::pair<const char*, Rule> kRules[] = {
      {"D1", Rule::kD1}, {"D2", Rule::kD2}, {"D3", Rule::kD3},
      {"D4", Rule::kD4}, {"H1", Rule::kH1}, {"H2", Rule::kH2},
      {"H3", Rule::kH3}, {"S1", Rule::kS1}, {"L1", Rule::kL1}};
  for (const auto& [n, r] : kRules) {
    if (name == n) {
      out = r;
      return true;
    }
  }
  return false;
}

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<Finding> analyze_file(const std::string& path_tag,
                                  const std::string& content) {
  return run_file_rules(index_file(path_tag, content));
}

RepoResult analyze_repo(const std::vector<FileInput>& files,
                        const RepoOptions& opt) {
  // Deterministic order: everything downstream (node ids, finding order,
  // DOT output) is keyed off the sorted file sequence.
  std::vector<const FileInput*> ordered;
  ordered.reserve(files.size());
  for (const FileInput& f : files) ordered.push_back(&f);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const FileInput* a, const FileInput* b) {
                     return a->path < b->path;
                   });

  // Pass 1 — index every file and run the per-file rules. Each slot is
  // written by exactly one worker; the merge below walks slots in path
  // order, so output is byte-identical at any job count.
  std::vector<FileIndex> indexes(ordered.size());
  std::vector<std::vector<Finding>> file_findings(ordered.size());
  const int jobs = std::max(1, opt.jobs);
  auto work = [&](std::atomic<std::size_t>& next) {
    for (std::size_t i = next.fetch_add(1); i < ordered.size();
         i = next.fetch_add(1)) {
      indexes[i] = index_file(ordered[i]->path, ordered[i]->content);
      file_findings[i] = run_file_rules(indexes[i]);
    }
  };
  if (jobs <= 1 || ordered.size() <= 1) {
    std::atomic<std::size_t> next{0};
    work(next);
  } else {
    std::atomic<std::size_t> next{0};
    std::vector<std::thread> pool;
    const int n = std::min<int>(jobs, static_cast<int>(ordered.size()));
    pool.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t) pool.emplace_back([&] { work(next); });
    for (std::thread& t : pool) t.join();
  }

  RepoResult result;
  for (std::vector<Finding>& fs : file_findings) {
    result.findings.insert(result.findings.end(),
                           std::make_move_iterator(fs.begin()),
                           std::make_move_iterator(fs.end()));
  }

  // Pass 2 — serial: call graph + include graph over the merged index.
  const CallGraph graph = CallGraph::build(indexes);
  std::vector<Finding> repo = run_repo_rules(indexes, graph);
  result.findings.insert(result.findings.end(),
                         std::make_move_iterator(repo.begin()),
                         std::make_move_iterator(repo.end()));
  std::stable_sort(result.findings.begin(), result.findings.end(),
                   [](const Finding& a, const Finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     const std::string ra = rule_name(a.rule);
                     const std::string rb = rule_name(b.rule);
                     if (ra != rb) return ra < rb;
                     return a.message < b.message;
                   });
  if (opt.want_callgraph) result.callgraph_dot = graph.to_dot();
  return result;
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" + rule_name(f.rule) +
         "] " + f.message;
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string to_sarif(const std::vector<Finding>& findings) {
  static const Rule kAll[] = {Rule::kD1, Rule::kD2, Rule::kD3,
                              Rule::kD4, Rule::kH1, Rule::kH2,
                              Rule::kH3, Rule::kS1, Rule::kL1};
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [{\n"
      << "    \"tool\": {\"driver\": {\n"
      << "      \"name\": \"mcs_lint\",\n"
      << "      \"informationUri\": "
         "\"https://github.com/mcs/mcs/blob/main/DESIGN.md\",\n"
      << "      \"rules\": [\n";
  for (std::size_t i = 0; i < std::size(kAll); ++i) {
    const char* text = explain(kAll[i]);
    std::string first_line(text);
    const std::size_t nl = first_line.find('\n');
    if (nl != std::string::npos) first_line.resize(nl);
    out << "        {\"id\": \"" << rule_name(kAll[i])
        << "\", \"shortDescription\": {\"text\": \"" << json_escape(first_line)
        << "\"}, \"fullDescription\": {\"text\": \"" << json_escape(text)
        << "\"}}" << (i + 1 < std::size(kAll) ? "," : "") << "\n";
  }
  out << "      ]\n"
      << "    }},\n"
      << "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    char fp[32];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(f.fingerprint));
    out << "      {\"ruleId\": \"" << rule_name(f.rule)
        << "\", \"level\": \"error\", \"message\": {\"text\": \""
        << json_escape(f.message)
        << "\"}, \"partialFingerprints\": {\"mcsLint/v1\": \"" << fp
        << "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \""
        << json_escape(f.file) << "\"}, \"region\": {\"startLine\": "
        << f.line << "}}}]}" << (i + 1 < findings.size() ? "," : "") << "\n";
  }
  out << "    ]\n  }]\n}\n";
  return out.str();
}

}  // namespace mcs::lint
