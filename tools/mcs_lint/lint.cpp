#include "lint.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <map>
#include <set>
#include <sstream>

namespace mcs::lint {

namespace {

// ---- lexer -----------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct, kString, kChar };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct Comment {
  int line;
  std::string text;
};

struct LexResult {
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char operators we must not split (a `=` check that matched the
/// first char of `==` would call every comparison a mutation).
constexpr std::array<const char*, 24> kMultiPunct = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^="};

LexResult lex(const std::string& src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: skip to end of line (honoring \-continuation).
    if (c == '#' && at_line_start) {
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      continue;
    }
    at_line_start = false;
    // Comments: collected (they carry the suppression/hot markers), never
    // tokenized.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({line, src.substr(start, i - start)});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t start = i + 2;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.comments.push_back({start_line, src.substr(start, i - start)});
      i = std::min(n, i + 2);
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < n && is_ident_char(src[i])) ++i;
      std::string word = src.substr(start, i - start);
      // String/char literal prefixes (R"...", u8"...", L'x', ...): swallow
      // the literal so its contents never reach the rules.
      if (i < n && (src[i] == '"' || src[i] == '\'')) {
        const bool is_raw = !word.empty() && word.back() == 'R';
        static const std::set<std::string> kPrefixes = {
            "R", "L", "u", "U", "u8", "LR", "uR", "UR", "u8R"};
        if (kPrefixes.count(word) != 0) {
          if (src[i] == '"' && is_raw) {
            // Raw string: R"delim( ... )delim"
            std::size_t d0 = i + 1;
            std::size_t p = d0;
            while (p < n && src[p] != '(') ++p;
            const std::string close =
                ")" + src.substr(d0, p - d0) + "\"";
            std::size_t end = src.find(close, p);
            if (end == std::string::npos) end = n;
            for (std::size_t k = i; k < std::min(n, end); ++k) {
              if (src[k] == '\n') ++line;
            }
            i = std::min(n, end + close.size());
            out.tokens.push_back({TokKind::kString, "<raw>", line});
            continue;
          }
          // Fall through to the normal literal scanner below.
          const char quote = src[i];
          ++i;
          while (i < n && src[i] != quote) {
            if (src[i] == '\\') ++i;
            if (i < n && src[i] == '\n') ++line;
            ++i;
          }
          if (i < n) ++i;
          out.tokens.push_back(
              {quote == '"' ? TokKind::kString : TokKind::kChar, "", line});
          continue;
        }
      }
      out.tokens.push_back({TokKind::kIdent, std::move(word), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t start = i;
      // Good enough for C++ numbers incl. 1'000, 0x1p3, 1e-9, 3.f.
      while (i < n &&
             (is_ident_char(src[i]) || src[i] == '\'' || src[i] == '.' ||
              ((src[i] == '+' || src[i] == '-') &&
               (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back({TokKind::kNumber, src.substr(start, i - start),
                            line});
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, "", line});
      continue;
    }
    // Punctuation (greedy multi-char match).
    std::string punct(1, c);
    for (const char* op : kMultiPunct) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (src.compare(i, len, op) == 0) {
        punct.assign(op);
        break;
      }
    }
    i += punct.size();
    out.tokens.push_back({TokKind::kPunct, std::move(punct), line});
  }
  return out;
}

// ---- markers ---------------------------------------------------------------

struct Markers {
  std::set<int> ordered_ok;             ///< lines with `mcs-lint: ordered-ok`
  std::set<int> hot;                    ///< lines with `mcs-lint: hot`
  std::map<int, std::set<std::string>> allow;  ///< line -> allowed rules
};

Markers parse_markers(const std::vector<Comment>& comments) {
  Markers m;
  for (const Comment& c : comments) {
    const std::size_t at = c.text.find("mcs-lint:");
    if (at == std::string::npos) continue;
    const std::string rest = c.text.substr(at + 9);
    if (rest.find("ordered-ok") != std::string::npos) {
      m.ordered_ok.insert(c.line);
    }
    if (rest.find("hot") != std::string::npos) m.hot.insert(c.line);
    std::size_t open = rest.find("allow(");
    while (open != std::string::npos) {
      const std::size_t close = rest.find(')', open);
      if (close == std::string::npos) break;
      std::string list = rest.substr(open + 6, close - open - 6);
      std::string name;
      std::istringstream split(list);
      while (std::getline(split, name, ',')) {
        name.erase(std::remove_if(name.begin(), name.end(), ::isspace),
                   name.end());
        if (!name.empty()) m.allow[c.line].insert(name);
      }
      open = rest.find("allow(", close);
    }
  }
  return m;
}

// ---- path policy -----------------------------------------------------------

struct PathPolicy {
  bool in_src = false;
  bool d1_exempt = false;   ///< src/sim/random.* and src/parallel/
  bool hot_dir = false;     ///< src/sim/, src/graph/, src/parallel/, src/obs/
  bool s1_whitelisted = false;
};

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

PathPolicy classify_path(const std::string& tag) {
  std::string t = tag;
  if (t.rfind("./", 0) == 0) t = t.substr(2);
  PathPolicy p;
  p.in_src = t.rfind("src/", 0) == 0 || contains(t, "/src/");
  p.d1_exempt =
      contains(t, "src/sim/random.") || contains(t, "src/parallel/");
  p.hot_dir = contains(t, "src/sim/") || contains(t, "src/graph/") ||
              contains(t, "src/parallel/") || contains(t, "src/obs/");
  // Deliberate process-wide singletons, reviewed in DESIGN.md: the shared
  // worker pool (parallel substrate) is the only allowed mutable static.
  p.s1_whitelisted = contains(t, "src/parallel/thread_pool.cpp");
  return p;
}

// ---- analysis --------------------------------------------------------------

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset"};

const std::set<std::string> kMutatingCalls = {
    "push_back", "emplace_back", "emplace", "insert", "erase", "clear"};

const std::set<std::string> kAssignOps = {
    "=",  "+=", "-=", "*=", "/=", "%=",  "&=",
    "|=", "^=", "<<=", ">>=", "++", "--"};

class Analyzer {
 public:
  Analyzer(std::string tag, const std::string& content)
      : tag_(std::move(tag)), policy_(classify_path(tag_)) {
    std::istringstream lines(content);
    std::string l;
    while (std::getline(lines, l)) lines_.push_back(std::move(l));
    LexResult lexed = lex(content);
    toks_ = std::move(lexed.tokens);
    markers_ = parse_markers(lexed.comments);
  }

  std::vector<Finding> run() {
    collect_unordered_vars();
    if (policy_.in_src && !policy_.d1_exempt) check_d1();
    if (policy_.in_src) check_d2();
    if (policy_.hot_dir) check_h1();
    check_h2_s1();  // single scope-tracking walk; S1 filtered by path inside
    std::stable_sort(findings_.begin(), findings_.end(),
                     [](const Finding& a, const Finding& b) {
                       return a.line < b.line;
                     });
    return std::move(findings_);
  }

 private:
  // A finding is dropped when `mcs-lint: allow(RULE)` sits on its line or
  // the line above (same convention as ordered-ok).
  bool allowed(Rule rule, int line) const {
    for (int l : {line, line - 1}) {
      auto it = markers_.allow.find(l);
      if (it != markers_.allow.end() &&
          it->second.count(rule_name(rule)) != 0) {
        return true;
      }
    }
    return false;
  }

  void report(Rule rule, int line, std::string message) {
    if (allowed(rule, line)) return;
    std::string line_text =
        line >= 1 && line <= static_cast<int>(lines_.size())
            ? lines_[static_cast<std::size_t>(line - 1)]
            : std::string();
    // Collapse whitespace so reindenting doesn't churn the baseline.
    std::string norm;
    for (char c : line_text) {
      if (std::isspace(static_cast<unsigned char>(c))) {
        if (!norm.empty() && norm.back() != ' ') norm.push_back(' ');
      } else {
        norm.push_back(c);
      }
    }
    std::uint64_t fp = fnv1a(tag_.data(), tag_.size());
    const char* rn = rule_name(rule);
    fp = fnv1a(rn, std::char_traits<char>::length(rn), fp);
    fp = fnv1a(norm.data(), norm.size(), fp);
    findings_.push_back({tag_, line, rule, std::move(message), fp});
  }

  const Token& tok(std::size_t i) const { return toks_[i]; }
  bool is(std::size_t i, const char* text) const {
    return i < toks_.size() && toks_[i].text == text;
  }

  /// Index of the matching closer for the opener at `i`, or toks_.size().
  std::size_t match_forward(std::size_t i, const char* open,
                            const char* close) const {
    int depth = 0;
    for (std::size_t k = i; k < toks_.size(); ++k) {
      if (toks_[k].text == open) ++depth;
      if (toks_[k].text == close && --depth == 0) return k;
    }
    return toks_.size();
  }

  // -- unordered-container variable discovery (feeds D2) --------------------

  void collect_unordered_vars() {
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kIdent) continue;
      const bool base_type = kUnorderedTypes.count(toks_[i].text) != 0;
      const bool alias_type = unordered_aliases_.count(toks_[i].text) != 0;
      if (!base_type && !alias_type) continue;
      // `using Alias = std::unordered_map<...>` registers the alias: look
      // back for `using X =` within a few tokens.
      if (base_type) {
        for (std::size_t k = (i > 6 ? i - 6 : 0); k + 2 < i; ++k) {
          if (toks_[k].text == "using" &&
              toks_[k + 1].kind == TokKind::kIdent &&
              toks_[k + 2].text == "=") {
            unordered_aliases_.insert(toks_[k + 1].text);
          }
        }
      }
      // Skip template args if present, then read the declared name.
      std::size_t p = i + 1;
      if (is(p, "<")) {
        int depth = 0;
        for (; p < toks_.size(); ++p) {
          if (toks_[p].text == "<") ++depth;
          else if (toks_[p].text == ">") { if (--depth == 0) { ++p; break; } }
          else if (toks_[p].text == ">>") { depth -= 2; if (depth <= 0) { ++p; break; } }
        }
      }
      while (p < toks_.size() &&
             (toks_[p].text == "&" || toks_[p].text == "*" ||
              toks_[p].text == "const")) {
        ++p;
      }
      if (p < toks_.size() && toks_[p].kind == TokKind::kIdent &&
          !is(p + 1, "(")) {  // `(` would make it a function return type
        unordered_vars_.insert(toks_[p].text);
      }
    }
  }

  bool names_unordered(std::size_t begin, std::size_t end) const {
    for (std::size_t k = begin; k < end; ++k) {
      if (toks_[k].kind != TokKind::kIdent) continue;
      if (kUnorderedTypes.count(toks_[k].text) != 0) return true;
      if (unordered_vars_.count(toks_[k].text) != 0) return true;
      if (unordered_aliases_.count(toks_[k].text) != 0) return true;
    }
    return false;
  }

  bool body_mutates(std::size_t begin, std::size_t end) const {
    for (std::size_t k = begin; k < end; ++k) {
      const Token& t = toks_[k];
      if (t.kind == TokKind::kPunct && kAssignOps.count(t.text) != 0) {
        return true;
      }
      if (t.kind == TokKind::kIdent && kMutatingCalls.count(t.text) != 0 &&
          is(k + 1, "(")) {
        return true;
      }
    }
    return false;
  }

  // -- D1: ambient time & randomness ----------------------------------------

  void check_d1() {
    static const std::set<std::string> kBannedIdents = {
        "random_device", "system_clock", "steady_clock",
        "high_resolution_clock"};
    for (std::size_t i = 0; i < toks_.size(); ++i) {
      if (toks_[i].kind != TokKind::kIdent) continue;
      const std::string& w = toks_[i].text;
      if (kBannedIdents.count(w) != 0) {
        report(Rule::kD1, toks_[i].line,
               "nondeterministic source `" + w +
                   "` outside src/sim/random.* — route randomness/time "
                   "through sim::Rng / Simulator::now()");
      } else if ((w == "rand" || w == "srand") && is(i + 1, "(") &&
                 !(i > 0 && (toks_[i - 1].text == "." ||
                             toks_[i - 1].text == "->"))) {
        report(Rule::kD1, toks_[i].line,
               "C `" + w + "()` is ambient global RNG — use sim::Rng");
      } else if (w == "time" && is(i + 1, "(") &&
                 (is(i + 2, "nullptr") || is(i + 2, "NULL") ||
                  is(i + 2, "0")) &&
                 !(i > 0 && (toks_[i - 1].text == "." ||
                             toks_[i - 1].text == "->"))) {
        report(Rule::kD1, toks_[i].line,
               "wall-clock `time()` — use Simulator::now() virtual time");
      }
    }
  }

  // -- D2: order-dependent iteration over unordered containers --------------

  void check_d2() {
    for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
      if (!(toks_[i].kind == TokKind::kIdent && toks_[i].text == "for" &&
            is(i + 1, "("))) {
        continue;
      }
      const std::size_t close = match_forward(i + 1, "(", ")");
      if (close >= toks_.size()) continue;
      // Split the header at a top-level `:` (range-for) if present.
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t k = i + 1; k < close; ++k) {
        if (toks_[k].text == "(" || toks_[k].text == "[" ||
            toks_[k].text == "<") {
          ++depth;
        } else if (toks_[k].text == ")" || toks_[k].text == "]" ||
                   toks_[k].text == ">") {
          --depth;
        } else if (toks_[k].text == ":" && depth == 1) {
          colon = k;
          break;
        }
      }
      bool unordered = false;
      if (colon != 0) {
        unordered = names_unordered(colon + 1, close);
      } else {
        // Iterator loop: `for (auto it = m.begin(); ...)` — the init
        // section (up to the first `;`) names the container and begin().
        std::size_t semi = close;
        for (std::size_t k = i + 2; k < close; ++k) {
          if (toks_[k].text == ";") { semi = k; break; }
        }
        bool has_begin = false;
        for (std::size_t k = i + 2; k < semi; ++k) {
          if (toks_[k].kind == TokKind::kIdent &&
              (toks_[k].text == "begin" || toks_[k].text == "cbegin")) {
            has_begin = true;
          }
        }
        unordered = has_begin && names_unordered(i + 2, semi);
      }
      if (!unordered) continue;
      // Locate the loop body.
      std::size_t body_begin = close + 1;
      std::size_t body_end;
      if (is(body_begin, "{")) {
        body_end = match_forward(body_begin, "{", "}");
      } else {
        body_end = body_begin;
        while (body_end < toks_.size() && toks_[body_end].text != ";") {
          ++body_end;
        }
      }
      if (!body_mutates(body_begin, body_end)) continue;
      const int line = toks_[i].line;
      if (markers_.ordered_ok.count(line) != 0 ||
          markers_.ordered_ok.count(line - 1) != 0) {
        continue;
      }
      report(Rule::kD2, line,
             "loop over std::unordered_* mutates/accumulates state — "
             "iteration order is bucket order (non-deterministic across "
             "implementations); use an ordered/insertion-ordered container "
             "or annotate a reviewed site with `// mcs-lint: ordered-ok`");
    }
  }

  // -- H1: std::function in hot-path files ----------------------------------

  void check_h1() {
    for (std::size_t i = 0; i + 2 < toks_.size(); ++i) {
      if (toks_[i].text == "std" && toks_[i + 1].text == "::" &&
          toks_[i + 2].text == "function") {
        report(Rule::kH1, toks_[i].line,
               "std::function in hot-path file — use sim::Callback, "
               "core::UniqueFunction (owning) or core::FunctionRef "
               "(borrowed)");
      }
    }
  }

  // -- H2 (hot functions) + S1 (mutable static state): scope walk -----------

  enum class ScopeKind { kNamespace, kClass, kFunction, kBlock };

  struct Scope {
    ScopeKind kind;
    bool hot = false;
    std::set<std::string> reserved;  ///< receivers with a prior .reserve()
  };

  ScopeKind classify_brace(std::size_t i, bool inside_function) const {
    if (i == 0) return ScopeKind::kBlock;
    // Walk back over trailing function decorations to find `)` / `]`.
    static const std::set<std::string> kSkippable = {
        "const", "noexcept", "override", "final",    "mutable",
        "->",    "::",       "<",       ">",         "&",
        "*",     ",",        ":",        "constexpr", "&&"};
    std::size_t k = i;  // token index just before `{` is k-1
    std::size_t steps = 0;
    while (k > 0 && steps++ < 24) {
      const Token& t = toks_[k - 1];
      if (t.text == ")") {
        // Find the matching `(`, then the token before it.
        int depth = 0;
        std::size_t p = k - 1;
        for (;; --p) {
          if (toks_[p].text == ")") ++depth;
          if (toks_[p].text == "(" && --depth == 0) break;
          if (p == 0) break;
        }
        static const std::set<std::string> kControl = {
            "if", "for", "while", "switch", "catch"};
        if (p > 0) {
          const Token& before = toks_[p - 1];
          if (before.kind == TokKind::kIdent &&
              kControl.count(before.text) != 0) {
            return ScopeKind::kBlock;
          }
        }
        return ScopeKind::kFunction;
      }
      if (t.text == "]") return ScopeKind::kFunction;  // captureless lambda
      if (t.kind == TokKind::kIdent) {
        if (t.text == "namespace") return ScopeKind::kNamespace;
        if (t.text == "class" || t.text == "struct" || t.text == "union" ||
            t.text == "enum") {
          return ScopeKind::kClass;
        }
        if (t.text == "else" || t.text == "do" || t.text == "try") {
          return ScopeKind::kBlock;
        }
        if (kSkippable.count(t.text) == 0 &&
            !(k >= 2 && (toks_[k - 2].text == "::" ||
                         toks_[k - 2].text == "namespace" ||
                         toks_[k - 2].text == "class" ||
                         toks_[k - 2].text == "struct" ||
                         toks_[k - 2].text == "enum"))) {
          // A bare identifier before `{` with no better evidence: keep
          // scanning (could be `enum class X : std::uint8_t {`).
        }
        --k;
        continue;
      }
      if (t.kind == TokKind::kPunct && kSkippable.count(t.text) != 0) {
        --k;
        continue;
      }
      // `= {`, `, {`, `( {`, `return {` ... : braced initializer.
      return ScopeKind::kBlock;
    }
    return inside_function ? ScopeKind::kBlock : ScopeKind::kNamespace;
  }

  void check_h2_s1() {
    std::vector<Scope> stack;
    bool pending_hot = false;
    int last_marker_line = -1;

    auto inside_function = [&] {
      for (const Scope& s : stack) {
        if (s.kind == ScopeKind::kFunction) return true;
      }
      return false;
    };
    auto in_hot = [&] { return !stack.empty() && stack.back().hot; };
    auto function_scope = [&]() -> Scope* {
      for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
        if (it->kind == ScopeKind::kFunction) return &*it;
      }
      return nullptr;
    };

    for (std::size_t i = 0; i < toks_.size(); ++i) {
      const Token& t = toks_[i];
      // Arm the hot marker when we cross its line.
      if (!markers_.hot.empty() && t.line != last_marker_line) {
        if (markers_.hot.count(t.line) != 0 ||
            markers_.hot.count(t.line - 1) != 0) {
          pending_hot = true;
          last_marker_line = t.line;
        }
      }

      if (t.text == "{" && t.kind == TokKind::kPunct) {
        const ScopeKind kind = classify_brace(i, inside_function());
        Scope s;
        s.kind = kind;
        s.hot = (!stack.empty() && stack.back().hot);
        if (kind == ScopeKind::kFunction && pending_hot) {
          s.hot = true;
          pending_hot = false;
        }
        stack.push_back(std::move(s));
        continue;
      }
      if (t.text == "}" && t.kind == TokKind::kPunct) {
        if (!stack.empty()) stack.pop_back();
        continue;
      }

      // S1 — mutable static / namespace-scope state (src/ only).
      if (policy_.in_src && !policy_.s1_whitelisted &&
          t.kind == TokKind::kIdent &&
          (t.text == "static" || t.text == "thread_local")) {
        analyze_static_decl(i);
      }

      // H2 — allocation in hot code.
      if (!in_hot()) continue;
      if (t.kind == TokKind::kIdent && t.text == "new" &&
          !(i > 0 && toks_[i - 1].kind == TokKind::kIdent)) {
        report(Rule::kH2, t.line,
               "heap allocation (`new`) in function marked `mcs-lint: hot`");
      } else if (t.kind == TokKind::kIdent &&
                 (t.text == "make_unique" || t.text == "make_shared") &&
                 (is(i + 1, "(") || is(i + 1, "<"))) {
        report(Rule::kH2, t.line,
               "heap allocation (`" + t.text +
                   "`) in function marked `mcs-lint: hot`");
      } else if (t.kind == TokKind::kIdent && t.text == "reserve" &&
                 is(i + 1, "(") && i >= 2 &&
                 (toks_[i - 1].text == "." || toks_[i - 1].text == "->") &&
                 toks_[i - 2].kind == TokKind::kIdent) {
        if (Scope* f = function_scope()) f->reserved.insert(toks_[i - 2].text);
      } else if (t.kind == TokKind::kIdent &&
                 (t.text == "push_back" || t.text == "emplace_back" ||
                  t.text == "resize") &&
                 is(i + 1, "(") && i >= 1 &&
                 (toks_[i - 1].text == "." || toks_[i - 1].text == "->")) {
        std::string receiver =
            i >= 2 && toks_[i - 2].kind == TokKind::kIdent ? toks_[i - 2].text
                                                           : std::string();
        Scope* f = function_scope();
        const bool reserved =
            f != nullptr && !receiver.empty() &&
            f->reserved.count(receiver) != 0;
        if (!reserved) {
          report(Rule::kH2, t.line,
                 "`" + t.text + "` without a prior `" +
                     (receiver.empty() ? std::string("<receiver>")
                                       : receiver) +
                     ".reserve(...)` in this hot function — growth "
                     "reallocates on the hot path");
        }
      }
    }
  }

  /// Looks ahead from a `static` / `thread_local` keyword and reports S1
  /// for mutable variable declarations (functions and `static const/
  /// constexpr` are fine).
  void analyze_static_decl(std::size_t i) {
    bool saw_const = false;
    // `thread_local static` / `static thread_local` — scan one joined decl.
    std::size_t k = i + 1;
    int angle_depth = 0;
    for (; k < toks_.size() && k < i + 64; ++k) {
      const Token& t = toks_[k];
      if (t.text == "<") ++angle_depth;
      else if (t.text == ">") --angle_depth;
      else if (t.text == ">>") angle_depth -= 2;
      if (angle_depth > 0) continue;
      if (t.text == "const" || t.text == "constexpr" ||
          t.text == "constinit" || t.text == "consteval") {
        saw_const = true;
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum" || t.text == "using" || t.text == "assert") {
        return;  // not a variable declaration
      }
      if (t.text == "(") return;  // function declaration/definition
      if (t.text == ";" || t.text == "=" || t.text == "{") break;
    }
    if (saw_const) return;
    report(Rule::kS1, toks_[i].line,
           "mutable static state — shared mutable globals make runs "
           "order- and thread-count-dependent; pass state explicitly or "
           "whitelist a reviewed singleton");
  }

  std::string tag_;
  PathPolicy policy_;
  std::vector<std::string> lines_;
  std::vector<Token> toks_;
  Markers markers_;
  std::set<std::string> unordered_vars_;
  std::set<std::string> unordered_aliases_;
  std::vector<Finding> findings_;
};

}  // namespace

const char* rule_name(Rule rule) {
  switch (rule) {
    case Rule::kD1: return "D1";
    case Rule::kD2: return "D2";
    case Rule::kH1: return "H1";
    case Rule::kH2: return "H2";
    case Rule::kS1: return "S1";
  }
  return "??";
}

std::uint64_t fnv1a(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::vector<Finding> analyze_file(const std::string& path_tag,
                                  const std::string& content) {
  return Analyzer(path_tag, content).run();
}

std::string format_finding(const Finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": [" +
         rule_name(f.rule) + "] " + f.message;
}

}  // namespace mcs::lint
