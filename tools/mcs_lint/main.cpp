// mcs_lint CLI — see lint.hpp for the rule set.
//
//   mcs_lint [options] <paths...>         lint files/directories
//     --jobs N                 index files on N threads (default 1); the
//                              merge is path-ordered, so output is
//                              byte-identical at any job count
//     --baseline FILE          suppress findings recorded in FILE (ratchet)
//     --write-baseline FILE    record current findings to FILE and exit 0
//     --callgraph FILE         dump the repo call graph as Graphviz DOT
//     --sarif FILE             also write findings as SARIF 2.1.0 (CI
//                              annotation); applied *after* the baseline
//     --explain RULE           print the rule's rationale + remedy, exit 0
//     --fix-suppressions       append suppression comments to offending
//                              lines in place (ordered-ok for D2,
//                              allow(RULE) otherwise)
//
// Exit code: 0 = clean (after baseline), 1 = findings, 2 = usage/IO error.
// Run from the repository root so path tags are repo-relative
// (`build/tools/mcs_lint src bench tests tools`); the `lint.tree` ctest
// and the `lint` CMake target do exactly that.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "lint.hpp"

namespace fs = std::filesystem;
using mcs::lint::FileInput;
using mcs::lint::Finding;

namespace {

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

std::vector<std::string> collect_files(const std::vector<std::string>& paths,
                                       bool& ok) {
  std::vector<std::string> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end;
           it.increment(ec)) {
        if (!ec && it->is_regular_file() && lintable(it->path())) {
          files.push_back(it->path().generic_string());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(fs::path(p).generic_string());
    } else {
      std::cerr << "mcs_lint: no such file or directory: " << p << "\n";
      ok = false;
    }
  }
  std::sort(files.begin(), files.end());  // deterministic report order
  return files;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "mcs_lint: cannot read " << path << "\n";
    ok = false;
    return {};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "mcs_lint: cannot write " << path << "\n";
    return false;
  }
  out << content;
  return true;
}

std::string fingerprint_key(const Finding& f) {
  std::ostringstream key;
  key << mcs::lint::rule_name(f.rule) << " " << std::hex << f.fingerprint;
  return key.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string baseline_path;
  std::string write_baseline_path;
  std::string callgraph_path;
  std::string sarif_path;
  bool fix_suppressions = false;
  int jobs = 1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--write-baseline" && i + 1 < argc) {
      write_baseline_path = argv[++i];
    } else if (arg == "--callgraph" && i + 1 < argc) {
      callgraph_path = argv[++i];
    } else if (arg == "--sarif" && i + 1 < argc) {
      sarif_path = argv[++i];
    } else if (arg == "--jobs" && i + 1 < argc) {
      try {
        jobs = std::stoi(argv[++i]);
      } catch (...) {
        jobs = 0;
      }
      if (jobs < 1) {
        std::cerr << "mcs_lint: --jobs needs a positive integer\n";
        return 2;
      }
    } else if (arg == "--explain" && i + 1 < argc) {
      mcs::lint::Rule rule;
      const std::string name = argv[++i];
      if (!mcs::lint::parse_rule(name, rule)) {
        std::cerr << "mcs_lint: unknown rule " << name
                  << " (rules: D1 D2 D3 D4 H1 H2 H3 S1 L1)\n";
        return 2;
      }
      std::cout << mcs::lint::explain(rule) << "\n";
      return 0;
    } else if (arg == "--fix-suppressions") {
      fix_suppressions = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: mcs_lint [--jobs N] [--baseline FILE] "
                   "[--write-baseline FILE] [--callgraph FILE] "
                   "[--sarif FILE] [--explain RULE] [--fix-suppressions] "
                   "<paths...>\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mcs_lint: unknown option " << arg << "\n";
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    std::cerr << "usage: mcs_lint [options] <paths...>\n";
    return 2;
  }

  bool io_ok = true;
  const std::vector<std::string> files = collect_files(paths, io_ok);

  std::vector<FileInput> inputs;
  inputs.reserve(files.size());
  for (const std::string& file : files) {
    inputs.push_back({file, read_file(file, io_ok)});
  }
  if (!io_ok) return 2;

  mcs::lint::RepoOptions opt;
  opt.jobs = jobs;
  opt.want_callgraph = !callgraph_path.empty();
  mcs::lint::RepoResult result = mcs::lint::analyze_repo(inputs, opt);
  std::vector<Finding>& findings = result.findings;

  if (!callgraph_path.empty() &&
      !write_file(callgraph_path, result.callgraph_dot)) {
    return 2;
  }

  if (!write_baseline_path.empty()) {
    std::ostringstream out;
    out << "# mcs-lint baseline — accepted debt; burn down, never add.\n";
    for (const Finding& f : findings) {
      out << fingerprint_key(f) << " " << f.file << ":" << f.line << "\n";
    }
    if (!write_file(write_baseline_path, out.str())) return 2;
    std::cout << "mcs_lint: wrote " << findings.size() << " baseline entr"
              << (findings.size() == 1 ? "y" : "ies") << " to "
              << write_baseline_path << "\n";
    return 0;
  }

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::cerr << "mcs_lint: cannot read baseline " << baseline_path << "\n";
      return 2;
    }
    // Multiset keyed by (rule, fingerprint): each entry forgives one
    // finding, so fixing an instance ratchets the count down.
    std::map<std::string, int> budget;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      std::istringstream fields(line);
      std::string rule, fp;
      if (fields >> rule >> fp) ++budget[rule + " " + fp];
    }
    std::vector<Finding> fresh;
    for (Finding& f : findings) {
      auto it = budget.find(fingerprint_key(f));
      if (it != budget.end() && it->second > 0) {
        --it->second;
        continue;
      }
      fresh.push_back(std::move(f));
    }
    findings = std::move(fresh);
  }

  if (!sarif_path.empty() &&
      !write_file(sarif_path, mcs::lint::to_sarif(findings))) {
    return 2;
  }

  if (fix_suppressions) {
    std::map<std::string, std::map<int, const Finding*>> by_file;
    for (const Finding& f : findings) by_file[f.file][f.line] = &f;
    for (const auto& [file, by_line] : by_file) {
      bool ok = true;
      const std::string content = read_file(file, ok);
      if (!ok) return 2;
      std::vector<std::string> lines;
      std::istringstream split(content);
      std::string l;
      while (std::getline(split, l)) lines.push_back(std::move(l));
      for (const auto& [line_no, finding] : by_line) {
        if (line_no < 1 || line_no > static_cast<int>(lines.size())) continue;
        std::string& target = lines[static_cast<std::size_t>(line_no - 1)];
        const std::string marker =
            finding->rule == mcs::lint::Rule::kD2
                ? std::string("  // mcs-lint: ordered-ok")
                : std::string("  // mcs-lint: allow(") +
                      mcs::lint::rule_name(finding->rule) + ")";
        if (target.find("mcs-lint:") == std::string::npos) target += marker;
      }
      std::ofstream out(file, std::ios::binary | std::ios::trunc);
      for (const std::string& out_line : lines) out << out_line << "\n";
      std::cout << "mcs_lint: suppressed " << by_line.size()
                << " finding(s) in " << file << "\n";
    }
    return 0;
  }

  for (const Finding& f : findings) {
    std::cout << mcs::lint::format_finding(f) << "\n";
  }
  if (findings.empty()) {
    std::cout << "mcs_lint: clean (" << files.size() << " files)\n";
    return 0;
  }
  std::cout << "mcs_lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << " across " << files.size()
            << " files\n";
  return 1;
}
