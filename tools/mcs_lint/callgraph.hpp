// mcs_lint pass 2 structures — the repo-wide call graph and the include
// graph with the DESIGN.md layer DAG.
//
// Call resolution is name-based and deliberately over-approximate: a call
// site links to *every* indexed function whose unqualified name matches
// (virtual dispatch, overloads, and same-named helpers all collapse onto
// one node set). Over-approximation is the right polarity for H3/D4 —
// reachability rules — because a missed edge hides a real regression
// while a spurious edge at worst asks for a reviewed `allow(...)`.
// Lambdas resolve only within their defining file (their synthesized
// `<lambda@LINE>` names are file-local).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "index.hpp"

namespace mcs::lint {

class CallGraph {
 public:
  struct Node {
    const FileIndex* file = nullptr;
    const FunctionInfo* fn = nullptr;
  };

  /// Builds nodes and edges over all indexed files. The files vector must
  /// outlive the graph (nodes point into it). Node order is (file order,
  /// function order) — deterministic because files arrive sorted by path.
  static CallGraph build(const std::vector<FileIndex>& files);

  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  [[nodiscard]] const std::vector<int>& edges(std::size_t node) const {
    return out_[node];
  }

  /// Breadth-first reachability from `roots`. `blocked[n]` nodes are
  /// neither visited nor expanded (used for `allow(...)` propagation
  /// stops). Returns the BFS parent array: -1 for unreached nodes,
  /// self-index for roots.
  [[nodiscard]] std::vector<int> reach(const std::vector<int>& roots,
                                       const std::vector<char>& blocked) const;

  /// `root -> ... -> node` chain string from a reach() parent array.
  [[nodiscard]] std::string chain(const std::vector<int>& parent,
                                  int node) const;

  /// Graphviz dump: one subgraph per file, hot roots filled. Deterministic.
  [[nodiscard]] std::string to_dot() const;

 private:
  std::vector<Node> nodes_;
  std::vector<std::vector<int>> out_;
};

// ---- layer DAG (rule L1) ----------------------------------------------------

/// DESIGN.md layer rank of a src/ module; -1 when the module is unknown
/// (no layering obligation). Lower rank = lower layer. An include edge
/// may only point at the same or a lower rank:
///   0 core | 1 sim metrics | 2 graph parallel infra workload
///   3 sched failures obs   | 4 exp check
///   5 autoscale bigdata evolve faas gaming p2p
[[nodiscard]] int layer_rank(const std::string& module);

/// Human-readable name of a layer rank ("domain ecosystems", ...).
[[nodiscard]] const char* layer_name(int rank);

struct LayerViolation {
  std::string file;   ///< including file
  int line = 0;       ///< line of the #include
  std::string chain;  ///< `sched -> exp` or a full cycle `sim -> metrics -> sim`
  std::string message;
};

/// Checks every src-internal include edge against the layer DAG and
/// detects module-level include cycles (reported once per cycle, anchored
/// at its lexicographically first edge).
[[nodiscard]] std::vector<LayerViolation> check_layers(
    const std::vector<FileIndex>& files);

}  // namespace mcs::lint
