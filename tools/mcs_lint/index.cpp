#include "index.hpp"

#include <algorithm>
#include <array>
#include <cctype>
#include <sstream>

namespace mcs::lint {

namespace {

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Multi-char operators we must not split (a `=` check that matched the
/// first char of `==` would call every comparison a mutation).
constexpr std::array<const char*, 24> kMultiPunct = {
    "<<=", ">>=", "->*", "...", "::", "->", "++", "--", "<<", ">>",
    "<=",  ">=",  "==",  "!=",  "&&", "||", "+=", "-=", "*=", "/=",
    "%=",  "&=",  "|=",  "^="};

}  // namespace

LexResult lex(const std::string& src) {
  LexResult out;
  const std::size_t n = src.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen so far on this line

  auto peek = [&](std::size_t k) -> char {
    return i + k < n ? src[i + k] : '\0';
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: capture #include targets (the L1 layer
    // checker consumes them), then skip to end of line (honoring
    // \-continuation).
    if (c == '#' && at_line_start) {
      const std::size_t dir_start = i;
      const int dir_line = line;
      while (i < n && src[i] != '\n') {
        if (src[i] == '\\' && peek(1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        ++i;
      }
      const std::string dir = src.substr(dir_start, i - dir_start);
      std::size_t p = dir.find("include");
      if (p != std::string::npos) {
        p += 7;
        while (p < dir.size() &&
               std::isspace(static_cast<unsigned char>(dir[p]))) {
          ++p;
        }
        if (p < dir.size() && (dir[p] == '"' || dir[p] == '<')) {
          const char close = dir[p] == '"' ? '"' : '>';
          const std::size_t end = dir.find(close, p + 1);
          if (end != std::string::npos) {
            out.includes.push_back(
                {dir_line, dir.substr(p + 1, end - p - 1), dir[p] == '<'});
          }
        }
      }
      continue;
    }
    at_line_start = false;
    // Comments: collected (they carry the suppression/hot markers), never
    // tokenized.
    if (c == '/' && peek(1) == '/') {
      std::size_t start = i + 2;
      while (i < n && src[i] != '\n') ++i;
      out.comments.push_back({line, src.substr(start, i - start)});
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      std::size_t start = i + 2;
      i += 2;
      while (i < n && !(src[i] == '*' && peek(1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      out.comments.push_back({start_line, src.substr(start, i - start)});
      i = std::min(n, i + 2);
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < n && is_ident_char(src[i])) ++i;
      std::string word = src.substr(start, i - start);
      // String/char literal prefixes (R"...", u8"...", L'x', ...): swallow
      // the literal so its contents never reach the rules.
      if (i < n && (src[i] == '"' || src[i] == '\'')) {
        const bool is_raw = !word.empty() && word.back() == 'R';
        static const std::set<std::string> kPrefixes = {
            "R", "L", "u", "U", "u8", "LR", "uR", "UR", "u8R"};
        if (kPrefixes.count(word) != 0) {
          if (src[i] == '"' && is_raw) {
            // Raw string: R"delim( ... )delim"
            std::size_t d0 = i + 1;
            std::size_t p = d0;
            while (p < n && src[p] != '(') ++p;
            const std::string close = ")" + src.substr(d0, p - d0) + "\"";
            std::size_t end = src.find(close, p);
            if (end == std::string::npos) end = n;
            for (std::size_t k = i; k < std::min(n, end); ++k) {
              if (src[k] == '\n') ++line;
            }
            i = std::min(n, end + close.size());
            out.tokens.push_back({TokKind::kString, "<raw>", line});
            continue;
          }
          // Fall through to the normal literal scanner below.
          const char quote = src[i];
          ++i;
          while (i < n && src[i] != quote) {
            if (src[i] == '\\') ++i;
            if (i < n && src[i] == '\n') ++line;
            ++i;
          }
          if (i < n) ++i;
          out.tokens.push_back(
              {quote == '"' ? TokKind::kString : TokKind::kChar, "", line});
          continue;
        }
      }
      out.tokens.push_back({TokKind::kIdent, std::move(word), line});
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))))) {
      std::size_t start = i;
      // Good enough for C++ numbers incl. 1'000, 0x1p3, 1e-9, 3.f.
      while (i < n &&
             (is_ident_char(src[i]) || src[i] == '\'' || src[i] == '.' ||
              ((src[i] == '+' || src[i] == '-') &&
               (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                src[i - 1] == 'p' || src[i - 1] == 'P')))) {
        ++i;
      }
      out.tokens.push_back(
          {TokKind::kNumber, src.substr(start, i - start), line});
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\') ++i;
        if (i < n && src[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar, "", line});
      continue;
    }
    // Punctuation (greedy multi-char match).
    std::string punct(1, c);
    for (const char* op : kMultiPunct) {
      const std::size_t len = std::char_traits<char>::length(op);
      if (src.compare(i, len, op) == 0) {
        punct.assign(op);
        break;
      }
    }
    i += punct.size();
    out.tokens.push_back({TokKind::kPunct, std::move(punct), line});
  }
  return out;
}

Markers parse_markers(const LexResult& lexed) {
  std::set<int> code_lines;
  for (const Token& t : lexed.tokens) code_lines.insert(t.line);
  std::set<int> comment_lines;
  for (const Comment& c : lexed.comments) comment_lines.insert(c.line);

  // A marker on a comment-only line governs the first code line after its
  // comment block: register it on the block's *last* line too, so rules'
  // line / line-1 checks reach it even when the justification wraps.
  const auto slide = [&](int line) {
    if (code_lines.count(line) != 0) return line;  // trailing marker
    while (comment_lines.count(line + 1) != 0 &&
           code_lines.count(line + 1) == 0) {
      ++line;
    }
    return line;
  };

  Markers m;
  for (const Comment& c : lexed.comments) {
    // Only dedicated marker comments count: the text must *start* with
    // `mcs-lint:`. Doc prose that mentions a marker (`` `mcs-lint: hot`
    // functions`` and the like) must not annotate anything.
    std::size_t at = 0;
    while (at < c.text.size() &&
           std::isspace(static_cast<unsigned char>(c.text[at]))) {
      ++at;
    }
    if (c.text.compare(at, 9, "mcs-lint:") != 0) continue;
    const std::string rest = c.text.substr(at + 9);
    std::size_t first = 0;
    while (first < rest.size() &&
           std::isspace(static_cast<unsigned char>(rest[first]))) {
      ++first;
    }
    const int tail = slide(c.line);
    if (rest.compare(first, 10, "ordered-ok") == 0) {
      m.ordered_ok.insert(c.line);
      m.ordered_ok.insert(tail);
    }
    // `hot` must be the marker's keyword, not a word inside an allow()
    // justification ("amortized growth off the hot path").
    if (rest.compare(first, 3, "hot") == 0 &&
        (first + 3 >= rest.size() ||
         !std::isalnum(static_cast<unsigned char>(rest[first + 3])))) {
      m.hot.insert(c.line);
      m.hot.insert(tail);
    }
    std::size_t open = rest.find("allow(");
    while (open != std::string::npos) {
      const std::size_t close = rest.find(')', open);
      if (close == std::string::npos) break;
      std::string list = rest.substr(open + 6, close - open - 6);
      std::string name;
      std::istringstream split(list);
      while (std::getline(split, name, ',')) {
        name.erase(std::remove_if(name.begin(), name.end(), ::isspace),
                   name.end());
        if (!name.empty()) {
          m.allow[c.line].insert(name);
          m.allow[tail].insert(name);
        }
      }
      open = rest.find("allow(", close);
    }
  }
  return m;
}

namespace {

bool contains(const std::string& s, const char* needle) {
  return s.find(needle) != std::string::npos;
}

}  // namespace

PathPolicy classify_path(const std::string& tag) {
  std::string t = tag;
  if (t.rfind("./", 0) == 0) t = t.substr(2);
  PathPolicy p;
  p.in_src = t.rfind("src/", 0) == 0 || contains(t, "/src/");
  p.d1_exempt =
      contains(t, "src/sim/random.") || contains(t, "src/parallel/");
  p.hot_dir = contains(t, "src/sim/") || contains(t, "src/graph/") ||
              contains(t, "src/parallel/") || contains(t, "src/obs/");
  // Deliberate process-wide singletons, reviewed in DESIGN.md: the shared
  // worker pool (parallel substrate) is the only allowed mutable static.
  p.s1_whitelisted = contains(t, "src/parallel/thread_pool.cpp");
  return p;
}

std::string module_of(const std::string& tag) {
  std::string t = tag;
  if (t.rfind("./", 0) == 0) t = t.substr(2);
  const std::size_t at = t.rfind("src/", 0) == 0 ? 4 : std::string::npos;
  if (at == std::string::npos) return {};
  const std::size_t slash = t.find('/', at);
  if (slash == std::string::npos) return {};
  return t.substr(at, slash - at);
}

// ---- the scope walker -------------------------------------------------------

namespace {

enum class ScopeKind { kNamespace, kClass, kFunction, kBlock };

/// Keywords and cast-ish constructs that look like `name(...)` but are
/// not calls, plus declaration heads that would pollute the call graph.
const std::set<std::string> kNotACall = {
    "if",        "for",         "while",     "switch",
    "return",    "sizeof",      "alignof",   "alignas",
    "decltype",  "catch",       "new",       "delete",
    "throw",     "case",        "co_await",  "co_return",
    "co_yield",  "assert",      "static_assert",
    "typeid",    "noexcept",    "operator",  "defined",
    "static_cast",  "dynamic_cast",  "reinterpret_cast",  "const_cast",
    "int",       "char",        "bool",      "double",
    "float",     "long",        "short",     "unsigned",
    "signed",    "void",        "auto",      "constexpr",
    "const",     "requires",    "explicit"};

/// D1's ambient-source identifiers, shared with the D4 fact collection.
const std::set<std::string> kBannedClocks = {
    "random_device", "system_clock", "steady_clock", "high_resolution_clock"};

class Indexer {
 public:
  Indexer(const std::string& path, const std::string& content)
      : out_() {
    out_.path = path;
    std::istringstream split(content);
    std::string l;
    while (std::getline(split, l)) out_.lines.push_back(std::move(l));
    LexResult lexed = lex(content);
    out_.tokens = std::move(lexed.tokens);
    out_.includes = std::move(lexed.includes);
    out_.markers = parse_markers(lexed);
  }

  FileIndex run() {
    walk();
    return std::move(out_);
  }

 private:
  struct Scope {
    ScopeKind kind;
    int func = -1;          ///< index into out_.functions, or -1
    std::string cls;        ///< class name when kind == kClass
    std::set<std::string> reserved;  ///< receivers with a prior .reserve()
  };

  /// A call to run_sweep / schedule_at / schedule_after whose argument
  /// list is still open: lambdas created inside it are determinism roots.
  struct RootRange {
    std::size_t end_tok;
    bool sweep;  ///< true: run_sweep cell; false: simulator callback
  };

  const Token& tok(std::size_t i) const { return out_.tokens[i]; }
  std::size_t size() const { return out_.tokens.size(); }
  bool is(std::size_t i, const char* text) const {
    return i < size() && out_.tokens[i].text == text;
  }

  std::size_t match_forward(std::size_t i, const char* open,
                            const char* close) const {
    int depth = 0;
    for (std::size_t k = i; k < size(); ++k) {
      if (out_.tokens[k].text == open) ++depth;
      if (out_.tokens[k].text == close && --depth == 0) return k;
    }
    return size();
  }

  bool inside_function() const {
    for (const Scope& s : stack_) {
      if (s.kind == ScopeKind::kFunction) return true;
    }
    return false;
  }

  int current_func() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == ScopeKind::kFunction) return it->func;
    }
    return -1;
  }

  Scope* function_scope() {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == ScopeKind::kFunction) return &*it;
    }
    return nullptr;
  }

  std::string enclosing_class() const {
    for (auto it = stack_.rbegin(); it != stack_.rend(); ++it) {
      if (it->kind == ScopeKind::kClass && !it->cls.empty()) return it->cls;
      if (it->kind == ScopeKind::kFunction) break;
    }
    return {};
  }

  /// Same heuristic as the original analyzer: walk back from the `{` over
  /// trailing function decorations to decide what kind of scope opens.
  ScopeKind classify_brace(std::size_t i) const {
    if (i == 0) return ScopeKind::kBlock;
    static const std::set<std::string> kSkippable = {
        "const", "noexcept", "override", "final",    "mutable",
        "->",    "::",       "<",       ">",         "&",
        "*",     ",",        ":",        "constexpr", "&&"};
    std::size_t k = i;  // token index just before `{` is k-1
    std::size_t steps = 0;
    while (k > 0 && steps++ < 24) {
      const Token& t = tok(k - 1);
      if (t.text == ")") {
        int depth = 0;
        std::size_t p = k - 1;
        for (;; --p) {
          if (tok(p).text == ")") ++depth;
          if (tok(p).text == "(" && --depth == 0) break;
          if (p == 0) break;
        }
        static const std::set<std::string> kControl = {
            "if", "for", "while", "switch", "catch"};
        if (p > 0) {
          std::size_t q = p - 1;
          // `if constexpr (...) {`: the keyword sits one further back.
          if (tok(q).text == "constexpr" && q > 0) --q;
          const Token& before = tok(q);
          if (before.kind == TokKind::kIdent &&
              kControl.count(before.text) != 0) {
            return ScopeKind::kBlock;
          }
        }
        return ScopeKind::kFunction;
      }
      if (t.text == "]") return ScopeKind::kFunction;  // captureless lambda
      if (t.kind == TokKind::kIdent) {
        if (t.text == "namespace") return ScopeKind::kNamespace;
        if (t.text == "class" || t.text == "struct" || t.text == "union" ||
            t.text == "enum") {
          return ScopeKind::kClass;
        }
        if (t.text == "else" || t.text == "do" || t.text == "try") {
          return ScopeKind::kBlock;
        }
        --k;
        continue;
      }
      if (t.kind == TokKind::kPunct && kSkippable.count(t.text) != 0) {
        --k;
        continue;
      }
      // `= {`, `, {`, `( {`, `return {` ... : braced initializer.
      return ScopeKind::kBlock;
    }
    return inside_function() ? ScopeKind::kBlock : ScopeKind::kNamespace;
  }

  /// For a Function scope opening at token `i` (the `{`), recover the
  /// function's name: find the parameter list's `(`, take the identifier
  /// chain before it. Returns false for lambdas / operators we name
  /// synthetically.
  bool function_name(std::size_t i, std::string& name,
                     std::string& qual) const {
    static const std::set<std::string> kSkippable = {
        "const", "noexcept", "override", "final", "mutable",
        "->",    "::",       "<",        ">",     "&",
        "*",     ",",        ":",        "constexpr", "&&"};
    std::size_t k = i;
    std::size_t steps = 0;
    while (k > 0 && steps++ < 24) {
      const Token& t = tok(k - 1);
      if (t.text == ")") {
        int depth = 0;
        std::size_t p = k - 1;
        for (;; --p) {
          if (tok(p).text == ")") ++depth;
          if (tok(p).text == "(" && --depth == 0) break;
          if (p == 0) break;
        }
        if (p == 0) return false;
        std::size_t q = p;  // token before `(` is q-1
        // Skip a template-argument list between the name and `(`:
        // `run_sweep<R>(...)` definitions don't occur, but
        // `operator()<T>` could; keep it simple and handle `>`-chains.
        if (q >= 1 && (tok(q - 1).text == ">" || tok(q - 1).text == ">>")) {
          int ad = 0;
          for (; q >= 1; --q) {
            const std::string& s = tok(q - 1).text;
            if (s == ">") ++ad;
            else if (s == ">>") ad += 2;
            else if (s == "<" && --ad <= 0) { --q; break; }
          }
        }
        if (q == 0 || tok(q - 1).kind != TokKind::kIdent) return false;
        if (kNotACall.count(tok(q - 1).text) != 0) return false;
        name = tok(q - 1).text;
        qual = name;
        // Collect `A::B::name` qualifiers.
        std::size_t r = q - 1;
        while (r >= 2 && tok(r - 1).text == "::" &&
               tok(r - 2).kind == TokKind::kIdent) {
          qual = tok(r - 2).text + "::" + qual;
          r -= 2;
        }
        return true;
      }
      if (t.text == "]") return false;  // lambda
      if (t.kind == TokKind::kIdent ||
          (t.kind == TokKind::kPunct && kSkippable.count(t.text) != 0)) {
        --k;
        continue;
      }
      return false;
    }
    return false;
  }

  void open_function(std::size_t i) {
    FunctionInfo fn;
    fn.line = tok(i).line;
    const int parent = current_func();
    fn.parent = parent;
    std::string name;
    std::string qual;
    if (function_name(i, name, qual)) {
      fn.name = std::move(name);
      fn.qual = std::move(qual);
      if (fn.qual.find("::") == std::string::npos) {
        const std::string cls = enclosing_class();
        if (!cls.empty()) fn.qual = cls + "::" + fn.qual;
      }
    } else {
      fn.is_lambda = true;
      fn.name = "<lambda@" + std::to_string(fn.line) + ">";
      fn.qual = parent >= 0 ? out_.functions[parent].qual + "::" + fn.name
                            : fn.name;
      for (const RootRange& r : root_ranges_) {
        if (i < r.end_tok) {
          (r.sweep ? fn.sweep_root : fn.sim_callback_root) = true;
        }
      }
    }
    fn.hot_annotated = pending_hot_;
    fn.hot = pending_hot_ ||
             (parent >= 0 && out_.functions[parent].hot);
    pending_hot_ = false;
    const int idx = static_cast<int>(out_.functions.size());
    out_.functions.push_back(std::move(fn));
    // The enclosing function "calls" the lambda/local function: either it
    // invokes it directly or hands it to a callee that will — a sound
    // over-approximation for reachability.
    if (parent >= 0) {
      out_.functions[parent].calls.push_back(
          {out_.functions[idx].name, out_.functions[idx].line});
    }
    Scope s;
    s.kind = ScopeKind::kFunction;
    s.func = idx;
    stack_.push_back(std::move(s));
  }

  void open_class(std::size_t i) {
    Scope s;
    s.kind = ScopeKind::kClass;
    // Walk back for `class|struct NAME [final] [: bases] {`.
    for (std::size_t k = i; k > 0 && k + 24 > i; --k) {
      const Token& t = tok(k - 1);
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum") {
        if (k < size() && tok(k).kind == TokKind::kIdent) {
          std::size_t nm = k;
          if (tok(nm).text == "class" || tok(nm).text == "struct") ++nm;
          if (nm < size() && tok(nm).kind == TokKind::kIdent) {
            s.cls = tok(nm).text;
          }
        }
        break;
      }
    }
    stack_.push_back(std::move(s));
  }

  /// Looks ahead from a `static` / `thread_local` keyword and records an
  /// S1 candidate for mutable variable declarations (functions and
  /// `static const/constexpr` are fine).
  void scan_static_decl(std::size_t i) {
    bool saw_const = false;
    std::size_t k = i + 1;
    int angle_depth = 0;
    for (; k < size() && k < i + 64; ++k) {
      const Token& t = tok(k);
      if (t.text == "<") ++angle_depth;
      else if (t.text == ">") --angle_depth;
      else if (t.text == ">>") angle_depth -= 2;
      if (angle_depth > 0) continue;
      if (t.text == "const" || t.text == "constexpr" ||
          t.text == "constinit" || t.text == "consteval") {
        saw_const = true;
      }
      if (t.text == "class" || t.text == "struct" || t.text == "union" ||
          t.text == "enum" || t.text == "using" || t.text == "assert") {
        return;  // not a variable declaration
      }
      if (t.text == "(") return;  // function declaration/definition
      if (t.text == ";" || t.text == "=" || t.text == "{") break;
    }
    if (saw_const) return;
    out_.statics.push_back({tok(i).line, "mutable static state"});
  }

  void record_wallclock(int line, std::string what) {
    const int f = current_func();
    if (f >= 0) {
      out_.functions[f].wallclock.push_back({line, std::move(what)});
    } else {
      out_.toplevel_wallclock.push_back({line, std::move(what)});
    }
  }

  /// Skips a balanced `<...>` starting at `i` (which must be `<`) and
  /// returns the index just past the matching `>`; size() when it does
  /// not look like a template argument list.
  std::size_t skip_template_args(std::size_t i) const {
    int depth = 0;
    for (std::size_t k = i; k < size() && k < i + 64; ++k) {
      const std::string& s = tok(k).text;
      if (s == "<") ++depth;
      else if (s == ">") { if (--depth == 0) return k + 1; }
      else if (s == ">>") { depth -= 2; if (depth <= 0) return k + 1; }
      else if (s == ";" || s == "{" || s == "}") return size();
    }
    return size();
  }

  void walk() {
    int last_marker_line = -1;
    for (std::size_t i = 0; i < size(); ++i) {
      const Token& t = tok(i);
      // Arm the hot marker when we cross its line; the next function
      // scope consumes it (open_function clears pending_hot_).
      if (!out_.markers.hot.empty() && t.line != last_marker_line) {
        if (out_.markers.hot.count(t.line) != 0 ||
            out_.markers.hot.count(t.line - 1) != 0) {
          pending_hot_ = true;
          last_marker_line = t.line;
        }
      }

      if (t.kind == TokKind::kPunct && t.text == "{") {
        const ScopeKind kind = classify_brace(i);
        switch (kind) {
          case ScopeKind::kFunction:
            open_function(i);
            break;
          case ScopeKind::kClass:
            open_class(i);
            break;
          default: {
            Scope s;
            s.kind = kind;
            stack_.push_back(std::move(s));
            break;
          }
        }
        continue;
      }
      if (t.kind == TokKind::kPunct && t.text == "}") {
        if (!stack_.empty()) stack_.pop_back();
        continue;
      }
      if (t.kind != TokKind::kIdent) continue;

      // S1 candidates (reported by the rules pass for src/ files only).
      if (t.text == "static" || t.text == "thread_local") {
        scan_static_decl(i);
      }

      // D1/D4 facts: ambient time & randomness.
      if (kBannedClocks.count(t.text) != 0) {
        record_wallclock(t.line, "nondeterministic source `" + t.text + "`");
      } else if ((t.text == "rand" || t.text == "srand") && is(i + 1, "(") &&
                 !(i > 0 && (tok(i - 1).text == "." ||
                             tok(i - 1).text == "->"))) {
        record_wallclock(t.line, "C `" + t.text + "()` ambient global RNG");
      } else if (t.text == "time" && is(i + 1, "(") &&
                 (is(i + 2, "nullptr") || is(i + 2, "NULL") ||
                  is(i + 2, "0")) &&
                 !(i > 0 && (tok(i - 1).text == "." ||
                             tok(i - 1).text == "->"))) {
        record_wallclock(t.line, "wall-clock `time()`");
      }

      // std::function fact (H1 per-file in hot dirs; H3 transitively).
      if (t.text == "std" && is(i + 1, "::") && is(i + 2, "function")) {
        const int f = current_func();
        if (f >= 0) {
          out_.functions[f].std_function.push_back(
              {t.line, "`std::function`"});
        }
        // Outside functions H1 still fires lexically from the rules pass;
        // H3 only chases function bodies.
      }

      const int f = current_func();
      if (f < 0) continue;
      FunctionInfo& fn = out_.functions[f];
      Scope* fscope = function_scope();

      // Allocation facts (H2 for annotated-hot functions, H3 when a hot
      // root reaches the function transitively).
      if (t.text == "new" &&
          !(i > 0 && tok(i - 1).kind == TokKind::kIdent) &&
          !is(i + 1, "(")) {  // `new (buf) T` placement form doesn't allocate
        fn.allocs.push_back({t.line, "heap allocation (`new`)"});
        continue;
      }
      if ((t.text == "make_unique" || t.text == "make_shared") &&
          (is(i + 1, "(") || is(i + 1, "<"))) {
        fn.allocs.push_back({t.line, "heap allocation (`" + t.text + "`)"});
        // Falls through: also a call site (resolves nowhere in-tree).
      }
      if (t.text == "reserve" && is(i + 1, "(") && i >= 2 &&
          (tok(i - 1).text == "." || tok(i - 1).text == "->") &&
          tok(i - 2).kind == TokKind::kIdent) {
        if (fscope != nullptr) fscope->reserved.insert(tok(i - 2).text);
      } else if ((t.text == "push_back" || t.text == "emplace_back" ||
                  t.text == "resize") &&
                 is(i + 1, "(") && i >= 1 &&
                 (tok(i - 1).text == "." || tok(i - 1).text == "->")) {
        const std::string receiver =
            i >= 2 && tok(i - 2).kind == TokKind::kIdent ? tok(i - 2).text
                                                         : std::string();
        const bool reserved = fscope != nullptr && !receiver.empty() &&
                              fscope->reserved.count(receiver) != 0;
        if (!reserved) {
          fn.allocs.push_back(
              {t.line,
               "`" + t.text + "` without a prior `" +
                   (receiver.empty() ? std::string("<receiver>") : receiver) +
                   ".reserve(...)` in this function"});
        }
      }

      // Call sites: `name(` and `name<...>(`.
      if (kNotACall.count(t.text) != 0) continue;
      std::size_t after = i + 1;
      if (is(after, "<")) {
        const std::size_t past = skip_template_args(after);
        if (past < size() && is(past, "(")) after = past;
      }
      if (!is(after, "(")) continue;
      fn.calls.push_back({t.text, t.line});
      // Determinism roots: lambdas inside the argument list of
      // run_sweep (sweep cells) or Simulator::schedule_* (callbacks).
      if (t.text == "run_sweep" || t.text == "schedule_at" ||
          t.text == "schedule_after") {
        const std::size_t close = match_forward(after, "(", ")");
        if (close < size()) {
          root_ranges_.push_back({close, t.text == "run_sweep"});
        }
      }
      // Prune exhausted root ranges.
      while (!root_ranges_.empty() && root_ranges_.back().end_tok <= i) {
        root_ranges_.pop_back();
      }
    }
  }

  FileIndex out_;
  std::vector<Scope> stack_;
  std::vector<RootRange> root_ranges_;
  bool pending_hot_ = false;
};

}  // namespace

FileIndex index_file(const std::string& path, const std::string& content) {
  return Indexer(path, content).run();
}

}  // namespace mcs::lint
