// mcs_trace — convert flight-recorder dumps to human/tool-readable forms.
//
// The fuzzer (mcs_check) and the exp_* harness write trace dumps in the
// versioned text format of src/obs/export.hpp. This tool re-renders them:
//
//   mcs_trace <dump.trace>                 text timeline to stdout
//   mcs_trace --timeline <dump.trace>      same, explicit
//   mcs_trace --chrome <dump.trace>        Chrome trace_event JSON to stdout
//   mcs_trace --chrome <dump.trace> -o f   ... to file f (open in
//                                          chrome://tracing or Perfetto)
//   mcs_trace --digest <dump.trace>        16-hex trace digest (the value
//                                          folded into fuzz/sweep digests)
//   mcs_trace --stats <dump.trace>         per-name event counts + span
//                                          duration sums (cost attribution)
//
// Exit codes: 0 ok, 1 bad usage, 2 unreadable/malformed dump.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/stats.hpp"
#include "obs/export.hpp"
#include "obs/report.hpp"

namespace {

int usage() {
  std::cerr
      << "usage: mcs_trace [--timeline|--chrome|--digest|--stats] DUMP\n"
         "                 [-o FILE]\n"
         "Converts an mcs-trace flight-recorder dump (see src/obs/export.hpp\n"
         "for the format). Default mode is --timeline.\n";
  return 1;
}

void print_stats(std::ostream& out, const mcs::obs::TraceDump& dump) {
  out << "events " << dump.events.size() << " dropped " << dump.dropped
      << " total " << dump.total << "\n";
  // Cost attribution in name-table order — the same fold the report's
  // cost table uses, so both views always agree.
  for (const mcs::obs::CostRow& r : mcs::obs::fold_costs(dump)) {
    out << "  " << r.name << " = " << r.events << " events, span "
        << r.span_us << " us\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "--timeline";
  std::string dump_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--timeline" || arg == "--chrome" || arg == "--digest" ||
        arg == "--stats") {
      mode = arg;
    } else if (arg == "-o" || arg == "--out") {
      if (i + 1 >= argc) return usage();
      out_path = argv[++i];
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mcs_trace: unknown flag " << arg << "\n";
      return usage();
    } else if (dump_path.empty()) {
      dump_path = arg;
    } else {
      return usage();
    }
  }
  if (dump_path.empty()) return usage();

  std::ifstream in(dump_path);
  if (!in) {
    std::cerr << "mcs_trace: cannot read " << dump_path << "\n";
    return 2;
  }
  mcs::obs::TraceDump dump;
  try {
    dump = mcs::obs::read_dump(in);
  } catch (const std::exception& e) {
    std::cerr << "mcs_trace: " << dump_path << ": " << e.what() << "\n";
    return 2;
  }

  std::ofstream file;
  std::ostream* out = &std::cout;
  if (!out_path.empty()) {
    file.open(out_path);
    if (!file) {
      std::cerr << "mcs_trace: cannot write " << out_path << "\n";
      return 2;
    }
    out = &file;
  }

  if (mode == "--chrome") {
    mcs::obs::write_chrome_trace(*out, dump);
  } else if (mode == "--digest") {
    *out << mcs::metrics::hex16(mcs::obs::trace_digest(dump)) << "\n";
  } else if (mode == "--stats") {
    print_stats(*out, dump);
  } else {
    mcs::obs::write_timeline(*out, dump);
  }
  return 0;
}
