// mcs_report — render and diff mcs-report-v1 JSON documents.
//
// The exp_* harness and mcs_check write reports with `--report FILE`
// (src/obs/report.hpp). This tool is the consumer side:
//
//   mcs_report <report.json>           human tables to stdout
//   mcs_report --diff <a.json> <b.json>
//                                      structural diff: prints every
//                                      leaf path whose value moved
//                                      (old -> new), keys added/removed
//
// Exit codes: 0 ok / identical, 1 reports differ (--diff), 2 bad usage
// or unreadable/malformed input.
//
// The parser below covers exactly the JSON subset write_report_json
// emits (objects, arrays, strings with \-escapes, numbers, true/false/
// null) and keeps object keys in document order, so the rendered tables
// and diff paths follow the writer's stable ordering.
#include <algorithm>
#include <cctype>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace {

// ---------------------------------------------------------------------------
// Minimal order-preserving JSON value + recursive-descent parser.

struct JsonValue;
using JsonMember = std::pair<std::string, JsonValue>;

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;      // string payload, and the raw numeric token
  std::vector<JsonValue> items;
  std::vector<JsonMember> members;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const JsonMember& m : members) {
      if (m.first == key) return &m.second;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing data after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json offset " + std::to_string(pos_) + ": " +
                             what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.compare(pos_, lit.size(), lit) != 0) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.text = string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return number();
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only \u-escapes control characters (< 0x20);
          // render anything in latin-1 range directly, else a '?'.
          out += code < 0x100 ? static_cast<char>(code) : '?';
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.' ||
          c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.text = std::string(text_.substr(start, pos_ - start));
    try {
      v.number = std::stod(v.text);
    } catch (const std::exception&) {
      fail("bad number: " + v.text);
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      // mcs-lint: allow(H3) — cold CLI parser; the hot-path edge is a
      // name collision on `value` with the instrument accessors.
      v.items.push_back(value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      // mcs-lint: allow(H3) — cold CLI parser (see array() above).
      v.members.emplace_back(std::move(key), value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Rendering: mcs-report-v1 -> the same tables write_report_text produces.

std::string scalar_to_string(const JsonValue& v) {
  switch (v.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Kind::kNumber: return v.text;
    case JsonValue::Kind::kString: return v.text;
    case JsonValue::Kind::kArray: return "[...]";
    case JsonValue::Kind::kObject: return "{...}";
  }
  return "?";
}

std::string field(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  return v == nullptr ? "-" : scalar_to_string(*v);
}

void render_quantile(std::ostream& out, const char* label,
                     const JsonValue& inst, const std::string& key) {
  const JsonValue* q = inst.find(key);
  if (q == nullptr || q->kind != JsonValue::Kind::kObject) return;
  out << "    " << label << " " << field(*q, "value") << " ["
      << field(*q, "lo") << ", " << field(*q, "hi") << "]\n";
}

int render(std::ostream& out, const JsonValue& doc) {
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || schema->text != "mcs-report-v1") {
    std::cerr << "mcs_report: not an mcs-report-v1 document\n";
    return 2;
  }
  out << "mcs report (mcs-report-v1), cells " << field(doc, "cells") << "\n";

  if (const JsonValue* insts = doc.find("instruments")) {
    bool header = false;
    for (const JsonValue& inst : insts->items) {
      if (field(inst, "kind") != "histogram") continue;
      if (!header) {
        out << "\nhistograms (quantiles as estimate [lo, hi] bucket bounds)\n";
        header = true;
      }
      out << "  " << field(inst, "name") << ": count " << field(inst, "count")
          << ", mean " << field(inst, "mean") << ", min " << field(inst, "min")
          << ", max " << field(inst, "max") << "\n";
      render_quantile(out, "p50", inst, "p50");
      render_quantile(out, "p95", inst, "p95");
      render_quantile(out, "p99", inst, "p99");
      render_quantile(out, "p99.9", inst, "p999");
    }
    header = false;
    for (const JsonValue& inst : insts->items) {
      const std::string kind = field(inst, "kind");
      if (kind == "histogram") continue;
      if (!header) {
        out << "\ncounters & gauges\n";
        header = true;
      }
      out << "  " << field(inst, "name") << " = " << field(inst, "value");
      if (kind == "gauge") out << " (max " << field(inst, "max") << ")";
      out << "\n";
    }
  }

  if (const JsonValue* slo = doc.find("slo")) {
    out << "\nslo attainment\n";
    for (const JsonValue& r : slo->items) {
      const JsonValue* met = r.find("met");
      const bool ok = met != nullptr && met->boolean;
      out << "  " << field(r, "class") << " (<= " << field(r, "threshold_s")
          << " s, target " << field(r, "target") << "): "
          << (ok ? "MET" : "MISSED") << ", attainment "
          << field(r, "attainment") << " (" << field(r, "good") << "/"
          << field(r, "samples") << "), violation "
          << field(r, "violation_minutes") << " min, burn crossings "
          << field(r, "burn_crossings") << "\n";
    }
  }

  if (const JsonValue* costs = doc.find("costs")) {
    out << "\ntrace cost attribution (exemplar cell; "
        << field(doc, "trace_dropped") << " of " << field(doc, "trace_total")
        << " events dropped)\n";
    for (const JsonValue& r : costs->items) {
      out << "  " << field(r, "name") << ": events " << field(r, "events")
          << ", span " << field(r, "span_us") << " us\n";
    }
  }

  if (const JsonValue* digest = doc.find("trace_digest")) {
    out << "\ntrace digest " << digest->text << "\n";
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Structural diff: walk both documents, print every leaf that moved.

/// Label an array element by its identifying member when it has one
/// (instruments/costs carry "name", slo rows carry "class") so diff
/// paths survive insertions better than raw indices would.
std::string element_label(const JsonValue& v, std::size_t index) {
  if (v.kind == JsonValue::Kind::kObject) {
    for (const char* key : {"name", "class"}) {
      const JsonValue* id = v.find(key);
      if (id != nullptr && id->kind == JsonValue::Kind::kString) {
        return "[" + id->text + "]";
      }
    }
  }
  return "[" + std::to_string(index) + "]";
}

void diff_values(const std::string& path, const JsonValue* a,
                 const JsonValue* b, std::vector<std::string>& out);

void diff_objects(const std::string& path, const JsonValue& a,
                  const JsonValue& b, std::vector<std::string>& out) {
  for (const JsonMember& m : a.members) {
    diff_values(path.empty() ? m.first : path + "." + m.first, &m.second,
                b.find(m.first), out);
  }
  for (const JsonMember& m : b.members) {
    if (a.find(m.first) == nullptr) {
      diff_values(path.empty() ? m.first : path + "." + m.first, nullptr,
                  &m.second, out);
    }
  }
}

void diff_arrays(const std::string& path, const JsonValue& a,
                 const JsonValue& b, std::vector<std::string>& out) {
  const std::size_t n = std::max(a.items.size(), b.items.size());
  for (std::size_t i = 0; i < n; ++i) {
    const JsonValue* av = i < a.items.size() ? &a.items[i] : nullptr;
    const JsonValue* bv = i < b.items.size() ? &b.items[i] : nullptr;
    const std::string label =
        element_label(av != nullptr ? *av : *bv, i);
    diff_values(path + label, av, bv, out);
  }
}

void diff_values(const std::string& path, const JsonValue* a,
                 const JsonValue* b, std::vector<std::string>& out) {
  if (a == nullptr) {
    out.push_back(path + ": (absent) -> " + scalar_to_string(*b));
    return;
  }
  if (b == nullptr) {
    out.push_back(path + ": " + scalar_to_string(*a) + " -> (absent)");
    return;
  }
  if (a->kind != b->kind) {
    out.push_back(path + ": " + scalar_to_string(*a) + " -> " +
                  scalar_to_string(*b));
    return;
  }
  switch (a->kind) {
    case JsonValue::Kind::kObject: diff_objects(path, *a, *b, out); return;
    case JsonValue::Kind::kArray: diff_arrays(path, *a, *b, out); return;
    case JsonValue::Kind::kNull: return;
    case JsonValue::Kind::kBool:
      if (a->boolean != b->boolean) {
        out.push_back(path + ": " + scalar_to_string(*a) + " -> " +
                      scalar_to_string(*b));
      }
      return;
    case JsonValue::Kind::kNumber:
      // Compare raw tokens: the writer is byte-stable, so any textual
      // drift is a real change (and 0 vs -0 etc. stays visible).
      if (a->text != b->text) {
        out.push_back(path + ": " + a->text + " -> " + b->text);
      }
      return;
    case JsonValue::Kind::kString:
      if (a->text != b->text) {
        out.push_back(path + ": " + a->text + " -> " + b->text);
      }
      return;
  }
}

// ---------------------------------------------------------------------------

int usage() {
  std::cerr << "usage: mcs_report REPORT.json\n"
               "       mcs_report --diff A.json B.json\n"
               "Renders (or structurally diffs) mcs-report-v1 documents\n"
               "written by exp_* --report / mcs_check --report.\n";
  return 2;
}

bool load(const std::string& path, JsonValue& out) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "mcs_report: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    out = JsonParser(text.str()).parse();
  } catch (const std::exception& e) {
    std::cerr << "mcs_report: " << path << ": " << e.what() << "\n";
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool diff = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--diff") {
      diff = true;
    } else if (arg == "-h" || arg == "--help") {
      usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "mcs_report: unknown flag " << arg << "\n";
      return usage();
    } else {
      paths.push_back(arg);
    }
  }

  if (diff) {
    if (paths.size() != 2) return usage();
    JsonValue a;
    JsonValue b;
    if (!load(paths[0], a) || !load(paths[1], b)) return 2;
    std::vector<std::string> changes;
    diff_values("", &a, &b, changes);
    if (changes.empty()) {
      std::cout << "reports identical\n";
      return 0;
    }
    for (const std::string& line : changes) std::cout << line << "\n";
    std::cout << changes.size() << " difference(s)\n";
    return 1;
  }

  if (paths.size() != 1) return usage();
  JsonValue doc;
  if (!load(paths[0], doc)) return 2;
  return render(std::cout, doc);
}
