// mcs_check CLI — deterministic simulation fuzzing under invariant oracles.
//
//   mcs_check [options]
//     --seeds N       batch size (default 100)
//     --base B        base seed for the batch (default 1)
//     --threads N     worker threads (default: MCS_THREADS env, else cores)
//     --seed I        replay batch index I alone and print its full trace
//                     digest + spec (bit-identical to index I of the batch)
//     --replay FILE   run a repro file written by --shrink (or by hand)
//     --shrink I      shrink failing batch index I to a minimal repro file
//     --out FILE      where --shrink writes the repro (default
//                     mcs_check_repro_<index>.repro)
//     --digest        print only `summary <16-hex>` (for determinism diffs)
//     --het           draw the vector/placement heterogeneity knobs
//                     (zones, spread limits, net dimension, score policies)
//     --print-spec I  print the generated spec for batch index I and exit
//     --slo SPEC      attach the SLO engine to every scenario (obs/slo.hpp
//                     format); SLO state folds into every seed digest
//     --report FILE   write the batch's merged mcs-report-v1 JSON to FILE
//
// Exit code: 0 = no violations, 1 = violations found (or replayed scenario
// fails), 2 = usage error. The batch summary digest is bit-identical at any
// --threads value; `--seed I` reruns exactly the scenario the batch ran.
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "check/fuzz.hpp"
#include "check/shrink.hpp"
#include "metrics/stats.hpp"
#include "obs/report.hpp"
#include "obs/slo.hpp"
#include "parallel/thread_pool.hpp"

namespace {

using mcs::check::FuzzOptions;
using mcs::check::FuzzReport;
using mcs::check::ScenarioSpec;
using mcs::check::SeedRunResult;

int usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--seeds N] [--base B] [--threads N] [--seed I]\n"
               "       [--replay FILE] [--shrink I [--out FILE]] [--digest]\n"
               "       [--print-spec I] [--het] [--slo SPEC]\n"
               "       [--report FILE]\n";
  return 2;
}

std::string hex16(std::uint64_t v) {
  std::ostringstream out;
  out << std::hex << std::nouppercase;
  out.width(16);
  out.fill('0');
  out << v;
  return out.str();
}

/// Writes the flight-recorder dump of a failing run next to its repro.
/// Returns the path on success, "" when there was nothing to write.
std::string write_trace_dump(const SeedRunResult& r, const std::string& path) {
  if (r.trace_dump.empty()) return "";
  std::ofstream out(path);
  if (!out) {
    std::cerr << "mcs_check: cannot write trace dump: " << path << "\n";
    return "";
  }
  out << "# flight recorder for seed " << r.seed
      << " (convert: mcs_trace --chrome " << path << ")\n"
      << r.trace_dump;
  return path;
}

void print_result(const SeedRunResult& r) {
  std::cout << "seed " << r.seed << ": " << (r.ok ? "ok" : "VIOLATION")
            << " events=" << r.events << " transitions=" << r.transitions
            << " checks=" << r.checks << " jobs=" << r.jobs_submitted
            << " completed=" << r.jobs_completed
            << " abandoned=" << r.jobs_abandoned
            << " killed=" << r.tasks_killed << " digest=" << hex16(r.digest)
            << "\n";
  if (!r.ok) std::cout << "  " << r.violation << "\n";
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::cerr << "mcs_check: cannot open repro file: " << path << "\n";
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  ScenarioSpec spec;
  try {
    spec = mcs::check::from_text(text.str());
  } catch (const std::exception& ex) {
    std::cerr << "mcs_check: " << path << ": " << ex.what() << "\n";
    return 2;
  }
  const SeedRunResult r = mcs::check::run_spec(spec);
  print_result(r);
  if (!r.ok) {
    // Dump into the working directory (not next to the repro, which may
    // live in the read-only source tree).
    const std::size_t slash = path.find_last_of('/');
    const std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::string trace_path = write_trace_dump(r, base + ".trace");
    if (!trace_path.empty()) {
      std::cout << "flight recorder -> " << trace_path << "\n";
    }
  }
  return r.ok ? 0 : 1;
}

int run_shrink(std::uint64_t base_seed, std::size_t index,
               const std::string& out_path, bool het) {
  const std::uint64_t seed = mcs::check::seed_for_index(base_seed, index);
  mcs::check::ShrinkResult shrunk =
      mcs::check::shrink(mcs::check::make_spec(seed, het));
  if (!shrunk.failing) {
    std::cout << "index " << index << " (seed " << seed
              << ") passes; nothing to shrink\n";
    return 0;
  }
  const std::string path =
      out_path.empty() ? "mcs_check_repro_" + std::to_string(index) + ".repro"
                       : out_path;
  std::ofstream out(path);
  if (!out) {
    std::cerr << "mcs_check: cannot write repro file: " << path << "\n";
    return 2;
  }
  out << "# mcs_check minimal reproducer (replay: mcs_check --replay "
      << path << ")\n"
      << "# shrunk from base=" << base_seed << " index=" << index
      << " in " << shrunk.attempts << " runs (" << shrunk.accepted
      << " accepted)\n"
      << "# " << shrunk.result.violation << "\n"
      << mcs::check::to_text(shrunk.spec);
  std::cout << "index " << index << " (seed " << seed << ") shrunk after "
            << shrunk.attempts << " runs -> " << path << "\n";
  const std::string trace_path = write_trace_dump(shrunk.result,
                                                  path + ".trace");
  if (!trace_path.empty()) {
    std::cout << "flight recorder -> " << trace_path << "\n";
  }
  print_result(shrunk.result);
  return 1;  // a shrunken repro means the scenario fails
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t seeds = 100;
  std::uint64_t base_seed = 1;
  std::size_t threads = 0;  // 0 => MCS_THREADS env, else hardware
  bool digest_only = false;
  bool het = false;
  bool have_single = false;
  std::size_t single_index = 0;
  bool have_shrink = false;
  std::size_t shrink_index = 0;
  bool have_print_spec = false;
  std::size_t print_spec_index = 0;
  std::string replay_path;
  std::string out_path;
  std::string slo_spec;
  std::string report_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](std::uint64_t& value) {
      if (i + 1 >= argc) return false;
      try {
        value = std::stoull(argv[++i]);
      } catch (const std::exception&) {
        return false;
      }
      return true;
    };
    std::uint64_t v = 0;
    if (arg == "--seeds" && next(v)) {
      seeds = static_cast<std::size_t>(v);
    } else if (arg == "--base" && next(v)) {
      base_seed = v;
    } else if (arg == "--threads" && next(v)) {
      threads = static_cast<std::size_t>(v);
    } else if (arg == "--seed" && next(v)) {
      have_single = true;
      single_index = static_cast<std::size_t>(v);
    } else if (arg == "--shrink" && next(v)) {
      have_shrink = true;
      shrink_index = static_cast<std::size_t>(v);
    } else if (arg == "--print-spec" && next(v)) {
      have_print_spec = true;
      print_spec_index = static_cast<std::size_t>(v);
    } else if (arg == "--replay" && i + 1 < argc) {
      replay_path = argv[++i];
    } else if (arg == "--out" && i + 1 < argc) {
      out_path = argv[++i];
    } else if (arg == "--slo" && i + 1 < argc) {
      slo_spec = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg == "--digest") {
      digest_only = true;
    } else if (arg == "--het") {
      het = true;
    } else {
      return usage(argv[0]);
    }
  }

  if (!replay_path.empty()) return run_replay(replay_path);
  if (have_print_spec) {
    std::cout << mcs::check::to_text(mcs::check::make_spec(
        mcs::check::seed_for_index(base_seed, print_spec_index), het));
    return 0;
  }
  if (have_shrink) return run_shrink(base_seed, shrink_index, out_path, het);
  if (have_single) {
    // Carry --slo into the single-seed replay so `--seed I` stays
    // bit-identical to index I of a batch run with the same spec.
    ScenarioSpec spec = mcs::check::make_spec(
        mcs::check::seed_for_index(base_seed, single_index), het);
    spec.slo = slo_spec;
    const SeedRunResult r = mcs::check::run_spec(spec);
    print_result(r);
    return r.ok ? 0 : 1;
  }

  mcs::parallel::ThreadPool pool(threads);
  FuzzOptions opt;
  opt.seeds = seeds;
  opt.base_seed = base_seed;
  opt.het = het;
  opt.slo = slo_spec;
  opt.capture_registry = !report_path.empty();
  opt.pool = &pool;
  const FuzzReport report = mcs::check::run_fuzz(opt);

  if (!report_path.empty() && report.registry != nullptr) {
    const std::vector<mcs::obs::SloSpec> specs =
        mcs::obs::parse_slo_specs(slo_spec);
    mcs::obs::ReportInputs inputs;
    inputs.registry = report.registry.get();
    inputs.slo = &specs;
    inputs.cells = report.seeds_run;
    std::ofstream file(report_path);
    if (!file) {
      std::cerr << "mcs_check: cannot write report: " << report_path << "\n";
      return 2;
    }
    mcs::obs::write_report_json(file, inputs);
    if (!digest_only) {
      std::cout << "report written to " << report_path << " ("
                << report.seeds_run << " seeds)\n";
    }
  }

  if (digest_only) {
    std::cout << "summary " << hex16(report.summary_digest) << "\n";
  } else {
    std::cout << "mcs_check: " << report.seeds_run << " seeds, "
              << report.total_events << " events, "
              << report.total_transitions << " transitions, "
              << report.total_checks << " oracle sweeps\n"
              << "  jobs completed=" << report.total_completed
              << " abandoned=" << report.total_abandoned
              << " tasks killed=" << report.total_tasks_killed << "\n"
              << "  summary digest " << hex16(report.summary_digest) << "\n";
    for (std::size_t i = 0; i < report.failures.size(); ++i) {
      std::cout << "FAIL index " << report.failing_indices[i] << " ";
      print_result(report.failures[i]);
      const std::string trace_path = write_trace_dump(
          report.failures[i], "mcs_check_fail_" +
                                  std::to_string(report.failing_indices[i]) +
                                  ".trace");
      if (!trace_path.empty()) {
        std::cout << "  flight recorder -> " << trace_path << "\n";
      }
    }
    if (report.failures.empty()) {
      std::cout << "  no violations\n";
    } else {
      std::cout << report.failures.size()
                << " violating seed(s); shrink with --shrink <index>\n";
    }
  }
  return report.failures.empty() ? 0 : 1;
}
