// Tests for the scale-out sweep runner (src/exp/sweep) and the mergeable
// aggregation primitives it relies on (metrics::Accumulator::merge,
// metrics::Digest): substream seeding, flat-grid-order results independent
// of thread count, merge equivalence, and the sweep CLI vocabulary.
#include <cmath>
#include <set>
#include <stdexcept>
#include <gtest/gtest.h>

#include "exp/sweep.hpp"
#include "metrics/stats.hpp"
#include "sim/random.hpp"

namespace mcs::exp {
namespace {

TEST(SubstreamSeedTest, DeterministicNonzeroAndWellSpread) {
  EXPECT_EQ(substream_seed(42, 7), substream_seed(42, 7));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base = 0; base < 8; ++base) {
    for (std::uint64_t index = 0; index < 64; ++index) {
      const std::uint64_t s = substream_seed(base, index);
      EXPECT_NE(s, 0u);
      seen.insert(s);
    }
  }
  // 8 x 64 (base, index) pairs must map to distinct seeds.
  EXPECT_EQ(seen.size(), 8u * 64u);
}

TEST(SubstreamSeedTest, NestedSeedsDifferAcrossScenariosAndReps) {
  const std::uint64_t base = 22;
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t r = 0; r < 32; ++r) {
      seen.insert(substream_seed(substream_seed(base, s), r));
    }
  }
  EXPECT_EQ(seen.size(), 4u * 32u);
}

TEST(RunSweepTest, FlatGridOrderAndSeedsIndependentOfThreadCount) {
  SweepOptions opt;
  opt.reps = 5;
  opt.base_seed = 99;

  auto cell = [](const SweepPoint& p) {
    // Derive a value from the cell's own rng, as real experiments do.
    sim::Rng rng(p.seed);
    return static_cast<double>(p.scenario) * 1000.0 +
           static_cast<double>(p.rep) + rng.uniform(0.0, 1.0);
  };

  parallel::ThreadPool one(1);
  parallel::ThreadPool four(4);
  opt.pool = &one;
  const auto a = run_sweep<double>(3, opt, cell);
  opt.pool = &four;
  const auto b = run_sweep<double>(3, opt, cell);

  ASSERT_EQ(a.size(), 15u);
  ASSERT_EQ(b.size(), 15u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Bit-identical, not approximately equal.
    EXPECT_EQ(a[i], b[i]) << "cell " << i;
    // Scenario-major flat order.
    EXPECT_EQ(static_cast<std::size_t>(a[i] / 1000.0), i / 5);
  }
}

TEST(RunSweepTest, ZeroRepsIsTreatedAsOne) {
  SweepOptions opt;
  opt.reps = 0;
  parallel::ThreadPool pool(2);
  opt.pool = &pool;
  const auto r = run_sweep<int>(
      3, opt, [](const SweepPoint& p) { return static_cast<int>(p.scenario); });
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r[2], 2);
}

TEST(AccumulatorMergeTest, MatchesDirectAccumulationInGridOrder) {
  sim::Rng rng(5);
  std::vector<double> xs(257);
  for (double& x : xs) x = rng.normal(10.0, 3.0);

  metrics::Accumulator direct(false);
  for (double x : xs) direct.add(x);

  // Split into uneven shards, merge in order — as a sweep's per-cell
  // accumulators are folded.
  metrics::Accumulator merged(false);
  std::size_t i = 0;
  for (std::size_t shard_size : {1u, 31u, 100u, 125u}) {
    metrics::Accumulator shard(false);
    for (std::size_t k = 0; k < shard_size; ++k) shard.add(xs[i++]);
    merged.merge(shard);
  }
  ASSERT_EQ(i, xs.size());

  EXPECT_EQ(merged.count(), direct.count());
  EXPECT_NEAR(merged.mean(), direct.mean(), 1e-9);
  EXPECT_NEAR(merged.stddev(), direct.stddev(), 1e-9);
  EXPECT_EQ(merged.min(), direct.min());
  EXPECT_EQ(merged.max(), direct.max());
}

TEST(AccumulatorMergeTest, MergeIntoEmptyCopiesExactly) {
  metrics::Accumulator shard(false);
  shard.add(1.5);
  shard.add(2.5);
  metrics::Accumulator empty(false);
  empty.merge(shard);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_EQ(empty.mean(), shard.mean());
  // Merging an empty shard is a no-op.
  metrics::Accumulator nothing(false);
  empty.merge(nothing);
  EXPECT_EQ(empty.count(), 2u);
}

TEST(DigestTest, HexFormatAndSensitivity) {
  metrics::Digest d;
  d.add_double(1.0);
  d.add_u64(7);
  const std::string hex = d.hex();
  EXPECT_EQ(hex.size(), 16u);
  EXPECT_EQ(hex.find_first_not_of("0123456789abcdef"), std::string::npos);

  metrics::Digest e;
  e.add_double(1.0 + 1e-15);  // last-bit difference must change the digest
  e.add_u64(7);
  EXPECT_NE(d.value(), e.value());
}

TEST(DigestTest, MergeIsOrderSensitiveAndDeterministic) {
  auto child = [](double x) {
    metrics::Digest d;
    d.add_double(x);
    return d;
  };
  metrics::Digest ab;
  ab.merge(child(1.0));
  ab.merge(child(2.0));
  metrics::Digest ab2;
  ab2.merge(child(1.0));
  ab2.merge(child(2.0));
  metrics::Digest ba;
  ba.merge(child(2.0));
  ba.merge(child(1.0));
  EXPECT_EQ(ab.value(), ab2.value());
  // Order sensitivity is the point: the fold happens in flat grid order,
  // never in completion order.
  EXPECT_NE(ab.value(), ba.value());
}

TEST(SweepCliTest, ParsesRepsDigestThreads) {
  const char* argv[] = {"exp", "--reps", "32", "--digest", "--threads=4"};
  const SweepCli cli = parse_sweep_cli(5, argv);
  EXPECT_EQ(cli.reps, 32u);
  EXPECT_TRUE(cli.digest);
  EXPECT_EQ(cli.threads, 4u);
}

TEST(SweepCliTest, DefaultsAndUnknownArgsIgnored) {
  const char* argv[] = {"exp", "--verbose", "--reps=0"};
  const SweepCli cli = parse_sweep_cli(3, argv);
  EXPECT_EQ(cli.reps, 1u);  // 0 clamps to 1
  EXPECT_FALSE(cli.digest);
  EXPECT_EQ(cli.threads, 0u);
}

TEST(SweepCliTest, MalformedValueThrows) {
  const char* bad_value[] = {"exp", "--reps", "many"};
  EXPECT_THROW((void)parse_sweep_cli(3, bad_value), std::invalid_argument);
  const char* missing[] = {"exp", "--reps"};
  EXPECT_THROW((void)parse_sweep_cli(2, missing), std::invalid_argument);
}

}  // namespace
}  // namespace mcs::exp
