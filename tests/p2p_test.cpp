// Tests for the P2P swarm models and the 2fast reproduction (src/p2p).
#include <gtest/gtest.h>

#include "p2p/swarm.hpp"

namespace mcs::p2p {
namespace {

SwarmConfig config() {
  SwarmConfig c;
  c.file_mb = 100.0;       // 800 Mbit
  c.seed_up_mbps = 8.0;
  c.peer.down_mbps = 8.0;
  c.peer.up_mbps = 1.0;
  return c;
}

TEST(SoloTest, TitForTatThrottlesAsymmetricLinks) {
  SwarmConfig c = config();
  // ADSL regime: down 8, up 1 -> granted = min(8, 1*1 + 0.2) = 1.2 Mbps.
  EXPECT_NEAR(granted_rate_mbps(c), 1.2, 1e-9);
  EXPECT_NEAR(solo_download_seconds(c), 800.0 / 1.2, 0.01);
  // Symmetric fat link: the downlink is the binding constraint.
  c.peer.up_mbps = 20.0;
  EXPECT_DOUBLE_EQ(granted_rate_mbps(c), 8.0);
  EXPECT_DOUBLE_EQ(solo_download_seconds(c), 100.0);
}

TEST(TwoFastTest, HelpersSpeedUpDownloadRoughlyLinearly) {
  // 2fast's published shape: time falls ~linearly with helpers.
  const SwarmConfig c = config();  // granted 1.2, relay min(1.2,1)=1
  const double t0 = collaborative_download_seconds(c, 0);
  const double t1 = collaborative_download_seconds(c, 1);
  const double t3 = collaborative_download_seconds(c, 3);
  EXPECT_GT(t0, t1);
  EXPECT_GT(t1, t3);
  // t0/t3 ~ (1.2 + 3) / 1.2 = 3.5x speedup with 3 helpers.
  EXPECT_NEAR(t0 / t3, 3.5, 0.1);
}

TEST(TwoFastTest, SaturatesAtCollectorDownlink) {
  SwarmConfig c = config();
  c.peer.up_mbps = 4.0;  // granted 4.2, relay 4
  // With enough helpers, inflow caps at the collector's 8 Mbps downlink.
  const double saturated = collaborative_download_seconds(c, 16);
  EXPECT_NEAR(saturated, 800.0 / 8.0, 1.0);
  // More helpers cannot improve past that.
  EXPECT_NEAR(collaborative_download_seconds(c, 32), saturated, 1.0);
}

TEST(TwoFastTest, HelperUploadBoundsTheRelay) {
  SwarmConfig c = config();
  c.peer.down_mbps = 100.0;  // collector link not binding
  c.peer.up_mbps = 1.0;      // relays capped at 1 Mbps each
  const double t3 = collaborative_download_seconds(c, 3);
  // inflow = granted(1.2) + 3 * min(1.2, 1) = 4.2 Mbps.
  EXPECT_NEAR(t3, 800.0 / 4.2, 1.0);
}

TEST(SwarmTest, SelfScalingBeatsSeedOnlyForLargeCrowds) {
  SwarmConfig c = config();
  c.seed_up_mbps = 8.0;
  c.peer.up_mbps = 4.0;
  const SwarmRun crowd = swarm_download(c, 50);
  // Seed-only service would give each of 50 leechers 8/50 Mbps
  // -> 800 / 0.16 = 5000 s; peer exchange does far better.
  EXPECT_LT(crowd.mean_seconds, 2500.0);
  // Aggregate upload exceeded the seed alone (peers contributed).
  EXPECT_GT(crowd.aggregate_upload_peak_mbps, c.seed_up_mbps * 2.0);
}

TEST(SwarmTest, MoreLeechersSlowerPerLeecherButSublinearly) {
  SwarmConfig c = config();
  const SwarmRun ten = swarm_download(c, 10);
  const SwarmRun forty = swarm_download(c, 40);
  EXPECT_GE(forty.mean_seconds, ten.mean_seconds);
  // Self-scaling: 4x the crowd costs much less than 4x the time.
  EXPECT_LT(forty.mean_seconds, ten.mean_seconds * 4.0);
}

TEST(SwarmTest, InvalidParametersThrow) {
  SwarmConfig c = config();
  c.file_mb = 0.0;
  EXPECT_THROW((void)solo_download_seconds(c), std::invalid_argument);
  c = config();
  EXPECT_THROW((void)swarm_download(c, 0), std::invalid_argument);
  EXPECT_THROW((void)swarm_download(c, 5, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace mcs::p2p
