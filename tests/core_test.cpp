// Tests for the ecosystem core: NFR/SLA model, recursive ecosystems,
// and the Tables 1/2/3/5 registries (src/core).
#include <gtest/gtest.h>

#include "core/ecosystem.hpp"
#include "core/nfr.hpp"
#include "core/registry.hpp"

namespace mcs::core {
namespace {

// ---- SLO / SLA ---------------------------------------------------------------

TEST(SloTest, CeilingAndFloorSemantics) {
  const Slo deadline = deadline_slo(10.0);
  EXPECT_TRUE(deadline.attained(9.9));
  EXPECT_TRUE(deadline.attained(10.0));
  EXPECT_FALSE(deadline.attained(10.1));

  const Slo avail = availability_slo(0.99);
  EXPECT_TRUE(avail.attained(0.995));
  EXPECT_FALSE(avail.attained(0.98));
}

TEST(SlaTest, CountsViolationsAndMissingObservations) {
  Sla sla({deadline_slo(5.0), availability_slo(0.9), cost_slo(100.0)});
  const std::vector<Sla::Observation> obs = {
      {NfrDimension::kLatency, 4.0},       // ok
      {NfrDimension::kAvailability, 0.5},  // violated
      // cost unobserved -> violated
  };
  EXPECT_EQ(sla.violations(obs), 2u);
}

TEST(SlaTest, PenaltyScalesWithWeight) {
  Sla sla;
  sla.add(deadline_slo(1.0, /*weight=*/3.0));
  const std::vector<Sla::Observation> obs = {{NfrDimension::kLatency, 2.0}};
  EXPECT_DOUBLE_EQ(sla.penalty(obs, 10.0), 30.0);
}

TEST(SlaTest, ReviseChangesTargetAtRuntime) {
  // Temporal fine-grained NFRs (C3): targets may change mid-run.
  Sla sla({deadline_slo(5.0)});
  EXPECT_TRUE(sla.revise(NfrDimension::kLatency, 2.0));
  EXPECT_DOUBLE_EQ(sla.objective(NfrDimension::kLatency)->target, 2.0);
  // Revising an absent dimension adds it.
  EXPECT_FALSE(sla.revise(NfrDimension::kCost, 50.0));
  EXPECT_TRUE(sla.objective(NfrDimension::kCost).has_value());
  EXPECT_TRUE(sla.objective(NfrDimension::kCost)->is_ceiling);
}

TEST(NfrTest, DimensionNames) {
  EXPECT_EQ(to_string(NfrDimension::kLatency), "latency");
  EXPECT_EQ(to_string(NfrDimension::kElasticity), "elasticity");
}

// ---- Ecosystem -----------------------------------------------------------------

SystemInfo sys(std::string name, Layer layer, std::string owner,
               bool autonomous = true, bool legacy = false) {
  SystemInfo s;
  s.name = std::move(name);
  s.layer = layer;
  s.owner = std::move(owner);
  s.autonomous = autonomous;
  s.legacy = legacy;
  return s;
}

TEST(EcosystemTest, SingleSystemIsNotAnEcosystem) {
  Ecosystem e("solo");
  e.add_system(sys("app", Layer::kFrontend, "acme"));
  EXPECT_FALSE(e.is_ecosystem());
}

TEST(EcosystemTest, HomogeneousSingleOwnerGroupIsNotAnEcosystem) {
  Ecosystem e("farm");
  e.add_system(sys("a", Layer::kInfrastructure, "acme"));
  e.add_system(sys("b", Layer::kInfrastructure, "acme"));
  EXPECT_FALSE(e.is_ecosystem());
}

TEST(EcosystemTest, HeterogeneousMultiOwnerGroupQualifies) {
  Ecosystem e("bigdata");
  e.add_system(sys("hadoop", Layer::kExecutionEngine, "apache"));
  e.add_system(sys("hdfs", Layer::kStorageEngine, "apache"));
  e.add_system(sys("hive", Layer::kHighLevelLanguage, "facebook"));
  EXPECT_TRUE(e.is_ecosystem());
  EXPECT_EQ(e.distinct_owners(), 2u);
}

TEST(EcosystemTest, NonAutonomousConstituentDisqualifies) {
  Ecosystem e("tight");
  e.add_system(sys("a", Layer::kFrontend, "x"));
  e.add_system(sys("b", Layer::kBackend, "y", /*autonomous=*/false));
  EXPECT_FALSE(e.is_ecosystem());
}

TEST(EcosystemTest, LegacyMajorityDisqualifies) {
  Ecosystem e("bank");
  e.add_system(sys("cobol1", Layer::kBackend, "bank", true, /*legacy=*/true));
  e.add_system(sys("cobol2", Layer::kBackend, "bank", true, /*legacy=*/true));
  e.add_system(sys("api", Layer::kFrontend, "fintech"));
  EXPECT_FALSE(e.is_ecosystem());
}

TEST(EcosystemTest, SuperDistributionIsRecursive) {
  // P5: ecosystems of ecosystems of ecosystems.
  Ecosystem root("federation");
  root.add_system(sys("broker", Layer::kResources, "eu"));
  Ecosystem& dc1 = root.add_subecosystem("dc-ams");
  dc1.add_system(sys("nova", Layer::kResources, "vu"));
  Ecosystem& rack = dc1.add_subecosystem("rack-7");
  rack.add_system(sys("node-1", Layer::kInfrastructure, "vu"));
  rack.add_system(sys("node-2", Layer::kInfrastructure, "tud"));

  EXPECT_EQ(root.depth(), 3u);
  EXPECT_EQ(root.total_systems(), 4u);
  EXPECT_TRUE(root.is_ecosystem());
}

TEST(EcosystemTest, EvolutionMechanismsAreRecorded) {
  Ecosystem e("evolving");
  e.add_system(sys("mapred", Layer::kProgrammingModel, "google"));
  e.add_system(sys("gfs", Layer::kStorageEngine, "google"));
  e.replace_system("mapred", sys("spark", Layer::kProgrammingModel, "databricks"));
  e.bridge("spark", "gfs");
  e.remove_system("gfs");

  const auto& h = e.history();
  ASSERT_EQ(h.size(), 5u);
  EXPECT_EQ(h[0].mechanism, EvolutionMechanism::kAdd);
  EXPECT_EQ(h[2].mechanism, EvolutionMechanism::kReplace);
  EXPECT_EQ(h[3].mechanism, EvolutionMechanism::kBridge);
  EXPECT_EQ(h[4].mechanism, EvolutionMechanism::kRemove);
  // Steps are strictly increasing (a usable genealogy).
  for (std::size_t i = 1; i < h.size(); ++i) {
    EXPECT_GT(h[i].step, h[i - 1].step);
  }
  // Replacement took effect.
  EXPECT_FALSE(e.find("mapred").has_value());
  EXPECT_TRUE(e.find("spark").has_value());
}

TEST(EcosystemTest, RemoveReturnsFalseForUnknown) {
  Ecosystem e("x");
  EXPECT_FALSE(e.remove_system("ghost"));
  EXPECT_FALSE(e.replace_system("ghost", sys("a", Layer::kFrontend, "o")));
}

// ---- registries ------------------------------------------------------------------

TEST(RegistryTest, TenPrinciplesInPaperOrder) {
  const auto& ps = principles();
  ASSERT_EQ(ps.size(), 10u);
  EXPECT_EQ(ps[0].key_aspects, "The Age of Ecosystems");
  EXPECT_EQ(ps[4].key_aspects, "super-distributed");
  EXPECT_EQ(ps[9].type, PrincipleType::kMethodology);
  // Type boundaries exactly as Table 2: P1-5 systems, P6-7 peopleware,
  // P8-10 methodology.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ps[i].type, PrincipleType::kSystems);
  for (int i = 5; i < 7; ++i) EXPECT_EQ(ps[i].type, PrincipleType::kPeopleware);
  for (int i = 7; i < 10; ++i) EXPECT_EQ(ps[i].type, PrincipleType::kMethodology);
}

TEST(RegistryTest, TwentyChallengesMatchTable3Mapping) {
  const auto& cs = challenges();
  ASSERT_EQ(cs.size(), 20u);
  // Spot-check the mapping column against the paper's Table 3.
  EXPECT_EQ(cs[2].principle_refs, (std::vector<int>{3, 5}));    // C3
  EXPECT_EQ(cs[6].principle_refs, (std::vector<int>{4, 5}));    // C7
  EXPECT_EQ(cs[8].principle_refs, (std::vector<int>{2, 3, 4, 5}));  // C9
  EXPECT_EQ(cs[14].principle_refs, (std::vector<int>{7, 8}));   // C15
  EXPECT_EQ(cs[19].principle_refs, (std::vector<int>{10}));     // C20
  // Type boundaries: C1-10 systems, C11-14 peopleware, C15-20 methodology.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(cs[i].type, ChallengeType::kSystems);
  for (int i = 10; i < 14; ++i) EXPECT_EQ(cs[i].type, ChallengeType::kPeopleware);
  for (int i = 14; i < 20; ++i) EXPECT_EQ(cs[i].type, ChallengeType::kMethodology);
}

TEST(RegistryTest, CrossReferencesValidate) {
  const RegistryValidation v = validate_registries();
  for (const auto& err : v.errors) ADD_FAILURE() << err;
  EXPECT_TRUE(v.ok);
}

TEST(RegistryTest, EveryComputationalChallengeNamesItsDemonstrator) {
  // The paper's peopleware-only challenges (C12, C14, C20) have no
  // computational content; all others must be traceable to code.
  for (const auto& c : challenges()) {
    const bool non_computational =
        c.index == 12 || c.index == 14 || c.index == 20;
    if (non_computational) {
      EXPECT_TRUE(c.demonstrated_by.empty()) << "C" << c.index;
    } else {
      EXPECT_FALSE(c.demonstrated_by.empty()) << "C" << c.index;
    }
  }
}

TEST(RegistryTest, Table5CodesAreLegalAndMcsRowMatchesPaper) {
  const auto& fs = field_comparisons();
  ASSERT_EQ(fs.size(), 6u);
  for (const auto& f : fs) {
    EXPECT_TRUE(field_comparison_codes_valid(f)) << f.field;
  }
  const auto& mcs = fs.back();
  EXPECT_EQ(mcs.field, "MCS");
  EXPECT_EQ(mcs.objectives, "DES");
  EXPECT_EQ(mcs.methodology, "ADHSP");
  EXPECT_EQ(mcs.character, "ACES");
}

TEST(RegistryTest, IllegalCodeIsRejected) {
  FieldComparison f = field_comparisons().front();
  f.objectives = "DEX";  // X is not a Ropohl objective
  EXPECT_FALSE(field_comparison_codes_valid(f));
}

TEST(RegistryTest, UseCasesSplitEndoExo) {
  const auto& ucs = use_cases();
  ASSERT_EQ(ucs.size(), 6u);
  int endo = 0;
  for (const auto& u : ucs) {
    if (u.endogenous) ++endo;
    EXPECT_FALSE(u.example_binary.empty()) << u.description;
  }
  EXPECT_EQ(endo, 3);
}

TEST(RegistryTest, OverviewCoversAllFourQuestions) {
  bool who = false, what = false, how = false, related = false;
  for (const auto& row : overview()) {
    if (row.question == "Who?") who = true;
    if (row.question == "What?") what = true;
    if (row.question == "How?") how = true;
    if (row.question == "Related") related = true;
  }
  EXPECT_TRUE(who && what && how && related);
}

}  // namespace
}  // namespace mcs::core
