// Tests for the shared parallelism substrate (src/parallel): pool
// lifecycle, the deterministic static-chunking contract of parallel_for,
// and exception propagation. These are the tests the TSan build
// (-DMCS_SANITIZE=thread) must pass.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace mcs::parallel {
namespace {

TEST(ThreadPoolTest, ConstructsRequestedThreadCount) {
  ThreadPool one(1), four(4);
  EXPECT_EQ(one.thread_count(), 1u);
  EXPECT_EQ(four.thread_count(), 4u);
}

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.run_tasks(hits.size(),
                 [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroTasksIsANoOp) {
  ThreadPool pool(2);
  pool.run_tasks(0, [](std::size_t) { FAIL() << "must not run"; });
}

TEST(ThreadPoolTest, ReusableAcrossBatches) {
  ThreadPool pool(3);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.run_tasks(17, [&](std::size_t) { count.fetch_add(1); });
    ASSERT_EQ(count.load(), 17);
  }
}

TEST(ThreadPoolTest, RethrowsLowestTaskIndexException) {
  ThreadPool pool(4);
  for (int round = 0; round < 10; ++round) {
    try {
      pool.run_tasks(64, [&](std::size_t i) {
        if (i % 2 == 1) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected exception";
    } catch (const std::runtime_error& e) {
      // Deterministic error reporting: always the lowest failing index,
      // regardless of which thread hit its failure first.
      EXPECT_STREQ(e.what(), "1");
    }
  }
  // The pool survives an exceptional batch.
  std::atomic<int> count{0};
  pool.run_tasks(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ParallelForTest, ChunkBoundariesPartitionTheRange) {
  ThreadPool pool(4);
  for (std::size_t range : {1u, 2u, 63u, 64u, 65u, 1000u}) {
    std::vector<std::atomic<int>> seen(range);
    std::atomic<std::size_t> max_chunk{0};
    parallel_for(pool, 0, range,
                 [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
                   std::size_t prev = max_chunk.load();
                   while (chunk > prev &&
                          !max_chunk.compare_exchange_weak(prev, chunk)) {
                   }
                   for (std::size_t i = lo; i < hi; ++i) {
                     seen[i].fetch_add(1);
                   }
                 });
    for (std::size_t i = 0; i < range; ++i) {
      ASSERT_EQ(seen[i].load(), 1) << "range " << range << " index " << i;
    }
    EXPECT_EQ(max_chunk.load() + 1, default_chunk_count(range));
  }
}

TEST(ParallelForTest, ChunkingIsIndependentOfThreadCount) {
  // The determinism contract: chunk boundaries are a pure function of the
  // range. Record (lo, hi) per chunk under different pool sizes.
  auto boundaries = [](std::size_t threads, std::size_t range) {
    ThreadPool pool(threads);
    std::vector<std::pair<std::size_t, std::size_t>> out(
        default_chunk_count(range));
    parallel_for(pool, 0, range,
                 [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
                   out[chunk] = {lo, hi};
                 });
    return out;
  };
  for (std::size_t range : {5u, 64u, 129u, 4096u}) {
    const auto b1 = boundaries(1, range);
    const auto b2 = boundaries(2, range);
    const auto b8 = boundaries(8, range);
    EXPECT_EQ(b1, b2);
    EXPECT_EQ(b1, b8);
  }
}

TEST(ParallelForTest, OrderedChunkReductionIsDeterministic) {
  // The canonical usage pattern: per-chunk partials merged in chunk order
  // must give the same bits at any thread count.
  const std::size_t n = 10000;
  std::vector<double> data(n);
  for (std::size_t i = 0; i < n; ++i) {
    data[i] = 1.0 / static_cast<double>(i + 1);
  }
  auto reduce = [&](std::size_t threads) {
    ThreadPool pool(threads);
    std::vector<double> partial(default_chunk_count(n), 0.0);
    parallel_for(pool, 0, n,
                 [&](std::size_t lo, std::size_t hi, std::size_t chunk) {
                   double s = 0.0;
                   for (std::size_t i = lo; i < hi; ++i) s += data[i];
                   partial[chunk] = s;
                 });
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  const double t1 = reduce(1);
  EXPECT_EQ(t1, reduce(2));
  EXPECT_EQ(t1, reduce(8));
}

TEST(ParallelForTest, EmptyAndReversedRangesDoNothing) {
  ThreadPool pool(2);
  int runs = 0;
  parallel_for(pool, 5, 5,
               [&](std::size_t, std::size_t, std::size_t) { ++runs; });
  parallel_for(pool, 7, 3,
               [&](std::size_t, std::size_t, std::size_t) { ++runs; });
  EXPECT_EQ(runs, 0);
}

TEST(DefaultPoolTest, IsASingleton) {
  ThreadPool& a = default_pool();
  ThreadPool& b = default_pool();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.thread_count(), 1u);
}

}  // namespace
}  // namespace mcs::parallel
