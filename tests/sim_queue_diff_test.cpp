// Differential test for the three-band event queue (sorted-run tail buffer
// + hierarchical timing wheel + overflow heap, DESIGN.md §12): randomized
// schedule/cancel/advance sequences executed on the real Simulator must
// fire events in exactly the order of a reference model — an std::set over
// (at, seq) — which is by construction the documented total order. Covers
// same-timestamp bursts, lazy-cancelled tombstones in every band,
// far-future heap overflow, wheel-window crossings, tail compaction, and
// scheduling from inside running callbacks (cursor resync).
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace mcs;

/// Drives a Simulator and a reference model in lockstep. Event ids equal
/// the kernel's internal insertion sequence (every schedule goes through
/// this harness), so comparing fired id sequences compares (at, seq) order
/// bit-for-bit.
class QueueDiff {
 public:
  explicit QueueDiff(bool reserve) {
    if (reserve) sim_.reserve_events(4096);
  }

  std::uint64_t schedule(sim::SimTime at) {
    const std::uint64_t id = next_id_++;
    model_.emplace(at, id);
    at_of_.push_back(at);
    handles_.push_back(
        sim_.schedule_at(at, [this, id] { fired_.push_back(id); }));
    return id;
  }

  /// An event whose callback schedules a follow-up chain from inside the
  /// run — exercises arm() while the wheel cursor tracks now().
  std::uint64_t schedule_spawning(sim::SimTime at, sim::SimTime child_delta,
                                  int depth) {
    const std::uint64_t id = next_id_++;
    model_.emplace(at, id);
    at_of_.push_back(at);
    handles_.push_back(
        sim_.schedule_at(at, [this, id, child_delta, depth] {
          fired_.push_back(id);
          if (depth > 0) {
            schedule_spawning(sim_.now() + child_delta, child_delta,
                              depth - 1);
          }
        }));
    return id;
  }

  /// Cancels by id; the simulator and the model must agree on whether the
  /// event was still pending.
  void cancel(std::uint64_t id) {
    const bool sim_ok = sim_.cancel(handles_[id]);
    const bool model_ok = model_.erase({at_of_[id], id}) > 0;
    EXPECT_EQ(sim_ok, model_ok) << "cancel divergence for id " << id;
  }

  /// Runs to `t` and checks the fired sequence against the model's
  /// (at, seq) order. Children spawned during the run entered the model at
  /// fire time, so draining the model afterwards yields the same global
  /// order the kernel must produce.
  void advance(sim::SimTime t) {
    fired_.clear();
    const std::size_t ran = sim_.run_until(t);
    std::vector<std::uint64_t> expected;
    while (!model_.empty() && model_.begin()->first <= t) {
      expected.push_back(model_.begin()->second);
      model_.erase(model_.begin());
    }
    ASSERT_EQ(fired_, expected);
    ASSERT_EQ(ran, expected.size());
  }

  [[nodiscard]] sim::Simulator& sim() { return sim_; }
  [[nodiscard]] std::uint64_t scheduled() const { return next_id_; }

 private:
  sim::Simulator sim_;
  std::set<std::pair<sim::SimTime, std::uint64_t>> model_;
  std::vector<sim::SimTime> at_of_;
  std::vector<sim::EventHandle> handles_;
  std::vector<std::uint64_t> fired_;
  std::uint64_t next_id_ = 0;
};

TEST(QueueDifferential, RandomOpsMatchReferenceOrder) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    SCOPED_TRACE(seed);
    sim::Rng rng(seed);
    QueueDiff q(/*reserve=*/seed % 2 == 0);
    sim::SimTime now = 0;
    for (int phase = 0; phase < 40; ++phase) {
      const std::int64_t kind = rng.uniform_int(0, 3);
      const std::int64_t n = rng.uniform_int(8, 96);
      if (kind == 0) {
        // Monotone run: rides the tail buffer; long enough runs trigger
        // consumed-prefix compaction.
        sim::SimTime base = now;
        for (std::int64_t i = 0; i < n; ++i) {
          base += rng.uniform_int(0, 1000);
          q.schedule(base);
        }
      } else if (kind == 1) {
        // Uniform scatter over ~4 s: the wheel band, all levels.
        for (std::int64_t i = 0; i < n; ++i) {
          q.schedule(now + rng.uniform_int(0, std::int64_t{1} << 22));
        }
      } else if (kind == 2) {
        // Same-timestamp burst: ties must fire in scheduling order.
        const sim::SimTime t = now + rng.uniform_int(0, std::int64_t{1} << 20);
        for (std::int64_t i = 0; i < n; ++i) q.schedule(t);
      } else {
        // Far future: beyond the 2^36 µs wheel window — overflow heap.
        for (std::int64_t i = 0; i < n; ++i) {
          q.schedule(now + (std::int64_t{1} << 37) +
                     rng.uniform_int(0, std::int64_t{1} << 37));
        }
      }
      // Cancel a handful of arbitrary ids; already-fired ones must report
      // false identically on both sides.
      const std::int64_t cancels = rng.uniform_int(0, 16);
      for (std::int64_t i = 0; i < cancels; ++i) {
        q.cancel(static_cast<std::uint64_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(q.scheduled()) - 1)));
      }
      const std::int64_t jump = rng.uniform_int(0, std::int64_t{1} << 23);
      now += jump;
      q.advance(now);
    }
    q.advance(sim::kTimeInfinity);
  }
}

TEST(QueueDifferential, SameTimestampBurstsPreserveSchedulingOrder) {
  QueueDiff q(/*reserve=*/false);
  for (int round = 0; round < 8; ++round) {
    const sim::SimTime t = 1000 * (round + 1);
    for (int i = 0; i < 200; ++i) q.schedule(t);
    // Cancel every third of the burst: tombstones interleave with live
    // entries at one timestamp inside a single level-0 bucket.
    for (std::uint64_t id = q.scheduled() - 200; id < q.scheduled(); id += 3) {
      q.cancel(id);
    }
  }
  q.advance(sim::kTimeInfinity);
}

TEST(QueueDifferential, SpawningCallbacksMatchReference) {
  sim::Rng rng(99);
  QueueDiff q(/*reserve=*/false);
  for (int i = 0; i < 64; ++i) {
    q.schedule_spawning(rng.uniform_int(0, 1 << 20),
                        /*child_delta=*/rng.uniform_int(1, 1 << 18),
                        /*depth=*/static_cast<int>(rng.uniform_int(0, 12)));
  }
  // Advance in small steps so chains straddle run_until boundaries (the
  // trailing now_ = until leaves the wheel cursor behind until the next
  // insert resyncs it).
  for (sim::SimTime t = 1 << 16; t < (1 << 22); t += 1 << 16) q.advance(t);
  q.advance(sim::kTimeInfinity);
}

TEST(QueueDifferential, WheelWindowCrossingsAndFarOverflow) {
  sim::Rng rng(7);
  QueueDiff q(/*reserve=*/true);
  sim::SimTime now = 0;
  for (int round = 0; round < 6; ++round) {
    // Near band (wheel), mid band (upper wheel levels), far band (heap).
    for (int i = 0; i < 50; ++i) q.schedule(now + rng.uniform_int(0, 1 << 12));
    for (int i = 0; i < 50; ++i) {
      q.schedule(now + rng.uniform_int(0, std::int64_t{1} << 35));
    }
    for (int i = 0; i < 50; ++i) {
      q.schedule(now + (std::int64_t{1} << 36) +
                 rng.uniform_int(0, std::int64_t{1} << 40));
    }
    // Jump the clock across several wheel-digit boundaries (sometimes past
    // the whole window, emptying the wheel into execution).
    now += (round % 2 == 0) ? (std::int64_t{1} << 24)
                            : (std::int64_t{1} << 38);
    q.advance(now);
  }
  q.advance(sim::kTimeInfinity);
}

TEST(QueueDifferential, LongMonotoneRunWithCompactionStaysOrdered) {
  QueueDiff q(/*reserve=*/false);
  sim::SimTime at = 0;
  // Interleave appends and partial drains so tail_head_ repeatedly crosses
  // the half-buffer compaction threshold while the run is still growing.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 100; ++i) q.schedule(at += 10);
    q.advance(at - 500);
  }
  q.advance(sim::kTimeInfinity);
}

}  // namespace
