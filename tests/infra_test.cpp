// Tests for machines, topology, and the instance catalog (src/infra).
#include <gtest/gtest.h>

#include "infra/instance_catalog.hpp"
#include "infra/machine.hpp"
#include "infra/topology.hpp"

namespace mcs::infra {
namespace {

ResourceVector rv(double cores, double mem = 0.0, double acc = 0.0) {
  return ResourceVector{cores, mem, acc};
}

// ---- ResourceVector ---------------------------------------------------------

TEST(ResourceVectorTest, FitsWithinIsComponentwise) {
  EXPECT_TRUE(rv(2, 4).fits_within(rv(4, 8)));
  EXPECT_FALSE(rv(5, 4).fits_within(rv(4, 8)));
  EXPECT_FALSE(rv(2, 9).fits_within(rv(4, 8)));
  EXPECT_FALSE(rv(1, 1, 1).fits_within(rv(4, 8, 0)));  // accelerator missing
}

TEST(ResourceVectorTest, Arithmetic) {
  const ResourceVector sum = rv(2, 4, 1) + rv(1, 2, 0);
  EXPECT_DOUBLE_EQ(sum.cpu(), 3.0);
  EXPECT_DOUBLE_EQ(sum.mem(), 6.0);
  EXPECT_DOUBLE_EQ(sum.gpu(), 1.0);
  const ResourceVector diff = sum - rv(3, 6, 1);
  EXPECT_DOUBLE_EQ(diff.cpu(), 0.0);
}

// ---- Machine -----------------------------------------------------------------

TEST(MachineTest, AllocateReleaseLifecycle) {
  Machine m(0, "n0", rv(8, 32), 1.0);
  EXPECT_TRUE(m.can_fit(rv(8, 32)));
  m.allocate(rv(6, 16));
  EXPECT_FALSE(m.can_fit(rv(4, 4)));
  EXPECT_TRUE(m.can_fit(rv(2, 16)));
  EXPECT_DOUBLE_EQ(m.utilization(), 0.75);
  m.release(rv(6, 16));
  EXPECT_DOUBLE_EQ(m.utilization(), 0.0);
}

TEST(MachineTest, OverAllocationThrows) {
  Machine m(0, "n0", rv(4, 8), 1.0);
  EXPECT_THROW(m.allocate(rv(5, 1)), std::logic_error);
  m.allocate(rv(4, 8));
  EXPECT_THROW(m.allocate(rv(1, 0)), std::logic_error);
}

TEST(MachineTest, OverReleaseThrows) {
  Machine m(0, "n0", rv(4, 8), 1.0);
  m.allocate(rv(2, 2));
  EXPECT_THROW(m.release(rv(3, 2)), std::logic_error);
}

TEST(MachineTest, FailureDropsAllocations) {
  Machine m(0, "n0", rv(4, 8), 1.0);
  m.allocate(rv(4, 8));
  m.fail();
  EXPECT_EQ(m.state(), MachineState::kFailed);
  EXPECT_FALSE(m.usable());
  EXPECT_FALSE(m.can_fit(rv(1, 1)));
  m.repair();
  EXPECT_TRUE(m.usable());
  EXPECT_DOUBLE_EQ(m.used().cpu(), 0.0);
}

TEST(MachineTest, PowerModel) {
  Machine m(0, "n0", rv(10, 10), 1.0, PowerModel{100.0, 300.0});
  EXPECT_DOUBLE_EQ(m.power_watts(), 100.0);  // idle
  m.allocate(rv(5, 0));
  EXPECT_DOUBLE_EQ(m.power_watts(), 200.0);  // half dynamic range
  m.set_state(MachineState::kOff);
  EXPECT_DOUBLE_EQ(m.power_watts(), 0.0);
  m.set_state(MachineState::kFailed);
  EXPECT_DOUBLE_EQ(m.power_watts(), 100.0);  // failed still draws idle
}

TEST(MachineTest, InvalidConstructionThrows) {
  EXPECT_THROW(Machine(0, "x", rv(0, 1), 1.0), std::invalid_argument);
  EXPECT_THROW(Machine(0, "x", rv(1, 1), 0.0), std::invalid_argument);
}

// ---- Datacenter / Federation -----------------------------------------------------

TEST(DatacenterTest, UniformRacksBuildTopology) {
  Datacenter dc("dc1", "eu-west");
  dc.add_uniform_racks(4, 8, rv(16, 64), 1.0);
  EXPECT_EQ(dc.machine_count(), 32u);
  EXPECT_EQ(dc.rack_count(), 4u);
  EXPECT_EQ(dc.rack_members(2).size(), 8u);
  EXPECT_EQ(dc.rack_of(17), 2u);  // 17 / 8 == rack 2
  EXPECT_DOUBLE_EQ(dc.total_capacity().cpu(), 32 * 16.0);
}

TEST(DatacenterTest, AvailabilityTracksFailures) {
  Datacenter dc("dc1", "eu");
  dc.add_uniform_racks(1, 10, rv(4, 8), 1.0);
  EXPECT_DOUBLE_EQ(dc.availability(), 1.0);
  dc.machine(0).fail();
  dc.machine(1).fail();
  EXPECT_DOUBLE_EQ(dc.availability(), 0.8);
  EXPECT_DOUBLE_EQ(dc.total_capacity().cpu(), 8 * 4.0);  // failed excluded
}

TEST(DatacenterTest, IntraRackLatencyLowerThanCrossRack) {
  Datacenter dc("dc1", "eu");
  dc.add_uniform_racks(2, 2, rv(4, 8), 1.0);
  EXPECT_EQ(dc.latency_between(0, 0), 0);
  EXPECT_LT(dc.latency_between(0, 1), dc.latency_between(0, 2));
}

TEST(FederationTest, LatencySymmetricLookup) {
  Federation fed("geo");
  fed.add_datacenter("ams", "eu-west");
  fed.add_datacenter("nyc", "us-east");
  fed.set_latency("ams", "nyc", 80 * sim::kMillisecond);
  EXPECT_EQ(fed.latency("ams", "nyc"), 80 * sim::kMillisecond);
  EXPECT_EQ(fed.latency("nyc", "ams"), 80 * sim::kMillisecond);
  EXPECT_EQ(fed.latency("ams", "ams"), 0);
  EXPECT_THROW((void)fed.latency("ams", "tokyo"), std::out_of_range);
}

TEST(FederationTest, AggregatesMachines) {
  Federation fed("geo");
  fed.add_datacenter("a", "eu").add_uniform_racks(1, 4, rv(4, 8), 1.0);
  fed.add_datacenter("b", "us").add_uniform_racks(2, 4, rv(4, 8), 1.0);
  EXPECT_EQ(fed.machine_count(), 12u);
  EXPECT_EQ(fed.size(), 2u);
  EXPECT_EQ(fed.datacenter("b").rack_count(), 2u);
}

// ---- InstanceCatalog ---------------------------------------------------------------

TEST(CatalogTest, RepresentativeCoversAllFamilies) {
  const auto catalog = InstanceCatalog::representative();
  EXPECT_GE(catalog.types().size(), 12u);
  bool families[6] = {false, false, false, false, false, false};
  for (const auto& t : catalog.types()) {
    families[static_cast<int>(t.family)] = true;
  }
  for (bool f : families) EXPECT_TRUE(f);
}

TEST(CatalogTest, CheapestSelectionFits) {
  const auto catalog = InstanceCatalog::representative();
  const auto pick = catalog.select(rv(4, 16), SelectionObjective::kCheapest);
  ASSERT_TRUE(pick.has_value());
  EXPECT_TRUE(rv(4, 16).fits_within(pick->resources));
  // Every feasible alternative costs at least as much.
  for (const auto& t : catalog.feasible(rv(4, 16))) {
    EXPECT_GE(t.price_per_hour, pick->price_per_hour);
  }
}

TEST(CatalogTest, AcceleratorDemandSelectsAcceleratedFamily) {
  const auto catalog = InstanceCatalog::representative();
  const auto pick = catalog.select(rv(2, 8, 1), SelectionObjective::kCheapest);
  ASSERT_TRUE(pick.has_value());
  EXPECT_GE(pick->resources.gpu(), 1.0);
}

TEST(CatalogTest, ImpossibleDemandReturnsNothing) {
  const auto catalog = InstanceCatalog::representative();
  EXPECT_FALSE(catalog.select(rv(1000, 1), SelectionObjective::kCheapest)
                   .has_value());
}

TEST(CatalogTest, FastestPrefersHighSpeed) {
  const auto catalog = InstanceCatalog::representative();
  const auto pick = catalog.select(rv(2, 4), SelectionObjective::kFastest);
  ASSERT_TRUE(pick.has_value());
  for (const auto& t : catalog.feasible(rv(2, 4))) {
    EXPECT_LE(t.speed_factor, pick->speed_factor);
  }
}

TEST(CatalogTest, FindByName) {
  const auto catalog = InstanceCatalog::representative();
  EXPECT_TRUE(catalog.find("m5.large").has_value());
  EXPECT_FALSE(catalog.find("x99.mega").has_value());
}

}  // namespace
}  // namespace mcs::infra
