// Tests for the oracle & fuzzing layer (src/check): the invariant oracle
// must pass clean runs and catch planted corruption; scenario specs must
// round-trip through their text form; the fuzzer must be bit-identical at
// any thread count with single-seed replays matching their batch cell; and
// the shrinker must leave passing specs alone.
#include <gtest/gtest.h>

#include "check/fuzz.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"
#include "metrics/stats.hpp"
#include "parallel/thread_pool.hpp"
#include "sched/engine.hpp"
#include "workload/task.hpp"

namespace mcs::check {
namespace {

infra::Datacenter make_dc(std::size_t machines) {
  infra::Datacenter dc("dc", "eu");
  dc.add_uniform_racks(1, machines, infra::ResourceVector{4.0, 16.0, 0.0},
                       1.0);
  return dc;
}

InvariantChecker::Options exclusive() {
  InvariantChecker::Options o;
  o.exclusive_allocation = true;
  return o;
}

TEST(OracleTest, CleanRunPassesAndCounts) {
  auto dc = make_dc(2);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  InvariantChecker oracle(sim, dc, exclusive());
  oracle.attach(engine);

  for (workload::JobId id = 1; id <= 8; ++id) {
    engine.submit(workload::make_bag_of_tasks(id, 4, 30.0));
  }
  EXPECT_NO_THROW(sim.run_until());
  EXPECT_NO_THROW(oracle.verify(engine, "end-of-run"));
  EXPECT_TRUE(engine.all_done());
  EXPECT_GT(oracle.checks(), 0u);
  EXPECT_GT(oracle.transitions(), 0u);
}

TEST(OracleTest, ForeignAllocationBreaksExclusiveAccounting) {
  // In exclusive mode the engine must be the only allocator; claiming
  // resources behind its back must trip I4 on the next sweep.
  auto dc = make_dc(2);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  InvariantChecker oracle(sim, dc, exclusive());
  oracle.attach(engine);

  engine.submit(workload::make_bag_of_tasks(1, 2, 30.0));
  sim.schedule_at(5 * sim::kSecond,
                  [&] { dc.machine(0).allocate({1.0, 1.0, 0.0}); });
  EXPECT_THROW(sim.run_until(), OracleViolation);
}

TEST(OracleTest, SilentMachineFailureBreaksPlacementInvariant) {
  // Failing a machine without telling the engine leaves its running
  // tasks pointing at an unusable machine — I5 must fire at the next
  // event boundary.
  auto dc = make_dc(1);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  InvariantChecker oracle(sim, dc, exclusive());
  oracle.attach(engine);

  engine.submit(workload::make_bag_of_tasks(1, 2, 30.0));
  sim.schedule_at(5 * sim::kSecond, [&] { dc.machine(0).fail(); });
  EXPECT_THROW(sim.run_until(), OracleViolation);
}

TEST(OracleTest, UnobservedDrainBreaksShadow) {
  // Drain applied while the oracle is not observing: its shadow goes
  // stale, and the next explicit sweep must report I6.
  auto dc = make_dc(2);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  InvariantChecker oracle(sim, dc, exclusive());
  oracle.attach(engine);

  engine.set_observer(nullptr);  // simulate a missed notification
  engine.drain(0);
  EXPECT_THROW(oracle.verify(engine, "stale-shadow"), OracleViolation);
}

TEST(OracleTest, DetachRestoresNullHooks) {
  auto dc = make_dc(1);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  {
    InvariantChecker oracle(sim, dc);
    oracle.attach(engine);
    EXPECT_EQ(engine.observer(), &oracle);
    EXPECT_EQ(sim.hook(), &oracle);
  }  // destructor detaches
  EXPECT_EQ(engine.observer(), nullptr);
  EXPECT_EQ(sim.hook(), nullptr);
}

TEST(FuzzSpecTest, TextRoundTripPreservesBehavior) {
  for (std::uint64_t seed : {1ull, 7ull, 42ull}) {
    const ScenarioSpec spec = make_spec(seed);
    const ScenarioSpec parsed = from_text(to_text(spec));
    const SeedRunResult a = run_spec(spec);
    const SeedRunResult b = run_spec(parsed);
    EXPECT_EQ(a.digest, b.digest) << "seed " << seed;
    EXPECT_EQ(a.events, b.events) << "seed " << seed;
    EXPECT_EQ(to_text(spec), to_text(parsed)) << "seed " << seed;
  }
}

TEST(FuzzSpecTest, FromTextRejectsMalformedLines) {
  EXPECT_THROW(from_text("not a key value line"), std::invalid_argument);
  EXPECT_THROW(from_text("racks=banana"), std::invalid_argument);
  // Comments and unknown keys are fine (forward compatibility).
  EXPECT_NO_THROW(from_text("# comment\nfuture_knob=3\nracks=2"));
}

TEST(FuzzTest, SeedRunsAreReproducible) {
  const SeedRunResult a = run_seed(123);
  const SeedRunResult b = run_seed(123);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.events, b.events);
  EXPECT_EQ(a.transitions, b.transitions);
}

TEST(FuzzTest, BatchDigestIsThreadCountInvariant) {
  parallel::ThreadPool one(1);
  parallel::ThreadPool four(4);
  FuzzOptions opt;
  opt.seeds = 24;
  opt.base_seed = 9;
  opt.pool = &one;
  const FuzzReport a = run_fuzz(opt);
  opt.pool = &four;
  const FuzzReport b = run_fuzz(opt);
  EXPECT_EQ(a.summary_digest, b.summary_digest);
  EXPECT_EQ(a.total_events, b.total_events);
  EXPECT_EQ(a.seeds_run, 24u);
  EXPECT_TRUE(a.failing_indices.empty())
      << a.failures.front().violation;
}

TEST(FuzzTest, SingleSeedReplayMatchesBatchCell) {
  // `mcs_check --seed I` must rerun exactly the scenario the batch ran at
  // index I: the batch summary digest recomputed from per-index replays
  // must match run_fuzz's.
  parallel::ThreadPool pool(2);
  FuzzOptions opt;
  opt.seeds = 6;
  opt.base_seed = 5;
  opt.pool = &pool;
  const FuzzReport report = run_fuzz(opt);

  metrics::Digest recomputed;
  for (std::size_t i = 0; i < opt.seeds; ++i) {
    const SeedRunResult r = run_seed(seed_for_index(opt.base_seed, i));
    recomputed.add_u64(r.seed);
    recomputed.add_u64(r.digest);
  }
  EXPECT_EQ(recomputed.value(), report.summary_digest);
}

TEST(ShrinkTest, PassingSpecIsReturnedUnshrunk) {
  ScenarioSpec spec = make_spec(1);
  const ShrinkResult r = shrink(spec);
  EXPECT_FALSE(r.failing);
  EXPECT_TRUE(r.result.ok);
  EXPECT_EQ(r.attempts, 1u);
  EXPECT_EQ(to_text(r.spec), to_text(spec));
}

}  // namespace
}  // namespace mcs::check
