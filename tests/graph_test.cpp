// Tests for the graph substrate: CSR structure, generators, and the six
// Graphalytics kernels (src/graph).
#include <functional>
#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/graph.hpp"

namespace mcs::graph {
namespace {

Graph path4() {
  // 0 - 1 - 2 - 3 (undirected path)
  return Graph(4, {{0, 1, 1.0}, {1, 2, 1.0}, {2, 3, 1.0}}, true);
}

Graph triangle_plus_tail() {
  // Triangle 0-1-2 with a tail 2-3.
  return Graph(4, {{0, 1, 1.0}, {1, 2, 1.0}, {0, 2, 1.0}, {2, 3, 1.0}}, true);
}

// ---- CSR structure -----------------------------------------------------------

TEST(GraphTest, CsrStructure) {
  const Graph g = path4();
  EXPECT_EQ(g.vertex_count(), 4u);
  EXPECT_EQ(g.arc_count(), 6u);  // 3 undirected edges
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(1), 2u);
  EXPECT_DOUBLE_EQ(g.mean_degree(), 1.5);
  EXPECT_EQ(g.max_degree(), 2u);
}

TEST(GraphTest, DirectedKeepsArcDirection) {
  const Graph g(3, {{0, 1, 1.0}, {1, 2, 1.0}}, false);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(2), 0u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
}

TEST(GraphTest, OutOfRangeEdgeThrows) {
  EXPECT_THROW(Graph(2, {{0, 5, 1.0}}, false), std::invalid_argument);
}

TEST(GraphTest, WeightsParallelToAdjacency) {
  const Graph g(3, {{0, 1, 2.5}, {0, 2, 7.0}}, false);
  const auto nbrs = g.neighbors(0);
  const auto ws = g.weights(0);
  ASSERT_EQ(nbrs.size(), 2u);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == 1) { EXPECT_DOUBLE_EQ(ws[i], 2.5); }
    if (nbrs[i] == 2) { EXPECT_DOUBLE_EQ(ws[i], 7.0); }
  }
}

// ---- generators ----------------------------------------------------------------

TEST(GeneratorTest, ErdosRenyiHasRequestedEdges) {
  sim::Rng rng(3);
  const Graph g = erdos_renyi(100, 500, rng);
  EXPECT_EQ(g.vertex_count(), 100u);
  EXPECT_EQ(g.arc_count(), 1000u);  // undirected: 2 arcs per edge
}

TEST(GeneratorTest, BarabasiAlbertIsHeavyTailed) {
  sim::Rng rng(3);
  const Graph ba = barabasi_albert(2000, 2, rng);
  sim::Rng rng2(3);
  const Graph er = erdos_renyi(2000, ba.arc_count() / 2, rng2);
  // Preferential attachment produces a far larger hub than uniform.
  EXPECT_GT(ba.max_degree(), er.max_degree() * 2);
}

TEST(GeneratorTest, RmatSizesArePowersOfTwo) {
  sim::Rng rng(3);
  const Graph g = rmat(10, 8, rng);
  EXPECT_EQ(g.vertex_count(), 1024u);
  EXPECT_EQ(g.arc_count(), 2u * 8 * 1024);  // undirected
}

TEST(GeneratorTest, RmatIsSkewed) {
  sim::Rng rng(3);
  const Graph g = rmat(12, 8, rng);
  // Graph500 parameters concentrate edges on low ids: hub degree far above
  // the mean.
  EXPECT_GT(static_cast<double>(g.max_degree()), 10.0 * g.mean_degree());
}

TEST(GeneratorTest, Grid2dDegreesBounded) {
  const Graph g = grid2d(5, 7);
  EXPECT_EQ(g.vertex_count(), 35u);
  EXPECT_EQ(g.max_degree(), 4u);
  // Corner vertex 0 has exactly 2 neighbours.
  EXPECT_EQ(g.out_degree(0), 2u);
}

TEST(GeneratorTest, DegenerateParametersThrow) {
  sim::Rng rng(1);
  EXPECT_THROW((void)erdos_renyi(1, 5, rng), std::invalid_argument);
  EXPECT_THROW((void)barabasi_albert(10, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)rmat(0, 8, rng), std::invalid_argument);
  EXPECT_THROW((void)grid2d(0, 5), std::invalid_argument);
}

// ---- BFS -----------------------------------------------------------------------

TEST(AlgorithmTest, BfsDepthsOnPath) {
  const auto depth = bfs(path4(), 0);
  EXPECT_EQ(depth, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST(AlgorithmTest, BfsUnreachable) {
  const Graph g(3, {{0, 1, 1.0}}, true);  // vertex 2 isolated
  const auto depth = bfs(g, 0);
  EXPECT_EQ(depth[2], kUnreachable);
}

// ---- PageRank -------------------------------------------------------------------

TEST(AlgorithmTest, PageRankSumsToOneAndRanksHubs) {
  sim::Rng rng(5);
  const Graph g = barabasi_albert(500, 3, rng);
  const auto pr = pagerank(g, 30);
  double sum = 0.0;
  for (double r : pr) sum += r;
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // The max-degree hub outranks the median vertex decisively.
  VertexId hub = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (g.out_degree(v) > g.out_degree(hub)) hub = v;
  }
  std::vector<double> sorted = pr;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_GT(pr[hub], sorted[sorted.size() / 2] * 3);
}

TEST(AlgorithmTest, PageRankUniformOnSymmetricGraph) {
  // On a cycle every vertex is equivalent.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 10; ++v) edges.push_back({v, (v + 1) % 10, 1.0});
  const Graph g(10, edges, true);
  const auto pr = pagerank(g, 50);
  for (double r : pr) EXPECT_NEAR(r, 0.1, 1e-9);
}

// ---- WCC -----------------------------------------------------------------------

TEST(AlgorithmTest, WccFindsComponents) {
  // Two components: {0,1,2} and {3,4}.
  const Graph g(5, {{0, 1, 1}, {1, 2, 1}, {3, 4, 1}}, true);
  const auto label = wcc(g);
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[3], label[4]);
  EXPECT_NE(label[0], label[3]);
  // Canonical labels: smallest member id.
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[3], 3u);
}

TEST(AlgorithmTest, WccOnDirectedGraphIsWeak) {
  const Graph g(3, {{0, 1, 1}, {2, 1, 1}}, false);  // 0->1<-2
  const auto label = wcc(g);
  EXPECT_EQ(label[0], label[2]);  // weakly connected through 1
}

// ---- CDLP -----------------------------------------------------------------------

TEST(AlgorithmTest, CdlpSeparatesCliques) {
  // Two 4-cliques joined by a single bridge edge.
  std::vector<Edge> edges;
  for (VertexId a = 0; a < 4; ++a)
    for (VertexId b = a + 1; b < 4; ++b) edges.push_back({a, b, 1});
  for (VertexId a = 4; a < 8; ++a)
    for (VertexId b = a + 1; b < 8; ++b) edges.push_back({a, b, 1});
  edges.push_back({3, 4, 1});
  const Graph g(8, edges, true);
  const auto label = cdlp(g, 20);
  // Each clique converges to one label; the two differ.
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[1], label[2]);
  EXPECT_EQ(label[5], label[6]);
  EXPECT_NE(label[0], label[5]);
}

// ---- LCC ------------------------------------------------------------------------

TEST(AlgorithmTest, LccOnTriangleWithTail) {
  const auto coeff = lcc(triangle_plus_tail());
  // Vertices 0 and 1: both neighbours connected -> 1.0.
  EXPECT_DOUBLE_EQ(coeff[0], 1.0);
  EXPECT_DOUBLE_EQ(coeff[1], 1.0);
  // Vertex 2 has neighbours {0,1,3}: one link (0-1) of 3 possible pairs.
  EXPECT_NEAR(coeff[2], 1.0 / 3.0, 1e-12);
  // Vertex 3 has a single neighbour: 0 by convention.
  EXPECT_DOUBLE_EQ(coeff[3], 0.0);
}

TEST(AlgorithmTest, LccCompleteGraphIsAllOnes) {
  std::vector<Edge> edges;
  for (VertexId a = 0; a < 6; ++a)
    for (VertexId b = a + 1; b < 6; ++b) edges.push_back({a, b, 1});
  const auto coeff = lcc(Graph(6, edges, true));
  for (double c : coeff) EXPECT_NEAR(c, 1.0, 1e-12);
}

// ---- SSSP -----------------------------------------------------------------------

TEST(AlgorithmTest, SsspUsesWeights) {
  // 0 ->(5) 1 ->(5) 2 and a shortcut 0 ->(20) 2: path through 1 wins.
  const Graph g(3, {{0, 1, 5.0}, {1, 2, 5.0}, {0, 2, 20.0}}, false);
  const auto dist = sssp(g, 0);
  EXPECT_DOUBLE_EQ(dist[0], 0.0);
  EXPECT_DOUBLE_EQ(dist[1], 5.0);
  EXPECT_DOUBLE_EQ(dist[2], 10.0);
}

TEST(AlgorithmTest, SsspMatchesBfsOnUnitWeights) {
  sim::Rng rng(9);
  const Graph g = erdos_renyi(300, 900, rng);
  const auto dist = sssp(g, 0);
  const auto depth = bfs(g, 0);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (depth[v] == kUnreachable) {
      EXPECT_TRUE(std::isinf(dist[v]));
    } else {
      EXPECT_DOUBLE_EQ(dist[v], static_cast<double>(depth[v]));
    }
  }
}

TEST(AlgorithmTest, KernelListHasSixEntries) {
  EXPECT_EQ(graphalytics_kernels().size(), 6u);
}

// ---- parallel kernels: bit-identical to the sequential reference ---------------
//
// The acceptance bar for the parallel substrate: at 1, 2, and 8 threads the
// parallel kernels return EXACTLY the bytes the sequential kernels return
// (EXPECT_EQ on double vectors is bitwise for non-NaN values).

class ParallelKernelTest : public ::testing::TestWithParam<std::size_t> {
 protected:
  parallel::ThreadPool pool_{GetParam()};
};

TEST_P(ParallelKernelTest, PageRankBitIdentical) {
  for (std::uint64_t seed : {7u, 77u}) {
    sim::Rng rng(seed);
    const Graph g = rmat(11, 8, rng);
    EXPECT_EQ(pagerank_parallel(g, pool_, 20), pagerank(g, 20));
  }
  // Directed graph with dangling vertices: the sequential dangling-mass
  // fold must be replayed exactly.
  const Graph d(5, {{0, 1, 1}, {1, 2, 1}, {3, 0, 1}}, false);
  EXPECT_EQ(pagerank_parallel(d, pool_, 25), pagerank(d, 25));
}

TEST_P(ParallelKernelTest, WccBitIdentical) {
  sim::Rng rng(7);
  const Graph g = rmat(11, 4, rng);
  EXPECT_EQ(wcc_parallel(g, pool_), wcc(g));
  // Disconnected + directed cases.
  const Graph two(6, {{0, 1, 1}, {1, 2, 1}, {4, 3, 1}}, false);
  EXPECT_EQ(wcc_parallel(two, pool_), wcc(two));
  // Long path: exercises the pointer-jumping rounds.
  std::vector<Edge> chain;
  for (VertexId v = 0; v + 1 < 3000; ++v) chain.push_back({v + 1, v, 1.0});
  const Graph path(3000, chain, false);
  EXPECT_EQ(wcc_parallel(path, pool_), wcc(path));
}

TEST_P(ParallelKernelTest, LccBitIdentical) {
  sim::Rng rng(7);
  const Graph g = rmat(9, 6, rng);
  EXPECT_EQ(lcc_parallel(g, pool_), lcc(g));
  EXPECT_EQ(lcc_parallel(triangle_plus_tail(), pool_),
            lcc(triangle_plus_tail()));
}

TEST_P(ParallelKernelTest, BfsAndSsspBatchesMatchPerSourceRuns) {
  sim::Rng rng(5);
  const Graph g = erdos_renyi(500, 2000, rng);
  std::vector<VertexId> sources = {0, 17, 123, 499, 250};
  const auto depths = bfs_batch(g, sources, pool_);
  const auto dists = sssp_batch(g, sources, pool_);
  ASSERT_EQ(depths.size(), sources.size());
  ASSERT_EQ(dists.size(), sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(depths[i], bfs(g, sources[i]));
    EXPECT_EQ(dists[i], sssp(g, sources[i]));
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelKernelTest,
                         ::testing::Values(1u, 2u, 8u),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "threads" + std::to_string(info.param);
                         });

// ---- property sweep over generators (parameterized) ----------------------------

struct GenCase {
  std::string name;
  std::function<Graph(sim::Rng&)> make;
};

class GeneratorPropertyTest : public ::testing::TestWithParam<GenCase> {};

TEST_P(GeneratorPropertyTest, KernelsProduceConsistentResults) {
  sim::Rng rng(77);
  const Graph g = GetParam().make(rng);

  // WCC labels are canonical (label <= vertex id) and consistent with BFS
  // reachability from vertex 0.
  const auto labels = wcc(g);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_LE(labels[v], v);
  }
  const auto depth = bfs(g, 0);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (depth[v] != kUnreachable) { EXPECT_EQ(labels[v], labels[0]); }
  }
  // PageRank sums to ~1 and is positive.
  const auto pr = pagerank(g, 15);
  double sum = 0.0;
  for (double r : pr) {
    EXPECT_GT(r, 0.0);
    sum += r;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
  // LCC within [0,1].
  for (double c : lcc(g)) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Generators, GeneratorPropertyTest,
    ::testing::Values(
        GenCase{"er", [](sim::Rng& r) { return erdos_renyi(400, 1600, r); }},
        GenCase{"ba", [](sim::Rng& r) { return barabasi_albert(400, 3, r); }},
        GenCase{"rmat", [](sim::Rng& r) { return rmat(9, 6, r); }},
        GenCase{"grid", [](sim::Rng&) { return grid2d(20, 20); }}),
    [](const ::testing::TestParamInfo<GenCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace mcs::graph
