// Deeper tests for the engine's observability surface — the signals the
// autoscalers and the elasticity metrics depend on (demand/supply series,
// pending work, level-of-parallelism lookahead) — plus matchmaking (C5)
// and the remaining pipeline stage.
#include <gtest/gtest.h>

#include "gaming/social.hpp"
#include "sched/engine.hpp"
#include "sched/pipeline.hpp"
#include "workload/workflow.hpp"

namespace mcs {
namespace {

infra::Datacenter make_dc(std::size_t machines = 2, double cores = 4.0) {
  infra::Datacenter dc("em", "eu");
  dc.add_uniform_racks(1, machines,
                       infra::ResourceVector{cores, cores * 4.0, 0.0}, 1.0);
  return dc;
}

// ---- demand / supply series ----------------------------------------------------

TEST(EngineSignalsTest, DemandSeriesTracksQueueAndRunning) {
  auto dc = make_dc(1, 4.0);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  // 8 single-core 100 s tasks on 4 cores: demand 8 while queued+running,
  // dropping to 4 after the first wave completes.
  engine.submit(workload::make_bag_of_tasks(1, 8, 100.0));
  sim.run_until(50 * sim::kSecond);
  EXPECT_DOUBLE_EQ(engine.demand_cores(), 8.0);
  EXPECT_DOUBLE_EQ(engine.supply_cores(), 4.0);
  sim.run_until(150 * sim::kSecond);
  EXPECT_DOUBLE_EQ(engine.demand_cores(), 4.0);
  sim.run_until();
  EXPECT_DOUBLE_EQ(engine.demand_cores(), 0.0);
  // The recorded series agrees with the live probes at those instants.
  EXPECT_DOUBLE_EQ(engine.demand_series().at(50 * sim::kSecond), 8.0);
  EXPECT_DOUBLE_EQ(engine.demand_series().at(150 * sim::kSecond), 4.0);
}

TEST(EngineSignalsTest, SupplySeriesReflectsDrainAndFailure) {
  auto dc = make_dc(2, 4.0);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  EXPECT_DOUBLE_EQ(engine.supply_cores(), 8.0);
  engine.drain(0);
  EXPECT_DOUBLE_EQ(engine.supply_cores(), 4.0);
  engine.undrain(0);
  dc.machine(1).fail();
  EXPECT_DOUBLE_EQ(engine.supply_cores(), 4.0);
}

// ---- pending work ----------------------------------------------------------------

TEST(EngineSignalsTest, PendingWorkDrainsWithProgress) {
  auto dc = make_dc(1, 2.0);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  // 4 tasks x 100 s x 1 core = 400 core-seconds.
  engine.submit(workload::make_bag_of_tasks(1, 4, 100.0));
  sim.run_until(sim::kSecond);
  EXPECT_NEAR(engine.pending_work_core_seconds(), 400.0, 5.0);
  sim.run_until(50 * sim::kSecond);
  // Two tasks half-done: ~300 remaining.
  EXPECT_NEAR(engine.pending_work_core_seconds(), 300.0, 5.0);
  sim.run_until();
  EXPECT_DOUBLE_EQ(engine.pending_work_core_seconds(), 0.0);
}

// ---- eligible_within (the Token/Plan lookahead) -------------------------------------

TEST(EngineSignalsTest, EligibleWithinSeesUnlockingSuccessors) {
  auto dc = make_dc(1, 4.0);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  // A chain: task0 (100 s) -> task1 -> task2. While task0 runs, task1
  // becomes eligible within any window covering task0's finish.
  engine.submit(workload::make_chain(1, 3, 100.0));
  sim.run_until(10 * sim::kSecond);
  ASSERT_EQ(engine.running_count(), 1u);
  EXPECT_EQ(engine.eligible_within(10 * sim::kSecond), 0u);   // finish at t=100
  EXPECT_EQ(engine.eligible_within(200 * sim::kSecond), 1u);  // task1 unlocks
}

TEST(EngineSignalsTest, EligibleWithinCountsReadyTasks) {
  auto dc = make_dc(1, 2.0);
  sim::Simulator sim;
  sched::ExecutionEngine engine(sim, dc, sched::make_fcfs());
  engine.submit(workload::make_bag_of_tasks(1, 6, 100.0));
  sim.run_until(sim::kSecond);
  // 2 running, 4 ready; within 200 s the running ones have no successors.
  EXPECT_EQ(engine.eligible_within(200 * sim::kSecond), 4u);
}

// ---- pipeline stage: prefer-draining-soon -------------------------------------------

TEST(PipelineStageTest, PreferDrainingSoonFiltersBusyFarMachines) {
  auto dc = make_dc(2, 4.0);
  sim::Simulator sim;
  // Policy that requires a machine freeing up within 60 s.
  std::vector<std::unique_ptr<sched::PipelineStage>> stages;
  stages.push_back(sched::stage_filter_capable());
  stages.push_back(sched::stage_prefer_draining_soon(60 * sim::kSecond));
  stages.push_back(sched::stage_filter_available());
  sched::ExecutionEngine engine(
      sim, dc,
      sched::make_pipeline_policy("drain-soon", sched::order_fcfs(),
                                  std::move(stages)));
  // Fill machine 0 with a long task; short task should go to machine 1
  // (idle machines always pass the stage).
  engine.submit(workload::make_bag_of_tasks(
      1, 1, 1000.0, infra::ResourceVector{4.0, 4.0, 0.0}));
  engine.submit(workload::make_bag_of_tasks(
      2, 1, 10.0, infra::ResourceVector{4.0, 4.0, 0.0}));
  sim.run_until(20 * sim::kSecond);
  // Both run concurrently: the short one was not queued behind the long.
  EXPECT_EQ(engine.jobs_completed(), 1u);
}

// ---- matchmaking (C5) ------------------------------------------------------------------

TEST(MatchmakingTest, SocialMatchmakerBeatsRandomOnCohesion) {
  sim::Rng rng(21);
  const auto sessions =
      gaming::synthetic_sessions(240, 8, 1200, 4, 0.05, rng);
  const auto g = gaming::interaction_graph(sessions, 240);

  sim::Rng mm_rng(22);
  const auto random_matches = gaming::matchmake_random(240, 4, 200, mm_rng);
  const auto social_matches = gaming::matchmake_social(g, 4, 200, mm_rng);
  const auto random_quality = gaming::evaluate_matches(g, random_matches);
  const auto social_quality = gaming::evaluate_matches(g, social_matches);

  // The social matchmaker reunites community members: far higher cohesion
  // and real pre-existing ties inside matches.
  EXPECT_GT(social_quality.community_cohesion,
            random_quality.community_cohesion * 2.0);
  EXPECT_GT(social_quality.mean_pair_tie, random_quality.mean_pair_tie);
  // Shapes: every match has the requested size.
  for (const auto& m : social_matches) EXPECT_EQ(m.players.size(), 4u);
}

TEST(MatchmakingTest, FallsBackWhenCommunitiesTooSmall) {
  // A graph of isolated pairs: no community can host a 4-player match.
  std::vector<gaming::PlaySession> tiny;
  for (std::uint32_t p = 0; p + 1 < 16; p += 2) {
    tiny.push_back(gaming::PlaySession{{p, p + 1}});
  }
  const auto g = gaming::interaction_graph(tiny, 16);
  sim::Rng rng(23);
  const auto matches = gaming::matchmake_social(g, 4, 10, rng);
  EXPECT_EQ(matches.size(), 10u);
  for (const auto& m : matches) EXPECT_EQ(m.players.size(), 4u);
}

TEST(MatchmakingTest, BadParametersThrow) {
  sim::Rng rng(1);
  EXPECT_THROW((void)gaming::matchmake_random(3, 4, 1, rng),
               std::invalid_argument);
  const auto g = gaming::interaction_graph({}, 2);
  EXPECT_THROW((void)gaming::matchmake_social(g, 4, 1, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcs
