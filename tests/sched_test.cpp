// Tests for the execution engine, allocation policies, provisioning,
// the Schopf pipeline, portfolio scheduling, scavenging, and the Fig. 3
// datacenter stack (src/sched).
#include <functional>
#include <gtest/gtest.h>

#include "failures/failure_model.hpp"
#include "sched/datacenter_stack.hpp"
#include "sched/engine.hpp"
#include "sched/pipeline.hpp"
#include "sched/portfolio.hpp"
#include "sched/provisioning.hpp"
#include "sched/scavenging.hpp"
#include "workload/trace.hpp"
#include "workload/workflow.hpp"

namespace mcs::sched {
namespace {

infra::Datacenter make_dc(std::size_t machines = 4, double cores = 8.0,
                          double speed = 1.0) {
  infra::Datacenter dc("dc", "eu");
  dc.add_uniform_racks(1, machines,
                       infra::ResourceVector{cores, cores * 4.0, 0.0}, speed);
  return dc;
}

// ---- engine basics -------------------------------------------------------------

TEST(EngineTest, RunsSingleTaskToCompletion) {
  auto dc = make_dc(1);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  workload::Job job = workload::make_bag_of_tasks(1, 1, 100.0);
  engine.submit(job);
  sim.run_until();
  ASSERT_TRUE(engine.all_done());
  ASSERT_EQ(engine.completed().size(), 1u);
  const JobStats& s = engine.completed()[0];
  EXPECT_NEAR(s.response_seconds, 100.0, 0.01);
  EXPECT_NEAR(s.slowdown, 1.0, 0.01);
}

TEST(EngineTest, MachineSpeedScalesRuntime) {
  auto dc = make_dc(1, 8.0, /*speed=*/2.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(workload::make_bag_of_tasks(1, 1, 100.0));
  sim.run_until();
  EXPECT_NEAR(engine.completed()[0].response_seconds, 50.0, 0.01);
}

TEST(EngineTest, RespectsDependencies) {
  auto dc = make_dc(4);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  // Chain of 4: must serialize despite 4 idle machines.
  engine.submit(workload::make_chain(1, 4, 25.0));
  sim.run_until();
  EXPECT_NEAR(engine.completed()[0].response_seconds, 100.0, 0.1);
}

TEST(EngineTest, ParallelTasksOverlap) {
  auto dc = make_dc(4, 8.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  // 32 single-core tasks on 32 cores: one wave.
  engine.submit(workload::make_bag_of_tasks(1, 32, 60.0));
  sim.run_until();
  EXPECT_NEAR(engine.completed()[0].response_seconds, 60.0, 0.5);
}

TEST(EngineTest, QueueingDelaysSecondWave) {
  auto dc = make_dc(1, 4.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  // 8 tasks, 4 cores: two waves of 30s.
  engine.submit(workload::make_bag_of_tasks(1, 8, 30.0));
  sim.run_until();
  EXPECT_NEAR(engine.completed()[0].response_seconds, 60.0, 0.5);
  EXPECT_GT(engine.busy_core_seconds(), 239.0);
}

TEST(EngineTest, NeverOvercommitsMachines) {
  auto dc = make_dc(2, 4.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_sjf());
  sim::Rng rng(3);
  workload::TraceConfig config;
  config.job_count = 40;
  config.arrival_rate_per_hour = 2000.0;
  config.mean_task_seconds = 20.0;
  engine.submit_all(workload::generate_trace(config, rng));
  // Invariant check at every event boundary.
  bool ok = true;
  std::function<void()> check = [&] {
    for (const infra::Machine* m :
         static_cast<const infra::Datacenter&>(dc).machines()) {
      if (m->used().cpu() > m->capacity().cpu() + 1e-9) ok = false;
    }
    if (!engine.all_done()) sim.schedule_after(sim::kSecond, check);
  };
  sim.schedule_after(0, check);
  sim.run_until();
  EXPECT_TRUE(ok);
  EXPECT_TRUE(engine.all_done());
}

TEST(EngineTest, SubmittingDuplicateJobIdThrows) {
  auto dc = make_dc();
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(workload::make_bag_of_tasks(5, 1, 1.0));
  EXPECT_THROW(engine.submit(workload::make_bag_of_tasks(5, 1, 1.0)),
               std::invalid_argument);
}

TEST(EngineTest, TaskTooBigForAnyMachineIsAbandoned) {
  // A demand no machine's *total* capacity can ever hold is rejected at
  // arrival rather than parked forever: a forever-pending job would pin
  // all_done() false and spin monitor loops (autoscaler, portfolio).
  auto dc = make_dc(2, 4.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(workload::make_bag_of_tasks(
      1, 1, 10.0, infra::ResourceVector{16.0, 1.0, 0.0}));
  sim.run_until();
  EXPECT_TRUE(engine.all_done());
  EXPECT_EQ(engine.ready_count(), 0u);
  ASSERT_EQ(engine.completed().size(), 1u);
  EXPECT_TRUE(engine.completed()[0].abandoned);
}

// ---- policy comparisons -----------------------------------------------------------

workload::Job two_user_burst(workload::JobId id, const std::string& user,
                             std::size_t n, double work) {
  workload::Job j = workload::make_bag_of_tasks(id, n, work);
  j.user = user;
  return j;
}

TEST(PolicyTest, SjfBeatsFcfsOnMeanWaitWithMixedSizes) {
  // Classic: many short tasks behind a few long ones.
  auto run = [](std::unique_ptr<AllocationPolicy> policy) {
    auto dc = make_dc(1, 2.0);
    std::vector<workload::Job> jobs;
    jobs.push_back(workload::make_bag_of_tasks(1, 4, 600.0));  // long
    for (workload::JobId i = 2; i <= 21; ++i) {
      workload::Job j = workload::make_bag_of_tasks(i, 1, 10.0);  // short
      j.submit_time = sim::kSecond;  // arrive just after
      jobs.push_back(j);
    }
    return run_workload(dc, std::move(jobs), std::move(policy));
  };
  const RunResult fcfs = run(make_fcfs());
  const RunResult sjf = run(make_sjf());
  EXPECT_LT(sjf.mean_wait_seconds, fcfs.mean_wait_seconds * 0.8);
}

TEST(PolicyTest, HeftPrefersFastMachines) {
  infra::Datacenter dc("het", "eu");
  dc.add_machine("slow", infra::ResourceVector{4, 16, 0}, 1.0, 0);
  dc.add_machine("fast", infra::ResourceVector{4, 16, 0}, 3.0, 0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_heft());
  engine.submit(workload::make_bag_of_tasks(1, 4, 90.0));
  sim.run_until();
  // All four fit on the fast machine (4 cores): expect ~30s, not 90s.
  EXPECT_LT(engine.completed()[0].response_seconds, 45.0);
}

TEST(PolicyTest, EasyBackfillingProtectsWideJobFromStarvation) {
  // Greedy FCFS (which skips a non-fitting head) lets a stream of small
  // tasks starve a wide job; EASY's reservation guarantees the wide job
  // starts once the head's resources free up.
  auto build_jobs = [] {
    std::vector<workload::Job> jobs;
    // Head: holds 4 of 10 cores for 100s.
    jobs.push_back(workload::make_bag_of_tasks(
        1, 1, 100.0, infra::ResourceVector{4.0, 4.0, 0.0}));
    // Wide: needs 8 cores — cannot start until the head finishes.
    jobs.push_back(workload::make_bag_of_tasks(
        2, 1, 50.0, infra::ResourceVector{8.0, 8.0, 0.0}));
    // Stream of small tasks arriving every 10s that would otherwise keep
    // the freed cores busy forever.
    for (workload::JobId i = 3; i <= 40; ++i) {
      workload::Job j = workload::make_bag_of_tasks(
          i, 1, 30.0, infra::ResourceVector{2.0, 2.0, 0.0});
      j.submit_time = static_cast<sim::SimTime>(i - 3) * 10 * sim::kSecond;
      jobs.push_back(j);
    }
    return jobs;
  };
  auto wide_wait = [&](std::unique_ptr<AllocationPolicy> policy) {
    auto dc = make_dc(1, 10.0);
    const RunResult r = run_workload(dc, build_jobs(), std::move(policy));
    for (const JobStats& j : r.jobs) {
      if (j.id == 2) return j.wait_seconds;
    }
    return -1.0;
  };
  const double fcfs_wait = wide_wait(make_fcfs());
  const double easy_wait = wide_wait(make_easy_backfilling());
  EXPECT_LE(easy_wait, 110.0);          // reservation honoured (~100s)
  EXPECT_GT(fcfs_wait, easy_wait * 1.5);  // greedy FCFS starves it
}

TEST(PolicyTest, FairShareInterleavesUsers) {
  auto dc = make_dc(1, 1.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fair_share());
  // Alice floods first; Bob submits one task at t=1s. Under fair-share,
  // Bob's task runs before most of Alice's backlog.
  workload::Job alice = two_user_burst(1, "alice", 20, 10.0);
  workload::Job bob = two_user_burst(2, "bob", 1, 10.0);
  bob.submit_time = sim::kSecond;
  engine.submit(alice);
  engine.submit(bob);
  sim.run_until();
  const auto& done = engine.completed();
  ASSERT_EQ(done.size(), 2u);
  const JobStats& bob_stats = done[0].user == "bob" ? done[0] : done[1];
  // Bob finished long before Alice's 200s backlog completed.
  EXPECT_LT(bob_stats.response_seconds, 40.0);
}

TEST(PolicyTest, ConservativeBackfillNeverDelaysReservedTasks) {
  // Machine of 10 cores. Head job holds 4 cores for 100 s; a wide 8-core
  // job queues with a reservation at t=100; a 2-core 200 s task must NOT
  // backfill under conservative rules (it would run past the wide job's
  // reservation on the same machine), while EASY-style greedy filling of
  // other machines is unaffected.
  auto wide_wait = [](std::unique_ptr<AllocationPolicy> policy) {
    auto dc = make_dc(1, 10.0);
    std::vector<workload::Job> jobs;
    jobs.push_back(workload::make_bag_of_tasks(
        1, 1, 100.0, infra::ResourceVector{4.0, 4.0, 0.0}));
    jobs.push_back(workload::make_bag_of_tasks(
        2, 1, 50.0, infra::ResourceVector{8.0, 8.0, 0.0}));
    jobs.push_back(workload::make_bag_of_tasks(
        3, 1, 200.0, infra::ResourceVector{2.0, 2.0, 0.0}));
    const RunResult r = run_workload(dc, std::move(jobs), std::move(policy));
    for (const JobStats& j : r.jobs) {
      if (j.id == 2) return j.wait_seconds;
    }
    return -1.0;
  };
  // Conservative: the 200 s task waits; wide job starts at ~100 s.
  EXPECT_LE(wide_wait(make_conservative_backfilling()), 105.0);
  // Completeness: everything still finishes under conservative rules.
  auto dc = make_dc(2, 8.0);
  std::vector<workload::Job> jobs;
  jobs.push_back(workload::make_bag_of_tasks(1, 12, 20.0));
  jobs.push_back(workload::make_chain(2, 4, 15.0));
  const RunResult r =
      run_workload(dc, std::move(jobs), make_conservative_backfilling());
  EXPECT_EQ(r.jobs.size(), 2u);
  EXPECT_EQ(r.abandoned, 0u);
}

TEST(PolicyTest, ConservativeAtLeastAsProtectiveAsGreedyFcfs) {
  // Under the starvation stream of the EASY test, conservative backfilling
  // also protects the wide job (reservations for everyone include the head).
  auto wide_wait = [](std::unique_ptr<AllocationPolicy> policy) {
    auto dc = make_dc(1, 10.0);
    std::vector<workload::Job> jobs;
    jobs.push_back(workload::make_bag_of_tasks(
        1, 1, 100.0, infra::ResourceVector{4.0, 4.0, 0.0}));
    jobs.push_back(workload::make_bag_of_tasks(
        2, 1, 50.0, infra::ResourceVector{8.0, 8.0, 0.0}));
    for (workload::JobId i = 3; i <= 40; ++i) {
      workload::Job j = workload::make_bag_of_tasks(
          i, 1, 30.0, infra::ResourceVector{2.0, 2.0, 0.0});
      j.submit_time = static_cast<sim::SimTime>(i - 3) * 10 * sim::kSecond;
      jobs.push_back(j);
    }
    const RunResult r = run_workload(dc, std::move(jobs), std::move(policy));
    for (const JobStats& j : r.jobs) {
      if (j.id == 2) return j.wait_seconds;
    }
    return -1.0;
  };
  EXPECT_LE(wide_wait(make_conservative_backfilling()), 110.0);
}

TEST(PolicyTest, MinMinRunsShortTasksFirstMaxMinOpposite) {
  auto mean_response_of_short = [](std::unique_ptr<AllocationPolicy> p) {
    auto dc = make_dc(1, 1.0);
    std::vector<workload::Job> jobs;
    jobs.push_back(workload::make_bag_of_tasks(1, 3, 100.0));
    jobs.push_back(workload::make_bag_of_tasks(2, 3, 5.0));
    const RunResult r = run_workload(dc, std::move(jobs), std::move(p));
    for (const JobStats& j : r.jobs) {
      if (j.id == 2) return j.response_seconds;
    }
    return -1.0;
  };
  EXPECT_LT(mean_response_of_short(make_min_min()),
            mean_response_of_short(make_max_min()));
}

TEST(PolicyTest, AllFactoriesProduceWorkingPolicies) {
  for (const std::string& name : all_policy_names()) {
    auto dc = make_dc(2, 4.0);
    std::vector<workload::Job> jobs;
    jobs.push_back(workload::make_bag_of_tasks(1, 6, 10.0));
    jobs.push_back(workload::make_chain(2, 3, 5.0));
    const RunResult r = run_workload(dc, std::move(jobs), make_policy(name));
    EXPECT_EQ(r.jobs.size(), 2u) << name;
    EXPECT_EQ(r.abandoned, 0u) << name;
  }
  EXPECT_THROW((void)make_policy("nonsense"), std::invalid_argument);
}

// ---- failures x engine ----------------------------------------------------------

TEST(EngineFailureTest, TasksKilledByFailureAreRetried) {
  auto dc = make_dc(2, 4.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(workload::make_bag_of_tasks(1, 8, 100.0));

  std::vector<failures::FailureEvent> trace;
  trace.push_back(
      failures::FailureEvent{30 * sim::kSecond, {0}, 20 * sim::kSecond});
  failures::FailureInjector injector(sim, dc, trace);
  injector.arm([&](infra::MachineId id) { engine.on_machine_failed(id); },
               [&](infra::MachineId) { engine.kick(); });

  sim.run_until();
  ASSERT_TRUE(engine.all_done());
  const JobStats& s = engine.completed()[0];
  EXPECT_GT(engine.tasks_killed(), 0u);
  EXPECT_GT(s.task_failures, 0u);
  EXPECT_FALSE(s.abandoned);
  // Lost work stretches the response beyond the no-failure 200s bound.
  EXPECT_GT(s.response_seconds, 100.0);
}

TEST(EngineFailureTest, RetryBudgetExhaustionAbandonsJob) {
  auto dc = make_dc(1, 4.0);
  sim::Simulator sim;
  EngineConfig config;
  config.max_retries = 1;
  ExecutionEngine engine(sim, dc, make_fcfs(), config);
  engine.submit(workload::make_bag_of_tasks(1, 1, 1000.0));

  std::vector<failures::FailureEvent> trace;
  for (int i = 1; i <= 3; ++i) {
    trace.push_back(failures::FailureEvent{
        i * 100 * sim::kSecond, {0}, 10 * sim::kSecond});
  }
  failures::FailureInjector injector(sim, dc, trace);
  injector.arm([&](infra::MachineId id) { engine.on_machine_failed(id); },
               [&](infra::MachineId) { engine.kick(); });
  sim.run_until();
  ASSERT_EQ(engine.completed().size(), 1u);
  EXPECT_TRUE(engine.completed()[0].abandoned);
}

// ---- scavenging ---------------------------------------------------------------------

TEST(ScavengingTest, EnablesOtherwiseUnplaceableTasks) {
  // Tasks need 12 GiB; machines have 8 GiB: only scavenging can run them.
  std::vector<workload::Job> jobs;
  jobs.push_back(workload::make_bag_of_tasks(
      1, 4, 50.0, infra::ResourceVector{2.0, 12.0, 0.0}));
  ScavengingConfig config;
  config.max_borrow_fraction = 0.5;
  config.penalty = 0.6;
  const auto cmp = compare_scavenging(jobs, 4, 4.0, 8.0, config);
  EXPECT_EQ(cmp.off.jobs_completed, 0u);
  EXPECT_EQ(cmp.on.jobs_completed, 1u);
  EXPECT_GT(cmp.on.tasks_scavenged, 0u);
}

TEST(ScavengingTest, PenaltySlowsScavengedTasks) {
  std::vector<workload::Job> jobs;
  jobs.push_back(workload::make_bag_of_tasks(
      1, 1, 100.0, infra::ResourceVector{1.0, 12.0, 0.0}));
  ScavengingConfig config;
  config.max_borrow_fraction = 0.5;
  config.penalty = 0.6;
  const auto cmp = compare_scavenging(jobs, 1, 4.0, 8.0, config);
  // Borrowed fraction = (12-8)/12 = 1/3; runtime = 100 * (1 + 0.6/3) = 120.
  EXPECT_NEAR(cmp.on.makespan_seconds, 120.0, 1.0);
}

// ---- provisioning ----------------------------------------------------------------------

TEST(ProvisioningTest, BootDelayDefersCapacity) {
  auto dc = make_dc(8, 4.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  ProvisioningConfig config;
  config.boot_delay = 100 * sim::kSecond;
  ProvisionedPool pool(sim, dc, engine, config);
  pool.start_with(2);
  EXPECT_EQ(pool.active(), 2u);

  pool.set_target(5);
  EXPECT_EQ(pool.active(), 2u);  // not yet booted
  sim.run_until(101 * sim::kSecond);
  EXPECT_EQ(pool.active(), 5u);
}

TEST(ProvisioningTest, ShrinkDrainsBusyMachines) {
  auto dc = make_dc(4, 4.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  ProvisionedPool pool(sim, dc, engine, {});
  pool.start_with(4);
  // Occupy all machines.
  engine.submit(workload::make_bag_of_tasks(
      1, 4, 100.0, infra::ResourceVector{4.0, 4.0, 0.0}));
  sim.run_until(sim::kSecond);
  pool.set_target(1);
  // Machines still busy: powered stays 4 (draining), active shrinks.
  EXPECT_EQ(pool.active(), 1u);
  EXPECT_EQ(pool.powered(), 4u);
  // After tasks complete, drained machines power off.
  sim.run_until(200 * sim::kSecond);
  pool.reap_drained();
  EXPECT_EQ(pool.powered(), 1u);
}

TEST(ProvisioningTest, CostGrowsWithPoweredMachineHours) {
  auto dc = make_dc(4, 4.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  ProvisioningConfig config;
  config.price_per_machine_hour = 1.0;
  ProvisionedPool pool(sim, dc, engine, config);
  pool.start_with(2);
  sim.schedule_at(sim::kHour, [] {});
  sim.run_until();
  EXPECT_NEAR(pool.cost(), 2.0, 0.01);  // 2 machines x 1 hour x $1
}

TEST(ProvisioningTest, TargetClampedToFloorAndMachineCount) {
  auto dc = make_dc(4, 4.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  ProvisioningConfig config;
  config.min_machines = 2;
  ProvisionedPool pool(sim, dc, engine, config);
  pool.start_with(2);
  pool.set_target(0);
  EXPECT_EQ(pool.target(), 2u);
  pool.set_target(100);
  EXPECT_EQ(pool.target(), 4u);
}

// ---- pipeline ---------------------------------------------------------------------------

TEST(PipelineTest, StockPipelinesCompleteWork) {
  for (auto maker : {pipeline_fcfs_firstfit, pipeline_sjf_fastest,
                     pipeline_consolidating}) {
    auto dc = make_dc(3, 4.0);
    std::vector<workload::Job> jobs;
    jobs.push_back(workload::make_bag_of_tasks(1, 10, 15.0));
    const RunResult r = run_workload(dc, std::move(jobs), maker());
    EXPECT_EQ(r.jobs.size(), 1u);
  }
}

TEST(PipelineTest, FilterCapableDropsAcceleratorlessMachines) {
  infra::Datacenter dc("het", "eu");
  dc.add_machine("cpu", infra::ResourceVector{8, 32, 0}, 1.0, 0);
  dc.add_machine("gpu", infra::ResourceVector{8, 32, 2}, 1.0, 0);
  sim::Simulator sim;
  std::vector<std::unique_ptr<PipelineStage>> stages;
  stages.push_back(stage_filter_capable());
  stages.push_back(stage_filter_available());
  ExecutionEngine engine(
      sim, dc,
      make_pipeline_policy("gpu-pipe", order_fcfs(), std::move(stages)));
  engine.submit(workload::make_bag_of_tasks(
      1, 2, 10.0, infra::ResourceVector{2.0, 4.0, 1.0}));
  sim.run_until();
  ASSERT_TRUE(engine.all_done());
}

TEST(PipelineTest, SpeedScoringEquivalentToHeftChoice) {
  infra::Datacenter dc("het", "eu");
  dc.add_machine("slow", infra::ResourceVector{8, 32, 0}, 1.0, 0);
  dc.add_machine("fast", infra::ResourceVector{8, 32, 0}, 2.5, 0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, pipeline_sjf_fastest());
  engine.submit(workload::make_bag_of_tasks(1, 4, 50.0));
  sim.run_until();
  // All tasks fit the fast machine: ~20s.
  EXPECT_LT(engine.completed()[0].response_seconds, 25.0);
}

// ---- portfolio ------------------------------------------------------------------------------

TEST(PortfolioTest, SurrogateRanksOrderingsSanely) {
  // Machines idle; two tasks 100s and 10s, one core each, one machine with
  // one core: makespan identical, but with two sizes on one machine the
  // ordering does not change makespan; use heterogeneous cores to check
  // the estimator returns something positive and consistent.
  auto dc = make_dc(1, 1.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(workload::make_bag_of_tasks(1, 3, 30.0));
  sim.run_until(sim::kSecond);  // let tasks arrive & one start
  std::vector<RunningView> storage;
  const SchedulerView view = engine.snapshot_view(storage);
  const auto portfolio = default_portfolio();
  for (const auto& cand : portfolio) {
    const double est = estimate_queue_makespan(view, cand.order);
    EXPECT_GT(est, 0.0) << cand.policy_name;
  }
}

TEST(PortfolioTest, SwitchesPoliciesAndFinishesWorkload) {
  auto dc = make_dc(2, 4.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  sim::Rng rng(17);
  workload::TraceConfig config;
  config.job_count = 60;
  config.arrival_rate_per_hour = 1200.0;
  config.mean_task_seconds = 30.0;
  config.cv_task_seconds = 2.0;  // heavy mix: SJF should matter sometimes
  engine.submit_all(workload::generate_trace(config, rng));

  PortfolioScheduler portfolio(sim, dc, engine, default_portfolio(),
                               30 * sim::kSecond);
  portfolio.start();
  sim.run_until();
  EXPECT_TRUE(engine.all_done());
  std::size_t total_selections = 0;
  for (std::size_t s : portfolio.selections()) total_selections += s;
  EXPECT_GT(total_selections, 0u);
}

// ---- datacenter stack (Fig. 3) -----------------------------------------------------------------

TEST(StackTest, LayersAccountActivity) {
  auto dc = make_dc(8, 4.0);
  sim::Simulator sim;
  DatacenterStack::Config config;
  config.initial_machines = 4;
  DatacenterStack stack(sim, dc, make_fcfs(), config);
  stack.start_monitoring(10 * sim::kMinute);
  for (workload::JobId i = 1; i <= 5; ++i) {
    stack.submit(workload::make_bag_of_tasks(i, 4, 20.0));
  }
  stack.resize_pool(6);
  sim.run_until();

  const auto activity = stack.activity();
  ASSERT_EQ(activity.size(), 6u);  // 5 core layers + DevOps
  EXPECT_EQ(activity[0].layer, "Front-end");
  EXPECT_EQ(activity[0].operations, 5u);
  EXPECT_EQ(activity[1].operations, 5u);  // back-end completed all jobs
  EXPECT_EQ(activity[2].operations, 1u);  // one resize
  EXPECT_GT(activity[3].operations, 0u);  // monitoring samples
  EXPECT_EQ(activity[4].operations, 8u);  // machines
  EXPECT_GT(activity[5].operations, 0u);  // log lines
  EXPECT_TRUE(stack.backend().all_done());
}

TEST(StackTest, MonitoringSeriesRecorded) {
  auto dc = make_dc(4, 4.0);
  sim::Simulator sim;
  DatacenterStack stack(sim, dc, make_fcfs(), {});
  stack.start_monitoring(5 * sim::kMinute);
  stack.submit(workload::make_bag_of_tasks(1, 16, 60.0));
  sim.run_until();
  const auto* util = stack.operations().series("utilization");
  ASSERT_NE(util, nullptr);
  EXPECT_GT(util->samples().size(), 3u);
  ASSERT_NE(stack.operations().series("power_watts"), nullptr);
  EXPECT_EQ(stack.operations().series("nonexistent"), nullptr);
}

}  // namespace
}  // namespace mcs::sched
