// Tests for the placement/scoring pass (sched/scoring.hpp): score-policy
// hand fixtures, deterministic tie-breaking, zone label filtering, the
// anti-affinity table, LabelFilterCache memoization, and engine-level
// zone/spread enforcement.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sched/engine.hpp"
#include "sched/scoring.hpp"
#include "workload/task.hpp"

namespace mcs::sched {
namespace {

infra::Datacenter make_zoned_dc(std::size_t machines, std::size_t zones,
                                double cores = 8.0, double gpu = 0.0) {
  infra::Datacenter dc("dc", "eu");
  for (std::size_t m = 0; m < machines; ++m) {
    dc.add_machine("m" + std::to_string(m),
                   infra::ResourceVector{cores, cores * 4.0, gpu}, 1.0, 0);
    if (zones > 0) {
      dc.set_zone(static_cast<infra::MachineId>(m),
                  "z" + std::to_string(m % zones));
    }
  }
  return dc;
}

// ---- policy names --------------------------------------------------------------

TEST(ScorePolicyTest, NamesRoundTrip) {
  for (NodeScorePolicy p : all_score_policies()) {
    EXPECT_EQ(score_policy_from_string(to_string(p)), p);
  }
  EXPECT_EQ(score_policy_from_string("no-such-policy"), NodeScorePolicy::kNone);
  EXPECT_EQ(score_policy_from_string(""), NodeScorePolicy::kNone);
}

TEST(ScorePolicyTest, AllPoliciesListsEveryVariantOnce) {
  const auto all = all_score_policies();
  EXPECT_EQ(all.size(), 4u);
  EXPECT_EQ(all[0], NodeScorePolicy::kNone);
}

// ---- score_machine hand fixtures -----------------------------------------------

/// One-machine PlannedCapacity fixture with the given capacity, untouched.
struct ScoreFixture {
  infra::Datacenter dc;
  std::vector<const infra::Machine*> machines;
  PlannedCapacity planned;

  explicit ScoreFixture(infra::ResourceVector capacity)
      : dc("fx", "sim"),
        machines((dc.add_machine("m0", capacity, 1.0, 0),
                  static_cast<const infra::Datacenter&>(dc).machines())),
        planned(machines) {}
};

TEST(ScoreMachineTest, NoneIsAlwaysZero) {
  ScoreFixture fx(infra::ResourceVector{10.0, 10.0, 0.0});
  EXPECT_EQ(score_machine(NodeScorePolicy::kNone, 7, 42, fx.planned, 0,
                          infra::ResourceVector{2.0, 4.0, 0.0}),
            0.0);
}

TEST(ScoreMachineTest, FreeShareVarianceHandFixture) {
  // cap {10,10}, free {10,10}, demand {2,4}: shares after = 0.8 and 0.6,
  // score = ((0.8-0.6)/2)^2 = 0.01.
  ScoreFixture fx(infra::ResourceVector{10.0, 10.0, 0.0});
  const double s =
      score_machine(NodeScorePolicy::kFreeShareVariance, 0, 1, fx.planned, 0,
                    infra::ResourceVector{2.0, 4.0, 0.0});
  EXPECT_NEAR(s, 0.01, 1e-12);
}

TEST(ScoreMachineTest, FreeShareVarianceIsZeroWhenBalanced) {
  ScoreFixture fx(infra::ResourceVector{10.0, 20.0, 0.0});
  // Demand consumes the same *share* of both dimensions: 0.2 each.
  const double s =
      score_machine(NodeScorePolicy::kFreeShareVariance, 0, 1, fx.planned, 0,
                    infra::ResourceVector{2.0, 4.0, 0.0});
  EXPECT_EQ(s, 0.0);
}

TEST(ScoreMachineTest, SquaredMinDeltaHandFixture) {
  // Shares after = 0.8 and 0.6; min = 0.6; score = 0.36.
  ScoreFixture fx(infra::ResourceVector{10.0, 10.0, 0.0});
  const double s =
      score_machine(NodeScorePolicy::kSquaredMinDelta, 0, 1, fx.planned, 0,
                    infra::ResourceVector{2.0, 4.0, 0.0});
  EXPECT_NEAR(s, 0.36, 1e-12);
}

TEST(ScoreMachineTest, ZeroCapacityDimensionContributesZeroShare) {
  // Memoryless machine: mem share is defined as 0, so variance fixture
  // degenerates to (a/2)^2 and min-delta to 0.
  ScoreFixture fx(infra::ResourceVector{10.0, 0.0, 0.0});
  const infra::ResourceVector demand{2.0, 0.0, 0.0};
  EXPECT_NEAR(score_machine(NodeScorePolicy::kFreeShareVariance, 0, 1,
                            fx.planned, 0, demand),
              0.16, 1e-12);
  EXPECT_EQ(score_machine(NodeScorePolicy::kSquaredMinDelta, 0, 1, fx.planned,
                          0, demand),
            0.0);
}

TEST(ScoreMachineTest, RandomHashIsDeterministicAndSaltSensitive) {
  ScoreFixture fx(infra::ResourceVector{10.0, 10.0, 0.0});
  const infra::ResourceVector d{1.0, 1.0, 0.0};
  const double s1 =
      score_machine(NodeScorePolicy::kRandomHash, 17, 42, fx.planned, 0, d);
  const double s2 =
      score_machine(NodeScorePolicy::kRandomHash, 17, 42, fx.planned, 0, d);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1,
            score_machine(NodeScorePolicy::kRandomHash, 18, 42, fx.planned, 0, d));
  EXPECT_NE(s1,
            score_machine(NodeScorePolicy::kRandomHash, 17, 43, fx.planned, 0, d));
  EXPECT_GE(s1, 0.0);
}

// ---- pick_machine (placement-aware overload) -----------------------------------

ReadyTask ready_task(infra::ResourceVector demand, workload::JobId job = 1) {
  ReadyTask t;
  t.job = job;
  t.demand = demand;
  return t;
}

TEST(PickMachineTest, ScoringFastPathMatchesLegacyOverload) {
  auto dc = make_zoned_dc(4, 0);
  const auto machines = static_cast<const infra::Datacenter&>(dc).machines();
  SchedulerView view;
  PlacementContext ctx;  // kNone
  view.placement = &ctx;
  const ReadyTask t = ready_task(infra::ResourceVector{2.0, 4.0, 0.0});
  for (Fit fit : {Fit::kFirst, Fit::kBest, Fit::kWorst, Fit::kFastest}) {
    PlannedCapacity planned(machines);
    PlannedCapacity planned2(machines);
    EXPECT_EQ(pick_machine(machines, planned, t, fit, view),
              pick_machine(machines, planned2, t.demand, fit));
  }
}

TEST(PickMachineTest, TieBreaksToLowestMachineId) {
  // Identical machines => identical variance scores; the strict-less rule
  // must keep the first (lowest-id) machine.
  auto dc = make_zoned_dc(4, 0);
  const auto machines = static_cast<const infra::Datacenter&>(dc).machines();
  PlannedCapacity planned(machines);
  SchedulerView view;
  PlacementContext ctx;
  ctx.score = NodeScorePolicy::kFreeShareVariance;
  view.placement = &ctx;
  const auto got = pick_machine(
      machines, planned, ready_task(infra::ResourceVector{2.0, 8.0, 0.0}),
      Fit::kFirst, view);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0u);
}

TEST(PickMachineTest, SquaredMinDeltaPacksTheFullerMachine) {
  auto dc = make_zoned_dc(2, 0);
  const auto machines = static_cast<const infra::Datacenter&>(dc).machines();
  PlannedCapacity planned(machines);
  // Machine 0 is half committed already; the bin-packing score should
  // drive the next task onto it (smaller post-placement min share) even
  // though machine 1 has more room.
  planned.take(0, infra::ResourceVector{4.0, 16.0, 0.0});
  SchedulerView view;
  PlacementContext ctx;
  ctx.score = NodeScorePolicy::kSquaredMinDelta;
  view.placement = &ctx;
  const auto got = pick_machine(
      machines, planned, ready_task(infra::ResourceVector{2.0, 8.0, 0.0}),
      Fit::kFirst, view);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 0u);
}

TEST(PickMachineTest, VarianceAvoidsImbalancedMachine) {
  auto dc = make_zoned_dc(2, 0);
  const auto machines = static_cast<const infra::Datacenter&>(dc).machines();
  PlannedCapacity planned(machines);
  // Machine 0's cpu is nearly exhausted while its memory is untouched —
  // placing there leaves wildly unequal shares. Variance prefers machine 1.
  planned.take(0, infra::ResourceVector{6.0, 0.0, 0.0});
  SchedulerView view;
  PlacementContext ctx;
  ctx.score = NodeScorePolicy::kFreeShareVariance;
  view.placement = &ctx;
  const auto got = pick_machine(
      machines, planned, ready_task(infra::ResourceVector{1.0, 4.0, 0.0}),
      Fit::kFirst, view);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
}

TEST(PickMachineTest, ScoringSkipsMachinesWithoutRoom) {
  auto dc = make_zoned_dc(2, 0);
  const auto machines = static_cast<const infra::Datacenter&>(dc).machines();
  PlannedCapacity planned(machines);
  planned.take(0, infra::ResourceVector{8.0, 0.0, 0.0});  // cpu exhausted
  SchedulerView view;
  PlacementContext ctx;
  ctx.score = NodeScorePolicy::kSquaredMinDelta;
  view.placement = &ctx;
  const auto got = pick_machine(
      machines, planned, ready_task(infra::ResourceVector{2.0, 4.0, 0.0}),
      Fit::kFirst, view);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 1u);
  planned.take(1, infra::ResourceVector{8.0, 0.0, 0.0});
  EXPECT_FALSE(pick_machine(machines, planned,
                            ready_task(infra::ResourceVector{2.0, 4.0, 0.0}),
                            Fit::kFirst, view)
                   .has_value());
}

// ---- zone masks ----------------------------------------------------------------

TEST(ZoneMaskTest, MachineInZoneHonorsBitsAndBounds) {
  const std::uint64_t mask[2] = {0b101, 0};  // machines 0 and 2
  ReadyTask t = ready_task(infra::ResourceVector{1.0, 1.0, 0.0});
  t.zone_mask = mask;
  t.zone_words = 2;
  EXPECT_TRUE(machine_in_zone(t, 0));
  EXPECT_FALSE(machine_in_zone(t, 1));
  EXPECT_TRUE(machine_in_zone(t, 2));
  EXPECT_FALSE(machine_in_zone(t, 127));
  EXPECT_FALSE(machine_in_zone(t, 128));  // beyond the mask: excluded
  t.zone_mask = nullptr;
  EXPECT_TRUE(machine_in_zone(t, 128));  // unconstrained: everything admits
}

TEST(ZoneMaskTest, PickMachineHonorsZoneFilter) {
  auto dc = make_zoned_dc(3, 0);
  const auto machines = static_cast<const infra::Datacenter&>(dc).machines();
  PlannedCapacity planned(machines);
  SchedulerView view;
  const std::uint64_t mask[1] = {0b100};  // only machine 2
  ReadyTask t = ready_task(infra::ResourceVector{2.0, 4.0, 0.0});
  t.zone_mask = mask;
  t.zone_words = 1;
  const auto got = pick_machine(machines, planned, t, Fit::kFirst, view);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 2u);
}

// ---- anti-affinity table -------------------------------------------------------

TEST(AaCountTest, LookupFindsRowsAndDefaultsToZero) {
  const std::vector<AaCount> table = {
      {0, 1, 2}, {0, 3, 1}, {2, 0, 4}, {2, 5, 1}};
  EXPECT_EQ(aa_count(table, 0, 1), 2u);
  EXPECT_EQ(aa_count(table, 0, 3), 1u);
  EXPECT_EQ(aa_count(table, 2, 0), 4u);
  EXPECT_EQ(aa_count(table, 2, 5), 1u);
  EXPECT_EQ(aa_count(table, 0, 0), 0u);
  EXPECT_EQ(aa_count(table, 1, 1), 0u);
  EXPECT_EQ(aa_count(table, 3, 9), 0u);
  EXPECT_EQ(aa_count({}, 0, 0), 0u);
}

TEST(AaCountTest, PlacementAllowsEnforcesSpreadLimit) {
  SchedulerView view;
  const std::vector<AaCount> table = {{5, 2, 1}};
  view.aa = &table;
  ReadyTask t = ready_task(infra::ResourceVector{1.0, 1.0, 0.0});
  t.job_slot = 5;
  t.spread_limit = 1;
  EXPECT_FALSE(placement_allows(view, t, 2));  // at the limit
  EXPECT_TRUE(placement_allows(view, t, 3));   // clean machine
  t.spread_limit = 2;
  EXPECT_TRUE(placement_allows(view, t, 2));  // below the raised limit
  t.spread_limit = 0;
  EXPECT_TRUE(placement_allows(view, t, 2));  // unlimited
}

// ---- label filter cache --------------------------------------------------------

TEST(LabelFilterCacheTest, MemoizesPerExpression) {
  auto dc = make_zoned_dc(6, 3);  // zones z0,z1,z2 striped
  LabelFilterCache cache;
  const auto& mask = cache.mask_for("z1", dc);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  ASSERT_EQ(mask.size(), 1u);
  EXPECT_EQ(mask[0], 0b010010u);  // machines 1 and 4
  const auto& again = cache.mask_for("z1", dc);
  EXPECT_EQ(&again, &mask);  // stable reference
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(LabelFilterCacheTest, MultiZoneExpressionUnionsMembers) {
  auto dc = make_zoned_dc(6, 3);
  LabelFilterCache cache;
  const auto& mask = cache.mask_for("z0,z2", dc);
  EXPECT_EQ(mask[0], 0b101101u);  // machines 0,3 (z0) + 2,5 (z2)
  EXPECT_EQ(cache.mask_for("nope", dc)[0], 0u);
}

TEST(LabelFilterCacheTest, RebuildsWhenTheFleetGrows) {
  auto dc = make_zoned_dc(2, 2);
  LabelFilterCache cache;
  EXPECT_EQ(cache.mask_for("z0", dc)[0], 0b01u);
  dc.add_machine("late", infra::ResourceVector{8.0, 32.0, 0.0}, 1.0, 0);
  dc.set_zone(2, "z0");
  EXPECT_EQ(cache.mask_for("z0", dc)[0], 0b101u);  // rebuilt, not stale
  EXPECT_EQ(cache.misses(), 2u);
  EXPECT_EQ(cache.size(), 1u);
}

// ---- engine-level placement enforcement ----------------------------------------

workload::Job placed_job(workload::JobId id, std::size_t tasks,
                         double work_seconds, std::string zones,
                         std::uint32_t spread = 0) {
  workload::Job job = workload::make_bag_of_tasks(id, tasks, work_seconds,
                                                  infra::ResourceVector{
                                                      1.0, 4.0, 0.0});
  job.placement.zones = std::move(zones);
  job.placement.spread_limit = spread;
  return job;
}

TEST(EnginePlacementTest, ZoneConstrainedTaskRunsInsideItsZone) {
  auto dc = make_zoned_dc(2, 2);  // machine 0 -> z0, machine 1 -> z1
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(placed_job(1, 1, 100.0, "z1"));
  sim.schedule_at(sim::from_seconds(50.0), [&dc] {
    EXPECT_EQ(dc.machine(0).used().cpu(), 0.0);
    EXPECT_GT(dc.machine(1).used().cpu(), 0.0);
  });
  sim.run_until();
  ASSERT_TRUE(engine.all_done());
  EXPECT_FALSE(engine.completed()[0].abandoned);
}

TEST(EnginePlacementTest, UnsatisfiableZoneAbandonsAtArrival) {
  auto dc = make_zoned_dc(2, 2);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(placed_job(1, 1, 100.0, "does-not-exist"));
  sim.run_until();
  ASSERT_TRUE(engine.all_done());
  ASSERT_EQ(engine.completed().size(), 1u);
  EXPECT_TRUE(engine.completed()[0].abandoned);
}

TEST(EnginePlacementTest, ZoneTooSmallForDemandAbandons) {
  // z1's only machine has no GPU; a GPU task pinned to z1 can never run,
  // even though z0 has one.
  infra::Datacenter dc("dc", "eu");
  dc.add_machine("gpu", infra::ResourceVector{8.0, 32.0, 2.0}, 1.0, 0);
  dc.add_machine("plain", infra::ResourceVector{8.0, 32.0, 0.0}, 1.0, 0);
  dc.set_zone(0, "z0");
  dc.set_zone(1, "z1");
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  workload::Job job = workload::make_bag_of_tasks(
      1, 1, 50.0, infra::ResourceVector{1.0, 4.0, 1.0});
  job.placement.zones = "z1";
  engine.submit(job);
  sim.run_until();
  ASSERT_EQ(engine.completed().size(), 1u);
  EXPECT_TRUE(engine.completed()[0].abandoned);
}

TEST(EnginePlacementTest, SpreadLimitSplitsTasksAcrossMachines) {
  // Two 8-core machines; two 1-core tasks would both land on machine 0
  // under first-fit, but spread_limit=1 forces one onto each machine.
  auto dc = make_zoned_dc(2, 0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(placed_job(1, 2, 100.0, "", /*spread=*/1));
  sim.schedule_at(sim::from_seconds(50.0), [&dc] {
    EXPECT_EQ(dc.machine(0).used().cpu(), 1.0);
    EXPECT_EQ(dc.machine(1).used().cpu(), 1.0);
  });
  sim.run_until();
  ASSERT_TRUE(engine.all_done());
  EXPECT_FALSE(engine.completed()[0].abandoned);
}

TEST(EnginePlacementTest, SpreadLimitSerializesWhenFleetIsSmaller) {
  // One machine, spread_limit=1, two tasks: they must run back-to-back
  // (response 200s), never concurrently.
  auto dc = make_zoned_dc(1, 0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(placed_job(1, 2, 100.0, "", /*spread=*/1));
  sim.schedule_at(sim::from_seconds(50.0), [&dc] {
    EXPECT_EQ(dc.machine(0).used().cpu(), 1.0);  // exactly one running
  });
  sim.run_until();
  ASSERT_TRUE(engine.all_done());
  EXPECT_NEAR(engine.completed()[0].response_seconds, 200.0, 0.1);
}

TEST(EnginePlacementTest, EveryPolicyHonorsZonesAndSpread) {
  for (const std::string& name : all_policy_names()) {
    auto dc = make_zoned_dc(4, 2);  // z0: machines 0,2; z1: machines 1,3
    sim::Simulator sim;
    ExecutionEngine engine(sim, dc, make_policy(name));
    engine.submit(placed_job(1, 2, 30.0, "z1", /*spread=*/1));
    bool checked = false;
    sim.schedule_at(sim::from_seconds(15.0), [&dc, &checked] {
      checked = true;
      EXPECT_EQ(dc.machine(0).used().cpu(), 0.0);
      EXPECT_EQ(dc.machine(2).used().cpu(), 0.0);
      EXPECT_LE(dc.machine(1).used().cpu(), 1.0);
      EXPECT_LE(dc.machine(3).used().cpu(), 1.0);
    });
    sim.run_until();
    EXPECT_TRUE(checked) << name;
    ASSERT_TRUE(engine.all_done()) << name;
    EXPECT_FALSE(engine.completed()[0].abandoned) << name;
  }
}

TEST(EnginePlacementTest, ScoringPoliciesCompleteWorkloads) {
  for (NodeScorePolicy p : all_score_policies()) {
    auto dc = make_zoned_dc(4, 0);
    sim::Simulator sim;
    EngineConfig config;
    config.placement.score = p;
    config.placement.salt = 17;
    ExecutionEngine engine(sim, dc, make_fcfs(), config);
    for (workload::JobId id = 1; id <= 5; ++id) {
      engine.submit(workload::make_bag_of_tasks(id, 4, 25.0));
    }
    sim.run_until();
    ASSERT_TRUE(engine.all_done()) << to_string(p);
    EXPECT_EQ(engine.completed().size(), 5u) << to_string(p);
    for (const JobStats& s : engine.completed()) {
      EXPECT_FALSE(s.abandoned) << to_string(p);
    }
  }
}

TEST(EnginePlacementTest, ScoringRunsAreDeterministic) {
  auto run_once = [](NodeScorePolicy p) {
    auto dc = make_zoned_dc(3, 0);
    sim::Simulator sim;
    EngineConfig config;
    config.placement.score = p;
    config.placement.salt = 99;
    ExecutionEngine engine(sim, dc, make_fcfs(), config);
    for (workload::JobId id = 1; id <= 8; ++id) {
      engine.submit(workload::make_bag_of_tasks(id, 3, 20.0 + 3.0 * id));
    }
    sim.run_until();
    std::vector<std::pair<workload::JobId, sim::SimTime>> out;
    for (const JobStats& s : engine.completed()) out.emplace_back(s.id, s.finish);
    return out;
  };
  for (NodeScorePolicy p : all_score_policies()) {
    EXPECT_EQ(run_once(p), run_once(p)) << to_string(p);
  }
}

TEST(EnginePlacementTest, RandomHashSaltChangesTheSpread) {
  // Different salts should (for this fixture) land the first task on
  // different machines — the spread is salt-driven, not positional.
  auto placed_machine = [](std::uint64_t salt) {
    auto dc = make_zoned_dc(8, 0);
    sim::Simulator sim;
    EngineConfig config;
    config.placement.score = NodeScorePolicy::kRandomHash;
    config.placement.salt = salt;
    ExecutionEngine engine(sim, dc, make_fcfs(), config);
    engine.submit(workload::make_bag_of_tasks(1, 1, 10.0));
    infra::MachineId machine = 0;
    sim.schedule_at(sim::from_seconds(5.0), [&dc, &machine] {
      for (infra::MachineId id = 0; id < dc.machine_count(); ++id) {
        if (dc.machine(id).used().cpu() > 0.0) machine = id;
      }
    });
    sim.run_until();
    return machine;
  };
  bool differs = false;
  const infra::MachineId first = placed_machine(1);
  for (std::uint64_t salt = 2; salt <= 8 && !differs; ++salt) {
    differs = placed_machine(salt) != first;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace mcs::sched
