// Engine edge paths under the slot-table layout (PR 3): retry after
// machine failure with slot reuse, drain-while-running, scavenging
// penalty accounting, abandoned-job accounting, and per-user usage under
// job churn. These pin the behaviors that the dense storage refactor
// (core::SlotPool jobs/running tables, generation-guarded completions,
// interned users) must preserve.
#include <gtest/gtest.h>

#include "sched/engine.hpp"
#include "workload/task.hpp"

namespace mcs::sched {
namespace {

infra::Datacenter make_dc(std::size_t machines, double cores,
                          double memory_gib) {
  infra::Datacenter dc("dc", "eu");
  dc.add_uniform_racks(1, machines,
                       infra::ResourceVector{cores, memory_gib, 0.0}, 1.0);
  return dc;
}

TEST(EngineSlotsTest, RetryAfterFailureCompletesWithSlotReuse) {
  // One 4-core machine, one 4-task job. Fail the machine mid-run: the
  // running tasks are killed, re-queued, and must finish after repair.
  // The kill recycles running-table slots; the generation guard must keep
  // the cancelled completions from firing into the reused slots.
  auto dc = make_dc(1, 4.0, 16.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(workload::make_bag_of_tasks(1, 4, 100.0));

  sim.schedule_at(10 * sim::kSecond, [&] {
    dc.machine(0).fail();
    engine.on_machine_failed(0);
  });
  sim.schedule_at(50 * sim::kSecond, [&] {
    dc.machine(0).repair();
    engine.kick();
  });
  sim.run_until();

  ASSERT_TRUE(engine.all_done());
  ASSERT_EQ(engine.completed().size(), 1u);
  const JobStats& s = engine.completed()[0];
  EXPECT_FALSE(s.abandoned);
  EXPECT_EQ(s.task_failures, 4u);
  EXPECT_EQ(engine.tasks_killed(), 4u);
  // Restarted from scratch at t=50: finish at 150s.
  EXPECT_NEAR(s.response_seconds, 150.0, 0.5);
}

TEST(EngineSlotsTest, SlotReuseAcrossJobChurnKeepsStatsIntact) {
  // 64 jobs arriving in a staggered stream through a small floor: far
  // more jobs than are ever live at once, so job slots recycle many
  // times. Every job must complete exactly once with sane stats.
  auto dc = make_dc(2, 4.0, 16.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  for (workload::JobId id = 1; id <= 64; ++id) {
    workload::Job j = workload::make_bag_of_tasks(id, 2, 30.0);
    j.submit_time = static_cast<sim::SimTime>(id - 1) * 10 * sim::kSecond;
    engine.submit(std::move(j));
  }
  sim.run_until();

  ASSERT_TRUE(engine.all_done());
  ASSERT_EQ(engine.completed().size(), 64u);
  for (const JobStats& s : engine.completed()) {
    EXPECT_FALSE(s.abandoned);
    EXPECT_GE(s.slowdown, 1.0 - 1e-9);
    EXPECT_GE(s.response_seconds, 30.0 - 1e-6);
  }
}

TEST(EngineSlotsTest, DrainWhileRunningFinishesButBlocksPlacement) {
  // Job A starts on the only machine; the machine is drained while A
  // runs. A must run to completion, but job B (ready during the drain)
  // must not be placed until undrain.
  auto dc = make_dc(1, 4.0, 16.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  engine.submit(workload::make_bag_of_tasks(
      1, 1, 100.0, infra::ResourceVector{4.0, 1.0, 0.0}));
  workload::Job b = workload::make_bag_of_tasks(2, 1, 50.0);
  b.submit_time = 10 * sim::kSecond;
  engine.submit(std::move(b));

  sim.schedule_at(5 * sim::kSecond, [&] { engine.drain(0); });
  std::size_t ready_after_a = 999;
  sim.schedule_at(120 * sim::kSecond, [&] {
    // A (0..100s) is done; B must still be parked, not placed.
    ready_after_a = engine.ready_count();
    engine.undrain(0);
  });
  sim.run_until();

  EXPECT_EQ(ready_after_a, 1u);
  ASSERT_TRUE(engine.all_done());
  ASSERT_EQ(engine.completed().size(), 2u);
  for (const JobStats& s : engine.completed()) {
    if (s.id == 1) {
      EXPECT_NEAR(s.response_seconds, 100.0, 0.5);
    } else {
      // B: submitted at 10s, placed at undrain (120s), runs 50s, so it
      // finishes at 170s — a 160s response.
      EXPECT_NEAR(s.response_seconds, 160.0, 0.5);
    }
  }
}

TEST(EngineSlotsTest, ScavengingPenaltyAndUsageAccounting) {
  // 12 GiB demanded on an 8 GiB machine: borrowed fraction 1/3, runtime
  // multiplier 1 + 0.6/3 = 1.2 -> 120 s. Usage accounting must charge
  // the *actual* occupancy (cores x 120 s), not the nominal work.
  auto dc = make_dc(1, 4.0, 8.0);
  sim::Simulator sim;
  EngineConfig config;
  config.scavenging.enabled = true;
  config.scavenging.max_borrow_fraction = 0.5;
  config.scavenging.penalty = 0.6;
  ExecutionEngine engine(sim, dc, make_fcfs(), config);
  workload::Job j = workload::make_bag_of_tasks(
      1, 1, 100.0, infra::ResourceVector{2.0, 12.0, 0.0});
  j.user = "tenant-a";
  engine.submit(std::move(j));
  sim.run_until();

  ASSERT_TRUE(engine.all_done());
  EXPECT_EQ(engine.tasks_scavenged(), 1u);
  EXPECT_NEAR(engine.completed()[0].response_seconds, 120.0, 0.5);
  EXPECT_NEAR(engine.busy_core_seconds(), 2.0 * 120.0, 1.0);
  const auto usage = engine.user_usage();
  ASSERT_EQ(usage.count("tenant-a"), 1u);
  EXPECT_NEAR(usage.at("tenant-a"), 2.0 * 120.0, 1.0);
}

TEST(EngineSlotsTest, MaxRetriesExceededAbandonsJobAndFreesFloor) {
  // max_retries = 0: the first kill abandons the job. The floor must be
  // clean afterwards (no leaked running slots, all_done true), and the
  // abandoned job must appear in completed() with its failure count.
  auto dc = make_dc(2, 4.0, 16.0);
  sim::Simulator sim;
  EngineConfig config;
  config.max_retries = 0;
  ExecutionEngine engine(sim, dc, make_fcfs(), config);
  engine.submit(workload::make_bag_of_tasks(1, 2, 500.0));

  sim.schedule_at(10 * sim::kSecond, [&] {
    dc.machine(0).fail();
    engine.on_machine_failed(0);
  });
  sim.run_until();

  ASSERT_TRUE(engine.all_done());
  EXPECT_EQ(engine.ready_count(), 0u);
  EXPECT_EQ(engine.running_count(), 0u);
  ASSERT_EQ(engine.completed().size(), 1u);
  const JobStats& s = engine.completed()[0];
  EXPECT_TRUE(s.abandoned);
  EXPECT_GE(s.task_failures, 1u);
  // The surviving machine must be fully released despite the abandon.
  EXPECT_NEAR(dc.machine(1).used().cpu(), 0.0, 1e-9);
}

TEST(EngineSlotsTest, UserInterningSurvivesChurn) {
  // Two users alternating across recycled job slots: per-user usage must
  // land on the right interned id throughout.
  auto dc = make_dc(1, 4.0, 16.0);
  sim::Simulator sim;
  ExecutionEngine engine(sim, dc, make_fcfs());
  for (workload::JobId id = 1; id <= 8; ++id) {
    workload::Job j = workload::make_bag_of_tasks(id, 1, 10.0);
    j.user = (id % 2 == 0) ? "even" : "odd";
    j.submit_time = static_cast<sim::SimTime>(id - 1) * 20 * sim::kSecond;
    engine.submit(std::move(j));
  }
  sim.run_until();

  ASSERT_TRUE(engine.all_done());
  const auto usage = engine.user_usage();
  ASSERT_EQ(usage.size(), 2u);
  // 4 jobs each, 1 core x 10 s per job.
  EXPECT_NEAR(usage.at("even"), 40.0, 0.5);
  EXPECT_NEAR(usage.at("odd"), 40.0, 0.5);
  EXPECT_EQ(engine.user_usage_by_id().size(), 2u);
}

}  // namespace
}  // namespace mcs::sched
