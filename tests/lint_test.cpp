// Fixture suite for tools/mcs_lint: every rule has at least one known-bad
// snippet that fires and one known-good snippet where the suppression
// escape (or a whitelist / scoping boundary) is honored. The fixtures are
// string literals — the linter's lexer skips string contents, so this file
// itself stays lint-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "callgraph.hpp"
#include "index.hpp"
#include "lint.hpp"

namespace {

using mcs::lint::FileInput;
using mcs::lint::Finding;
using mcs::lint::Rule;
using mcs::lint::analyze_file;
using mcs::lint::analyze_repo;

std::vector<Finding> findings_for(const std::string& tag,
                                  const std::string& code, Rule rule) {
  std::vector<Finding> out;
  for (Finding& f : analyze_file(tag, code)) {
    if (f.rule == rule) out.push_back(std::move(f));
  }
  return out;
}

// ---- D1: ambient time & randomness ------------------------------------------

TEST(LintD1, FlagsAmbientClockAndRandomness) {
  const std::string code = R"cpp(
    int seed() { return rand(); }
    long stamp() { return time(nullptr); }
    double tick();
  )cpp";
  const auto hits = findings_for("src/sched/engine.cpp", code, Rule::kD1);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_EQ(hits[1].line, 3);
}

TEST(LintD1, FlagsChronoClocks) {
  const std::string code = R"cpp(
    auto t0 = std::chrono::steady_clock::now();
    std::random_device rd;
  )cpp";
  EXPECT_EQ(findings_for("src/faas/platform.cpp", code, Rule::kD1).size(),
            2u);
}

TEST(LintD1, WhitelistedPathsAreExempt) {
  const std::string code = "std::random_device rd;\n";
  EXPECT_TRUE(findings_for("src/sim/random.cpp", code, Rule::kD1).empty());
  EXPECT_TRUE(
      findings_for("src/parallel/thread_pool.cpp", code, Rule::kD1).empty());
  // bench/ may time with real clocks: D1 is a src/-only rule.
  EXPECT_TRUE(findings_for("bench/micro_sim.cpp", code, Rule::kD1).empty());
}

TEST(LintD1, AllowCommentSuppresses) {
  const std::string code =
      "int x = rand();  // mcs-lint: allow(D1)\n";
  EXPECT_TRUE(findings_for("src/core/nfr.cpp", code, Rule::kD1).empty());
}

// ---- D2: order-dependent unordered iteration --------------------------------

TEST(LintD2, FlagsAccumulatingRangeFor) {
  const std::string code = R"cpp(
    #include <unordered_map>
    int total(const std::unordered_map<int, int>& m) {
      int sum = 0;
      for (const auto& [k, v] : m) sum += v;
      return sum;
    }
  )cpp";
  const auto hits = findings_for("src/metrics/stats.cpp", code, Rule::kD2);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 5);
}

TEST(LintD2, FlagsIteratorLoopOverUnordered) {
  const std::string code = R"cpp(
    std::unordered_set<int> seen;
    void drain(std::vector<int>& out) {
      for (auto it = seen.begin(); it != seen.end(); ++it) {
        out.push_back(*it);
      }
    }
  )cpp";
  EXPECT_EQ(findings_for("src/p2p/swarm.cpp", code, Rule::kD2).size(), 1u);
}

TEST(LintD2, TracksTypeAliases) {
  const std::string code = R"cpp(
    using Index = std::unordered_map<int, double>;
    Index index_;
    double mass() {
      double m = 0.0;
      for (const auto& kv : index_) m += kv.second;
      return m;
    }
  )cpp";
  EXPECT_EQ(findings_for("src/bigdata/storage.cpp", code, Rule::kD2).size(),
            1u);
}

TEST(LintD2, PureReadLoopIsFine) {
  const std::string code = R"cpp(
    bool contains(const std::unordered_map<int, int>& m, int needle) {
      for (const auto& [k, v] : m) {
        if (k == needle) return true;
      }
      return false;
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/core/registry.cpp", code, Rule::kD2).empty());
}

TEST(LintD2, OrderedOkSuppresses) {
  const std::string code = R"cpp(
    int total(const std::unordered_map<int, int>& m) {
      int sum = 0;
      // mcs-lint: ordered-ok
      for (const auto& [k, v] : m) sum += v;
      return sum;
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/metrics/stats.cpp", code, Rule::kD2).empty());
}

TEST(LintD2, OrderedContainersAreFine) {
  const std::string code = R"cpp(
    int total(const std::map<int, int>& m) {
      int sum = 0;
      for (const auto& [k, v] : m) sum += v;
      return sum;
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/metrics/stats.cpp", code, Rule::kD2).empty());
}

// ---- H1: std::function in hot-path files ------------------------------------

TEST(LintH1, FlagsStdFunctionInHotDirs) {
  const std::string code = "using Fn = std::function<void()>;\n";
  EXPECT_EQ(findings_for("src/sim/arrival.hpp", code, Rule::kH1).size(), 1u);
  EXPECT_EQ(findings_for("src/graph/graph.hpp", code, Rule::kH1).size(), 1u);
  EXPECT_EQ(
      findings_for("src/parallel/thread_pool.hpp", code, Rule::kH1).size(),
      1u);
}

TEST(LintH1, ColdDirsAndCommentsAreFine) {
  // Cold layers may still choose std::function deliberately.
  const std::string code = "using Fn = std::function<void()>;\n";
  EXPECT_TRUE(findings_for("src/evolve/evolution.hpp", code, Rule::kH1)
                  .empty());
  // Mentions in comments must not fire: the lexer strips them.
  const std::string comment_only =
      "// Unlike std::function this accepts move-only closures.\n"
      "class Callback {};\n";
  EXPECT_TRUE(
      findings_for("src/sim/simulator.hpp", comment_only, Rule::kH1).empty());
}

TEST(LintH1, AllowCommentSuppresses) {
  const std::string code =
      "using Fn = std::function<void()>;  // mcs-lint: allow(H1)\n";
  EXPECT_TRUE(findings_for("src/sim/arrival.hpp", code, Rule::kH1).empty());
}

// ---- H2: heap allocation in hot functions -----------------------------------

TEST(LintH2, FlagsAllocationsInHotFunction) {
  const std::string code = R"cpp(
    // mcs-lint: hot
    void drain(std::vector<int>& out) {
      out.push_back(1);
      auto p = std::make_unique<int>(2);
      int* q = new int(3);
      delete q;
    }
  )cpp";
  const auto hits = findings_for("src/sim/simulator.cpp", code, Rule::kH2);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].line, 4);  // push_back without reserve
  EXPECT_EQ(hits[1].line, 5);  // make_unique
  EXPECT_EQ(hits[2].line, 6);  // new
}

TEST(LintH2, ReserveInSameFunctionPermitsPushBack) {
  const std::string code = R"cpp(
    // mcs-lint: hot
    void fill(std::vector<int>& out, std::size_t n) {
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i) out.push_back(1);
    }
  )cpp";
  EXPECT_TRUE(
      findings_for("src/graph/algorithms.cpp", code, Rule::kH2).empty());
}

TEST(LintH2, UnmarkedFunctionsAreNotChecked) {
  const std::string code = R"cpp(
    void cold(std::vector<int>& out) {
      out.push_back(1);
      int* q = new int(3);
      delete q;
    }
  )cpp";
  EXPECT_TRUE(
      findings_for("src/sim/simulator.cpp", code, Rule::kH2).empty());
}

TEST(LintH2, AllowCommentSuppresses) {
  const std::string code = R"cpp(
    // mcs-lint: hot
    void drain(std::vector<int>& out) {
      out.push_back(1);  // mcs-lint: allow(H2)
    }
  )cpp";
  EXPECT_TRUE(
      findings_for("src/sim/simulator.cpp", code, Rule::kH2).empty());
}

TEST(LintH2, FlagsResizeInHotFunction) {
  // resize can reallocate just like push_back; a prior reserve on the same
  // receiver (fixed upper bound) is the sanctioned pattern.
  const std::string code = R"cpp(
    // mcs-lint: hot
    void grow(std::vector<int>& out, std::size_t n) {
      out.resize(n);
    }
  )cpp";
  const auto hits = findings_for("src/obs/trace.cpp", code, Rule::kH2);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 4);

  const std::string reserved = R"cpp(
    // mcs-lint: hot
    void grow(std::vector<int>& out, std::size_t n) {
      out.reserve(n);
      out.resize(n);
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/obs/trace.cpp", reserved, Rule::kH2).empty());
}

TEST(LintH2, ObsRecordPathsAreCovered) {
  // src/obs/ is a hot directory: H1 fires on std::function there, and the
  // obs record-path idiom (fixed ring + counter bump) stays H2-clean under
  // the hot marker — the guarantee the DESIGN.md §11 overhead budget
  // depends on.
  const std::string h1 = "std::function<void()> cb;\n";
  EXPECT_EQ(findings_for("src/obs/registry.cpp", h1, Rule::kH1).size(), 1u);

  const std::string record = R"cpp(
    // mcs-lint: hot
    void record(std::uint64_t* bins, std::size_t b, long* count) {
      ++bins[b];
      ++*count;
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/obs/registry.hpp", record, Rule::kH2).empty());

  const std::string bad = R"cpp(
    // mcs-lint: hot
    void record(std::vector<long>& samples, long v) {
      samples.push_back(v);
    }
  )cpp";
  EXPECT_EQ(findings_for("src/obs/registry.hpp", bad, Rule::kH2).size(), 1u);
}

// ---- S1: mutable static state -----------------------------------------------

TEST(LintS1, FlagsMutableStatics) {
  const std::string code = R"cpp(
    static int call_count = 0;
    int bump() {
      static double last = 0.0;
      last += 1.0;
      return ++call_count;
    }
  )cpp";
  const auto hits = findings_for("src/core/ecosystem.cpp", code, Rule::kS1);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_EQ(hits[1].line, 4);
}

TEST(LintS1, ConstAndConstexprStaticsAreFine) {
  const std::string code = R"cpp(
    static const int kAnswer = 42;
    static constexpr double kPi = 3.14159;
    static bool helper(int x) { return x > 0; }
  )cpp";
  EXPECT_TRUE(
      findings_for("src/core/ecosystem.cpp", code, Rule::kS1).empty());
}

TEST(LintS1, WhitelistedSingletonFileIsExempt) {
  const std::string code =
      "ThreadPool& default_pool() { static ThreadPool pool; return pool; }\n";
  EXPECT_TRUE(findings_for("src/parallel/thread_pool.cpp", code, Rule::kS1)
                  .empty());
  // The same code anywhere else in src/ fires.
  EXPECT_EQ(findings_for("src/sched/engine.cpp", code, Rule::kS1).size(),
            1u);
}

TEST(LintS1, AllowCommentSuppresses) {
  const std::string code =
      "static int reviewed_registry_count = 0;  // mcs-lint: allow(S1)\n";
  EXPECT_TRUE(
      findings_for("src/core/registry.cpp", code, Rule::kS1).empty());
}

// ---- D3: pointer-order nondeterminism ---------------------------------------

TEST(LintD3, FlagsOrderedContainerKeyedOnPointers) {
  const std::string code = R"cpp(
    struct Task;
    std::map<Task*, int> retries;
    std::set<const Task*> blocked;
    std::map<int, Task*> by_id;
  )cpp";
  const auto hits = findings_for("src/sched/engine.cpp", code, Rule::kD3);
  ASSERT_EQ(hits.size(), 2u);  // by_id keys on int: value pointers are fine
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_EQ(hits[1].line, 4);
}

TEST(LintD3, FlagsPointerSortWithoutComparator) {
  const std::string code = R"cpp(
    struct Task;
    void order(std::vector<Task*>& queue) {
      std::sort(queue.begin(), queue.end());
    }
    void fine(std::vector<Task*>& queue) {
      std::sort(queue.begin(), queue.end(),
                [](const Task* a, const Task* b) { return true; });
    }
    void ints(std::vector<int>& v) { std::sort(v.begin(), v.end()); }
  )cpp";
  const auto hits = findings_for("src/sched/engine.cpp", code, Rule::kD3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 4);
}

TEST(LintD3, PointerKeyedUnorderedFoldEscalatesFromD2) {
  const std::string code = R"cpp(
    struct Task;
    std::unordered_map<Task*, int> retries;
    int total() {
      int sum = 0;
      for (const auto& [k, v] : retries) sum += v;
      return sum;
    }
  )cpp";
  EXPECT_EQ(findings_for("src/sched/engine.cpp", code, Rule::kD3).size(), 1u);
  // D3 supersedes D2 on the same loop: the hazard is the keys themselves.
  EXPECT_TRUE(findings_for("src/sched/engine.cpp", code, Rule::kD2).empty());
}

TEST(LintD3, AllowCommentSuppresses) {
  const std::string code =
      "std::map<void*, int> sizes;  // mcs-lint: allow(D3)\n";
  EXPECT_TRUE(findings_for("src/core/registry.cpp", code, Rule::kD3).empty());
}

TEST(LintMarkers, AllowAppliesThroughMultiLineCommentBlock) {
  // NOLINTNEXTLINE-style: the justification may wrap onto further comment
  // lines without detaching the marker from the code line below the block.
  const std::string code =
      "// mcs-lint: allow(D1) — a long justification that wraps\n"
      "// onto a second comment line, and then a third one too,\n"
      "// without detaching the marker from the statement below.\n"
      "long stamp() { return time(nullptr); }\n";
  EXPECT_TRUE(findings_for("src/core/x.cpp", code, Rule::kD1).empty());
}

TEST(LintMarkers, CommentBlockDoesNotLeakPastFirstCodeLine) {
  const std::string code =
      "// mcs-lint: allow(D1) — covers only the next statement\n"
      "int covered() { return time(nullptr); }\n"
      "int uncovered() { return time(nullptr); }\n";
  const auto hits = findings_for("src/core/x.cpp", code, Rule::kD1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 3);
}

// ---- index / call graph -----------------------------------------------------

TEST(LintIndex, BuildsFunctionTableWithFacts) {
  const std::string code = R"cpp(
    namespace demo {
    int helper(int x) { return x + 1; }
    struct Engine {
      void step() {
        helper(1);
        notify();
      }
      void notify();
    };
    }  // namespace demo
  )cpp";
  const mcs::lint::FileIndex idx =
      mcs::lint::index_file("src/sched/demo.cpp", code);
  ASSERT_EQ(idx.functions.size(), 2u);
  EXPECT_EQ(idx.functions[0].name, "helper");
  EXPECT_EQ(idx.functions[1].qual, "Engine::step");
  ASSERT_EQ(idx.functions[1].calls.size(), 2u);
  EXPECT_EQ(idx.functions[1].calls[0].callee, "helper");
  EXPECT_EQ(idx.functions[1].calls[1].callee, "notify");
}

TEST(LintIndex, RecordsIncludeEdges) {
  const std::string code =
      "#include \"sched/engine.hpp\"\n"
      "#include <vector>\n";
  const mcs::lint::FileIndex idx =
      mcs::lint::index_file("src/exp/sweep.cpp", code);
  ASSERT_EQ(idx.includes.size(), 2u);
  EXPECT_EQ(idx.includes[0].path, "sched/engine.hpp");
  EXPECT_FALSE(idx.includes[0].angled);
  EXPECT_TRUE(idx.includes[1].angled);
}

TEST(LintCallGraph, LinksCallsAcrossFiles) {
  std::vector<mcs::lint::FileIndex> files;
  files.push_back(mcs::lint::index_file(
      "src/sched/a.cpp", "void helper() {}\n"));
  files.push_back(mcs::lint::index_file(
      "src/sched/b.cpp", "void driver() { helper(); }\n"));
  const mcs::lint::CallGraph g = mcs::lint::CallGraph::build(files);
  ASSERT_EQ(g.nodes().size(), 2u);
  int driver = -1;
  for (std::size_t n = 0; n < g.nodes().size(); ++n) {
    if (g.nodes()[n].fn->name == "driver") driver = static_cast<int>(n);
  }
  ASSERT_NE(driver, -1);
  ASSERT_EQ(g.edges(static_cast<std::size_t>(driver)).size(), 1u);
  EXPECT_EQ(g.nodes()[static_cast<std::size_t>(
                          g.edges(static_cast<std::size_t>(driver))[0])]
                .fn->name,
            "helper");
}

// ---- H3: transitive hotness -------------------------------------------------

std::vector<Finding> repo_findings(const std::vector<FileInput>& files,
                                   Rule rule) {
  std::vector<Finding> out;
  for (Finding& f : analyze_repo(files).findings) {
    if (f.rule == rule) out.push_back(std::move(f));
  }
  return out;
}

TEST(LintH3, FlagsAllocationInTransitiveCallee) {
  // The chain crosses two files: hot root -> mid -> leaf-that-allocates.
  const std::vector<FileInput> files = {
      {"src/sched/root.cpp",
       "void mid(std::vector<int>& v);\n"
       "// mcs-lint: hot\n"
       "void dispatch(std::vector<int>& v) { mid(v); }\n"},
      {"src/sched/mid.cpp",
       "void leaf(std::vector<int>& v);\n"
       "void mid(std::vector<int>& v) { leaf(v); }\n"
       "void leaf(std::vector<int>& v) { v.push_back(1); }\n"},
  };
  const auto hits = repo_findings(files, Rule::kH3);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/sched/mid.cpp");
  EXPECT_EQ(hits[0].line, 3);
  EXPECT_NE(hits[0].message.find("dispatch -> mid -> leaf"),
            std::string::npos);
}

TEST(LintH3, HotFunctionsThemselvesAreH2Territory) {
  const std::vector<FileInput> files = {
      {"src/sched/root.cpp",
       "// mcs-lint: hot\n"
       "void dispatch(std::vector<int>& v) { v.push_back(1); }\n"},
  };
  // The root's own allocation is H2, not H3 — no double report.
  EXPECT_TRUE(repo_findings(files, Rule::kH3).empty());
  mcs::lint::RepoResult r = analyze_repo(files);
  int h2 = 0;
  for (const Finding& f : r.findings) h2 += f.rule == Rule::kH2;
  EXPECT_EQ(h2, 1);
}

TEST(LintH3, AllowOnDefinitionStopsPropagation) {
  // allow(H3) on the intermediate helper covers its whole subtree.
  const std::vector<FileInput> files = {
      {"src/sched/root.cpp",
       "void mid(std::vector<int>& v);\n"
       "// mcs-lint: hot\n"
       "void dispatch(std::vector<int>& v) { mid(v); }\n"},
      {"src/sched/mid.cpp",
       "void leaf(std::vector<int>& v);\n"
       "// mcs-lint: allow(H3) — reviewed amortized growth\n"
       "void mid(std::vector<int>& v) { leaf(v); }\n"
       "void leaf(std::vector<int>& v) { v.push_back(1); }\n"},
  };
  EXPECT_TRUE(repo_findings(files, Rule::kH3).empty());
}

TEST(LintH3, ReserveSanctionsTransitiveCallee) {
  const std::vector<FileInput> files = {
      {"src/sched/root.cpp",
       "// mcs-lint: hot\n"
       "void dispatch(std::vector<int>& v) { fill(v); }\n"
       "void fill(std::vector<int>& v) {\n"
       "  v.reserve(8);\n"
       "  v.push_back(1);\n"
       "}\n"},
  };
  EXPECT_TRUE(repo_findings(files, Rule::kH3).empty());
}

// ---- D4: determinism roots --------------------------------------------------

TEST(LintD4, FlagsWallClockReachableFromSweepCell) {
  const std::vector<FileInput> files = {
      {"bench/exp_demo.cpp",
       "long stamp() { return time(nullptr); }\n"
       "int main() {\n"
       "  run_sweep(scenarios, opt, [](const SweepPoint& p) {\n"
       "    return stamp();\n"
       "  });\n"
       "}\n"},
  };
  const auto hits = repo_findings(files, Rule::kD4);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "bench/exp_demo.cpp");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("sweep cell"), std::string::npos);
}

TEST(LintD4, EnclosingMainMayTimeTheSweep) {
  // Wall-clock around the sweep (bench timing) is fine: only the cell
  // lambda is a determinism root, not the enclosing main().
  const std::vector<FileInput> files = {
      {"bench/exp_demo.cpp",
       "int pure(int x) { return x; }\n"
       "int main() {\n"
       "  auto t0 = std::chrono::steady_clock::now();\n"
       "  run_sweep(scenarios, opt, [](const SweepPoint& p) {\n"
       "    return pure(1);\n"
       "  });\n"
       "  auto t1 = std::chrono::steady_clock::now();\n"
       "}\n"},
  };
  EXPECT_TRUE(repo_findings(files, Rule::kD4).empty());
}

TEST(LintD4, FlagsSimulatorCallbacks) {
  const std::vector<FileInput> files = {
      {"tests/sim_demo.cpp",
       "int jitter() { return rand(); }\n"
       "void arm(Simulator& sim) {\n"
       "  sim.schedule_after(10, [&]() { return jitter(); });\n"
       "}\n"},
  };
  const auto hits = repo_findings(files, Rule::kD4);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("simulator callback"), std::string::npos);
}

// ---- L1: layer DAG ----------------------------------------------------------

TEST(LintL1, FlagsUpwardInclude) {
  const std::vector<FileInput> files = {
      {"src/sim/simulator.cpp",
       "#include \"sched/engine.hpp\"\n"},
  };
  const auto hits = repo_findings(files, Rule::kL1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].file, "src/sim/simulator.cpp");
  EXPECT_EQ(hits[0].line, 1);
  EXPECT_NE(hits[0].message.find("`sim`"), std::string::npos);
}

TEST(LintL1, FlagsSkipLayerInclude) {
  // core including a domain module skips every layer in between.
  const std::vector<FileInput> files = {
      {"src/core/nfr.cpp", "#include \"faas/platform.hpp\"\n"},
  };
  EXPECT_EQ(repo_findings(files, Rule::kL1).size(), 1u);
}

TEST(LintL1, FlagsModuleCycle) {
  // sim -> metrics is a legal same-rank edge; metrics -> sim closing the
  // loop is a cycle and must be reported exactly once.
  const std::vector<FileInput> files = {
      {"src/metrics/stats.cpp", "#include \"sim/simulator.hpp\"\n"},
      {"src/sim/simulator.cpp", "#include \"metrics/stats.hpp\"\n"},
  };
  const auto hits = repo_findings(files, Rule::kL1);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_NE(hits[0].message.find("cycle"), std::string::npos);
}

TEST(LintL1, DownwardAndSameRankEdgesAreLegal) {
  const std::vector<FileInput> files = {
      {"src/sched/engine.cpp",
       "#include \"core/nfr.hpp\"\n"
       "#include \"sim/simulator.hpp\"\n"},
      {"src/metrics/elasticity.cpp", "#include \"sim/simulator.hpp\"\n"},
      {"bench/exp_demo.cpp", "#include \"core/nfr.hpp\"\n"},
  };
  EXPECT_TRUE(repo_findings(files, Rule::kL1).empty());
}

// ---- repo analysis infrastructure -------------------------------------------

TEST(LintRepo, JobCountDoesNotChangeOutput) {
  // The analyzer obeys its own determinism rules: identical findings (and
  // order) at any indexing thread count.
  std::vector<FileInput> files;
  for (int i = 0; i < 24; ++i) {
    const std::string tag = "src/sched/f" + std::to_string(i) + ".cpp";
    files.push_back(
        {tag,
         "int seed_" + std::to_string(i) + "() { return rand(); }\n"});
  }
  mcs::lint::RepoOptions j1;
  j1.jobs = 1;
  mcs::lint::RepoOptions j8;
  j8.jobs = 8;
  const auto a = analyze_repo(files, j1).findings;
  const auto b = analyze_repo(files, j8).findings;
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), 24u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(mcs::lint::format_finding(a[i]),
              mcs::lint::format_finding(b[i]));
    EXPECT_EQ(a[i].fingerprint, b[i].fingerprint);
  }
}

TEST(LintRepo, CallgraphDotIsDeterministic) {
  const std::vector<FileInput> files = {
      {"src/sched/a.cpp", "void helper() {}\nvoid driver() { helper(); }\n"},
  };
  mcs::lint::RepoOptions opt;
  opt.want_callgraph = true;
  const std::string d1 = analyze_repo(files, opt).callgraph_dot;
  const std::string d2 = analyze_repo(files, opt).callgraph_dot;
  EXPECT_EQ(d1, d2);
  EXPECT_NE(d1.find("digraph mcs_callgraph"), std::string::npos);
  EXPECT_NE(d1.find("driver"), std::string::npos);
}

TEST(LintRepo, SarifContainsFindings) {
  const std::vector<FileInput> files = {
      {"src/core/nfr.cpp", "int f() { return rand(); }\n"},
  };
  const auto findings = analyze_repo(files).findings;
  ASSERT_EQ(findings.size(), 1u);
  const std::string sarif = mcs::lint::to_sarif(findings);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"ruleId\": \"D1\""), std::string::npos);
  EXPECT_NE(sarif.find("src/core/nfr.cpp"), std::string::npos);
}

TEST(LintExplain, EveryRuleHasRationale) {
  using mcs::lint::Rule;
  for (Rule r : {Rule::kD1, Rule::kD2, Rule::kD3, Rule::kD4, Rule::kH1,
                 Rule::kH2, Rule::kH3, Rule::kS1, Rule::kL1}) {
    ASSERT_NE(mcs::lint::explain(r), nullptr);
    EXPECT_NE(std::string(mcs::lint::explain(r)).find("Remedy"),
              std::string::npos)
        << mcs::lint::rule_name(r);
  }
  Rule parsed;
  EXPECT_TRUE(mcs::lint::parse_rule("H3", parsed));
  EXPECT_EQ(parsed, Rule::kH3);
  EXPECT_FALSE(mcs::lint::parse_rule("Z9", parsed));
}

// ---- infrastructure ---------------------------------------------------------

TEST(LintInfra, FingerprintsAreLineNumberIndependent) {
  const std::string a = "int f() { return rand(); }\n";
  const std::string b = "\n\n\nint f() { return rand(); }\n";
  const auto fa = findings_for("src/core/nfr.cpp", a, Rule::kD1);
  const auto fb = findings_for("src/core/nfr.cpp", b, Rule::kD1);
  ASSERT_EQ(fa.size(), 1u);
  ASSERT_EQ(fb.size(), 1u);
  EXPECT_NE(fa[0].line, fb[0].line);
  EXPECT_EQ(fa[0].fingerprint, fb[0].fingerprint);
}

TEST(LintInfra, FindingsFormatAndSortStably) {
  const std::string code = R"cpp(
    long stamp() { return time(nullptr); }
    int seed() { return rand(); }
  )cpp";
  const auto all = analyze_file("src/core/nfr.cpp", code);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const Finding& x, const Finding& y) {
                               return x.line < y.line;
                             }));
  const std::string line = mcs::lint::format_finding(all[0]);
  EXPECT_NE(line.find("src/core/nfr.cpp:2: [D1]"), std::string::npos);
}

TEST(LintInfra, StringsAndRawStringsAreSkipped) {
  const std::string code =
      "const char* msg = \"never call rand() here\";\n"
      "const char* raw = R\"(std::function<void()> in a string)\";\n";
  EXPECT_TRUE(analyze_file("src/sim/arrival.cpp", code).empty());
}

}  // namespace
