// Fixture suite for tools/mcs_lint: every rule has at least one known-bad
// snippet that fires and one known-good snippet where the suppression
// escape (or a whitelist / scoping boundary) is honored. The fixtures are
// string literals — the linter's lexer skips string contents, so this file
// itself stays lint-clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using mcs::lint::Finding;
using mcs::lint::Rule;
using mcs::lint::analyze_file;

std::vector<Finding> findings_for(const std::string& tag,
                                  const std::string& code, Rule rule) {
  std::vector<Finding> out;
  for (Finding& f : analyze_file(tag, code)) {
    if (f.rule == rule) out.push_back(std::move(f));
  }
  return out;
}

// ---- D1: ambient time & randomness ------------------------------------------

TEST(LintD1, FlagsAmbientClockAndRandomness) {
  const std::string code = R"cpp(
    int seed() { return rand(); }
    long stamp() { return time(nullptr); }
    double tick();
  )cpp";
  const auto hits = findings_for("src/sched/engine.cpp", code, Rule::kD1);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_EQ(hits[1].line, 3);
}

TEST(LintD1, FlagsChronoClocks) {
  const std::string code = R"cpp(
    auto t0 = std::chrono::steady_clock::now();
    std::random_device rd;
  )cpp";
  EXPECT_EQ(findings_for("src/faas/platform.cpp", code, Rule::kD1).size(),
            2u);
}

TEST(LintD1, WhitelistedPathsAreExempt) {
  const std::string code = "std::random_device rd;\n";
  EXPECT_TRUE(findings_for("src/sim/random.cpp", code, Rule::kD1).empty());
  EXPECT_TRUE(
      findings_for("src/parallel/thread_pool.cpp", code, Rule::kD1).empty());
  // bench/ may time with real clocks: D1 is a src/-only rule.
  EXPECT_TRUE(findings_for("bench/micro_sim.cpp", code, Rule::kD1).empty());
}

TEST(LintD1, AllowCommentSuppresses) {
  const std::string code =
      "int x = rand();  // mcs-lint: allow(D1)\n";
  EXPECT_TRUE(findings_for("src/core/nfr.cpp", code, Rule::kD1).empty());
}

// ---- D2: order-dependent unordered iteration --------------------------------

TEST(LintD2, FlagsAccumulatingRangeFor) {
  const std::string code = R"cpp(
    #include <unordered_map>
    int total(const std::unordered_map<int, int>& m) {
      int sum = 0;
      for (const auto& [k, v] : m) sum += v;
      return sum;
    }
  )cpp";
  const auto hits = findings_for("src/metrics/stats.cpp", code, Rule::kD2);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 5);
}

TEST(LintD2, FlagsIteratorLoopOverUnordered) {
  const std::string code = R"cpp(
    std::unordered_set<int> seen;
    void drain(std::vector<int>& out) {
      for (auto it = seen.begin(); it != seen.end(); ++it) {
        out.push_back(*it);
      }
    }
  )cpp";
  EXPECT_EQ(findings_for("src/p2p/swarm.cpp", code, Rule::kD2).size(), 1u);
}

TEST(LintD2, TracksTypeAliases) {
  const std::string code = R"cpp(
    using Index = std::unordered_map<int, double>;
    Index index_;
    double mass() {
      double m = 0.0;
      for (const auto& kv : index_) m += kv.second;
      return m;
    }
  )cpp";
  EXPECT_EQ(findings_for("src/bigdata/storage.cpp", code, Rule::kD2).size(),
            1u);
}

TEST(LintD2, PureReadLoopIsFine) {
  const std::string code = R"cpp(
    bool contains(const std::unordered_map<int, int>& m, int needle) {
      for (const auto& [k, v] : m) {
        if (k == needle) return true;
      }
      return false;
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/core/registry.cpp", code, Rule::kD2).empty());
}

TEST(LintD2, OrderedOkSuppresses) {
  const std::string code = R"cpp(
    int total(const std::unordered_map<int, int>& m) {
      int sum = 0;
      // mcs-lint: ordered-ok
      for (const auto& [k, v] : m) sum += v;
      return sum;
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/metrics/stats.cpp", code, Rule::kD2).empty());
}

TEST(LintD2, OrderedContainersAreFine) {
  const std::string code = R"cpp(
    int total(const std::map<int, int>& m) {
      int sum = 0;
      for (const auto& [k, v] : m) sum += v;
      return sum;
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/metrics/stats.cpp", code, Rule::kD2).empty());
}

// ---- H1: std::function in hot-path files ------------------------------------

TEST(LintH1, FlagsStdFunctionInHotDirs) {
  const std::string code = "using Fn = std::function<void()>;\n";
  EXPECT_EQ(findings_for("src/sim/arrival.hpp", code, Rule::kH1).size(), 1u);
  EXPECT_EQ(findings_for("src/graph/graph.hpp", code, Rule::kH1).size(), 1u);
  EXPECT_EQ(
      findings_for("src/parallel/thread_pool.hpp", code, Rule::kH1).size(),
      1u);
}

TEST(LintH1, ColdDirsAndCommentsAreFine) {
  // Cold layers may still choose std::function deliberately.
  const std::string code = "using Fn = std::function<void()>;\n";
  EXPECT_TRUE(findings_for("src/evolve/evolution.hpp", code, Rule::kH1)
                  .empty());
  // Mentions in comments must not fire: the lexer strips them.
  const std::string comment_only =
      "// Unlike std::function this accepts move-only closures.\n"
      "class Callback {};\n";
  EXPECT_TRUE(
      findings_for("src/sim/simulator.hpp", comment_only, Rule::kH1).empty());
}

TEST(LintH1, AllowCommentSuppresses) {
  const std::string code =
      "using Fn = std::function<void()>;  // mcs-lint: allow(H1)\n";
  EXPECT_TRUE(findings_for("src/sim/arrival.hpp", code, Rule::kH1).empty());
}

// ---- H2: heap allocation in hot functions -----------------------------------

TEST(LintH2, FlagsAllocationsInHotFunction) {
  const std::string code = R"cpp(
    // mcs-lint: hot
    void drain(std::vector<int>& out) {
      out.push_back(1);
      auto p = std::make_unique<int>(2);
      int* q = new int(3);
      delete q;
    }
  )cpp";
  const auto hits = findings_for("src/sim/simulator.cpp", code, Rule::kH2);
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].line, 4);  // push_back without reserve
  EXPECT_EQ(hits[1].line, 5);  // make_unique
  EXPECT_EQ(hits[2].line, 6);  // new
}

TEST(LintH2, ReserveInSameFunctionPermitsPushBack) {
  const std::string code = R"cpp(
    // mcs-lint: hot
    void fill(std::vector<int>& out, std::size_t n) {
      out.reserve(n);
      for (std::size_t i = 0; i < n; ++i) out.push_back(1);
    }
  )cpp";
  EXPECT_TRUE(
      findings_for("src/graph/algorithms.cpp", code, Rule::kH2).empty());
}

TEST(LintH2, UnmarkedFunctionsAreNotChecked) {
  const std::string code = R"cpp(
    void cold(std::vector<int>& out) {
      out.push_back(1);
      int* q = new int(3);
      delete q;
    }
  )cpp";
  EXPECT_TRUE(
      findings_for("src/sim/simulator.cpp", code, Rule::kH2).empty());
}

TEST(LintH2, AllowCommentSuppresses) {
  const std::string code = R"cpp(
    // mcs-lint: hot
    void drain(std::vector<int>& out) {
      out.push_back(1);  // mcs-lint: allow(H2)
    }
  )cpp";
  EXPECT_TRUE(
      findings_for("src/sim/simulator.cpp", code, Rule::kH2).empty());
}

TEST(LintH2, FlagsResizeInHotFunction) {
  // resize can reallocate just like push_back; a prior reserve on the same
  // receiver (fixed upper bound) is the sanctioned pattern.
  const std::string code = R"cpp(
    // mcs-lint: hot
    void grow(std::vector<int>& out, std::size_t n) {
      out.resize(n);
    }
  )cpp";
  const auto hits = findings_for("src/obs/trace.cpp", code, Rule::kH2);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].line, 4);

  const std::string reserved = R"cpp(
    // mcs-lint: hot
    void grow(std::vector<int>& out, std::size_t n) {
      out.reserve(n);
      out.resize(n);
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/obs/trace.cpp", reserved, Rule::kH2).empty());
}

TEST(LintH2, ObsRecordPathsAreCovered) {
  // src/obs/ is a hot directory: H1 fires on std::function there, and the
  // obs record-path idiom (fixed ring + counter bump) stays H2-clean under
  // the hot marker — the guarantee the DESIGN.md §11 overhead budget
  // depends on.
  const std::string h1 = "std::function<void()> cb;\n";
  EXPECT_EQ(findings_for("src/obs/registry.cpp", h1, Rule::kH1).size(), 1u);

  const std::string record = R"cpp(
    // mcs-lint: hot
    void record(std::uint64_t* bins, std::size_t b, long* count) {
      ++bins[b];
      ++*count;
    }
  )cpp";
  EXPECT_TRUE(findings_for("src/obs/registry.hpp", record, Rule::kH2).empty());

  const std::string bad = R"cpp(
    // mcs-lint: hot
    void record(std::vector<long>& samples, long v) {
      samples.push_back(v);
    }
  )cpp";
  EXPECT_EQ(findings_for("src/obs/registry.hpp", bad, Rule::kH2).size(), 1u);
}

// ---- S1: mutable static state -----------------------------------------------

TEST(LintS1, FlagsMutableStatics) {
  const std::string code = R"cpp(
    static int call_count = 0;
    int bump() {
      static double last = 0.0;
      last += 1.0;
      return ++call_count;
    }
  )cpp";
  const auto hits = findings_for("src/core/ecosystem.cpp", code, Rule::kS1);
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].line, 2);
  EXPECT_EQ(hits[1].line, 4);
}

TEST(LintS1, ConstAndConstexprStaticsAreFine) {
  const std::string code = R"cpp(
    static const int kAnswer = 42;
    static constexpr double kPi = 3.14159;
    static bool helper(int x) { return x > 0; }
  )cpp";
  EXPECT_TRUE(
      findings_for("src/core/ecosystem.cpp", code, Rule::kS1).empty());
}

TEST(LintS1, WhitelistedSingletonFileIsExempt) {
  const std::string code =
      "ThreadPool& default_pool() { static ThreadPool pool; return pool; }\n";
  EXPECT_TRUE(findings_for("src/parallel/thread_pool.cpp", code, Rule::kS1)
                  .empty());
  // The same code anywhere else in src/ fires.
  EXPECT_EQ(findings_for("src/sched/engine.cpp", code, Rule::kS1).size(),
            1u);
}

TEST(LintS1, AllowCommentSuppresses) {
  const std::string code =
      "static int reviewed_registry_count = 0;  // mcs-lint: allow(S1)\n";
  EXPECT_TRUE(
      findings_for("src/core/registry.cpp", code, Rule::kS1).empty());
}

// ---- infrastructure ---------------------------------------------------------

TEST(LintInfra, FingerprintsAreLineNumberIndependent) {
  const std::string a = "int f() { return rand(); }\n";
  const std::string b = "\n\n\nint f() { return rand(); }\n";
  const auto fa = findings_for("src/core/nfr.cpp", a, Rule::kD1);
  const auto fb = findings_for("src/core/nfr.cpp", b, Rule::kD1);
  ASSERT_EQ(fa.size(), 1u);
  ASSERT_EQ(fb.size(), 1u);
  EXPECT_NE(fa[0].line, fb[0].line);
  EXPECT_EQ(fa[0].fingerprint, fb[0].fingerprint);
}

TEST(LintInfra, FindingsFormatAndSortStably) {
  const std::string code = R"cpp(
    long stamp() { return time(nullptr); }
    int seed() { return rand(); }
  )cpp";
  const auto all = analyze_file("src/core/nfr.cpp", code);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const Finding& x, const Finding& y) {
                               return x.line < y.line;
                             }));
  const std::string line = mcs::lint::format_finding(all[0]);
  EXPECT_NE(line.find("src/core/nfr.cpp:2: [D1]"), std::string::npos);
}

TEST(LintInfra, StringsAndRawStringsAreSkipped) {
  const std::string code =
      "const char* msg = \"never call rand() here\";\n"
      "const char* raw = R\"(std::function<void()> in a string)\";\n";
  EXPECT_TRUE(analyze_file("src/sim/arrival.cpp", code).empty());
}

}  // namespace
