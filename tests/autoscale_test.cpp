// Tests for the seven autoscalers and the autoscale runner (src/autoscale).
#include <gtest/gtest.h>

#include "autoscale/autoscaler.hpp"
#include "workload/trace.hpp"

namespace mcs::autoscale {
namespace {

AutoscaleContext ctx_with_demand(double demand, std::size_t supply = 4,
                                 std::vector<double>* history = nullptr) {
  AutoscaleContext ctx;
  ctx.demand_machines = demand;
  ctx.supply_machines = supply;
  ctx.min_machines = 1;
  ctx.max_machines = 64;
  ctx.demand_history = history;
  ctx.cores_per_machine = 4.0;
  ctx.mean_task_cores = 1.0;
  return ctx;
}

TEST(AutoscalerDecisionTest, ReactTracksDemandWithHeadroom) {
  auto scaler = make_react(0.1);
  EXPECT_EQ(scaler->decide(ctx_with_demand(10.0)), 11u);  // 10 * 1.1
  EXPECT_EQ(scaler->decide(ctx_with_demand(0.0)), 0u);
}

TEST(AutoscalerDecisionTest, AdaptMovesGraduallyTowardDemand) {
  auto scaler = make_adapt(0.5, 4);
  // Demand 20, supply 4: gap 16, step clamp 4 -> 8.
  EXPECT_EQ(scaler->decide(ctx_with_demand(20.0, 4)), 8u);
  // Demand 2, supply 8: gap -6, step -3 -> 5.
  EXPECT_EQ(scaler->decide(ctx_with_demand(2.0, 8)), 5u);
}

TEST(AutoscalerDecisionTest, RegExtrapolatesTrend) {
  auto scaler = make_reg(10);
  std::vector<double> rising = {1, 2, 3, 4, 5, 6};
  const std::size_t target = scaler->decide(ctx_with_demand(6.0, 6, &rising));
  EXPECT_GE(target, 7u);  // predicts beyond the last observation
  std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_EQ(scaler->decide(ctx_with_demand(5.0, 5, &flat)), 5u);
}

TEST(AutoscalerDecisionTest, ConPaasSmoothsAndFollowsTrend) {
  auto scaler = make_conpaas(0.8, 0.5);
  std::size_t last = 0;
  for (double d : {2.0, 4.0, 6.0, 8.0}) {
    last = scaler->decide(ctx_with_demand(d));
  }
  EXPECT_GE(last, 8u);  // trend component pushes at/above current demand
}

TEST(AutoscalerDecisionTest, HistColdStartActsLikeReact) {
  auto scaler = make_hist(0.9);
  EXPECT_EQ(scaler->decide(ctx_with_demand(7.3)), 8u);
}

TEST(AutoscalerDecisionTest, TokenFollowsEligibleParallelism) {
  auto scaler = make_token();
  AutoscaleContext ctx = ctx_with_demand(100.0);  // demand signal ignored
  ctx.eligible_tasks = 8;
  ctx.mean_task_cores = 1.0;
  ctx.cores_per_machine = 4.0;
  EXPECT_EQ(scaler->decide(ctx), 2u);  // 8 tasks / 4 cores per machine
}

TEST(AutoscalerDecisionTest, PlanBoundedByParallelism) {
  auto scaler = make_plan(5 * sim::kMinute);
  AutoscaleContext ctx = ctx_with_demand(0.0);
  ctx.pending_work_machine_seconds = 36000.0;  // would need 120 machines
  ctx.eligible_tasks = 4;                      // but only 4 tasks can run
  ctx.mean_task_cores = 4.0;
  ctx.cores_per_machine = 4.0;
  EXPECT_LE(scaler->decide(ctx), 4u);
}

TEST(AutoscalerDecisionTest, FactoryRoundTrip) {
  for (const auto& name : all_autoscaler_names()) {
    auto scaler = make_autoscaler(name);
    EXPECT_FALSE(scaler->name().empty()) << name;
  }
  EXPECT_THROW((void)make_autoscaler("quantum"), std::invalid_argument);
}

// ---- end-to-end runner ---------------------------------------------------------

std::vector<workload::Job> bursty_workflows(std::size_t jobs, uint64_t seed) {
  sim::Rng rng(seed);
  workload::TraceConfig config;
  config.job_count = jobs;
  config.arrivals = workload::ArrivalKind::kBursty;
  config.arrival_rate_per_hour = 240.0;
  config.workflow_fraction = 0.7;
  config.mean_task_seconds = 30.0;
  config.workflow_width = 8;
  return workload::generate_trace(config, rng);
}

infra::Datacenter pool_dc(std::size_t machines = 32) {
  infra::Datacenter dc("as-dc", "eu");
  dc.add_uniform_racks(1, machines, infra::ResourceVector{4.0, 16.0, 0.0},
                       1.0);
  return dc;
}

TEST(AutoscaleRunTest, ReactCompletesWorkloadAndScales) {
  auto dc = pool_dc();
  AutoscaleRunConfig config;
  config.max_machines = 32;
  auto result = run_autoscaled(dc, bursty_workflows(40, 5), make_react(),
                               config);
  EXPECT_EQ(result.sched.jobs.size(), 40u);
  EXPECT_EQ(result.sched.abandoned, 0u);
  EXPECT_GT(result.ticks, 0u);
  EXPECT_GT(result.elasticity.adaptations, 0u);  // it did scale
  EXPECT_GT(result.cost, 0.0);
}

TEST(AutoscaleRunTest, NoScalerPinsMaxAndCostsMore) {
  AutoscaleRunConfig config;
  config.max_machines = 32;
  auto dc1 = pool_dc();
  const auto fixed =
      run_autoscaled(dc1, bursty_workflows(40, 5), make_no_scaler(), config);
  auto dc2 = pool_dc();
  const auto react =
      run_autoscaled(dc2, bursty_workflows(40, 5), make_react(), config);
  // Static max provisioning wastes money relative to demand tracking.
  EXPECT_GT(fixed.avg_machines, react.avg_machines);
  // And over-provisions heavily by the SPEC metric.
  EXPECT_GT(fixed.elasticity.accuracy_over_norm,
            react.elasticity.accuracy_over_norm);
}

TEST(AutoscaleRunTest, EveryRegisteredAutoscalerFinishesTheWorkload) {
  for (const auto& name : all_autoscaler_names()) {
    auto dc = pool_dc();
    AutoscaleRunConfig config;
    config.max_machines = 32;
    const auto result =
        run_autoscaled(dc, bursty_workflows(25, 9), make_autoscaler(name),
                       config);
    EXPECT_EQ(result.sched.jobs.size(), 25u) << name;
    EXPECT_EQ(result.sched.abandoned, 0u) << name;
    EXPECT_GE(result.elasticity_score, 0.0) << name;
    EXPECT_LE(result.elasticity_score, 1.0) << name;
  }
}

}  // namespace
}  // namespace mcs::autoscale
